// Tour of every T-Kernel synchronisation & communication object class:
// semaphore, event flags, mailbox, mutex (priority inheritance), message
// buffer, fixed and variable memory pools.
//
//   $ ./sync_showcase
#include <cstdio>
#include <cstring>

#include "harness/simulation.hpp"
#include "tkds/tkds.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using namespace rtk::tkernel;
using sysc::Time;

namespace {
void stamp(const char* what) {
    std::printf("[%10s] %s\n", sysc::now().to_string().c_str(), what);
}
}  // namespace

int main() {
    Simulation sim;
    TKernel& tk = sim.os();

    tk.set_user_main([&] {
        // ---- event flags: split-phase start signal ----
        T_CFLG cf;
        cf.name = "go";
        const ID flg = tk.tk_cre_flg(cf);

        // ---- message buffer: by-value telemetry channel ----
        T_CMBF cb;
        cb.name = "telemetry";
        cb.bufsz = 64;
        cb.maxmsz = 16;
        const ID mbf = tk.tk_cre_mbf(cb);

        // ---- mutex with priority inheritance guarding a "bus" ----
        T_CMTX cm;
        cm.name = "shared_bus";
        cm.mtxatr = TA_INHERIT;
        const ID mtx = tk.tk_cre_mtx(cm);

        // ---- fixed pool for message frames ----
        T_CMPF cp;
        cp.name = "frames";
        cp.mpfcnt = 4;
        cp.blfsz = 32;
        const ID mpf = tk.tk_cre_mpf(cp);

        // low-priority task holds the bus; the high one inherits through it
        T_CTSK lo;
        lo.name = "logger";
        lo.itskpri = 30;
        lo.task = [&](INT, void*) {
            UINT ptn = 0;
            tk.tk_wai_flg(flg, 0x1, TWF_ORW, &ptn, TMO_FEVR);
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            stamp("logger grabbed the bus (priority 30)");
            tk.sim().SIM_Wait(Time::ms(8), sim::ExecContext::task);
            T_RTSK self;
            tk.tk_ref_tsk(TSK_SELF, &self);
            std::printf("             ... logger now runs at priority %d "
                        "(inherited from the controller)\n",
                        self.tskpri);
            tk.tk_unl_mtx(mtx);
            stamp("logger released the bus");
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(lo), 0);

        T_CTSK hi;
        hi.name = "controller";
        hi.itskpri = 5;
        hi.task = [&](INT, void*) {
            tk.tk_dly_tsk(3);
            stamp("controller wants the bus (priority 5, blocks)");
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            stamp("controller got the bus");
            // ship a frame through pool + message buffer
            void* blk = nullptr;
            tk.tk_get_mpf(mpf, &blk, TMO_FEVR);
            std::snprintf(static_cast<char*>(blk), 32, "frame@%llu",
                          static_cast<unsigned long long>(sysc::now().to_ms()));
            tk.tk_snd_mbf(mbf, blk, 16, TMO_FEVR);
            tk.tk_rel_mpf(mpf, blk);
            tk.tk_unl_mtx(mtx);
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(hi), 0);

        T_CTSK rx;
        rx.name = "receiver";
        rx.itskpri = 8;
        rx.task = [&](INT, void*) {
            char buf[16] = {};
            const INT n = tk.tk_rcv_mbf(mbf, buf, TMO_FEVR);
            if (n > 0) {
                std::printf("[%10s] receiver got %d bytes: \"%s\"\n",
                            sysc::now().to_string().c_str(), n, buf);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(rx), 0);

        stamp("init: releasing everyone via the event flag");
        tk.tk_set_flg(flg, 0x1);
    });

    sim.power_on();
    sim.run_until(Time::ms(60));

    std::puts("\nFinal kernel object state:");
    std::fputs(tkds::render_listing(tk).c_str(), stdout);
    return 0;
}
