// Tour of every T-Kernel synchronisation & communication object class
// through the rtk::api facade: semaphore, event flags, mailbox, mutex
// (priority inheritance), message buffer, fixed and variable memory
// pools -- one declarative SystemBuilder graph, typed handles in the
// task bodies, every error path a [[nodiscard]] Status/Expected.
//
//   $ ./sync_showcase
#include <cstdio>
#include <cstring>
#include <memory>

#include "api/api.hpp"
#include "harness/simulation.hpp"
#include "tkds/tkds.hpp"

using namespace rtk;
using namespace rtk::tkernel;
using sysc::Time;

namespace {
void stamp(const char* what) {
    std::printf("[%10s] %s\n", sysc::now().to_string().c_str(), what);
}
}  // namespace

int main() {
    Simulation sim;
    TKernel& tk = sim.os();
    api::System sys(tk);

    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;

    // ---- the object graph, declared in one place ----
    b.eventflag("go");                                    // split-phase start signal
    b.msgbuf("telemetry").buffer_size(64).max_message(16);  // by-value channel
    b.mutex("shared_bus").inherit();                      // priority inheritance
    b.fixed_pool("frames").blocks(4).block_size(32);      // message frames
    b.var_pool("scratch").size(256);                      // variable-size scratch

    // low-priority task holds the bus; the high one inherits through it
    b.task("logger").priority(30).autostart().body([&tk, h] {
        h->find_eventflag("go")->wait(0x1, TWF_ORW).expect("go signal");
        api::Mutex& bus = *h->find_mutex("shared_bus");
        bus.lock().expect("bus lock");
        stamp("logger grabbed the bus (priority 30)");
        tk.sim().SIM_Wait(Time::ms(8), sim::ExecContext::task);
        const T_RTSK self = h->find_task("logger")->ref().value();
        std::printf("             ... logger now runs at priority %d "
                    "(inherited from the controller)\n",
                    self.tskpri);
        bus.unlock().expect("bus unlock");
        stamp("logger released the bus");
    });

    b.task("controller").priority(5).autostart().body([&tk, h] {
        tk.tk_dly_tsk(3);
        stamp("controller wants the bus (priority 5, blocks)");
        api::Mutex& bus = *h->find_mutex("shared_bus");
        bus.lock().expect("bus lock");
        stamp("controller got the bus");
        // ship a frame through pool + message buffer; scratch from the
        // variable pool for composing it
        void* scratch = h->find_var_pool("scratch")->get(64).value();
        void* blk = h->find_fixed_pool("frames")->get().value();
        std::snprintf(static_cast<char*>(scratch), 64, "frame@%llu",
                      static_cast<unsigned long long>(sysc::now().to_ms()));
        std::memcpy(blk, scratch, 16);
        h->find_msgbuf("telemetry")->send(blk, 16).expect("telemetry send");
        h->find_fixed_pool("frames")->put(blk).expect("frame release");
        h->find_var_pool("scratch")->put(scratch).expect("scratch release");
        bus.unlock().expect("bus unlock");
    });

    b.task("receiver").priority(8).autostart().body([h] {
        char buf[16] = {};
        const Expected<INT> n = h->find_msgbuf("telemetry")->receive(buf);
        if (n.ok() && *n > 0) {
            std::printf("[%10s] receiver got %d bytes: \"%s\"\n",
                        sysc::now().to_string().c_str(), *n, buf);
        }
    });

    sim.set_user_main([&] {
        *h = std::move(b.instantiate(sys)).value();
        stamp("init: releasing everyone via the event flag");
        h->find_eventflag("go")->set(0x1).expect("go");
    });

    sim.power_on();
    sim.run_until(Time::ms(60));

    std::puts("\nFinal kernel object state:");
    std::fputs(tkds::render_listing(tk).c_str(), stdout);
    h->release_all();  // kernel teardown reclaims the graph
    return 0;
}
