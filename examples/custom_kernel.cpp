// Building a custom kernel from SIM_API programming constructs -- the
// paper's central claim (§4): the same library hosts RTK-Spec I (round
// robin), RTK-Spec II (priority preemptive) and RTK-Spec TRON.
//
//   $ ./custom_kernel
//
// Runs the identical three-task workload on RTK-Spec I and RTK-Spec II
// and prints both Gantt charts, making the policy difference visible.
#include <cstdio>

#include "kernels/rtk_spec.hpp"

using namespace rtk;
using sysc::Time;

namespace {

template <typename Os>
void run_workload(const char* title) {
    sysc::Kernel k;
    Os os(k);  // context-explicit: the mini kernel is built on `k`
    // Three CPU-bound tasks; under round robin they interleave per time
    // slice, under priority preemption "urgent" monopolizes the CPU first.
    const int urgent = os.create_task("urgent", [&] { os.run_for(12); }, 1);
    const int worker = os.create_task("worker", [&] { os.run_for(12); }, 10);
    const int batch = os.create_task("batch", [&] { os.run_for(12); }, 20);
    os.power_on();
    os.start_task(worker);  // started first: RR runs it first
    os.start_task(batch);
    os.start_task(urgent);
    k.run_until(Time::ms(45));

    std::printf("=== %s (%s) ===\n", title, os.sim().scheduler().policy_name().c_str());
    std::fputs(os.sim()
                   .gantt()
                   .render_ascii(Time::zero(), Time::ms(40), Time::ms(1))
                   .c_str(),
               stdout);
    for (const sim::TThread* t : os.sim().threads()) {
        if (t->kind() == sim::ThreadKind::task) {
            std::printf("  %-8s cet=%-8s dispatches=%llu preemptions=%llu\n",
                        t->name().c_str(), t->token().cet().to_string().c_str(),
                        static_cast<unsigned long long>(t->dispatch_count()),
                        static_cast<unsigned long long>(t->preemption_count()));
        }
    }
    std::puts("");
}

}  // namespace

int main() {
    run_workload<kernels::RtkSpec1>("RTK-Spec I: time-sliced round robin");
    run_workload<kernels::RtkSpec2>("RTK-Spec II: priority preemptive");
    std::puts("Same SIM_API constructs, different external scheduler -- the");
    std::puts("mechanism/policy split the paper validates with three kernels.");
    return 0;
}
