// Building a custom kernel from SIM_API programming constructs -- the
// paper's central claim (§4): the same library hosts RTK-Spec I (round
// robin), RTK-Spec II (priority preemptive) and RTK-Spec TRON.
//
//   $ ./custom_kernel
//
// Runs the identical three-task workload on RTK-Spec I and RTK-Spec II
// and prints both Gantt charts, making the policy difference visible;
// then runs it once more on the full RTK-Spec TRON kernel through the
// rtk::api facade (SystemBuilder + typed handles), showing that the
// modern front door drives the same mechanism/policy split.
#include <cstdio>
#include <memory>

#include "api/api.hpp"
#include "harness/simulation.hpp"
#include "kernels/rtk_spec.hpp"

using namespace rtk;
using sysc::Time;

namespace {

void print_task_stats(const sim::SimApi& api) {
    for (const sim::TThread* t : api.threads()) {
        if (t->kind() == sim::ThreadKind::task) {
            std::printf("  %-8s cet=%-8s dispatches=%llu preemptions=%llu\n",
                        t->name().c_str(), t->token().cet().to_string().c_str(),
                        static_cast<unsigned long long>(t->dispatch_count()),
                        static_cast<unsigned long long>(t->preemption_count()));
        }
    }
    std::puts("");
}

template <typename Os>
void run_workload(const char* title) {
    sysc::Kernel k;
    Os os(k);  // context-explicit: the mini kernel is built on `k`
    // Three CPU-bound tasks; under round robin they interleave per time
    // slice, under priority preemption "urgent" monopolizes the CPU first.
    const int urgent = os.create_task("urgent", [&] { os.run_for(12); }, 1);
    const int worker = os.create_task("worker", [&] { os.run_for(12); }, 10);
    const int batch = os.create_task("batch", [&] { os.run_for(12); }, 20);
    os.power_on();
    os.start_task(worker);  // started first: RR runs it first
    os.start_task(batch);
    os.start_task(urgent);
    k.run_until(Time::ms(45));

    std::printf("=== %s (%s) ===\n", title, os.sim().scheduler().policy_name().c_str());
    std::fputs(os.sim()
                   .gantt()
                   .render_ascii(Time::zero(), Time::ms(40), Time::ms(1))
                   .c_str(),
               stdout);
    print_task_stats(os.sim());
}

// The same workload on the full T-Kernel model, declared through the
// facade: 12 ms of annotated computation per task.
void run_tron_workload(const char* title) {
    Simulation sim;
    tkernel::TKernel& tk = sim.os();
    api::System sys(tk);

    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    const auto busy = [&tk] {
        tk.sim().SIM_Wait(Time::ms(12), sim::ExecContext::task);
    };
    // Declared worker/batch first (as the mini kernels start them first);
    // priority preemption runs "urgent" to completion regardless.
    b.task("worker").priority(10).autostart().body(busy);
    b.task("batch").priority(20).autostart().body(busy);
    b.task("urgent").priority(1).autostart().body(busy);

    sim.set_user_main([&] { *h = std::move(b.instantiate(sys)).value(); });
    sim.power_on();
    sim.run_until(Time::ms(45));

    std::printf("=== %s (%s) ===\n", title,
                tk.sim().scheduler().policy_name().c_str());
    std::fputs(tk.sim()
                   .gantt()
                   .render_ascii(Time::zero(), Time::ms(40), Time::ms(1))
                   .c_str(),
               stdout);
    print_task_stats(tk.sim());
    h->release_all();
}

}  // namespace

int main() {
    run_workload<kernels::RtkSpec1>("RTK-Spec I: time-sliced round robin");
    run_workload<kernels::RtkSpec2>("RTK-Spec II: priority preemptive");
    run_tron_workload("RTK-Spec TRON via rtk::api::SystemBuilder");
    std::puts("Same SIM_API constructs, different external scheduler -- the");
    std::puts("mechanism/policy split the paper validates with three kernels.");
    return 0;
}
