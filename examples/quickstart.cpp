// Quickstart: boot RTK-Spec TRON, run two communicating tasks, and print
// the execution trace -- the smallest useful co-simulation.
//
//   $ ./quickstart
//
// Walks through the core API: the Simulation context handle, user main,
// task creation, a semaphore, timed sleep, and the Gantt/statistics
// output.
#include <cstdio>

#include "harness/simulation.hpp"
#include "tkds/tkds.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using namespace rtk::tkernel;

int main() {
    // 1. One Simulation = one complete co-simulation context: the
    //    SystemC-equivalent kernel plus the RTOS kernel model on top.
    //    Any number of these may coexist (even on worker threads).
    Simulation sim;
    TKernel& tk = sim.os();

    ID sem = 0;

    // 3. The user main runs inside the initial task after boot, exactly
    //    as on a real T-Kernel system: create resources and tasks here.
    tk.set_user_main([&] {
        T_CSEM csem;
        csem.name = "data_ready";
        sem = tk.tk_cre_sem(csem);

        T_CTSK producer;
        producer.name = "producer";
        producer.itskpri = 10;
        producer.task = [&](INT, void*) {
            for (int i = 1; i <= 3; ++i) {
                tk.tk_dly_tsk(10);  // produce every 10 ms
                std::printf("[%8s] producer: item %d ready\n",
                            sysc::now().to_string().c_str(), i);
                tk.tk_sig_sem(sem, 1);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(producer), 0);

        T_CTSK consumer;
        consumer.name = "consumer";
        consumer.itskpri = 5;  // more urgent than the producer
        consumer.task = [&](INT, void*) {
            for (int i = 1; i <= 3; ++i) {
                if (tk.tk_wai_sem(sem, 1, 100) == E_OK) {
                    // Model 2 ms of processing (ETM annotation).
                    tk.sim().SIM_Wait(sysc::Time::ms(2), sim::ExecContext::task);
                    std::printf("[%8s] consumer: item %d processed\n",
                                sysc::now().to_string().c_str(), i);
                }
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(consumer), 0);
    });

    // 4. Release the reset and simulate 50 ms.
    sim.power_on();
    sim.run_until(sysc::Time::ms(50));

    // 5. Inspect the run: Gantt chart and per-task statistics.
    std::puts("\nExecution trace (# task, o service call, '.' idle):");
    std::fputs(tk.sim()
                   .gantt()
                   .render_ascii(sysc::Time::zero(), sysc::Time::ms(40),
                                 sysc::Time::ms(1))
                   .c_str(),
               stdout);
    std::puts("\nTask table (T-Kernel/DS view):");
    std::fputs(tkds::render_task_table(tk).c_str(), stdout);
    return 0;
}
