// Quickstart: boot RTK-Spec TRON, run two communicating tasks, and print
// the execution trace -- the smallest useful co-simulation, written
// against the modern rtk::api facade (typed handles + Expected results +
// declarative SystemBuilder). The paper-faithful tk_* surface is still
// there underneath; examples/sync_showcase.cpp tours more of it.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "api/api.hpp"
#include "harness/simulation.hpp"
#include "tkds/tkds.hpp"

using namespace rtk;
using sysc::Time;

int main() {
    // 1. One Simulation = one complete co-simulation context: the
    //    SystemC-equivalent kernel plus the RTOS kernel model on top.
    //    api::System is the typed facade over that kernel.
    Simulation sim;
    tkernel::TKernel& tk = sim.os();
    api::System sys(tk);

    // 2. Declare the whole system up front. Handles land in `h` when the
    //    graph is instantiated; task bodies reach their objects there.
    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    b.semaphore("data_ready");
    b.task("producer").priority(10).autostart().body([&tk, h] {
        api::Semaphore& sem = *h->find_semaphore("data_ready");
        for (int i = 1; i <= 3; ++i) {
            tk.tk_dly_tsk(10);  // produce every 10 ms
            std::printf("[%8s] producer: item %d ready\n",
                        sysc::now().to_string().c_str(), i);
            sem.signal().expect("signal data_ready");
        }
    });
    b.task("consumer").priority(5).autostart().body([&tk, h] {  // more urgent
        api::Semaphore& sem = *h->find_semaphore("data_ready");
        for (int i = 1; i <= 3; ++i) {
            // [[nodiscard]] Status: the 100 ms timeout cannot be
            // silently dropped on the floor.
            if (const api::Status st = sem.wait(1, 100); st.ok()) {
                // Model 2 ms of processing (ETM annotation).
                tk.sim().SIM_Wait(Time::ms(2), sim::ExecContext::task);
                std::printf("[%8s] consumer: item %d processed\n",
                            sysc::now().to_string().c_str(), i);
            } else {
                std::printf("[%8s] consumer: wait failed: %s\n",
                            sysc::now().to_string().c_str(), st.name());
            }
        }
    });

    // 3. The user main runs inside the initial task after boot, exactly
    //    as on a real T-Kernel system: instantiate the graph there.
    sim.set_user_main([&] { *h = std::move(b.instantiate(sys)).value(); });

    // 4. Release the reset and simulate 50 ms.
    sim.power_on();
    sim.run_until(Time::ms(50));

    // 5. Inspect the run: Gantt chart and per-task statistics.
    std::puts("\nExecution trace (# task, o service call, '.' idle):");
    std::fputs(tk.sim()
                   .gantt()
                   .render_ascii(Time::zero(), Time::ms(40), Time::ms(1))
                   .c_str(),
               stdout);
    std::puts("\nTask table (T-Kernel/DS view):");
    std::fputs(tkds::render_task_table(tk).c_str(), stdout);

    // 6. The handles in `h` still own the objects (RAII would delete
    //    them through the facade); hand them to the kernel instead --
    //    teardown reclaims everything when `sim` dies.
    h->release_all();
    return 0;
}
