// The full case study of the paper (§5): RTK-Spec TRON + i8051 BFM +
// video-game application + virtual-prototype widgets.
//
//   $ ./videogame [seconds]
//
// Reproduces the Fig 5 co-simulator: the BFM's real-time clock drives the
// kernel tick, the keypad raises /INT0 through the interrupt controller,
// the game tasks render through the LCD/SSD drivers, and the GUI widgets
// refresh on BFM accesses. Prints the virtual prototype state, the energy
// distribution (Fig 7) and the DS listing (Fig 8) at the end.
#include <cstdio>
#include <cstdlib>

#include "api/api.hpp"
#include "app/videogame.hpp"
#include "gui/gui.hpp"
#include "harness/simulation.hpp"
#include "tkds/tkds.hpp"

using namespace rtk;
using sysc::Time;

int main(int argc, char** argv) {
    const unsigned seconds = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;

    Simulation sim;
    tkernel::TKernel& tk = sim.os();
    bfm::Bfm8051 board(tk.sim());

    app::VideoGame game(tk, board);
    app::VideoGame::wire(tk, board);  // RTC -> tick, intc -> interrupt dispatch
    game.install();

    // Virtual prototype: widgets wrap the peripherals (animate mode).
    gui::Frontend fe(gui::Mode::animate);
    gui::LcdWidget lcd_w(board.lcd());
    gui::SsdWidget ssd_w(board.ssd());
    gui::KeypadWidget pad_w(board.keypad());
    gui::EnergyDistributionWidget energy_w(tk.sim());
    fe.add(lcd_w);
    fe.add(ssd_w);
    fe.add(pad_w);
    fe.add(energy_w);
    fe.drive_from_bus(board.bus(), bfm::Bfm8051::lcd_base, 0x10, lcd_w);
    fe.drive_from_bus(board.bus(), bfm::Bfm8051::ssd_base, 0x10, ssd_w);
    fe.animate(sim.kernel(), energy_w, Time::ms(250));

    // Scripted player: nudge the paddle left/right through the match.
    std::vector<gui::KeypadWidget::ScriptEvent> script;
    for (unsigned s = 0; s < seconds; ++s) {
        const Time base = Time::sec(s);
        script.push_back({base + Time::ms(200), app::VideoGame::key_right, true});
        script.push_back({base + Time::ms(260), app::VideoGame::key_right, false});
        script.push_back({base + Time::ms(600), app::VideoGame::key_left, true});
        script.push_back({base + Time::ms(660), app::VideoGame::key_left, false});
    }
    pad_w.play_script(sim.kernel(), std::move(script));

    sim.power_on();
    sim.run_until(Time::sec(seconds));

    std::printf("=== virtual system prototype after %u s ===\n", seconds);
    std::fputs(fe.render_all().c_str(), stdout);
    std::printf("\nframes=%llu dropped=%llu score=%u misses=%u rounds=%u keys=%llu\n",
                static_cast<unsigned long long>(game.frames_rendered()),
                static_cast<unsigned long long>(game.frames_dropped()), game.score(),
                game.misses(), game.rounds(),
                static_cast<unsigned long long>(game.key_events()));

    std::puts("\n=== T-Kernel/DS listing (Fig 8) ===");
    std::fputs(tkds::render_listing(tk).c_str(), stdout);

    // Where did every game task end up? (api wait-cause pretty-printers;
    // the game's object graph itself was built through api::SystemBuilder
    // -- see app::VideoGame::setup.)
    std::puts("\n=== final task states (rtk::api view) ===");
    const tkernel::ID ids[] = {game.lcd_task(), game.keypad_task(),
                               game.ssd_task(), game.idle_task()};
    for (tkernel::ID id : ids) {
        if (id == 0) {
            continue;
        }
        tkernel::T_RTSK r{};
        if (tk.tk_ref_tsk(id, &r) == tkernel::E_OK) {
            std::printf("  task %-2d %s\n", id,
                        api::describe_task_state(r).c_str());
        }
    }
    return 0;
}
