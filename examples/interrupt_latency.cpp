// Interrupt handling demo: external IRQs, nested interrupts, delayed
// dispatching -- the kernel dynamics of the paper's Fig 3, driven
// through the rtk::api facade (interrupt vectors are part of the
// declarative SystemBuilder graph).
//
//   $ ./interrupt_latency
//
// Fires a low-priority and a high-priority external interrupt into a busy
// system and prints a timeline showing: delivery at the next preemption
// point, nesting of the high-priority ISR, and the postponed task switch
// (delayed dispatching) at handler return.
#include <cstdio>
#include <memory>

#include "api/api.hpp"
#include "harness/simulation.hpp"

using namespace rtk;
using sysc::Time;

namespace {
void stamp(const char* what) {
    std::printf("[%10s] %s\n", sysc::now().to_string().c_str(), what);
}
}  // namespace

int main() {
    Simulation sim;
    tkernel::TKernel& tk = sim.os();
    api::System sys(tk);

    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    b.semaphore("work");

    // A high-priority task woken from inside the ISR: its dispatch is
    // delayed until the (outermost) handler returns.
    b.task("urgent").priority(1).autostart().body([h] {
        api::Semaphore& sem = *h->find_semaphore("work");
        while (sem.wait().ok()) {
            stamp("urgent task dispatched (delayed until ISR returned)");
        }
    });

    // Low-priority ISR: long handler, wakes the urgent task mid-way.
    b.interrupt(0).priority(5).handler([&tk, h](void*) {
        stamp("ISR#0 (low prio) entered");
        tk.sim().SIM_Wait(Time::ms(2), sim::ExecContext::handler);
        h->find_semaphore("work")->signal().expect("signal from ISR#0");
        stamp("ISR#0 signalled urgent task (dispatch postponed)");
        tk.sim().SIM_Wait(Time::ms(1), sim::ExecContext::handler);
        stamp("ISR#0 returning");
    });

    // High-priority ISR nests into the low one.
    b.interrupt(1).priority(1).handler([&tk](void*) {
        stamp("  ISR#1 (high prio) nested in");
        tk.sim().SIM_Wait(Time::us(300), sim::ExecContext::handler);
        stamp("  ISR#1 done");
    });

    // Background task that gets interrupted.
    b.task("background").priority(20).autostart().body([&tk] {
        stamp("background task starts 20 ms of work");
        tk.sim().SIM_Wait(Time::ms(20), sim::ExecContext::task);
        stamp("background task finished its work");
    });

    sim.set_user_main([&] { *h = std::move(b.instantiate(sys)).value(); });
    sim.power_on();

    // Fire interrupts from the "hardware" side.
    sim.kernel().spawn("board", [&] {
        sysc::wait(Time::ms(5) + Time::us(500));
        stamp("board: raising IRQ#0 (mid-quantum; delivered at next tick)");
        tk.trigger_interrupt(0);
        sysc::wait(Time::ms(1));
        stamp("board: raising IRQ#1 while ISR#0 runs (nests)");
        tk.trigger_interrupt(1);
    });

    sim.run_until(Time::ms(40));

    std::printf("\nSIM_API totals: dispatches=%llu preemptions=%llu interrupts=%llu "
                "nesting high-water=%zu\n",
                static_cast<unsigned long long>(tk.sim().total_dispatches()),
                static_cast<unsigned long long>(tk.sim().total_preemptions()),
                static_cast<unsigned long long>(tk.sim().total_interrupt_deliveries()),
                tk.sim().interrupt_stack().high_water_mark());
    std::puts("\nGantt (H handler, # task):");
    std::fputs(tk.sim()
                   .gantt()
                   .render_ascii(Time::ms(4), Time::ms(14), Time::us(250))
                   .c_str(),
               stdout);
    h->release_all();
    return 0;
}
