// Interrupt handling demo: external IRQs, nested interrupts, delayed
// dispatching -- the kernel dynamics of the paper's Fig 3.
//
//   $ ./interrupt_latency
//
// Fires a low-priority and a high-priority external interrupt into a busy
// system and prints a timeline showing: delivery at the next preemption
// point, nesting of the high-priority ISR, and the postponed task switch
// (delayed dispatching) at handler return.
#include <cstdio>

#include "harness/simulation.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using namespace rtk::tkernel;
using sysc::Time;

namespace {
void stamp(const char* what) {
    std::printf("[%10s] %s\n", sysc::now().to_string().c_str(), what);
}
}  // namespace

int main() {
    Simulation sim;
    TKernel& tk = sim.os();

    tk.set_user_main([&] {
        T_CSEM cs;
        cs.name = "work";
        const ID sem = tk.tk_cre_sem(cs);

        // A high-priority task woken from inside the ISR: its dispatch is
        // delayed until the (outermost) handler returns.
        T_CTSK hi;
        hi.name = "urgent";
        hi.itskpri = 1;
        hi.task = [&](INT, void*) {
            for (;;) {
                if (tk.tk_wai_sem(sem, 1, TMO_FEVR) != E_OK) {
                    return;
                }
                stamp("urgent task dispatched (delayed until ISR returned)");
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(hi), 0);

        // Low-priority ISR: long handler, wakes the urgent task mid-way.
        T_DINT lo_isr;
        lo_isr.intpri = 5;
        lo_isr.inthdr = [&](void*) {
            stamp("ISR#0 (low prio) entered");
            tk.sim().SIM_Wait(Time::ms(2), sim::ExecContext::handler);
            tk.tk_sig_sem(sem, 1);
            stamp("ISR#0 signalled urgent task (dispatch postponed)");
            tk.sim().SIM_Wait(Time::ms(1), sim::ExecContext::handler);
            stamp("ISR#0 returning");
        };
        tk.tk_def_int(0, lo_isr);

        // High-priority ISR nests into the low one.
        T_DINT hi_isr;
        hi_isr.intpri = 1;
        hi_isr.inthdr = [&](void*) {
            stamp("  ISR#1 (high prio) nested in");
            tk.sim().SIM_Wait(Time::us(300), sim::ExecContext::handler);
            stamp("  ISR#1 done");
        };
        tk.tk_def_int(1, hi_isr);

        // Background task that gets interrupted.
        T_CTSK bg;
        bg.name = "background";
        bg.itskpri = 20;
        bg.task = [&](INT, void*) {
            stamp("background task starts 20 ms of work");
            tk.sim().SIM_Wait(Time::ms(20), sim::ExecContext::task);
            stamp("background task finished its work");
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(bg), 0);
    });

    sim.power_on();

    // Fire interrupts from the "hardware" side.
    sim.kernel().spawn("board", [&] {
        sysc::wait(Time::ms(5) + Time::us(500));
        stamp("board: raising IRQ#0 (mid-quantum; delivered at next tick)");
        tk.trigger_interrupt(0);
        sysc::wait(Time::ms(1));
        stamp("board: raising IRQ#1 while ISR#0 runs (nests)");
        tk.trigger_interrupt(1);
    });

    sim.run_until(Time::ms(40));

    std::printf("\nSIM_API totals: dispatches=%llu preemptions=%llu interrupts=%llu "
                "nesting high-water=%zu\n",
                static_cast<unsigned long long>(tk.sim().total_dispatches()),
                static_cast<unsigned long long>(tk.sim().total_preemptions()),
                static_cast<unsigned long long>(tk.sim().total_interrupt_deliveries()),
                tk.sim().interrupt_stack().high_water_mark());
    std::puts("\nGantt (H handler, # task):");
    std::fputs(tk.sim()
                   .gantt()
                   .render_ascii(Time::ms(4), Time::ms(14), Time::us(250))
                   .c_str(),
               stdout);
    return 0;
}
