// T-Monitor-style debug console over the BFM UART, running beside the
// video game -- the T-Engine debugging experience on the reproduced stack.
//
//   $ ./serial_monitor
//
// A scripted "host terminal" types commands into the serial line; the
// monitor task answers through the UART using T-Kernel/DS functions.
#include <cstdio>

#include "api/api.hpp"
#include "app/monitor.hpp"
#include "app/videogame.hpp"
#include "harness/simulation.hpp"

using namespace rtk;
using sysc::Time;

int main() {
    Simulation sim;
    tkernel::TKernel& tk = sim.os();
    bfm::Bfm8051 board(tk.sim());

    app::VideoGame game(tk, board);
    app::SerialMonitor monitor(tk, board);
    app::VideoGame::wire(tk, board);
    tk.set_user_main([&] {
        game.setup();
        monitor.setup();
    });
    sim.power_on();

    // Host terminal: type commands while the game runs. UART frames at
    // 9600 baud take ~1 ms per character, so leave time between commands.
    sim.kernel().spawn("host_terminal", [&] {
        sysc::wait(Time::ms(200));
        monitor.type_line("ver");
        sysc::wait(Time::ms(400));
        monitor.type_line("tim");
        sysc::wait(Time::ms(400));
        monitor.type_line("stat");
        sysc::wait(Time::ms(600));
        monitor.type_line("tsk");
    });

    sim.run_until(Time::sec(4));

    std::puts("=== UART transcript (monitor output) ===");
    std::fputs(monitor.output().c_str(), stdout);
    std::printf("\ncommands executed: %llu (unknown: %llu); game frames: %llu\n",
                static_cast<unsigned long long>(monitor.commands_executed()),
                static_cast<unsigned long long>(monitor.unknown_commands()),
                static_cast<unsigned long long>(game.frames_rendered()));

    // The monitor task (built through api::SystemBuilder in
    // SerialMonitor::setup) should be parked on its RX event flag.
    tkernel::T_RTSK r{};
    if (tk.tk_ref_tsk(monitor.task_id(), &r) == tkernel::E_OK) {
        std::printf("monitor task state: %s\n",
                    api::describe_task_state(r).c_str());
    }
    return 0;
}
