// Fig 4 reproduction: interaction with BFM-wrapped H/W peripherals.
//
// Exercises every BFM driver-call class from an application task, prints
// the per-call cycle/energy budget table ("Each BFM Call will be
// associated with a cycle budget ... and an estimation on the energy
// consumed during that BFM access"), and dumps a VCD waveform of the
// multiplexed parallel port -- the paper's "monitoring H/W by probing
// signals ... in a waveform viewer".
#include <cstdio>

#include "bench_util.hpp"
#include "bfm/bfm.hpp"
#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

using namespace rtk;
using sysc::Time;

int main() {
    std::puts("Fig 4: BFM driver calls -- cycle budgets and waveform probe\n");

    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    bfm::Bfm8051 board(api);

    sysc::TraceFile vcd("fig4_bfm.vcd");
    vcd.trace(board.pio().p0(), "P0_data");
    vcd.trace(board.pio().p2(), "P2_select");
    vcd.trace(board.pio().ale(), "ALE");

    struct Probe {
        const char* call;
        std::uint64_t cycles;
        double energy_nj;
    };
    std::vector<Probe> probes;

    auto& task = api.SIM_CreateThread("driver_task", sim::ThreadKind::task, 5, [&] {
        auto measure = [&](const char* name, auto fn) {
            const Time t0 = api.self().token().cet(sim::ExecContext::bfm_access);
            const double e0 = api.self().token().cee_nj(sim::ExecContext::bfm_access);
            fn();
            const Time t1 = api.self().token().cet(sim::ExecContext::bfm_access);
            const double e1 = api.self().token().cee_nj(sim::ExecContext::bfm_access);
            probes.push_back({name,
                              (t1 - t0) / api.costs().at(sim::ExecContext::bfm_access).time_per_unit,
                              e1 - e0});
        };
        measure("xdata write (MOVX)", [&] { board.bus().write_xdata(0x0100, 0x42); });
        measure("xdata read (MOVX)", [&] { (void)board.bus().read_xdata(0x0100); });
        measure("LCD putc (busy-poll + data)", [&] { board.lcd_putc('A'); });
        measure("LCD command (clear)", [&] { board.lcd_clear(); });
        measure("keypad full matrix scan", [&] { (void)board.keypad_scan(); });
        measure("SSD show 4 digits", [&] { board.ssd_show(1234); });
        measure("serial send (status poll + SBUF)", [&] { (void)board.serial_send('K'); });

        // Drive the multiplexed port for the waveform.
        api.SIM_Wait(Time::us(50), sim::ExecContext::task);
        board.pio().select(1, 1);
        board.pio().data_write(0xA5);
        api.SIM_Wait(Time::us(20), sim::ExecContext::task);
        board.pio().select(3, 1);
        board.pio().data_write(0x3C);
        api.SIM_Wait(Time::us(20), sim::ExecContext::task);
    });
    api.SIM_StartThread(task);
    k.run_until(Time::ms(20));  // bounded: the BFM's RTC ticks forever
    vcd.flush();

    bench::Table t({"BFM call (driver model)", "machine cycles", "energy [nJ]"});
    for (const auto& p : probes) {
        t.add_row({p.call, std::to_string(p.cycles), bench::fmt(p.energy_nj, 0)});
    }
    t.print();

    std::printf("\ntotal BFM accesses: %llu, bus cycles: %llu\n",
                static_cast<unsigned long long>(board.bus().access_count()),
                static_cast<unsigned long long>(board.bus().cycles_consumed()));
    std::printf("waveform written to fig4_bfm.vcd (%llu value changes) -- "
                "open with any VCD viewer\n",
                static_cast<unsigned long long>(vcd.value_changes_written()));
    std::printf("task CET in bfm context: %s\n",
                task.token().cet(sim::ExecContext::bfm_access).to_string().c_str());
    return 0;
}
