// Table 1 reproduction: the RTOS modeling API set of SIM_API.
//
// The paper's Table 1 lists the programming constructs (partial). This
// bench enumerates the reproduced API surface and measures the host-side
// simulation overhead of each construct class (time per simulated call),
// demonstrating that the library is lightweight enough for RTOS-level
// co-simulation.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

using namespace rtk;
using sysc::Time;

namespace {

/// Host nanoseconds per iteration of `body`, which runs under a fresh
/// kernel+api pair driven for `iters` iterations.
template <typename Setup>
double measure_ns(int iters, Setup setup) {
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    auto loop = setup(k, api, iters);
    bench::WallClock wall;
    loop();
    return wall.seconds() * 1e9 / iters;
}

}  // namespace

int main() {
    std::puts("Table 1: RTOS Modeling APIs of SIM_API (reproduced set)\n");
    bench::Table listing({"construct", "role (paper sec. 4)"});
    listing.add_row({"SIM_CreateThread/SIM_DeleteThread", "T-THREAD registration in SIM_HashTB"});
    listing.add_row({"SIM_StartThread", "startup event Es, entry into the ready queue"});
    listing.add_row({"SIM_Exit / SIM_Terminate", "end / forced end of a firing cycle"});
    listing.add_row({"SIM_Wait / SIM_WaitUnits", "ETM/EEM consumption with preemption points"});
    listing.add_row({"SIM_Sleep / SIM_WakeUp", "sleep event Ew, wait-service support"});
    listing.add_row({"SIM_Suspend / SIM_Resume", "forced suspension (tk_sus_tsk)"});
    listing.add_row({"SIM_ChangePriority / SIM_SetCurrentPriority", "scheduling + mutex protocols"});
    listing.add_row({"SIM_RotateReadyQueue", "round-robin support (tk_rot_rdq)"});
    listing.add_row({"SIM_EnterService / SIM_ExitService", "service call atomicity"});
    listing.add_row({"SIM_DisableDispatch / SIM_EnableDispatch", "dispatch latency control"});
    listing.add_row({"SIM_RequestPreempt", "tick-driven slice rotation"});
    listing.add_row({"SIM_RaiseInterrupt", "interrupts, nesting via SIM_Stack"});
    listing.add_row({"SIM_HashTB / SIM_Stack accessors", "debugger & DS support"});
    listing.print();

    std::puts("\nhost cost per construct (simulation overhead):");
    bench::Table perf({"construct", "ns/call (host)"});

    perf.add_row({"SIM_Wait (1 tick quantum)",
                  bench::fmt(measure_ns(20000, [](sysc::Kernel& k, sim::SimApi& api, int iters) {
                      auto& t = api.SIM_CreateThread("t", sim::ThreadKind::task, 5, [&api, iters] {
                          for (int i = 0; i < iters; ++i) {
                              api.SIM_Wait(Time::ms(1), sim::ExecContext::task);
                          }
                      });
                      api.SIM_StartThread(t);
                      return [&k] { k.run(); };
                  }), 0)});

    perf.add_row({"sleep/wakeup round trip",
                  bench::fmt(measure_ns(10000, [](sysc::Kernel& k, sim::SimApi& api, int iters) {
                      sim::TThread* t = &api.SIM_CreateThread(
                          "t", sim::ThreadKind::task, 5, [&api, iters] {
                              for (int i = 0; i < iters; ++i) {
                                  api.SIM_Sleep();
                              }
                          });
                      api.SIM_StartThread(*t);
                      return [&k, &api, t, iters] {
                          for (int i = 0; i < iters; ++i) {
                              k.run();  // until t sleeps
                              api.SIM_WakeUp(*t);
                          }
                          k.run();
                      };
                  }), 0)});

    perf.add_row({"service enter/exit pair",
                  bench::fmt(measure_ns(100000, [](sysc::Kernel& k, sim::SimApi& api, int iters) {
                      auto& t = api.SIM_CreateThread("t", sim::ThreadKind::task, 5, [&api, iters] {
                          for (int i = 0; i < iters; ++i) {
                              sim::SimApi::ServiceGuard svc(api);
                          }
                      });
                      api.SIM_StartThread(t);
                      return [&k] { k.run(); };
                  }), 0)});

    perf.add_row({"interrupt delivery (idle CPU)",
                  bench::fmt(measure_ns(10000, [](sysc::Kernel& k, sim::SimApi& api, int iters) {
                      sim::TThread* isr = &api.SIM_CreateThread(
                          "isr", sim::ThreadKind::interrupt_handler, -10, [] {});
                      return [&k, &api, isr, iters] {
                          for (int i = 0; i < iters; ++i) {
                              api.SIM_RaiseInterrupt(*isr);
                              k.run();
                          }
                      };
                  }), 0)});

    perf.print();
    return 0;
}
