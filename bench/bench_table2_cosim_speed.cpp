// Table 2 reproduction: co-simulation speed measure.
//
// Paper setup (§5): the full co-simulation framework -- RTK-Spec TRON +
// i8051 BFM + video-game application + GUI widgets -- simulates S = 1 s
// of system time; R is the measured wall-clock time. The paper reports
// S/R = 0.2 without GUI overhead and S/R = 0.1 with GUI overhead at the
// maximum BFM-access rate driving a widget every 10 ms (Pentium III
// 1.4 GHz host with Tcl/Tk-style widgets).
//
// Our widgets are headless with an explicit host-cost model, so the
// GUI-redraw cost is calibrated once against this host: one widget
// refresh is sized such that refreshing every 10 ms costs about as much
// wall-clock as the whole no-GUI co-simulation -- the paper's observed
// 2x factor at the maximum access rate. The reproduced *shape* is then
// host-independent: (i) ~2x overhead at the 10 ms widget rate and
// (ii) monotonically decreasing overhead as the rate drops to 100 ms.
#include <cstdio>

#include "app/videogame.hpp"
#include "bench_util.hpp"
#include "gui/gui.hpp"

using namespace rtk;
using sysc::Time;

namespace {

constexpr unsigned sim_seconds = 1;
constexpr unsigned physics_period_ms = 10;  // paper: maximum BFM access rate

struct RunResult {
    double wall_s = 0.0;
    std::uint64_t frames = 0;
    std::uint64_t widget_refreshes = 0;
};

/// Full co-simulation for `sim_seconds`; widgets refresh at most every
/// `widget_period_ms` (0 = GUI disabled).
RunResult run_cosim(unsigned widget_period_ms, std::uint64_t gui_cost_iters) {
    sysc::Kernel k;
    tkernel::TKernel tk{k};
    bfm::Bfm8051 board(tk.sim());
    app::GameConfig gc;
    gc.physics_period_ms = physics_period_ms;
    app::VideoGame game(tk, board, gc);
    app::VideoGame::wire(tk, board);
    game.install();

    gui::Frontend fe(gui::Mode::animate);
    gui::LcdWidget lcd_w(board.lcd(), gui_cost_iters);
    gui::SsdWidget ssd_w(board.ssd(), gui_cost_iters / 8);
    if (widget_period_ms != 0) {
        fe.add(lcd_w);
        fe.add(ssd_w);
        fe.drive_from_bus(board.bus(), bfm::Bfm8051::lcd_base, 0x10, lcd_w);
        fe.drive_from_bus(board.bus(), bfm::Bfm8051::ssd_base, 0x10, ssd_w);
        lcd_w.set_min_interval(Time::ms(widget_period_ms));
        ssd_w.set_min_interval(Time::ms(widget_period_ms));
    }

    tk.power_on();
    bench::WallClock wall;
    k.run_until(Time::sec(sim_seconds));
    RunResult r;
    r.wall_s = wall.seconds();
    r.frames = game.frames_rendered();
    r.widget_refreshes = fe.total_refreshes();
    return r;
}

/// Host nanoseconds per cost-model iteration.
double measure_iter_ns() {
    gui::HostCostModel probe(20'000'000);
    bench::WallClock wall;
    probe.burn();
    return wall.seconds() * 1e9 / static_cast<double>(probe.iterations());
}

/// Best-of-N to suppress host-load noise (standard benchmarking practice).
RunResult best_of(int n, unsigned widget_period_ms, std::uint64_t gui_cost_iters) {
    RunResult best;
    for (int i = 0; i < n; ++i) {
        RunResult r = run_cosim(widget_period_ms, gui_cost_iters);
        if (i == 0 || r.wall_s < best.wall_s) {
            best = r;
        }
    }
    return best;
}

}  // namespace

int main() {
    std::puts("Table 2: Co-Simulation Speed Measure (paper DATE'05, sec. 5)");
    std::printf("workload: RTK-Spec TRON + i8051 BFM + video game, S = %u s, "
                "BFM access rate %u ms\n\n",
                sim_seconds, physics_period_ms);

    // ---- calibration of the widget redraw cost (see header comment) ----
    const double iter_ns = measure_iter_ns();
    const RunResult base = best_of(3, 0, 0);
    const double refreshes_at_max = 1000.0 * sim_seconds / physics_period_ms;
    const std::uint64_t gui_iters = static_cast<std::uint64_t>(
        base.wall_s * 1e9 / (refreshes_at_max * iter_ns));
    std::printf("calibration: base R = %.3f s, %.2f ns/iter -> "
                "%.1fM iterations per widget redraw\n\n",
                base.wall_s, iter_ns, static_cast<double>(gui_iters) / 1e6);

    bench::Table table({"configuration", "S [s]", "R [s]", "S/R", "frames",
                        "widget refreshes"});
    table.add_row({"no GUI overhead", std::to_string(sim_seconds),
                   bench::fmt(base.wall_s, 3),
                   bench::fmt(sim_seconds / base.wall_s, 2),
                   std::to_string(base.frames), "0"});

    double sr_gui10 = 0.0;
    for (unsigned period : {10u, 20u, 50u, 100u}) {
        const RunResult r = best_of(3, period, gui_iters);
        if (period == 10) {
            sr_gui10 = sim_seconds / r.wall_s;
        }
        table.add_row({"GUI widget driven every " + std::to_string(period) + " ms",
                       std::to_string(sim_seconds), bench::fmt(r.wall_s, 3),
                       bench::fmt(sim_seconds / r.wall_s, 2),
                       std::to_string(r.frames),
                       std::to_string(r.widget_refreshes)});
    }
    table.print();

    const double sr_nogui = sim_seconds / base.wall_s;
    std::printf("\npaper:  S/R = 0.2 without GUI, 0.1 with GUI @ 10 ms "
                "(GUI factor 2.0x, Pentium III 1.4 GHz)\n");
    std::printf("here:   S/R = %.2f without GUI, %.2f with GUI @ 10 ms "
                "(GUI factor %.2fx on this host)\n",
                sr_nogui, sr_gui10, sr_nogui / sr_gui10);
    std::puts("shape:  the GUI factor is ~2x at the maximum widget rate and the");
    std::puts("        slowdown decreases with the widget rate (adjacent rates can tie");
    std::puts("        within host-noise), as in the paper's measurement.");
    return 0;
}
