// Fig 8 reproduction: T-Kernel/DS output listing.
//
// Boots the case study, freezes it mid-scenario and dumps the kernel
// internal state through the T-Kernel/DS reference functions -- tasks
// with states/priorities/wait factors, every synchronisation object,
// time-event handlers, interrupt vectors, and the recent task state
// transition journal.
#include <cstdio>

#include "app/videogame.hpp"
#include "tkds/tkds.hpp"

using namespace rtk;
using sysc::Time;

int main() {
    std::puts("Fig 8: T-Kernel/DS output listing (sample)\n");

    sysc::Kernel k;
    tkernel::TKernel tk{k};
    bfm::Bfm8051 board(tk.sim());
    app::VideoGame game(tk, board);
    app::VideoGame::wire(tk, board);
    game.install();
    tk.power_on();

    // Freeze mid-scenario with a keypress in flight.
    k.run_until(Time::ms(333));
    board.keypad().press(app::VideoGame::key_right);
    k.run_for(Time::ms(2));

    std::fputs(tkds::render_listing(tk).c_str(), stdout);

    std::puts("\n--- task state transition journal (last 25) ---");
    std::fputs(tkds::render_state_journal(tk, 25).c_str(), stdout);

    std::puts("\n--- per-task execution statistics (td_inf_tsk) ---");
    std::vector<tkernel::ID> ids;
    tkds::td_lst_tsk(tk, ids);
    std::printf("%-14s %12s %12s %12s %12s\n", "task", "stime[ms]", "utime[ms]",
                "btime[ms]", "energy[uJ]");
    for (tkernel::ID id : ids) {
        tkds::TD_ITSK info;
        tkds::TD_RTSK r;
        if (tkds::td_inf_tsk(tk, id, &info) == tkernel::E_OK &&
            tkds::td_ref_tsk(tk, id, &r) == tkernel::E_OK) {
            std::printf("%-14s %12.3f %12.3f %12.3f %12.2f\n", r.name.c_str(),
                        info.stime.to_ms(), info.utime.to_ms(), info.btime.to_ms(),
                        info.energy_nj * 1e-3);
        }
    }
    return 0;
}
