// Fig 7 reproduction: the Consumed Time/Energy Distribution widget.
//
// Animate-mode run of the case study: "a battery of 10-watt-hour was
// assumed and at run time the consumed execution time (CET) and energy
// (CEE) were accumulated and distributed over registered T-THREADs and
// the battery's status bar was updated. From such a display, designers
// can figure out the maximum duration of the battery's lifespan for a
// given application, and the tasks that consume much time or energy."
#include <cstdio>

#include "app/videogame.hpp"
#include "bench_util.hpp"
#include "gui/gui.hpp"

using namespace rtk;
using sysc::Time;

int main() {
    std::puts("Fig 7: Consumed Time/Energy Distribution (animate mode)\n");

    sysc::Kernel k;
    tkernel::TKernel tk{k};
    bfm::Bfm8051 board(tk.sim());
    app::VideoGame game(tk, board);
    app::VideoGame::wire(tk, board);
    game.install();

    gui::Frontend fe(gui::Mode::animate);
    gui::EnergyDistributionWidget widget(tk.sim(), 10.0);  // 10 Wh battery
    fe.add(widget);
    fe.animate(k, widget, Time::ms(500));

    tk.power_on();
    k.run_until(Time::sec(3));
    widget.refresh();

    std::fputs(widget.last_rendering().c_str(), stdout);

    // HW/SW partitioning insight the paper derives from this display.
    auto stats = sim::collect_stats(tk.sim());
    if (!stats.rows.empty()) {
        const auto& hottest = stats.rows.front();
        std::printf("\nhottest thread: '%s' with %.1f%% of the consumed energy -- "
                    "the paper's candidate for moving to H/W or optimization\n",
                    hottest.name.c_str(), hottest.cee_share * 100.0);
    }
    std::printf("widget refreshed %llu times during the run (animate mode)\n",
                static_cast<unsigned long long>(widget.refresh_count()));
    return 0;
}
