// Corpus replay throughput: how fast the checked-in scenario corpus
// loads, validates and replays against its pinned fingerprints -- the
// number that says what `rtk-corpus replay corpus/v1` costs in CI and
// how much a parallel runner buys back.
//
//   $ ./bench_corpus_replay [sample] [max_threads]
//
// Samples `sample` scenarios evenly across the pinned index (0 = the
// whole corpus), measures the parse stage and then the replay stage at
// 1 and max_threads worker threads, cross-checks every fingerprint
// against its pin, and emits BENCH_corpus_replay.json.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "corpus/index.hpp"
#include "corpus/scenario_file.hpp"
#include "harness/corpus_bridge.hpp"
#include "harness/runner.hpp"

namespace bench = rtk::bench;
namespace corpus = rtk::corpus;
namespace harness = rtk::harness;
using rtk::api::Json;

namespace {

bool slurp(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

}  // namespace

int main(int argc, char** argv) {
#ifdef RTK_CORPUS_V1_DIR
    const std::string dir = RTK_CORPUS_V1_DIR;
#else
    const std::string dir = "corpus/v1";
#endif
    const std::size_t sample =
        argc > 1
            ? static_cast<std::size_t>(bench::parse_count_or_die(argv[1], "sample"))
            : 0;  // 0 = whole corpus
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned max_threads =
        argc > 2 ? static_cast<unsigned>(
                       bench::parse_count_or_die(argv[2], "max_threads"))
                 : std::min(hw, 8u);

    corpus::CorpusIndex index;
    std::string error;
    if (!corpus::CorpusIndex::load(dir, index, &error)) {
        std::fprintf(stderr, "corpus index: %s\n", error.c_str());
        return 1;
    }
    index.sort();
    const std::size_t total = index.entries.size();
    const std::size_t stride =
        (sample == 0 || sample >= total) ? 1 : total / sample;

    // Stage 1: load + digest-check + strict-parse the sampled scenarios.
    std::vector<const corpus::IndexEntry*> picked;
    std::vector<corpus::ScenarioFile> files;
    const bench::WallClock parse_clock;
    for (std::size_t i = 0; i < total; i += stride) {
        const corpus::IndexEntry& e = index.entries[i];
        std::string bytes;
        if (!slurp(dir + "/" + e.file, bytes)) {
            std::fprintf(stderr, "unreadable: %s\n", e.file.c_str());
            return 1;
        }
        if (corpus::fnv1a64(bytes) != e.digest) {
            std::fprintf(stderr, "digest mismatch: %s\n", e.file.c_str());
            return 1;
        }
        corpus::ScenarioFile f;
        if (!corpus::ScenarioFile::parse(bytes, f, &error)) {
            std::fprintf(stderr, "%s: %s\n", e.file.c_str(), error.c_str());
            return 1;
        }
        picked.push_back(&e);
        files.push_back(std::move(f));
    }
    const double parse_wall = parse_clock.seconds();
    const double parse_rate =
        parse_wall > 0.0 ? static_cast<double>(files.size()) / parse_wall : 0.0;

    std::printf("Corpus replay: %zu of %zu scenarios from %s\n\n", files.size(),
                total, dir.c_str());

    std::vector<harness::ScenarioSpec> specs;
    specs.reserve(files.size());
    for (const corpus::ScenarioFile& f : files) {
        harness::ScenarioSpec spec = harness::scenario_from_corpus(f);
        spec.trace.enabled = true;  // fingerprint-neutral, fills metrics
        specs.push_back(std::move(spec));
    }

    std::vector<unsigned> thread_counts{1};
    if (max_threads >= 2) {
        thread_counts.push_back(max_threads);
    }

    bench::Table table({"threads", "wall [s]", "scenarios/s", "speedup"});
    Json results = Json::array();
    double serial_rate = 0.0;
    bool pins_match = true;

    for (unsigned threads : thread_counts) {
        const bench::WallClock clock;
        const harness::BatchReport report =
            harness::ScenarioRunner({threads}).run(specs);
        const double wall = clock.seconds();
        for (std::size_t i = 0; i < picked.size(); ++i) {
            if (report.results[i].fingerprint != picked[i]->fingerprint) {
                std::fprintf(stderr, "fingerprint drift: %s (%u threads)\n",
                             picked[i]->file.c_str(), threads);
                pins_match = false;
            }
        }
        const double rate =
            wall > 0.0 ? static_cast<double>(files.size()) / wall : 0.0;
        if (threads == 1) {
            serial_rate = rate;
        }
        const double speedup = serial_rate > 0.0 ? rate / serial_rate : 0.0;
        table.add_row({std::to_string(threads), bench::fmt(wall, 3),
                       bench::fmt(rate, 1), bench::fmt(speedup) + "x"});

        Json row = Json::object();
        row.set("threads", Json::number(threads));
        row.set("wall_seconds", Json::number_real(wall));
        row.set("scenarios_per_second", Json::number_real(rate));
        row.set("speedup_vs_serial", Json::number_real(speedup));
        results.push(std::move(row));
    }
    table.print();

    Json doc = Json::object();
    doc.set("bench", Json::string("corpus_replay"));
    doc.set("meta", bench::meta_json_doc());
    doc.set("corpus_scenarios", Json::number(total));
    doc.set("sampled", Json::number(files.size()));
    doc.set("parse_wall_seconds", Json::number_real(parse_wall));
    doc.set("parse_scenarios_per_second", Json::number_real(parse_rate));
    doc.set("hardware_concurrency", Json::number(hw));
    doc.set("fingerprints_match", Json::boolean(pins_match));
    doc.set("results", std::move(results));
    {
        std::ofstream out("BENCH_corpus_replay.json");
        out << doc.dump(2) << "\n";
    }
    std::puts("\n  wrote BENCH_corpus_replay.json");

    return pins_match ? 0 : 1;
}
