// Fig 2 reproduction: the T-THREAD process model.
//
// Drives a single T-THREAD through every transition class of the
// synchronized Petri net -- Es (startup), Ec (continue run), Ex (return
// from preemption), Ei (return from interrupt), Ew (sleep event) -- and
// prints the resulting characteristic (firing) vector together with the
// ETM/EEM accumulation CET/CEE per execution context.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

using namespace rtk;
using sysc::Time;

int main() {
    std::puts("Fig 2: T-THREAD process model -- firing vector & token accounting\n");

    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};

    // The observed thread: works, sleeps, works again.
    auto& subject = api.SIM_CreateThread("subject", sim::ThreadKind::task, 10, [&] {
        api.SIM_Wait(Time::ms(3), sim::ExecContext::task);       // Ec transitions
        api.SIM_Sleep();                                          // waits for Ew
        api.SIM_Wait(Time::ms(2), sim::ExecContext::bfm_access);  // more work
    });
    // A high-priority thread to force Ex (preemption).
    auto& preemptor = api.SIM_CreateThread("preemptor", sim::ThreadKind::task, 1, [&] {
        api.SIM_Wait(Time::ms(1), sim::ExecContext::task);
    });
    // An interrupt handler to force Ei.
    auto& isr = api.SIM_CreateThread("isr", sim::ThreadKind::interrupt_handler, -10, [&] {
        api.SIM_Wait(Time::us(200), sim::ExecContext::handler);
    });

    api.SIM_StartThread(subject);
    k.spawn("scenario", [&] {
        sysc::wait(Time::us(500));
        api.SIM_StartThread(preemptor);  // preempts subject at 1 ms (Ex)
        sysc::wait(Time::ms(2));
        api.SIM_RaiseInterrupt(isr);     // interrupts subject (Ei)
        sysc::wait(Time::ms(2));
        api.SIM_WakeUp(subject);         // sleep event arrives (Ew)
    });
    k.run_until(Time::ms(20));

    const sim::Token& tok = subject.token();
    std::puts("firing vector S-bar of 'subject' (paper Fig 2 notation):");
    bench::Table fv({"transition", "enabling event", "firings"});
    fv.add_row({"T(o) source", "Es startup after kernel init",
                std::to_string(tok.firings(sim::RunEvent::startup))});
    fv.add_row({"T(p) continue", "Ec continue-run (quantum boundary)",
                std::to_string(tok.firings(sim::RunEvent::continue_run))});
    fv.add_row({"T(x) resume", "Ex return from preemption",
                std::to_string(tok.firings(sim::RunEvent::return_from_preemption))});
    fv.add_row({"T(i) resume", "Ei return from interrupt",
                std::to_string(tok.firings(sim::RunEvent::return_from_interrupt))});
    fv.add_row({"T(q) wake", "Ew sleep event arrival",
                std::to_string(tok.firings(sim::RunEvent::sleep_event))});
    fv.print();

    std::puts("\ntoken accumulation (CET = sum ETM, CEE = sum EEM):");
    bench::Table acc({"context", "CET [ms]", "CEE [uJ]"});
    for (std::size_t c = 0; c < sim::exec_context_count; ++c) {
        const auto ctx = static_cast<sim::ExecContext>(c);
        acc.add_row({sim::to_string(ctx), bench::fmt(tok.cet(ctx).to_ms(), 3),
                     bench::fmt(tok.cee_nj(ctx) * 1e-3, 2)});
    }
    acc.add_row({"TOTAL", bench::fmt(tok.cet().to_ms(), 3),
                 bench::fmt(tok.cee_nj() * 1e-3, 2)});
    acc.print();

    std::printf("\ncompleted firing cycles N = %llu; total transition firings = %llu\n",
                static_cast<unsigned long long>(tok.cycles()),
                static_cast<unsigned long long>(tok.total_firings()));
    std::puts("\nexecution trace of the scenario:");
    std::fputs(api.gantt().render_ascii(Time::zero(), Time::ms(8), Time::us(250)).c_str(),
               stdout);
    return 0;
}
