// Ablation bench for the design choices DESIGN.md calls out, measured at
// the SIM_API level where the semantics are crisp:
//   (a) preemption granularity (the system-clock quantum of SIM_Wait),
//   (b) service call atomicity on/off,
//   (c) delayed dispatching on/off,
//   (d) Gantt recording host overhead.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

using namespace rtk;
using sysc::Time;

namespace {

/// Average latency from "hi becomes ready at a mid-quantum offset" to
/// "hi executes", while a low-priority task is busy.
double preemption_latency_us(sim::SimApi::Config cfg, bool ready_inside_service,
                             int rounds = 20) {
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched, cfg};
    Time total{};
    int samples = 0;
    Time ready_at;
    auto& lo = api.SIM_CreateThread("lo", sim::ThreadKind::task, 20, [&] {
        for (;;) {
            if (ready_inside_service) {
                sim::SimApi::ServiceGuard svc(api);
                api.SIM_Wait(Time::ms(4), sim::ExecContext::service_call);
            } else {
                api.SIM_Wait(Time::ms(4), sim::ExecContext::task);
            }
        }
    });
    auto& hi = api.SIM_CreateThread("hi", sim::ThreadKind::task, 1, [&] {
        total += sysc::now() - ready_at;
        ++samples;
    });
    api.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        for (int i = 0; i < rounds; ++i) {
            // Offsets sweep the quantum so the average is representative.
            sysc::wait(Time::ms(4) + Time::us(137 * (static_cast<unsigned>(i) % 7)));
            ready_at = sysc::now();
            api.SIM_StartThread(hi);
            sysc::wait(Time::ms(2));
        }
    });
    k.run_until(Time::ms(200 * static_cast<unsigned>(rounds) / 10));
    return samples > 0 ? total.to_us() / samples : -1.0;
}

/// Latency from "ISR wakes hi" to "hi executes" under delayed dispatching
/// on/off, with the handler continuing for `tail_us` after the wake.
double delayed_dispatch_latency_us(bool delayed, std::uint64_t tail_us) {
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi::Config cfg;
    cfg.delayed_dispatching = delayed;
    sim::SimApi api{k, sched, cfg};
    Time woke_at, ran_at;
    auto& lo = api.SIM_CreateThread("lo", sim::ThreadKind::task, 20, [&] {
        api.SIM_Wait(Time::ms(50), sim::ExecContext::task);
    });
    auto& hi = api.SIM_CreateThread("hi", sim::ThreadKind::task, 1, [&] {
        ran_at = sysc::now();
    });
    auto& isr = api.SIM_CreateThread("isr", sim::ThreadKind::interrupt_handler, -10, [&] {
        api.SIM_Wait(Time::us(100), sim::ExecContext::handler);
        woke_at = sysc::now();
        api.SIM_StartThread(hi);
        api.SIM_Wait(Time::us(tail_us), sim::ExecContext::handler);
    });
    api.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(1500));
        api.SIM_RaiseInterrupt(isr);
    });
    k.run_until(Time::ms(60));
    return (ran_at - woke_at).to_us();
}

/// Host wall time of a fixed busy workload, to expose recording overhead.
double host_wall_ms(bool record_gantt) {
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi::Config cfg;
    cfg.quantum = Time::us(100);  // many slices -> many segments
    cfg.record_gantt = record_gantt;
    sim::SimApi api{k, sched, cfg};
    auto& t = api.SIM_CreateThread("busy", sim::ThreadKind::task, 5, [&] {
        for (int i = 0; i < 20; ++i) {
            api.SIM_Wait(Time::ms(25), sim::ExecContext::task);
            api.SIM_Wait(Time::ms(25), sim::ExecContext::bfm_access);
        }
    });
    api.SIM_StartThread(t);
    bench::WallClock wall;
    k.run();
    return wall.seconds() * 1e3;
}

}  // namespace

int main() {
    std::puts("Ablation: SIM_API design choices (DESIGN.md sec. 5)\n");

    // (a) preemption granularity sweep
    std::puts("(a) preemption granularity -- quantum vs preemption latency:");
    bench::Table ta({"quantum (tick)", "avg preemption latency [us]"});
    for (std::uint64_t q_us : {250u, 500u, 1000u, 2000u, 4000u}) {
        sim::SimApi::Config cfg;
        cfg.quantum = Time::us(q_us);
        ta.add_row({std::to_string(q_us) + " us",
                    bench::fmt(preemption_latency_us(cfg, false), 0)});
    }
    ta.print();
    std::puts("  -> latency tracks ~quantum/2: the system-clock granularity of");
    std::puts("     the paper is the accuracy knob of SIM_Wait preemption points.\n");

    // (b) service call atomicity
    std::puts("(b) service call atomicity (readiness arrives inside a 4 ms service):");
    bench::Table tb({"atomicity", "avg preemption latency [us]"});
    for (bool atomic : {true, false}) {
        sim::SimApi::Config cfg;
        cfg.service_call_atomicity = atomic;
        tb.add_row({atomic ? "on (paper)" : "off (ablated)",
                    bench::fmt(preemption_latency_us(cfg, true), 0)});
    }
    tb.print();
    std::puts("  -> with atomicity the switch waits for the service-call boundary");
    std::puts("     (continuity guarantee); ablated, it lands on the next quantum.\n");

    // (c) delayed dispatching
    std::puts("(c) delayed dispatching (ISR wakes a task, then runs 900 us more):");
    bench::Table tc({"delayed dispatching", "wake -> dispatch latency [us]"});
    for (bool delayed : {true, false}) {
        tc.add_row({delayed ? "on (paper)" : "off (ablated)",
                    bench::fmt(delayed_dispatch_latency_us(delayed, 900), 0)});
    }
    tc.print();
    std::puts("  -> both equal the remaining handler time: the postponement the");
    std::puts("     paper legislates (footnote 1) is *emergent* at RTOS level,");
    std::puts("     because interrupts are only delivered at preemption points and");
    std::puts("     the return from a handler is itself a preemption point. A real");
    std::puts("     kernel needs the explicit rule; the simulation model gets it");
    std::puts("     for free at system-clock granularity.\n");

    // (d) Gantt recording host overhead
    std::puts("(d) trace recording host overhead (1 s busy workload, 100 us quantum):");
    bench::Table td({"gantt recording", "host wall [ms]"});
    for (bool rec : {true, false}) {
        td.add_row({rec ? "on" : "off", bench::fmt(host_wall_ms(rec), 1)});
    }
    td.print();
    std::puts("  -> matches the paper's observation that trace displays make");
    std::puts("     animate-mode co-simulation impractical (step mode instead).");
    return 0;
}
