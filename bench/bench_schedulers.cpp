// Scheduler comparison: the same task set under RTK-Spec I (round
// robin), RTK-Spec II (priority preemptive) and RTK-Spec TRON -- the
// three kernels the paper built to validate SIM_API coverage (§4).
#include <cstdio>

#include "bench_util.hpp"
#include "kernels/rtk_spec.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using sysc::Time;

namespace {

struct Row {
    std::string kernel;
    Time urgent_done;
    Time batch_done;
    std::uint64_t preemptions;
    std::uint64_t dispatches;
};

template <typename Os>
Row run_rtkspec(const char* name) {
    sysc::Kernel k;
    Os os;
    Time urgent_done, batch_done;
    const int worker = os.create_task("worker", [&] { os.run_for(15); }, 10);
    const int urgent = os.create_task(
        "urgent",
        [&] {
            os.run_for(5);
            urgent_done = sysc::now();
        },
        1);
    const int batch = os.create_task(
        "batch",
        [&] {
            os.run_for(15);
            batch_done = sysc::now();
        },
        20);
    os.power_on();
    os.start_task(worker);
    os.start_task(batch);
    os.start_task(urgent);
    k.run_until(Time::ms(100));
    return {name, urgent_done, batch_done, os.sim().total_preemptions(),
            os.sim().total_dispatches()};
}

Row run_tron() {
    sysc::Kernel k;
    tkernel::TKernel tk;
    Time urgent_done, batch_done;
    tk.set_user_main([&] {
        using namespace tkernel;
        auto spawn = [&](const char* name, PRI pri, std::function<void()> fn) {
            T_CTSK ct;
            ct.name = name;
            ct.itskpri = pri;
            ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
            tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        };
        spawn("worker", 10, [&] {
            tk.sim().SIM_Wait(Time::ms(15), sim::ExecContext::task);
        });
        spawn("batch", 20, [&] {
            tk.sim().SIM_Wait(Time::ms(15), sim::ExecContext::task);
            batch_done = sysc::now();
        });
        spawn("urgent", 1, [&] {
            tk.sim().SIM_Wait(Time::ms(5), sim::ExecContext::task);
            urgent_done = sysc::now();
        });
    });
    tk.power_on();
    k.run_until(Time::ms(100));
    return {"RTK-Spec TRON (T-Kernel/OS)", urgent_done, batch_done,
            tk.sim().total_preemptions(), tk.sim().total_dispatches()};
}

}  // namespace

int main() {
    std::puts("Scheduler comparison: identical workload on the paper's three kernels");
    std::puts("workload: urgent 5 ms (pri 1), worker 15 ms (pri 10), batch 15 ms (pri 20)\n");

    std::vector<Row> rows;
    rows.push_back(run_rtkspec<kernels::RtkSpec1>("RTK-Spec I (round robin)"));
    rows.push_back(run_rtkspec<kernels::RtkSpec2>("RTK-Spec II (prio preemptive)"));
    rows.push_back(run_tron());

    bench::Table t({"kernel", "urgent done [ms]", "batch done [ms]", "preemptions",
                    "dispatches"});
    for (const auto& r : rows) {
        t.add_row({r.kernel, bench::fmt(r.urgent_done.to_ms(), 2),
                   bench::fmt(r.batch_done.to_ms(), 2), std::to_string(r.preemptions),
                   std::to_string(r.dispatches)});
    }
    t.print();

    std::puts("\nexpected shape: round robin delays the urgent task (fair slicing),");
    std::puts("the priority-preemptive kernels complete it almost immediately; the");
    std::puts("TRON kernel adds realistic service-call/dispatch overhead on top of");
    std::puts("the same SIM_API mechanism.");
    return 0;
}
