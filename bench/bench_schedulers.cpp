// Scheduler comparison: the same task set under RTK-Spec I (round
// robin), RTK-Spec II (priority preemptive) and RTK-Spec TRON -- the
// three kernels the paper built to validate SIM_API coverage (§4);
// plus a thread-count scaling sweep over the scheduler data structures
// themselves (BENCH_scheduler_scaling.json).
#include <cstdio>
#include <memory>
#include <vector>

#include "api/expected.hpp"
#include "bench_util.hpp"
#include "kernels/rtk_spec.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using sysc::Time;

namespace {

struct Row {
    std::string kernel;
    Time urgent_done;
    Time batch_done;
    std::uint64_t preemptions;
    std::uint64_t dispatches;
};

template <typename Os>
Row run_rtkspec(const char* name) {
    sysc::Kernel k;
    Os os(k);
    Time urgent_done, batch_done;
    const int worker = os.create_task("worker", [&] { os.run_for(15); }, 10);
    const int urgent = os.create_task(
        "urgent",
        [&] {
            os.run_for(5);
            urgent_done = sysc::now();
        },
        1);
    const int batch = os.create_task(
        "batch",
        [&] {
            os.run_for(15);
            batch_done = sysc::now();
        },
        20);
    os.power_on();
    os.start_task(worker);
    os.start_task(batch);
    os.start_task(urgent);
    k.run_until(Time::ms(100));
    return {name, urgent_done, batch_done, os.sim().total_preemptions(),
            os.sim().total_dispatches()};
}

Row run_tron() {
    sysc::Kernel k;
    tkernel::TKernel tk{k};
    Time urgent_done, batch_done;
    tk.set_user_main([&] {
        using namespace tkernel;
        auto spawn = [&](const char* name, PRI pri, std::function<void()> fn) {
            T_CTSK ct;
            ct.name = name;
            ct.itskpri = pri;
            ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
            const ID tid = tk.tk_cre_tsk(ct);
            api::Status::from_er(tid).expect("create bench task");
            api::Status::from_er(tk.tk_sta_tsk(tid, 0)).expect("start bench task");
        };
        spawn("worker", 10, [&] {
            tk.sim().SIM_Wait(Time::ms(15), sim::ExecContext::task);
        });
        spawn("batch", 20, [&] {
            tk.sim().SIM_Wait(Time::ms(15), sim::ExecContext::task);
            batch_done = sysc::now();
        });
        spawn("urgent", 1, [&] {
            tk.sim().SIM_Wait(Time::ms(5), sim::ExecContext::task);
            urgent_done = sysc::now();
        });
    });
    tk.power_on();
    k.run_until(Time::ms(100));
    return {"RTK-Spec TRON (T-Kernel/OS)", urgent_done, batch_done,
            tk.sim().total_preemptions(), tk.sim().total_dispatches()};
}

// ---- thread-count scaling sweep --------------------------------------------
//
// Drives the external schedulers directly (threads are created but never
// dispatched -- with lazy coroutine stacks that is cheap even at 4096)
// through a mixed ready/block/priority-churn workload and reports the
// per-operation cost at 16/256/4096 threads. With the intrusive
// ready-list + priority-bitmap structures the per-op cost must stay flat
// as the thread count grows (the former map/deque scan was O(n)).

struct ScalePoint {
    std::string policy;
    int threads;
    double ready_pick_ns;  ///< make_ready-all + pick-all drain, per op
    double churn_ns;       ///< mixed remove/priority-change/rotate mix, per op
};

ScalePoint run_scaling(sim::Scheduler& s, const char* policy, int n) {
    sysc::Kernel k;
    sim::SimApi api{k, s};
    std::vector<sim::TThread*> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        threads.push_back(&api.SIM_CreateThread("t" + std::to_string(i),
                                                sim::ThreadKind::task,
                                                1 + (i % 64), [] {}));
    }
    // Repetitions scaled down with n so every sweep point does a similar
    // total amount of work regardless of thread count.
    const int reps = 1 + 8192 / n;
    std::uint64_t ops = 0;

    bench::WallClock rp_clock;
    for (int r = 0; r < reps; ++r) {
        for (auto* t : threads) {
            s.make_ready(*t);
        }
        while (s.pick() != nullptr) {
        }
        ops += 2 * static_cast<std::uint64_t>(n);
    }
    const double ready_pick_ns = rp_clock.seconds() * 1e9 / static_cast<double>(ops);

    ops = 0;
    bench::WallClock churn_clock;
    for (int r = 0; r < reps; ++r) {
        for (auto* t : threads) {
            s.make_ready(*t);
        }
        // Block/unblock a quarter of the set from the middle of the queues.
        for (int i = 0; i < n; i += 4) {
            s.remove(*threads[static_cast<std::size_t>(i)]);
        }
        for (int i = 0; i < n; i += 4) {
            s.make_ready(*threads[static_cast<std::size_t>(i)]);
        }
        // Priority churn: reposition an eighth of the set.
        for (int i = 0; i < n; i += 8) {
            auto* t = threads[static_cast<std::size_t>(i)];
            s.remove(*t);
            api.SIM_SetCurrentPriority(*t, 1 + ((i + r) % 64));
            s.make_ready(*t);
        }
        for (int p = 1; p <= 64; ++p) {
            s.rotate(p);
        }
        while (s.pick() != nullptr) {
        }
        ops += static_cast<std::uint64_t>(2 * n + n / 2 + 3 * (n / 8) + 64);
    }
    const double churn_ns = churn_clock.seconds() * 1e9 / static_cast<double>(ops);

    return {policy, n, ready_pick_ns, churn_ns};
}

void emit_scaling_json(const std::vector<ScalePoint>& points) {
    std::FILE* f = std::fopen("BENCH_scheduler_scaling.json", "w");
    if (f == nullptr) {
        std::puts("warning: cannot write BENCH_scheduler_scaling.json");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"scheduler_scaling\",\n  %s,\n  \"points\": [\n",
                 bench::meta_json().c_str());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        std::fprintf(f,
                     "    {\"policy\": \"%s\", \"threads\": %d, "
                     "\"ready_pick_ns_per_op\": %.1f, \"churn_ns_per_op\": %.1f}%s\n",
                     p.policy.c_str(), p.threads, p.ready_pick_ns, p.churn_ns,
                     i + 1 < points.size() ? "," : "");
    }
    std::fputs("  ]\n}\n", f);
    std::fclose(f);
    std::puts("\nwrote BENCH_scheduler_scaling.json");
}

}  // namespace

int main() {
    std::puts("Scheduler comparison: identical workload on the paper's three kernels");
    std::puts("workload: urgent 5 ms (pri 1), worker 15 ms (pri 10), batch 15 ms (pri 20)\n");

    std::vector<Row> rows;
    rows.push_back(run_rtkspec<kernels::RtkSpec1>("RTK-Spec I (round robin)"));
    rows.push_back(run_rtkspec<kernels::RtkSpec2>("RTK-Spec II (prio preemptive)"));
    rows.push_back(run_tron());

    bench::Table t({"kernel", "urgent done [ms]", "batch done [ms]", "preemptions",
                    "dispatches"});
    for (const auto& r : rows) {
        t.add_row({r.kernel, bench::fmt(r.urgent_done.to_ms(), 2),
                   bench::fmt(r.batch_done.to_ms(), 2), std::to_string(r.preemptions),
                   std::to_string(r.dispatches)});
    }
    t.print();

    std::puts("\nexpected shape: round robin delays the urgent task (fair slicing),");
    std::puts("the priority-preemptive kernels complete it almost immediately; the");
    std::puts("TRON kernel adds realistic service-call/dispatch overhead on top of");
    std::puts("the same SIM_API mechanism.");

    std::puts("\nThread-count scaling sweep (scheduler data structures, per-op ns):");
    std::vector<ScalePoint> points;
    for (int n : {16, 256, 4096}) {
        sim::PriorityPreemptiveScheduler pp;
        points.push_back(run_scaling(pp, "priority-preemptive", n));
        sim::RoundRobinScheduler rr;
        points.push_back(run_scaling(rr, "round-robin", n));
    }
    bench::Table sweep({"policy", "threads", "ready+pick [ns/op]", "churn [ns/op]"});
    for (const auto& p : points) {
        sweep.add_row({p.policy, std::to_string(p.threads),
                       bench::fmt(p.ready_pick_ns, 1), bench::fmt(p.churn_ns, 1)});
    }
    sweep.print();
    std::puts("expected shape: per-op cost stays flat from 16 to 4096 threads");
    std::puts("(intrusive ready lists + priority bitmap: pick/remove are O(1)).");
    emit_scaling_json(points);
    return 0;
}
