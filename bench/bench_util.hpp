// Shared helpers for the paper-reproduction bench binaries: wall-clock
// timing and aligned table printing in the style of the paper's tables.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace rtk::bench {

class WallClock {
public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}
    double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Minimal fixed-width table printer.
class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            widths[c] = headers_[c].size();
            for (const auto& row : rows_) {
                if (c < row.size()) {
                    widths[c] = std::max(widths[c], row[c].size());
                }
            }
        }
        auto print_row = [&](const std::vector<std::string>& row) {
            std::fputs("  ", stdout);
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                std::printf("%-*s  ", static_cast<int>(widths[c]),
                            c < row.size() ? row[c].c_str() : "");
            }
            std::fputs("\n", stdout);
        };
        print_row(headers_);
        std::size_t total = 2;
        for (auto w : widths) {
            total += w + 2;
        }
        std::printf("  %s\n", std::string(total, '-').c_str());
        for (const auto& row : rows_) {
            print_row(row);
        }
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

}  // namespace rtk::bench
