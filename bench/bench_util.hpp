// Shared helpers for the paper-reproduction bench binaries: wall-clock
// timing, aligned table printing in the style of the paper's tables, and
// the provenance metadata block stamped into every BENCH_*.json so runs
// from different machines/builds are comparable.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "api/json.hpp"

namespace rtk::bench {

class WallClock {
public:
    WallClock() : start_(std::chrono::steady_clock::now()) {}
    double seconds() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

/// Minimal fixed-width table printer.
class Table {
public:
    explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    void print() const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            widths[c] = headers_[c].size();
            for (const auto& row : rows_) {
                if (c < row.size()) {
                    widths[c] = std::max(widths[c], row[c].size());
                }
            }
        }
        auto print_row = [&](const std::vector<std::string>& row) {
            std::fputs("  ", stdout);
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                std::printf("%-*s  ", static_cast<int>(widths[c]),
                            c < row.size() ? row[c].c_str() : "");
            }
            std::fputs("\n", stdout);
        };
        print_row(headers_);
        std::size_t total = 2;
        for (auto w : widths) {
            total += w + 2;
        }
        std::printf("  %s\n", std::string(total, '-').c_str());
        for (const auto& row : rows_) {
            print_row(row);
        }
    }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

// ---- CLI argument parsing ---------------------------------------------------

/// Parse a non-negative decimal count argument strictly: leading sign,
/// trailing junk ("12x"), empty strings and overflow all fail instead of
/// silently truncating the run (atoi("1e6") is 1, atoi("x") is 0 -- both
/// have burnt real bench time before anyone noticed). On success `out`
/// holds the value; on failure `out` is untouched.
inline bool parse_count(const char* arg, std::uint64_t& out) {
    if (arg == nullptr || *arg == '\0') {
        return false;
    }
    std::uint64_t value = 0;
    for (const char* p = arg; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') {
            return false;
        }
        const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
        if (value > (UINT64_MAX - digit) / 10) {
            return false;  // overflow
        }
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

/// parse_count() or die with a usage message naming the flag.
inline std::uint64_t parse_count_or_die(const char* arg, const char* what) {
    std::uint64_t value = 0;
    if (!parse_count(arg, value)) {
        std::fprintf(stderr, "invalid %s: '%s' (expected a non-negative integer)\n",
                     what, arg == nullptr ? "" : arg);
        std::exit(2);
    }
    return value;
}

// ---- BENCH_*.json provenance metadata ---------------------------------------

inline std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
        }
        if (static_cast<unsigned char>(c) >= 0x20) {
            out.push_back(c);
        }
    }
    return out;
}

/// Compiler id + version, from predefined macros.
inline std::string compiler_string() {
#if defined(__clang__)
    return "clang " + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." +
           std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return "gcc " + std::to_string(__GNUC__) + "." +
           std::to_string(__GNUC_MINOR__) + "." +
           std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

/// CPU model name, from /proc/cpuinfo (Linux); "unknown" elsewhere.
inline std::string cpu_model() {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
        const auto pos = line.find("model name");
        if (pos == 0) {
            const auto colon = line.find(':');
            if (colon != std::string::npos) {
                auto start = line.find_first_not_of(" \t", colon + 1);
                return start == std::string::npos ? "unknown" : line.substr(start);
            }
        }
    }
    return "unknown";
}

/// The shared metadata object as a Json value. Emitters that assemble
/// their whole document as an api::Json tree set this as the "meta"
/// member instead of splicing serialized text.
inline api::Json meta_json_doc() {
#ifdef RTK_BENCH_BUILD_TYPE
    const std::string build_type = RTK_BENCH_BUILD_TYPE;
#else
    const std::string build_type = "unknown";
#endif
#ifdef RTK_BENCH_GIT_REV
    const std::string git_rev = RTK_BENCH_GIT_REV;
#else
    const std::string git_rev = "unknown";
#endif
    api::Json m = api::Json::object();
    m.set("compiler", api::Json::string(compiler_string()));
    m.set("build_type", api::Json::string(build_type));
    m.set("cpu", api::Json::string(cpu_model()));
    m.set("git_rev", api::Json::string(git_rev));
    return m;
}

/// The shared metadata object rendered for streaming emitters (no
/// surrounding braces), e.g.
///   "meta": {"build_type": "Release", "compiler": "gcc 13.2.0", ...}
/// Every BENCH_*.json emitter writes this as one of its top-level
/// members so a run is attributable to a compiler / build type / CPU /
/// revision.
inline std::string meta_json() {
    return "\"meta\": " + meta_json_doc().dump(-1);
}

}  // namespace rtk::bench
