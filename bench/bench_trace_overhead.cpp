// Tracing overhead -- the cost of leaving trace::Recorder on in a
// campaign. Runs the same fuzz-generated scenario batch twice through
// the ScenarioRunner (untraced, then traced into in-memory rings, the
// campaign configuration) and reports the wall-clock ratio and the
// marginal cost per recorded event. Each leg is timed best-of-repeats
// to squeeze out scheduler noise.
//
//   $ ./bench_trace_overhead [scenarios] [threads]
//
// Emits BENCH_trace_overhead.json. Acceptance (full scale, plain
// build): traced wall <= 2x untraced, marginal cost <= ~100 ns per
// event. Reduced or sanitized runs report the numbers without gating.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "harness/harness.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RTK_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RTK_BENCH_SANITIZED 1
#endif
#endif

using namespace rtk;
using namespace rtk::harness;

namespace {

constexpr std::uint64_t base_seed = 770001;
constexpr int repeats = 3;

std::vector<fuzz::FuzzSpec> make_workloads(std::size_t count) {
    std::vector<fuzz::FuzzSpec> specs;
    specs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        specs.push_back(fuzz::generate_spec(base_seed + i));
    }
    return specs;
}

/// One timed leg: build every scenario fresh (BuiltScenario owns the
/// oracle attachments), optionally switch on in-ring tracing, run the
/// batch. Returns the best wall time over `repeats` runs plus the last
/// report (the batches are deterministic, so any repeat's report does).
BatchReport run_leg(const std::vector<fuzz::FuzzSpec>& workloads,
                    unsigned threads, bool traced, double& best_wall) {
    BatchReport report;
    best_wall = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
        std::vector<fuzz::BuiltScenario> built;
        built.reserve(workloads.size());
        std::vector<ScenarioSpec> specs;
        specs.reserve(workloads.size());
        for (const fuzz::FuzzSpec& w : workloads) {
            built.push_back(fuzz::build_scenario(w));
            ScenarioSpec s = built.back().scenario;
            if (traced) {
                s.trace.enabled = true;
                s.trace.keep_bytes = true;  // campaign config: ring only
            }
            specs.push_back(std::move(s));
        }
        ScenarioRunner runner(ScenarioRunner::Options{threads});
        report = runner.run(specs);
        if (rep == 0 || report.wall_seconds < best_wall) {
            best_wall = report.wall_seconds;
        }
    }
    return report;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t scenarios =
        argc > 1 ? static_cast<std::size_t>(
                       bench::parse_count_or_die(argv[1], "scenarios"))
                 : 48;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned threads =
        argc > 2
            ? static_cast<unsigned>(bench::parse_count_or_die(argv[2], "threads"))
            : std::max(2u, std::min(hw, 4u));

    std::printf("Trace overhead: %zu fuzz scenarios, %u threads, "
                "best of %d runs per leg\n\n",
                scenarios, threads, repeats);

    const std::vector<fuzz::FuzzSpec> workloads = make_workloads(scenarios);

    double plain_wall = 0.0;
    double traced_wall = 0.0;
    const BatchReport plain = run_leg(workloads, threads, false, plain_wall);
    const BatchReport traced = run_leg(workloads, threads, true, traced_wall);

    if (!plain.all_passed() || !traced.all_passed()) {
        std::fprintf(stderr, "FAILED: %zu/%zu untraced, %zu/%zu traced "
                     "scenarios passed\n",
                     plain.passed(), scenarios, traced.passed(), scenarios);
        return 1;
    }
    if (traced.traced() != scenarios) {
        std::fprintf(stderr, "FAILED: only %zu/%zu runs traced\n",
                     traced.traced(), scenarios);
        return 1;
    }

    const rtk::trace::Metrics agg = traced.aggregate_metrics();
    const double ratio =
        plain_wall > 0.0 ? traced_wall / plain_wall : 0.0;
    const double marginal_s = std::max(0.0, traced_wall - plain_wall);
    const double ns_per_event =
        agg.events > 0
            ? marginal_s * 1e9 / static_cast<double>(agg.events)
            : 0.0;

    bench::Table table({"leg", "wall [s]", "scn/s", "events"});
    table.add_row({"untraced", bench::fmt(plain_wall),
                   bench::fmt(static_cast<double>(scenarios) / plain_wall),
                   "-"});
    table.add_row({"traced", bench::fmt(traced_wall),
                   bench::fmt(static_cast<double>(scenarios) / traced_wall),
                   std::to_string(agg.events)});
    table.print();
    std::printf("\n  overhead: %.3fx wall, %.1f ns marginal per event "
                "(%llu events)\n",
                ratio, ns_per_event,
                static_cast<unsigned long long>(agg.events));

    std::uint64_t dropped = 0;
    for (const ScenarioResult& r : traced.results) {
        dropped += r.trace_dropped;
    }

    using rtk::api::Json;
    Json doc = Json::object();
    doc.set("bench", Json::string("trace_overhead"));
    doc.set("meta", bench::meta_json_doc());
    doc.set("scenarios", Json::number(std::uint64_t{scenarios}));
    doc.set("threads", Json::number(std::uint64_t{threads}));
    doc.set("repeats", Json::number(std::uint64_t{repeats}));
    doc.set("untraced_wall_s", Json::number_real(plain_wall));
    doc.set("traced_wall_s", Json::number_real(traced_wall));
    doc.set("overhead_ratio", Json::number_real(ratio));
    doc.set("events", Json::number(agg.events));
    doc.set("ns_per_event", Json::number_real(ns_per_event));
    doc.set("dropped_records", Json::number(dropped));
    const char* out_path = "BENCH_trace_overhead.json";
    std::ofstream out(out_path);
    if (!(out << doc.dump(2) << "\n")) {
        std::fprintf(stderr, "FAILED to write %s\n", out_path);
        return 1;
    }
    std::printf("\n  wrote %s\n", out_path);

    // Acceptance gates: only at full scale on plain builds (sanitizers
    // distort both legs, and tiny batches are all noise).
#ifndef RTK_BENCH_SANITIZED
    const bool full_scale = argc <= 1;
    if (full_scale) {
        bool ok = true;
        if (ratio > 2.0) {
            std::fprintf(stderr, "FAILED: traced run %.2fx untraced "
                         "(budget 2.0x)\n", ratio);
            ok = false;
        }
        if (ns_per_event > 100.0) {
            std::fprintf(stderr, "FAILED: %.1f ns per event "
                         "(budget 100 ns)\n", ns_per_event);
            ok = false;
        }
        if (agg.events == 0) {
            std::fprintf(stderr, "FAILED: traced batch recorded no events\n");
            ok = false;
        }
        return ok ? 0 : 1;
    }
#endif
    return 0;
}
