// Fig 3 reproduction: kernel dynamics & SIM_API usage.
//
// Measures the latencies that characterize the central-module dynamics of
// the paper's Fig 3: dispatch latency, preemption latency (bounded by the
// system-clock quantum), interrupt delivery latency, nested-interrupt
// entry, and the delayed-dispatching window.
#include <cstdio>

#include "bench_util.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using namespace rtk::tkernel;
using sysc::Time;

namespace {

struct Latency {
    Time min = Time::max();
    Time max{};
    Time sum{};
    int n = 0;
    void add(Time t) {
        min = std::min(min, t);
        max = std::max(max, t);
        sum += t;
        ++n;
    }
    std::string stats() const {
        if (n == 0) {
            return "-";
        }
        return bench::fmt(min.to_us(), 0) + " / " + bench::fmt(sum.to_us() / n, 0) +
               " / " + bench::fmt(max.to_us(), 0);
    }
};

}  // namespace

int main() {
    std::puts("Fig 3: kernel dynamics -- latencies of the central module\n");

    sysc::Kernel k;
    TKernel tk{k};
    Latency wakeup_to_run;   // tk_wup_tsk -> task executing (same priority domain)
    Latency preempt_latency; // higher-pri ready -> running (quantum bound)
    Latency irq_latency;     // trigger_interrupt -> ISR body
    Latency delayed_window;  // wake inside ISR -> task dispatched after return

    tk.set_user_main([&] {
        // --- wakeup-to-run: high-priority waiter woken by a lower task ---
        T_CSEM cs;
        const ID sem = tk.tk_cre_sem(cs);
        Time signal_at;
        T_CTSK waiter;
        waiter.name = "waiter";
        waiter.itskpri = 2;
        waiter.task = [&](INT, void*) {
            for (int i = 0; i < 10; ++i) {
                if (tk.tk_wai_sem(sem, 1, TMO_FEVR) != E_OK) {
                    return;
                }
                wakeup_to_run.add(sysc::now() - signal_at);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(waiter), 0);

        // --- preemption latency: busy low-pri task vs periodic high-pri ---
        T_CTSK busy;
        busy.name = "busy";
        busy.itskpri = 30;
        busy.task = [&](INT, void*) {
            tk.sim().SIM_Wait(Time::ms(200), sim::ExecContext::task);
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(busy), 0);

        Time hi_ready_at;
        T_CTSK hi;
        hi.name = "hi";
        hi.itskpri = 1;
        hi.task = [&](INT, void*) {
            preempt_latency.add(sysc::now() - hi_ready_at);
        };
        const ID hi_id = tk.tk_cre_tsk(hi);

        // --- interrupt latency + delayed dispatch window ---
        Time irq_at, isr_done_at, woken_task_started;
        T_CTSK irq_waiter;
        irq_waiter.name = "irq_waiter";
        irq_waiter.itskpri = 3;
        T_CFLG cf;
        const ID flg = tk.tk_cre_flg(cf);
        irq_waiter.task = [&](INT, void*) {
            for (;;) {
                UINT p = 0;
                if (tk.tk_wai_flg(flg, 1, TWF_ORW | TWF_CLR, &p, TMO_FEVR) != E_OK) {
                    return;
                }
                delayed_window.add(sysc::now() - isr_done_at);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(irq_waiter), 0);

        T_DINT dint;
        dint.intpri = 2;
        dint.inthdr = [&](void*) {
            irq_latency.add(sysc::now() - irq_at);
            tk.tk_set_flg(flg, 1);  // dispatch postponed to handler return
            tk.sim().SIM_Wait(Time::us(150), sim::ExecContext::handler);
            isr_done_at = sysc::now();
        };
        tk.tk_def_int(0, dint);

        // Driver sequence.
        for (int i = 0; i < 10; ++i) {
            tk.tk_dly_tsk(7);
            signal_at = sysc::now();
            tk.tk_sig_sem(sem, 1);

            tk.tk_dly_tsk(3);
            if (i < 5) {
                hi_ready_at = sysc::now();
                tk.tk_sta_tsk(hi_id, 0);
                tk.tk_dly_tsk(2);
            }
            irq_at = sysc::now();
            tk.trigger_interrupt(0);
            tk.tk_dly_tsk(3);
        }
    });

    tk.power_on();
    k.run_until(Time::ms(400));

    bench::Table t({"dynamic (Fig 3 path)", "latency us (min/avg/max)", "samples"});
    t.add_row({"wait-service wakeup -> running (tk_sig_sem)", wakeup_to_run.stats(),
               std::to_string(wakeup_to_run.n)});
    t.add_row({"high-priority ready -> preemption (quantum bound)",
               preempt_latency.stats(), std::to_string(preempt_latency.n)});
    t.add_row({"external IRQ -> ISR body (next preemption point)",
               irq_latency.stats(), std::to_string(irq_latency.n)});
    t.add_row({"ISR return -> postponed dispatch (delayed dispatching)",
               delayed_window.stats(), std::to_string(delayed_window.n)});
    t.print();

    std::printf("\nsystem tick (preemption granularity): %s\n",
                tk.config().tick.to_string().c_str());
    std::printf("dispatch cost (context switch ETM): %s\n",
                tk.config().dispatch_cost.to_string().c_str());
    std::printf("totals: dispatches=%llu preemptions=%llu interrupts=%llu\n",
                static_cast<unsigned long long>(tk.sim().total_dispatches()),
                static_cast<unsigned long long>(tk.sim().total_preemptions()),
                static_cast<unsigned long long>(tk.sim().total_interrupt_deliveries()));
    return 0;
}
