// Fig 3 reproduction: kernel dynamics & SIM_API usage.
//
// Measures the latencies that characterize the central-module dynamics of
// the paper's Fig 3: dispatch latency, preemption latency (bounded by the
// system-clock quantum), interrupt delivery latency, nested-interrupt
// entry, and the delayed-dispatching window.
#include <cstdio>
#include <memory>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using namespace rtk::tkernel;
using sysc::Time;

namespace {

struct Latency {
    Time min = Time::max();
    Time max{};
    Time sum{};
    int n = 0;
    void add(Time t) {
        min = std::min(min, t);
        max = std::max(max, t);
        sum += t;
        ++n;
    }
    std::string stats() const {
        if (n == 0) {
            return "-";
        }
        return bench::fmt(min.to_us(), 0) + " / " + bench::fmt(sum.to_us() / n, 0) +
               " / " + bench::fmt(max.to_us(), 0);
    }
};

}  // namespace

int main() {
    std::puts("Fig 3: kernel dynamics -- latencies of the central module\n");

    sysc::Kernel k;
    TKernel tk{k};
    api::System sys(tk);
    Latency wakeup_to_run;   // tk_wup_tsk -> task executing (same priority domain)
    Latency preempt_latency; // higher-pri ready -> running (quantum bound)
    Latency irq_latency;     // trigger_interrupt -> ISR body
    Latency delayed_window;  // wake inside ISR -> task dispatched after return

    // Timestamps shared between the driver and the measured parties.
    Time signal_at, hi_ready_at, irq_at, isr_done_at;

    // The whole measurement rig as one declarative graph (the "hi" task
    // is NOT autostarted: the driver re-starts it per sample).
    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    b.semaphore("wake");
    b.eventflag("irq_flg");

    // --- wakeup-to-run: high-priority waiter woken by a lower task ---
    b.task("waiter").priority(2).autostart().body([&] {
        for (int i = 0; i < 10; ++i) {
            if (!h->find_semaphore("wake")->wait().ok()) {
                return;
            }
            wakeup_to_run.add(sysc::now() - signal_at);
        }
    });

    // --- preemption latency: busy low-pri task vs periodic high-pri ---
    b.task("busy").priority(30).autostart().body([&] {
        tk.sim().SIM_Wait(Time::ms(200), sim::ExecContext::task);
    });
    b.task("hi").priority(1).body([&] {
        preempt_latency.add(sysc::now() - hi_ready_at);
    });

    // --- interrupt latency + delayed dispatch window ---
    b.task("irq_waiter").priority(3).autostart().body([&] {
        while (h->find_eventflag("irq_flg")->wait(1, TWF_ORW | TWF_CLR).ok()) {
            delayed_window.add(sysc::now() - isr_done_at);
        }
    });
    b.interrupt(0).priority(2).handler([&](void*) {
        irq_latency.add(sysc::now() - irq_at);
        // dispatch postponed to handler return
        h->find_eventflag("irq_flg")->set(1).expect("irq flag");
        tk.sim().SIM_Wait(Time::us(150), sim::ExecContext::handler);
        isr_done_at = sysc::now();
    });

    tk.set_user_main([&] {
        *h = std::move(b.instantiate(sys)).value();
        api::Semaphore& sem = *h->find_semaphore("wake");
        api::Task& hi = *h->find_task("hi");

        // Driver sequence.
        for (int i = 0; i < 10; ++i) {
            tk.tk_dly_tsk(7);
            signal_at = sysc::now();
            sem.signal().expect("wake signal");

            tk.tk_dly_tsk(3);
            if (i < 5) {
                hi_ready_at = sysc::now();
                hi.start().expect("restart hi");
                tk.tk_dly_tsk(2);
            }
            irq_at = sysc::now();
            tk.trigger_interrupt(0);
            tk.tk_dly_tsk(3);
        }
        h->release_all();
    });

    tk.power_on();
    k.run_until(Time::ms(400));

    bench::Table t({"dynamic (Fig 3 path)", "latency us (min/avg/max)", "samples"});
    t.add_row({"wait-service wakeup -> running (tk_sig_sem)", wakeup_to_run.stats(),
               std::to_string(wakeup_to_run.n)});
    t.add_row({"high-priority ready -> preemption (quantum bound)",
               preempt_latency.stats(), std::to_string(preempt_latency.n)});
    t.add_row({"external IRQ -> ISR body (next preemption point)",
               irq_latency.stats(), std::to_string(irq_latency.n)});
    t.add_row({"ISR return -> postponed dispatch (delayed dispatching)",
               delayed_window.stats(), std::to_string(delayed_window.n)});
    t.print();

    std::printf("\nsystem tick (preemption granularity): %s\n",
                tk.config().tick.to_string().c_str());
    std::printf("dispatch cost (context switch ETM): %s\n",
                tk.config().dispatch_cost.to_string().c_str());
    std::printf("totals: dispatches=%llu preemptions=%llu interrupts=%llu\n",
                static_cast<unsigned long long>(tk.sim().total_dispatches()),
                static_cast<unsigned long long>(tk.sim().total_preemptions()),
                static_cast<unsigned long long>(tk.sim().total_interrupt_deliveries()));
    return 0;
}
