// Fault-injection campaign: cross a generated workload corpus with the
// six fault classes, run every injection through the batch runner and
// classify each outcome with the invariant oracle -- the dependability
// twin of the fuzz sweep: instead of asking "does the kernel ever break
// on its own", it asks "what does it take to break it, and does the
// oracle notice".
//
//   $ ./bench_fault_campaign [injections-per-workload] [corpus] [threads] \
//                            [trace-dir]
//
// Emits BENCH_fault_coverage.json: the service-call x fault-class
// heat-map of masked / detected / invariant-violated / hung counts.
// With a trace-dir, every injection runs under the trace::Recorder and
// the .rtktrace of each repro'd non-masked outcome lands there.
// Exits non-zero when coverage falls short (all six fault classes and,
// at full scale, at least 10 distinct service calls and 10k injections)
// -- the bench doubles as the campaign's acceptance gate.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "harness/harness.hpp"

using namespace rtk::harness::fault;
namespace bench = rtk::bench;

int main(int argc, char** argv) {
    const std::size_t per_workload =
        argc > 1
            ? static_cast<std::size_t>(
                  bench::parse_count_or_die(argv[1], "injections-per-workload"))
            : 528;
    const std::size_t corpus =
        argc > 2
            ? static_cast<std::size_t>(bench::parse_count_or_die(argv[2], "corpus"))
            : 20;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned workers =
        argc > 3
            ? static_cast<unsigned>(bench::parse_count_or_die(argv[3], "workers"))
            : std::min(hw, 16u);

    CampaignOptions opts;
    opts.base_seed = 880001;  // disjoint from the fuzz bench/smoke blocks
    opts.corpus = corpus;
    opts.injections_per_workload = per_workload;
    opts.threads = workers;
    opts.repro_dir = ".";
    if (argc > 4) {
        opts.trace_dir = argv[4];
    }

    std::printf("Fault campaign: %zu workloads x %zu injections, %u workers "
                "(%u hardware threads)\n\n",
                corpus, per_workload, workers, hw);
    const CampaignReport report = run_fault_campaign(opts);

    bench::Table table({"metric", "value"});
    table.add_row({"workloads", std::to_string(report.workloads)});
    table.add_row({"injections", std::to_string(report.injections)});
    table.add_row({"injected", std::to_string(report.injected)});
    table.add_row({"masked", std::to_string(report.count(Outcome::masked))});
    table.add_row({"detected", std::to_string(report.count(Outcome::detected))});
    table.add_row({"invariant_violated",
                   std::to_string(report.count(Outcome::invariant_violated))});
    table.add_row({"hung", std::to_string(report.count(Outcome::hung))});
    table.add_row({"diverged", std::to_string(report.diverged)});
    table.add_row(
        {"service calls covered", std::to_string(report.service_calls_covered())});
    table.add_row(
        {"fault classes covered", std::to_string(report.fault_classes_covered())});
    table.add_row({"wall [s]", bench::fmt(report.wall_seconds)});
    table.add_row({"injections/s",
                   bench::fmt(report.wall_seconds > 0.0
                                  ? static_cast<double>(report.injections) /
                                        report.wall_seconds
                                  : 0.0)});
    table.print();

    const char* out_path = "BENCH_fault_coverage.json";
    // The provenance block rides as a regular member of the report tree
    // (the report serializer itself is bench-agnostic).
    rtk::api::Json doc = report.to_json_doc();
    doc.set("meta", bench::meta_json_doc());
    std::ofstream out(out_path);
    if (!(out << doc.dump(2) << "\n")) {
        std::fprintf(stderr, "FAILED to write %s\n", out_path);
        return 1;
    }
    std::printf("\nwrote %s (%zu repro files, %zu trace files)\n", out_path,
                report.repro_paths.size(), report.trace_paths.size());

    // Acceptance gates, scaled down for reduced (sanitizer/CI) runs.
    const bool full_scale = argc <= 1;
    bool ok = true;
    if (report.fault_classes_covered() < fault_class_count) {
        std::fprintf(stderr, "FAILED: only %zu/%zu fault classes covered\n",
                     report.fault_classes_covered(), fault_class_count);
        ok = false;
    }
    const std::size_t min_calls = full_scale ? 10 : 3;
    if (report.service_calls_covered() < min_calls) {
        std::fprintf(stderr, "FAILED: only %zu service calls covered (min %zu)\n",
                     report.service_calls_covered(), min_calls);
        ok = false;
    }
    if (full_scale && report.injections < 10000) {
        std::fprintf(stderr, "FAILED: only %zu injections at full scale\n",
                     report.injections);
        ok = false;
    }
    return ok ? 0 : 1;
}
