// Micro-benchmarks of the simulation substrate primitives
// (google-benchmark): event notification, context switch, SIM_Wait
// quantum processing, service call overhead and full kernel tick cost.
// These justify the claim that RTOS-level simulation runs orders of
// magnitude faster than ISS co-simulation.
#include <benchmark/benchmark.h>

#include "api/expected.hpp"
#include "sim/sim.hpp"
#include "sysc/sysc.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using sysc::Time;

namespace {

void BM_EventNotifyWake(benchmark::State& state) {
    sysc::Kernel k;
    sysc::Event ping("ping");
    std::uint64_t wakes = 0;
    k.spawn("waiter", [&] {
        for (;;) {
            sysc::wait(ping);
            ++wakes;
        }
    });
    k.run_until(Time::us(1));
    for (auto _ : state) {
        ping.notify();
        k.step_delta();
    }
    benchmark::DoNotOptimize(wakes);
}
BENCHMARK(BM_EventNotifyWake);

void BM_CoroutineContextSwitch(benchmark::State& state) {
    sysc::Kernel k;
    sysc::Event a("a"), b("b");
    k.spawn("ping", [&] {
        for (;;) {
            sysc::wait(a);
            b.notify();
        }
    });
    k.spawn("pong", [&] {
        for (;;) {
            sysc::wait(b);
        }
    });
    k.run_until(Time::us(1));
    for (auto _ : state) {
        a.notify();
        k.step_delta();  // two process switches per iteration
    }
}
BENCHMARK(BM_CoroutineContextSwitch);

void BM_TimedWaitQuantum(benchmark::State& state) {
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    auto& t = api.SIM_CreateThread("t", sim::ThreadKind::task, 5, [&] {
        for (;;) {
            api.SIM_Wait(Time::ms(1), sim::ExecContext::task);
        }
    });
    api.SIM_StartThread(t);
    for (auto _ : state) {
        k.run_for(Time::ms(1));  // one quantum: wait + preemption check
    }
}
BENCHMARK(BM_TimedWaitQuantum);

void BM_ServiceCallOverhead(benchmark::State& state) {
    sysc::Kernel k;
    tkernel::TKernel tk{k};
    tkernel::ID sem = 0;
    tk.set_user_main([&] {
        tkernel::T_CSEM cs;
        cs.isemcnt = 1 << 30;
        cs.maxsem = 1 << 30;
        sem = tk.tk_cre_sem(cs);
        api::Status::from_er(sem).expect("create bench semaphore");
        for (;;) {
            // The measured operation itself: a polling wait per iteration
            // (E_TMOUT once the huge initial count is drained is fine).
            (void)tk.tk_wai_sem(sem, 1, tkernel::TMO_POL);
        }
    });
    tk.power_on();
    k.run_until(Time::us(100));
    for (auto _ : state) {
        k.run_for(Time::us(50));  // several complete service calls
    }
}
BENCHMARK(BM_ServiceCallOverhead);

void BM_FullKernelTick(benchmark::State& state) {
    // Cost of one system tick: Thread Dispatch -> tick ISR -> timer
    // handler, with an idle task set.
    sysc::Kernel k;
    tkernel::TKernel tk{k};
    tk.set_user_main([&] {
        tkernel::T_CTSK ct;
        ct.name = "idle";
        ct.itskpri = 100;
        ct.task = [&](tkernel::INT, void*) {
            for (;;) {
                tk.sim().SIM_Wait(Time::ms(10), sim::ExecContext::task);
            }
        };
        const tkernel::ID tid = tk.tk_cre_tsk(ct);
        api::Status::from_er(tid).expect("create idle task");
        api::Status::from_er(tk.tk_sta_tsk(tid, 0)).expect("start idle task");
    });
    tk.power_on();
    k.run_until(Time::ms(2));
    for (auto _ : state) {
        k.run_for(Time::ms(1));
    }
    state.counters["sim_ticks"] = static_cast<double>(tk.tick_count());
}
BENCHMARK(BM_FullKernelTick);

void BM_InterruptDelivery(benchmark::State& state) {
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    auto& isr = api.SIM_CreateThread("isr", sim::ThreadKind::interrupt_handler,
                                     -10, [] {});
    for (auto _ : state) {
        api.SIM_RaiseInterrupt(isr);
        k.run();
    }
    state.counters["deliveries"] =
        static_cast<double>(api.total_interrupt_deliveries());
}
BENCHMARK(BM_InterruptDelivery);

void BM_GanttRecording(benchmark::State& state) {
    sysc::Kernel k;
    sim::GanttRecorder g;
    std::uint64_t i = 0;
    for (auto _ : state) {
        g.add_slice(1, "t", sim::ExecContext::task, Time::us(i), Time::us(i + 1),
                    1.0);
        ++i;
    }
    benchmark::DoNotOptimize(g.segments().size());
}
BENCHMARK(BM_GanttRecording);

}  // namespace

BENCHMARK_MAIN();
