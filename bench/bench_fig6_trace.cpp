// Fig 6 reproduction: the Execution Time/Energy Trace widget.
//
// Runs the video-game co-simulation in step mode (the paper: the trace
// display "is available in step mode") and renders the Gantt chart with
// per-context patterns: task dispatching, interrupt handling, preemption
// and BFM accesses are all visible, as in the paper's screenshot.
#include <cstdio>

#include "app/videogame.hpp"
#include "bench_util.hpp"
#include "gui/gui.hpp"

using namespace rtk;
using sysc::Time;

int main() {
    std::puts("Fig 6: Execution Time/Energy Trace (step mode)\n");

    sysc::Kernel k;
    tkernel::TKernel tk{k};
    bfm::Bfm8051 board(tk.sim());
    app::GameConfig gc;
    gc.physics_period_ms = 20;  // busier trace
    app::VideoGame game(tk, board, gc);
    app::VideoGame::wire(tk, board);
    game.install();

    gui::Frontend fe(gui::Mode::step);
    gui::GanttWidget trace(tk.sim(), Time::ms(60), Time::us(500));
    fe.add(trace);

    // Scripted keypresses create interrupt activity in the window.
    gui::KeypadWidget pad(board.keypad());
    fe.add(pad);
    pad.play_script(k, {{Time::ms(105), app::VideoGame::key_right, true},
                     {Time::ms(125), app::VideoGame::key_right, false},
                     {Time::ms(143), app::VideoGame::key_left, true},
                     {Time::ms(160), app::VideoGame::key_left, false}});

    tk.power_on();
    // Step mode: "we advance simulation in step of system tick (1ms)".
    for (int step = 0; step < 170; ++step) {
        k.run_for(Time::ms(1));
    }
    trace.refresh();

    std::puts("legend: S startup | o OS service | # task basic block | "
              "H handler | B BFM access | . idle\n");
    std::fputs(trace.last_rendering().c_str(), stdout);

    // Energy per segment, as the widget colors segments by context.
    std::puts("\nper-context totals over the window:");
    bench::Table t({"context", "busy time [ms]", "energy [uJ]"});
    double ctx_cee[sim::exec_context_count] = {};
    Time ctx_cet[sim::exec_context_count] = {};
    for (const auto& seg : tk.sim().gantt().segments()) {
        const auto c = static_cast<std::size_t>(seg.ctx);
        ctx_cet[c] += seg.end - seg.start;
        ctx_cee[c] += seg.energy_nj;
    }
    for (std::size_t c = 0; c < sim::exec_context_count; ++c) {
        t.add_row({sim::to_string(static_cast<sim::ExecContext>(c)),
                   bench::fmt(ctx_cet[c].to_ms(), 3),
                   bench::fmt(ctx_cee[c] * 1e-3, 2)});
    }
    t.print();

    std::printf("\nmarkers: dispatches=%llu preemptions=%llu irq-enter=%llu "
                "sleeps=%llu wakeups=%llu\n",
                static_cast<unsigned long long>(
                    tk.sim().gantt().marker_count(sim::GanttRecorder::MarkerKind::dispatch)),
                static_cast<unsigned long long>(
                    tk.sim().gantt().marker_count(sim::GanttRecorder::MarkerKind::preemption)),
                static_cast<unsigned long long>(
                    tk.sim().gantt().marker_count(sim::GanttRecorder::MarkerKind::interrupt_enter)),
                static_cast<unsigned long long>(
                    tk.sim().gantt().marker_count(sim::GanttRecorder::MarkerKind::sleep)),
                static_cast<unsigned long long>(
                    tk.sim().gantt().marker_count(sim::GanttRecorder::MarkerKind::wakeup)));
    return 0;
}
