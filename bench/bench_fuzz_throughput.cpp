// Fuzz-campaign throughput: how many oracle-checked, differentially
// replayed scenarios per second the discovery engine sustains -- the
// metric that decides how much of the scenario space a CI budget buys.
//
//   $ ./bench_fuzz_throughput [seeds] [threads]
//
// Runs one campaign (seeds x 2 policies, serial + parallel legs, every
// run under the InvariantOracle) and emits BENCH_fuzz_throughput.json.
// Exits non-zero on any invariant violation, fingerprint mismatch or
// simulation error: the bench doubles as a wide fuzz sweep.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "harness/harness.hpp"

using namespace rtk::harness::fuzz;
namespace bench = rtk::bench;

int main(int argc, char** argv) {
    const std::size_t seeds =
        argc > 1
            ? static_cast<std::size_t>(bench::parse_count_or_die(argv[1], "seeds"))
            : 150;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned workers =
        argc > 2
            ? static_cast<unsigned>(bench::parse_count_or_die(argv[2], "workers"))
            : std::max(4u, std::min(hw, 8u));

    FuzzOptions opts;
    opts.base_seed = 970001;  // disjoint from the fuzz-smoke block
    opts.num_seeds = seeds;
    opts.both_policies = true;
    opts.parallel_threads = workers;
    opts.minimize = true;
    opts.repro_dir = ".";

    std::printf("Fuzz throughput: %zu seeds x 2 policies, %u workers "
                "(%u hardware threads)\n\n",
                seeds, workers, hw);
    const FuzzReport report = run_fuzz_campaign(opts);

    bench::Table table({"metric", "value"});
    table.add_row({"scenarios", std::to_string(report.scenarios)});
    table.add_row({"simulation runs", std::to_string(report.runs)});
    table.add_row({"oracle events", std::to_string(report.oracle_events)});
    table.add_row({"wall [s]", bench::fmt(report.wall_seconds)});
    table.add_row({"scenarios/s", bench::fmt(report.scenarios_per_second())});
    table.add_row({"violations", std::to_string(report.violations)});
    table.add_row({"mismatches", std::to_string(report.mismatches)});
    table.add_row({"sim errors", std::to_string(report.sim_errors)});
    table.print();

    {
        std::ofstream out("BENCH_fuzz_throughput.json");
        out << "{\n  \"bench\": \"fuzz_throughput\",\n"
            << "  " << bench::meta_json() << ",\n"
            << "  \"seeds\": " << seeds << ",\n"
            << "  \"hardware_concurrency\": " << hw << ",\n"
            << "  \"workers\": " << workers << ",\n"
            << "  \"wall_seconds\": " << report.wall_seconds << ",\n"
            << "  \"scenarios_per_second\": " << report.scenarios_per_second()
            << ",\n"
            << "  \"campaign\": " << report.to_json() << "}\n";
    }
    std::puts("\n  wrote BENCH_fuzz_throughput.json");

    if (!report.ok()) {
        for (const FuzzFailure& f : report.failures) {
            std::printf("  FAILURE seed %llu (%s): %s\n",
                        static_cast<unsigned long long>(f.seed), f.kind.c_str(),
                        f.detail.substr(0, 200).c_str());
        }
        return 1;
    }
    return 0;
}
