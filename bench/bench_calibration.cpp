// Calibration study -- the paper's future work made executable (§5):
// "By cross profiling or calibration against ISS or T-Engine emulation
// ... we can raise the accuracy of co-simulation."
//
// Setup: the "reference platform" is the same co-simulation with a
// perturbed cost table standing in for an ISS-measured target (slower
// task code, cheaper services, pricier bus). We run the case-study game
// on the uncalibrated model, cross-profile per-context CET against the
// reference, fit scale factors, and re-run -- reporting the per-context
// CET error before and after calibration.
#include <cstdio>

#include "app/videogame.hpp"
#include "bench_util.hpp"

using namespace rtk;
using sysc::Time;

namespace {

struct ContextCet {
    Time per_ctx[sim::exec_context_count];
};

ContextCet run_game(const sim::CostTable& costs, unsigned sim_ms) {
    sysc::Kernel k;
    tkernel::TKernel tk{k};
    tk.sim().costs() = costs;
    bfm::Bfm8051 board(tk.sim());
    app::VideoGame game(tk, board);
    app::VideoGame::wire(tk, board);
    game.install();
    tk.power_on();
    k.run_until(Time::ms(sim_ms));
    ContextCet out{};
    for (const sim::TThread* t : tk.sim().threads()) {
        for (std::size_t c = 0; c < sim::exec_context_count; ++c) {
            out.per_ctx[c] += t->token().cet(static_cast<sim::ExecContext>(c));
        }
    }
    return out;
}

double rel_err(Time a, Time ref) {
    if (ref.is_zero()) {
        return 0.0;
    }
    const double d = a.to_sec() - ref.to_sec();
    return (d < 0 ? -d : d) / ref.to_sec();
}

}  // namespace

int main() {
    std::puts("Calibration study (paper sec. 5 future work): model vs. reference\n");

    // The a-priori model (the paper's "estimated" annotations).
    sim::CostTable model;

    // The reference platform (stand-in for ISS / T-Engine profiling):
    // task code 1.7x slower, kernel services 1.3x slower, bus 2.2x.
    sim::CostTable reference = model;
    auto scale_ctx = [&](sim::ExecContext c, double f) {
        auto m = reference.at(c);
        m.time_per_unit = sysc::Time::ps(static_cast<std::uint64_t>(
            static_cast<double>(m.time_per_unit.picoseconds()) * f));
        reference.set(c, m);
    };
    scale_ctx(sim::ExecContext::task, 1.7);
    scale_ctx(sim::ExecContext::service_call, 1.3);
    scale_ctx(sim::ExecContext::bfm_access, 2.2);
    scale_ctx(sim::ExecContext::handler, 1.4);
    scale_ctx(sim::ExecContext::startup, 1.3);

    constexpr unsigned sim_ms = 500;
    const ContextCet ref = run_game(reference, sim_ms);
    const ContextCet raw = run_game(model, sim_ms);

    // Cross-profile: per-context CET pairs feed the calibrator.
    sim::Calibrator cal;
    for (std::size_t c = 0; c < sim::exec_context_count; ++c) {
        if (!raw.per_ctx[c].is_zero() && !ref.per_ctx[c].is_zero()) {
            cal.add_time_sample(static_cast<sim::ExecContext>(c), raw.per_ctx[c],
                                ref.per_ctx[c]);
        }
    }
    sim::CostTable calibrated = model;
    cal.apply(calibrated);
    const ContextCet post = run_game(calibrated, sim_ms);

    bench::Table t({"context", "reference CET [ms]", "model error", "calibrated error"});
    for (std::size_t c = 0; c < sim::exec_context_count; ++c) {
        const auto ctx = static_cast<sim::ExecContext>(c);
        if (ref.per_ctx[c].is_zero()) {
            continue;
        }
        t.add_row({sim::to_string(ctx), bench::fmt(ref.per_ctx[c].to_ms(), 3),
                   bench::fmt(rel_err(raw.per_ctx[c], ref.per_ctx[c]) * 100.0, 1) + "%",
                   bench::fmt(rel_err(post.per_ctx[c], ref.per_ctx[c]) * 100.0, 1) + "%"});
    }
    t.print();

    std::puts("");
    std::fputs(cal.report().c_str(), stdout);
    std::puts("\nshape: one cross-profiling round collapses the per-context CET");
    std::puts("error to the residual caused by scheduling feedback (the workload");
    std::puts("shifts slightly when timing changes) -- the accuracy-raising path");
    std::puts("the paper proposes for ISS/T-Engine calibration.");
    return 0;
}
