// Campaign-engine throughput: oracle-checked fuzz scenarios per second
// when the corpus is sharded across worker processes -- the number that
// says what a wall-clock CI budget buys once campaigns outgrow one
// process.
//
//   $ ./bench_campaign_throughput [seeds] [max_shards]
//
// Runs the same campaign at 1, 2 and max_shards shard processes (each
// in a fresh directory; the workers are fork/exec'd rtk-campaign
// `shard` verbs), cross-checks that every shard count merges to
// byte-identical report bytes, and emits BENCH_campaign_throughput.json.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"

namespace fs = std::filesystem;
namespace bench = rtk::bench;
namespace campaign = rtk::harness::campaign;
using rtk::api::Json;

namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t seeds =
        argc > 1
            ? static_cast<std::size_t>(bench::parse_count_or_die(argv[1], "seeds"))
            : 48;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned max_shards =
        argc > 2 ? static_cast<unsigned>(
                       bench::parse_count_or_die(argv[2], "max_shards"))
                 : std::max(2u, std::min(hw, 8u));

    campaign::Manifest m;
    m.name = "bench-throughput";
    m.kind = campaign::Kind::fuzz;
    m.base_seed = 880001;  // disjoint from fuzz-smoke / fuzz-bench blocks
    m.seeds = seeds;
    m.both_policies = true;

    std::vector<unsigned> shard_counts{1};
    if (max_shards >= 2) {
        shard_counts.push_back(2);
    }
    if (max_shards > 2) {
        shard_counts.push_back(max_shards);
    }

#ifdef RTK_CAMPAIGN_TOOL
    const std::string worker = RTK_CAMPAIGN_TOOL;
#else
    const std::string worker;  // in-process fallback, still measurable
#endif

    std::printf("Campaign throughput: %zu seeds x 2 policies (%zu jobs), "
                "shard counts 1..%u, worker %s\n\n",
                seeds, static_cast<std::size_t>(m.total_jobs()), max_shards,
                worker.empty() ? "<in-process>" : worker.c_str());

    const std::string base = "campaign_bench";
    fs::remove_all(base);

    bench::Table table({"shards", "wall [s]", "scenarios/s", "speedup"});
    Json results = Json::array();
    std::string reference_report;
    double serial_rate = 0.0;
    bool ok = true;

    for (unsigned shards : shard_counts) {
        const std::string dir = base + "/s" + std::to_string(shards);
        std::string error;
        if (!campaign::init_campaign(dir, m, &error)) {
            std::fprintf(stderr, "init (%u shards): %s\n", shards,
                         error.c_str());
            return 1;
        }

        campaign::EngineOptions opts;
        opts.shards = shards;
        opts.worker_exe = worker;
        opts.in_process = worker.empty();
        const bench::WallClock clock;
        const campaign::EngineResult res = campaign::run_campaign(dir, opts);
        const double wall = clock.seconds();
        if (!res.complete || res.shard_failures != 0) {
            std::fprintf(stderr, "run (%u shards) incomplete: %s\n", shards,
                         res.error.c_str());
            ok = false;
        }
        if (!campaign::merge_campaign(dir, "", &error)) {
            std::fprintf(stderr, "merge (%u shards): %s\n", shards,
                         error.c_str());
            return 1;
        }

        // Sharding must never change the result bytes, only the wall time.
        const std::string report = slurp(campaign::report_path(dir));
        if (reference_report.empty()) {
            reference_report = report;
        } else if (report != reference_report) {
            std::fprintf(stderr,
                         "report at %u shards differs from 1-shard bytes\n",
                         shards);
            ok = false;
        }

        const double rate =
            wall > 0.0 ? static_cast<double>(res.done_jobs) / wall : 0.0;
        if (shards == 1) {
            serial_rate = rate;
        }
        const double speedup = serial_rate > 0.0 ? rate / serial_rate : 0.0;
        table.add_row({std::to_string(shards), bench::fmt(wall, 3),
                       bench::fmt(rate, 1), bench::fmt(speedup) + "x"});

        Json row = Json::object();
        row.set("shards", Json::number(shards));
        row.set("jobs", Json::number(res.done_jobs));
        row.set("wall_seconds", Json::number_real(wall));
        row.set("scenarios_per_second", Json::number_real(rate));
        row.set("speedup_vs_one_shard", Json::number_real(speedup));
        results.push(std::move(row));
    }
    table.print();

    Json doc = Json::object();
    doc.set("bench", Json::string("campaign_throughput"));
    doc.set("meta", bench::meta_json_doc());
    doc.set("seeds", Json::number(seeds));
    doc.set("jobs", Json::number(m.total_jobs()));
    doc.set("hardware_concurrency", Json::number(hw));
    doc.set("forked_workers", Json::boolean(!worker.empty()));
    doc.set("reports_byte_identical", Json::boolean(ok));
    doc.set("results", std::move(results));
    {
        std::ofstream out("BENCH_campaign_throughput.json");
        out << doc.dump(2) << "\n";
    }
    std::puts("\n  wrote BENCH_campaign_throughput.json");

    fs::remove_all(base);
    return ok ? 0 : 1;
}
