// Batch scenario throughput -- the design-space-exploration payoff of the
// context-explicit API: one binary sweeps N distinct kernel-configuration
// x workload scenarios, serially and across a host thread pool (one
// isolated rtk::Simulation per scenario), and verifies the parallel run
// is bit-identical to the serial one (per-scenario behaviour
// fingerprints).
//
//   $ ./bench_batch_scenarios [scenarios] [threads] [trace-dir]
//
// Emits BENCH_batch_throughput.json: both batch reports plus the
// speedup summary. Exits non-zero on any scenario failure or any
// serial-vs-parallel fingerprint mismatch; the speedup itself is
// reported, not asserted (it is bounded by the machine's core count).
// With a trace-dir, every scenario runs under the trace::Recorder and
// writes its .rtktrace there (the parallel leg overwrites the serial
// leg's identical captures); the reports then carry trace aggregates.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "harness/harness.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using namespace rtk::harness;
using namespace rtk::tkernel;
using sysc::Time;

namespace {

// ---- workloads --------------------------------------------------------------
//
// Each builder declares a deterministic workload (all randomness from
// the spec seed) as an api::SystemSpec and instantiates it through the
// facade inside the Simulation's user main. Counters live in the
// T-Kernel objects and the SIM_API Gantt/stat recorders, which is what
// the fingerprint digests.

/// Install `b`'s graph as the Simulation's user main; the instantiated
/// handles land in `h` (the per-run holder the task bodies captured).
void install_system(Simulation& sim, api::SystemBuilder&& b,
                    std::shared_ptr<api::SystemHandles> h) {
    auto sys = std::make_shared<api::System>(sim.os());
    sim.retain(sys);
    sim.retain(h);
    auto spec = std::make_shared<const api::SystemSpec>(std::move(b).take_spec());
    sim.set_user_main([sys, h, spec] {
        *h = std::move(api::instantiate(*sys, *spec)).value();
        h->release_all();  // kernel teardown reclaims the graph
    });
}

void pipeline_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel* tk = &sim.os();
    std::mt19937_64 rng(spec.seed);
    const int stages = 2 + static_cast<int>(rng() % 3);       // 2..4
    const int items = 60 + static_cast<int>(rng() % 40);      // 60..99
    const RELTIM produce_ms = 1 + static_cast<RELTIM>(rng() % 3);
    const std::uint64_t work_units = 40 + rng() % 200;

    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    for (int s = 0; s < stages; ++s) {
        b.semaphore("stage" + std::to_string(s));
    }
    // Producer feeds stage 0; stage i forwards to i+1.
    b.task("producer").priority(10).autostart().body([tk, h, items, produce_ms] {
        for (int i = 0; i < items; ++i) {
            tk->tk_dly_tsk(produce_ms);
            h->semaphores[0].signal().expect("stage 0 signal");
        }
    });
    for (int s = 0; s < stages; ++s) {
        b.task("stage" + std::to_string(s))
            .priority(static_cast<PRI>(5 + s))
            .autostart()
            .body([tk, h, s, stages, items, work_units] {
                for (int i = 0; i < items; ++i) {
                    if (!h->semaphores[static_cast<std::size_t>(s)].wait().ok()) {
                        return;
                    }
                    tk->sim().SIM_WaitUnits(work_units, sim::ExecContext::task);
                    if (s + 1 < stages) {
                        h->semaphores[static_cast<std::size_t>(s) + 1]
                            .signal()
                            .expect("stage forward");
                    }
                }
            });
    }
    install_system(sim, std::move(b), h);
}

void eventflag_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel* tk = &sim.os();
    std::mt19937_64 rng(spec.seed);
    const int waiters = 2 + static_cast<int>(rng() % 4);  // 2..5
    const RELTIM period_ms = 2 + static_cast<RELTIM>(rng() % 5);
    const std::uint64_t work_units = 30 + rng() % 150;

    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    b.eventflag("burst");
    for (int w = 0; w < waiters; ++w) {
        const UINT bit = 1u << w;
        b.task("waiter" + std::to_string(w))
            .priority(static_cast<PRI>(4 + w))
            .autostart()
            .body([tk, h, bit, work_units] {
                api::EventFlag& flg = h->eventflags[0];
                while (flg.wait(bit, TWF_ANDW | TWF_BITCLR).ok()) {
                    tk->sim().SIM_WaitUnits(work_units, sim::ExecContext::task);
                }
            });
    }
    // Cyclic handler broadcasts one bit per activation, round robin.
    auto counter = std::make_shared<unsigned>(0);
    b.cyclic("burst_src")
        .period(period_ms)
        .phase(period_ms)
        .handler([h, waiters, counter](void*) {
            h->eventflags[0]
                .set(1u << (*counter % static_cast<unsigned>(waiters)))
                .expect("burst set");
            ++*counter;
        });
    install_system(sim, std::move(b), h);
}

void mutex_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel* tk = &sim.os();
    std::mt19937_64 rng(spec.seed);
    const int tasks = 3 + static_cast<int>(rng() % 3);  // 3..5
    const std::uint64_t hold_units = 80 + rng() % 300;
    const RELTIM think_ms = 1 + static_cast<RELTIM>(rng() % 4);

    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    b.mutex("bus").inherit();
    for (int t = 0; t < tasks; ++t) {
        b.task("contender" + std::to_string(t))
            .priority(static_cast<PRI>(3 + 2 * t))
            .autostart()
            .body([tk, h, hold_units, think_ms] {
                api::Mutex& bus = h->mutexes[0];
                for (int round = 0; round < 60; ++round) {
                    tk->tk_dly_tsk(think_ms);
                    if (!bus.lock().ok()) {
                        return;
                    }
                    tk->sim().SIM_WaitUnits(hold_units, sim::ExecContext::task);
                    bus.unlock().expect("bus unlock");
                }
            });
    }
    install_system(sim, std::move(b), h);
}

void timer_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel* tk = &sim.os();
    std::mt19937_64 rng(spec.seed);
    const RELTIM cyc_ms = 3 + static_cast<RELTIM>(rng() % 6);
    const RELTIM alarm_ms = 20 + static_cast<RELTIM>(rng() % 40);
    const std::uint64_t work_units = 50 + rng() % 250;

    auto h = std::make_shared<api::SystemHandles>();
    api::SystemBuilder b;
    b.semaphore("tick_work");
    b.task("tick_worker").priority(6).autostart().body([tk, h, work_units] {
        while (h->semaphores[0].wait().ok()) {
            tk->sim().SIM_WaitUnits(work_units, sim::ExecContext::task);
        }
    });
    b.cyclic("pacer").period(cyc_ms).phase(cyc_ms).handler([h](void*) {
        h->semaphores[0].signal().expect("pacer signal");
    });
    b.alarm("boost")
        .handler([h](void*) {
            h->tasks[0].change_priority(2).expect("priority boost");
        })
        .start_after(alarm_ms);
    install_system(sim, std::move(b), h);
}

// ---- spec generation --------------------------------------------------------

std::vector<ScenarioSpec> make_specs(std::size_t count) {
    using Builder = void (*)(Simulation&, const ScenarioSpec&);
    struct Kind {
        const char* name;
        Builder build;
    };
    static constexpr Kind kinds[] = {
        {"pipeline", &pipeline_workload},
        {"eventflag", &eventflag_workload},
        {"mutex", &mutex_workload},
        {"timers", &timer_workload},
    };
    std::vector<ScenarioSpec> specs;
    specs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const Kind& kind = kinds[i % std::size(kinds)];
        ScenarioSpec s;
        s.seed = 1000 + i;
        s.name = std::string(kind.name) + "/" + std::to_string(s.seed);
        s.workload = kind.build;
        s.duration = Time::ms(400 + 40 * static_cast<std::uint64_t>(i % 5));
        // Sweep the kernel configuration space alongside the workloads.
        s.config.tick = (i % 3 == 0) ? Time::us(500) : Time::ms(1);
        s.config.dispatch_cost = (i % 2 == 0) ? Time::us(8) : Time::zero();
        s.config.service_call_atomicity = (i % 4) != 1;
        s.config.delayed_dispatching = (i % 4) != 2;
        s.check = [](Simulation& sim, const ScenarioSpec&) {
            // Every scenario must actually schedule work.
            return sim.sim().total_dispatches() > 0;
        };
        specs.push_back(std::move(s));
    }
    return specs;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t scenarios =
        argc > 1 ? static_cast<std::size_t>(
                       bench::parse_count_or_die(argv[1], "scenarios"))
                 : 64;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned workers =
        argc > 2
            ? static_cast<unsigned>(bench::parse_count_or_die(argv[2], "workers"))
            : std::max(4u, std::min(hw, 8u));

    const char* trace_dir = argc > 3 ? argv[3] : nullptr;

    std::printf("Batch scenario throughput: %zu scenarios, %u worker threads "
                "(%u hardware threads)%s\n\n",
                scenarios, workers, hw,
                trace_dir != nullptr ? ", tracing on" : "");
    std::vector<ScenarioSpec> specs = make_specs(scenarios);
    if (trace_dir != nullptr) {
        for (ScenarioSpec& s : specs) {
            s.trace.enabled = true;
            std::string fname = s.name + ".rtktrace";
            std::replace(fname.begin(), fname.end(), '/', '_');
            s.trace.path = std::string(trace_dir) + "/" + fname;
        }
    }

    ScenarioRunner serial(ScenarioRunner::Options{1});
    const BatchReport serial_report = serial.run(specs);

    ScenarioRunner pool(ScenarioRunner::Options{workers});
    const BatchReport parallel_report = pool.run(specs);

    // Determinism: scenario i must be bit-identical no matter which worker
    // thread ran it.
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (serial_report.results[i].fingerprint !=
            parallel_report.results[i].fingerprint) {
            ++mismatches;
            std::printf("  DETERMINISM MISMATCH: %s\n",
                        specs[i].name.c_str());
        }
    }

    const double speedup = parallel_report.wall_seconds > 0.0
                               ? serial_report.wall_seconds /
                                     parallel_report.wall_seconds
                               : 0.0;

    bench::Table table({"mode", "threads", "wall [s]", "scn/s", "passed"});
    table.add_row({"serial", "1", bench::fmt(serial_report.wall_seconds),
                   bench::fmt(serial_report.scenarios_per_second()),
                   std::to_string(serial_report.passed()) + "/" +
                       std::to_string(specs.size())});
    table.add_row({"parallel", std::to_string(parallel_report.threads),
                   bench::fmt(parallel_report.wall_seconds),
                   bench::fmt(parallel_report.scenarios_per_second()),
                   std::to_string(parallel_report.passed()) + "/" +
                       std::to_string(specs.size())});
    table.print();
    std::printf("\n  speedup: %.2fx over serial (%u hardware threads); "
                "fingerprint mismatches: %zu\n",
                speedup, hw, mismatches);

    {
        std::ofstream out("BENCH_batch_throughput.json");
        out << "{\n  \"bench\": \"batch_scenarios\",\n"
            << "  " << bench::meta_json() << ",\n"
            << "  \"scenarios\": " << specs.size() << ",\n"
            << "  \"hardware_concurrency\": " << hw << ",\n"
            << "  \"workers\": " << parallel_report.threads << ",\n"
            << "  \"speedup\": " << speedup << ",\n"
            << "  \"deterministic\": " << (mismatches == 0 ? "true" : "false")
            << ",\n"
            << "  \"serial\": " << serial_report.to_json()
            << "  ,\n  \"parallel\": " << parallel_report.to_json() << "}\n";
    }
    std::puts("\n  wrote BENCH_batch_throughput.json");

    const bool ok = mismatches == 0 && serial_report.all_passed() &&
                    parallel_report.all_passed();
    return ok ? 0 : 1;
}
