// Batch scenario throughput -- the design-space-exploration payoff of the
// context-explicit API: one binary sweeps N distinct kernel-configuration
// x workload scenarios, serially and across a host thread pool (one
// isolated rtk::Simulation per scenario), and verifies the parallel run
// is bit-identical to the serial one (per-scenario behaviour
// fingerprints).
//
//   $ ./bench_batch_scenarios [scenarios] [threads]
//
// Emits BENCH_batch_throughput.json: both batch reports plus the
// speedup summary. Exits non-zero on any scenario failure or any
// serial-vs-parallel fingerprint mismatch; the speedup itself is
// reported, not asserted (it is bounded by the machine's core count).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "harness/harness.hpp"
#include "tkernel/tkernel.hpp"

using namespace rtk;
using namespace rtk::harness;
using namespace rtk::tkernel;
using sysc::Time;

namespace {

// ---- workloads --------------------------------------------------------------
//
// Each builder wires a deterministic workload (all randomness from the
// spec seed) into the Simulation's user main. Counters live in the
// T-Kernel objects and the SIM_API Gantt/stat recorders, which is what
// the fingerprint digests.

void pipeline_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel& tk = sim.os();
    std::mt19937_64 rng(spec.seed);
    const int stages = 2 + static_cast<int>(rng() % 3);       // 2..4
    const int items = 60 + static_cast<int>(rng() % 40);      // 60..99
    const RELTIM produce_ms = 1 + static_cast<RELTIM>(rng() % 3);
    const std::uint64_t work_units = 40 + rng() % 200;
    sim.set_user_main([&tk, stages, items, produce_ms, work_units] {
        std::vector<ID> sems(static_cast<std::size_t>(stages));
        for (auto& s : sems) {
            T_CSEM cs;
            cs.name = "stage";
            s = tk.tk_cre_sem(cs);
        }
        // Producer feeds stage 0; stage i forwards to i+1.
        T_CTSK prod;
        prod.name = "producer";
        prod.itskpri = 10;
        prod.task = [&tk, sems, items, produce_ms](INT, void*) {
            for (int i = 0; i < items; ++i) {
                tk.tk_dly_tsk(produce_ms);
                tk.tk_sig_sem(sems[0], 1);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(prod), 0);
        for (int s = 0; s < stages; ++s) {
            T_CTSK st;
            st.name = "stage" + std::to_string(s);
            st.itskpri = static_cast<PRI>(5 + s);
            st.task = [&tk, sems, s, stages, items, work_units](INT, void*) {
                for (int i = 0; i < items; ++i) {
                    if (tk.tk_wai_sem(sems[static_cast<std::size_t>(s)], 1,
                                      TMO_FEVR) != E_OK) {
                        return;
                    }
                    tk.sim().SIM_WaitUnits(work_units, sim::ExecContext::task);
                    if (s + 1 < stages) {
                        tk.tk_sig_sem(sems[static_cast<std::size_t>(s) + 1], 1);
                    }
                }
            };
            tk.tk_sta_tsk(tk.tk_cre_tsk(st), 0);
        }
    });
}

void eventflag_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel& tk = sim.os();
    std::mt19937_64 rng(spec.seed);
    const int waiters = 2 + static_cast<int>(rng() % 4);  // 2..5
    const RELTIM period_ms = 2 + static_cast<RELTIM>(rng() % 5);
    const std::uint64_t work_units = 30 + rng() % 150;
    sim.set_user_main([&tk, waiters, period_ms, work_units] {
        T_CFLG cf;
        cf.name = "burst";
        const ID flg = tk.tk_cre_flg(cf);
        for (int w = 0; w < waiters; ++w) {
            T_CTSK wt;
            wt.name = "waiter" + std::to_string(w);
            wt.itskpri = static_cast<PRI>(4 + w);
            const UINT bit = 1u << w;
            wt.task = [&tk, flg, bit, work_units](INT, void*) {
                for (;;) {
                    UINT got = 0;
                    if (tk.tk_wai_flg(flg, bit, TWF_ANDW | TWF_BITCLR, &got,
                                      TMO_FEVR) != E_OK) {
                        return;
                    }
                    tk.sim().SIM_WaitUnits(work_units, sim::ExecContext::task);
                }
            };
            tk.tk_sta_tsk(tk.tk_cre_tsk(wt), 0);
        }
        // Cyclic handler broadcasts one bit per activation, round robin.
        T_CCYC cc;
        cc.name = "burst_src";
        cc.cyctim = period_ms;
        cc.cycphs = period_ms;
        cc.cycatr = TA_STA;
        auto counter = std::make_shared<unsigned>(0);
        cc.cychdr = [&tk, flg, waiters, counter](void*) {
            tk.tk_set_flg(flg, 1u << (*counter % static_cast<unsigned>(waiters)));
            ++*counter;
        };
        tk.tk_cre_cyc(cc);
    });
}

void mutex_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel& tk = sim.os();
    std::mt19937_64 rng(spec.seed);
    const int tasks = 3 + static_cast<int>(rng() % 3);  // 3..5
    const std::uint64_t hold_units = 80 + rng() % 300;
    const RELTIM think_ms = 1 + static_cast<RELTIM>(rng() % 4);
    sim.set_user_main([&tk, tasks, hold_units, think_ms] {
        T_CMTX cm;
        cm.name = "bus";
        cm.mtxatr = TA_INHERIT;
        const ID mtx = tk.tk_cre_mtx(cm);
        for (int t = 0; t < tasks; ++t) {
            T_CTSK ct;
            ct.name = "contender" + std::to_string(t);
            ct.itskpri = static_cast<PRI>(3 + 2 * t);
            ct.task = [&tk, mtx, hold_units, think_ms](INT, void*) {
                for (int round = 0; round < 60; ++round) {
                    tk.tk_dly_tsk(think_ms);
                    if (tk.tk_loc_mtx(mtx, TMO_FEVR) != E_OK) {
                        return;
                    }
                    tk.sim().SIM_WaitUnits(hold_units, sim::ExecContext::task);
                    tk.tk_unl_mtx(mtx);
                }
            };
            tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        }
    });
}

void timer_workload(Simulation& sim, const ScenarioSpec& spec) {
    TKernel& tk = sim.os();
    std::mt19937_64 rng(spec.seed);
    const RELTIM cyc_ms = 3 + static_cast<RELTIM>(rng() % 6);
    const RELTIM alarm_ms = 20 + static_cast<RELTIM>(rng() % 40);
    const std::uint64_t work_units = 50 + rng() % 250;
    sim.set_user_main([&tk, cyc_ms, alarm_ms, work_units] {
        T_CSEM cs;
        cs.name = "tick_work";
        const ID sem = tk.tk_cre_sem(cs);
        T_CTSK ct;
        ct.name = "tick_worker";
        ct.itskpri = 6;
        ct.task = [&tk, sem, work_units](INT, void*) {
            for (;;) {
                if (tk.tk_wai_sem(sem, 1, TMO_FEVR) != E_OK) {
                    return;
                }
                tk.sim().SIM_WaitUnits(work_units, sim::ExecContext::task);
            }
        };
        const ID worker = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(worker, 0);
        T_CCYC cc;
        cc.name = "pacer";
        cc.cyctim = cyc_ms;
        cc.cycphs = cyc_ms;
        cc.cycatr = TA_STA;
        cc.cychdr = [&tk, sem](void*) { tk.tk_sig_sem(sem, 1); };
        tk.tk_cre_cyc(cc);
        T_CALM ca;
        ca.name = "boost";
        ca.almhdr = [&tk, worker](void*) { tk.tk_chg_pri(worker, 2); };
        const ID alm = tk.tk_cre_alm(ca);
        tk.tk_sta_alm(alm, alarm_ms);
    });
}

// ---- spec generation --------------------------------------------------------

std::vector<ScenarioSpec> make_specs(std::size_t count) {
    using Builder = void (*)(Simulation&, const ScenarioSpec&);
    struct Kind {
        const char* name;
        Builder build;
    };
    static constexpr Kind kinds[] = {
        {"pipeline", &pipeline_workload},
        {"eventflag", &eventflag_workload},
        {"mutex", &mutex_workload},
        {"timers", &timer_workload},
    };
    std::vector<ScenarioSpec> specs;
    specs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const Kind& kind = kinds[i % std::size(kinds)];
        ScenarioSpec s;
        s.seed = 1000 + i;
        s.name = std::string(kind.name) + "/" + std::to_string(s.seed);
        s.workload = kind.build;
        s.duration = Time::ms(400 + 40 * static_cast<std::uint64_t>(i % 5));
        // Sweep the kernel configuration space alongside the workloads.
        s.config.tick = (i % 3 == 0) ? Time::us(500) : Time::ms(1);
        s.config.dispatch_cost = (i % 2 == 0) ? Time::us(8) : Time::zero();
        s.config.service_call_atomicity = (i % 4) != 1;
        s.config.delayed_dispatching = (i % 4) != 2;
        s.check = [](Simulation& sim, const ScenarioSpec&) {
            // Every scenario must actually schedule work.
            return sim.sim().total_dispatches() > 0;
        };
        specs.push_back(std::move(s));
    }
    return specs;
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t scenarios =
        argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10)) : 64;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned workers = argc > 2
                                 ? static_cast<unsigned>(std::atoi(argv[2]))
                                 : std::max(4u, std::min(hw, 8u));

    std::printf("Batch scenario throughput: %zu scenarios, %u worker threads "
                "(%u hardware threads)\n\n",
                scenarios, workers, hw);
    const std::vector<ScenarioSpec> specs = make_specs(scenarios);

    ScenarioRunner serial(ScenarioRunner::Options{1});
    const BatchReport serial_report = serial.run(specs);

    ScenarioRunner pool(ScenarioRunner::Options{workers});
    const BatchReport parallel_report = pool.run(specs);

    // Determinism: scenario i must be bit-identical no matter which worker
    // thread ran it.
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (serial_report.results[i].fingerprint !=
            parallel_report.results[i].fingerprint) {
            ++mismatches;
            std::printf("  DETERMINISM MISMATCH: %s\n",
                        specs[i].name.c_str());
        }
    }

    const double speedup = parallel_report.wall_seconds > 0.0
                               ? serial_report.wall_seconds /
                                     parallel_report.wall_seconds
                               : 0.0;

    bench::Table table({"mode", "threads", "wall [s]", "scn/s", "passed"});
    table.add_row({"serial", "1", bench::fmt(serial_report.wall_seconds),
                   bench::fmt(serial_report.scenarios_per_second()),
                   std::to_string(serial_report.passed()) + "/" +
                       std::to_string(specs.size())});
    table.add_row({"parallel", std::to_string(parallel_report.threads),
                   bench::fmt(parallel_report.wall_seconds),
                   bench::fmt(parallel_report.scenarios_per_second()),
                   std::to_string(parallel_report.passed()) + "/" +
                       std::to_string(specs.size())});
    table.print();
    std::printf("\n  speedup: %.2fx over serial (%u hardware threads); "
                "fingerprint mismatches: %zu\n",
                speedup, hw, mismatches);

    {
        std::ofstream out("BENCH_batch_throughput.json");
        out << "{\n  \"bench\": \"batch_scenarios\",\n"
            << "  \"scenarios\": " << specs.size() << ",\n"
            << "  \"hardware_concurrency\": " << hw << ",\n"
            << "  \"workers\": " << parallel_report.threads << ",\n"
            << "  \"speedup\": " << speedup << ",\n"
            << "  \"deterministic\": " << (mismatches == 0 ? "true" : "false")
            << ",\n"
            << "  \"serial\": " << serial_report.to_json()
            << "  ,\n  \"parallel\": " << parallel_report.to_json() << "}\n";
    }
    std::puts("\n  wrote BENCH_batch_throughput.json");

    const bool ok = mismatches == 0 && serial_report.all_passed() &&
                    parallel_report.all_passed();
    return ok ? 0 : 1;
}
