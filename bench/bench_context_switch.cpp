// Context-switch microbenchmark: the cost of one coroutine switch under
// the engine this binary was built with (fcontext assembly by default,
// ucontext with -DRTK_USE_UCONTEXT=ON), against an in-binary raw
// swapcontext ping-pong reference -- so the engines are compared on the
// same machine in the same run. Also measures the StackPool's effect on
// spawn/terminate churn. Emits BENCH_context_switch.json.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sysc/coroutine.hpp"
#include "sysc/kernel.hpp"
#include "sysc/stack_pool.hpp"

// The raw-ucontext reference has no sanitizer fiber annotations, so it
// is skipped (reported as 0) under ASan/TSan builds; the acceptance
// numbers come from plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RTK_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RTK_BENCH_SANITIZED 1
#endif
#endif

#ifndef RTK_BENCH_SANITIZED
#include <ucontext.h>
#endif

using namespace rtk;

namespace {

constexpr int switch_iters = 200000;

/// Coroutine resume/yield ping-pong: ns per one-way switch under the
/// built engine.
double coroutine_switch_ns() {
    sysc::StackPool pool;
    sysc::Coroutine* cp = nullptr;
    sysc::Coroutine c([&cp] {
        for (;;) {
            cp->yield();
        }
    }, sysc::Coroutine::default_stack_bytes, &pool);
    cp = &c;
    c.resume();  // warm up: stack acquisition + first entry
    bench::WallClock clock;
    for (int i = 0; i < switch_iters; ++i) {
        c.resume();
    }
    // One resume = switch in + switch out.
    return clock.seconds() * 1e9 / (2.0 * switch_iters);
}

#ifndef RTK_BENCH_SANITIZED
ucontext_t uc_main, uc_co;

void uc_body() {
    for (;;) {
        swapcontext(&uc_co, &uc_main);
    }
}

/// Raw swapcontext ping-pong: the engine the coroutine layer used before
/// the assembly switch, measured directly (swapcontext saves/restores the
/// signal mask -- a syscall per switch).
double raw_ucontext_switch_ns() {
    static char stack[256 * 1024];
    getcontext(&uc_co);
    uc_co.uc_stack.ss_sp = stack;
    uc_co.uc_stack.ss_size = sizeof(stack);
    uc_co.uc_link = &uc_main;
    makecontext(&uc_co, uc_body, 0);
    swapcontext(&uc_main, &uc_co);  // warm up
    bench::WallClock clock;
    for (int i = 0; i < switch_iters; ++i) {
        swapcontext(&uc_main, &uc_co);
    }
    return clock.seconds() * 1e9 / (2.0 * switch_iters);
}
#else
double raw_ucontext_switch_ns() { return 0.0; }
#endif

struct PoolStats {
    double spawn_cycle_us = 0;
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;
};

/// Spawn/run-to-completion churn on one kernel: every cycle after the
/// first should reuse the previous cycle's stack from the kernel pool.
PoolStats pool_churn() {
    constexpr int cycles = 2000;
    sysc::Kernel k;
    bench::WallClock clock;
    for (int i = 0; i < cycles; ++i) {
        k.spawn("churn" + std::to_string(i), [] {});
        k.run();
    }
    PoolStats s;
    s.spawn_cycle_us = clock.seconds() * 1e6 / cycles;
    s.acquires = k.stack_pool().total_acquires();
    s.reuses = k.stack_pool().total_reuses();
    return s;
}

}  // namespace

int main() {
#if RTK_FCONTEXT
    const char* engine = "fcontext";
#else
    const char* engine = "ucontext";
#endif
    std::printf("Context-switch microbenchmark (engine: %s)\n\n", engine);

    const double coro_ns = coroutine_switch_ns();
    const double raw_uc_ns = raw_ucontext_switch_ns();
    const double speedup = raw_uc_ns > 0 ? raw_uc_ns / coro_ns : 0.0;
    const PoolStats pool = pool_churn();
    const double reuse_rate =
        pool.acquires > 0
            ? static_cast<double>(pool.reuses) / static_cast<double>(pool.acquires)
            : 0.0;

    bench::Table t({"measurement", "value"});
    t.add_row({"coroutine switch (one-way)", bench::fmt(coro_ns, 1) + " ns"});
    t.add_row({"raw swapcontext (one-way)",
               raw_uc_ns > 0 ? bench::fmt(raw_uc_ns, 1) + " ns" : "skipped (sanitized)"});
    t.add_row({"speedup vs ucontext", raw_uc_ns > 0 ? bench::fmt(speedup, 1) + "x" : "-"});
    t.add_row({"spawn+run cycle", bench::fmt(pool.spawn_cycle_us, 1) + " us"});
    t.add_row({"stack-pool reuse rate", bench::fmt(reuse_rate * 100, 1) + " %"});
    t.print();

    std::puts("\nexpected shape: the fcontext engine switches in tens of ns (callee-");
    std::puts("saved registers only); swapcontext pays a sigprocmask syscall per");
    std::puts("switch; the pool reuses every stack after the first churn cycle.");

    std::FILE* f = std::fopen("BENCH_context_switch.json", "w");
    if (f == nullptr) {
        std::puts("warning: cannot write BENCH_context_switch.json");
        return 0;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"context_switch\",\n  %s,\n"
                 "  \"engine\": \"%s\",\n"
                 "  \"coroutine_switch_ns\": %.1f,\n"
                 "  \"raw_ucontext_switch_ns\": %.1f,\n"
                 "  \"speedup_vs_ucontext\": %.2f,\n"
                 "  \"stack_pool\": {\"spawn_cycle_us\": %.2f, "
                 "\"acquires\": %llu, \"reuses\": %llu, \"reuse_rate\": %.3f}\n}\n",
                 bench::meta_json().c_str(), engine, coro_ns, raw_uc_ns, speedup,
                 pool.spawn_cycle_us,
                 static_cast<unsigned long long>(pool.acquires),
                 static_cast<unsigned long long>(pool.reuses), reuse_rate);
    std::fclose(f);
    std::puts("\nwrote BENCH_context_switch.json");
    return 0;
}
