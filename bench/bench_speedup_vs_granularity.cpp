// Reproduction of the paper's conclusion claim (§5/§6): "performing
// simulation at RTOS level; significant speed gain can be obtained
// compared to the RTL or ISS level co-simulation measures reported in
// [12]".
//
// The co-simulation abstraction knob in this model is the preemption
// quantum of SIM_Wait: at the paper's RTOS level the quantum is the
// system tick (1 ms); driving it down to one 8051 machine cycle (1 us)
// makes the engine process events at instruction-step granularity -- the
// event rate an ISS-coupled co-simulation pays. The same video-game
// workload is run at each granularity and the wall-clock slowdown versus
// RTOS level is reported.
#include <cstdio>

#include "app/videogame.hpp"
#include "bench_util.hpp"

using namespace rtk;
using sysc::Time;

namespace {

double run_wall_s(sysc::Time quantum, unsigned sim_ms) {
    sysc::Kernel k;
    tkernel::TKernel::Config cfg;
    cfg.tick = quantum;
    cfg.record_gantt = false;  // isolate engine cost from trace cost
    tkernel::TKernel tk{k, cfg};
    bfm::Bfm8051 board(tk.sim());
    app::VideoGame game(tk, board);
    app::VideoGame::wire(tk, board);
    game.install();
    tk.power_on();
    bench::WallClock wall;
    k.run_until(Time::ms(sim_ms));
    return wall.seconds();
}

}  // namespace

int main() {
    std::puts("Co-simulation speed vs. modeling granularity (paper sec. 6 claim)");
    std::puts("workload: the full video-game co-simulation, 100 ms simulated\n");

    constexpr unsigned sim_ms = 100;
    struct Level {
        const char* name;
        sysc::Time quantum;
    };
    const Level levels[] = {
        {"RTOS level (1 ms system tick, the paper's abstraction)", Time::ms(1)},
        {"bus-transaction granularity (100 us)", Time::us(100)},
        {"near-cycle granularity (10 us)", Time::us(10)},
        {"machine-cycle granularity (1 us, ISS-like event rate)", Time::us(1)},
    };

    const double base = run_wall_s(levels[0].quantum, sim_ms);
    bench::Table t({"co-simulation granularity", "R for 100 ms [s]",
                    "slowdown vs RTOS level"});
    t.add_row({levels[0].name, bench::fmt(base, 3), "1.0x"});
    for (std::size_t i = 1; i < std::size(levels); ++i) {
        const double w = run_wall_s(levels[i].quantum, sim_ms);
        t.add_row({levels[i].name, bench::fmt(w, 3),
                   bench::fmt(w / base, 1) + "x"});
    }
    t.print();

    std::puts("\nshape: each 10x refinement of the quantum multiplies the event");
    std::puts("count and the wall clock accordingly -- the orders-of-magnitude");
    std::puts("speed gain of RTOS-level co-simulation over cycle/ISS-level that");
    std::puts("motivates the paper.");
    return 0;
}
