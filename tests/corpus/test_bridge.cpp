// The corpus execution bridge: generated scenarios run clean through the
// harness, replay is thread-count invariant, the FuzzSpec lowering keeps
// the structure, and a fault campaign can draw its workloads from a
// corpus directory end to end.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/families.hpp"
#include "corpus/index.hpp"
#include "harness/campaign.hpp"
#include "harness/corpus_bridge.hpp"
#include "harness/runner.hpp"
#include "sysc/fsio.hpp"

using namespace rtk;
using namespace rtk::corpus;
using namespace rtk::harness;

namespace {

std::vector<ScenarioFile> small_batch() {
    std::vector<ScenarioFile> files;
    std::uint64_t seed = 4242;
    for (const std::string& family : family_names()) {
        ScenarioFile f;
        EXPECT_TRUE(generate_family(family, {3, seed++}, f));
        files.push_back(std::move(f));
    }
    return files;
}

}  // namespace

TEST(Bridge, GeneratedScenariosRunAndPassTheirChecks) {
    for (const ScenarioFile& f : small_batch()) {
        const CorpusRunReport report = run_corpus_scenario(f);
        EXPECT_TRUE(report.result.passed) << f.name << ": "
                                          << report.result.error;
        EXPECT_FALSE(report.result.hung) << f.name;
        EXPECT_NE(report.result.fingerprint, 0u) << f.name;
        EXPECT_TRUE(report.checks_passed) << f.name;
        EXPECT_EQ(report.checks.size(), f.checks.size()) << f.name;
        EXPECT_TRUE(report.passed()) << f.name;
    }
}

TEST(Bridge, ReplayIsThreadCountInvariant) {
    const std::vector<ScenarioFile> files = small_batch();
    std::vector<ScenarioSpec> specs;
    for (const ScenarioFile& f : files) {
        ScenarioSpec spec = scenario_from_corpus(f);
        spec.trace.enabled = true;
        specs.push_back(std::move(spec));
    }

    const BatchReport serial = ScenarioRunner({1}).run(specs);
    const BatchReport parallel = ScenarioRunner({4}).run(specs);
    ASSERT_EQ(serial.results.size(), files.size());
    ASSERT_EQ(parallel.results.size(), files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
        EXPECT_TRUE(serial.results[i].passed) << files[i].name;
        EXPECT_EQ(serial.results[i].fingerprint, parallel.results[i].fingerprint)
            << files[i].name;
    }
}

TEST(Bridge, FuzzSpecLoweringKeepsTheStructure) {
    for (const ScenarioFile& f : small_batch()) {
        const fuzz::FuzzSpec spec = corpus_to_fuzz_spec(f);
        EXPECT_EQ(spec.seed, f.seed) << f.name;
        EXPECT_EQ(spec.tasks.size(), f.system.tasks.size()) << f.name;
        EXPECT_EQ(spec.sems.size(), f.system.semaphores.size()) << f.name;
        EXPECT_EQ(spec.flgs.size(), f.system.eventflags.size()) << f.name;
        EXPECT_EQ(spec.mtxs.size(), f.system.mutexes.size()) << f.name;
        EXPECT_EQ(spec.mbxs.size(), f.system.mailboxes.size()) << f.name;
        EXPECT_EQ(spec.cycs.size(), f.system.cyclics.size()) << f.name;
        EXPECT_EQ(spec.alms.size(), f.system.alarms.size()) << f.name;
        EXPECT_EQ(spec.ints.size(), f.system.interrupts.size()) << f.name;
        // Bound tasks keep their program; a lowered spec must be runnable.
        std::size_t bound = 0;
        for (const auto& t : spec.tasks) {
            bound += t.ops.empty() ? 0 : 1;
        }
        EXPECT_EQ(bound, f.task_bindings.size()) << f.name;
    }
}

TEST(Bridge, FaultCampaignDrawsWorkloadsFromACorpusDirectory) {
    namespace fs = std::filesystem;
    const std::string dir = "bridge_campaign_corpus";
    fs::remove_all(dir);
    fs::create_directories(dir + "/pipeline");

    // A two-entry corpus with a pinned index, like rtk-corpus gen writes.
    CorpusIndex index;
    std::uint64_t seed = 9090;
    for (int i = 0; i < 2; ++i) {
        ScenarioFile f;
        ASSERT_TRUE(generate_family("pipeline", {2 + i, seed + i}, f));
        const std::string rel =
            "pipeline/pipeline_000" + std::to_string(i) + ".json";
        const std::string bytes = f.dump();
        ASSERT_TRUE(sysc::write_file_atomic(dir + "/" + rel, bytes));
        const CorpusRunReport report = run_corpus_scenario(f);
        ASSERT_TRUE(report.passed()) << report.result.error;
        index.entries.push_back({rel, f.family, fnv1a64(bytes),
                                 report.result.fingerprint, true});
    }
    index.sort();
    std::string error;
    ASSERT_TRUE(index.save(dir, &error)) << error;

    campaign::Manifest m;
    m.name = "bridge_corpus_fault";
    m.kind = campaign::Kind::fault;
    m.base_seed = 7;
    m.corpus = 2;
    m.injections_per_workload = 2;
    m.corpus_dir = dir;

    campaign::BaselineCache cache;
    const std::vector<campaign::Job> jobs = campaign::make_jobs(m);
    ASSERT_EQ(jobs.size(), 4u);
    for (const campaign::Job& job : jobs) {
        const api::Json rec = campaign::run_job(m, job, cache);
        EXPECT_EQ(rec.at("id").as_u64(0), job.id);
        // A valid corpus must never produce skipped-baseline records.
        EXPECT_FALSE(rec.at("skipped").as_bool(false)) << rec.dump(-1);
    }

    // A bad corpus directory degrades to deterministic skips, not a crash.
    campaign::Manifest broken = m;
    broken.corpus_dir = dir + "/nope";
    campaign::BaselineCache cold;
    const api::Json rec = campaign::run_job(broken, jobs[0], cold);
    EXPECT_TRUE(rec.at("skipped").as_bool(false)) << rec.dump(-1);
}
