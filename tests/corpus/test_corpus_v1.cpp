// The checked-in corpus/v1 contract: the pinned index covers >= 1000
// scenarios across all four families, and an evenly-strided sample
// replays byte- and fingerprint-identically against its pins.
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "corpus/families.hpp"
#include "corpus/index.hpp"
#include "corpus/scenario_file.hpp"
#include "harness/corpus_bridge.hpp"

using namespace rtk;
using namespace rtk::corpus;
using namespace rtk::harness;

namespace {

const std::string kDir = RTK_CORPUS_V1_DIR;

bool slurp(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

}  // namespace

TEST(CorpusV1, IndexCoversTheContract) {
    CorpusIndex index;
    std::string error;
    ASSERT_TRUE(CorpusIndex::load(kDir, index, &error)) << error;
    EXPECT_GE(index.entries.size(), 1000u);

    std::set<std::string> families;
    for (const IndexEntry& e : index.entries) {
        families.insert(e.family);
        EXPECT_TRUE(e.passed) << e.file;
    }
    for (const std::string& family : family_names()) {
        EXPECT_TRUE(families.count(family)) << family;
    }
}

TEST(CorpusV1, SampledEntriesReplayAgainstTheirPins) {
    CorpusIndex index;
    std::string error;
    ASSERT_TRUE(CorpusIndex::load(kDir, index, &error)) << error;
    ASSERT_FALSE(index.entries.empty());
    index.sort();

    // An even stride across the sorted index touches every family.
    const std::size_t sample = 16;
    const std::size_t stride =
        index.entries.size() < sample ? 1 : index.entries.size() / sample;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < index.entries.size(); i += stride) {
        const IndexEntry& e = index.entries[i];
        std::string bytes;
        ASSERT_TRUE(slurp(kDir + "/" + e.file, bytes)) << e.file;
        EXPECT_EQ(fnv1a64(bytes), e.digest) << e.file;

        ScenarioFile f;
        ASSERT_TRUE(ScenarioFile::parse(bytes, f, &error))
            << e.file << ": " << error;
        EXPECT_EQ(f.dump(), bytes) << e.file;  // canonical on disk
        EXPECT_EQ(f.family, e.family) << e.file;

        const CorpusRunReport report = run_corpus_scenario(f);
        EXPECT_EQ(report.result.fingerprint, e.fingerprint) << e.file;
        EXPECT_EQ(report.passed(), e.passed) << e.file;
        ++checked;
    }
    EXPECT_GE(checked, sample);
}
