// The pinned corpus index: digest primitive, canonical serialization,
// lookup and the on-disk load/save round-trip.
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "corpus/index.hpp"

using namespace rtk;
using namespace rtk::corpus;

namespace {

CorpusIndex sample_index() {
    CorpusIndex idx;
    idx.entries.push_back({"pipeline/pipeline_0001.json", "pipeline",
                           0x1111222233334444ull, 0xaaaabbbbccccddddull, true});
    idx.entries.push_back({"fork_join/fork_join_0000.json", "fork_join",
                           0x5555666677778888ull, 0x1234123412341234ull, false});
    idx.sort();
    return idx;
}

}  // namespace

TEST(Index, Fnv1a64MatchesKnownVectors) {
    // Reference values of the 64-bit FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Index, SortsAndFindsByFile) {
    const CorpusIndex idx = sample_index();
    ASSERT_EQ(idx.entries.size(), 2u);
    EXPECT_EQ(idx.entries[0].family, "fork_join");  // sorted by path
    const IndexEntry* e = idx.find("pipeline/pipeline_0001.json");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->fingerprint, 0xaaaabbbbccccddddull);
    EXPECT_TRUE(e->passed);
    EXPECT_EQ(idx.find("nope.json"), nullptr);
}

TEST(Index, CanonicalBytesRoundTrip) {
    const CorpusIndex idx = sample_index();
    const std::string text = idx.dump();
    api::Json j;
    std::string error;
    ASSERT_TRUE(api::Json::parse(text, j, &error)) << error;
    CorpusIndex back;
    ASSERT_TRUE(CorpusIndex::from_json(j, back, &error)) << error;
    EXPECT_EQ(text, back.dump());
    ASSERT_EQ(back.entries.size(), idx.entries.size());
    EXPECT_EQ(back.entries[1].digest, idx.entries[1].digest);

    CorpusIndex bad;
    api::Json not_index = api::Json::object();
    EXPECT_FALSE(CorpusIndex::from_json(not_index, bad, &error));
}

TEST(Index, SaveAndLoadThroughTheDirectory) {
    const std::string dir = "corpus_index_tests";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const CorpusIndex idx = sample_index();
    std::string error;
    ASSERT_TRUE(idx.save(dir, &error)) << error;
    CorpusIndex back;
    ASSERT_TRUE(CorpusIndex::load(dir, back, &error)) << error;
    EXPECT_EQ(idx.dump(), back.dump());

    CorpusIndex missing;
    EXPECT_FALSE(CorpusIndex::load(dir + "/nope", missing, &error));
}
