// ScenarioFile schema: canonical-byte round-trips, the behaviour
// registry, and the strict-load rejection matrix (malformed documents,
// dangling bindings, out-of-range operands, bad checks, and the
// SystemSpec hardening underneath).
#include <string>

#include <gtest/gtest.h>

#include "corpus/families.hpp"
#include "corpus/scenario_file.hpp"

using namespace rtk;
using namespace rtk::corpus;

namespace {

ScenarioFile base_scenario() {
    ScenarioFile f;
    EXPECT_TRUE(generate_family("pipeline", {3, 42}, f));
    return f;
}

/// from_json(to_json(broken)) must fail and mention `needle`.
void expect_rejected(const ScenarioFile& broken, const std::string& needle) {
    ScenarioFile out;
    std::string error;
    ASSERT_FALSE(ScenarioFile::from_json(broken.to_json(), out, &error));
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error was: " << error << " (wanted: " << needle << ")";
}

}  // namespace

TEST(ScenarioFile, CanonicalBytesRoundTrip) {
    const ScenarioFile f = base_scenario();
    const std::string text = f.dump();
    ScenarioFile back;
    std::string error;
    ASSERT_TRUE(ScenarioFile::parse(text, back, &error)) << error;
    EXPECT_EQ(text, back.dump());
    EXPECT_EQ(f.name, back.name);
    EXPECT_EQ(f.seed, back.seed);
    EXPECT_EQ(f.duration_ms, back.duration_ms);
    EXPECT_EQ(f.config.tick_us, back.config.tick_us);
}

TEST(ScenarioFile, BehaviourRegistryRoundTrips) {
    const ScenarioFile f = base_scenario();
    ScenarioFile back;
    std::string error;
    ASSERT_TRUE(ScenarioFile::parse(f.dump(), back, &error)) << error;
    ASSERT_EQ(f.programs.size(), back.programs.size());
    for (const auto& [name, prog] : f.programs) {
        const Program* p = back.find_program(name);
        ASSERT_NE(p, nullptr) << name;
        ASSERT_EQ(prog.size(), p->size());
        for (std::size_t i = 0; i < prog.size(); ++i) {
            EXPECT_EQ(prog[i].kind, (*p)[i].kind);
            EXPECT_EQ(prog[i].a, (*p)[i].a);
        }
    }
    EXPECT_EQ(f.task_bindings, back.task_bindings);
    EXPECT_EQ(f.cyclic_bindings, back.cyclic_bindings);
    // Every bound task resolves to its program through the registry.
    for (const auto& [task, prog] : back.task_bindings) {
        EXPECT_NE(back.task_program(task), nullptr) << task;
    }
    EXPECT_EQ(back.task_program("no_such_task"), nullptr);
}

TEST(ScenarioFile, RejectsNonScenarioDocuments) {
    ScenarioFile out;
    std::string error;
    EXPECT_FALSE(ScenarioFile::parse("{", out, &error));
    EXPECT_NE(error.find("json:"), std::string::npos);
    EXPECT_FALSE(ScenarioFile::parse("{\"foo\": 1}\n", out, &error));
    EXPECT_NE(error.find("rtk_scenario"), std::string::npos);
}

TEST(ScenarioFile, RejectsBadTopLevelFields) {
    ScenarioFile f = base_scenario();
    f.name.clear();
    expect_rejected(f, "missing scenario name");

    f = base_scenario();
    f.duration_ms = 0;
    expect_rejected(f, "duration_ms");

    f = base_scenario();
    f.config.tick_us = 0;
    expect_rejected(f, "tick_us");

    f = base_scenario();
    f.config.iter_units = 0;
    expect_rejected(f, "iter_units");

    f = base_scenario();
    f.config.mbx_nodes = 0;
    expect_rejected(f, "mbx_nodes");
}

TEST(ScenarioFile, RejectsDanglingBindings) {
    ScenarioFile f = base_scenario();
    f.task_bindings["ghost_task"] = f.task_bindings.begin()->second;
    expect_rejected(f, "unknown task 'ghost_task'");

    f = base_scenario();
    f.task_bindings.begin()->second = "ghost_program";
    expect_rejected(f, "unknown program 'ghost_program'");

    f = base_scenario();
    f.cyclic_bindings["ghost_cyc"] = f.programs.begin()->first;
    expect_rejected(f, "unknown cyclic 'ghost_cyc'");

    f = base_scenario();
    f.alarm_bindings["ghost_alm"] = f.programs.begin()->first;
    expect_rejected(f, "unknown alarm 'ghost_alm'");

    f = base_scenario();
    f.interrupt_bindings[999] = f.programs.begin()->first;
    expect_rejected(f, "no interrupt vector 999");
}

TEST(ScenarioFile, RejectsOutOfRangeOperands) {
    ScenarioFile f = base_scenario();
    // pipeline declares a handful of semaphores; index 99 addresses none.
    f.programs["rogue"] = {{OpKind::sem_wait, 99, 1, -1, 0}};
    expect_rejected(f, "operand out of range");

    f = base_scenario();
    f.programs["rogue"] = {{OpKind::mtx_lock, 0, 0, 0, 0}};  // no mutexes
    expect_rejected(f, "operand out of range");
}

TEST(ScenarioFile, RejectsBadChecks) {
    ScenarioFile f = base_scenario();
    f.checks.push_back({"ghost_task", 10, 0, 50});
    expect_rejected(f, "unknown task 'ghost_task'");

    f = base_scenario();
    ASSERT_FALSE(f.checks.empty());
    f.checks[0].period_ms = 0;
    expect_rejected(f, "period_ms");

    f = base_scenario();
    f.checks[0].min_percent = 101;
    expect_rejected(f, "min_percent");
}

TEST(ScenarioFile, RejectsMalformedPrograms) {
    // Splice a malformed program entry directly into the document.
    api::Json doc = base_scenario().to_json();
    api::Json progs = api::Json::object();
    api::Json entry = api::Json::array();
    entry.push(api::Json::string("compute"));  // 1 element, not 5
    api::Json body = api::Json::array();
    body.push(std::move(entry));
    progs.set("bad", std::move(body));
    doc.set("programs", std::move(progs));
    ScenarioFile out;
    std::string error;
    ASSERT_FALSE(ScenarioFile::from_json(doc, out, &error));
    EXPECT_NE(error.find("program 'bad'"), std::string::npos) << error;
}

TEST(ScenarioFile, SystemHardeningSurfacesThroughTheLoader) {
    // Duplicate object name within a class.
    ScenarioFile f = base_scenario();
    ASSERT_GE(f.system.tasks.size(), 2u);
    f.system.tasks[1].def.name = f.system.tasks[0].def.name;
    expect_rejected(f, "duplicate task name");

    f = base_scenario();
    ASSERT_FALSE(f.system.semaphores.empty());
    f.system.semaphores.push_back(f.system.semaphores.front());
    expect_rejected(f, "duplicate semaphore name");

    // Out-of-range priorities.
    f = base_scenario();
    f.system.tasks[0].def.priority = 0;
    expect_rejected(f, "priority 0 out of range");

    f = base_scenario();
    f.system.tasks[0].def.priority = 141;
    expect_rejected(f, "priority 141 out of range");

    f = base_scenario();
    api::MtxNode mtx;
    mtx.def.name = "m0";
    mtx.def.protocol = api::MutexDef::Protocol::ceiling;
    mtx.def.ceiling = 999;
    f.system.mutexes.push_back(std::move(mtx));
    expect_rejected(f, "ceiling 999 out of range");

    f = base_scenario();
    api::IntNode v;
    v.intno = 7;
    f.system.interrupts.push_back(v);
    f.system.interrupts.push_back(v);
    expect_rejected(f, "duplicate interrupt vector 7");
}
