// Rate/deadline check evaluation over synthetic metrics: completion
// floor, latency bound, missing tasks and the vacuous-pass case.
#include <gtest/gtest.h>

#include "corpus/checks.hpp"
#include "corpus/families.hpp"

using namespace rtk;
using namespace rtk::corpus;

namespace {

ScenarioFile checked_scenario(std::uint32_t duration_ms, RateCheck check) {
    ScenarioFile f;
    EXPECT_TRUE(generate_family("pipeline", {3, 5}, f));
    f.duration_ms = duration_ms;
    f.checks.clear();
    check.task = f.system.tasks.front().def.name;
    f.checks.push_back(std::move(check));
    return f;
}

trace::TaskMetrics task_metrics(const std::string& name,
                                std::uint64_t dispatches,
                                std::uint64_t ready_ps) {
    trace::TaskMetrics t;
    t.name = name;
    t.dispatches = dispatches;
    t.residency_ps[static_cast<std::size_t>(sim::ThreadState::ready)] =
        ready_ps;
    return t;
}

}  // namespace

TEST(Checks, NoChecksPassVacuously) {
    ScenarioFile f;
    ASSERT_TRUE(generate_family("pipeline", {3, 5}, f));
    f.checks.clear();
    trace::Metrics m;
    EXPECT_TRUE(evaluate_checks(f, m).empty());
    EXPECT_TRUE(all_passed({}));
}

TEST(Checks, CompletionFloorSplitsOnDispatchCount) {
    // 100 ms at a 10 ms period expects 10 activations; 50% floor = 5.
    const ScenarioFile f = checked_scenario(100, {"", 10, 0, 50});
    const std::string task = f.checks[0].task;

    trace::Metrics ok;
    ok.tasks.push_back(task_metrics(task, 5, 0));
    auto results = evaluate_checks(f, ok);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].detail;
    EXPECT_TRUE(all_passed(results));

    trace::Metrics starved;
    starved.tasks.push_back(task_metrics(task, 4, 0));
    results = evaluate_checks(f, starved);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].detail.find("dispatches"), std::string::npos);
    EXPECT_FALSE(all_passed(results));
}

TEST(Checks, DeadlineBoundsMeanReadyLatency) {
    // 2 ms deadline; 10 dispatches. 15 ms of summed ready time means a
    // 1.5 ms mean -- fine; 30 ms means 3 ms -- violated.
    const ScenarioFile f = checked_scenario(100, {"", 10, 2, 50});
    const std::string task = f.checks[0].task;

    trace::Metrics fine;
    fine.tasks.push_back(task_metrics(task, 10, 15000000000ull));
    auto results = evaluate_checks(f, fine);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].detail;

    trace::Metrics late;
    late.tasks.push_back(task_metrics(task, 10, 30000000000ull));
    results = evaluate_checks(f, late);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].detail.find("deadline"), std::string::npos);
}

TEST(Checks, MissingTaskFails) {
    const ScenarioFile f = checked_scenario(100, {"", 10, 0, 50});
    trace::Metrics m;  // empty: the task never appeared
    const auto results = evaluate_checks(f, m);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].detail.find("never appeared"), std::string::npos);
}
