// Workload family generators: catalogue coverage, seed-pinned byte
// determinism and structural sanity of every family at several sizes.
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "corpus/families.hpp"

using namespace rtk;
using namespace rtk::corpus;

TEST(Families, CatalogueHasTheFourShapes) {
    const auto& names = family_names();
    const std::set<std::string> set(names.begin(), names.end());
    EXPECT_EQ(names.size(), 4u);
    EXPECT_TRUE(set.count("pipeline"));
    EXPECT_TRUE(set.count("fork_join"));
    EXPECT_TRUE(set.count("priority_ladder"));
    EXPECT_TRUE(set.count("producer_consumer"));

    ScenarioFile out;
    EXPECT_FALSE(generate_family("moebius_strip", {2, 1}, out));
}

TEST(Families, SameTripleSameBytes) {
    for (const std::string& family : family_names()) {
        for (const std::uint64_t seed : {1ull, 17ull, 123456789ull}) {
            ScenarioFile a, b;
            ASSERT_TRUE(generate_family(family, {4, seed}, a));
            ASSERT_TRUE(generate_family(family, {4, seed}, b));
            EXPECT_EQ(a.dump(), b.dump()) << family << " seed " << seed;
        }
    }
}

TEST(Families, DifferentSeedsDiverge) {
    for (const std::string& family : family_names()) {
        ScenarioFile a, b;
        ASSERT_TRUE(generate_family(family, {4, 1}, a));
        ASSERT_TRUE(generate_family(family, {4, 2}, b));
        EXPECT_NE(a.dump(), b.dump()) << family;
        EXPECT_NE(a.name, b.name) << family;
    }
}

TEST(Families, EveryFamilyEmitsAValidScenario) {
    for (const std::string& family : family_names()) {
        for (int size = 2; size <= 10; ++size) {
            ScenarioFile f;
            ASSERT_TRUE(generate_family(family, {size, 99}, f));
            EXPECT_EQ(f.family, family);
            EXPECT_FALSE(f.name.empty());
            EXPECT_GE(f.system.tasks.size(), 2u) << family << " size " << size;
            EXPECT_FALSE(f.programs.empty());
            EXPECT_FALSE(f.task_bindings.empty());
            EXPECT_FALSE(f.checks.empty());
            // The generator's own output must survive its strict loader.
            ScenarioFile back;
            std::string error;
            ASSERT_TRUE(ScenarioFile::parse(f.dump(), back, &error))
                << family << " size " << size << ": " << error;
        }
    }
}
