// The shared op data model: name round-trips, program (de)serialization
// strictness and the operand-class map the scenario validator uses.
#include <string>

#include <gtest/gtest.h>

#include "corpus/ops.hpp"

using namespace rtk;
using namespace rtk::corpus;

TEST(Ops, EveryKindRoundTripsByName) {
    for (int k = 0; k <= static_cast<int>(OpKind::ref_poll); ++k) {
        const OpKind kind = static_cast<OpKind>(k);
        OpKind back;
        ASSERT_TRUE(op_kind_from_string(to_string(kind), back))
            << to_string(kind);
        EXPECT_EQ(kind, back);
    }
    OpKind out;
    EXPECT_FALSE(op_kind_from_string("definitely_not_an_op", out));
    EXPECT_FALSE(op_kind_from_string("", out));
}

TEST(Ops, ProgramRoundTripsThroughJson) {
    Program prog = {
        {OpKind::compute, 12, 0, 0, 0},
        {OpKind::sem_wait, 1, 2, -1, 0},
        {OpKind::flg_wait, 0, 0x5, 1, 10},
        {OpKind::mbx_send, 0, 3, 0, 0},
    };
    Program back;
    std::string error;
    ASSERT_TRUE(program_from_json(program_to_json(prog), back, &error)) << error;
    ASSERT_EQ(prog.size(), back.size());
    for (std::size_t i = 0; i < prog.size(); ++i) {
        EXPECT_EQ(prog[i].kind, back[i].kind);
        EXPECT_EQ(prog[i].a, back[i].a);
        EXPECT_EQ(prog[i].b, back[i].b);
        EXPECT_EQ(prog[i].c, back[i].c);
        EXPECT_EQ(prog[i].d, back[i].d);
    }
}

TEST(Ops, MalformedEntriesAreRejected) {
    Program out;
    std::string error;

    api::Json not_array = api::Json::string("compute");
    EXPECT_FALSE(program_from_json(not_array, out, &error));

    // An op entry must be exactly ["name", a, b, c, d].
    api::Json short_entry = api::Json::array();
    api::Json entry = api::Json::array();
    entry.push(api::Json::string("compute"));
    entry.push(api::Json::number(1));
    short_entry.push(std::move(entry));
    EXPECT_FALSE(program_from_json(short_entry, out, &error));
    EXPECT_NE(error.find("malformed"), std::string::npos);

    api::Json unknown = api::Json::array();
    api::Json uentry = api::Json::array();
    uentry.push(api::Json::string("warp_core_breach"));
    for (int i = 0; i < 4; ++i) {
        uentry.push(api::Json::number(0));
    }
    unknown.push(std::move(uentry));
    EXPECT_FALSE(program_from_json(unknown, out, &error));
}

TEST(Ops, OperandClassMapCoversTheObviousCases) {
    EXPECT_EQ(op_ref(OpKind::compute), OpRef::none);
    EXPECT_EQ(op_ref(OpKind::sleep), OpRef::none);
    EXPECT_EQ(op_ref(OpKind::wakeup), OpRef::task);
    EXPECT_EQ(op_ref(OpKind::chg_pri), OpRef::task);
    EXPECT_EQ(op_ref(OpKind::sem_wait), OpRef::sem);
    EXPECT_EQ(op_ref(OpKind::flg_set), OpRef::flg);
    EXPECT_EQ(op_ref(OpKind::mtx_lock), OpRef::mtx);
    EXPECT_EQ(op_ref(OpKind::mbx_send), OpRef::mbx);
    EXPECT_EQ(op_ref(OpKind::mbf_recv), OpRef::mbf);
    EXPECT_EQ(op_ref(OpKind::mpf_get), OpRef::mpf);
    EXPECT_EQ(op_ref(OpKind::mpl_rel), OpRef::mpl);
    EXPECT_EQ(op_ref(OpKind::cyc_start), OpRef::cyc);
    EXPECT_EQ(op_ref(OpKind::alm_start), OpRef::alm);
    EXPECT_EQ(op_ref(OpKind::raise_int), OpRef::intv);
}
