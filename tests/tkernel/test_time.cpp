// Time management tests: system time, cyclic handlers, alarm handlers.
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class TimeTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(300)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }
};

TEST_F(TimeTest, SystemTimeAdvancesWithTicks) {
    boot_and_run([] {}, Time::ms(50));
    SYSTIM tim = 0;
    EXPECT_EQ(tk.tk_get_tim(&tim), E_OK);
    EXPECT_GE(tim, 49u);
    EXPECT_LE(tim, 50u);
    SYSTIM otm = 0;
    EXPECT_EQ(tk.tk_get_otm(&otm), E_OK);
    EXPECT_EQ(otm, tim);
}

TEST_F(TimeTest, SetTimeShiftsSystimButNotOtm) {
    boot_and_run([&] {
        tk.tk_dly_tsk(10);
        EXPECT_EQ(tk.tk_set_tim(1'000'000), E_OK);
        tk.tk_dly_tsk(10);
        SYSTIM tim = 0, otm = 0;
        tk.tk_get_tim(&tim);
        tk.tk_get_otm(&otm);
        EXPECT_GE(tim, 1'000'009u);
        EXPECT_LE(tim, 1'000'012u);
        EXPECT_LE(otm, 25u);  // operating time unaffected
    });
}

TEST_F(TimeTest, NullPointersRejected) {
    EXPECT_EQ(tk.tk_get_tim(nullptr), E_PAR);
    EXPECT_EQ(tk.tk_get_otm(nullptr), E_PAR);
}

TEST_F(TimeTest, CyclicHandlerFiresPeriodically) {
    std::vector<Time> fires;
    boot_and_run(
        [&] {
            T_CCYC cc;
            cc.cyctim = 20;
            cc.cychdr = [&](void*) { fires.push_back(sysc::now()); };
            ID cyc = tk.tk_cre_cyc(cc);
            EXPECT_EQ(tk.tk_sta_cyc(cyc), E_OK);
        },
        Time::ms(110));
    ASSERT_GE(fires.size(), 4u);
    // Period between consecutive activations is 20 ms (+- tick).
    for (std::size_t i = 1; i < fires.size(); ++i) {
        const Time delta = fires[i] - fires[i - 1];
        EXPECT_GE(delta, Time::ms(19));
        EXPECT_LE(delta, Time::ms(21));
    }
}

TEST_F(TimeTest, TaStaStartsImmediately) {
    std::uint64_t count = 0;
    boot_and_run(
        [&] {
            T_CCYC cc;
            cc.cycatr = TA_HLNG | TA_STA;
            cc.cyctim = 10;
            cc.cychdr = [&](void*) { ++count; };
            tk.tk_cre_cyc(cc);
        },
        Time::ms(100));
    EXPECT_GE(count, 8u);
    EXPECT_LE(count, 10u);
}

TEST_F(TimeTest, StopCyclicHaltsActivations) {
    std::uint64_t count = 0;
    boot_and_run(
        [&] {
            T_CCYC cc;
            cc.cyctim = 10;
            cc.cychdr = [&](void*) { ++count; };
            ID cyc = tk.tk_cre_cyc(cc);
            tk.tk_sta_cyc(cyc);
            tk.tk_dly_tsk(35);
            tk.tk_stp_cyc(cyc);
            const auto frozen = count;
            tk.tk_dly_tsk(50);
            EXPECT_EQ(count, frozen);
            T_RCYC r;
            tk.tk_ref_cyc(cyc, &r);
            EXPECT_EQ(r.cycstat, TCYC_STP);
        },
        Time::ms(200));
    EXPECT_GE(count, 2u);
    EXPECT_LE(count, 4u);
}

TEST_F(TimeTest, CyclicPhaseHonored) {
    Time first;
    boot_and_run(
        [&] {
            T_CCYC cc;
            cc.cycatr = TA_HLNG | TA_STA | TA_PHS;
            cc.cyctim = 50;
            cc.cycphs = 5;
            cc.cychdr = [&](void*) {
                if (first.is_zero()) {
                    first = sysc::now();
                }
            };
            tk.tk_cre_cyc(cc);
        },
        Time::ms(100));
    EXPECT_GE(first, Time::ms(5));
    EXPECT_LE(first, Time::ms(8));
}

TEST_F(TimeTest, RefCycReportsTimeToNextFire) {
    boot_and_run([&] {
        T_CCYC cc;
        cc.cyctim = 50;
        cc.cychdr = [](void*) {};
        ID cyc = tk.tk_cre_cyc(cc);
        tk.tk_sta_cyc(cyc);
        tk.tk_dly_tsk(10);
        T_RCYC r;
        ASSERT_EQ(tk.tk_ref_cyc(cyc, &r), E_OK);
        EXPECT_EQ(r.cycstat, TCYC_STA);
        EXPECT_GE(r.lfttim, 35u);
        EXPECT_LE(r.lfttim, 45u);
    });
}

TEST_F(TimeTest, AlarmFiresOnceAtRequestedTime) {
    std::vector<Time> fires;
    boot_and_run(
        [&] {
            T_CALM ca;
            ca.almhdr = [&](void*) { fires.push_back(sysc::now()); };
            ID alm = tk.tk_cre_alm(ca);
            EXPECT_EQ(tk.tk_sta_alm(alm, 30), E_OK);
        },
        Time::ms(150));
    ASSERT_EQ(fires.size(), 1u);
    EXPECT_GE(fires[0], Time::ms(30));
    EXPECT_LE(fires[0], Time::ms(32));
}

TEST_F(TimeTest, AlarmRestartReplacesSchedule) {
    std::vector<Time> fires;
    boot_and_run(
        [&] {
            T_CALM ca;
            ca.almhdr = [&](void*) { fires.push_back(sysc::now()); };
            ID alm = tk.tk_cre_alm(ca);
            tk.tk_sta_alm(alm, 10);
            tk.tk_dly_tsk(5);
            tk.tk_sta_alm(alm, 50);  // re-arm before it fires
        },
        Time::ms(150));
    ASSERT_EQ(fires.size(), 1u);
    EXPECT_GE(fires[0], Time::ms(55));
}

TEST_F(TimeTest, AlarmStopCancels) {
    std::uint64_t count = 0;
    boot_and_run(
        [&] {
            T_CALM ca;
            ca.almhdr = [&](void*) { ++count; };
            ID alm = tk.tk_cre_alm(ca);
            tk.tk_sta_alm(alm, 20);
            tk.tk_dly_tsk(5);
            EXPECT_EQ(tk.tk_stp_alm(alm), E_OK);
            T_RALM r;
            tk.tk_ref_alm(alm, &r);
            EXPECT_EQ(r.almstat, TALM_STP);
        },
        Time::ms(100));
    EXPECT_EQ(count, 0u);
}

TEST_F(TimeTest, AlarmIsReusable) {
    std::uint64_t count = 0;
    boot_and_run(
        [&] {
            T_CALM ca;
            ca.almhdr = [&](void*) { ++count; };
            ID alm = tk.tk_cre_alm(ca);
            tk.tk_sta_alm(alm, 10);
            tk.tk_dly_tsk(20);
            tk.tk_sta_alm(alm, 10);
            tk.tk_dly_tsk(20);
        },
        Time::ms(100));
    EXPECT_EQ(count, 2u);
}

TEST_F(TimeTest, HandlersRunAboveTasks) {
    // A cyclic handler must preempt a busy task at tick granularity.
    std::vector<Time> fires;
    boot_and_run(
        [&] {
            T_CCYC cc;
            cc.cyctim = 10;
            cc.cychdr = [&](void*) { fires.push_back(sysc::now()); };
            ID cyc = tk.tk_cre_cyc(cc);
            tk.tk_sta_cyc(cyc);
            T_CTSK ct;
            ct.name = "busy";
            ct.itskpri = 5;
            ct.task = [&](INT, void*) {
                tk.sim().SIM_Wait(Time::ms(100), sim::ExecContext::task);
            };
            tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        },
        Time::ms(60));
    EXPECT_GE(fires.size(), 4u);  // fired despite the busy task
}

TEST_F(TimeTest, DeletedHandlersStopExisting) {
    boot_and_run([&] {
        T_CCYC cc;
        cc.cyctim = 10;
        cc.cychdr = [](void*) {};
        ID cyc = tk.tk_cre_cyc(cc);
        EXPECT_EQ(tk.tk_del_cyc(cyc), E_OK);
        T_RCYC r;
        EXPECT_EQ(tk.tk_ref_cyc(cyc, &r), E_NOEXS);
        T_CALM ca;
        ca.almhdr = [](void*) {};
        ID alm = tk.tk_cre_alm(ca);
        EXPECT_EQ(tk.tk_del_alm(alm), E_OK);
        T_RALM ra;
        EXPECT_EQ(tk.tk_ref_alm(alm, &ra), E_NOEXS);
    });
}

TEST_F(TimeTest, CreateValidation) {
    boot_and_run([&] {
        T_CCYC cc;  // no handler
        EXPECT_EQ(tk.tk_cre_cyc(cc), E_PAR);
        cc.cychdr = [](void*) {};
        cc.cyctim = 0;
        EXPECT_EQ(tk.tk_cre_cyc(cc), E_PAR);
        T_CALM ca;  // no handler
        EXPECT_EQ(tk.tk_cre_alm(ca), E_PAR);
    });
}

}  // namespace
}  // namespace rtk::tkernel
