// WaitQueue unit tests: FIFO vs priority ordering, repositioning.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

class WaitQueueTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};

    TCB make(const char* name, PRI pri) {
        TCB t;
        t.name = name;
        t.thread = &api.SIM_CreateThread(name, sim::ThreadKind::task, pri, [] {});
        return t;
    }
};

TEST_F(WaitQueueTest, FifoOrder) {
    WaitQueue q(false);
    TCB a = make("a", 5), b = make("b", 1), c = make("c", 9);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop_front(), &a);  // insertion order, priorities ignored
    EXPECT_EQ(q.pop_front(), &b);
    EXPECT_EQ(q.pop_front(), &c);
    EXPECT_EQ(q.pop_front(), nullptr);
}

TEST_F(WaitQueueTest, PriorityOrderWithFifoTieBreak) {
    WaitQueue q(true);
    TCB a = make("a", 5), b = make("b", 1), c = make("c", 5), d = make("d", 9);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    q.enqueue(d);
    EXPECT_EQ(q.pop_front(), &b);  // highest priority
    EXPECT_EQ(q.pop_front(), &a);  // FIFO among equals (a before c)
    EXPECT_EQ(q.pop_front(), &c);
    EXPECT_EQ(q.pop_front(), &d);
}

TEST_F(WaitQueueTest, EnqueueSetsBackPointer) {
    WaitQueue q(false);
    TCB a = make("a", 5);
    q.enqueue(a);
    EXPECT_EQ(a.queue, &q);
    q.remove(a);
    EXPECT_EQ(a.queue, nullptr);
    EXPECT_TRUE(q.empty());
}

TEST_F(WaitQueueTest, RemoveAbsentIsNoop) {
    WaitQueue q(false);
    TCB a = make("a", 5);
    q.remove(a);  // never enqueued
    EXPECT_TRUE(q.empty());
}

TEST_F(WaitQueueTest, RepositionAfterPriorityChange) {
    WaitQueue q(true);
    TCB a = make("a", 5), b = make("b", 10);
    q.enqueue(a);
    q.enqueue(b);
    EXPECT_EQ(q.front(), &a);
    // Boost b above a (the thread's current priority drives ordering).
    api.SIM_SetCurrentPriority(*b.thread, 1);
    q.reposition(b);
    EXPECT_EQ(q.front(), &b);
}

TEST_F(WaitQueueTest, RepositionOnFifoQueueIsNoop) {
    WaitQueue q(false);
    TCB a = make("a", 5), b = make("b", 10);
    q.enqueue(a);
    q.enqueue(b);
    api.SIM_SetCurrentPriority(*b.thread, 1);
    q.reposition(b);
    EXPECT_EQ(q.front(), &a);  // FIFO queues never reorder
}

TEST_F(WaitQueueTest, SnapshotAndContains) {
    WaitQueue q(true);
    TCB a = make("a", 3), b = make("b", 7);
    q.enqueue(b);
    q.enqueue(a);
    EXPECT_TRUE(q.contains(a));
    auto snap = q.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0], &a);
    q.remove(a);
    EXPECT_FALSE(q.contains(a));
}

// ---- intrusive-node invariants ---------------------------------------------

TEST_F(WaitQueueTest, RemoveFromMiddleRelinksNeighbours) {
    WaitQueue q(false);
    TCB a = make("a", 5), b = make("b", 5), c = make("c", 5);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    q.remove(b);
    EXPECT_EQ(b.queue, nullptr);
    EXPECT_EQ(b.wq_prev, nullptr);
    EXPECT_EQ(b.wq_next, nullptr);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop_front(), &a);
    EXPECT_EQ(q.pop_front(), &c);
    // A removed task can re-enter cleanly.
    q.enqueue(b);
    EXPECT_EQ(q.front(), &b);
    EXPECT_TRUE(q.contains(b));
}

TEST_F(WaitQueueTest, RepositionKeepsFifoAmongEquals) {
    WaitQueue q(true);
    TCB a = make("a", 5), b = make("b", 5), c = make("c", 9);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    // c moves to priority 5: it must land *behind* the equal-priority
    // waiters already queued (reposition == remove + sorted re-insert).
    api.SIM_SetCurrentPriority(*c.thread, 5);
    q.reposition(c);
    EXPECT_EQ(q.pop_front(), &a);
    EXPECT_EQ(q.pop_front(), &b);
    EXPECT_EQ(q.pop_front(), &c);
}

TEST_F(WaitQueueTest, RepositionToWorsePriorityMovesPastEquals) {
    WaitQueue q(true);
    TCB a = make("a", 1), b = make("b", 5), c = make("c", 9);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    api.SIM_SetCurrentPriority(*a.thread, 9);
    q.reposition(a);
    EXPECT_EQ(q.pop_front(), &b);
    EXPECT_EQ(q.pop_front(), &c);  // FIFO among the now-equal 9s
    EXPECT_EQ(q.pop_front(), &a);
}

TEST_F(WaitQueueTest, RepositionOfAbsentTaskIsNoop) {
    WaitQueue q(true);
    TCB a = make("a", 5), b = make("b", 9);
    q.enqueue(b);
    q.reposition(a);  // never enqueued here
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.front(), &b);
}

TEST_F(WaitQueueTest, NextOfWalksQueueOrder) {
    WaitQueue q(true);
    TCB a = make("a", 5), b = make("b", 1), c = make("c", 5);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    std::vector<const TCB*> seen;
    for (const TCB* w = q.front(); w != nullptr; w = q.next_of(*w)) {
        seen.push_back(w);
    }
    EXPECT_EQ(seen, (std::vector<const TCB*>{&b, &a, &c}));
    EXPECT_EQ(q.next_of(c), nullptr);
    // next_of on a task queued elsewhere (or nowhere) yields nullptr.
    TCB d = make("d", 2);
    EXPECT_EQ(q.next_of(d), nullptr);
}

TEST_F(WaitQueueTest, PriorityInsertWalksOnlyLowerPriorityTail) {
    // Behavioural pin for the sorted-insert position with many waiters:
    // equal priorities stay strictly FIFO even at the boundaries.
    WaitQueue q(true);
    std::vector<TCB> tcbs;
    tcbs.reserve(9);
    for (int i = 0; i < 9; ++i) {
        tcbs.push_back(make(("t" + std::to_string(i)).c_str(), 1 + (i % 3) * 4));
    }
    for (auto& t : tcbs) {
        q.enqueue(t);
    }
    std::vector<PRI> pris;
    std::vector<const TCB*> order;
    for (const TCB* w = q.front(); w != nullptr; w = q.next_of(*w)) {
        pris.push_back(w->thread->priority());
        order.push_back(w);
    }
    EXPECT_EQ(pris, (std::vector<PRI>{1, 1, 1, 5, 5, 5, 9, 9, 9}));
    EXPECT_EQ(order, (std::vector<const TCB*>{&tcbs[0], &tcbs[3], &tcbs[6],
                                              &tcbs[1], &tcbs[4], &tcbs[7],
                                              &tcbs[2], &tcbs[5], &tcbs[8]}));
}

}  // namespace
}  // namespace rtk::tkernel
