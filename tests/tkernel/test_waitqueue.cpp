// WaitQueue unit tests: FIFO vs priority ordering, repositioning.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

class WaitQueueTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{sched};

    TCB make(const char* name, PRI pri) {
        TCB t;
        t.name = name;
        t.thread = &api.SIM_CreateThread(name, sim::ThreadKind::task, pri, [] {});
        return t;
    }
};

TEST_F(WaitQueueTest, FifoOrder) {
    WaitQueue q(false);
    TCB a = make("a", 5), b = make("b", 1), c = make("c", 9);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop_front(), &a);  // insertion order, priorities ignored
    EXPECT_EQ(q.pop_front(), &b);
    EXPECT_EQ(q.pop_front(), &c);
    EXPECT_EQ(q.pop_front(), nullptr);
}

TEST_F(WaitQueueTest, PriorityOrderWithFifoTieBreak) {
    WaitQueue q(true);
    TCB a = make("a", 5), b = make("b", 1), c = make("c", 5), d = make("d", 9);
    q.enqueue(a);
    q.enqueue(b);
    q.enqueue(c);
    q.enqueue(d);
    EXPECT_EQ(q.pop_front(), &b);  // highest priority
    EXPECT_EQ(q.pop_front(), &a);  // FIFO among equals (a before c)
    EXPECT_EQ(q.pop_front(), &c);
    EXPECT_EQ(q.pop_front(), &d);
}

TEST_F(WaitQueueTest, EnqueueSetsBackPointer) {
    WaitQueue q(false);
    TCB a = make("a", 5);
    q.enqueue(a);
    EXPECT_EQ(a.queue, &q);
    q.remove(a);
    EXPECT_EQ(a.queue, nullptr);
    EXPECT_TRUE(q.empty());
}

TEST_F(WaitQueueTest, RemoveAbsentIsNoop) {
    WaitQueue q(false);
    TCB a = make("a", 5);
    q.remove(a);  // never enqueued
    EXPECT_TRUE(q.empty());
}

TEST_F(WaitQueueTest, RepositionAfterPriorityChange) {
    WaitQueue q(true);
    TCB a = make("a", 5), b = make("b", 10);
    q.enqueue(a);
    q.enqueue(b);
    EXPECT_EQ(q.front(), &a);
    // Boost b above a (the thread's current priority drives ordering).
    api.SIM_SetCurrentPriority(*b.thread, 1);
    q.reposition(b);
    EXPECT_EQ(q.front(), &b);
}

TEST_F(WaitQueueTest, RepositionOnFifoQueueIsNoop) {
    WaitQueue q(false);
    TCB a = make("a", 5), b = make("b", 10);
    q.enqueue(a);
    q.enqueue(b);
    api.SIM_SetCurrentPriority(*b.thread, 1);
    q.reposition(b);
    EXPECT_EQ(q.front(), &a);  // FIFO queues never reorder
}

TEST_F(WaitQueueTest, SnapshotAndContains) {
    WaitQueue q(true);
    TCB a = make("a", 3), b = make("b", 7);
    q.enqueue(b);
    q.enqueue(a);
    EXPECT_TRUE(q.contains(a));
    auto snap = q.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0], &a);
    q.remove(a);
    EXPECT_FALSE(q.contains(a));
}

}  // namespace
}  // namespace rtk::tkernel
