// Mailbox service call tests (reference-passing, TA_MPRI ordering).
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

struct IntMsg : T_MSG {
    int value = 0;
};
struct PriMsg : T_MSG_PRI {
    int value = 0;
};

class MbxTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(200)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID spawn_task(const char* name, PRI pri, std::function<void()> fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
        const ID tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        return tid;
    }
};

TEST_F(MbxTest, FifoSendReceive) {
    boot_and_run([&] {
        T_CMBX cm;
        ID mbx = tk.tk_cre_mbx(cm);
        IntMsg a, b;
        a.value = 1;
        b.value = 2;
        tk.tk_snd_mbx(mbx, &a);
        tk.tk_snd_mbx(mbx, &b);
        T_MSG* got = nullptr;
        EXPECT_EQ(tk.tk_rcv_mbx(mbx, &got, TMO_POL), E_OK);
        EXPECT_EQ(static_cast<IntMsg*>(got)->value, 1);
        EXPECT_EQ(tk.tk_rcv_mbx(mbx, &got, TMO_POL), E_OK);
        EXPECT_EQ(static_cast<IntMsg*>(got)->value, 2);
        EXPECT_EQ(tk.tk_rcv_mbx(mbx, &got, TMO_POL), E_TMOUT);
    });
}

TEST_F(MbxTest, PriorityOrderedMessages) {
    boot_and_run([&] {
        T_CMBX cm;
        cm.mbxatr = TA_TFIFO | TA_MPRI;
        ID mbx = tk.tk_cre_mbx(cm);
        PriMsg lo, hi, mid;
        lo.msgpri = 9;
        lo.value = 9;
        hi.msgpri = 1;
        hi.value = 1;
        mid.msgpri = 5;
        mid.value = 5;
        tk.tk_snd_mbx(mbx, &lo);
        tk.tk_snd_mbx(mbx, &hi);
        tk.tk_snd_mbx(mbx, &mid);
        T_MSG* got = nullptr;
        tk.tk_rcv_mbx(mbx, &got, TMO_POL);
        EXPECT_EQ(static_cast<PriMsg*>(got)->value, 1);
        tk.tk_rcv_mbx(mbx, &got, TMO_POL);
        EXPECT_EQ(static_cast<PriMsg*>(got)->value, 5);
        tk.tk_rcv_mbx(mbx, &got, TMO_POL);
        EXPECT_EQ(static_cast<PriMsg*>(got)->value, 9);
    });
}

TEST_F(MbxTest, SendWakesBlockedReceiver) {
    int got_value = 0;
    boot_and_run([&] {
        T_CMBX cm;
        ID mbx = tk.tk_cre_mbx(cm);
        spawn_task("rx", 5, [&] {
            T_MSG* got = nullptr;
            if (tk.tk_rcv_mbx(mbx, &got, TMO_FEVR) == E_OK) {
                got_value = static_cast<IntMsg*>(got)->value;
            }
        });
        tk.tk_dly_tsk(5);
        static IntMsg m;
        m.value = 77;
        tk.tk_snd_mbx(mbx, &m);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(got_value, 77);
}

TEST_F(MbxTest, ReceiveTimeout) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CMBX cm;
        ID mbx = tk.tk_cre_mbx(cm);
        T_MSG* got = nullptr;
        er = tk.tk_rcv_mbx(mbx, &got, 10);
    });
    EXPECT_EQ(er, E_TMOUT);
}

TEST_F(MbxTest, ParameterValidation) {
    boot_and_run([&] {
        T_CMBX cm;
        ID mbx = tk.tk_cre_mbx(cm);
        EXPECT_EQ(tk.tk_snd_mbx(mbx, nullptr), E_PAR);
        T_MSG* got = nullptr;
        EXPECT_EQ(tk.tk_rcv_mbx(mbx, nullptr, TMO_POL), E_PAR);
        EXPECT_EQ(tk.tk_snd_mbx(777, &*std::make_unique<IntMsg>()), E_NOEXS);
        EXPECT_EQ(tk.tk_rcv_mbx(-3, &got, TMO_POL), E_ID);
    });
}

TEST_F(MbxTest, DeleteReleasesReceivers) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CMBX cm;
        ID mbx = tk.tk_cre_mbx(cm);
        spawn_task("rx", 5, [&] {
            T_MSG* got = nullptr;
            er = tk.tk_rcv_mbx(mbx, &got, TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        tk.tk_del_mbx(mbx);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(er, E_DLT);
}

TEST_F(MbxTest, RefReportsNextMessageAndWaiter) {
    boot_and_run([&] {
        T_CMBX cm;
        ID mbx = tk.tk_cre_mbx(cm);
        static IntMsg m;
        m.value = 5;
        tk.tk_snd_mbx(mbx, &m);
        T_RMBX r;
        ASSERT_EQ(tk.tk_ref_mbx(mbx, &r), E_OK);
        EXPECT_EQ(r.pk_msg, &m);
        EXPECT_EQ(r.wtsk, 0);
    });
}

TEST_F(MbxTest, ProducerConsumerPipeline) {
    // Stress ordering: producer sends 50 messages, consumer receives all
    // in order despite blocking. NB: the id lives in the *test* scope --
    // task bodies outlive the init task's stack frame.
    std::vector<int> received;
    ID mbx = 0;
    boot_and_run(
        [&] {
            T_CMBX cm;
            mbx = tk.tk_cre_mbx(cm);
            static std::array<IntMsg, 50> msgs;
            spawn_task("consumer", 5, [&] {
                for (int i = 0; i < 50; ++i) {
                    T_MSG* got = nullptr;
                    if (tk.tk_rcv_mbx(mbx, &got, TMO_FEVR) != E_OK) {
                        return;
                    }
                    received.push_back(static_cast<IntMsg*>(got)->value);
                }
            });
            spawn_task("producer", 6, [&] {
                for (int i = 0; i < 50; ++i) {
                    msgs[static_cast<std::size_t>(i)].value = i;
                    tk.tk_snd_mbx(mbx, &msgs[static_cast<std::size_t>(i)]);
                    if (i % 7 == 0) {
                        tk.tk_dly_tsk(1);
                    }
                }
            });
        },
        Time::ms(500));
    ASSERT_EQ(received.size(), 50u);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
    }
}

}  // namespace
}  // namespace rtk::tkernel
