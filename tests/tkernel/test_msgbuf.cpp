// Message buffer service call tests: copy semantics, blocking send on a
// full buffer, zero-capacity rendezvous.
#include <gtest/gtest.h>

#include <cstring>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class MbfTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(300)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID spawn_task(const char* name, PRI pri, std::function<void()> fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
        const ID tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        return tid;
    }
};

TEST_F(MbfTest, CopyInCopyOut) {
    boot_and_run([&] {
        T_CMBF cm;
        cm.bufsz = 256;
        cm.maxmsz = 64;
        ID mbf = tk.tk_cre_mbf(cm);
        const char msg[] = "hello";
        EXPECT_EQ(tk.tk_snd_mbf(mbf, msg, sizeof(msg), TMO_POL), E_OK);
        char buf[64] = {};
        EXPECT_EQ(tk.tk_rcv_mbf(mbf, buf, TMO_POL), static_cast<INT>(sizeof(msg)));
        EXPECT_STREQ(buf, "hello");
    });
}

TEST_F(MbfTest, MessageBoundariesPreserved) {
    boot_and_run([&] {
        T_CMBF cm;
        ID mbf = tk.tk_cre_mbf(cm);
        const char a[] = "aa";
        const char b[] = "bbbb";
        tk.tk_snd_mbf(mbf, a, 2, TMO_POL);
        tk.tk_snd_mbf(mbf, b, 4, TMO_POL);
        char buf[16] = {};
        EXPECT_EQ(tk.tk_rcv_mbf(mbf, buf, TMO_POL), 2);
        EXPECT_EQ(tk.tk_rcv_mbf(mbf, buf, TMO_POL), 4);
    });
}

TEST_F(MbfTest, OversizeMessageRejected) {
    boot_and_run([&] {
        T_CMBF cm;
        cm.maxmsz = 8;
        ID mbf = tk.tk_cre_mbf(cm);
        char big[16] = {};
        EXPECT_EQ(tk.tk_snd_mbf(mbf, big, 16, TMO_POL), E_PAR);
        EXPECT_EQ(tk.tk_snd_mbf(mbf, big, 0, TMO_POL), E_PAR);
        EXPECT_EQ(tk.tk_snd_mbf(mbf, nullptr, 4, TMO_POL), E_PAR);
    });
}

TEST_F(MbfTest, SenderBlocksWhenFullThenProceeds) {
    ER send_er = E_SYS;
    Time sent_at;
    boot_and_run([&] {
        T_CMBF cm;
        cm.bufsz = 16;  // fits one 8-byte message + header
        cm.maxmsz = 8;
        ID mbf = tk.tk_cre_mbf(cm);
        const char m[8] = "0123456";
        EXPECT_EQ(tk.tk_snd_mbf(mbf, m, 8, TMO_POL), E_OK);
        EXPECT_EQ(tk.tk_snd_mbf(mbf, m, 8, TMO_POL), E_TMOUT);  // full
        spawn_task("sender", 5, [&] {
            const char m2[8] = "xxxxxxx";
            send_er = tk.tk_snd_mbf(mbf, m2, 8, TMO_FEVR);  // blocks
            sent_at = sysc::now();
        });
        tk.tk_dly_tsk(20);
        char buf[8];
        tk.tk_rcv_mbf(mbf, buf, TMO_POL);  // frees space -> sender unblocks
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(send_er, E_OK);
    EXPECT_GE(sent_at, Time::ms(20));
}

TEST_F(MbfTest, ReceiverBlocksUntilSend) {
    INT got = 0;
    char buf[32] = {};
    boot_and_run([&] {
        T_CMBF cm;
        ID mbf = tk.tk_cre_mbf(cm);
        spawn_task("rx", 5, [&] { got = tk.tk_rcv_mbf(mbf, buf, TMO_FEVR); });
        tk.tk_dly_tsk(10);
        const char m[] = "late";
        tk.tk_snd_mbf(mbf, m, 5, TMO_POL);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(got, 5);
    EXPECT_STREQ(buf, "late");
}

TEST_F(MbfTest, ZeroCapacityRendezvous) {
    // bufsz == 0: the sender must block until a receiver arrives.
    Time send_done, recv_done;
    boot_and_run([&] {
        T_CMBF cm;
        cm.bufsz = 0;
        cm.maxmsz = 16;
        ID mbf = tk.tk_cre_mbf(cm);
        spawn_task("tx", 5, [&] {
            const char m[] = "sync";
            EXPECT_EQ(tk.tk_snd_mbf(mbf, m, 5, TMO_FEVR), E_OK);
            send_done = sysc::now();
        });
        spawn_task("rx", 6, [&] {
            tk.tk_dly_tsk(25);
            char buf[16];
            EXPECT_EQ(tk.tk_rcv_mbf(mbf, buf, TMO_FEVR), 5);
            recv_done = sysc::now();
        });
        tk.tk_dly_tsk(60);
    });
    EXPECT_GE(send_done, Time::ms(25));  // sender waited for the receiver
    EXPECT_GE(recv_done, Time::ms(25));
}

TEST_F(MbfTest, SendOrderPreservedThroughBlockedSenders) {
    std::vector<int> received;
    ID mbf = 0;  // test scope: task bodies outlive the init task's frame
    boot_and_run(
        [&] {
            T_CMBF cm;
            cm.bufsz = 24;
            cm.maxmsz = 8;
            mbf = tk.tk_cre_mbf(cm);
            spawn_task("tx", 6, [&] {
                for (int i = 0; i < 8; ++i) {
                    tk.tk_snd_mbf(mbf, &i, sizeof(i), TMO_FEVR);
                }
            });
            spawn_task("rx", 5, [&] {
                tk.tk_dly_tsk(10);
                for (int i = 0; i < 8; ++i) {
                    int v = -1;
                    if (tk.tk_rcv_mbf(mbf, &v, TMO_FEVR) == static_cast<INT>(sizeof(v))) {
                        received.push_back(v);
                    }
                    tk.tk_dly_tsk(1);
                }
            });
        },
        Time::ms(500));
    ASSERT_EQ(received.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
    }
}

TEST_F(MbfTest, RefReportsState) {
    boot_and_run([&] {
        T_CMBF cm;
        cm.bufsz = 64;
        cm.maxmsz = 16;
        ID mbf = tk.tk_cre_mbf(cm);
        const char m[] = "abc";
        tk.tk_snd_mbf(mbf, m, 4, TMO_POL);
        T_RMBF r;
        ASSERT_EQ(tk.tk_ref_mbf(mbf, &r), E_OK);
        EXPECT_EQ(r.msgsz, 4);
        EXPECT_EQ(r.frbufsz, 64 - 4 - MessageBuffer::header_bytes);
        EXPECT_EQ(r.wtsk, 0);
        EXPECT_EQ(r.rtsk, 0);
    });
}

TEST_F(MbfTest, DeleteReleasesBothQueues) {
    ER rx_er = E_OK, tx_er = E_OK;
    boot_and_run([&] {
        // rx blocks on an empty buffer; tx blocks on a *zero-capacity*
        // buffer with no receiver -- deletion must release both with E_DLT.
        T_CMBF cm;
        cm.bufsz = 64;
        cm.maxmsz = 8;
        ID mbf_rx = tk.tk_cre_mbf(cm);
        cm.bufsz = 0;
        ID mbf_tx = tk.tk_cre_mbf(cm);
        spawn_task("rx", 5, [&] {
            char buf[8];
            rx_er = tk.tk_rcv_mbf(mbf_rx, buf, TMO_FEVR);
        });
        spawn_task("tx", 6, [&] {
            const char m[] = "x";
            tx_er = tk.tk_snd_mbf(mbf_tx, m, 1, TMO_FEVR);
        });
        tk.tk_dly_tsk(10);
        tk.tk_del_mbf(mbf_rx);
        tk.tk_del_mbf(mbf_tx);
        tk.tk_dly_tsk(10);
    });
    EXPECT_EQ(rx_er, E_DLT);
    EXPECT_EQ(tx_er, E_DLT);
}

}  // namespace
}  // namespace rtk::tkernel
