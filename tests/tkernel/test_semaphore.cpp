// Semaphore service call tests.
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class SemTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(200)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID spawn_task(const char* name, PRI pri, std::function<void()> fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
        const ID tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        return tid;
    }
};

TEST_F(SemTest, CreateValidates) {
    boot_and_run([&] {
        T_CSEM cs;
        cs.isemcnt = -1;
        EXPECT_EQ(tk.tk_cre_sem(cs), E_PAR);
        cs.isemcnt = 5;
        cs.maxsem = 3;
        EXPECT_EQ(tk.tk_cre_sem(cs), E_PAR);
        cs.maxsem = 10;
        EXPECT_GT(tk.tk_cre_sem(cs), 0);
    });
}

TEST_F(SemTest, PollSucceedsWhenAvailable) {
    boot_and_run([&] {
        T_CSEM cs;
        cs.isemcnt = 2;
        ID sem = tk.tk_cre_sem(cs);
        EXPECT_EQ(tk.tk_wai_sem(sem, 2, TMO_POL), E_OK);
        EXPECT_EQ(tk.tk_wai_sem(sem, 1, TMO_POL), E_TMOUT);
        T_RSEM r;
        tk.tk_ref_sem(sem, &r);
        EXPECT_EQ(r.semcnt, 0);
    });
}

TEST_F(SemTest, SignalWakesWaiter) {
    ER er = E_SYS;
    Time woke;
    boot_and_run([&] {
        T_CSEM cs;
        ID sem = tk.tk_cre_sem(cs);
        spawn_task("waiter", 5, [&] {
            er = tk.tk_wai_sem(sem, 1, TMO_FEVR);
            woke = sysc::now();
        });
        tk.tk_dly_tsk(10);
        tk.tk_sig_sem(sem, 1);
    });
    EXPECT_EQ(er, E_OK);
    EXPECT_GE(woke, Time::ms(10));
}

TEST_F(SemTest, WaitTimeout) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CSEM cs;
        ID sem = tk.tk_cre_sem(cs);
        er = tk.tk_wai_sem(sem, 1, 15);
    });
    EXPECT_EQ(er, E_TMOUT);
}

TEST_F(SemTest, CountingSemantics) {
    boot_and_run([&] {
        T_CSEM cs;
        cs.isemcnt = 0;
        ID sem = tk.tk_cre_sem(cs);
        tk.tk_sig_sem(sem, 3);
        EXPECT_EQ(tk.tk_wai_sem(sem, 2, TMO_POL), E_OK);
        EXPECT_EQ(tk.tk_wai_sem(sem, 2, TMO_POL), E_TMOUT);
        EXPECT_EQ(tk.tk_wai_sem(sem, 1, TMO_POL), E_OK);
    });
}

TEST_F(SemTest, QueueOverflow) {
    boot_and_run([&] {
        T_CSEM cs;
        cs.isemcnt = 0;
        cs.maxsem = 2;
        ID sem = tk.tk_cre_sem(cs);
        EXPECT_EQ(tk.tk_sig_sem(sem, 2), E_OK);
        EXPECT_EQ(tk.tk_sig_sem(sem, 1), E_QOVR);
        EXPECT_EQ(tk.tk_sig_sem(sem, 0), E_PAR);
    });
}

TEST_F(SemTest, TaFirstBlocksBehindBigRequest) {
    // TA_FIRST: a small request behind a blocked big one must wait.
    std::vector<std::string> order;
    boot_and_run([&] {
        T_CSEM cs;
        cs.sematr = TA_TFIFO | TA_FIRST;
        cs.isemcnt = 0;
        cs.maxsem = 10;
        ID sem = tk.tk_cre_sem(cs);
        spawn_task("big", 5, [&] {
            tk.tk_wai_sem(sem, 3, TMO_FEVR);
            order.push_back("big");
        });
        spawn_task("small", 6, [&] {
            tk.tk_wai_sem(sem, 1, TMO_FEVR);
            order.push_back("small");
        });
        tk.tk_dly_tsk(10);
        tk.tk_sig_sem(sem, 1);  // not enough for big; small must NOT jump
        tk.tk_dly_tsk(10);
        EXPECT_TRUE(order.empty());
        tk.tk_sig_sem(sem, 3);  // big (3) then small (1)
        tk.tk_dly_tsk(10);
    });
    EXPECT_EQ(order, (std::vector<std::string>{"big", "small"}));
}

TEST_F(SemTest, TaCntServesSatisfiableWaiter) {
    std::vector<std::string> order;
    boot_and_run([&] {
        T_CSEM cs;
        cs.sematr = TA_TFIFO | TA_CNT;
        cs.isemcnt = 0;
        cs.maxsem = 10;
        ID sem = tk.tk_cre_sem(cs);
        spawn_task("big", 5, [&] {
            tk.tk_wai_sem(sem, 3, TMO_FEVR);
            order.push_back("big");
        });
        spawn_task("small", 6, [&] {
            tk.tk_wai_sem(sem, 1, TMO_FEVR);
            order.push_back("small");
        });
        tk.tk_dly_tsk(10);
        tk.tk_sig_sem(sem, 1);  // TA_CNT: small is served although queued second
        tk.tk_dly_tsk(10);
    });
    EXPECT_EQ(order, (std::vector<std::string>{"small"}));
}

TEST_F(SemTest, PriorityOrderedQueue) {
    std::vector<std::string> order;
    boot_and_run([&] {
        T_CSEM cs;
        cs.sematr = TA_TPRI | TA_FIRST;
        ID sem = tk.tk_cre_sem(cs);
        spawn_task("lopri", 20, [&] {
            tk.tk_wai_sem(sem, 1, TMO_FEVR);
            order.push_back("lopri");
        });
        tk.tk_dly_tsk(5);
        spawn_task("hipri", 5, [&] {
            tk.tk_wai_sem(sem, 1, TMO_FEVR);
            order.push_back("hipri");
        });
        tk.tk_dly_tsk(5);
        tk.tk_sig_sem(sem, 1);  // hipri queued later but served first
        tk.tk_dly_tsk(5);
        tk.tk_sig_sem(sem, 1);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(order, (std::vector<std::string>{"hipri", "lopri"}));
}

TEST_F(SemTest, DeleteReleasesWaitersWithEDlt) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CSEM cs;
        ID sem = tk.tk_cre_sem(cs);
        spawn_task("w", 5, [&] { er = tk.tk_wai_sem(sem, 1, TMO_FEVR); });
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_del_sem(sem), E_OK);
        tk.tk_dly_tsk(5);
        T_RSEM r;
        EXPECT_EQ(tk.tk_ref_sem(sem, &r), E_NOEXS);
    });
    EXPECT_EQ(er, E_DLT);
}

TEST_F(SemTest, BadIds) {
    boot_and_run([&] {
        EXPECT_EQ(tk.tk_sig_sem(-1, 1), E_ID);
        EXPECT_EQ(tk.tk_sig_sem(12345, 1), E_NOEXS);
        EXPECT_EQ(tk.tk_wai_sem(0, 1, TMO_POL), E_ID);
        EXPECT_EQ(tk.tk_del_sem(12345), E_NOEXS);
    });
}

TEST_F(SemTest, RefReportsFirstWaiter) {
    boot_and_run([&] {
        T_CSEM cs;
        ID sem = tk.tk_cre_sem(cs);
        ID w = spawn_task("w", 5, [&] { tk.tk_wai_sem(sem, 1, TMO_FEVR); });
        tk.tk_dly_tsk(5);
        T_RSEM r;
        ASSERT_EQ(tk.tk_ref_sem(sem, &r), E_OK);
        EXPECT_EQ(r.wtsk, w);
        tk.tk_sig_sem(sem, 1);
    });
}

}  // namespace
}  // namespace rtk::tkernel
