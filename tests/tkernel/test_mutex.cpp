// Mutex service call tests: plain locking, priority inheritance
// (including transitive chains), priority ceiling, cleanup on exit.
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class MutexTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(300)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID spawn_task(const char* name, PRI pri, std::function<void()> fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
        const ID tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        return tid;
    }

    PRI current_priority(ID tid) {
        T_RTSK r;
        tk.tk_ref_tsk(tid, &r);
        return r.tskpri;
    }
};

TEST_F(MutexTest, BasicLockUnlock) {
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        EXPECT_EQ(tk.tk_loc_mtx(mtx, TMO_FEVR), E_OK);
        T_RMTX r;
        tk.tk_ref_mtx(mtx, &r);
        EXPECT_EQ(r.htsk, tk.tk_get_tid());
        EXPECT_EQ(tk.tk_unl_mtx(mtx), E_OK);
        tk.tk_ref_mtx(mtx, &r);
        EXPECT_EQ(r.htsk, 0);
    });
}

TEST_F(MutexTest, NotRecursive) {
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        tk.tk_loc_mtx(mtx, TMO_FEVR);
        EXPECT_EQ(tk.tk_loc_mtx(mtx, TMO_FEVR), E_ILUSE);
        tk.tk_unl_mtx(mtx);
    });
}

TEST_F(MutexTest, UnlockByNonOwnerIsIllegal) {
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        spawn_task("owner", 5, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_unl_mtx(mtx), E_ILUSE);
    });
}

TEST_F(MutexTest, ContendedLockTransfersToWaiter) {
    std::vector<std::string> order;
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        spawn_task("first", 5, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            order.push_back("first_locked");
            tk.tk_dly_tsk(20);
            tk.tk_unl_mtx(mtx);
            order.push_back("first_unlocked");
        });
        spawn_task("second", 6, [&] {
            tk.tk_dly_tsk(5);
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            order.push_back("second_locked");
            tk.tk_unl_mtx(mtx);
        });
        tk.tk_dly_tsk(60);
    });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "first_locked");
    EXPECT_EQ(order[1], "first_unlocked");
    EXPECT_EQ(order[2], "second_locked");
}

TEST_F(MutexTest, LockTimeout) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        spawn_task("owner", 5, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        er = tk.tk_loc_mtx(mtx, 10);
    });
    EXPECT_EQ(er, E_TMOUT);
}

TEST_F(MutexTest, PollFailsFast) {
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        spawn_task("owner", 5, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_loc_mtx(mtx, TMO_POL), E_TMOUT);
    });
}

TEST_F(MutexTest, PriorityInheritanceBoostsOwner) {
    PRI owner_pri_during = 0;
    ID owner_tid = 0;
    boot_and_run([&] {
        T_CMTX cm;
        cm.mtxatr = TA_INHERIT;
        ID mtx = tk.tk_cre_mtx(cm);
        owner_tid = spawn_task("owner", 20, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_dly_tsk(30);
            tk.tk_unl_mtx(mtx);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        spawn_task("hi", 3, [&] {
            tk.tk_dly_tsk(5);
            tk.tk_loc_mtx(mtx, TMO_FEVR);  // blocks; owner inherits pri 3
            tk.tk_unl_mtx(mtx);
        });
        tk.tk_dly_tsk(15);
        owner_pri_during = current_priority(owner_tid);
        tk.tk_dly_tsk(40);
    });
    EXPECT_EQ(owner_pri_during, 3);
    // After unlock, the owner's priority deflates to its base.
    EXPECT_EQ(current_priority(owner_tid), 20);
}

TEST_F(MutexTest, TransitiveInheritanceChain) {
    // hi blocks on m2 owned by mid; mid blocks on m1 owned by low.
    // low must inherit hi's priority through the chain.
    ID low_tid = 0;
    PRI low_pri_during = 0;
    boot_and_run([&] {
        T_CMTX cm;
        cm.mtxatr = TA_INHERIT;
        ID m1 = tk.tk_cre_mtx(cm);
        ID m2 = tk.tk_cre_mtx(cm);
        low_tid = spawn_task("low", 30, [&] {
            tk.tk_loc_mtx(m1, TMO_FEVR);
            tk.tk_dly_tsk(40);
            tk.tk_unl_mtx(m1);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        spawn_task("mid", 20, [&] {
            tk.tk_dly_tsk(5);
            tk.tk_loc_mtx(m2, TMO_FEVR);
            tk.tk_loc_mtx(m1, TMO_FEVR);  // blocks on low
            tk.tk_unl_mtx(m1);
            tk.tk_unl_mtx(m2);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        spawn_task("hi", 2, [&] {
            tk.tk_dly_tsk(10);
            tk.tk_loc_mtx(m2, TMO_FEVR);  // blocks on mid -> chain boost
            tk.tk_unl_mtx(m2);
        });
        tk.tk_dly_tsk(20);
        low_pri_during = current_priority(low_tid);
        tk.tk_dly_tsk(60);
    });
    EXPECT_EQ(low_pri_during, 2);
}

TEST_F(MutexTest, CeilingProtocolBoostsOnLock) {
    ID t = 0;
    PRI during = 0;
    boot_and_run([&] {
        T_CMTX cm;
        cm.mtxatr = TA_CEILING;
        cm.ceilpri = 3;
        ID mtx = tk.tk_cre_mtx(cm);
        t = spawn_task("t", 15, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_dly_tsk(20);
            tk.tk_unl_mtx(mtx);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        tk.tk_dly_tsk(10);
        during = current_priority(t);
        tk.tk_dly_tsk(30);
    });
    EXPECT_EQ(during, 3);
    EXPECT_EQ(current_priority(t), 15);
}

TEST_F(MutexTest, CeilingViolationIsIllegal) {
    boot_and_run([&] {
        T_CMTX cm;
        cm.mtxatr = TA_CEILING;
        cm.ceilpri = 10;
        ID mtx = tk.tk_cre_mtx(cm);
        ER er = E_OK;
        spawn_task("urgent", 2, [&] {
            er = tk.tk_loc_mtx(mtx, TMO_FEVR);  // base 2 beats ceiling 10
        });
        tk.tk_dly_tsk(5);
        EXPECT_EQ(er, E_ILUSE);
    });
}

TEST_F(MutexTest, ChgPriAboveCeilingOfHeldMutexIsIllegal) {
    boot_and_run([&] {
        T_CMTX cm;
        cm.mtxatr = TA_CEILING;
        cm.ceilpri = 5;
        ID mtx = tk.tk_cre_mtx(cm);
        ID t = spawn_task("t", 15, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_dly_tsk(30);
            tk.tk_unl_mtx(mtx);
        });
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_chg_pri(t, 2), E_ILUSE);
        EXPECT_EQ(tk.tk_chg_pri(t, 8), E_OK);
        tk.tk_dly_tsk(40);
    });
}

TEST_F(MutexTest, TaskExitReleasesHeldMutexes) {
    ER waiter_er = E_SYS;
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        spawn_task("holder", 5, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_dly_tsk(10);
            // exits while holding the mutex
        });
        spawn_task("waiter", 6, [&] {
            tk.tk_dly_tsk(2);
            waiter_er = tk.tk_loc_mtx(mtx, TMO_FEVR);
        });
        tk.tk_dly_tsk(50);
    });
    EXPECT_EQ(waiter_er, E_OK);  // released on holder exit
}

TEST_F(MutexTest, TerminationReleasesHeldMutexes) {
    ER waiter_er = E_SYS;
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        ID holder = spawn_task("holder", 5, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        spawn_task("waiter", 6, [&] {
            tk.tk_dly_tsk(2);
            waiter_er = tk.tk_loc_mtx(mtx, TMO_FEVR);
        });
        tk.tk_dly_tsk(10);
        tk.tk_ter_tsk(holder);
        tk.tk_dly_tsk(10);
    });
    EXPECT_EQ(waiter_er, E_OK);
}

TEST_F(MutexTest, TimeoutDeflatesInheritedPriority) {
    ID owner = 0;
    PRI after_timeout = 0;
    boot_and_run([&] {
        T_CMTX cm;
        cm.mtxatr = TA_INHERIT;
        ID mtx = tk.tk_cre_mtx(cm);
        owner = spawn_task("owner", 20, [&] {
            tk.tk_loc_mtx(mtx, TMO_FEVR);
            tk.tk_dly_tsk(60);
            tk.tk_unl_mtx(mtx);
            tk.tk_slp_tsk(TMO_FEVR);
        });
        spawn_task("hi", 3, [&] {
            tk.tk_dly_tsk(5);
            tk.tk_loc_mtx(mtx, 10);  // will time out at ~15 ms
        });
        tk.tk_dly_tsk(30);
        after_timeout = current_priority(owner);
        tk.tk_dly_tsk(60);
    });
    EXPECT_EQ(after_timeout, 20);  // boost removed with the waiter
}

TEST_F(MutexTest, HandlerContextIsRejected) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CMTX cm;
        ID mtx = tk.tk_cre_mtx(cm);
        T_CALM ca;
        ca.almhdr = [&](void*) { er = tk.tk_loc_mtx(mtx, TMO_FEVR); };
        ID alm = tk.tk_cre_alm(ca);
        tk.tk_sta_alm(alm, 5);
        tk.tk_dly_tsk(20);
    });
    EXPECT_EQ(er, E_CTX);
}

}  // namespace
}  // namespace rtk::tkernel
