// Memory pool tests: fixed-size and variable-size pools, exhaustion,
// waiter handoff, coalescing, double-free detection.
#include <gtest/gtest.h>

#include <set>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class PoolTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(300)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID spawn_task(const char* name, PRI pri, std::function<void()> fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
        const ID tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        return tid;
    }
};

TEST_F(PoolTest, FixedPoolAllocAndFree) {
    boot_and_run([&] {
        T_CMPF cm;
        cm.mpfcnt = 3;
        cm.blfsz = 32;
        ID mpf = tk.tk_cre_mpf(cm);
        std::set<void*> blocks;
        for (int i = 0; i < 3; ++i) {
            void* b = nullptr;
            EXPECT_EQ(tk.tk_get_mpf(mpf, &b, TMO_POL), E_OK);
            EXPECT_NE(b, nullptr);
            blocks.insert(b);
        }
        EXPECT_EQ(blocks.size(), 3u);  // all distinct
        void* extra = nullptr;
        EXPECT_EQ(tk.tk_get_mpf(mpf, &extra, TMO_POL), E_TMOUT);  // exhausted
        for (void* b : blocks) {
            EXPECT_EQ(tk.tk_rel_mpf(mpf, b), E_OK);
        }
        T_RMPF r;
        tk.tk_ref_mpf(mpf, &r);
        EXPECT_EQ(r.frbcnt, 3);
    });
}

TEST_F(PoolTest, FixedPoolRejectsBadPointers) {
    boot_and_run([&] {
        T_CMPF cm;
        cm.mpfcnt = 2;
        cm.blfsz = 16;
        ID mpf = tk.tk_cre_mpf(cm);
        void* b = nullptr;
        tk.tk_get_mpf(mpf, &b, TMO_POL);
        int local = 0;
        EXPECT_EQ(tk.tk_rel_mpf(mpf, &local), E_PAR);  // foreign pointer
        EXPECT_EQ(tk.tk_rel_mpf(mpf, static_cast<char*>(b) + 1), E_PAR);  // misaligned
        EXPECT_EQ(tk.tk_rel_mpf(mpf, b), E_OK);
        EXPECT_EQ(tk.tk_rel_mpf(mpf, b), E_PAR);  // double free
    });
}

TEST_F(PoolTest, FixedPoolWaiterGetsBlockOnRelease) {
    void* got = nullptr;
    boot_and_run([&] {
        T_CMPF cm;
        cm.mpfcnt = 1;
        cm.blfsz = 16;
        ID mpf = tk.tk_cre_mpf(cm);
        void* held = nullptr;
        tk.tk_get_mpf(mpf, &held, TMO_POL);
        spawn_task("w", 5, [&] { tk.tk_get_mpf(mpf, &got, TMO_FEVR); });
        tk.tk_dly_tsk(10);
        EXPECT_EQ(got, nullptr);
        tk.tk_rel_mpf(mpf, held);  // handed straight to the waiter
        tk.tk_dly_tsk(5);
    });
    EXPECT_NE(got, nullptr);
}

TEST_F(PoolTest, VariablePoolFirstFitAndRef) {
    boot_and_run([&] {
        T_CMPL cm;
        cm.mplsz = 1024;
        ID mpl = tk.tk_cre_mpl(cm);
        void* a = nullptr;
        void* b = nullptr;
        EXPECT_EQ(tk.tk_get_mpl(mpl, 100, &a, TMO_POL), E_OK);
        EXPECT_EQ(tk.tk_get_mpl(mpl, 200, &b, TMO_POL), E_OK);
        T_RMPL r;
        tk.tk_ref_mpl(mpl, &r);
        // 100 -> 104, 200 -> 200 after 8-byte alignment.
        EXPECT_EQ(r.frsz, 1024 - 104 - 200);
        EXPECT_EQ(tk.tk_rel_mpl(mpl, a), E_OK);
        EXPECT_EQ(tk.tk_rel_mpl(mpl, b), E_OK);
        tk.tk_ref_mpl(mpl, &r);
        EXPECT_EQ(r.frsz, 1024);
        EXPECT_EQ(r.maxsz, 1024);  // coalesced back into one extent
    });
}

TEST_F(PoolTest, VariablePoolCoalescesFragments) {
    boot_and_run([&] {
        T_CMPL cm;
        cm.mplsz = 512;
        ID mpl = tk.tk_cre_mpl(cm);
        void* p[4] = {};
        for (auto& ptr : p) {
            ASSERT_EQ(tk.tk_get_mpl(mpl, 64, &ptr, TMO_POL), E_OK);
        }
        // Free out of order: 1, 3, 0, 2 -- must fully coalesce.
        tk.tk_rel_mpl(mpl, p[1]);
        tk.tk_rel_mpl(mpl, p[3]);
        tk.tk_rel_mpl(mpl, p[0]);
        tk.tk_rel_mpl(mpl, p[2]);
        T_RMPL r;
        tk.tk_ref_mpl(mpl, &r);
        EXPECT_EQ(r.maxsz, 512);
    });
}

TEST_F(PoolTest, VariablePoolExhaustionAndWaiters) {
    ER er = E_SYS;
    boot_and_run([&] {
        T_CMPL cm;
        cm.mplsz = 256;
        ID mpl = tk.tk_cre_mpl(cm);
        void* big = nullptr;
        EXPECT_EQ(tk.tk_get_mpl(mpl, 256, &big, TMO_POL), E_OK);
        void* more = nullptr;
        EXPECT_EQ(tk.tk_get_mpl(mpl, 8, &more, TMO_POL), E_TMOUT);
        spawn_task("w", 5, [&] {
            void* blk = nullptr;
            er = tk.tk_get_mpl(mpl, 128, &blk, TMO_FEVR);
        });
        tk.tk_dly_tsk(10);
        tk.tk_rel_mpl(mpl, big);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(er, E_OK);
}

TEST_F(PoolTest, VariablePoolRejectsBadRequests) {
    boot_and_run([&] {
        T_CMPL cm;
        cm.mplsz = 128;
        ID mpl = tk.tk_cre_mpl(cm);
        void* b = nullptr;
        EXPECT_EQ(tk.tk_get_mpl(mpl, 0, &b, TMO_POL), E_PAR);
        EXPECT_EQ(tk.tk_get_mpl(mpl, 4096, &b, TMO_POL), E_PAR);
        EXPECT_EQ(tk.tk_get_mpl(mpl, 8, nullptr, TMO_POL), E_PAR);
        int local;
        EXPECT_EQ(tk.tk_rel_mpl(mpl, &local), E_PAR);
    });
}

TEST_F(PoolTest, StrictQueueOrderForVariableWaiters) {
    // First waiter wants a big block; a later small request must not
    // starve it (strict µ-ITRON queue order).
    std::vector<std::string> order;
    boot_and_run([&] {
        T_CMPL cm;
        cm.mplsz = 256;
        ID mpl = tk.tk_cre_mpl(cm);
        void* all = nullptr;
        tk.tk_get_mpl(mpl, 256, &all, TMO_POL);
        spawn_task("big", 5, [&] {
            void* b = nullptr;
            tk.tk_get_mpl(mpl, 200, &b, TMO_FEVR);
            order.push_back("big");
        });
        spawn_task("small", 6, [&] {
            tk.tk_dly_tsk(2);
            void* b = nullptr;
            tk.tk_get_mpl(mpl, 8, &b, TMO_FEVR);
            order.push_back("small");
        });
        tk.tk_dly_tsk(10);
        tk.tk_rel_mpl(mpl, all);  // big first, then small
        tk.tk_dly_tsk(10);
    });
    EXPECT_EQ(order, (std::vector<std::string>{"big", "small"}));
}

TEST_F(PoolTest, DeleteReleasesWaiters) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CMPF cm;
        cm.mpfcnt = 1;
        cm.blfsz = 8;
        ID mpf = tk.tk_cre_mpf(cm);
        void* held = nullptr;
        tk.tk_get_mpf(mpf, &held, TMO_POL);
        spawn_task("w", 5, [&] {
            void* b = nullptr;
            er = tk.tk_get_mpf(mpf, &b, TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        tk.tk_del_mpf(mpf);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(er, E_DLT);
}

TEST_F(PoolTest, CreateValidation) {
    boot_and_run([&] {
        T_CMPF cf;
        cf.mpfcnt = 0;
        EXPECT_EQ(tk.tk_cre_mpf(cf), E_PAR);
        cf.mpfcnt = 1;
        cf.blfsz = -1;
        EXPECT_EQ(tk.tk_cre_mpf(cf), E_PAR);
        T_CMPL cl;
        cl.mplsz = 0;
        EXPECT_EQ(tk.tk_cre_mpl(cl), E_PAR);
    });
}

}  // namespace
}  // namespace rtk::tkernel
