// Task exception handling tests (tk_def_tex / tk_ras_tex / tk_ena_tex /
// tk_dis_tex / tk_ref_tex).
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class TexTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(300)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID spawn_task(const char* name, PRI pri, std::function<void()> fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
        const ID tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        return tid;
    }
};

TEST_F(TexTest, RaiseWithoutHandlerIsObjectError) {
    boot_and_run([&] {
        ID t = spawn_task("t", 5, [&] { tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_ras_tex(t, 0x1), E_OBJ);
        EXPECT_EQ(tk.tk_ras_tex(t, 0), E_PAR);  // parameter check
    });
}

TEST_F(TexTest, HandlerRunsInTargetContextAtServiceBoundary) {
    UINT got_ptn = 0;
    ID handler_tid = 0;
    ID target = 0;
    boot_and_run([&] {
        target = spawn_task("t", 5, [&] {
            T_DTEX dt;
            dt.texhdr = [&](UINT ptn) {
                got_ptn = ptn;
                handler_tid = tk.tk_get_tid();
            };
            tk.tk_def_tex(TSK_SELF, dt);
            for (int i = 0; i < 50; ++i) {
                tk.tk_dly_tsk(5);  // service boundaries = delivery points
            }
        });
        tk.tk_dly_tsk(12);
        EXPECT_EQ(tk.tk_ras_tex(target, 0x5), E_OK);
        tk.tk_dly_tsk(20);
    });
    EXPECT_EQ(got_ptn, 0x5u);
    EXPECT_EQ(handler_tid, target);  // ran in the target task's context
}

TEST_F(TexTest, RaiseReleasesWaitWithEDiswai) {
    ER wait_er = E_OK;
    boot_and_run([&] {
        ID t = spawn_task("t", 5, [&] {
            T_DTEX dt;
            dt.texhdr = [](UINT) {};
            tk.tk_def_tex(TSK_SELF, dt);
            wait_er = tk.tk_slp_tsk(TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_ras_tex(t, 0x1), E_OK);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(wait_er, E_DISWAI);
}

TEST_F(TexTest, PatternsAccumulateWhileTaskIsBusy) {
    // Two raises land while the target executes between service
    // boundaries (annotated computation): they OR together and deliver
    // once at the next boundary.
    std::vector<UINT> delivered;
    boot_and_run([&] {
        ID t = spawn_task("t", 5, [&] {
            T_DTEX dt;
            dt.texhdr = [&](UINT ptn) { delivered.push_back(ptn); };
            tk.tk_def_tex(TSK_SELF, dt);
            tk.sim().SIM_Wait(Time::ms(20), sim::ExecContext::task);  // busy
            tk.tk_dly_tsk(10);  // first boundary after the raises
        });
        tk.tk_dly_tsk(5);
        tk.tk_ras_tex(t, 0x1);
        tk.tk_dly_tsk(5);
        tk.tk_ras_tex(t, 0x4);
        tk.tk_dly_tsk(40);
    });
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], 0x5u);
}

TEST_F(TexTest, SelfRaiseDeliversImmediately) {
    std::vector<int> order;
    boot_and_run([&] {
        T_DTEX dt;
        dt.texhdr = [&](UINT) { order.push_back(1); };
        tk.tk_def_tex(TSK_SELF, dt);
        tk.tk_ras_tex(TSK_SELF, 0x1);
        order.push_back(2);
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(TexTest, NoNestedDelivery) {
    int depth = 0, max_depth = 0, runs = 0;
    boot_and_run([&] {
        T_DTEX dt;
        dt.texhdr = [&](UINT) {
            ++depth;
            ++runs;
            max_depth = std::max(max_depth, depth);
            // Raising from inside the handler must not recurse.
            tk.tk_ras_tex(TSK_SELF, 0x2);
            tk.tk_dly_tsk(1);  // service boundary inside the handler
            --depth;
        };
        tk.tk_def_tex(TSK_SELF, dt);
        tk.tk_ras_tex(TSK_SELF, 0x1);
        tk.tk_dly_tsk(5);  // post-handler boundary delivers the second one
    });
    EXPECT_EQ(max_depth, 1);
    EXPECT_EQ(runs, 2);
}

TEST_F(TexTest, RefTexReportsPendingAndMask) {
    boot_and_run([&] {
        ID t = spawn_task("t", 5, [&] {
            T_DTEX dt;
            dt.texhdr = [](UINT) {};
            tk.tk_def_tex(TSK_SELF, dt);
            tk.tk_dis_tex();
            tk.tk_slp_tsk(TMO_FEVR);  // released with E_DISWAI by the raise
            tk.tk_slp_tsk(TMO_FEVR);  // park again (exception stays pending)
        });
        tk.tk_dly_tsk(5);
        tk.tk_ras_tex(t, 0xA0);
        tk.tk_dly_tsk(5);
        T_RTEX r;
        ASSERT_EQ(tk.tk_ref_tex(t, &r), E_OK);
        EXPECT_EQ(r.pendtex, 0xA0u);
        EXPECT_EQ(r.texmsk, 0u);  // disabled
        EXPECT_EQ(tk.tk_ref_tex(t, nullptr), E_PAR);
    });
}

TEST_F(TexTest, EnaDisRequireHandlerAndTaskContext) {
    boot_and_run([&] {
        EXPECT_EQ(tk.tk_ena_tex(), E_OBJ);  // no handler defined yet
        EXPECT_EQ(tk.tk_dis_tex(), E_OBJ);
    });
    EXPECT_EQ(tk.tk_ena_tex(), E_CTX);  // outside task context
}

TEST_F(TexTest, PendingExceptionsClearedOnExit) {
    boot_and_run([&] {
        ID t = spawn_task("t", 5, [&] {
            T_DTEX dt;
            dt.texhdr = [](UINT) {};
            tk.tk_def_tex(TSK_SELF, dt);
            tk.tk_dis_tex();
            tk.tk_dly_tsk(10);
        });
        tk.tk_dly_tsk(5);
        tk.tk_ras_tex(t, 0xFF);
        tk.tk_dly_tsk(20);  // t exits with the exception still pending
        EXPECT_EQ(tk.tk_sta_tsk(t, 0), E_OK);
        tk.tk_dly_tsk(2);
        T_RTEX r;
        ASSERT_EQ(tk.tk_ref_tex(t, &r), E_OK);
        EXPECT_EQ(r.pendtex, 0u);  // not carried into the new instance
    });
}

}  // namespace
}  // namespace rtk::tkernel
