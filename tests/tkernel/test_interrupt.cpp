// Interrupt management tests: vector definition, delivery, masking,
// nesting by priority, delayed dispatching at kernel level.
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class IntTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(200)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }
};

TEST_F(IntTest, DefineAndTrigger) {
    int hits = 0;
    boot_and_run([&] {
        T_DINT d;
        d.inthdr = [&](void*) { ++hits; };
        EXPECT_EQ(tk.tk_def_int(3, d), E_OK);
        EXPECT_EQ(tk.tk_def_int(3, d), E_OBJ);  // already defined
        EXPECT_EQ(tk.trigger_interrupt(3), E_OK);
        EXPECT_EQ(tk.trigger_interrupt(99), E_NOEXS);
        tk.tk_dly_tsk(10);
    });
    EXPECT_EQ(hits, 1);
}

TEST_F(IntTest, HandlerReceivesVectorNumber) {
    std::uintptr_t got = 0;
    boot_and_run([&] {
        T_DINT d;
        d.inthdr = [&](void* exinf) { got = reinterpret_cast<std::uintptr_t>(exinf); };
        tk.tk_def_int(7, d);
        tk.trigger_interrupt(7);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(got, 7u);
}

TEST_F(IntTest, DisableMasksDelivery) {
    int hits = 0;
    boot_and_run([&] {
        T_DINT d;
        d.inthdr = [&](void*) { ++hits; };
        tk.tk_def_int(1, d);
        EXPECT_EQ(tk.disable_int(1), E_OK);
        tk.trigger_interrupt(1);
        tk.tk_dly_tsk(5);
        EXPECT_EQ(hits, 0);
        EXPECT_EQ(tk.enable_int(1), E_OK);
        tk.trigger_interrupt(1);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(hits, 1);
}

TEST_F(IntTest, UndefineRequiresInactive) {
    boot_and_run([&] {
        T_DINT d;
        d.inthdr = [](void*) {};
        tk.tk_def_int(2, d);
        EXPECT_EQ(tk.tk_undef_int(2), E_OK);
        EXPECT_EQ(tk.tk_undef_int(2), E_NOEXS);
        EXPECT_EQ(tk.trigger_interrupt(2), E_NOEXS);
    });
}

TEST_F(IntTest, HigherPriorityIrqNestsIntoLower) {
    std::vector<std::string> log;
    // IRQs come from the board side (a plain process), with the second
    // one guaranteed to land while handler 0 is still executing.
    k.spawn("board", [&] {
        sysc::wait(Time::ms(5));
        tk.trigger_interrupt(0);
        sysc::wait(Time::ms(1));  // handler 0 runs 2 ms
        tk.trigger_interrupt(1);
    });
    boot_and_run([&] {
        T_DINT lo;
        lo.intpri = 5;
        lo.inthdr = [&](void*) {
            log.push_back("lo_enter");
            tk.sim().SIM_Wait(Time::ms(2), sim::ExecContext::handler);
            log.push_back("lo_exit");
        };
        tk.tk_def_int(0, lo);
        T_DINT hi;
        hi.intpri = 1;
        hi.inthdr = [&](void*) { log.push_back("hi"); };
        tk.tk_def_int(1, hi);
        tk.tk_dly_tsk(20);
    });
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0], "lo_enter");
    EXPECT_EQ(log[1], "hi");
    EXPECT_EQ(log[2], "lo_exit");
}

TEST_F(IntTest, IsrWakesTaskViaDelayedDispatch) {
    Time isr_done, task_woke;
    boot_and_run([&] {
        T_CSEM cs;
        ID sem = tk.tk_cre_sem(cs);
        T_CTSK ct;
        ct.name = "hi";
        ct.itskpri = 1;
        ct.task = [&](INT, void*) {
            tk.tk_wai_sem(sem, 1, TMO_FEVR);
            task_woke = sysc::now();
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        T_DINT d;
        d.inthdr = [&](void*) {
            tk.tk_sig_sem(sem, 1);  // wakes hi, but dispatch is delayed
            tk.sim().SIM_Wait(Time::us(500), sim::ExecContext::handler);
            isr_done = sysc::now();
        };
        tk.tk_def_int(0, d);
        tk.tk_dly_tsk(5);
        tk.trigger_interrupt(0);
        tk.tk_dly_tsk(20);
    });
    EXPECT_GE(task_woke, isr_done);  // switch happened after handler return
    EXPECT_LE(task_woke - isr_done, Time::us(200));
}

TEST_F(IntTest, AttachInterruptLineDeliversEvents) {
    int hits = 0;
    sysc::Event irq("board.irq");
    tk.attach_interrupt_line(irq, 4);
    boot_and_run([&] {
        T_DINT d;
        d.inthdr = [&](void*) { ++hits; };
        tk.tk_def_int(4, d);
        tk.tk_slp_tsk(50);
    });
    // Fire the line from the testbench between runs.
    irq.notify();
    k.run_until(Time::ms(250));
    EXPECT_EQ(hits, 1);
}

TEST_F(IntTest, VectorStatisticsTracked) {
    boot_and_run([&] {
        T_DINT d;
        d.inthdr = [](void*) {};
        tk.tk_def_int(0, d);
        tk.trigger_interrupt(0);
        tk.tk_dly_tsk(3);
        tk.trigger_interrupt(0);
        tk.tk_dly_tsk(3);
    });
    const auto& vec = tk.interrupt_vectors().at(0);
    EXPECT_EQ(vec.deliveries, 2u);
}

TEST_F(IntTest, DefIntValidatesHandler) {
    boot_and_run([&] {
        T_DINT d;  // empty handler
        EXPECT_EQ(tk.tk_def_int(0, d), E_PAR);
    });
}

}  // namespace
}  // namespace rtk::tkernel
