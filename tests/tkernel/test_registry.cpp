// Registry: the dense id-indexed table behind every kernel object class.
// Pins slot placement (id N -> slot N-1), LIFO id recycling under
// create/delete churn, the E_LIMIT class cap on *live* objects (not
// lifetime creations), and ids() staying ascending and bounded by the
// high-water mark.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "tkernel/objects.hpp"

namespace rtk::tkernel {
namespace {

TEST(Registry, IdsStartAtOneAndAreDense) {
    Registry<Semaphore> reg;
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), 1);
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), 2);
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), 3);
    EXPECT_EQ(reg.size(), 3u);
    EXPECT_EQ(reg.ids(), (std::vector<ID>{1, 2, 3}));
}

TEST(Registry, FindIsBoundsCheckedAndErasedSlotsReadNull) {
    Registry<Semaphore> reg;
    const ID id = reg.add(std::make_unique<Semaphore>());
    EXPECT_NE(reg.find(id), nullptr);
    EXPECT_EQ(reg.find(id)->id, id);
    EXPECT_EQ(reg.find(0), nullptr);
    EXPECT_EQ(reg.find(-7), nullptr);
    EXPECT_EQ(reg.find(id + 100), nullptr);
    EXPECT_TRUE(reg.erase(id));
    EXPECT_EQ(reg.find(id), nullptr);   // slot exists but is empty
    EXPECT_FALSE(reg.erase(id));        // double delete reports failure
}

TEST(Registry, RecyclesIdsLifo) {
    Registry<Semaphore> reg;
    const ID a = reg.add(std::make_unique<Semaphore>());
    const ID b = reg.add(std::make_unique<Semaphore>());
    const ID c = reg.add(std::make_unique<Semaphore>());
    ASSERT_TRUE(reg.erase(b));
    ASSERT_TRUE(reg.erase(c));
    // Most recently freed comes back first...
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), c);
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), b);
    // ...and only once the free list is drained does the space extend.
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), c + 1);
    EXPECT_EQ(reg.find(a)->id, a);
}

TEST(Registry, ChurnStaysWithinTheHighWaterMark) {
    Registry<Semaphore> reg;
    // High-water mark: 8 simultaneously live objects.
    std::vector<ID> ids;
    for (int i = 0; i < 8; ++i) {
        ids.push_back(reg.add(std::make_unique<Semaphore>()));
    }
    // 100 delete+create cycles over a rotating victim: every recycled id
    // must come from the original dense range -- the table never grows.
    for (int i = 0; i < 100; ++i) {
        const std::size_t victim = static_cast<std::size_t>(i) % ids.size();
        ASSERT_TRUE(reg.erase(ids[victim]));
        const ID fresh = reg.add(std::make_unique<Semaphore>());
        EXPECT_GE(fresh, 1);
        EXPECT_LE(fresh, 8);
        ids[victim] = fresh;
    }
    EXPECT_EQ(reg.size(), 8u);
    const std::vector<ID> live = reg.ids();
    EXPECT_EQ(live.size(), 8u);
    EXPECT_EQ(std::set<ID>(live.begin(), live.end()),
              (std::set<ID>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Registry, ELimitCapsLiveObjectsNotLifetimeCreations) {
    Registry<Semaphore> reg;
    std::vector<ID> ids;
    for (int i = 0; i < max_objects_per_class; ++i) {
        const ID id = reg.add(std::make_unique<Semaphore>());
        ASSERT_GT(id, 0) << "class filled early at " << i;
        ids.push_back(id);
    }
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), E_LIMIT);
    // Deleting one frees exactly one slot, even at the cap.
    ASSERT_TRUE(reg.erase(ids.back()));
    const ID again = reg.add(std::make_unique<Semaphore>());
    EXPECT_EQ(again, ids.back());  // recycled, not extended
    EXPECT_EQ(reg.add(std::make_unique<Semaphore>()), E_LIMIT);
    EXPECT_EQ(reg.size(), static_cast<std::size_t>(max_objects_per_class));
}

}  // namespace
}  // namespace rtk::tkernel
