// Event flag service call tests.
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class FlagTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(200)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID spawn_task(const char* name, PRI pri, std::function<void()> fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = [fn = std::move(fn)](INT, void*) { fn(); };
        const ID tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        return tid;
    }
};

TEST_F(FlagTest, SetAndPollOrWait) {
    boot_and_run([&] {
        T_CFLG cf;
        cf.iflgptn = 0x3;
        ID flg = tk.tk_cre_flg(cf);
        UINT ptn = 0;
        EXPECT_EQ(tk.tk_wai_flg(flg, 0x1, TWF_ORW, &ptn, TMO_POL), E_OK);
        EXPECT_EQ(ptn, 0x3u);
        EXPECT_EQ(tk.tk_wai_flg(flg, 0x4, TWF_ORW, &ptn, TMO_POL), E_TMOUT);
    });
}

TEST_F(FlagTest, AndWaitRequiresAllBits) {
    boot_and_run([&] {
        T_CFLG cf;
        ID flg = tk.tk_cre_flg(cf);
        UINT ptn = 0;
        tk.tk_set_flg(flg, 0x5);
        EXPECT_EQ(tk.tk_wai_flg(flg, 0x7, TWF_ANDW, &ptn, TMO_POL), E_TMOUT);
        tk.tk_set_flg(flg, 0x2);
        EXPECT_EQ(tk.tk_wai_flg(flg, 0x7, TWF_ANDW, &ptn, TMO_POL), E_OK);
        EXPECT_EQ(ptn, 0x7u);
    });
}

TEST_F(FlagTest, SetWakesBlockedWaiter) {
    UINT got = 0;
    ER er = E_SYS;
    boot_and_run([&] {
        T_CFLG cf;
        ID flg = tk.tk_cre_flg(cf);
        spawn_task("w", 5, [&] { er = tk.tk_wai_flg(flg, 0x10, TWF_ORW, &got, TMO_FEVR); });
        tk.tk_dly_tsk(5);
        tk.tk_set_flg(flg, 0x10);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(er, E_OK);
    EXPECT_EQ(got, 0x10u);
}

TEST_F(FlagTest, ClrClearsWholePattern) {
    boot_and_run([&] {
        T_CFLG cf;
        ID flg = tk.tk_cre_flg(cf);
        UINT ptn = 0;
        tk.tk_set_flg(flg, 0xFF);
        EXPECT_EQ(tk.tk_wai_flg(flg, 0x1, TWF_ORW | TWF_CLR, &ptn, TMO_POL), E_OK);
        T_RFLG r;
        tk.tk_ref_flg(flg, &r);
        EXPECT_EQ(r.flgptn, 0u);  // TWF_CLR wiped everything
    });
}

TEST_F(FlagTest, BitClrClearsOnlyMatchedBits) {
    boot_and_run([&] {
        T_CFLG cf;
        ID flg = tk.tk_cre_flg(cf);
        UINT ptn = 0;
        tk.tk_set_flg(flg, 0xFF);
        EXPECT_EQ(tk.tk_wai_flg(flg, 0x0F, TWF_ANDW | TWF_BITCLR, &ptn, TMO_POL), E_OK);
        T_RFLG r;
        tk.tk_ref_flg(flg, &r);
        EXPECT_EQ(r.flgptn, 0xF0u);
    });
}

TEST_F(FlagTest, ClrFlgAndsPattern) {
    boot_and_run([&] {
        T_CFLG cf;
        cf.iflgptn = 0xFF;
        ID flg = tk.tk_cre_flg(cf);
        EXPECT_EQ(tk.tk_clr_flg(flg, 0x0F), E_OK);
        T_RFLG r;
        tk.tk_ref_flg(flg, &r);
        EXPECT_EQ(r.flgptn, 0x0Fu);
    });
}

TEST_F(FlagTest, MultipleWaitersWithDifferentPatterns) {
    std::vector<std::string> woke;
    boot_and_run([&] {
        T_CFLG cf;
        cf.flgatr = TA_TFIFO | TA_WMUL;
        ID flg = tk.tk_cre_flg(cf);
        UINT p1 = 0, p2 = 0;
        spawn_task("w1", 5, [&] {
            tk.tk_wai_flg(flg, 0x1, TWF_ORW, &p1, TMO_FEVR);
            woke.push_back("w1");
        });
        spawn_task("w2", 6, [&] {
            tk.tk_wai_flg(flg, 0x2, TWF_ORW, &p2, TMO_FEVR);
            woke.push_back("w2");
        });
        tk.tk_dly_tsk(5);
        tk.tk_set_flg(flg, 0x2);  // only w2's pattern
        tk.tk_dly_tsk(5);
        EXPECT_EQ(woke, (std::vector<std::string>{"w2"}));
        tk.tk_set_flg(flg, 0x1);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(woke, (std::vector<std::string>{"w2", "w1"}));
}

TEST_F(FlagTest, SingleWaitAttributeRejectsSecondWaiter) {
    ER second = E_OK;
    boot_and_run([&] {
        T_CFLG cf;
        cf.flgatr = TA_TFIFO | TA_WSGL;
        ID flg = tk.tk_cre_flg(cf);
        spawn_task("w1", 5, [&] {
            UINT p = 0;
            tk.tk_wai_flg(flg, 0x1, TWF_ORW, &p, TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        UINT p = 0;
        second = tk.tk_wai_flg(flg, 0x2, TWF_ORW, &p, 10);
        tk.tk_set_flg(flg, 0x1);
    });
    EXPECT_EQ(second, E_OBJ);
}

TEST_F(FlagTest, WaitValidatesParameters) {
    boot_and_run([&] {
        T_CFLG cf;
        ID flg = tk.tk_cre_flg(cf);
        UINT ptn = 0;
        EXPECT_EQ(tk.tk_wai_flg(flg, 0, TWF_ORW, &ptn, TMO_POL), E_PAR);
        EXPECT_EQ(tk.tk_wai_flg(flg, 0x1, TWF_ORW, nullptr, TMO_POL), E_PAR);
        EXPECT_EQ(tk.tk_wai_flg(999, 0x1, TWF_ORW, &ptn, TMO_POL), E_NOEXS);
    });
}

TEST_F(FlagTest, TimeoutWhileWaiting) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CFLG cf;
        ID flg = tk.tk_cre_flg(cf);
        UINT ptn = 0;
        er = tk.tk_wai_flg(flg, 0x1, TWF_ORW, &ptn, 10);
    });
    EXPECT_EQ(er, E_TMOUT);
}

TEST_F(FlagTest, DeleteReleasesWaiters) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CFLG cf;
        ID flg = tk.tk_cre_flg(cf);
        spawn_task("w", 5, [&] {
            UINT p = 0;
            er = tk.tk_wai_flg(flg, 0x1, TWF_ORW, &p, TMO_FEVR);
        });
        tk.tk_dly_tsk(5);
        tk.tk_del_flg(flg);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(er, E_DLT);
}

}  // namespace
}  // namespace rtk::tkernel
