// System management tests: tk_ref_ver, tk_ref_sys, dispatch disabling.
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class SysTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(200)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }
};

TEST_F(SysTest, RefVerIdentifiesTheKernel) {
    T_RVER v;
    EXPECT_EQ(tk.tk_ref_ver(&v), E_OK);
    EXPECT_NE(v.prid.find("RTK-Spec TRON"), std::string::npos);
    EXPECT_NE(v.spver.find("ITRON"), std::string::npos);
    EXPECT_EQ(tk.tk_ref_ver(nullptr), E_PAR);
}

TEST_F(SysTest, RefSysReportsRunningTask) {
    boot_and_run([&] {
        T_RSYS s;
        ASSERT_EQ(tk.tk_ref_sys(&s), E_OK);
        EXPECT_EQ(s.sysstat, TSS_TSK);
        EXPECT_EQ(s.runtskid, tk.tk_get_tid());
    });
}

TEST_F(SysTest, RefSysReportsDispatchDisabled) {
    boot_and_run([&] {
        EXPECT_EQ(tk.tk_dis_dsp(), E_OK);
        T_RSYS s;
        tk.tk_ref_sys(&s);
        EXPECT_EQ(s.sysstat, TSS_DDSP);
        EXPECT_EQ(tk.tk_ena_dsp(), E_OK);
        tk.tk_ref_sys(&s);
        EXPECT_EQ(s.sysstat, TSS_TSK);
    });
}

TEST_F(SysTest, RefSysReportsHandlerContext) {
    INT stat_in_handler = -1;
    boot_and_run([&] {
        T_CALM ca;
        ca.almhdr = [&](void*) {
            T_RSYS s;
            tk.tk_ref_sys(&s);
            stat_in_handler = s.sysstat;
        };
        ID alm = tk.tk_cre_alm(ca);
        tk.tk_sta_alm(alm, 5);
        tk.tk_dly_tsk(20);
    });
    EXPECT_EQ(stat_in_handler, TSS_INDP);
}

TEST_F(SysTest, DisDspFromHandlerIsContextError) {
    ER er = E_OK;
    boot_and_run([&] {
        T_CALM ca;
        ca.almhdr = [&](void*) { er = tk.tk_dis_dsp(); };
        ID alm = tk.tk_cre_alm(ca);
        tk.tk_sta_alm(alm, 5);
        tk.tk_dly_tsk(20);
    });
    EXPECT_EQ(er, E_CTX);
}

TEST_F(SysTest, DispatchDisableDefersHigherPriorityTask) {
    std::vector<std::string> order;
    boot_and_run([&] {
        T_CTSK ct;
        ct.name = "hi";
        ct.itskpri = 1;  // same priority as init; would normally wait anyway --
        ct.task = [&](INT, void*) { order.push_back("hi"); };
        ID hi = tk.tk_cre_tsk(ct);
        tk.tk_dis_dsp();
        tk.tk_sta_tsk(hi, 0);
        order.push_back("still_running");
        tk.tk_ena_dsp();
        tk.tk_dly_tsk(5);
    });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "still_running");
    EXPECT_EQ(order[1], "hi");
}

TEST_F(SysTest, ErrorStringsCoverCommonCodes) {
    EXPECT_STREQ(er_str(E_OK), "E_OK");
    EXPECT_STREQ(er_str(E_TMOUT), "E_TMOUT");
    EXPECT_STREQ(er_str(E_RLWAI), "E_RLWAI");
    EXPECT_STREQ(er_str(E_DLT), "E_DLT");
    EXPECT_STREQ(er_str(E_ILUSE), "E_ILUSE");
    EXPECT_STREQ(er_str(E_CTX), "E_CTX");
    EXPECT_STREQ(er_str(E_NOEXS), "E_NOEXS");
    EXPECT_STREQ(er_str(E_QOVR), "E_QOVR");
    EXPECT_STREQ(er_str(-999), "E_???");
}

TEST_F(SysTest, ServiceCallsConsumeServiceContextTime) {
    boot_and_run([&] {
        // Issue a bunch of cheap service calls and verify the init task's
        // token accumulated service-context CET.
        for (int i = 0; i < 10; ++i) {
            tk.tk_slp_tsk(TMO_POL);  // polls, never blocks, costs service ETM
        }
        TCB* me = tk.current_tcb();
        ASSERT_NE(me, nullptr);
        EXPECT_GT(me->thread->token().cet(sim::ExecContext::service_call),
                  Time::zero());
    });
}

}  // namespace
}  // namespace rtk::tkernel
