// Wait-queue edge cases the scenario fuzzer leans on, plus seed-pinned
// regressions for the kernel bugs the first fuzz campaigns surfaced
// (PR 4). Each regression names the generator seed that found it; the
// deterministic recipe below reproduces the same schedule without the
// generator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class WaitQueueEdgeTest : public ::testing::Test {
protected:
    sysc::Kernel k_;
    TKernel os_{k_};

    TKernel& tk() { return os_; }

    /// Create-and-start a task at `pri` running `body` once.
    ID task(const std::string& name, PRI pri, TaskEntry body) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = std::move(body);
        const ID id = tk().tk_cre_tsk(ct);
        tk().tk_sta_tsk(id, 0);
        return id;
    }

    void run_ms(std::uint64_t ms) {
        if (!powered_) {
            powered_ = true;
            os_.power_on();
        }
        k_.run_until(Time::ms(ms));
    }

private:
    bool powered_ = false;
};

// ---- TA_TPRI insertion ties: FIFO among equal priorities --------------------

TEST_F(WaitQueueEdgeTest, TpriInsertionTiesAreFifoAmongEquals) {
    std::vector<std::string> order;
    tk().set_user_main([this, &order] {
        T_CSEM cs;
        cs.sematr = TA_TPRI | TA_FIRST;
        const ID sem = tk().tk_cre_sem(cs);
        // Block four waiters: equal priority 5 for a/b/d, 3 for c. The
        // release order must be c (more urgent), then a, b, d FIFO.
        for (const char* name : {"a", "b", "c", "d"}) {
            const PRI pri = (name[0] == 'c') ? 3 : 5;
            task(name, pri, [this, sem, name, &order](INT, void*) {
                if (tk().tk_wai_sem(sem, 1, TMO_FEVR) == E_OK) {
                    order.push_back(name);
                }
            });
            // Let the new waiter reach its wait before the next starts
            // (they all outrank the init task, so they run immediately;
            // equal-priority ties would otherwise queue by start order
            // anyway -- the delay makes the arrival order explicit).
            tk().tk_dly_tsk(1);
        }
        for (int i = 0; i < 4; ++i) {
            tk().tk_sig_sem(sem, 1);
            tk().tk_dly_tsk(1);
        }
    });
    run_ms(30);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "c");
    EXPECT_EQ(order[1], "a");
    EXPECT_EQ(order[2], "b");
    EXPECT_EQ(order[3], "d");
}

// ---- re-queue after tk_chg_pri while waiting --------------------------------

TEST_F(WaitQueueEdgeTest, ChgPriRequeuesAWaitingTask) {
    std::vector<std::string> order;
    tk().set_user_main([this, &order] {
        T_CSEM cs;
        cs.sematr = TA_TPRI | TA_FIRST;
        const ID sem = tk().tk_cre_sem(cs);
        const ID a = task("a", 5, [this, sem, &order](INT, void*) {
            if (tk().tk_wai_sem(sem, 1, TMO_FEVR) == E_OK) {
                order.push_back("a");
            }
        });
        tk().tk_dly_tsk(1);
        task("b", 6, [this, sem, &order](INT, void*) {
            if (tk().tk_wai_sem(sem, 1, TMO_FEVR) == E_OK) {
                order.push_back("b");
            }
        });
        tk().tk_dly_tsk(1);
        // Queue is [a(5), b(6)]. Demote a below b: the TA_TPRI queue must
        // re-sort to [b, a] -- the head is recomputed, not frozen.
        tk().tk_chg_pri(a, 9);
        T_RSEM ref;
        tk().tk_ref_sem(sem, &ref);
        // b is now the first waiter.
        tk().tk_sig_sem(sem, 1);
        tk().tk_dly_tsk(1);
        tk().tk_sig_sem(sem, 1);
    });
    run_ms(30);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "b");
    EXPECT_EQ(order[1], "a");
}

// ---- timeout racing a release on the same tick ------------------------------

TEST_F(WaitQueueEdgeTest, SameTickSignalAndTimeoutResolveToTimeoutNotLoss) {
    // The cyclic handler's signal and the waiter's timeout land on the
    // same tick. Model semantics are deterministic: task timeouts fire
    // inline in the timer handler, while the cyclic signal is a deferred
    // handler activation -- so the wait ends E_TMOUT regardless of which
    // timer entry was armed first, and the signal must then land in the
    // count (conserved, not lost on the departed waiter).
    ER got = E_SYS;
    INT count_after = -1;
    tk().set_user_main([this, &got, &count_after] {
        T_CSEM cs;
        const ID sem = tk().tk_cre_sem(cs);
        T_CCYC cc;
        cc.cycatr = TA_STA;
        cc.cyctim = 5;  // armed before the waiter blocks
        cc.cychdr = [this, sem](void*) { tk().tk_sig_sem(sem, 1); };
        const ID cyc = tk().tk_cre_cyc(cc);
        task("w", 4, [this, sem, &got](INT, void*) {
            got = tk().tk_wai_sem(sem, 1, 5);  // expires on the same tick
        });
        tk().tk_dly_tsk(7);  // past the race tick, before the next firing
        tk().tk_stp_cyc(cyc);
        T_RSEM ref;
        tk().tk_ref_sem(sem, &ref);
        count_after = ref.semcnt;
    });
    run_ms(20);
    EXPECT_EQ(got, E_TMOUT);
    EXPECT_EQ(count_after, 1);
}

TEST_F(WaitQueueEdgeTest, TimeoutArmedBeforeReleaseWinsTheTick) {
    // Mirror image: the waiter blocks first, the alarm that would release
    // it is armed afterwards for the same tick -- the timeout's earlier
    // timer-queue entry fires first and the wait ends E_TMOUT.
    ER got = E_SYS;
    tk().set_user_main([this, &got] {
        T_CSEM cs;
        const ID sem = tk().tk_cre_sem(cs);
        task("w", 4, [this, sem, &got](INT, void*) {
            got = tk().tk_wai_sem(sem, 1, 5);
        });
        tk().tk_dly_tsk(1);  // let w block (w outranks init anyway)
        T_CALM ca;
        ca.almhdr = [this, sem](void*) { tk().tk_sig_sem(sem, 1); };
        const ID alm = tk().tk_cre_alm(ca);
        tk().tk_sta_alm(alm, 4);  // same absolute tick as w's timeout
    });
    run_ms(20);
    EXPECT_EQ(got, E_TMOUT);
}

// ---- regressions: lost wakeups on involuntary head removal ------------------
// Found by fuzz seed 18 (TA_TFIFO semaphore, campaign base_seed 1).

TEST_F(WaitQueueEdgeTest, TimeoutOfUnsatisfiableHeadServesNextWaiter) {
    ER got_b = E_SYS;
    tk().set_user_main([this, &got_b] {
        T_CSEM cs;
        const ID sem = tk().tk_cre_sem(cs);
        task("a", 4, [this, sem](INT, void*) {
            tk().tk_wai_sem(sem, 2, 3);  // head, needs 2, times out
        });
        tk().tk_dly_tsk(1);
        task("b", 5, [this, sem, &got_b](INT, void*) {
            got_b = tk().tk_wai_sem(sem, 1, TMO_FEVR);  // queued behind a
        });
        tk().tk_dly_tsk(1);
        // One unit available: head a cannot take it, b must not either
        // (TA_FIRST order). Once a times out, b becomes the head and the
        // stranded unit must be handed over.
        tk().tk_sig_sem(sem, 1);
    });
    run_ms(20);
    EXPECT_EQ(got_b, E_OK);
}

TEST_F(WaitQueueEdgeTest, RelWaiOfUnsatisfiableHeadServesNextWaiter) {
    ER got_b = E_SYS;
    tk().set_user_main([this, &got_b] {
        T_CSEM cs;
        const ID sem = tk().tk_cre_sem(cs);
        const ID a = task("a", 4, [this, sem](INT, void*) {
            tk().tk_wai_sem(sem, 2, TMO_FEVR);
        });
        tk().tk_dly_tsk(1);
        task("b", 5, [this, sem, &got_b](INT, void*) {
            got_b = tk().tk_wai_sem(sem, 1, TMO_FEVR);
        });
        tk().tk_dly_tsk(1);
        tk().tk_sig_sem(sem, 1);
        tk().tk_rel_wai(a);  // forcibly remove the head
    });
    run_ms(20);
    EXPECT_EQ(got_b, E_OK);
}

TEST_F(WaitQueueEdgeTest, TerminatingTheHeadServesNextMsgbufSender) {
    // Found by fuzz seed 15 (message buffer): removing a blocked sender
    // must pump the freed capacity to the senders behind it.
    INT sent_b = E_SYS;
    tk().set_user_main([this, &sent_b] {
        T_CMBF cm;
        cm.bufsz = 8;  // fits one 4-byte message (+4 header)
        cm.maxmsz = 8;
        const ID mbf = tk().tk_cre_mbf(cm);
        const char big[8] = "1234567";
        const char small[4] = "xyz";
        // Fill the buffer so both senders block.
        tk().tk_snd_mbf(mbf, small, 4, TMO_POL);
        const ID a = task("a", 4, [this, mbf, &big](INT, void*) {
            tk().tk_snd_mbf(mbf, big, 8, TMO_FEVR);  // head: never fits 8+4>8-8
        });
        tk().tk_dly_tsk(1);
        task("b", 5, [this, mbf, &small, &sent_b](INT, void*) {
            sent_b = tk().tk_snd_mbf(mbf, small, 3, TMO_FEVR);
        });
        tk().tk_dly_tsk(1);
        // Drain the buffered message: capacity frees, but the head still
        // does not fit. Terminating it must let b's small send through.
        char buf[8];
        tk().tk_rcv_mbf(mbf, buf, TMO_POL);
        tk().tk_ter_tsk(a);
    });
    run_ms(20);
    EXPECT_EQ(sent_b, E_OK);
}

// ---- regression: TA_TPRI newcomer that would lead the queue -----------------
// Found by fuzz seed 51 (campaign base_seed 1, round-robin leg).

TEST_F(WaitQueueEdgeTest, TpriNewcomerAheadOfUnsatisfiableHeadIsServed) {
    ER got_h = E_SYS;
    tk().set_user_main([this, &got_h] {
        T_CSEM cs;
        cs.sematr = TA_TPRI | TA_FIRST;
        cs.isemcnt = 1;
        cs.maxsem = 2;
        const ID sem = tk().tk_cre_sem(cs);
        task("low", 9, [this, sem](INT, void*) {
            tk().tk_wai_sem(sem, 2, TMO_FEVR);  // blocks: only 1 available
        });
        tk().tk_dly_tsk(1);
        task("high", 2, [this, sem, &got_h](INT, void*) {
            // Would head the TA_TPRI queue, and one unit is available:
            // must be served immediately, not strand behind `low`.
            got_h = tk().tk_wai_sem(sem, 1, TMO_POL);
        });
    });
    run_ms(20);
    EXPECT_EQ(got_h, E_OK);
}

// ---- regression: TA_CNT allocates in allocatable order ----------------------
// Found by fuzz seed 23 (campaign base_seed 1).

TEST_F(WaitQueueEdgeTest, TaCntServesAFittingNewcomerDespiteWaiters) {
    ER got_b = E_SYS;
    tk().set_user_main([this, &got_b] {
        T_CSEM cs;
        cs.sematr = TA_TFIFO | TA_CNT;
        cs.isemcnt = 1;
        cs.maxsem = 4;
        const ID sem = tk().tk_cre_sem(cs);
        task("a", 4, [this, sem](INT, void*) {
            tk().tk_wai_sem(sem, 3, TMO_FEVR);  // needs more than available
        });
        tk().tk_dly_tsk(1);
        task("b", 5, [this, sem, &got_b](INT, void*) {
            got_b = tk().tk_wai_sem(sem, 1, TMO_POL);  // fits: TA_CNT serves it
        });
    });
    run_ms(20);
    EXPECT_EQ(got_b, E_OK);
}

// ---- regression: priority deflation repositions a queued owner --------------
// Found by fuzz seed 6 (campaign base_seed 1, round-robin leg).

TEST_F(WaitQueueEdgeTest, InheritanceDeflationRepositionsOwnerInItsWaitQueue) {
    tk().set_user_main([this] {
        T_CMTX cm;
        cm.mtxatr = TA_INHERIT;
        const ID mtx = tk().tk_cre_mtx(cm);
        T_CSEM cs;
        cs.sematr = TA_TPRI | TA_FIRST;
        const ID sem = tk().tk_cre_sem(cs);
        // owner (base 10) locks the mutex, then blocks on the semaphore.
        const ID owner = task("owner", 10, [this, mtx, sem](INT, void*) {
            tk().tk_loc_mtx(mtx, TMO_FEVR);
            tk().tk_wai_sem(sem, 1, TMO_FEVR);
            tk().tk_unl_mtx(mtx);
        });
        tk().tk_dly_tsk(1);
        // A competing semaphore waiter at priority 5.
        task("peer", 5, [this, sem](INT, void*) {
            tk().tk_wai_sem(sem, 1, TMO_FEVR);
        });
        tk().tk_dly_tsk(1);
        // Booster (pri 2) waits on the mutex with a timeout: the owner is
        // boosted to 2 and re-sorted ahead of peer in the TA_TPRI queue.
        task("booster", 2, [this, mtx](INT, void*) {
            tk().tk_loc_mtx(mtx, 3);
        });
        tk().tk_dly_tsk(1);
        T_RSEM ref;
        tk().tk_ref_sem(sem, &ref);
        TCB* owner_tcb = tk().find_task(owner);
        ASSERT_NE(owner_tcb, nullptr);
        EXPECT_EQ(ref.wtsk, owner) << "boost did not reposition the owner";
        EXPECT_EQ(owner_tcb->thread->priority(), 2);
        // The booster times out at +3ms: the owner deflates back to 10
        // and MUST be re-sorted behind peer -- the seed-6 violation was
        // exactly this stale position.
        tk().tk_dly_tsk(6);
        tk().tk_ref_sem(sem, &ref);
        EXPECT_EQ(owner_tcb->thread->priority(), 10);
        EXPECT_NE(ref.wtsk, owner) << "deflated owner still heads the queue";
        tk().tk_sig_sem(sem, 2);  // release both; owner unlocks and exits
    });
    run_ms(30);
}

// ---- regression: kill of a task parked at the service-exit boundary ---------
// Found by the very first fuzz campaign: every seed with ter_tsk crashed
// with std::terminate (CoroutineKilled through a noexcept destructor).

TEST_F(WaitQueueEdgeTest, TerminateTaskParkedAtServiceBoundaryPreemption) {
    bool high_ran = false;
    ID low_id = 0;
    tk().set_user_main([this, &high_ran, &low_id] {
        T_CSEM cs;
        const ID sem = tk().tk_cre_sem(cs);
        // high blocks on the semaphore first.
        const ID low = task("low", 9, [this, sem](INT, void*) {
            for (;;) {
                // Releasing high preempts low exactly at this service
                // call's exit boundary -- low parks inside the
                // ServiceSection destructor's preemption check.
                tk().tk_sig_sem(sem, 1);
            }
        });
        low_id = low;
        task("high", 2, [this, sem, low, &high_ran](INT, void*) {
            tk().tk_wai_sem(sem, 1, TMO_FEVR);
            // low is READY, parked at its service boundary. Killing it
            // must unwind cleanly, not std::terminate the process.
            tk().tk_ter_tsk(low);
            high_ran = true;
        });
    });
    run_ms(20);
    EXPECT_TRUE(high_ran);
    TCB* low_tcb = tk().find_task(low_id);
    ASSERT_NE(low_tcb, nullptr);
    EXPECT_EQ(low_tcb->thread->state(), sim::ThreadState::dormant);
}

}  // namespace
}  // namespace rtk::tkernel
