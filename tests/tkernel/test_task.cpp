// Task management service call tests (tk_cre_tsk .. tk_ref_tsk).
#include <gtest/gtest.h>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

class TaskTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    /// Run `body` inside the init task after boot.
    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(100)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }

    ID make_task(const char* name, PRI pri, TaskEntry fn) {
        T_CTSK ct;
        ct.name = name;
        ct.itskpri = pri;
        ct.task = std::move(fn);
        return tk.tk_cre_tsk(ct);
    }
};

TEST_F(TaskTest, BootRunsUserMainInInitTask) {
    ID seen_tid = -1;
    boot_and_run([&] { seen_tid = tk.tk_get_tid(); });
    EXPECT_TRUE(tk.booted());
    EXPECT_GT(seen_tid, 0);
}

TEST_F(TaskTest, CreateValidatesParameters) {
    boot_and_run([&] {
        T_CTSK ct;
        ct.task = nullptr;
        EXPECT_EQ(tk.tk_cre_tsk(ct), E_PAR);
        ct.task = [](INT, void*) {};
        ct.itskpri = 0;
        EXPECT_EQ(tk.tk_cre_tsk(ct), E_PAR);
        ct.itskpri = max_priority + 1;
        EXPECT_EQ(tk.tk_cre_tsk(ct), E_PAR);
    });
}

TEST_F(TaskTest, StartPassesStartCodeAndExinf) {
    INT got_stacd = -1;
    void* got_exinf = nullptr;
    int marker = 42;
    boot_and_run([&] {
        T_CTSK ct;
        ct.name = "t";
        ct.itskpri = 5;
        ct.exinf = &marker;
        ct.task = [&](INT stacd, void* exinf) {
            got_stacd = stacd;
            got_exinf = exinf;
        };
        ID tid = tk.tk_cre_tsk(ct);
        EXPECT_EQ(tk.tk_sta_tsk(tid, 1234), E_OK);
    });
    EXPECT_EQ(got_stacd, 1234);
    EXPECT_EQ(got_exinf, &marker);
}

TEST_F(TaskTest, StartErrors) {
    boot_and_run([&] {
        EXPECT_EQ(tk.tk_sta_tsk(9999, 0), E_NOEXS);
        ID tid = make_task("t", 5, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        EXPECT_EQ(tk.tk_sta_tsk(tid, 0), E_OK);
        EXPECT_EQ(tk.tk_sta_tsk(tid, 0), E_OBJ);  // not dormant
    });
}

TEST_F(TaskTest, SleepWakeup) {
    std::vector<int> log;
    boot_and_run([&] {
        ID tid = make_task("sleeper", 5, [&](INT, void*) {
            log.push_back(1);
            EXPECT_EQ(tk.tk_slp_tsk(TMO_FEVR), E_OK);
            log.push_back(2);
        });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(10);
        log.push_back(3);
        EXPECT_EQ(tk.tk_wup_tsk(tid), E_OK);
    });
    EXPECT_EQ(log, (std::vector<int>{1, 3, 2}));
}

TEST_F(TaskTest, SleepTimeout) {
    ER er = E_OK;
    Time woke;
    boot_and_run([&] {
        ID tid = make_task("sleeper", 5, [&](INT, void*) {
            er = tk.tk_slp_tsk(25);
            woke = sysc::now();
        });
        tk.tk_sta_tsk(tid, 0);
    });
    EXPECT_EQ(er, E_TMOUT);
    EXPECT_GE(woke, Time::ms(25));
    EXPECT_LE(woke, Time::ms(27));
}

TEST_F(TaskTest, QueuedWakeupsPreventSleep) {
    int slept = 0;
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) {
            tk.tk_slp_tsk(TMO_FEVR);  // consumed by queued wakeup
            ++slept;
        });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(1);  // let t reach its sleep? no: wup first
    });
    // Re-run with wakeup-before-sleep explicitly:
    EXPECT_GE(slept, 0);  // base case sanity
}

TEST_F(TaskTest, WakeupBeforeSleepIsQueued) {
    bool blocked = false;
    boot_and_run([&] {
        ID tid = make_task("t", 10, [&](INT, void*) {
            tk.tk_dly_tsk(5);  // give init time to queue the wakeup
            const ER er = tk.tk_slp_tsk(TMO_POL);  // succeeds via queued count
            blocked = (er != E_OK);
        });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_wup_tsk(tid);
    });
    EXPECT_FALSE(blocked);
}

TEST_F(TaskTest, CanWupReturnsAndClearsCount) {
    boot_and_run([&] {
        ID tid = make_task("t", 10, [&](INT, void*) { tk.tk_dly_tsk(50); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(1);
        tk.tk_wup_tsk(tid);
        tk.tk_wup_tsk(tid);
        tk.tk_wup_tsk(tid);
        EXPECT_EQ(tk.tk_can_wup(tid), 3);
        EXPECT_EQ(tk.tk_can_wup(tid), 0);
    });
}

TEST_F(TaskTest, DelayIsAccurate) {
    Time before, after;
    boot_and_run([&] {
        before = sysc::now();
        EXPECT_EQ(tk.tk_dly_tsk(20), E_OK);
        after = sysc::now();
    });
    EXPECT_GE(after - before, Time::ms(20));
    EXPECT_LE(after - before, Time::ms(22));
}

TEST_F(TaskTest, RelWaiReleasesWithError) {
    ER er = E_OK;
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) { er = tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_rel_wai(tid), E_OK);
        EXPECT_EQ(tk.tk_rel_wai(tid), E_OBJ);  // no longer waiting
    });
    EXPECT_EQ(er, E_RLWAI);
}

TEST_F(TaskTest, RelWaiCancelsDelay) {
    ER er = E_OK;
    Time woke;
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) {
            er = tk.tk_dly_tsk(50);
            woke = sysc::now();
        });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(5);
        tk.tk_rel_wai(tid);
    });
    EXPECT_EQ(er, E_RLWAI);
    EXPECT_LT(woke, Time::ms(20));
}

TEST_F(TaskTest, TerminateReleasesWaitAndAllowsRestart) {
    int runs = 0;
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) {
            ++runs;
            tk.tk_slp_tsk(TMO_FEVR);
        });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(5);
        EXPECT_EQ(tk.tk_ter_tsk(tid), E_OK);
        EXPECT_EQ(tk.tk_ter_tsk(tid), E_OBJ);  // already dormant
        EXPECT_EQ(tk.tk_sta_tsk(tid, 0), E_OK);
        tk.tk_dly_tsk(5);
    });
    EXPECT_EQ(runs, 2);
}

TEST_F(TaskTest, ExdTskDeletesAfterExit) {
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) { tk.tk_exd_tsk(); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(5);  // deferred deletion happens on a tick
        T_RTSK r;
        EXPECT_EQ(tk.tk_ref_tsk(tid, &r), E_NOEXS);
    });
}

TEST_F(TaskTest, DeleteRequiresDormant) {
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        EXPECT_EQ(tk.tk_del_tsk(tid), E_OK);  // dormant: ok
        ID tid2 = make_task("t2", 5, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_sta_tsk(tid2, 0);
        tk.tk_dly_tsk(2);
        EXPECT_EQ(tk.tk_del_tsk(tid2), E_OBJ);
    });
}

TEST_F(TaskTest, ChangePriorityRepositionsAndReports) {
    boot_and_run([&] {
        ID tid = make_task("t", 20, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(2);
        EXPECT_EQ(tk.tk_chg_pri(tid, 7), E_OK);
        T_RTSK r;
        ASSERT_EQ(tk.tk_ref_tsk(tid, &r), E_OK);
        EXPECT_EQ(r.tskpri, 7);
        EXPECT_EQ(r.tskbpri, 7);
        // TPRI_INI (0) restores the initial priority.
        EXPECT_EQ(tk.tk_chg_pri(tid, 0), E_OK);
        ASSERT_EQ(tk.tk_ref_tsk(tid, &r), E_OK);
        EXPECT_EQ(r.tskpri, 20);
        EXPECT_EQ(tk.tk_chg_pri(tid, max_priority + 1), E_PAR);
    });
}

TEST_F(TaskTest, StartRestoresInitialPriority) {
    boot_and_run([&] {
        ID tid = make_task("t", 20, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(2);
        tk.tk_chg_pri(tid, 3);
        tk.tk_ter_tsk(tid);
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(2);
        T_RTSK r;
        ASSERT_EQ(tk.tk_ref_tsk(tid, &r), E_OK);
        EXPECT_EQ(r.tskpri, 20);
    });
}

TEST_F(TaskTest, SuspendResume) {
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(2);
        EXPECT_EQ(tk.tk_sus_tsk(tid), E_OK);
        T_RTSK r;
        tk.tk_ref_tsk(tid, &r);
        EXPECT_EQ(r.tskstat, TTS_WAS);
        EXPECT_EQ(r.suscnt, 1);
        EXPECT_EQ(tk.tk_rsm_tsk(tid), E_OK);
        tk.tk_ref_tsk(tid, &r);
        EXPECT_EQ(r.tskstat, TTS_WAI);
        EXPECT_EQ(tk.tk_rsm_tsk(tid), E_OBJ);
    });
}

TEST_F(TaskTest, ForcedResumeClearsAllSuspensions) {
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(2);
        tk.tk_sus_tsk(tid);
        tk.tk_sus_tsk(tid);
        tk.tk_sus_tsk(tid);
        EXPECT_EQ(tk.tk_frsm_tsk(tid), E_OK);
        T_RTSK r;
        tk.tk_ref_tsk(tid, &r);
        EXPECT_EQ(r.suscnt, 0);
    });
}

TEST_F(TaskTest, RefTskReportsWaitFactor) {
    boot_and_run([&] {
        ID tid = make_task("t", 5, [&](INT, void*) { tk.tk_slp_tsk(TMO_FEVR); });
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(2);
        T_RTSK r;
        ASSERT_EQ(tk.tk_ref_tsk(tid, &r), E_OK);
        EXPECT_EQ(r.tskstat, TTS_WAI);
        EXPECT_EQ(r.tskwait, TTW_SLP);
        EXPECT_EQ(tk.tk_ref_tsk(tid, nullptr), E_PAR);
        EXPECT_EQ(tk.tk_ref_tsk(424242, &r), E_NOEXS);
    });
}

TEST_F(TaskTest, GetTidOutsideTaskContextIsZero) {
    EXPECT_EQ(tk.tk_get_tid(), 0);
}

TEST_F(TaskTest, SelfReferenceViaTskSelf) {
    boot_and_run([&] {
        T_RTSK r;
        EXPECT_EQ(tk.tk_ref_tsk(TSK_SELF, &r), E_OK);
        EXPECT_EQ(r.tskstat, TTS_RUN);
        EXPECT_EQ(tk.tk_ter_tsk(TSK_SELF), E_OBJ);   // cannot terminate self
        EXPECT_EQ(tk.tk_sus_tsk(TSK_SELF), E_OBJ);   // cannot suspend self
    });
}

TEST_F(TaskTest, PriorityOrderGovernsExecution) {
    std::vector<std::string> order;
    boot_and_run([&] {
        for (PRI p : {30, 10, 20}) {
            T_CTSK ct;
            ct.name = "p" + std::to_string(p);
            ct.itskpri = p;
            ct.task = [&order, p, this](INT, void*) {
                tk.sim().SIM_WaitUnits(10, sim::ExecContext::task);
                order.push_back("p" + std::to_string(p));
            };
            tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        }
        tk.tk_dly_tsk(10);
    });
    EXPECT_EQ(order, (std::vector<std::string>{"p10", "p20", "p30"}));
}

}  // namespace
}  // namespace rtk::tkernel
