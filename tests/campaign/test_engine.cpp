// The campaign model and engine, in-process: manifest round-trips, job
// ordering, record determinism, round bookkeeping and the merged report.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"

namespace fs = std::filesystem;
using namespace rtk;
using namespace rtk::harness;

namespace {

std::string fresh_dir(const std::string& name) {
    const std::string dir = "campaign_engine_tests/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    fs::remove_all(dir);  // init_campaign wants to create it itself
    return dir;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
}

campaign::Manifest tiny_fuzz_manifest() {
    campaign::Manifest m;
    m.name = "engine-test";
    m.kind = campaign::Kind::fuzz;
    m.base_seed = 660001;  // disjoint from the fuzz-smoke/bench blocks
    m.seeds = 3;
    m.both_policies = true;
    m.claim_batch = 2;
    m.flush_every = 2;
    return m;
}

}  // namespace

TEST(Manifest, RoundTripsThroughJson) {
    campaign::Manifest m;
    m.name = "rt";
    m.kind = campaign::Kind::fault;
    m.base_seed = 42;
    m.corpus = 5;
    m.injections_per_workload = 7;
    m.delta_budget = 123456;
    m.claim_batch = 3;
    m.flush_every = 9;

    campaign::Manifest back;
    std::string error;
    ASSERT_TRUE(campaign::Manifest::from_json(m.to_json(), back, &error))
        << error;
    EXPECT_EQ(back.to_json().dump(-1), m.to_json().dump(-1));
    EXPECT_EQ(back.total_jobs(), 35u);

    campaign::Manifest bad;
    EXPECT_FALSE(
        campaign::Manifest::from_json(api::Json::object(), bad, &error));
}

TEST(Jobs, FuzzOrderingMatchesRunFuzzCampaign) {
    campaign::Manifest m = tiny_fuzz_manifest();
    const std::vector<campaign::Job> jobs = campaign::make_jobs(m);
    ASSERT_EQ(jobs.size(), 6u);
    // Per seed: priority-preemptive leg first, then round-robin.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].id, i);
        EXPECT_EQ(jobs[i].seed, m.base_seed + i / 2);
        EXPECT_EQ(jobs[i].round_robin, i % 2 == 1);
    }
}

TEST(Jobs, FaultGridCoversCorpusTimesInjections) {
    campaign::Manifest m;
    m.kind = campaign::Kind::fault;
    m.corpus = 3;
    m.injections_per_workload = 4;
    const std::vector<campaign::Job> jobs = campaign::make_jobs(m);
    ASSERT_EQ(jobs.size(), 12u);
    EXPECT_EQ(jobs[5].workload, 1u);
    EXPECT_EQ(jobs[5].injection, 1u);
    EXPECT_EQ(jobs[11].workload, 2u);
    EXPECT_EQ(jobs[11].injection, 3u);
}

TEST(Campaign, InitPersistsManifestAndJobs) {
    const std::string dir = fresh_dir("init");
    campaign::Manifest m = tiny_fuzz_manifest();
    std::string error;
    ASSERT_TRUE(campaign::init_campaign(dir, m, &error)) << error;
    // Submitting twice is an error (the manifest is immutable).
    EXPECT_FALSE(campaign::init_campaign(dir, m, &error));

    campaign::Manifest loaded;
    ASSERT_TRUE(campaign::load_manifest(dir, loaded, &error)) << error;
    EXPECT_EQ(loaded.to_json().dump(-1), m.to_json().dump(-1));

    std::vector<campaign::Job> jobs;
    ASSERT_TRUE(campaign::load_jobs(dir, jobs, &error)) << error;
    EXPECT_EQ(jobs.size(), m.total_jobs());
}

TEST(Campaign, RunJobIsDeterministic) {
    campaign::Manifest m = tiny_fuzz_manifest();
    const std::vector<campaign::Job> jobs = campaign::make_jobs(m);
    campaign::BaselineCache cache;
    const std::string a = campaign::run_job(m, jobs[1], cache).dump(-1);
    const std::string b = campaign::run_job(m, jobs[1], cache).dump(-1);
    EXPECT_EQ(a, b);
    // Records carry no wall-clock or host fields.
    EXPECT_EQ(a.find("seconds"), std::string::npos);
    EXPECT_EQ(a.find("wall"), std::string::npos);
}

TEST(Campaign, FaultRunJobSkipsDeterministically) {
    campaign::Manifest m;
    m.kind = campaign::Kind::fault;
    m.base_seed = 660101;
    m.corpus = 1;
    m.injections_per_workload = 6;
    const std::vector<campaign::Job> jobs = campaign::make_jobs(m);
    campaign::BaselineCache cache;
    // Whatever each job yields -- a result or a skip -- it must be the
    // same bytes on every execution (that is what makes resume safe).
    for (const campaign::Job& job : jobs) {
        campaign::BaselineCache fresh;
        EXPECT_EQ(campaign::run_job(m, job, cache).dump(-1),
                  campaign::run_job(m, job, fresh).dump(-1));
    }
}

TEST(Engine, InProcessRunCompletesAndMerges) {
    const std::string dir = fresh_dir("inproc");
    campaign::Manifest m = tiny_fuzz_manifest();
    std::string error;
    ASSERT_TRUE(campaign::init_campaign(dir, m, &error)) << error;

    campaign::EngineOptions opts;
    opts.shards = 1;
    opts.in_process = true;
    const campaign::EngineResult res = campaign::run_campaign(dir, opts);
    EXPECT_TRUE(res.complete) << res.error;
    EXPECT_EQ(res.done_jobs, m.total_jobs());
    EXPECT_EQ(res.shard_failures, 0u);

    bool complete = false;
    ASSERT_TRUE(campaign::merge_campaign(dir, "", &error, &complete)) << error;
    EXPECT_TRUE(complete);

    api::Json doc;
    ASSERT_TRUE(api::Json::parse(slurp(campaign::report_path(dir)), doc,
                                 &error))
        << error;
    EXPECT_EQ(doc.at("rtk_campaign_report").as_u64(), 1u);
    EXPECT_EQ(doc.at("campaign").at("jobs").as_u64(), m.total_jobs());
    EXPECT_EQ(doc.at("campaign").at("completed").as_u64(), m.total_jobs());
    EXPECT_TRUE(doc.at("campaign").at("complete").as_bool());

    const campaign::CampaignStatus st = campaign::query_status(dir);
    EXPECT_TRUE(st.ok) << st.error;
    EXPECT_EQ(st.done_jobs, m.total_jobs());
    EXPECT_EQ(st.skipped_lines, 0u);

    // Resuming a complete campaign is a no-op that stays complete.
    const campaign::EngineResult again = campaign::run_campaign(dir, opts);
    EXPECT_TRUE(again.complete);
    EXPECT_EQ(again.rounds, 0u);
}

TEST(Engine, ShardCountDoesNotChangeReportBytes) {
    const std::string dir1 = fresh_dir("det1");
    const std::string dir3 = fresh_dir("det3");
    campaign::Manifest m = tiny_fuzz_manifest();
    std::string error;
    ASSERT_TRUE(campaign::init_campaign(dir1, m, &error)) << error;
    ASSERT_TRUE(campaign::init_campaign(dir3, m, &error)) << error;

    campaign::EngineOptions one;
    one.shards = 1;
    one.in_process = true;
    campaign::EngineOptions three;
    three.shards = 3;
    three.in_process = true;
    ASSERT_TRUE(campaign::run_campaign(dir1, one).complete);
    ASSERT_TRUE(campaign::run_campaign(dir3, three).complete);

    ASSERT_TRUE(campaign::merge_campaign(dir1, "", &error)) << error;
    ASSERT_TRUE(campaign::merge_campaign(dir3, "", &error)) << error;
    const std::string rep1 = slurp(campaign::report_path(dir1));
    const std::string rep3 = slurp(campaign::report_path(dir3));
    ASSERT_FALSE(rep1.empty());
    EXPECT_EQ(rep1, rep3);
}

TEST(Engine, PrepareRoundListsOnlyPendingJobs) {
    const std::string dir = fresh_dir("rounds");
    campaign::Manifest m = tiny_fuzz_manifest();
    std::string error;
    ASSERT_TRUE(campaign::init_campaign(dir, m, &error)) << error;

    campaign::Round r0;
    ASSERT_TRUE(campaign::prepare_round(dir, r0, &error)) << error;
    EXPECT_EQ(r0.pending.size(), m.total_jobs());
    EXPECT_EQ(r0.index, 0u);

    // Run one shard over round 0, then the next round must be empty.
    ASSERT_EQ(campaign::run_shard(dir, 0, r0.runlist), 0);
    campaign::Round r1;
    ASSERT_TRUE(campaign::prepare_round(dir, r1, &error)) << error;
    EXPECT_TRUE(r1.pending.empty());
}

TEST(Engine, MergeReportsIncompleteCampaigns) {
    const std::string dir = fresh_dir("incomplete");
    campaign::Manifest m = tiny_fuzz_manifest();
    std::string error;
    ASSERT_TRUE(campaign::init_campaign(dir, m, &error)) << error;
    bool complete = true;
    ASSERT_TRUE(campaign::merge_campaign(dir, "", &error, &complete)) << error;
    EXPECT_FALSE(complete);
    api::Json doc;
    ASSERT_TRUE(api::Json::parse(slurp(campaign::report_path(dir)), doc,
                                 &error));
    EXPECT_FALSE(doc.at("campaign").at("complete").as_bool());
    EXPECT_EQ(doc.at("campaign").at("completed").as_u64(), 0u);
}
