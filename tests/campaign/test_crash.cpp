// The headline guarantee of the campaign service: SIGKILL a shard
// process mid-flight, resume, and the merged report is byte-identical
// to a run that was never interrupted.
//
// The victim shard is the real rtk-campaign tool (fork/exec'd via the
// engine's own spawn helper), killed with SIGKILL -- no atexit, no
// flush, no unwinding -- once its store file shows flushed records.
// Killing at a perfectly adversarial instant is inherently racy, so the
// kill is retried in a fresh directory until it lands mid-campaign
// (records flushed AND jobs still pending); the byte-identity assertion
// itself is unconditional.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harness/campaign.hpp"
#include "harness/campaign_engine.hpp"

namespace fs = std::filesystem;
using namespace rtk;
using namespace rtk::harness;

#ifdef RTK_CAMPAIGN_TOOL

namespace {

std::string fresh_dir(const std::string& name) {
    const std::string dir = "campaign_crash_tests/" + name;
    fs::remove_all(dir);
    return dir;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
}

campaign::Manifest crash_manifest() {
    campaign::Manifest m;
    m.name = "crash-test";
    m.kind = campaign::Kind::fuzz;
    m.base_seed = 770001;  // disjoint from every other seed block
    m.seeds = 24;
    m.both_policies = true;  // 48 jobs
    m.claim_batch = 4;
    m.flush_every = 2;  // small batches: records land early, kill lands mid-run
    return m;
}

/// Spawn one tool shard on round 0 of `dir`, SIGKILL it as soon as its
/// store holds at least one flushed record, and report how far the
/// campaign got. True when the kill landed mid-campaign.
bool kill_one_shard_mid_flight(const std::string& dir, std::size_t total,
                               std::size_t& done_after_kill) {
    campaign::Round round;
    std::string error;
    if (!campaign::prepare_round(dir, round, &error)) {
        ADD_FAILURE() << error;
        return false;
    }
    const long pid = campaign::spawn_shard(RTK_CAMPAIGN_TOOL, dir, 0,
                                           round.runlist, &error);
    if (pid < 0) {
        ADD_FAILURE() << error;
        return false;
    }

    // Poll the shard's store until a record batch has been flushed, then
    // kill without warning. 20 ms granularity against jobs that take
    // ~10 ms each keeps the kill inside the run with high probability.
    const std::string store = campaign::shards_dir(dir) + "/" +
                              fs::path(round.runlist).stem().string() +
                              "_s0.jsonl";
    for (int i = 0; i < 1000; ++i) {
        std::error_code ec;
        if (fs::file_size(store, ec) > 0 && !ec) {
            break;
        }
        ::usleep(20 * 1000);
    }
    ::kill(static_cast<pid_t>(pid), SIGKILL);
    std::string status;
    EXPECT_FALSE(campaign::wait_shard(pid, &status));
    EXPECT_EQ(status, "signal 9");

    campaign::StoreScan scan;
    if (!campaign::scan_stores(dir, scan, &error)) {
        ADD_FAILURE() << error;
        return false;
    }
    done_after_kill = scan.records.size();
    return done_after_kill > 0 && done_after_kill < total;
}

}  // namespace

TEST(CrashRecovery, ResumeAfterSigkillIsByteIdentical) {
    const campaign::Manifest m = crash_manifest();
    std::string error;

    // Control: the same campaign, never interrupted (one in-process
    // shard -- determinism across shard counts is covered elsewhere).
    const std::string control = fresh_dir("control");
    ASSERT_TRUE(campaign::init_campaign(control, m, &error)) << error;
    campaign::EngineOptions inproc;
    inproc.shards = 1;
    inproc.in_process = true;
    ASSERT_TRUE(campaign::run_campaign(control, inproc).complete);
    ASSERT_TRUE(campaign::merge_campaign(control, "", &error)) << error;
    const std::string control_report = slurp(campaign::report_path(control));
    ASSERT_FALSE(control_report.empty());

    // Victim: kill a real shard process mid-flight. Retried because the
    // shard may legitimately win the race and finish first.
    std::string dir;
    std::size_t done_after_kill = 0;
    bool mid_flight = false;
    for (int attempt = 0; attempt < 3 && !mid_flight; ++attempt) {
        dir = fresh_dir("victim" + std::to_string(attempt));
        ASSERT_TRUE(campaign::init_campaign(dir, m, &error)) << error;
        mid_flight =
            kill_one_shard_mid_flight(dir, m.total_jobs(), done_after_kill);
    }
    ASSERT_TRUE(mid_flight)
        << "could not land SIGKILL mid-campaign in 3 attempts "
        << "(last attempt had " << done_after_kill << "/" << m.total_jobs()
        << " records)";

    // Resume: same loop, two forked tool shards this time. Only the
    // missing jobs re-run.
    campaign::EngineOptions resume;
    resume.shards = 2;
    resume.worker_exe = RTK_CAMPAIGN_TOOL;
    const campaign::EngineResult res = campaign::run_campaign(dir, resume);
    EXPECT_TRUE(res.complete) << res.error;
    EXPECT_EQ(res.shard_failures, 0u);

    // The records the victim flushed before dying must have survived --
    // resume re-runs the rest, it does not start over.
    campaign::StoreScan scan;
    ASSERT_TRUE(campaign::scan_stores(dir, scan, &error)) << error;
    EXPECT_EQ(scan.records.size(), m.total_jobs());
    EXPECT_GE(scan.store_files, 2u);  // victim's partial store + resume's

    // The headline assertion: byte-identical merged report.
    ASSERT_TRUE(campaign::merge_campaign(dir, "", &error)) << error;
    EXPECT_EQ(slurp(campaign::report_path(dir)), control_report);

    // And merging twice is stable (the report is a pure function).
    ASSERT_TRUE(campaign::merge_campaign(dir, "", &error)) << error;
    EXPECT_EQ(slurp(campaign::report_path(dir)), control_report);
}

#else
TEST(CrashRecovery, DISABLED_NoToolPathConfigured) {}
#endif  // RTK_CAMPAIGN_TOOL
