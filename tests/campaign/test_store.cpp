// Persistence primitives of the campaign engine: the append-only JSONL
// store (batched fsync, tail repair), the tolerant reader, the
// flock-guarded claim queue, the shared atomic file writer and the
// strict bench count parser.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "harness/campaign_store.hpp"
#include "sysc/fsio.hpp"

namespace fs = std::filesystem;
using namespace rtk;
using namespace rtk::harness;

namespace {

std::string fresh_dir(const std::string& name) {
    const std::string dir = "campaign_store_tests/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
}

}  // namespace

// ---- write_file_atomic ------------------------------------------------------

TEST(AtomicWrite, ReplacesContentExactly) {
    const std::string dir = fresh_dir("atomic");
    const std::string path = dir + "/doc.json";
    ASSERT_TRUE(sysc::write_file_atomic(path, "first\n"));
    EXPECT_EQ(slurp(path), "first\n");
    ASSERT_TRUE(sysc::write_file_atomic(path, "second\n"));
    EXPECT_EQ(slurp(path), "second\n");
    // No temp droppings left behind.
    std::size_t entries = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
        (void)e;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST(AtomicWrite, BinaryExact) {
    const std::string dir = fresh_dir("atomic_bin");
    const std::string path = dir + "/blob.bin";
    std::string payload = "abc";
    payload.push_back('\0');
    payload += "def\n\r\xff";
    ASSERT_TRUE(sysc::write_file_atomic(path, payload, nullptr,
                                        /*durable=*/true));
    EXPECT_EQ(slurp(path), payload);
}

TEST(AtomicWrite, FailureLeavesOldFileIntact) {
    const std::string dir = fresh_dir("atomic_fail");
    const std::string path = dir + "/keep.json";
    ASSERT_TRUE(sysc::write_file_atomic(path, "precious\n"));
    // Writing into a directory that does not exist must fail cleanly...
    std::string error;
    EXPECT_FALSE(sysc::write_file_atomic(dir + "/no/such/dir/out.json",
                                         "x", &error));
    EXPECT_FALSE(error.empty());
    // ...and never disturb unrelated existing files.
    EXPECT_EQ(slurp(path), "precious\n");
}

// ---- JsonlAppender + read_jsonl ---------------------------------------------

TEST(JsonlStore, AppendsAndReadsBack) {
    const std::string dir = fresh_dir("appender");
    const std::string path = dir + "/records.jsonl";
    campaign::JsonlAppender store;
    ASSERT_TRUE(store.open(path, /*flush_every=*/2));
    for (int i = 0; i < 5; ++i) {
        api::Json r = api::Json::object();
        r.set("id", api::Json::number(static_cast<std::uint64_t>(i)));
        ASSERT_TRUE(store.append(r.dump(-1)));
    }
    EXPECT_EQ(store.appended(), 5u);
    ASSERT_TRUE(store.close());

    std::size_t skipped = 999;
    const std::vector<api::Json> records = campaign::read_jsonl(path, &skipped);
    EXPECT_EQ(skipped, 0u);
    ASSERT_EQ(records.size(), 5u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].at("id").as_u64(), i);
    }
}

TEST(JsonlStore, ReaderSkipsTornTail) {
    const std::string dir = fresh_dir("torn");
    const std::string path = dir + "/records.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"id\": 0}\n";
        out << "{\"id\": 1}\n";
        out << "{\"id\": 2, \"trunc";  // killed mid-write, no newline
    }
    std::size_t skipped = 0;
    const std::vector<api::Json> records = campaign::read_jsonl(path, &skipped);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[1].at("id").as_u64(), 1u);
    EXPECT_EQ(skipped, 1u);
}

TEST(JsonlStore, ReopenRepairsTornTail) {
    const std::string dir = fresh_dir("repair");
    const std::string path = dir + "/records.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"id\": 0}\n{\"id\": 1, \"half";  // torn final line
    }
    campaign::JsonlAppender store;
    ASSERT_TRUE(store.open(path, 1));
    ASSERT_TRUE(store.append("{\"id\": 2}"));
    ASSERT_TRUE(store.close());

    // The torn line must stay isolated (skipped), not fuse with id 2.
    std::size_t skipped = 0;
    const std::vector<api::Json> records = campaign::read_jsonl(path, &skipped);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].at("id").as_u64(), 0u);
    EXPECT_EQ(records[1].at("id").as_u64(), 2u);
    EXPECT_EQ(skipped, 1u);
}

TEST(JsonlStore, MissingFileReadsEmpty) {
    std::size_t skipped = 7;
    EXPECT_TRUE(campaign::read_jsonl("campaign_store_tests/nope.jsonl",
                                     &skipped)
                    .empty());
    EXPECT_EQ(skipped, 0u);
}

// ---- ClaimQueue -------------------------------------------------------------

TEST(ClaimQueue, LeasesDisjointBatchesUntilExhausted) {
    const std::string dir = fresh_dir("claims");
    campaign::ClaimQueue q;
    ASSERT_TRUE(q.open(dir + "/cursor"));
    std::vector<bool> seen(10, false);
    std::uint64_t begin = 0, end = 0;
    std::size_t claims = 0;
    while (q.claim(10, 4, begin, end)) {
        ++claims;
        ASSERT_LT(begin, end);
        ASSERT_LE(end, 10u);
        for (std::uint64_t i = begin; i < end; ++i) {
            EXPECT_FALSE(seen[i]) << "index leased twice: " << i;
            seen[i] = true;
        }
    }
    EXPECT_EQ(claims, 3u);  // 4 + 4 + 2
    for (bool s : seen) {
        EXPECT_TRUE(s);
    }
    // Exhausted stays exhausted.
    EXPECT_FALSE(q.claim(10, 4, begin, end));
}

TEST(ClaimQueue, TwoHandlesShareOneCursor) {
    const std::string dir = fresh_dir("claims_shared");
    campaign::ClaimQueue a, b;
    ASSERT_TRUE(a.open(dir + "/cursor"));
    ASSERT_TRUE(b.open(dir + "/cursor"));
    std::uint64_t begin = 0, end = 0;
    ASSERT_TRUE(a.claim(6, 2, begin, end));
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 2u);
    ASSERT_TRUE(b.claim(6, 2, begin, end));
    EXPECT_EQ(begin, 2u);
    EXPECT_EQ(end, 4u);
    ASSERT_TRUE(a.claim(6, 2, begin, end));
    EXPECT_EQ(begin, 4u);
    EXPECT_EQ(end, 6u);
    EXPECT_FALSE(b.claim(6, 2, begin, end));
}

TEST(ClaimQueue, GarbageCursorHealsToZero) {
    const std::string dir = fresh_dir("claims_garbage");
    const std::string cursor = dir + "/cursor";
    {
        std::ofstream out(cursor, std::ios::binary);
        out << "not a number";
    }
    campaign::ClaimQueue q;
    ASSERT_TRUE(q.open(cursor));
    std::uint64_t begin = 99, end = 99;
    ASSERT_TRUE(q.claim(4, 4, begin, end));
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 4u);
}

// ---- parse_count ------------------------------------------------------------

TEST(ParseCount, AcceptsPlainDecimal) {
    std::uint64_t v = 0;
    EXPECT_TRUE(bench::parse_count("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(bench::parse_count("528", v));
    EXPECT_EQ(v, 528u);
    EXPECT_TRUE(bench::parse_count("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseCount, RejectsJunk) {
    std::uint64_t v = 77;
    EXPECT_FALSE(bench::parse_count(nullptr, v));
    EXPECT_FALSE(bench::parse_count("", v));
    EXPECT_FALSE(bench::parse_count("-1", v));
    EXPECT_FALSE(bench::parse_count("+5", v));
    EXPECT_FALSE(bench::parse_count("12x", v));
    EXPECT_FALSE(bench::parse_count("1e6", v));
    EXPECT_FALSE(bench::parse_count(" 4", v));
    EXPECT_FALSE(bench::parse_count("0x10", v));
    EXPECT_FALSE(bench::parse_count("18446744073709551616", v));  // overflow
    EXPECT_EQ(v, 77u) << "failed parse must not touch the output";
}
