// FaultSpec serialization, deterministic replay, and the outcome
// classification rules of the fault-injection engine.
#include <gtest/gtest.h>

#include <string>

#include "harness/harness.hpp"

namespace rtk::harness::fault {
namespace {

FaultSpec sample_fault(std::uint64_t seed) {
    FaultSpec f;
    f.workload = fuzz::generate_spec(seed);
    f.cls = FaultClass::tcb_bitflip;
    f.trigger = 17;
    f.target = 3;
    f.field = 1;
    f.bit = 5;
    f.param = -4;
    return f;
}

TEST(FaultClassTest, NameRoundTrip) {
    for (std::size_t i = 0; i < fault_class_count; ++i) {
        const FaultClass c = all_fault_classes()[i];
        FaultClass back = FaultClass::irq_dup;
        ASSERT_TRUE(fault_class_from_string(to_string(c), back)) << to_string(c);
        EXPECT_EQ(back, c);
    }
    FaultClass ignored;
    EXPECT_FALSE(fault_class_from_string("gamma_ray", ignored));
}

TEST(FaultClassTest, OutcomeNameRoundTrip) {
    for (std::size_t i = 0; i < outcome_count; ++i) {
        const Outcome o = static_cast<Outcome>(i);
        Outcome back = Outcome::masked;
        ASSERT_TRUE(outcome_from_string(to_string(o), back)) << to_string(o);
        EXPECT_EQ(back, o);
    }
    Outcome ignored;
    EXPECT_FALSE(outcome_from_string("unknown", ignored));
}

TEST(FaultSpecTest, JsonRoundTripIsLossless) {
    const FaultSpec f = sample_fault(11);
    const std::string text = f.to_json().dump(2);

    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(text, parsed, &error)) << error;
    FaultSpec back;
    ASSERT_TRUE(FaultSpec::from_json(parsed, back, &error)) << error;
    EXPECT_EQ(back.to_json().dump(2), text);
    EXPECT_EQ(back.cls, f.cls);
    EXPECT_EQ(back.trigger, f.trigger);
    EXPECT_EQ(back.param, f.param);
    EXPECT_TRUE(back.workload == f.workload);
}

TEST(FaultSpecTest, FromJsonRejectsGarbage) {
    FaultSpec out;
    std::string error;
    EXPECT_FALSE(FaultSpec::from_json(Json::number(7), out, &error));
    EXPECT_FALSE(error.empty());

    Json j = Json::object();
    j.set("class", Json::string("not_a_class"));
    EXPECT_FALSE(FaultSpec::from_json(j, out, &error));
}

TEST(FaultSpecTest, NameEncodesClassSeedAndTrigger) {
    const FaultSpec f = sample_fault(11);
    EXPECT_EQ(f.name(), "fault/tcb_bitflip/11/t17");
}

TEST(BaselineTest, ProfileIsDeterministicAndPopulated) {
    const fuzz::FuzzSpec workload = fuzz::generate_spec(21);
    const BaselineProfile a = profile_baseline(workload);
    const BaselineProfile b = profile_baseline(workload);
    EXPECT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_GT(a.events, 0u);
    EXPECT_GT(a.ops, 0u);
}

TEST(ReplayTest, InjectionReplaysByteForByte) {
    const fuzz::FuzzSpec workload = fuzz::generate_spec(33);
    const BaselineProfile baseline = profile_baseline(workload);
    ASSERT_GT(baseline.events, 4u);

    FaultSpec f;
    f.workload = workload;
    f.cls = FaultClass::tcb_bitflip;
    f.trigger = baseline.events / 2;
    f.target = 2;
    f.field = 0;
    f.bit = 3;

    const InjectionResult first = run_injection(f, baseline);
    const InjectionResult second = run_injection(f, baseline);
    EXPECT_TRUE(first.injected);
    EXPECT_EQ(first.outcome, second.outcome);
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.service_call, second.service_call);

    // The repro document round-trips and replays to the identical bytes.
    const std::string repro = make_repro_json(f, first);
    FaultSpec replayed;
    std::string error;
    ASSERT_TRUE(parse_repro_json(repro, replayed, &error)) << error;
    const InjectionResult third = run_injection(replayed, baseline);
    EXPECT_EQ(make_repro_json(replayed, third), repro);
}

TEST(ClassifyTest, ExhaustedDeltaBudgetClassifiesAsHung) {
    const fuzz::FuzzSpec workload = fuzz::generate_spec(21);
    const BaselineProfile baseline = profile_baseline(workload);

    FaultSpec f;
    f.workload = workload;
    f.cls = FaultClass::irq_dup;  // harmless; the budget is the fault here
    f.trigger = 0;
    f.delta_budget = 50;  // far below what the full run needs

    const InjectionResult r = run_injection(f, baseline);
    EXPECT_EQ(r.outcome, Outcome::hung);
    EXPECT_FALSE(r.error.empty());
}

TEST(ClassifyTest, PrecedenceOverSyntheticResults) {
    const FaultSpec f = sample_fault(21);
    const BuiltInjection built = build_injection(f);

    ScenarioResult run;
    run.passed = false;
    run.error = "simulated fatal check";
    BaselineProfile baseline;
    baseline.fingerprint = 0x1234;

    // A sim error with a clean oracle is a detection...
    EXPECT_EQ(harvest(built, run, baseline).outcome, Outcome::detected);

    // ...an oracle violation outranks it...
    built.oracle->violation_count = 3;
    built.oracle->violations = {"T3: two tasks running"};
    InjectionResult r = harvest(built, run, baseline);
    EXPECT_EQ(r.outcome, Outcome::invariant_violated);
    EXPECT_EQ(r.oracle_violations, 3u);
    ASSERT_EQ(r.violations.size(), 1u);

    // ...and a blown delta budget outranks everything.
    run.hung = true;
    EXPECT_EQ(harvest(built, run, baseline).outcome, Outcome::hung);

    // A clean completed run is masked; fingerprint drift is orthogonal.
    run.hung = false;
    run.passed = true;
    run.error.clear();
    run.fingerprint = 0x9999;
    built.oracle->violation_count = 0;
    r = harvest(built, run, baseline);
    EXPECT_EQ(r.outcome, Outcome::masked);
    EXPECT_TRUE(r.diverged);
}

}  // namespace
}  // namespace rtk::harness::fault
