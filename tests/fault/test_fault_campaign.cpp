// The campaign driver end-to-end: a small fixed-seed campaign through
// the batch runner, outcome accounting, the coverage heat-map document,
// repro emission, and the three-observer (oracle + injector + trace
// consumer) fan-out the engine rides on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/harness.hpp"

namespace rtk::harness::fault {
namespace {

/// The fixed-seed smoke campaign (same block the bench uses at reduced
/// scale): 4 workloads x 24 injections, every class cycled.
CampaignOptions smoke_options() {
    CampaignOptions opts;
    opts.base_seed = 880001;
    opts.corpus = 4;
    opts.injections_per_workload = 24;
    opts.threads = 2;
    return opts;
}

TEST(FaultCampaignTest, ClassifiesEveryInjection) {
    const CampaignReport rep = run_fault_campaign(smoke_options());

    EXPECT_EQ(rep.workloads, 4u);
    EXPECT_EQ(rep.injections, 4u * 24u);
    // Triggers are sampled inside the baseline profile, so every
    // injection fires...
    EXPECT_EQ(rep.injected, rep.injections);
    // ...and every outcome is one of the four classes (no "unknown").
    std::uint64_t classified = 0;
    for (std::size_t i = 0; i < outcome_count; ++i) {
        classified += rep.outcomes[i];
    }
    EXPECT_EQ(classified, rep.injections);
    // All six fault classes land even in the small campaign, and the
    // corpus spans well over ten distinct service calls.
    EXPECT_EQ(rep.fault_classes_covered(), fault_class_count);
    EXPECT_GE(rep.service_calls_covered(), 10u);
    // The fixed seed block is known to break invariants (that is the
    // point of the campaign); deterministic, so stable across runs.
    EXPECT_GT(rep.count(Outcome::invariant_violated), 0u);
}

TEST(FaultCampaignTest, CampaignIsDeterministic) {
    CampaignOptions opts = smoke_options();
    opts.corpus = 2;
    opts.injections_per_workload = 12;
    const CampaignReport a = run_fault_campaign(opts);
    opts.threads = 1;  // thread count must not change any outcome
    const CampaignReport b = run_fault_campaign(opts);
    // Everything but the wall clock must be bit-identical.
    auto strip_wall = [](const CampaignReport& rep) {
        Json doc;
        std::string error;
        EXPECT_TRUE(Json::parse(rep.to_json(), doc, &error)) << error;
        Json agg = doc.at("campaign");
        agg.set("wall_seconds", Json::number(0));
        doc.set("campaign", std::move(agg));
        return doc.dump(2);
    };
    EXPECT_EQ(strip_wall(a), strip_wall(b));
}

TEST(FaultCampaignTest, CoverageDocumentHasTheHeatMapShape) {
    CampaignOptions opts = smoke_options();
    opts.corpus = 2;
    opts.injections_per_workload = 12;
    const CampaignReport rep = run_fault_campaign(opts);
    const std::string text = rep.to_json();

    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(text, doc, &error)) << error;
    ASSERT_TRUE(doc.has("campaign"));
    ASSERT_TRUE(doc.has("coverage"));
    const Json& agg = doc.at("campaign");
    EXPECT_EQ(agg.at("injections").as_u64(), rep.injections);
    EXPECT_EQ(agg.at("masked").as_u64(), rep.count(Outcome::masked));

    // Every heat-map cell is keyed by a real class name and its counts
    // add up to its total.
    std::uint64_t total = 0;
    for (const auto& [call, row] : doc.at("coverage").members()) {
        EXPECT_FALSE(call.empty());
        for (const auto& [cls, cell] : row.members()) {
            FaultClass ignored;
            EXPECT_TRUE(fault_class_from_string(cls, ignored)) << cls;
            const std::uint64_t cell_total =
                cell.at("masked").as_u64() + cell.at("detected").as_u64() +
                cell.at("invariant_violated").as_u64() +
                cell.at("hung").as_u64();
            EXPECT_EQ(cell.at("total").as_u64(), cell_total);
            total += cell_total;
        }
    }
    EXPECT_EQ(total, rep.injections);
}

TEST(FaultCampaignTest, WritesParseableReproFiles) {
    CampaignOptions opts = smoke_options();
    opts.repro_dir = ".";
    opts.max_repros = 2;
    const CampaignReport rep = run_fault_campaign(opts);
    ASSERT_FALSE(rep.repro_paths.empty());
    ASSERT_LE(rep.repro_paths.size(), 2u);

    for (const std::string& path : rep.repro_paths) {
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::ostringstream text;
        text << in.rdbuf();
        FaultSpec spec;
        std::string error;
        EXPECT_TRUE(parse_repro_json(text.str(), spec, &error))
            << path << ": " << error;
        std::remove(path.c_str());
    }
}

TEST(FaultCampaignTest, OracleInjectorAndTracerObserveOneRun) {
    const fuzz::FuzzSpec workload = fuzz::generate_spec(880001);
    const BaselineProfile baseline = profile_baseline(workload);
    ASSERT_GT(baseline.events, 0u);

    FaultSpec f;
    f.workload = workload;
    f.cls = FaultClass::object_bitflip;
    f.trigger = baseline.events / 3;

    const BuiltInjection built = build_injection(f);
    const ScenarioResult run = run_scenario(built.scenario);
    const InjectionResult r = harvest(built, run, baseline);

    // All three observers were live on the same SimApi: the oracle saw
    // events (report harvested by the check predicate), the trace
    // consumer counted them independently, and the injector both counted
    // and fired.
    if (!run.hung && run.error.empty()) {
        EXPECT_TRUE(built.oracle->ran);
        EXPECT_GT(built.oracle->events, 0u);
    }
    // The pre-trigger prefix is bit-identical to the baseline, so the
    // tracer saw at least up to the injection site.
    EXPECT_GT(r.trace_events, f.trigger);
    EXPECT_NE(r.service_call, "");
}

}  // namespace
}  // namespace rtk::harness::fault
