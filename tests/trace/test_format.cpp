// .rtktrace building blocks: varint/zigzag coding, the tolerant Cursor,
// structural parse errors and the latency histogram.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "trace/format.hpp"
#include "trace/metrics.hpp"
#include "trace/reader.hpp"

namespace rtk::trace {
namespace {

Cursor cursor_over(const std::string& buf) {
    const auto* begin = reinterpret_cast<const unsigned char*>(buf.data());
    return Cursor{begin, begin + buf.size()};
}

TEST(Varint, RoundTripsBoundaryValues) {
    const std::uint64_t values[] = {0,
                                    1,
                                    127,
                                    128,
                                    16383,
                                    16384,
                                    (std::uint64_t{1} << 32) - 1,
                                    std::uint64_t{1} << 32,
                                    std::numeric_limits<std::uint64_t>::max()};
    for (std::uint64_t v : values) {
        std::string buf;
        put_varint(buf, v);
        Cursor c = cursor_over(buf);
        std::uint64_t out = 0;
        ASSERT_TRUE(c.get_varint(out)) << v;
        EXPECT_EQ(out, v);
        EXPECT_TRUE(c.done());
    }
}

TEST(Varint, TruncatedEncodingFails) {
    std::string buf;
    put_varint(buf, std::uint64_t{1} << 40);
    buf.resize(buf.size() - 1);  // chop the terminating byte
    Cursor c = cursor_over(buf);
    std::uint64_t out = 0;
    EXPECT_FALSE(c.get_varint(out));
}

TEST(Zigzag, RoundTripsSignedValues) {
    const std::int64_t values[] = {0, -1, 1, -64, 63, -12345, 12345,
                                   std::numeric_limits<std::int32_t>::min(),
                                   std::numeric_limits<std::int32_t>::max()};
    for (std::int64_t v : values) {
        EXPECT_EQ(unzigzag(zigzag(v)), v);
    }
}

TEST(EventKind, EveryKindHasATagAndAName) {
    for (std::size_t k = 0; k < event_kind_count; ++k) {
        const auto kind = static_cast<EventKind>(k);
        EXPECT_EQ(event_tag(kind),
                  static_cast<std::uint8_t>(RecordTag::event_base) + k);
        EXPECT_STRNE(to_string(kind), "?");
    }
}

TEST(ParseTrace, RejectsBadMagic) {
    TraceDoc doc;
    std::string error;
    const std::string bad("NOPE\x01\x00", 6);
    EXPECT_FALSE(parse_trace(bad, doc, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(ParseTrace, RejectsUnknownVersion) {
    std::string bytes = "RTKT";
    bytes.push_back('\x7f');
    bytes.push_back('\0');
    TraceDoc doc;
    std::string error;
    EXPECT_FALSE(parse_trace(bytes, doc, &error));
    EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(ParseTrace, RejectsUnknownRecordTag) {
    std::string bytes = "RTKT";
    bytes.push_back(static_cast<char>(trace_version));
    bytes.push_back('\0');
    bytes.push_back('\x05');  // not a define / event / footer tag
    TraceDoc doc;
    std::string error;
    EXPECT_FALSE(parse_trace(bytes, doc, &error));
    EXPECT_NE(error.find("tag"), std::string::npos);
}

TEST(ParseTrace, EmptyCaptureWithoutFooterParses) {
    std::string bytes = "RTKT";
    bytes.push_back(static_cast<char>(trace_version));
    bytes.push_back('\0');
    TraceDoc doc;
    std::string error;
    ASSERT_TRUE(parse_trace(bytes, doc, &error)) << error;
    EXPECT_FALSE(doc.has_footer);
    EXPECT_TRUE(doc.events.empty());
    EXPECT_TRUE(doc.threads.empty());
}

namespace {

/// A tiny hand-assembled capture: two threads, four events, a footer.
std::string sample_capture() {
    std::string b = "RTKT";
    b.push_back(static_cast<char>(trace_version));
    b.push_back('\0');

    auto define = [&b](std::uint64_t tid, const std::string& name) {
        b.push_back(static_cast<char>(RecordTag::define_thread));
        put_varint(b, tid);
        b.push_back('\0');  // kind
        put_varint(b, zigzag(5));
        put_varint(b, name.size());
        b += name;
    };
    define(1, "main");
    define(2, "worker");

    b.push_back(static_cast<char>(event_tag(EventKind::dispatch)));
    put_varint(b, 1000);  // dt
    put_varint(b, 1);     // tid

    b.push_back(static_cast<char>(event_tag(EventKind::state_change)));
    put_varint(b, 500);
    put_varint(b, 2);
    b.push_back('\x01');  // from
    b.push_back('\x02');  // to

    b.push_back(static_cast<char>(event_tag(EventKind::wakeup)));
    put_varint(b, 250);
    put_varint(b, 1);
    put_varint(b, 3);  // woken by tid 2 (stored +1)

    b.push_back(static_cast<char>(event_tag(EventKind::annotation)));
    put_varint(b, 100);
    put_varint(b, 0);  // global
    put_varint(b, 4);
    b += "mark";

    b.push_back(static_cast<char>(RecordTag::footer));
    put_varint(b, 4);     // events
    put_varint(b, 0);     // dropped records
    put_varint(b, 0);     // dropped bytes
    put_varint(b, 1850);  // end_time_ps
    put_varint(b, 7);     // delta cycles
    return b;
}

}  // namespace

TEST(ParseTrace, TruncatedMidRecordKeepsCompleteRecords) {
    const std::string full = sample_capture();
    TraceDoc whole;
    std::string error;
    ASSERT_TRUE(parse_trace(full, whole, &error)) << error;
    ASSERT_TRUE(whole.has_footer);
    ASSERT_EQ(whole.events.size(), 4u);

    // Chop inside the annotation's text: the torn record is dropped, the
    // three complete events before it survive, and the absent footer is
    // the truncation signal.
    TraceDoc doc;
    ASSERT_TRUE(parse_trace(
        std::string_view(full).substr(0, full.size() - 10), doc, &error))
        << error;
    EXPECT_FALSE(doc.has_footer);
    EXPECT_EQ(doc.threads.size(), 2u);
    ASSERT_EQ(doc.events.size(), 3u);
    EXPECT_EQ(doc.events[2].kind, EventKind::wakeup);
    EXPECT_EQ(doc.events[2].t_ps, 1750u);
}

TEST(ParseTrace, TruncatedFooterKeepsAllEventsWithoutFooter) {
    const std::string full = sample_capture();
    TraceDoc doc;
    std::string error;
    ASSERT_TRUE(parse_trace(
        std::string_view(full).substr(0, full.size() - 1), doc, &error))
        << error;
    EXPECT_FALSE(doc.has_footer);
    EXPECT_EQ(doc.events.size(), 4u);
    EXPECT_EQ(doc.recorded_events, 0u);  // half-read counts are discarded
    EXPECT_EQ(doc.end_time_ps, 0u);
}

TEST(ParseTrace, EveryTruncationPointYieldsAValidPrefix) {
    const std::string full = sample_capture();
    TraceDoc whole;
    ASSERT_TRUE(parse_trace(full, whole, nullptr));
    for (std::size_t cut = trace_header_size; cut < full.size(); ++cut) {
        TraceDoc doc;
        std::string error;
        ASSERT_TRUE(parse_trace(std::string_view(full).substr(0, cut), doc,
                                &error))
            << "cut at " << cut << ": " << error;
        EXPECT_FALSE(doc.has_footer) << cut;
        ASSERT_LE(doc.events.size(), whole.events.size()) << cut;
        for (std::size_t i = 0; i < doc.events.size(); ++i) {
            EXPECT_EQ(doc.events[i].kind, whole.events[i].kind) << cut;
            EXPECT_EQ(doc.events[i].t_ps, whole.events[i].t_ps) << cut;
        }
    }
}

TEST(ParseTrace, UnknownThreadFallsBackToSyntheticName) {
    TraceDoc doc;
    EXPECT_EQ(doc.thread_name(42), "t42");
    EXPECT_EQ(doc.thread(42), nullptr);
}

TEST(LatencyHistogram, BucketsByLog2Nanoseconds) {
    LatencyHistogram h;
    h.add(0);                  // < 1 ns -> bucket 0
    h.add(1000);               // 1 ns -> bucket bit_width(1) = 1
    h.add(1000 * 1000);        // 1000 ns -> bucket bit_width(1000) = 10
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[10], 1u);
    EXPECT_EQ(h.max_ps, 1000u * 1000u);

    LatencyHistogram other;
    other.add(2000);
    h.merge(other);
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.buckets[2], 1u);
}

TEST(Metrics, MergeCountersSumsScalars) {
    Metrics a;
    a.events = 10;
    a.dispatches = 4;
    a.end_time_ps = 100;
    Metrics b;
    b.events = 5;
    b.dispatches = 1;
    b.end_time_ps = 400;
    a.merge_counters(b);
    EXPECT_EQ(a.events, 15u);
    EXPECT_EQ(a.dispatches, 5u);
    EXPECT_EQ(a.end_time_ps, 400u);  // max, not sum
}

}  // namespace
}  // namespace rtk::trace
