// The fault-injection x tracing contract: oracle + injector + recorder
// (four observers counting the trace consumer) share one SimApi, the
// injector stamps its injection instant into the capture, and a traced
// campaign writes .rtktrace files that the repro JSONs reference.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/harness.hpp"
#include "trace/trace.hpp"

namespace rtk::harness::fault {
namespace {

harness::TraceConfig keep_trace() {
    harness::TraceConfig t;
    t.enabled = true;
    t.keep_bytes = true;
    return t;
}

TEST(FaultTrace, RecorderRidesTheInjectionFanOut) {
    const fuzz::FuzzSpec workload = fuzz::generate_spec(880001);
    const BaselineProfile baseline = profile_baseline(workload);
    ASSERT_GT(baseline.events, 0u);

    FaultSpec f;
    f.workload = workload;
    f.cls = FaultClass::irq_dup;  // applies unconditionally at the trigger
    f.trigger = baseline.events / 3;

    const BuiltInjection built = build_injection(f, /*with_fault=*/true,
                                                 keep_trace());
    const ScenarioResult run = run_scenario(built.scenario);
    const InjectionResult r = harvest(built, run, baseline);

    // Oracle, injector and trace consumer all still saw the run...
    EXPECT_GT(r.trace_events, f.trigger);
    ASSERT_TRUE(r.injected);
    // ...and the recorder captured it, including the injector's
    // annotation at the injection instant.
    ASSERT_TRUE(run.traced);
    trace::TraceDoc doc;
    std::string error;
    ASSERT_TRUE(trace::parse_trace(run.trace_data, doc, &error)) << error;
    bool marked = false;
    for (const trace::TraceEvent& e : doc.events) {
        if (e.kind == trace::EventKind::annotation &&
            e.text.rfind("fault:", 0) == 0) {
            EXPECT_NE(e.text.find("irq_dup"), std::string::npos) << e.text;
            marked = true;
        }
    }
    EXPECT_TRUE(marked);
}

TEST(FaultTrace, TracingDoesNotChangeInjectionOutcomes) {
    const fuzz::FuzzSpec workload = fuzz::generate_spec(880002);
    const BaselineProfile baseline = profile_baseline(workload);
    ASSERT_GT(baseline.events, 0u);

    FaultSpec f;
    f.workload = workload;
    f.cls = FaultClass::tcb_bitflip;
    f.trigger = baseline.events / 2;
    f.target = 1;
    f.bit = 3;

    const BuiltInjection plain = build_injection(f);
    const ScenarioResult plain_run = run_scenario(plain.scenario);
    const InjectionResult plain_r = harvest(plain, plain_run, baseline);

    const BuiltInjection traced = build_injection(f, /*with_fault=*/true,
                                                  keep_trace());
    const ScenarioResult traced_run = run_scenario(traced.scenario);
    const InjectionResult traced_r = harvest(traced, traced_run, baseline);

    // The recorder is a passive fourth observer: same trigger ordinals,
    // same outcome, same behaviour fingerprint.
    EXPECT_EQ(traced_r.outcome, plain_r.outcome);
    EXPECT_EQ(traced_r.injected, plain_r.injected);
    EXPECT_EQ(traced_r.service_call, plain_r.service_call);
    EXPECT_EQ(traced_r.fingerprint, plain_r.fingerprint);
    EXPECT_EQ(traced_r.trace_events, plain_r.trace_events);
}

TEST(FaultTrace, TracedCampaignWritesTracesAndReferencesThem) {
    CampaignOptions opts;
    opts.base_seed = 880001;
    opts.corpus = 4;  // the fixed seed block known to break invariants
    opts.injections_per_workload = 24;
    opts.threads = 2;
    opts.repro_dir = ".";
    opts.trace_dir = ".";
    opts.max_repros = 3;
    const CampaignReport rep = run_fault_campaign(opts);

    // The fixed seed block produces non-masked outcomes, so both repro
    // JSONs and their traces landed.
    ASSERT_FALSE(rep.repro_paths.empty());
    ASSERT_FALSE(rep.trace_paths.empty());
    EXPECT_EQ(rep.traced_runs, rep.injections);
    EXPECT_GT(rep.trace_metrics.events, 0u);

    // Every written trace parses, and the matching repro references it.
    for (const std::string& path : rep.trace_paths) {
        trace::TraceDoc doc;
        std::string error;
        EXPECT_TRUE(trace::read_trace_file(path, doc, &error))
            << path << ": " << error;
        EXPECT_FALSE(doc.events.empty()) << path;
    }
    bool referenced = false;
    for (const std::string& path : rep.repro_paths) {
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::ostringstream text;
        text << in.rdbuf();
        Json doc;
        std::string error;
        ASSERT_TRUE(Json::parse(text.str(), doc, &error)) << path << ": " << error;
        if (doc.at("result").has("trace")) {
            const std::string ref = doc.at("result").at("trace").as_string();
            trace::TraceDoc ignored;
            EXPECT_TRUE(trace::read_trace_file(ref, ignored, &error))
                << ref << ": " << error;
            referenced = true;
        }
    }
    EXPECT_TRUE(referenced);

    // The campaign report carries the trace aggregate.
    Json doc;
    std::string error;
    ASSERT_TRUE(Json::parse(rep.to_json(), doc, &error)) << error;
    ASSERT_TRUE(doc.has("trace"));
    EXPECT_EQ(doc.at("trace").at("traced_runs").as_u64(), rep.traced_runs);

    for (const std::string& path : rep.trace_paths) {
        std::remove(path.c_str());
    }
    for (const std::string& path : rep.repro_paths) {
        std::remove(path.c_str());
    }
}

}  // namespace
}  // namespace rtk::harness::fault
