// trace::Recorder against real scenario runs: lossless round-trips vs a
// reference observer, overflow accounting, serial-vs-parallel byte
// identity, metrics cross-checks and the Perfetto export shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "harness/harness.hpp"
#include "sim/observer.hpp"
#include "sim/tthread.hpp"
#include "tkernel/tkernel.hpp"
#include "trace/trace.hpp"

namespace rtk::trace {
namespace {

using harness::BatchReport;
using harness::ScenarioResult;
using harness::ScenarioRunner;
using harness::ScenarioSpec;
using rtk::Simulation;
using sysc::Time;
using tkernel::ID;
using tkernel::INT;
using tkernel::T_CSEM;
using tkernel::T_CTSK;
using tkernel::TKernel;

/// Ping-pong workload (producer delays + signals, consumer waits +
/// burns units): touches tasks, the timer, wakeups and service calls.
void pingpong(Simulation& sim, const ScenarioSpec& spec) {
    TKernel& tk = sim.os();
    const std::uint64_t units = 50 + spec.seed % 100;
    sim.set_user_main([&tk, units] {
        T_CSEM cs;
        cs.name = "items";
        const ID sem = tk.tk_cre_sem(cs);
        T_CTSK prod;
        prod.name = "prod";
        prod.itskpri = 10;
        prod.task = [&tk, sem](INT, void*) {
            for (int i = 0; i < 10; ++i) {
                tk.tk_dly_tsk(2);
                tk.tk_sig_sem(sem, 1);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(prod), 0);
        T_CTSK cons;
        cons.name = "cons";
        cons.itskpri = 5;
        cons.task = [&tk, sem, units](INT, void*) {
            for (int i = 0; i < 10; ++i) {
                if (tk.tk_wai_sem(sem, 1, tkernel::TMO_FEVR) != tkernel::E_OK) {
                    return;
                }
                tk.sim().SIM_WaitUnits(units, sim::ExecContext::task);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(cons), 0);
    });
}

ScenarioSpec traced_spec(std::uint64_t seed) {
    ScenarioSpec s;
    s.name = "traced/" + std::to_string(seed);
    s.seed = seed;
    s.duration = Time::ms(40);
    s.workload = &pingpong;
    s.trace.enabled = true;
    s.trace.keep_bytes = true;
    return s;
}

/// Every observer event as the callbacks delivered it -- the ground
/// truth the parsed trace must reproduce.
struct RefEvent {
    EventKind kind;
    std::int64_t tid;
    std::int64_t by;
    std::uint8_t from;
    std::uint8_t to;
    std::uint64_t t_ps;
};

class ReferenceObserver final : public sim::SimObserver {
public:
    ReferenceObserver(sim::SimApi& api, std::shared_ptr<std::vector<RefEvent>> out)
        : api_(&api), out_(std::move(out)) {
        api_->add_observer(this);
    }
    ~ReferenceObserver() override { api_->remove_observer(this); }

    void on_state_change(const sim::TThread& t, sim::ThreadState from,
                         sim::ThreadState to, sysc::Time at) override {
        out_->push_back({EventKind::state_change, t.id(), -1,
                         static_cast<std::uint8_t>(from),
                         static_cast<std::uint8_t>(to), at.picoseconds()});
    }
    void on_dispatch(const sim::TThread& t, sysc::Time at) override {
        out_->push_back({EventKind::dispatch, t.id(), -1, 0, 0, at.picoseconds()});
    }
    void on_preemption(const sim::TThread& t, sysc::Time at) override {
        out_->push_back(
            {EventKind::preemption, t.id(), -1, 0, 0, at.picoseconds()});
    }
    void on_interrupt_enter(const sim::TThread& isr, sysc::Time at) override {
        out_->push_back(
            {EventKind::interrupt_enter, isr.id(), -1, 0, 0, at.picoseconds()});
    }
    void on_interrupt_return(const sim::TThread& isr, sysc::Time at) override {
        out_->push_back(
            {EventKind::interrupt_return, isr.id(), -1, 0, 0, at.picoseconds()});
    }
    void on_wakeup(const sim::TThread& t, const sim::TThread* by,
                   sysc::Time at) override {
        out_->push_back({EventKind::wakeup, t.id(),
                         by != nullptr ? std::int64_t{by->id()} : -1, 0, 0,
                         at.picoseconds()});
    }
    void on_idle(sysc::Time at) override {
        out_->push_back({EventKind::idle, -1, -1, 0, 0, at.picoseconds()});
    }
    void on_service_enter(const sim::TThread& t, sysc::Time at) override {
        out_->push_back(
            {EventKind::service_enter, t.id(), -1, 0, 0, at.picoseconds()});
    }
    void on_service_exit(const sim::TThread& t, sysc::Time at) override {
        out_->push_back(
            {EventKind::service_exit, t.id(), -1, 0, 0, at.picoseconds()});
    }

private:
    sim::SimApi* api_;
    std::shared_ptr<std::vector<RefEvent>> out_;
};

TEST(Recorder, BinaryRoundTripIsLossless) {
    auto ref = std::make_shared<std::vector<RefEvent>>();
    ScenarioSpec spec = traced_spec(7);
    auto inner = spec.workload;
    spec.workload = [ref, inner](Simulation& sim, const ScenarioSpec& s) {
        sim.retain(std::make_shared<ReferenceObserver>(sim.sim(), ref));
        inner(sim, s);
    };
    const ScenarioResult run = harness::run_scenario(spec);
    ASSERT_TRUE(run.passed) << run.error;
    ASSERT_TRUE(run.traced);
    EXPECT_EQ(run.trace_dropped, 0u);
    EXPECT_GT(run.trace_events, 100u);
    EXPECT_EQ(run.trace_events, ref->size());

    TraceDoc doc;
    std::string error;
    ASSERT_TRUE(parse_trace(run.trace_data, doc, &error)) << error;
    ASSERT_TRUE(doc.has_footer);
    EXPECT_EQ(doc.recorded_events, run.trace_events);
    EXPECT_EQ(doc.dropped_records, 0u);
    ASSERT_EQ(doc.events.size(), ref->size());
    for (std::size_t i = 0; i < ref->size(); ++i) {
        const RefEvent& want = (*ref)[i];
        const TraceEvent& got = doc.events[i];
        ASSERT_EQ(got.kind, want.kind) << "event " << i;
        EXPECT_EQ(got.tid, want.tid) << "event " << i;
        EXPECT_EQ(got.by, want.by) << "event " << i;
        EXPECT_EQ(got.t_ps, want.t_ps) << "event " << i;
        if (want.kind == EventKind::state_change) {
            EXPECT_EQ(got.from, want.from) << "event " << i;
            EXPECT_EQ(got.to, want.to) << "event " << i;
        }
    }

    // Thread defines survived (no synthetic-name fallback needed).
    for (const TraceEvent& e : doc.events) {
        if (e.tid >= 0) {
            EXPECT_NE(doc.thread(e.tid), nullptr) << "undefined tid " << e.tid;
        }
    }
}

TEST(Recorder, OfflineMetricsReproduceOnlineMetrics) {
    const ScenarioResult run = harness::run_scenario(traced_spec(11));
    ASSERT_TRUE(run.passed) << run.error;
    TraceDoc doc;
    std::string error;
    ASSERT_TRUE(parse_trace(run.trace_data, doc, &error)) << error;
    const Metrics offline = accumulate(doc);
    EXPECT_EQ(offline.to_json().dump(-1), run.metrics.to_json().dump(-1));
    EXPECT_GT(offline.context_switches, 0u);
    EXPECT_GT(offline.service_calls, 0u);
    EXPECT_GT(offline.service_latency.count, 0u);
}

TEST(Recorder, OverflowDropsNewestButKeepsStreamParseable) {
    ScenarioSpec spec = traced_spec(13);
    spec.trace.buffer_bytes = 512;  // force overflow quickly
    const ScenarioResult run = harness::run_scenario(spec);
    ASSERT_TRUE(run.passed) << run.error;
    ASSERT_TRUE(run.traced);
    EXPECT_GT(run.trace_dropped, 0u);

    TraceDoc doc;
    std::string error;
    ASSERT_TRUE(parse_trace(run.trace_data, doc, &error)) << error;
    ASSERT_TRUE(doc.has_footer);
    EXPECT_EQ(doc.dropped_records, run.trace_dropped);
    EXPECT_GT(doc.dropped_bytes, 0u);
    // The captured prefix (written events) is intact...
    EXPECT_EQ(doc.events.size(), run.trace_events);
    // ...and the footer still accounts for everything the run emitted.
    EXPECT_GT(doc.recorded_events, doc.events.size());

    // The derived metrics kept counting through the overflow: they see
    // more events than the truncated raw stream holds.
    EXPECT_EQ(run.metrics.events, doc.recorded_events);
}

TEST(Recorder, SerialAndParallelTracesAreByteIdentical) {
    std::vector<ScenarioSpec> specs;
    for (std::uint64_t s = 0; s < 8; ++s) {
        specs.push_back(traced_spec(s));
    }
    const BatchReport serial = ScenarioRunner(ScenarioRunner::Options{1}).run(specs);
    const BatchReport parallel =
        ScenarioRunner(ScenarioRunner::Options{4}).run(specs);
    ASSERT_TRUE(serial.all_passed());
    ASSERT_TRUE(parallel.all_passed());
    EXPECT_EQ(serial.traced(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        ASSERT_FALSE(serial.results[i].trace_data.empty());
        EXPECT_EQ(serial.results[i].trace_data, parallel.results[i].trace_data)
            << specs[i].name;
        EXPECT_EQ(serial.results[i].fingerprint, parallel.results[i].fingerprint);
    }
}

TEST(Recorder, UntracedRunStaysUntraced) {
    ScenarioSpec spec = traced_spec(3);
    spec.trace = harness::TraceConfig{};
    const ScenarioResult run = harness::run_scenario(spec);
    ASSERT_TRUE(run.passed) << run.error;
    EXPECT_FALSE(run.traced);
    EXPECT_TRUE(run.trace_data.empty());
    EXPECT_EQ(run.trace_events, 0u);
}

TEST(Recorder, AnnotationsAreScopedAndCaptured) {
    ScenarioSpec spec = traced_spec(17);
    auto inner = spec.workload;
    spec.workload = [inner](Simulation& sim, const ScenarioSpec& s) {
        inner(sim, s);
        // The recorder is attached before the workload builder runs, so
        // Recorder::find already resolves here (global-scope note).
        Recorder* rec = Recorder::find(sim.sim());
        ASSERT_NE(rec, nullptr);
        rec->annotate("before power-on");
    };
    const ScenarioResult run = harness::run_scenario(spec);
    ASSERT_TRUE(run.passed) << run.error;
    TraceDoc doc;
    std::string error;
    ASSERT_TRUE(parse_trace(run.trace_data, doc, &error)) << error;
    bool found = false;
    for (const TraceEvent& e : doc.events) {
        if (e.kind == EventKind::annotation) {
            EXPECT_EQ(e.text, "before power-on");
            EXPECT_EQ(e.tid, -1);  // global scope
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(BatchReport, TracedBatchReportsAggregateMetrics) {
    std::vector<ScenarioSpec> specs;
    specs.push_back(traced_spec(1));
    ScenarioSpec untraced = traced_spec(2);
    untraced.trace = harness::TraceConfig{};
    specs.push_back(untraced);
    const BatchReport report = ScenarioRunner(ScenarioRunner::Options{1}).run(specs);
    ASSERT_TRUE(report.all_passed());
    EXPECT_EQ(report.traced(), 1u);
    EXPECT_GT(report.aggregate_metrics().events, 0u);

    api::Json doc;
    std::string error;
    ASSERT_TRUE(api::Json::parse(report.to_json(), doc, &error)) << error;
    ASSERT_TRUE(doc.at("batch").has("trace"));
    EXPECT_EQ(doc.at("batch").at("trace").at("traced_runs").as_u64(), 1u);
    ASSERT_TRUE(doc.at("results").items()[0].has("trace"));
    EXPECT_FALSE(doc.at("results").items()[1].has("trace"));
}

TEST(Perfetto, ExportIsValidAndBalanced) {
    const ScenarioResult run = harness::run_scenario(traced_spec(23));
    ASSERT_TRUE(run.passed) << run.error;
    TraceDoc doc;
    std::string error;
    ASSERT_TRUE(parse_trace(run.trace_data, doc, &error)) << error;

    PerfettoExporter exporter;
    const std::string json = exporter.export_json(doc);
    api::Json parsed;
    ASSERT_TRUE(api::Json::parse(json, parsed, &error)) << error;
    const auto& events = parsed.at("traceEvents").items();
    ASSERT_FALSE(events.empty());

    // One thread_name metadata record per defined thread, B/E balanced
    // per track, and every flow start has a matching finish.
    std::size_t names = 0;
    std::size_t starts = 0;
    std::size_t finishes = 0;
    std::map<std::uint64_t, std::int64_t> depth;
    for (const api::Json& e : events) {
        const std::string ph = e.at("ph").as_string();
        if (ph == "M" && e.at("name").as_string() == "thread_name") {
            ++names;
        } else if (ph == "B") {
            ++depth[e.at("tid").as_u64()];
        } else if (ph == "E") {
            --depth[e.at("tid").as_u64()];
        } else if (ph == "s") {
            ++starts;
        } else if (ph == "f") {
            ++finishes;
        }
    }
    EXPECT_GE(names, doc.threads.size());
    EXPECT_EQ(starts, finishes);
    EXPECT_GT(starts, 0u);
    for (const auto& [tid, d] : depth) {
        EXPECT_EQ(d, 0) << "unbalanced B/E on track " << tid;
    }
}

}  // namespace
}  // namespace rtk::trace
