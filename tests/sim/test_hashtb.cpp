// SIM_HashTB tests -- the T-THREAD registry of the SIM_API library
// (paper §4): insert/lookup/collision/erase plus the transition journal.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

/// Creates real T-THREADs through SimApi (their constructor is private)
/// and exercises a standalone SimHashTB with them.
class HashTbTest : public ::testing::Test {
protected:
    TThread& make_thread(const std::string& name) {
        return api.SIM_CreateThread(name, ThreadKind::task, 5, [] {});
    }

    sysc::Kernel kernel;
    PriorityPreemptiveScheduler sched;
    SimApi api{kernel, sched};
    SimHashTB tb;
};

TEST_F(HashTbTest, InsertAndFind) {
    TThread& a = make_thread("a");
    TThread& b = make_thread("b");
    tb.insert(100, a);
    tb.insert(200, b);
    EXPECT_EQ(tb.size(), 2u);
    EXPECT_EQ(tb.find(100), &a);
    EXPECT_EQ(tb.find(200), &b);
    EXPECT_EQ(tb.find(300), nullptr);
}

TEST_F(HashTbTest, FindByName) {
    TThread& a = make_thread("worker");
    tb.insert(1, a);
    EXPECT_EQ(tb.find_by_name("worker"), &a);
    EXPECT_EQ(tb.find_by_name("nope"), nullptr);
}

TEST_F(HashTbTest, InsertStartsDormantWithEmptyHistory) {
    TThread& a = make_thread("a");
    tb.insert(7, a);
    const SimHashTB::Record* rec = tb.record(7);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->thread, &a);
    EXPECT_EQ(rec->state, ThreadState::dormant);
    EXPECT_EQ(rec->change_count, 0u);
    EXPECT_EQ(tb.record(8), nullptr);
}

TEST_F(HashTbTest, DuplicateIdCollisionIsFatal) {
    TThread& a = make_thread("a");
    TThread& b = make_thread("b");
    tb.insert(1, a);
    EXPECT_THROW(tb.insert(1, b), sysc::SimError);
}

TEST_F(HashTbTest, EraseRemovesRecord) {
    TThread& a = make_thread("a");
    tb.insert(1, a);
    tb.erase(1);
    EXPECT_EQ(tb.size(), 0u);
    EXPECT_EQ(tb.find(1), nullptr);
    EXPECT_EQ(tb.record(1), nullptr);
    tb.erase(1);  // erasing a missing id is a no-op
}

TEST_F(HashTbTest, EraseThenReinsertSameId) {
    TThread& a = make_thread("a");
    TThread& b = make_thread("b");
    tb.insert(1, a);
    tb.erase(1);
    tb.insert(1, b);
    EXPECT_EQ(tb.find(1), &b);
}

TEST_F(HashTbTest, UpdateTracksStateTimeAndCount) {
    TThread& a = make_thread("a");
    tb.insert(1, a);
    tb.update(1, ThreadState::ready, Time::us(10));
    tb.update(1, ThreadState::running, Time::us(25));
    const SimHashTB::Record* rec = tb.record(1);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->state, ThreadState::running);
    EXPECT_EQ(rec->last_change, Time::us(25));
    EXPECT_EQ(rec->change_count, 2u);
    EXPECT_EQ(tb.total_transitions(), 2u);
}

TEST_F(HashTbTest, UpdateUnknownIdIsFatal) {
    EXPECT_THROW(tb.update(42, ThreadState::ready, Time::zero()), sysc::SimError);
}

TEST_F(HashTbTest, JournalRecordsTransitionEdges) {
    TThread& a = make_thread("a");
    tb.insert(1, a);
    tb.update(1, ThreadState::ready, Time::us(1));
    tb.update(1, ThreadState::running, Time::us(2));
    ASSERT_EQ(tb.journal().size(), 2u);
    const auto& first = tb.journal().front();
    EXPECT_EQ(first.tid, 1);
    EXPECT_EQ(first.from, ThreadState::dormant);
    EXPECT_EQ(first.to, ThreadState::ready);
    EXPECT_EQ(first.at, Time::us(1));
    const auto& second = tb.journal().back();
    EXPECT_EQ(second.from, ThreadState::ready);
    EXPECT_EQ(second.to, ThreadState::running);
}

TEST_F(HashTbTest, JournalIsBounded) {
    TThread& a = make_thread("a");
    tb.insert(1, a);
    tb.set_journal_limit(4);
    for (int i = 0; i < 10; ++i) {
        tb.update(1, i % 2 ? ThreadState::ready : ThreadState::running,
                  Time::us(i));
    }
    EXPECT_EQ(tb.journal().size(), 4u);
    EXPECT_EQ(tb.total_transitions(), 10u);
    // Oldest entries dropped: the surviving window is the last 4 updates.
    EXPECT_EQ(tb.journal().front().at, Time::us(6));
    EXPECT_EQ(tb.journal().back().at, Time::us(9));
}

TEST_F(HashTbTest, ThreadsSortedById) {
    TThread& a = make_thread("a");
    TThread& b = make_thread("b");
    TThread& c = make_thread("c");
    // Insert in shuffled key order; threads() must come back sorted by id.
    tb.insert(30, c);
    tb.insert(10, a);
    tb.insert(20, b);
    // Registry ids (10/20/30) are independent of SimApi ids, so sort by
    // the TThread's own id, which SIM_CreateThread assigned in order.
    std::vector<TThread*> got = tb.threads();
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], &a);
    EXPECT_EQ(got[1], &b);
    EXPECT_EQ(got[2], &c);
}

TEST_F(HashTbTest, SimApiKeepsItsHashTableCurrent) {
    TThread& t = api.SIM_CreateThread("job", ThreadKind::task, 3,
                                      [this] { api.SIM_Wait(Time::ms(1), ExecContext::task); });
    const SimHashTB& live = api.hash_table();
    EXPECT_EQ(live.find(t.id()), &t);
    EXPECT_EQ(live.record(t.id())->state, ThreadState::dormant);
    api.SIM_StartThread(t);
    kernel.run();
    EXPECT_EQ(live.record(t.id())->state, ThreadState::dormant);  // cycle done
    EXPECT_GE(live.total_transitions(), 3u);  // ready -> running -> dormant
    const ThreadId id = t.id();  // SIM_DeleteThread destroys t
    api.SIM_DeleteThread(t);
    EXPECT_EQ(live.find(id), nullptr);
}

}  // namespace
}  // namespace rtk::sim
