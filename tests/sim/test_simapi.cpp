// SIM_API bookkeeping: hash table journal, interrupt stack, self(),
// misuse diagnostics.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

class SimApiTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    PriorityPreemptiveScheduler sched;
    SimApi api{k, sched};
};

TEST_F(SimApiTest, HashTableJournalRecordsTransitions) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(1), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    const auto& j = api.hash_table().journal();
    ASSERT_GE(j.size(), 3u);
    // dormant -> ready -> running -> dormant
    EXPECT_EQ(j[0].from, ThreadState::dormant);
    EXPECT_EQ(j[0].to, ThreadState::ready);
    EXPECT_EQ(j[1].to, ThreadState::running);
    EXPECT_EQ(j.back().to, ThreadState::dormant);
    EXPECT_EQ(api.hash_table().total_transitions(), j.size());
}

TEST_F(SimApiTest, JournalIsBounded) {
    api.SIM_CreateThread("t", ThreadKind::task, 5, [] {});
    // Direct journal-limit check without running thousands of cycles.
    auto& tb = const_cast<SimHashTB&>(api.hash_table());
    tb.set_journal_limit(10);
    for (int i = 0; i < 100; ++i) {
        tb.update(1, i % 2 == 0 ? ThreadState::ready : ThreadState::dormant,
                  Time::us(static_cast<std::uint64_t>(i)));
    }
    EXPECT_EQ(tb.journal().size(), 10u);
    EXPECT_EQ(tb.total_transitions(), 100u);
}

TEST_F(SimApiTest, RecordTracksLastChange) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(2), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    const auto* rec = api.hash_table().record(t.id());
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->state, ThreadState::dormant);
    EXPECT_EQ(rec->last_change, Time::ms(2));
    EXPECT_GE(rec->change_count, 3u);
}

TEST_F(SimApiTest, SelfResolvesInsideThread) {
    TThread* seen = nullptr;
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        seen = &api.self();
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(seen, &t);
}

TEST_F(SimApiTest, SelfOutsideThreadIsNull) {
    EXPECT_EQ(api.self_or_null(), nullptr);
    bool checked = false;
    k.spawn("plain", [&] {
        checked = (api.self_or_null() == nullptr);
    });
    k.run();
    EXPECT_TRUE(checked);
}

TEST_F(SimApiTest, WaitOutsideThreadIsFatal) {
    bool threw = false;
    k.spawn("plain", [&] {
        try {
            api.SIM_Wait(Time::ms(1), ExecContext::task);
        } catch (const sysc::SimError&) {
            threw = true;
        }
    });
    k.run();
    EXPECT_TRUE(threw);
}

TEST_F(SimApiTest, ExitServiceWithoutEnterIsFatal) {
    bool threw = false;
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        try {
            api.SIM_ExitService();
        } catch (const sysc::SimError&) {
            threw = true;
        }
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_TRUE(threw);
}

TEST_F(SimApiTest, InterruptStackStartsEmpty) {
    EXPECT_TRUE(api.interrupt_stack().empty());
    EXPECT_EQ(api.interrupt_stack().depth(), 0u);
    EXPECT_EQ(api.interrupt_stack().top(), nullptr);
    EXPECT_EQ(api.interrupt_stack().high_water_mark(), 0u);
}

TEST_F(SimApiTest, DispatchCostIsConsumedPerDispatch) {
    SimApi::Config cfg;
    cfg.dispatch_cost = Time::us(10);
    cfg.dispatch_energy_nj = 100.0;
    PriorityPreemptiveScheduler s2;
    SimApi api2{k, s2, cfg};
    TThread& t = api2.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api2.SIM_Wait(Time::ms(1), ExecContext::task);
    });
    api2.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().cet(ExecContext::service_call), Time::us(10));
    EXPECT_NEAR(t.token().cee_nj(ExecContext::service_call), 100.0, 1e-9);
}

TEST_F(SimApiTest, ZeroDurationWaitIsPreemptionPointOnly) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::zero(), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().cet(), Time::zero());
    EXPECT_EQ(k.now(), Time::zero());
}

TEST_F(SimApiTest, GanttCanBeDisabled) {
    SimApi::Config cfg;
    cfg.record_gantt = false;
    PriorityPreemptiveScheduler s2;
    SimApi api2{k, s2, cfg};
    TThread& t = api2.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api2.SIM_Wait(Time::ms(1), ExecContext::task);
    });
    api2.SIM_StartThread(t);
    k.run();
    EXPECT_TRUE(api2.gantt().segments().empty());
    EXPECT_TRUE(api2.gantt().markers().empty());
}

TEST_F(SimApiTest, ThreadsListSortedById) {
    api.SIM_CreateThread("a", ThreadKind::task, 5, [] {});
    api.SIM_CreateThread("b", ThreadKind::task, 5, [] {});
    api.SIM_CreateThread("c", ThreadKind::task, 5, [] {});
    auto ts = api.threads();
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_LT(ts[0]->id(), ts[1]->id());
    EXPECT_LT(ts[1]->id(), ts[2]->id());
}

TEST_F(SimApiTest, TypeToStringCoverage) {
    EXPECT_STREQ(to_string(RunEvent::startup), "Es");
    EXPECT_STREQ(to_string(RunEvent::continue_run), "Ec");
    EXPECT_STREQ(to_string(RunEvent::return_from_preemption), "Ex");
    EXPECT_STREQ(to_string(RunEvent::return_from_interrupt), "Ei");
    EXPECT_STREQ(to_string(RunEvent::sleep_event), "Ew");
    EXPECT_STREQ(to_string(ThreadState::waiting_suspended), "WAITING-SUSPENDED");
    EXPECT_STREQ(to_string(ThreadKind::cyclic_handler), "cyclic");
    EXPECT_STREQ(to_string(ExecContext::bfm_access), "bfm");
    EXPECT_EQ(gantt_glyph(ExecContext::task), '#');
    EXPECT_EQ(gantt_glyph(ExecContext::service_call), 'o');
}

}  // namespace
}  // namespace rtk::sim
