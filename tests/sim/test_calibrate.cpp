// Calibrator tests -- the paper's future-work cross-profiling path.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

TEST(Calibrator, NoSamplesMeansIdentity) {
    Calibrator c;
    EXPECT_DOUBLE_EQ(c.time_scale(ExecContext::task), 1.0);
    EXPECT_DOUBLE_EQ(c.energy_scale(ExecContext::task), 1.0);
    EXPECT_EQ(c.time_samples(ExecContext::task), 0u);
}

TEST(Calibrator, ExactScaleRecovered) {
    // Reference platform is consistently 1.5x slower than the model.
    Calibrator c;
    for (int i = 1; i <= 10; ++i) {
        const auto modeled = Time::us(static_cast<std::uint64_t>(100 * i));
        c.add_time_sample(ExecContext::task, modeled, modeled * 3 / 2);
    }
    EXPECT_NEAR(c.time_scale(ExecContext::task), 1.5, 1e-9);
    EXPECT_NEAR(c.time_error_before(ExecContext::task), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(c.time_error_after(ExecContext::task), 0.0, 1e-9);
}

TEST(Calibrator, NoisyScaleIsLeastSquares) {
    Calibrator c;
    // Reference = 2x modeled +- noise; fit should land close to 2.
    const double noise[] = {0.95, 1.05, 0.9, 1.1, 1.0};
    for (int i = 0; i < 5; ++i) {
        const double m = 100.0 * (i + 1);
        c.add_time_sample(ExecContext::service_call,
                          Time::ps(static_cast<std::uint64_t>(m * 1e6)),
                          Time::ps(static_cast<std::uint64_t>(m * 2.0 * noise[i] * 1e6)));
    }
    EXPECT_NEAR(c.time_scale(ExecContext::service_call), 2.0, 0.1);
    // Residual error after calibration is below the raw error.
    EXPECT_LT(c.time_error_after(ExecContext::service_call),
              c.time_error_before(ExecContext::service_call));
}

TEST(Calibrator, PerContextIndependence) {
    Calibrator c;
    c.add_time_sample(ExecContext::task, Time::us(100), Time::us(200));
    c.add_time_sample(ExecContext::handler, Time::us(100), Time::us(50));
    EXPECT_NEAR(c.time_scale(ExecContext::task), 2.0, 1e-9);
    EXPECT_NEAR(c.time_scale(ExecContext::handler), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(c.time_scale(ExecContext::bfm_access), 1.0);
}

TEST(Calibrator, DegenerateSamplesIgnored) {
    Calibrator c;
    c.add_time_sample(ExecContext::task, Time::zero(), Time::us(10));
    c.add_time_sample(ExecContext::task, Time::us(10), Time::zero());
    EXPECT_EQ(c.time_samples(ExecContext::task), 0u);
    EXPECT_DOUBLE_EQ(c.time_scale(ExecContext::task), 1.0);
}

TEST(Calibrator, ApplyRewritesCostTable) {
    Calibrator c;
    c.add_time_sample(ExecContext::task, Time::us(100), Time::us(300));
    c.add_energy_sample(ExecContext::task, 100.0, 50.0);
    CostTable table;
    const auto before = table.at(ExecContext::task);
    c.apply(table);
    const auto& after = table.at(ExecContext::task);
    EXPECT_EQ(after.time_per_unit, before.time_per_unit * 3);
    EXPECT_NEAR(after.energy_per_unit_nj, before.energy_per_unit_nj * 0.5, 1e-9);
    // Untouched contexts stay identical.
    EXPECT_EQ(table.at(ExecContext::handler).time_per_unit,
              CostTable{}.at(ExecContext::handler).time_per_unit);
}

TEST(Calibrator, ReportNamesCalibratedContexts) {
    Calibrator c;
    c.add_time_sample(ExecContext::bfm_access, Time::us(10), Time::us(20));
    const std::string rep = c.report();
    EXPECT_NE(rep.find("bfm"), std::string::npos);
    EXPECT_NE(rep.find("x2.000"), std::string::npos);
}

TEST(Calibrator, ResetClears) {
    Calibrator c;
    c.add_time_sample(ExecContext::task, Time::us(1), Time::us(2));
    c.reset();
    EXPECT_EQ(c.time_samples(ExecContext::task), 0u);
    EXPECT_DOUBLE_EQ(c.time_scale(ExecContext::task), 1.0);
}

TEST(Calibrator, EndToEndAccuracyImprovement) {
    // "Reference platform": same workload with a cost table whose task
    // context is 1.8x slower. Calibrate the fast model against it and
    // check the simulated CET converges to the reference.
    auto run_workload = [](const CostTable& costs) {
        sysc::Kernel k;
        PriorityPreemptiveScheduler sched;
        SimApi api{k, sched};
        api.costs() = costs;
        auto& t = api.SIM_CreateThread("w", ThreadKind::task, 5, [&api] {
            api.SIM_WaitUnits(5000, ExecContext::task);
        });
        api.SIM_StartThread(t);
        k.run();
        return t.token().cet();
    };

    CostTable model;                    // default: 1 us/unit
    CostTable reference = model;
    reference.at(ExecContext::task).time_per_unit = sysc::Time::ps(1'800'000);

    const Time modeled = run_workload(model);
    const Time ref = run_workload(reference);
    EXPECT_LT(modeled, ref);

    Calibrator c;
    c.add_time_sample(ExecContext::task, modeled, ref);
    c.apply(model);
    const Time calibrated = run_workload(model);
    // Within 0.1% of the reference after one calibration round.
    const double err = std::abs(calibrated.to_sec() - ref.to_sec()) / ref.to_sec();
    EXPECT_LT(err, 1e-3);
}

}  // namespace
}  // namespace rtk::sim
