// T-THREAD process-model tests: Petri-net semantics of Fig 2 -- firing
// vector, token CET/CEE accumulation, cyclic execution.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

class TThreadTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    PriorityPreemptiveScheduler sched;
    SimApi api{k, sched};
};

TEST_F(TThreadTest, CreationRegistersInHashTable) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [] {});
    EXPECT_EQ(t.state(), ThreadState::dormant);
    EXPECT_EQ(api.SIM_Find(t.id()), &t);
    EXPECT_EQ(api.SIM_FindByName("t"), &t);
    EXPECT_EQ(api.hash_table().size(), 1u);
}

TEST_F(TThreadTest, StartupFiresEs) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [] {});
    api.SIM_StartThread(t);
    k.run_until(Time::ms(1));
    EXPECT_EQ(t.token().firings(RunEvent::startup), 1u);
    EXPECT_EQ(t.state(), ThreadState::dormant);  // entry returned
    EXPECT_EQ(t.token().cycles(), 1u);
}

TEST_F(TThreadTest, CyclicObjectSupportsRestarts) {
    int runs = 0;
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] { ++runs; });
    for (int i = 0; i < 3; ++i) {
        api.SIM_StartThread(t);
        k.run_for(Time::ms(1));
    }
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(t.token().cycles(), 3u);
    EXPECT_EQ(t.token().firings(RunEvent::startup), 3u);
}

TEST_F(TThreadTest, SimWaitConsumesTimeAndEnergy) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(2), 1000.0, ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().cet(), Time::ms(2));
    EXPECT_NEAR(t.token().cee_nj(), 1000.0, 1e-6);
    EXPECT_EQ(t.token().cet(ExecContext::task), Time::ms(2));
    EXPECT_EQ(t.token().cet(ExecContext::handler), Time::zero());
}

TEST_F(TThreadTest, EcFiresPerContinuedQuantum) {
    // 3.5 ms of work with a 1 ms quantum: slices at 1,2,3,3.5 -> 3 continues.
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(3) + Time::us(500), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().firings(RunEvent::continue_run), 3u);
}

TEST_F(TThreadTest, CostTableDrivesWaitUnits) {
    api.costs().set(ExecContext::task, {Time::us(2), 10.0});
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_WaitUnits(100, ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().cet(), Time::us(200));
    EXPECT_NEAR(t.token().cee_nj(), 1000.0, 1e-6);
}

TEST_F(TThreadTest, SleepAndWakeupFireEw) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Sleep();
        api.SIM_Wait(Time::ms(1), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(1));
    EXPECT_EQ(t.state(), ThreadState::waiting);
    api.SIM_WakeUp(t);
    k.run();
    EXPECT_EQ(t.token().firings(RunEvent::sleep_event), 1u);
    EXPECT_EQ(t.state(), ThreadState::dormant);
}

TEST_F(TThreadTest, ExitEndsCycleEarly) {
    bool after_exit = false;
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Exit();
        after_exit = true;  // unreachable
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_FALSE(after_exit);
    EXPECT_EQ(t.token().cycles(), 1u);
}

TEST_F(TThreadTest, TerminateUnwindsAndRearms) {
    bool raii_ran = false;
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        struct S {
            bool* f;
            ~S() { *f = true; }
        } s{&raii_ran};
        api.SIM_Sleep();
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(1));
    EXPECT_EQ(t.state(), ThreadState::waiting);
    api.SIM_Terminate(t);
    EXPECT_TRUE(raii_ran);
    EXPECT_EQ(t.state(), ThreadState::dormant);
    // The thread must be restartable after termination.
    api.SIM_StartThread(t);
    k.run_for(Time::ms(1));
    EXPECT_EQ(t.token().firings(RunEvent::startup), 2u);
    // Unwind the second cycle while this frame (which its S references)
    // is still alive; leaving it to fixture teardown would run ~S after
    // raii_ran's frame is gone (a use-after-return ASan catches).
    api.SIM_Terminate(t);
}

TEST_F(TThreadTest, StartNonDormantIsFatal) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Sleep();
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(1));
    EXPECT_THROW(api.SIM_StartThread(t), sysc::SimError);
}

TEST_F(TThreadTest, DeleteRequiresDormant) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Sleep();
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(1));
    EXPECT_THROW(api.SIM_DeleteThread(t), sysc::SimError);
    api.SIM_Terminate(t);
    const ThreadId id = t.id();
    api.SIM_DeleteThread(t);
    EXPECT_EQ(api.SIM_Find(id), nullptr);
}

TEST_F(TThreadTest, UserDataRoundTrips) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [] {});
    int payload = 0;
    t.set_user_data(&payload);
    EXPECT_EQ(t.user_data(), &payload);
}

TEST_F(TThreadTest, TotalFiringsSumsVector) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(2), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().total_firings(),
              t.token().firings(RunEvent::startup) +
                  t.token().firings(RunEvent::continue_run));
}

// Parameterized: CET must equal the requested duration for any mix of
// quantum-aligned and unaligned waits.
class WaitSweep : public TThreadTest,
                  public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(WaitSweep, CetMatchesRequestedDuration) {
    const Time dur = Time::us(GetParam());
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(dur, ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().cet(), dur);
}

INSTANTIATE_TEST_SUITE_P(Durations, WaitSweep,
                         ::testing::Values(1, 10, 999, 1000, 1001, 2500, 10000,
                                           12345, 100000));

}  // namespace
}  // namespace rtk::sim
