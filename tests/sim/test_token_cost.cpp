// Unit tests for the Token (Fig 2 accounting object) and the ETM/EEM
// cost table.
#include <gtest/gtest.h>

#include "sim/sim.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

TEST(Token, StartsEmpty) {
    Token t;
    EXPECT_EQ(t.cet(), Time::zero());
    EXPECT_DOUBLE_EQ(t.cee_nj(), 0.0);
    EXPECT_EQ(t.cycles(), 0u);
    EXPECT_EQ(t.total_firings(), 0u);
}

TEST(Token, ConsumeAccumulatesPerContext) {
    Token t;
    t.consume(ExecContext::task, Time::ms(2), 100.0);
    t.consume(ExecContext::task, Time::ms(1), 50.0);
    t.consume(ExecContext::bfm_access, Time::us(500), 25.0);
    EXPECT_EQ(t.cet(), Time::us(3500));
    EXPECT_EQ(t.cet(ExecContext::task), Time::ms(3));
    EXPECT_EQ(t.cet(ExecContext::bfm_access), Time::us(500));
    EXPECT_EQ(t.cet(ExecContext::handler), Time::zero());
    EXPECT_NEAR(t.cee_nj(), 175.0, 1e-9);
    EXPECT_NEAR(t.cee_nj(ExecContext::task), 150.0, 1e-9);
    EXPECT_NEAR(t.cee_mj(), 175.0 * 1e-6, 1e-12);
}

TEST(Token, FiringVectorPerEvent) {
    Token t;
    t.fire(RunEvent::startup);
    t.fire(RunEvent::continue_run);
    t.fire(RunEvent::continue_run);
    t.fire(RunEvent::sleep_event);
    EXPECT_EQ(t.firings(RunEvent::startup), 1u);
    EXPECT_EQ(t.firings(RunEvent::continue_run), 2u);
    EXPECT_EQ(t.firings(RunEvent::sleep_event), 1u);
    EXPECT_EQ(t.firings(RunEvent::return_from_interrupt), 0u);
    EXPECT_EQ(t.total_firings(), 4u);
}

TEST(Token, ResetClearsEverything) {
    Token t;
    t.consume(ExecContext::task, Time::ms(1), 10.0);
    t.fire(RunEvent::startup);
    t.complete_cycle();
    t.reset();
    EXPECT_EQ(t.cet(), Time::zero());
    EXPECT_EQ(t.cycles(), 0u);
    EXPECT_EQ(t.total_firings(), 0u);
}

TEST(CostTable, DefaultsModelAn8051) {
    CostTable c;
    EXPECT_EQ(c.at(ExecContext::task).time_per_unit, Time::us(1));
    EXPECT_GT(c.at(ExecContext::bfm_access).energy_per_unit_nj,
              c.at(ExecContext::task).energy_per_unit_nj);  // bus costs more
    EXPECT_LT(c.at(ExecContext::service_call).energy_per_unit_nj,
              c.at(ExecContext::task).energy_per_unit_nj);
}

TEST(CostTable, UnitConversions) {
    CostModel m{Time::us(2), 10.0};
    EXPECT_EQ(m.time(100), Time::us(200));
    EXPECT_NEAR(m.energy_nj(100), 1000.0, 1e-9);
}

TEST(CostTable, SetAndScale) {
    CostTable c;
    c.set(ExecContext::handler, {Time::ns(500), 7.0});
    EXPECT_EQ(c.at(ExecContext::handler).time_per_unit, Time::ns(500));
    c.scale_energy(2.0);
    EXPECT_NEAR(c.at(ExecContext::handler).energy_per_unit_nj, 14.0, 1e-9);
    EXPECT_NEAR(c.at(ExecContext::task).energy_per_unit_nj, 100.0, 1e-9);
}

TEST(SimStack, PushPopAndHighWater) {
    SimStack s;
    EXPECT_TRUE(s.empty());
    // SimStack stores pointers; any distinct addresses suffice here.
    TThread* a = reinterpret_cast<TThread*>(0x10);
    TThread* b = reinterpret_cast<TThread*>(0x20);
    s.push(*a);
    s.push(*b);
    EXPECT_EQ(s.depth(), 2u);
    EXPECT_EQ(s.top(), b);
    EXPECT_EQ(&s.pop(), b);
    EXPECT_EQ(&s.pop(), a);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.high_water_mark(), 2u);
}

}  // namespace
}  // namespace rtk::sim
