// Multi-observer fan-out: registration order and the re-entrancy rules
// (add/remove during dispatch) the fault-injection engine depends on --
// an oracle, an injector and a trace recorder all watch one SimApi at
// once.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

/// Appends "<tag>:<event>" to a shared log on every callback.
class LoggingObserver : public SimObserver {
public:
    LoggingObserver(std::string tag, std::vector<std::string>& log)
        : tag_(std::move(tag)), log_(&log) {}

    void on_state_change(const TThread&, ThreadState, ThreadState,
                         Time) override {
        note("state");
    }
    void on_dispatch(const TThread&, Time) override { note("dispatch"); }
    void on_preemption(const TThread&, Time) override { note("preempt"); }
    void on_interrupt_enter(const TThread&, Time) override { note("irq+"); }
    void on_interrupt_return(const TThread&, Time) override { note("irq-"); }
    void on_wakeup(const TThread&, const TThread*, Time) override {
        note("wakeup");
    }
    void on_idle(Time) override { note("idle"); }
    void on_service_enter(const TThread&, Time) override { note("svc+"); }
    void on_service_exit(const TThread&, Time) override { note("svc-"); }

    int events = 0;

protected:
    virtual void note(const char* what) {
        ++events;
        log_->push_back(tag_ + ":" + what);
    }

    std::string tag_;
    std::vector<std::string>* log_;
};

class ObserverTest : public ::testing::Test {
protected:
    /// One task that runs briefly, so every observer sees a dispatch and
    /// the state changes around it.
    void run_workload() {
        TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
            api.SIM_Wait(Time::ms(1), ExecContext::task);
        });
        api.SIM_StartThread(t);
        k.run();
    }

    sysc::Kernel k;
    PriorityPreemptiveScheduler sched;
    SimApi api{k, sched};
    std::vector<std::string> log;
};

TEST_F(ObserverTest, FanOutDeliversInRegistrationOrder) {
    LoggingObserver a("a", log), b("b", log), c("c", log);
    api.add_observer(&a);
    api.add_observer(&b);
    api.add_observer(&c);
    EXPECT_EQ(api.observer_count(), 3u);

    run_workload();

    ASSERT_GT(a.events, 0);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(b.events, c.events);
    // Every event reaches a, then b, then c before the next event starts.
    ASSERT_EQ(log.size(), static_cast<std::size_t>(3 * a.events));
    for (std::size_t i = 0; i < log.size(); i += 3) {
        const std::string ev = log[i].substr(2);
        EXPECT_EQ(log[i], "a:" + ev);
        EXPECT_EQ(log[i + 1], "b:" + ev);
        EXPECT_EQ(log[i + 2], "c:" + ev);
    }
}

TEST_F(ObserverTest, DuplicateRegistrationIsIgnored) {
    LoggingObserver a("a", log);
    api.add_observer(&a);
    api.add_observer(&a);
    EXPECT_EQ(api.observer_count(), 1u);

    run_workload();

    const std::size_t once = log.size();
    ASSERT_GT(once, 0u);
    EXPECT_EQ(static_cast<std::size_t>(a.events), once);
}

TEST_F(ObserverTest, RemoveStopsDelivery) {
    LoggingObserver a("a", log), b("b", log);
    api.add_observer(&a);
    api.add_observer(&b);
    api.remove_observer(&a);
    EXPECT_EQ(api.observer_count(), 1u);

    run_workload();

    EXPECT_EQ(a.events, 0);
    EXPECT_GT(b.events, 0);
}

/// Unsubscribes itself (and optionally a peer) from inside a callback.
class SelfRemovingObserver : public LoggingObserver {
public:
    SelfRemovingObserver(std::string tag, std::vector<std::string>& log,
                         SimApi& api, int after)
        : LoggingObserver(std::move(tag), log), api_(&api), after_(after) {}

    SimObserver* also_remove = nullptr;

protected:
    void note(const char* what) override {
        LoggingObserver::note(what);
        if (events == after_) {
            api_->remove_observer(this);
            if (also_remove != nullptr) {
                api_->remove_observer(also_remove);
            }
        }
    }

private:
    SimApi* api_;
    int after_;
};

TEST_F(ObserverTest, UnsubscribeDuringDispatchReceivesNothingFurther) {
    SelfRemovingObserver a("a", log, api, /*after=*/2);
    LoggingObserver b("b", log);
    api.add_observer(&a);
    api.add_observer(&b);

    run_workload();

    EXPECT_EQ(a.events, 2);       // exactly up to its own removal
    EXPECT_GT(b.events, a.events);  // the survivor saw the whole run
    EXPECT_EQ(api.observer_count(), 1u);
}

TEST_F(ObserverTest, RemovingALaterObserverMidDispatchSkipsItImmediately) {
    SelfRemovingObserver a("a", log, api, /*after=*/1);
    LoggingObserver b("b", log);
    a.also_remove = &b;
    api.add_observer(&a);
    api.add_observer(&b);

    run_workload();

    // a removed b from inside the very first event's dispatch, before
    // the fan-out loop reached b: b never hears anything.
    EXPECT_EQ(a.events, 1);
    EXPECT_EQ(b.events, 0);
    EXPECT_EQ(api.observer_count(), 0u);
}

/// Registers a peer from inside a callback.
class AddingObserver : public LoggingObserver {
public:
    AddingObserver(std::string tag, std::vector<std::string>& log, SimApi& api,
                   SimObserver& peer)
        : LoggingObserver(std::move(tag), log), api_(&api), peer_(&peer) {}

protected:
    void note(const char* what) override {
        LoggingObserver::note(what);
        if (events == 1) {
            api_->add_observer(peer_);
        }
    }

private:
    SimApi* api_;
    SimObserver* peer_;
};

TEST_F(ObserverTest, AddDuringDispatchStartsAtTheNextEvent) {
    LoggingObserver late("l", log);
    AddingObserver a("a", log, api, late);
    api.add_observer(&a);

    run_workload();

    ASSERT_GT(a.events, 1);
    // The late observer missed exactly the event that registered it.
    EXPECT_EQ(late.events, a.events - 1);
}

TEST_F(ObserverTest, ServiceSectionEventsReportOutermostBoundariesOnly) {
    LoggingObserver a("a", log);
    api.add_observer(&a);

    TThread& t = api.SIM_CreateThread("svc", ThreadKind::task, 5, [&] {
        api.SIM_EnterService();
        api.SIM_EnterService();  // nested: must not re-report
        api.SIM_ExitService();
        api.SIM_ExitService();
        api.SIM_Wait(Time::ms(1), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();

    std::size_t enters = 0, exits = 0;
    for (const std::string& line : log) {
        enters += line == "a:svc+";
        exits += line == "a:svc-";
    }
    EXPECT_EQ(enters, 1u);
    EXPECT_EQ(exits, 1u);
    // The exit lands before any event the deferred preemption check emits.
    const auto en = std::find(log.begin(), log.end(), "a:svc+");
    const auto ex = std::find(log.begin(), log.end(), "a:svc-");
    ASSERT_NE(en, log.end());
    ASSERT_NE(ex, log.end());
    EXPECT_LT(en, ex);
}

TEST_F(ObserverTest, WakeupReportsTheWakingThread) {
    const TThread* woken = nullptr;
    const TThread* waker = nullptr;

    class WakeObserver final : public SimObserver {
    public:
        const TThread** woken;
        const TThread** waker;
        void on_wakeup(const TThread& t, const TThread* by, Time) override {
            *woken = &t;
            *waker = by;
        }
    } obs;
    obs.woken = &woken;
    obs.waker = &waker;
    api.add_observer(&obs);

    TThread& sleeper = api.SIM_CreateThread("sleeper", ThreadKind::task, 5, [&] {
        api.SIM_Sleep();
    });
    TThread& poker = api.SIM_CreateThread("poker", ThreadKind::task, 6, [&] {
        api.SIM_Wait(Time::ms(1), ExecContext::task);
        api.SIM_WakeUp(sleeper);
    });
    api.SIM_StartThread(sleeper);
    api.SIM_StartThread(poker);
    k.run();

    ASSERT_NE(woken, nullptr);
    EXPECT_EQ(woken, &sleeper);
    EXPECT_EQ(waker, &poker);
}

}  // namespace
}  // namespace rtk::sim
