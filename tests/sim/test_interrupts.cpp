// Interrupt semantics: delivery at preemption points, SIM_Stack nesting,
// delayed dispatching, tail-chaining, pending-activation latching.
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

class InterruptTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    PriorityPreemptiveScheduler sched;
    SimApi api{k, sched};

    TThread& make_isr(const std::string& name, Priority prio, TThread::Entry body) {
        return api.SIM_CreateThread(name, ThreadKind::interrupt_handler, prio,
                                    std::move(body));
    }
};

TEST_F(InterruptTest, IdleCpuRunsIsrImmediately) {
    Time ran_at;
    TThread& isr = make_isr("isr", -10, [&] { ran_at = sysc::now(); });
    k.spawn("driver", [&] {
        sysc::wait(Time::ms(2) + Time::us(300));
        api.SIM_RaiseInterrupt(isr);
    });
    k.run();
    EXPECT_EQ(ran_at, Time::ms(2) + Time::us(300));  // no quantum wait on idle
    EXPECT_EQ(isr.token().firings(RunEvent::startup), 1u);
}

TEST_F(InterruptTest, RunningTaskInterruptedAtQuantumBoundary) {
    Time isr_at;
    TThread& task = api.SIM_CreateThread("task", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(5), ExecContext::task);
    });
    TThread& isr = make_isr("isr", -10, [&] {
        isr_at = sysc::now();
        api.SIM_Wait(Time::us(100), ExecContext::handler);
    });
    api.SIM_StartThread(task);
    k.spawn("driver", [&] {
        sysc::wait(Time::ms(1) + Time::us(500));
        api.SIM_RaiseInterrupt(isr);
    });
    k.run();
    EXPECT_EQ(isr_at, Time::ms(2));  // next boundary after 1.5 ms
    EXPECT_EQ(task.times_interrupted(), 1u);
    EXPECT_EQ(task.token().firings(RunEvent::return_from_interrupt), 1u);
    // Task still completes its full 5 ms of work.
    EXPECT_EQ(task.token().cet(), Time::ms(5));
}

TEST_F(InterruptTest, NestedInterruptsStackAndReturnInOrder) {
    std::vector<std::string> log;
    TThread& lo_isr = make_isr("lo_isr", -10, [&] {
        log.push_back("lo_enter");
        api.SIM_Wait(Time::ms(2), ExecContext::handler);
        log.push_back("lo_exit");
    });
    TThread& hi_isr = make_isr("hi_isr", -20, [&] {
        log.push_back("hi_enter");
        api.SIM_Wait(Time::us(200), ExecContext::handler);
        log.push_back("hi_exit");
    });
    TThread& task = api.SIM_CreateThread("task", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(6), ExecContext::task);
    });
    api.SIM_StartThread(task);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(500));
        api.SIM_RaiseInterrupt(lo_isr);  // delivered at 1 ms
        sysc::wait(Time::ms(1));         // now 1.5 ms: lo_isr running
        api.SIM_RaiseInterrupt(hi_isr);  // nests at lo's next quantum point
    });
    k.run();
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0], "lo_enter");
    EXPECT_EQ(log[1], "hi_enter");
    EXPECT_EQ(log[2], "hi_exit");
    EXPECT_EQ(log[3], "lo_exit");
    EXPECT_EQ(api.interrupt_stack().high_water_mark(), 2u);
    EXPECT_EQ(lo_isr.times_interrupted(), 1u);
}

TEST_F(InterruptTest, LowerPriorityIrqDoesNotNest) {
    std::vector<std::string> log;
    TThread& hi_isr = make_isr("hi_isr", -20, [&] {
        log.push_back("hi_enter");
        api.SIM_Wait(Time::ms(2), ExecContext::handler);
        log.push_back("hi_exit");
    });
    TThread& lo_isr = make_isr("lo_isr", -10, [&] {
        log.push_back("lo");
    });
    k.spawn("driver", [&] {
        api.SIM_RaiseInterrupt(hi_isr);
        sysc::wait(Time::us(500));
        api.SIM_RaiseInterrupt(lo_isr);  // must wait for hi to finish
    });
    k.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[1], "hi_exit");
    EXPECT_EQ(log[2], "lo");
}

TEST_F(InterruptTest, DelayedDispatchingPostponesPreemption) {
    // ISR wakes a high-priority task; the switch happens only after the
    // handler returns (paper footnote 1).
    Time hi_started;
    Time isr_done;
    TThread& lo = api.SIM_CreateThread("lo", ThreadKind::task, 10, [&] {
        api.SIM_Wait(Time::ms(5), ExecContext::task);
    });
    TThread& hi = api.SIM_CreateThread("hi", ThreadKind::task, 1, [&] {
        hi_started = sysc::now();
    });
    TThread& isr = make_isr("isr", -10, [&] {
        api.SIM_Wait(Time::us(400), ExecContext::handler);
        hi.sleep_event();  // no-op observation
        api.SIM_StartThread(hi);
        api.SIM_Wait(Time::us(300), ExecContext::handler);
        isr_done = sysc::now();
    });
    api.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(500));
        api.SIM_RaiseInterrupt(isr);
    });
    k.run();
    // ISR runs 1 ms..1.7 ms; hi must start exactly at handler return.
    EXPECT_EQ(isr_done, Time::ms(1) + Time::us(700));
    EXPECT_EQ(hi_started, isr_done);
    EXPECT_EQ(lo.preemption_count(), 1u);
}

TEST_F(InterruptTest, PendingActivationLatchedWhileActive) {
    int runs = 0;
    TThread& isr = make_isr("isr", -10, [&] {
        ++runs;
        api.SIM_Wait(Time::ms(1), ExecContext::handler);
    });
    k.spawn("driver", [&] {
        api.SIM_RaiseInterrupt(isr);
        sysc::wait(Time::us(100));
        api.SIM_RaiseInterrupt(isr);  // latched (pending bit)
        api.SIM_RaiseInterrupt(isr);  // overrun
    });
    k.run();
    EXPECT_EQ(runs, 2);  // original + one latched activation
    EXPECT_EQ(isr.activation_overruns(), 1u);
}

TEST_F(InterruptTest, TailChainingRunsPendingBeforeReturn) {
    std::vector<std::string> log;
    TThread& a = make_isr("a", -10, [&] {
        log.push_back("a");
        api.SIM_Wait(Time::ms(1), ExecContext::handler);
    });
    TThread& b = make_isr("b", -11, [&] { log.push_back("b"); });
    TThread& task = api.SIM_CreateThread("task", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(4), ExecContext::task);
        log.push_back("task_done");
    });
    api.SIM_StartThread(task);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(500));
        api.SIM_RaiseInterrupt(a);
        sysc::wait(Time::ms(1));  // while a runs (1..2ms), raise b (lower prio number = higher)
        api.SIM_RaiseInterrupt(b);
    });
    k.run();
    // b nests into a (priority -11 < -10).
    ASSERT_GE(log.size(), 3u);
    EXPECT_EQ(log[0], "a");
    EXPECT_EQ(log[1], "b");
    EXPECT_EQ(log.back(), "task_done");
}

TEST_F(InterruptTest, HandlerCannotSleep) {
    TThread& isr = make_isr("isr", -10, [&] { api.SIM_Sleep(); });
    k.spawn("driver", [&] { api.SIM_RaiseInterrupt(isr); });
    EXPECT_THROW(k.run(), sysc::SimError);
}

TEST_F(InterruptTest, RaiseOnTaskThreadIsFatal) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [] {});
    EXPECT_THROW(api.SIM_RaiseInterrupt(t), sysc::SimError);
}

TEST_F(InterruptTest, InterruptDuringServiceCallWaitsForExit) {
    Time isr_at;
    TThread& task = api.SIM_CreateThread("task", ThreadKind::task, 5, [&] {
        SimApi::ServiceGuard svc(api);
        api.SIM_Wait(Time::ms(3), ExecContext::service_call);
    });
    TThread& isr = make_isr("isr", -10, [&] { isr_at = sysc::now(); });
    api.SIM_StartThread(task);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(100));
        api.SIM_RaiseInterrupt(isr);
    });
    k.run();
    EXPECT_EQ(isr_at, Time::ms(3));  // service call atomicity
}

TEST_F(InterruptTest, InterruptCountersTrack) {
    TThread& isr = make_isr("isr", -10, [] {});
    k.spawn("driver", [&] {
        for (int i = 0; i < 3; ++i) {
            api.SIM_RaiseInterrupt(isr);
            sysc::wait(Time::ms(1));
        }
    });
    k.run();
    EXPECT_EQ(api.total_interrupt_deliveries(), 3u);
    EXPECT_EQ(isr.token().cycles(), 3u);
}

}  // namespace
}  // namespace rtk::sim
