// Statistics and battery-model tests (the Fig 7 data source).
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

TEST(BatteryModel, CapacityConversion) {
    BatteryModel b(10.0);  // 10 Wh = 36 kJ
    EXPECT_DOUBLE_EQ(b.capacity_j(), 36000.0);
}

TEST(BatteryModel, LevelDrainsWithEnergy) {
    BatteryModel b(10.0);
    EXPECT_DOUBLE_EQ(b.level(0.0), 1.0);
    // Half the capacity in nJ:
    const double half_nj = 18000.0 * 1e9;
    EXPECT_NEAR(b.level(half_nj), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(b.level(1e30), 0.0);  // clamps at empty
}

TEST(BatteryModel, ProjectedLifespan) {
    BatteryModel b(10.0);
    // 1 J consumed per simulated second -> 36000 s lifespan.
    const double cee_nj = 1e9;
    const Time life = b.projected_lifespan(cee_nj, Time::sec(1));
    EXPECT_NEAR(life.to_sec(), 36000.0, 1.0);
}

TEST(BatteryModel, ZeroConsumptionMeansInfiniteLife) {
    BatteryModel b(10.0);
    EXPECT_EQ(b.projected_lifespan(0.0, Time::sec(1)), Time::max());
}

TEST(BatteryModel, StatusBar) {
    BatteryModel b(10.0);
    const std::string full = b.status_bar(0.0, 10);
    EXPECT_NE(full.find("##########"), std::string::npos);
    EXPECT_NE(full.find("100%"), std::string::npos);
    const std::string half = b.status_bar(18000.0 * 1e9, 10);
    EXPECT_NE(half.find("#####....."), std::string::npos);
}

class StatsTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    PriorityPreemptiveScheduler sched;
    SimApi api{k, sched};
};

TEST_F(StatsTest, CollectAggregatesThreads) {
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(3), 300.0, ExecContext::task);
    });
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 6, [&] {
        api.SIM_Wait(Time::ms(1), 100.0, ExecContext::task);
    });
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    k.run_until(Time::ms(10));
    SystemStats s = collect_stats(api);
    EXPECT_EQ(s.elapsed, Time::ms(10));
    EXPECT_EQ(s.total_cet, Time::ms(4));
    EXPECT_NEAR(s.total_cee_nj, 400.0, 1e-9);
    EXPECT_NEAR(s.cpu_load, 0.4, 1e-9);
    EXPECT_EQ(s.idle_time, Time::ms(6));
    ASSERT_EQ(s.rows.size(), 2u);
    // Sorted by descending energy: a first.
    EXPECT_EQ(s.rows[0].name, "a");
    EXPECT_NEAR(s.rows[0].cee_share, 0.75, 1e-9);
    EXPECT_NEAR(s.rows[1].cet_share, 0.25, 1e-9);
}

TEST_F(StatsTest, RenderDistributionContainsEveryThread) {
    TThread& a = api.SIM_CreateThread("alpha", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(2), ExecContext::task);
    });
    api.SIM_StartThread(a);
    k.run_until(Time::ms(4));
    const std::string out = render_distribution(collect_stats(api), BatteryModel(10));
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("battery"), std::string::npos);
    EXPECT_NE(out.find("lifespan"), std::string::npos);
    EXPECT_NE(out.find("cpu load"), std::string::npos);
}

TEST_F(StatsTest, EmptySystemIsWellFormed) {
    SystemStats s = collect_stats(api);
    EXPECT_EQ(s.total_cet, Time::zero());
    EXPECT_EQ(s.rows.size(), 0u);
    EXPECT_DOUBLE_EQ(s.cpu_load, 0.0);
    const std::string out = render_distribution(s, BatteryModel(10));
    EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace rtk::sim
