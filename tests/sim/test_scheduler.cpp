// Scheduler policy tests (external schedulers of SIM_API).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

class SchedulerPolicyTest : public ::testing::Test {
protected:
    sysc::Kernel k;
};

TEST_F(SchedulerPolicyTest, PrioritySchedulerPicksHighestFirst) {
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    std::vector<std::string> order;
    auto mk = [&](const char* name, Priority p) -> TThread& {
        return api.SIM_CreateThread(name, ThreadKind::task, p,
                                    [&order, name] { order.push_back(name); });
    };
    TThread& a = mk("a", 30);
    TThread& b = mk("b", 10);
    TThread& c = mk("c", 20);
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    api.SIM_StartThread(c);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"b", "c", "a"}));
}

TEST_F(SchedulerPolicyTest, FifoWithinPriority) {
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    std::vector<std::string> order;
    auto mk = [&](const char* name) -> TThread& {
        return api.SIM_CreateThread(name, ThreadKind::task, 5,
                                    [&order, name] { order.push_back(name); });
    };
    TThread& a = mk("x");
    TThread& b = mk("y");
    TThread& c = mk("z");
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    api.SIM_StartThread(c);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"x", "y", "z"}));
}

TEST_F(SchedulerPolicyTest, ReadySnapshotAndCounts) {
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [] {});
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 3, [] {});
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    EXPECT_EQ(s.ready_count(), 2u);
    auto snap = s.ready_snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0], &b);  // higher priority first
    EXPECT_EQ(snap[1], &a);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(s.ready_count(), 0u);
}

TEST_F(SchedulerPolicyTest, RemoveTakesThreadOutOfReadyQueue) {
    PriorityPreemptiveScheduler s;
    TThread* dummy = nullptr;
    SimApi api{k, s};
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [] {});
    (void)dummy;
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    EXPECT_EQ(s.ready_count(), 1u);
    s.remove(a);
    EXPECT_EQ(s.ready_count(), 0u);
    EXPECT_EQ(s.pick(), nullptr);
}

TEST_F(SchedulerPolicyTest, RoundRobinIsFifoAcrossPriorities) {
    RoundRobinScheduler s;
    SimApi api{k, s};
    std::vector<std::string> order;
    auto mk = [&](const char* name, Priority p) -> TThread& {
        return api.SIM_CreateThread(name, ThreadKind::task, p,
                                    [&order, name] { order.push_back(name); });
    };
    TThread& a = mk("a", 30);  // priorities ignored
    TThread& b = mk("b", 1);
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));
    EXPECT_FALSE(s.should_preempt(a));
}

TEST_F(SchedulerPolicyTest, PolicyNames) {
    EXPECT_EQ(PriorityPreemptiveScheduler{}.policy_name(), "priority-preemptive");
    EXPECT_EQ(RoundRobinScheduler{}.policy_name(), "round-robin");
}

// Property sweep: with N tasks of random-ish priorities, the priority
// scheduler always runs them in non-decreasing priority order.
class PriorityOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(PriorityOrderSweep, TasksCompleteInPriorityOrder) {
    sysc::Kernel k;
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    const int n = GetParam();
    std::vector<Priority> done_order;
    std::vector<TThread*> threads;
    for (int i = 0; i < n; ++i) {
        const Priority p = 1 + (i * 7 + 3) % 50;  // deterministic pseudo-random
        threads.push_back(&api.SIM_CreateThread(
            "t" + std::to_string(i), ThreadKind::task, p, [&done_order, p, &api] {
                api.SIM_Wait(Time::us(100), ExecContext::task);
                done_order.push_back(p);
            }));
    }
    api.SIM_DisableDispatch();
    for (auto* t : threads) {
        api.SIM_StartThread(*t);
    }
    api.SIM_EnableDispatch();
    k.run();
    ASSERT_EQ(done_order.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < done_order.size(); ++i) {
        EXPECT_LE(done_order[i - 1], done_order[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PriorityOrderSweep, ::testing::Values(2, 5, 13, 40));

// ---- ordering invariants, pinned across both policies ----------------------
//
// These drive the Scheduler objects directly (make_ready/pick/remove/
// rotate on threads that never execute) so the intrusive refactor stays
// pinned to the seed container semantics: FIFO within priority, tk_rot_rdq
// rotation, chg_pri tail-requeue.

enum class Policy { priority, round_robin };

class SchedulerInvariantTest : public ::testing::TestWithParam<Policy> {
protected:
    SchedulerInvariantTest() {
        if (GetParam() == Policy::priority) {
            sched_ = std::make_unique<PriorityPreemptiveScheduler>();
        } else {
            sched_ = std::make_unique<RoundRobinScheduler>();
        }
        api_ = std::make_unique<SimApi>(k_, *sched_);
    }

    TThread& mk(const std::string& name, Priority p) {
        return api_->SIM_CreateThread(name, ThreadKind::task, p, [] {});
    }

    std::vector<TThread*> drain() {
        std::vector<TThread*> out;
        while (TThread* t = sched_->pick()) {
            out.push_back(t);
        }
        return out;
    }

    sysc::Kernel k_;
    std::unique_ptr<Scheduler> sched_;
    std::unique_ptr<SimApi> api_;
};

TEST_P(SchedulerInvariantTest, FifoWithinOnePriorityAcrossInterleavedOps) {
    TThread& a = mk("a", 5);
    TThread& b = mk("b", 5);
    TThread& c = mk("c", 5);
    sched_->make_ready(a);
    sched_->make_ready(b);
    EXPECT_EQ(sched_->pick(), &a);   // a leaves the head...
    sched_->make_ready(c);
    sched_->make_ready(a);           // ...and re-queues behind c
    EXPECT_EQ(drain(), (std::vector<TThread*>{&b, &c, &a}));
}

TEST_P(SchedulerInvariantTest, RotateMovesHeadToTail) {
    TThread& a = mk("a", 5);
    TThread& b = mk("b", 5);
    TThread& c = mk("c", 5);
    sched_->make_ready(a);
    sched_->make_ready(b);
    sched_->make_ready(c);
    sched_->rotate(5);
    EXPECT_EQ(drain(), (std::vector<TThread*>{&b, &c, &a}));
}

TEST_P(SchedulerInvariantTest, RotateOfSingletonOrAbsentQueueIsNoop) {
    TThread& a = mk("a", 5);
    sched_->make_ready(a);
    sched_->rotate(5);    // one element: unchanged
    sched_->rotate(9);    // empty level: no-op
    sched_->rotate(-3);   // out of range: no-op
    EXPECT_EQ(drain(), (std::vector<TThread*>{&a}));
}

TEST_P(SchedulerInvariantTest, RemoveFromMiddlePreservesNeighbourOrder) {
    TThread& a = mk("a", 5);
    TThread& b = mk("b", 5);
    TThread& c = mk("c", 5);
    TThread& d = mk("d", 5);
    sched_->make_ready(a);
    sched_->make_ready(b);
    sched_->make_ready(c);
    sched_->make_ready(d);
    sched_->remove(b);
    sched_->remove(d);
    EXPECT_EQ(sched_->ready_count(), 2u);
    EXPECT_EQ(drain(), (std::vector<TThread*>{&a, &c}));
    sched_->remove(a);  // absent: no-op, as before the refactor
    EXPECT_EQ(sched_->ready_count(), 0u);
}

TEST_P(SchedulerInvariantTest, PeekMatchesPickWithoutDequeuing) {
    TThread& a = mk("a", 7);
    TThread& b = mk("b", 4);
    sched_->make_ready(a);
    sched_->make_ready(b);
    TThread* peeked = sched_->peek();
    EXPECT_EQ(sched_->ready_count(), 2u);
    EXPECT_EQ(sched_->pick(), peeked);
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerInvariantTest,
                         ::testing::Values(Policy::priority, Policy::round_robin),
                         [](const auto& param_info) {
                             return param_info.param == Policy::priority
                                        ? "PriorityPreemptive"
                                        : "RoundRobin";
                         });

// ---- priority-policy-specific invariants -----------------------------------

TEST_F(SchedulerPolicyTest, ChangedPriorityRequeuesAtTailOfNewLevel) {
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [] {});
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 5, [] {});
    TThread& c = api.SIM_CreateThread("c", ThreadKind::task, 9, [] {});
    s.make_ready(a);
    s.make_ready(b);
    s.make_ready(c);
    // µ-ITRON chg_pri: c joins priority 5 at the *end* of that queue.
    api.SIM_SetCurrentPriority(c, 5);  // dormant: updates priority only
    s.priority_changed(c);
    EXPECT_EQ(s.pick(), &a);
    EXPECT_EQ(s.pick(), &b);
    EXPECT_EQ(s.pick(), &c);
    // And a same-level change also tail-requeues (a behind b).
    s.make_ready(a);
    s.make_ready(b);
    s.priority_changed(a);
    EXPECT_EQ(s.pick(), &b);
    EXPECT_EQ(s.pick(), &a);
}

TEST_F(SchedulerPolicyTest, RotateAffectsOnlyTheNamedPriorityLevel) {
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    TThread& hi1 = api.SIM_CreateThread("hi1", ThreadKind::task, 3, [] {});
    TThread& hi2 = api.SIM_CreateThread("hi2", ThreadKind::task, 3, [] {});
    TThread& lo1 = api.SIM_CreateThread("lo1", ThreadKind::task, 8, [] {});
    TThread& lo2 = api.SIM_CreateThread("lo2", ThreadKind::task, 8, [] {});
    s.make_ready(hi1);
    s.make_ready(hi2);
    s.make_ready(lo1);
    s.make_ready(lo2);
    s.rotate(8);
    EXPECT_EQ(s.pick(), &hi1);
    EXPECT_EQ(s.pick(), &hi2);
    EXPECT_EQ(s.pick(), &lo2);  // rotated
    EXPECT_EQ(s.pick(), &lo1);
}

// tk_rot_rdq under the RTK-Spec I (round-robin) policy must rotate the
// slice instead of silently no-opping (the seed inherited the base-class
// stub; pinned here via SIM_RotateReadyQueue).
TEST_F(SchedulerPolicyTest, RoundRobinRotateViaSimApi) {
    RoundRobinScheduler s;
    SimApi api{k, s};
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 10, [] {});
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 20, [] {});
    TThread& c = api.SIM_CreateThread("c", ThreadKind::task, 30, [] {});
    s.make_ready(a);
    s.make_ready(b);
    s.make_ready(c);
    api.SIM_RotateReadyQueue(10);
    EXPECT_EQ(s.pick(), &b);
    EXPECT_EQ(s.pick(), &c);
    EXPECT_EQ(s.pick(), &a);
}

// Mass make_ready/pick with interleaved removes at scale: the intrusive
// structures must keep exact FIFO-within-priority order when hundreds of
// threads churn (regression net for node-linking bugs).
TEST_F(SchedulerPolicyTest, LargePopulationKeepsDeterministicOrder) {
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    constexpr int n = 512;
    std::vector<TThread*> threads;
    threads.reserve(n);
    for (int i = 0; i < n; ++i) {
        threads.push_back(&api.SIM_CreateThread("t" + std::to_string(i),
                                                ThreadKind::task, 1 + (i % 7), [] {}));
    }
    for (auto* t : threads) {
        s.make_ready(*t);
    }
    for (int i = 0; i < n; i += 3) {
        s.remove(*threads[static_cast<std::size_t>(i)]);
    }
    // Expected: ascending priority, FIFO (creation order) within a level,
    // skipping the removed ones.
    std::vector<TThread*> expected;
    for (int p = 1; p <= 7; ++p) {
        for (int i = 0; i < n; ++i) {
            if (1 + (i % 7) == p && i % 3 != 0) {
                expected.push_back(threads[static_cast<std::size_t>(i)]);
            }
        }
    }
    std::vector<TThread*> got;
    while (TThread* t = s.pick()) {
        got.push_back(t);
    }
    EXPECT_EQ(got, expected);
}

// Seed-pinned ready-pick regression at the BENCH_scheduler_scaling peak
// size. 4096 tasks with xorshift-assigned priorities go ready, a fifth
// of them are removed again and the most crowded level is rotated; the
// dense ReadyTable must then reproduce the exact (priority, FIFO within
// priority) pick sequence of a reference model computed independently.
TEST_F(SchedulerPolicyTest, ReadyPickOrderPinnedAt4096Tasks) {
    PriorityPreemptiveScheduler s;
    SimApi api{k, s};
    constexpr int n = 4096;
    std::uint32_t rng = 0x5eed0007u;  // pinned seed
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        return rng;
    };

    std::vector<TThread*> threads;
    std::vector<Priority> prio;
    threads.reserve(n);
    prio.reserve(n);
    for (int i = 0; i < n; ++i) {
        const Priority p = static_cast<Priority>(1 + next() % 140);
        prio.push_back(p);
        threads.push_back(&api.SIM_CreateThread("t" + std::to_string(i),
                                                ThreadKind::task, p, [] {}));
    }
    for (auto* t : threads) {
        s.make_ready(*t);
    }
    // Deterministic churn: every fifth thread leaves the ready set again.
    std::vector<bool> gone(n, false);
    for (int i = 0; i < n; i += 5) {
        s.remove(*threads[static_cast<std::size_t>(i)]);
        gone[static_cast<std::size_t>(i)] = true;
    }
    // Rotate one surviving level (thread 1 is never removed: 1 % 5 != 0).
    const Priority rotated = prio[1];
    s.rotate(rotated);

    // Reference model: per-priority FIFO in creation order, rotation as
    // head-to-tail on the named level, concatenated by ascending priority.
    std::vector<std::vector<TThread*>> levels(141);
    for (int i = 0; i < n; ++i) {
        if (!gone[static_cast<std::size_t>(i)]) {
            levels[static_cast<std::size_t>(prio[static_cast<std::size_t>(i)])]
                .push_back(threads[static_cast<std::size_t>(i)]);
        }
    }
    auto& rot_level = levels[static_cast<std::size_t>(rotated)];
    if (rot_level.size() > 1) {
        rot_level.push_back(rot_level.front());
        rot_level.erase(rot_level.begin());
    }
    std::vector<TThread*> expected;
    for (const auto& level : levels) {
        expected.insert(expected.end(), level.begin(), level.end());
    }

    ASSERT_EQ(s.ready_count(), expected.size());
    std::vector<TThread*> got;
    got.reserve(expected.size());
    while (TThread* t = s.pick()) {
        got.push_back(t);
    }
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << "pick diverged at position " << i << " ('" << got[i]->name()
            << "' vs expected '" << expected[i]->name() << "')";
    }
}

}  // namespace
}  // namespace rtk::sim
