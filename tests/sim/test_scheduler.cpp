// Scheduler policy tests (external schedulers of SIM_API).
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

class SchedulerPolicyTest : public ::testing::Test {
protected:
    sysc::Kernel k;
};

TEST_F(SchedulerPolicyTest, PrioritySchedulerPicksHighestFirst) {
    PriorityPreemptiveScheduler s;
    SimApi api(s);
    std::vector<std::string> order;
    auto mk = [&](const char* name, Priority p) -> TThread& {
        return api.SIM_CreateThread(name, ThreadKind::task, p,
                                    [&order, name] { order.push_back(name); });
    };
    TThread& a = mk("a", 30);
    TThread& b = mk("b", 10);
    TThread& c = mk("c", 20);
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    api.SIM_StartThread(c);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"b", "c", "a"}));
}

TEST_F(SchedulerPolicyTest, FifoWithinPriority) {
    PriorityPreemptiveScheduler s;
    SimApi api(s);
    std::vector<std::string> order;
    auto mk = [&](const char* name) -> TThread& {
        return api.SIM_CreateThread(name, ThreadKind::task, 5,
                                    [&order, name] { order.push_back(name); });
    };
    TThread& a = mk("x");
    TThread& b = mk("y");
    TThread& c = mk("z");
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    api.SIM_StartThread(c);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"x", "y", "z"}));
}

TEST_F(SchedulerPolicyTest, ReadySnapshotAndCounts) {
    PriorityPreemptiveScheduler s;
    SimApi api(s);
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [] {});
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 3, [] {});
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    EXPECT_EQ(s.ready_count(), 2u);
    auto snap = s.ready_snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0], &b);  // higher priority first
    EXPECT_EQ(snap[1], &a);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(s.ready_count(), 0u);
}

TEST_F(SchedulerPolicyTest, RemoveTakesThreadOutOfReadyQueue) {
    PriorityPreemptiveScheduler s;
    TThread* dummy = nullptr;
    SimApi api(s);
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [] {});
    (void)dummy;
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    EXPECT_EQ(s.ready_count(), 1u);
    s.remove(a);
    EXPECT_EQ(s.ready_count(), 0u);
    EXPECT_EQ(s.pick(), nullptr);
}

TEST_F(SchedulerPolicyTest, RoundRobinIsFifoAcrossPriorities) {
    RoundRobinScheduler s;
    SimApi api(s);
    std::vector<std::string> order;
    auto mk = [&](const char* name, Priority p) -> TThread& {
        return api.SIM_CreateThread(name, ThreadKind::task, p,
                                    [&order, name] { order.push_back(name); });
    };
    TThread& a = mk("a", 30);  // priorities ignored
    TThread& b = mk("b", 1);
    api.SIM_DisableDispatch();
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    api.SIM_EnableDispatch();
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));
    EXPECT_FALSE(s.should_preempt(a));
}

TEST_F(SchedulerPolicyTest, PolicyNames) {
    EXPECT_EQ(PriorityPreemptiveScheduler{}.policy_name(), "priority-preemptive");
    EXPECT_EQ(RoundRobinScheduler{}.policy_name(), "round-robin");
}

// Property sweep: with N tasks of random-ish priorities, the priority
// scheduler always runs them in non-decreasing priority order.
class PriorityOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(PriorityOrderSweep, TasksCompleteInPriorityOrder) {
    sysc::Kernel k;
    PriorityPreemptiveScheduler s;
    SimApi api(s);
    const int n = GetParam();
    std::vector<Priority> done_order;
    std::vector<TThread*> threads;
    for (int i = 0; i < n; ++i) {
        const Priority p = 1 + (i * 7 + 3) % 50;  // deterministic pseudo-random
        threads.push_back(&api.SIM_CreateThread(
            "t" + std::to_string(i), ThreadKind::task, p, [&done_order, p, &api] {
                api.SIM_Wait(Time::us(100), ExecContext::task);
                done_order.push_back(p);
            }));
    }
    api.SIM_DisableDispatch();
    for (auto* t : threads) {
        api.SIM_StartThread(*t);
    }
    api.SIM_EnableDispatch();
    k.run();
    ASSERT_EQ(done_order.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 1; i < done_order.size(); ++i) {
        EXPECT_LE(done_order[i - 1], done_order[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PriorityOrderSweep, ::testing::Values(2, 5, 13, 40));

}  // namespace
}  // namespace rtk::sim
