// Preemption semantics: quantum-boundary preemption points, service-call
// atomicity, dispatch disabling, suspension (paper §4).
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

class PreemptTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    PriorityPreemptiveScheduler sched;
    SimApi api{k, sched};
};

TEST_F(PreemptTest, HigherPriorityPreemptsAtQuantumBoundary) {
    Time hi_started;
    TThread& lo = api.SIM_CreateThread("lo", ThreadKind::task, 10, [&] {
        api.SIM_Wait(Time::ms(10), ExecContext::task);
    });
    TThread& hi = api.SIM_CreateThread("hi", ThreadKind::task, 1, [&] {
        hi_started = sysc::now();
        api.SIM_Wait(Time::ms(1), ExecContext::task);
    });
    api.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(300));  // mid-quantum
        api.SIM_StartThread(hi);
    });
    k.run();
    // Preemption lands on the next 1 ms boundary, not at 300 us.
    EXPECT_EQ(hi_started, Time::ms(1));
    EXPECT_EQ(lo.preemption_count(), 1u);
    EXPECT_EQ(lo.token().firings(RunEvent::return_from_preemption), 1u);
}

TEST_F(PreemptTest, EqualPriorityDoesNotPreempt) {
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(5), ExecContext::task);
    });
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(5), ExecContext::task);
    });
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    k.run();
    EXPECT_EQ(a.preemption_count(), 0u);
    // b runs only after a completes.
    EXPECT_EQ(b.token().cet(), Time::ms(5));
    EXPECT_EQ(api.total_dispatches(), 2u);
}

TEST_F(PreemptTest, PreemptedWorkResumesAndCompletes) {
    TThread& lo = api.SIM_CreateThread("lo", ThreadKind::task, 10, [&] {
        api.SIM_Wait(Time::ms(4), ExecContext::task);
    });
    TThread& hi = api.SIM_CreateThread("hi", ThreadKind::task, 1, [&] {
        api.SIM_Wait(Time::ms(2), ExecContext::task);
    });
    api.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        sysc::wait(Time::ms(1));
        api.SIM_StartThread(hi);
    });
    k.run();
    EXPECT_EQ(lo.token().cet(), Time::ms(4));
    EXPECT_EQ(hi.token().cet(), Time::ms(2));
    // lo: 0-1, preempted 1-3 (hi), resumes 3-6.
    EXPECT_EQ(k.now(), Time::ms(6));
}

TEST_F(PreemptTest, ServiceCallAtomicityDefersPreemption) {
    Time hi_started;
    TThread& lo = api.SIM_CreateThread("lo", ThreadKind::task, 10, [&] {
        SimApi::ServiceGuard svc(api);
        api.SIM_Wait(Time::ms(3), ExecContext::service_call);
    });
    TThread& hi = api.SIM_CreateThread("hi", ThreadKind::task, 1, [&] {
        hi_started = sysc::now();
    });
    api.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(100));
        api.SIM_StartThread(hi);
    });
    k.run();
    // The whole service call executes with continuity.
    EXPECT_EQ(hi_started, Time::ms(3));
}

TEST_F(PreemptTest, AtomicityOffAllowsMidServicePreemption) {
    SimApi::Config cfg;
    cfg.service_call_atomicity = false;
    PriorityPreemptiveScheduler s2;
    SimApi api2{k, s2, cfg};
    Time hi_started;
    TThread& lo = api2.SIM_CreateThread("lo", ThreadKind::task, 10, [&] {
        SimApi::ServiceGuard svc(api2);
        api2.SIM_Wait(Time::ms(3), ExecContext::service_call);
    });
    TThread& hi = api2.SIM_CreateThread("hi", ThreadKind::task, 1, [&] {
        hi_started = sysc::now();
    });
    api2.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        sysc::wait(Time::us(100));
        api2.SIM_StartThread(hi);
    });
    k.run();
    EXPECT_EQ(hi_started, Time::ms(1));  // next quantum boundary
}

TEST_F(PreemptTest, DispatchDisableDefersPreemption) {
    Time hi_started;
    TThread& lo = api.SIM_CreateThread("lo", ThreadKind::task, 10, [&] {
        api.SIM_DisableDispatch();
        api.SIM_Wait(Time::ms(3), ExecContext::task);
        api.SIM_EnableDispatch();
        api.SIM_Wait(Time::ms(2), ExecContext::task);
    });
    TThread& hi = api.SIM_CreateThread("hi", ThreadKind::task, 1, [&] {
        hi_started = sysc::now();
    });
    api.SIM_StartThread(lo);
    k.spawn("driver", [&] {
        sysc::wait(Time::ms(1));
        api.SIM_StartThread(hi);
    });
    k.run();
    EXPECT_EQ(hi_started, Time::ms(3));  // at SIM_EnableDispatch
    EXPECT_EQ(lo.token().cet(), Time::ms(5));
}

TEST_F(PreemptTest, SuspendResumeRoundTrip) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(10), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.spawn("driver", [&] {
        sysc::wait(Time::ms(2));
        api.SIM_Suspend(t);  // takes effect at next preemption point
        sysc::wait(Time::ms(3));
        EXPECT_EQ(t.state(), ThreadState::suspended);
        api.SIM_Resume(t);
    });
    k.run();
    EXPECT_EQ(t.token().cet(), Time::ms(10));
    EXPECT_EQ(t.state(), ThreadState::dormant);
}

TEST_F(PreemptTest, NestedSuspendCounts) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Sleep();
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(1));
    api.SIM_Suspend(t);
    api.SIM_Suspend(t);
    EXPECT_EQ(t.state(), ThreadState::waiting_suspended);
    EXPECT_EQ(t.suspend_count(), 2u);
    api.SIM_Resume(t);
    EXPECT_EQ(t.state(), ThreadState::waiting_suspended);
    api.SIM_Resume(t);
    EXPECT_EQ(t.state(), ThreadState::waiting);
}

TEST_F(PreemptTest, WakeWhileSuspendedYieldsSuspended) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Sleep();
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(1));
    api.SIM_Suspend(t);
    api.SIM_WakeUp(t);
    EXPECT_EQ(t.state(), ThreadState::suspended);
    api.SIM_Resume(t);
    k.run_for(Time::ms(1));
    EXPECT_EQ(t.state(), ThreadState::dormant);
}

TEST_F(PreemptTest, PriorityChangeTriggersPreemption) {
    Time hi_done;
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(6), ExecContext::task);
    });
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 6, [&] {
        api.SIM_Wait(Time::ms(1), ExecContext::task);
        hi_done = sysc::now();
    });
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    k.spawn("driver", [&] {
        sysc::wait(Time::ms(2));
        api.SIM_ChangePriority(b, 1);  // b now outranks a
    });
    k.run();
    EXPECT_EQ(hi_done, Time::ms(3));
    EXPECT_EQ(a.preemption_count(), 1u);
}

TEST_F(PreemptTest, RotateReadyQueueRoundRobins) {
    std::vector<std::string> order;
    auto body = [&](const char* name) {
        return [&order, name, this] {
            api.SIM_Wait(Time::ms(1), ExecContext::task);
            order.push_back(name);
        };
    };
    TThread& a = api.SIM_CreateThread("a", ThreadKind::task, 5, body("a"));
    TThread& b = api.SIM_CreateThread("b", ThreadKind::task, 5, body("b"));
    TThread& c = api.SIM_CreateThread("c", ThreadKind::task, 5, body("c"));
    api.SIM_StartThread(a);
    api.SIM_StartThread(b);
    api.SIM_StartThread(c);
    // a runs; rotate moves b behind c in the ready queue.
    api.SIM_RotateReadyQueue(5);
    k.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "c", "b"}));
}

TEST_F(PreemptTest, IdleTimeIsAccounted) {
    TThread& t = api.SIM_CreateThread("t", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(2), ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(10));
    EXPECT_EQ(api.idle_time(), Time::ms(8));
}

}  // namespace
}  // namespace rtk::sim
