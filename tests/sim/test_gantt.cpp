// Gantt recorder tests (the Fig 6 data source).
#include <gtest/gtest.h>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

TEST(GanttRecorder, MergesAdjacentSlices) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_slice(1, "t", ExecContext::task, Time::ms(0), Time::ms(1), 10.0);
    g.add_slice(1, "t", ExecContext::task, Time::ms(1), Time::ms(2), 10.0);
    ASSERT_EQ(g.segments().size(), 1u);
    EXPECT_EQ(g.segments()[0].end, Time::ms(2));
    EXPECT_NEAR(g.segments()[0].energy_nj, 20.0, 1e-9);
}

TEST(GanttRecorder, DoesNotMergeAcrossContexts) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_slice(1, "t", ExecContext::task, Time::ms(0), Time::ms(1), 1.0);
    g.add_slice(1, "t", ExecContext::service_call, Time::ms(1), Time::ms(2), 1.0);
    EXPECT_EQ(g.segments().size(), 2u);
}

TEST(GanttRecorder, DoesNotMergeAcrossGaps) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_slice(1, "t", ExecContext::task, Time::ms(0), Time::ms(1), 1.0);
    g.add_slice(1, "t", ExecContext::task, Time::ms(2), Time::ms(3), 1.0);
    EXPECT_EQ(g.segments().size(), 2u);
}

TEST(GanttRecorder, BusyTimePerThread) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_slice(1, "a", ExecContext::task, Time::ms(0), Time::ms(2), 0);
    g.add_slice(2, "b", ExecContext::task, Time::ms(2), Time::ms(3), 0);
    EXPECT_EQ(g.busy_time(1), Time::ms(2));
    EXPECT_EQ(g.busy_time(2), Time::ms(1));
    EXPECT_EQ(g.total_busy_time(), Time::ms(3));
}

TEST(GanttRecorder, AsciiRenderingShowsContextGlyphs) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_slice(1, "taskA", ExecContext::task, Time::ms(0), Time::ms(2), 0);
    g.add_slice(1, "taskA", ExecContext::bfm_access, Time::ms(2), Time::ms(3), 0);
    g.add_slice(2, "isr", ExecContext::handler, Time::ms(3), Time::ms(4), 0);
    const std::string chart = g.render_ascii(Time::zero(), Time::ms(4), Time::ms(1));
    EXPECT_NE(chart.find("taskA"), std::string::npos);
    EXPECT_NE(chart.find("##B."), std::string::npos);
    EXPECT_NE(chart.find("...H"), std::string::npos);
}

TEST(GanttRecorder, CsvExport) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_slice(1, "t", ExecContext::task, Time::ms(0), Time::ms(1), 42.0);
    const std::string csv = g.to_csv();
    EXPECT_NE(csv.find("tid,name,context,start_ps,end_ps,energy_nj"),
              std::string::npos);
    EXPECT_NE(csv.find("1,t,task,0,1000000000,42"), std::string::npos);
}

TEST(GanttRecorder, MarkersCounted) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_marker(GanttRecorder::MarkerKind::dispatch, 1, Time::ms(1));
    g.add_marker(GanttRecorder::MarkerKind::dispatch, 2, Time::ms(2));
    g.add_marker(GanttRecorder::MarkerKind::preemption, 1, Time::ms(3));
    EXPECT_EQ(g.marker_count(GanttRecorder::MarkerKind::dispatch), 2u);
    EXPECT_EQ(g.marker_count(GanttRecorder::MarkerKind::preemption), 1u);
    EXPECT_EQ(g.marker_count(GanttRecorder::MarkerKind::sleep), 0u);
}

TEST(GanttRecorder, DisabledRecorderIgnoresInput) {
    sysc::Kernel k;
    GanttRecorder g;
    g.set_enabled(false);
    g.add_slice(1, "t", ExecContext::task, Time::ms(0), Time::ms(1), 1.0);
    g.add_marker(GanttRecorder::MarkerKind::dispatch, 1, Time::ms(1));
    EXPECT_TRUE(g.segments().empty());
    EXPECT_TRUE(g.markers().empty());
}

TEST(GanttRecorder, ClearResets) {
    sysc::Kernel k;
    GanttRecorder g;
    g.add_slice(1, "t", ExecContext::task, Time::ms(0), Time::ms(1), 1.0);
    g.clear();
    EXPECT_TRUE(g.segments().empty());
}

TEST(GanttRecorder, EndToEndFromSimApi) {
    sysc::Kernel k;
    PriorityPreemptiveScheduler sched;
    SimApi api{k, sched};
    TThread& t = api.SIM_CreateThread("worker", ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(2), ExecContext::task);
        api.SIM_Wait(Time::ms(1), ExecContext::bfm_access);
    });
    api.SIM_StartThread(t);
    k.run();
    const auto& segs = api.gantt().segments();
    ASSERT_GE(segs.size(), 2u);
    EXPECT_EQ(api.gantt().busy_time(t.id()), Time::ms(3));
    EXPECT_EQ(api.gantt().marker_count(GanttRecorder::MarkerKind::dispatch), 1u);
    EXPECT_EQ(api.gantt().marker_count(GanttRecorder::MarkerKind::exit), 1u);
}

}  // namespace
}  // namespace rtk::sim
