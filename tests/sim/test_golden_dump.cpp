// Golden-file checks for the observability outputs: a fixed 3-task
// scenario must keep producing byte-identical VCD (sysc/trace) and
// Gantt (sim/gantt) dumps. Regenerate after an intentional format
// change with: RTK_UPDATE_GOLDEN=1 ./rtk_tests_sim
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::sim {
namespace {

using sysc::Time;

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string golden_path(const std::string& file) {
    return std::string(RTK_GOLDEN_DIR) + "/" + file;
}

/// Compare `actual` to the named golden file; rewrite the golden when
/// RTK_UPDATE_GOLDEN is set in the environment.
void expect_matches_golden(const std::string& actual, const std::string& file) {
    const std::string path = golden_path(file);
    if (std::getenv("RTK_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::trunc);
        out << actual;
        ASSERT_TRUE(out.good()) << "cannot write golden " << path;
        return;
    }
    const std::string expected = slurp(path);
    ASSERT_FALSE(expected.empty()) << "missing golden file " << path;
    EXPECT_EQ(actual, expected) << "output drifted from golden " << path
                                << " (RTK_UPDATE_GOLDEN=1 regenerates)";
}

struct ScenarioOutput {
    std::string vcd;
    std::string gantt_ascii;
    std::string gantt_csv;
};

/// The fixed scenario: three tasks at distinct priorities, each marking
/// itself in a traced signal, burning task time, then touching the BFM.
/// Everything is simulated-time deterministic.
ScenarioOutput run_three_task_scenario() {
    // Per-test scratch name: the GoldenDump tests are separate ctest
    // entries sharing one working directory, so a fixed name races
    // under `ctest -j`.
    const std::string vcd_path =
        std::string("golden_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".vcd";
    sysc::Kernel kernel;
    PriorityPreemptiveScheduler sched;
    SimApi api{kernel, sched};

    sysc::Signal<std::uint8_t> active("active_task", 0);
    {
        sysc::TraceFile trace(vcd_path, Time::us(1));
        trace.trace(active);
        trace.trace_value("dispatches", 8,
                          [&] { return api.total_dispatches(); });

        auto body = [&](std::uint8_t tag) {
            return [&, tag] {
                active.write(tag);
                api.SIM_Wait(Time::ms(2), ExecContext::task);
                api.SIM_Wait(Time::ms(1), ExecContext::bfm_access);
            };
        };
        TThread& hi = api.SIM_CreateThread("hi", ThreadKind::task, 1, body(1));
        TThread& mid = api.SIM_CreateThread("mid", ThreadKind::task, 5, body(2));
        TThread& lo = api.SIM_CreateThread("lo", ThreadKind::task, 9, body(3));
        api.SIM_StartThread(hi);
        api.SIM_StartThread(mid);
        api.SIM_StartThread(lo);
        kernel.run();
    }

    ScenarioOutput out;
    out.vcd = slurp(vcd_path);
    out.gantt_ascii =
        api.gantt().render_ascii(Time::zero(), Time::ms(9), Time::ms(1));
    out.gantt_csv = api.gantt().to_csv();
    std::remove(vcd_path.c_str());
    return out;
}

TEST(GoldenDump, VcdTraceIsStable) {
    expect_matches_golden(run_three_task_scenario().vcd, "three_tasks.vcd");
}

TEST(GoldenDump, GanttAsciiIsStable) {
    expect_matches_golden(run_three_task_scenario().gantt_ascii,
                          "three_tasks_gantt.txt");
}

TEST(GoldenDump, GanttCsvIsStable) {
    expect_matches_golden(run_three_task_scenario().gantt_csv,
                          "three_tasks_gantt.csv");
}

TEST(GoldenDump, ScenarioSanity) {
    const ScenarioOutput out = run_three_task_scenario();
    // Priority order: hi (prio 1) runs first, lo (prio 9) last.
    EXPECT_NE(out.gantt_ascii.find("hi"), std::string::npos);
    EXPECT_NE(out.gantt_ascii.find("mid"), std::string::npos);
    EXPECT_NE(out.gantt_ascii.find("lo"), std::string::npos);
    EXPECT_NE(out.vcd.find("active_task"), std::string::npos);
    EXPECT_NE(out.gantt_csv.find("bfm"), std::string::npos);
}

}  // namespace
}  // namespace rtk::sim
