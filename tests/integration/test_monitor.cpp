// SerialMonitor integration tests: UART RX interrupt -> event flag ->
// monitor task -> T-Kernel/DS -> UART TX with flow control.
#include <gtest/gtest.h>

#include "app/monitor.hpp"
#include "app/videogame.hpp"

namespace rtk::app {
namespace {

using namespace tkernel;
using sysc::Time;

class MonitorTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_with_monitor(SerialMonitor& mon) {
        tk.set_user_main([&] { mon.setup(); });
        tk.power_on();
    }
};

TEST_F(MonitorTest, PrintsBannerOnBoot) {
    bfm::Bfm8051 board(tk.sim());
    VideoGame::wire(tk, board);
    SerialMonitor mon(tk, board);
    boot_with_monitor(mon);
    k.run_until(Time::ms(200));
    EXPECT_NE(mon.output().find("T-Monitor ready"), std::string::npos);
}

TEST_F(MonitorTest, AnswersVersionCommand) {
    bfm::Bfm8051 board(tk.sim());
    VideoGame::wire(tk, board);
    SerialMonitor mon(tk, board);
    boot_with_monitor(mon);
    k.run_until(Time::ms(100));
    mon.type_line("ver");
    k.run_until(Time::ms(600));
    EXPECT_EQ(mon.commands_executed(), 1u);
    EXPECT_NE(mon.output().find("RTK-Spec TRON"), std::string::npos);
}

TEST_F(MonitorTest, TaskTableListsLiveTasks) {
    bfm::Bfm8051 board(tk.sim());
    VideoGame::wire(tk, board);
    SerialMonitor mon(tk, board);
    VideoGame game(tk, board);
    tk.set_user_main([&] {
        game.setup();
        mon.setup();
    });
    tk.power_on();
    k.run_until(Time::ms(100));
    mon.type_line("tsk");
    k.run_until(Time::sec(2));
    EXPECT_NE(mon.output().find("LCD:T1"), std::string::npos);
    EXPECT_NE(mon.output().find("T-Monitor"), std::string::npos);
}

TEST_F(MonitorTest, UnknownCommandCounted) {
    bfm::Bfm8051 board(tk.sim());
    VideoGame::wire(tk, board);
    SerialMonitor mon(tk, board);
    boot_with_monitor(mon);
    k.run_until(Time::ms(100));
    mon.type_line("frobnicate");
    k.run_until(Time::ms(600));
    EXPECT_EQ(mon.unknown_commands(), 1u);
    EXPECT_EQ(mon.commands_executed(), 0u);
    EXPECT_NE(mon.output().find("unknown command"), std::string::npos);
}

TEST_F(MonitorTest, RefTskInspectsOneTask) {
    bfm::Bfm8051 board(tk.sim());
    VideoGame::wire(tk, board);
    SerialMonitor mon(tk, board);
    boot_with_monitor(mon);
    k.run_until(Time::ms(100));
    mon.type_line("ref tsk 1");  // the init task
    k.run_until(Time::ms(800));
    EXPECT_NE(mon.output().find("'init'"), std::string::npos);
    mon.type_line("ref tsk 99");
    k.run_until(Time::ms(1600));
    EXPECT_NE(mon.output().find("no such task"), std::string::npos);
}

TEST_F(MonitorTest, MultipleCommandsSequence) {
    bfm::Bfm8051 board(tk.sim());
    VideoGame::wire(tk, board);
    SerialMonitor mon(tk, board);
    boot_with_monitor(mon);
    k.run_until(Time::ms(100));
    mon.type_line("help");
    k.run_until(Time::ms(500));
    mon.type_line("tim");
    k.run_until(Time::ms(900));
    mon.type_line("stat");
    k.run_until(Time::sec(2));
    EXPECT_EQ(mon.commands_executed(), 3u);
    EXPECT_NE(mon.output().find("commands:"), std::string::npos);
    EXPECT_NE(mon.output().find("systim="), std::string::npos);
    EXPECT_NE(mon.output().find("load="), std::string::npos);
}

TEST_F(MonitorTest, SurvivesGarbageInput) {
    bfm::Bfm8051 board(tk.sim());
    VideoGame::wire(tk, board);
    SerialMonitor mon(tk, board);
    boot_with_monitor(mon);
    k.run_until(Time::ms(100));
    // Empty lines, whitespace, long garbage.
    mon.type_line("");
    mon.type_line("   ");
    k.run_until(Time::ms(300));
    mon.type_line("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx yyy zzz");
    k.run_until(Time::sec(2));
    EXPECT_EQ(mon.commands_executed(), 0u);
    EXPECT_EQ(mon.unknown_commands(), 1u);
}

}  // namespace
}  // namespace rtk::app
