// Integration: the full case-study stack (kernel + BFM + game app).
#include <gtest/gtest.h>

#include "app/videogame.hpp"
#include "gui/gui.hpp"
#include "tkds/tkds.hpp"

namespace rtk::app {
namespace {

using namespace tkernel;
using sysc::Time;

class GameTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};
};

TEST_F(GameTest, RunsAndRendersFrames) {
    bfm::Bfm8051 bfm(tk.sim());
    VideoGame game(tk, bfm);
    VideoGame::wire(tk, bfm);
    game.install();
    tk.power_on();
    k.run_until(Time::sec(1));
    // 50 ms physics -> about 19-20 frames per simulated second.
    EXPECT_GE(game.frames_rendered(), 15u);
    EXPECT_LE(game.frames_rendered(), 21u);
    EXPECT_EQ(game.frames_dropped(), 0u);
    // The ball hit or missed the paddle row repeatedly.
    EXPECT_GE(game.score() + game.misses(), 5u);
    // LCD contains the score digits.
    EXPECT_NE(bfm.lcd().text().find(std::to_string(game.score())),
              std::string::npos);
    // SSD shows the score.
    EXPECT_EQ(bfm.ssd().value(), game.score());
}

TEST_F(GameTest, KeypadMovesPaddle) {
    bfm::Bfm8051 bfm(tk.sim());
    VideoGame game(tk, bfm);
    VideoGame::wire(tk, bfm);
    game.install();
    tk.power_on();
    k.run_until(Time::ms(100));
    const int before = game.paddle_x();
    // Press a key in column 3 (right) three times.
    for (int i = 0; i < 3; ++i) {
        bfm.keypad().press(VideoGame::key_right);
        k.run_for(Time::ms(20));
        bfm.keypad().release(VideoGame::key_right);
        k.run_for(Time::ms(20));
    }
    EXPECT_EQ(game.paddle_x(), before + 3);
    EXPECT_EQ(game.key_events(), 3u);
}

TEST_F(GameTest, RoundTimerResetsPlay) {
    bfm::Bfm8051 bfm(tk.sim());
    GameConfig cfg;
    cfg.round_time_ms = 300;
    VideoGame game(tk, bfm, cfg);
    VideoGame::wire(tk, bfm);
    game.install();
    tk.power_on();
    k.run_until(Time::sec(1));
    EXPECT_GE(game.rounds(), 2u);  // several rounds of 300 ms elapsed
}

TEST_F(GameTest, AllSyncObjectClassesInUse) {
    bfm::Bfm8051 bfm(tk.sim());
    VideoGame game(tk, bfm);
    VideoGame::wire(tk, bfm);
    game.install();
    tk.power_on();
    k.run_until(Time::ms(500));
    EXPECT_GT(game.render_mailbox(), 0);
    EXPECT_GT(game.msg_pool(), 0);
    EXPECT_GT(game.key_flag(), 0);
    EXPECT_GT(game.score_sem(), 0);
    EXPECT_GT(game.paddle_mutex(), 0);
    // Four tasks + init; two time handlers; one ISR vector.
    std::vector<ID> ids;
    EXPECT_EQ(tkds::td_lst_tsk(tk, ids), 5);
    EXPECT_EQ(tkds::td_lst_cyc(tk, ids), 1);
    EXPECT_EQ(tkds::td_lst_alm(tk, ids), 1);
    EXPECT_EQ(tk.interrupt_vectors().size(), 1u);
}

TEST_F(GameTest, EnergyDistributionMatchesPaperShape) {
    // Fig 7 shape: the IDLE task dominates consumed time on a lightly
    // loaded system; every registered T-THREAD appears.
    bfm::Bfm8051 bfm(tk.sim());
    VideoGame game(tk, bfm);
    VideoGame::wire(tk, bfm);
    game.install();
    tk.power_on();
    k.run_until(Time::sec(1));
    auto stats = sim::collect_stats(tk.sim());
    EXPECT_GT(stats.cpu_load, 0.5);  // idle task spins
    const TCB* idle = tk.find_task(game.idle_task());
    ASSERT_NE(idle, nullptr);
    // Idle task consumed the largest share of CET.
    sysc::Time max_cet;
    std::string max_name;
    for (const auto& row : stats.rows) {
        if (row.cet > max_cet) {
            max_cet = row.cet;
            max_name = row.name;
        }
    }
    EXPECT_EQ(max_name, "IDLE:T4");
}

TEST_F(GameTest, DsListingReflectsLiveSystem) {
    bfm::Bfm8051 bfm(tk.sim());
    VideoGame game(tk, bfm);
    VideoGame::wire(tk, bfm);
    game.install();
    tk.power_on();
    k.run_until(Time::ms(300));
    const std::string listing = tkds::render_listing(tk);
    for (const char* needle : {"LCD:T1", "Keypad:T2", "SSD:T3", "IDLE:T4",
                               "render_mbx", "msg_pool", "key_flg", "score_sem",
                               "paddle_mtx", "Cyclic:H1", "Alarm:H2"}) {
        EXPECT_NE(listing.find(needle), std::string::npos) << needle;
    }
}

TEST_F(GameTest, DeterministicReplay) {
    // Two identical runs produce identical results (no hidden host state).
    auto run_once = [](unsigned& score, std::uint64_t& frames, unsigned& misses) {
        sysc::Kernel k2;
        TKernel tk2{k2};
        bfm::Bfm8051 bfm2(tk2.sim());
        VideoGame game2(tk2, bfm2);
        VideoGame::wire(tk2, bfm2);
        game2.install();
        tk2.power_on();
        k2.run_until(Time::ms(700));
        score = game2.score();
        frames = game2.frames_rendered();
        misses = game2.misses();
    };
    unsigned s1, s2, m1, m2;
    std::uint64_t f1, f2;
    run_once(s1, f1, m1);
    run_once(s2, f2, m2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(f1, f2);
    EXPECT_EQ(m1, m2);
}

}  // namespace
}  // namespace rtk::app
