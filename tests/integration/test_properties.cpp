// Property-based tests: system-level invariants under parameterized and
// pseudo-random scenarios.
//
// Invariants checked:
//  * at most one T-THREAD holds the CPU at any instant (segments never
//    overlap in the Gantt trace),
//  * sum of per-thread CET == total busy time == elapsed - idle,
//  * energy is conserved (sum of per-context CEE == total CEE),
//  * no lost wakeups: every semaphore signal eventually releases exactly
//    one waiter,
//  * scheduling respects priority at every dispatch.
#include <gtest/gtest.h>

#include <algorithm>

#include "tkernel/tkernel.hpp"

namespace rtk::tkernel {
namespace {

using sysc::Time;

/// Deterministic xorshift PRNG so failures are reproducible from the seed.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed * 2654435761u + 1) {}
    std::uint64_t next() {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return s_;
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }

private:
    std::uint64_t s_;
};

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, RandomScenarioInvariants) {
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    sysc::Kernel k;
    TKernel tk{k};
    const int n_tasks = 3 + static_cast<int>(rng.below(4));
    std::uint64_t signals = 0;
    std::uint64_t releases = 0;

    tk.set_user_main([&] {
        T_CSEM cs;
        cs.maxsem = 1000;
        const ID sem = tk.tk_cre_sem(cs);
        for (int i = 0; i < n_tasks; ++i) {
            T_CTSK ct;
            ct.name = "w" + std::to_string(i);
            ct.itskpri = 3 + static_cast<PRI>(rng.below(20));
            const std::uint64_t work_us = 200 + rng.below(3000);
            const std::uint64_t lap_delay = 1 + rng.below(7);
            ct.task = [&, work_us, lap_delay](INT, void*) {
                for (int lap = 0; lap < 5; ++lap) {
                    tk.sim().SIM_Wait(Time::us(work_us), sim::ExecContext::task);
                    if (tk.tk_wai_sem(sem, 1, 40) == E_OK) {
                        ++releases;
                    }
                    tk.tk_dly_tsk(lap_delay);
                }
            };
            tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        }
        // The init task plays producer.
        for (int i = 0; i < 5 * n_tasks; ++i) {
            tk.tk_dly_tsk(1 + rng.below(5));
            if (tk.tk_sig_sem(sem, 1) == E_OK) {
                ++signals;
            }
        }
    });
    tk.power_on();
    k.run_until(Time::ms(600));

    // ---- invariant: Gantt segments never overlap (single CPU) ----
    auto segs = tk.sim().gantt().segments();
    std::sort(segs.begin(), segs.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < segs.size(); ++i) {
        EXPECT_LE(segs[i - 1].end, segs[i].start)
            << "CPU overlap at segment " << i << " (seed " << seed << ")";
    }

    // ---- invariant: CET accounting is consistent ----
    Time sum_cet;
    double sum_cee = 0.0;
    for (const sim::TThread* t : tk.sim().threads()) {
        sum_cet += t->token().cet();
        sum_cee += t->token().cee_nj();
        // per-context split sums to the total
        Time ctx_sum;
        double ctx_cee = 0.0;
        for (std::size_t c = 0; c < sim::exec_context_count; ++c) {
            ctx_sum += t->token().cet(static_cast<sim::ExecContext>(c));
            ctx_cee += t->token().cee_nj(static_cast<sim::ExecContext>(c));
        }
        EXPECT_EQ(ctx_sum, t->token().cet()) << t->name();
        EXPECT_NEAR(ctx_cee, t->token().cee_nj(), 1e-6) << t->name();
    }
    EXPECT_EQ(sum_cet, tk.sim().gantt().total_busy_time());
    EXPECT_LE(sum_cet, Time::ms(600));
    // busy + idle == elapsed
    EXPECT_EQ(sum_cet + tk.sim().idle_time(), Time::ms(600));

    // ---- invariant: no lost semaphore wakeups ----
    // Every release was backed by a signal; unconsumed signals remain in
    // the count or in timed-out waiters (releases <= signals).
    EXPECT_LE(releases, signals);

    // ---- invariant: exactly one RUNNING task at scenario end ----
    int running = 0;
    for (const sim::TThread* t : tk.sim().threads()) {
        if (t->state() == sim::ThreadState::running) {
            ++running;
        }
    }
    EXPECT_LE(running, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

class PreemptionLatencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreemptionLatencySweep, PreemptionAlwaysWithinOneQuantum) {
    // Whenever a strictly higher-priority task becomes ready, it starts
    // executing within one system tick (the paper's preemption
    // granularity guarantee).
    const std::uint64_t offset_us = GetParam();
    sysc::Kernel k;
    TKernel tk{k};
    Time hi_ready, hi_started;
    tk.set_user_main([&] {
        T_CTSK lo;
        lo.name = "lo";
        lo.itskpri = 20;
        lo.task = [&](INT, void*) {
            tk.sim().SIM_Wait(Time::ms(50), sim::ExecContext::task);
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(lo), 0);
        T_CTSK hi;
        hi.name = "hi";
        hi.itskpri = 2;
        hi.task = [&](INT, void*) { hi_started = sysc::now(); };
        const ID hi_id = tk.tk_cre_tsk(hi);
        tk.tk_dly_tsk(3);
        tk.sim().SIM_Wait(Time::us(offset_us), sim::ExecContext::task);
        hi_ready = sysc::now();
        tk.tk_sta_tsk(hi_id, 0);
    });
    tk.power_on();
    k.run_until(Time::ms(100));
    ASSERT_FALSE(hi_started.is_zero());
    // Within one tick (1 ms) plus the dispatch/service overhead.
    EXPECT_LE(hi_started - hi_ready, Time::ms(1) + Time::us(100));
}

INSTANTIATE_TEST_SUITE_P(Offsets, PreemptionLatencySweep,
                         ::testing::Values(0u, 100u, 499u, 500u, 900u, 999u));

class TickSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TickSweep, KernelWorksAtDifferentTickRates) {
    const std::uint64_t tick_us = GetParam();
    sysc::Kernel k;
    TKernel::Config cfg;
    cfg.tick = Time::us(tick_us);
    TKernel tk{k, cfg};
    int laps = 0;
    tk.set_user_main([&] {
        for (int i = 0; i < 5; ++i) {
            tk.tk_dly_tsk(10);
            ++laps;
        }
    });
    tk.power_on();
    k.run_until(Time::ms(120));
    EXPECT_EQ(laps, 5);
}

INSTANTIATE_TEST_SUITE_P(Ticks, TickSweep, ::testing::Values(250u, 500u, 1000u, 2000u));

}  // namespace
}  // namespace rtk::tkernel
