// Integration: the co-simulation framework of Fig 5 -- RTC-driven tick,
// interrupt dispatch through the BFM controller, GUI widgets driven by
// BFM accesses, VCD probing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "app/videogame.hpp"
#include "gui/gui.hpp"

namespace rtk {
namespace {

using namespace tkernel;
using sysc::Time;

TEST(CosimTest, RtcDrivesKernelTick) {
    sysc::Kernel k;
    TKernel tk{k};
    bfm::Bfm8051 bfm(tk.sim());
    tk.attach_tick_source(bfm.rtc().tick_event());
    tk.set_user_main([] {});
    tk.power_on();
    k.run_until(Time::ms(50));
    // Kernel ticks track RTC ticks (1 ms resolution); the in-flight tick
    // at the horizon may not have been processed yet.
    EXPECT_GE(tk.tick_count() + 1, bfm.rtc().tick_count());
    EXPECT_LE(tk.tick_count(), bfm.rtc().tick_count());
    EXPECT_GE(tk.tick_count(), 49u);
}

TEST(CosimTest, BfmInterruptReachesKernelHandler) {
    sysc::Kernel k;
    TKernel tk{k};
    bfm::Bfm8051 bfm(tk.sim());
    bfm.intc().set_sink([&tk](unsigned line, bool) { tk.trigger_interrupt(line); });
    int hits = 0;
    tk.set_user_main([&] {
        T_DINT d;
        d.inthdr = [&](void*) { ++hits; };
        tk.tk_def_int(bfm::InterruptController::line_ext0, d);
    });
    tk.power_on();
    k.run_until(Time::ms(10));
    bfm.keypad().press(0);  // raises /INT0 through the controller
    k.run_until(Time::ms(20));
    EXPECT_EQ(hits, 1);
}

TEST(CosimTest, WidgetsRefreshAtBfmAccessRate) {
    sysc::Kernel k;
    TKernel tk{k};
    bfm::Bfm8051 bfm(tk.sim());
    app::GameConfig cfg;
    cfg.physics_period_ms = 20;
    app::VideoGame game(tk, bfm, cfg);
    app::VideoGame::wire(tk, bfm);
    game.install();
    gui::Frontend fe(gui::Mode::animate);
    gui::LcdWidget lw(bfm.lcd(), 100);
    fe.add(lw);
    fe.drive_from_bus(bfm.bus(), bfm::Bfm8051::lcd_base, 0x10, lw);
    lw.set_min_interval(Time::ms(20));  // one refresh per frame burst
    tk.power_on();
    k.run_until(Time::sec(1));
    // ~50 frames, one accepted refresh each (the rest frame-limited).
    EXPECT_GE(lw.refresh_count(), 40u);
    EXPECT_LE(lw.refresh_count(), 60u);
    EXPECT_GT(lw.skipped_count(), lw.refresh_count());
}

TEST(CosimTest, WaveformProbesBfmSignals) {
    const std::string path = "cosim_probe.vcd";
    {
        sysc::Kernel k;
        sim::PriorityPreemptiveScheduler sched;
        sim::SimApi api{k, sched};
        bfm::Bfm8051 bfm(api);
        sysc::TraceFile tf(path);
        tf.trace(bfm.pio().p0(), "P0");
        tf.trace(bfm.pio().p2(), "P2");
        tf.trace(bfm.pio().ale(), "ALE");
        sim::TThread& t = api.SIM_CreateThread("drv", sim::ThreadKind::task, 5, [&] {
            bfm.pio().select(1, 1);
            bfm.pio().data_write(0x55);
            api.SIM_Wait(Time::us(10), sim::ExecContext::task);
            bfm.pio().select(3, 0);
            bfm.pio().data_write(0x02);
        });
        api.SIM_StartThread(t);
        k.run_until(Time::ms(5));
        tf.flush();
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        const std::string vcd = ss.str();
        EXPECT_NE(vcd.find("P0"), std::string::npos);
        EXPECT_NE(vcd.find("ALE"), std::string::npos);
        EXPECT_NE(vcd.find("b1010101 "), std::string::npos);  // 0x55 on P0
    }
    std::remove(path.c_str());
}

TEST(CosimTest, StepModeGanttMatchesAnimateModeAccounting) {
    // Step mode (run in 1 ms increments) and animate mode (single run)
    // must produce identical simulated results.
    auto run = [](bool step) {
        sysc::Kernel k;
        TKernel tk{k};
        bfm::Bfm8051 bfm(tk.sim());
        app::VideoGame game(tk, bfm);
        app::VideoGame::wire(tk, bfm);
        game.install();
        tk.power_on();
        if (step) {
            for (int i = 0; i < 500; ++i) {
                k.run_for(Time::ms(1));  // paper's "step of system tick"
            }
        } else {
            k.run_until(Time::ms(500));
        }
        return std::make_tuple(game.frames_rendered(), game.score(),
                               tk.sim().total_dispatches(),
                               tk.sim().gantt().total_busy_time());
    };
    EXPECT_EQ(run(true), run(false));
}

TEST(CosimTest, SerialLoopToHost) {
    sysc::Kernel k;
    TKernel tk{k};
    bfm::Bfm8051 bfm(tk.sim());
    tk.set_user_main([&] {
        // Send a status string over the UART, polling TI via the BFM.
        for (char c : std::string("RDY")) {
            while (!bfm.serial_send(static_cast<std::uint8_t>(c))) {
                tk.tk_dly_tsk(1);
            }
            tk.tk_dly_tsk(2);  // > frame time at 9600 baud
        }
    });
    tk.power_on();
    k.run_until(Time::ms(50));
    EXPECT_EQ(bfm.serial().transmitted(), "RDY");
}

}  // namespace
}  // namespace rtk
