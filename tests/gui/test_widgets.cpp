// Widget layer tests: host-cost model, refresh-from-bus wiring,
// step/animate mode availability, frame limiting.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "gui/gui.hpp"
#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::gui {
namespace {

using sysc::Time;

TEST(HostCostModel, BurnsDeterministically) {
    HostCostModel m(1000);
    EXPECT_EQ(m.iterations(), 1000u);
    // Two burns return the same hash (pure function of iterations).
    EXPECT_EQ(m.burn(), m.burn());
    m.set_iterations(0);
    m.burn();  // zero work is fine
}

class WidgetTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
};

struct CountingWidget final : Widget {
    int renders = 0;
    CountingWidget() : Widget("counting", 10) {}
    std::string render() override {
        ++renders;
        return "r" + std::to_string(renders);
    }
};

TEST_F(WidgetTest, RefreshBurnsAndRenders) {
    CountingWidget w;
    w.refresh();
    w.refresh();
    EXPECT_EQ(w.renders, 2);
    EXPECT_EQ(w.refresh_count(), 2u);
    EXPECT_EQ(w.host_work_done(), 20u);
    EXPECT_EQ(w.last_rendering(), "r2");
}

TEST_F(WidgetTest, FrameLimiterSkipsHastyRefreshes) {
    CountingWidget w;
    w.set_min_interval(Time::ms(10));
    k.spawn("drv", [&] {
        w.refresh();            // t=0: accepted
        w.refresh();            // same instant: skipped
        sysc::wait(Time::ms(5));
        w.refresh();            // too soon: skipped
        sysc::wait(Time::ms(5));
        w.refresh();            // t=10: accepted
    });
    k.run();
    EXPECT_EQ(w.refresh_count(), 2u);
    EXPECT_EQ(w.skipped_count(), 2u);
}

TEST_F(WidgetTest, LcdWidgetRendersFrame) {
    bfm::Bfm8051 board(api);
    LcdWidget w(board.lcd());
    sim::TThread& t = api.SIM_CreateThread("drv", sim::ThreadKind::task, 5, [&] {
        board.lcd_print(0, 0, "HELLO");
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(10));
    w.refresh();
    EXPECT_NE(w.last_rendering().find("HELLO"), std::string::npos);
    EXPECT_NE(w.last_rendering().find("+----------------+"), std::string::npos);
}

TEST_F(WidgetTest, SsdAndKeypadWidgets) {
    bfm::Bfm8051 board(api);
    SsdWidget sw(board.ssd());
    KeypadWidget kw(board.keypad());
    board.keypad().press(5);
    sw.refresh();
    kw.refresh();
    EXPECT_NE(kw.last_rendering().find("5"), std::string::npos);
    EXPECT_EQ(sw.last_rendering().front(), '[');
}

TEST_F(WidgetTest, KeypadScriptInjectsEvents) {
    bfm::Bfm8051 board(api);
    KeypadWidget kw(board.keypad());
    kw.play_script(k, {{Time::ms(5), 2, true}, {Time::ms(10), 2, false}});
    k.run_until(Time::ms(7));
    EXPECT_TRUE(board.keypad().is_pressed(2));
    k.run_until(Time::ms(12));
    EXPECT_FALSE(board.keypad().is_pressed(2));
    EXPECT_EQ(kw.injected_events(), 2u);
}

TEST_F(WidgetTest, ModeAvailability) {
    GanttWidget gw(api, Time::ms(10), Time::ms(1));
    EnergyDistributionWidget ew(api);
    EXPECT_TRUE(gw.available_in(Mode::step));
    EXPECT_FALSE(gw.available_in(Mode::animate));
    EXPECT_FALSE(ew.available_in(Mode::step));
    EXPECT_TRUE(ew.available_in(Mode::animate));
}

TEST_F(WidgetTest, FrontendDrivesWidgetFromBusAccess) {
    bfm::Bfm8051 board(api);
    Frontend fe(Mode::animate);
    LcdWidget lw(board.lcd());
    fe.add(lw);
    fe.drive_from_bus(board.bus(), bfm::Bfm8051::lcd_base, 0x10, lw);
    sim::TThread& t = api.SIM_CreateThread("drv", sim::ThreadKind::task, 5, [&] {
        board.lcd_print(0, 0, "X");
        board.bus().write_xdata(0x0100, 1);  // non-LCD access: no refresh
    });
    api.SIM_StartThread(t);
    k.run_until(Time::ms(5));
    EXPECT_GT(lw.refresh_count(), 0u);
    const auto count = lw.refresh_count();
    EXPECT_GT(fe.total_refreshes(), 0u);
    EXPECT_EQ(fe.total_refreshes(), count);
}

TEST_F(WidgetTest, FrontendSkipsUnavailableWidgets) {
    bfm::Bfm8051 board(api);
    Frontend fe(Mode::animate);  // animate: Gantt unavailable
    GanttWidget gw(api, Time::ms(10), Time::ms(1));
    fe.add(gw);
    fe.drive_from_bus(board.bus(), 0, 0x100, gw);
    board.bus().write_xdata(0x10, 1);
    EXPECT_EQ(gw.refresh_count(), 0u);
    EXPECT_EQ(fe.render_all().find("gantt"), std::string::npos);
}

TEST_F(WidgetTest, AnimatePeriodicRefresh) {
    bfm::Bfm8051 board(api);
    Frontend fe(Mode::animate);
    EnergyDistributionWidget ew(api);
    fe.add(ew);
    fe.animate(k, ew, Time::ms(10));
    k.run_until(Time::ms(55));
    EXPECT_EQ(ew.refresh_count(), 5u);
    EXPECT_NE(ew.last_rendering().find("battery"), std::string::npos);
}

TEST_F(WidgetTest, GanttWidgetShowsRecentWindow) {
    GanttWidget gw(api, Time::ms(100), Time::ms(1));
    sim::TThread& t = api.SIM_CreateThread("busy", sim::ThreadKind::task, 5, [&] {
        api.SIM_Wait(Time::ms(5), sim::ExecContext::task);
    });
    api.SIM_StartThread(t);
    k.run();
    gw.refresh();
    EXPECT_NE(gw.last_rendering().find("busy"), std::string::npos);
    EXPECT_NE(gw.last_rendering().find("#"), std::string::npos);
}

}  // namespace
}  // namespace rtk::gui
