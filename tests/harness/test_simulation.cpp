// Multi-instance isolation of the context-explicit API: several
// Simulations nested in one thread, one per host thread, and the
// determinism contract (identical spec + seed => bit-identical runs).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/harness.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::harness {
namespace {

using sysc::Time;
using tkernel::ID;
using tkernel::INT;
using tkernel::T_CSEM;
using tkernel::T_CTSK;
using tkernel::TKernel;

/// Ping-pong workload: producer signals a semaphore every 2 ms, consumer
/// burns annotated work per item. Deterministic for a fixed spec.
void pingpong(Simulation& sim, const ScenarioSpec& spec) {
    TKernel& tk = sim.os();
    const std::uint64_t units = 50 + spec.seed % 100;
    sim.set_user_main([&tk, units] {
        T_CSEM cs;
        cs.name = "items";
        const ID sem = tk.tk_cre_sem(cs);
        T_CTSK prod;
        prod.name = "prod";
        prod.itskpri = 10;
        prod.task = [&tk, sem](INT, void*) {
            for (int i = 0; i < 10; ++i) {
                tk.tk_dly_tsk(2);
                tk.tk_sig_sem(sem, 1);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(prod), 0);
        T_CTSK cons;
        cons.name = "cons";
        cons.itskpri = 5;
        cons.task = [&tk, sem, units](INT, void*) {
            for (int i = 0; i < 10; ++i) {
                if (tk.tk_wai_sem(sem, 1, tkernel::TMO_FEVR) != tkernel::E_OK) {
                    return;
                }
                tk.sim().SIM_WaitUnits(units, sim::ExecContext::task);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(cons), 0);
    });
}

ScenarioSpec pingpong_spec(std::uint64_t seed) {
    ScenarioSpec s;
    s.name = "pingpong/" + std::to_string(seed);
    s.seed = seed;
    s.duration = Time::ms(40);
    s.workload = &pingpong;
    return s;
}

TEST(Simulation, BootsAndRunsUserMain) {
    Simulation sim;
    bool main_ran = false;
    sim.set_user_main([&] { main_ran = true; });
    sim.power_on();
    sim.run_for(Time::ms(5));
    EXPECT_TRUE(main_ran);
    EXPECT_TRUE(sim.os().booted());
    EXPECT_EQ(sim.now(), Time::ms(5));
}

TEST(Simulation, TwoInstancesInOneThreadAreIsolated) {
    Simulation a;
    Simulation b(Simulation::Config{});
    int a_items = 0;
    int b_items = 0;
    auto workload = [](TKernel& tk, int& counter, tkernel::RELTIM period) {
        tk.set_user_main([&tk, &counter, period] {
            T_CTSK ct;
            ct.name = "worker";
            ct.itskpri = 5;
            ct.task = [&tk, &counter, period](INT, void*) {
                for (;;) {
                    tk.tk_dly_tsk(period);
                    ++counter;
                }
            };
            tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        });
    };
    workload(a.os(), a_items, 1);
    workload(b.os(), b_items, 2);
    a.power_on();
    b.power_on();
    // Interleave execution: each kernel advances only its own clock.
    for (int step = 0; step < 5; ++step) {
        a.run_for(Time::ms(2));
        b.run_for(Time::ms(4));
    }
    EXPECT_EQ(a.now(), Time::ms(10));
    EXPECT_EQ(b.now(), Time::ms(20));
    EXPECT_NEAR(a_items, 9, 1);   // ~1 wake/ms over 10 ms (boot offset)
    EXPECT_NEAR(b_items, 9, 1);   // ~1 wake/2ms over 20 ms
    // Thread registries are disjoint.
    EXPECT_EQ(a.sim().threads().size(), 3u);  // tick handler + init + worker
    EXPECT_EQ(b.sim().threads().size(), 3u);
}

TEST(Simulation, ManyKernelsAcrossManyThreads) {
    // One Simulation per host thread, all running concurrently; under
    // ASan/TSan this is the multi-instance safety net.
    constexpr int n = 4;
    std::vector<ScenarioResult> results(n);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (int i = 0; i < n; ++i) {
        threads.emplace_back([i, &results] {
            results[static_cast<std::size_t>(i)] =
                run_scenario(pingpong_spec(static_cast<std::uint64_t>(i)));
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    for (const auto& r : results) {
        EXPECT_TRUE(r.passed) << r.name << ": " << r.error;
        EXPECT_GT(r.stats.dispatches, 0u);
        EXPECT_EQ(r.sim_time, Time::ms(40));
    }
    // Different seeds produce different behaviour...
    EXPECT_NE(results[0].fingerprint, results[1].fingerprint);
}

TEST(Simulation, IdenticalSpecsAreBitIdenticalAcrossThreads) {
    // The same spec run on the main thread and on two worker threads
    // must fingerprint identically.
    const ScenarioSpec spec = pingpong_spec(7);
    const ScenarioResult local = run_scenario(spec);
    ScenarioResult worker1;
    ScenarioResult worker2;
    std::thread t1([&] { worker1 = run_scenario(spec); });
    std::thread t2([&] { worker2 = run_scenario(spec); });
    t1.join();
    t2.join();
    ASSERT_TRUE(local.passed) << local.error;
    EXPECT_EQ(local.fingerprint, worker1.fingerprint);
    EXPECT_EQ(local.fingerprint, worker2.fingerprint);
    EXPECT_EQ(local.stats.dispatches, worker1.stats.dispatches);
    EXPECT_EQ(local.stats.total_cet, worker1.stats.total_cet);
    EXPECT_EQ(local.stats.total_cee_nj, worker1.stats.total_cee_nj);
}

TEST(Simulation, SerialAndParallelBatchesAreBitIdentical) {
    std::vector<ScenarioSpec> specs;
    for (std::uint64_t s = 0; s < 8; ++s) {
        specs.push_back(pingpong_spec(s));
    }
    const BatchReport serial = ScenarioRunner(ScenarioRunner::Options{1}).run(specs);
    const BatchReport parallel =
        ScenarioRunner(ScenarioRunner::Options{4}).run(specs);
    ASSERT_EQ(serial.results.size(), specs.size());
    ASSERT_EQ(parallel.results.size(), specs.size());
    EXPECT_EQ(parallel.threads, 4u);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(serial.results[i].passed) << serial.results[i].error;
        EXPECT_EQ(serial.results[i].fingerprint, parallel.results[i].fingerprint)
            << specs[i].name;
        EXPECT_EQ(serial.results[i].stats.dispatches,
                  parallel.results[i].stats.dispatches);
        EXPECT_EQ(serial.results[i].sim_time, parallel.results[i].sim_time);
    }
}

TEST(Simulation, VcdTraceIsBitIdenticalSerialVsParallel) {
    auto slurp = [](const std::string& path) {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    ScenarioSpec serial_spec = pingpong_spec(3);
    serial_spec.vcd_path = "harness_det_serial.vcd";
    ScenarioSpec parallel_spec = pingpong_spec(3);
    parallel_spec.vcd_path = "harness_det_parallel.vcd";

    const BatchReport serial =
        ScenarioRunner(ScenarioRunner::Options{1}).run({serial_spec});
    const BatchReport parallel = ScenarioRunner(ScenarioRunner::Options{2})
                                     .run({parallel_spec, pingpong_spec(4)});
    ASSERT_TRUE(serial.results[0].passed) << serial.results[0].error;
    ASSERT_TRUE(parallel.results[0].passed) << parallel.results[0].error;
    const std::string a = slurp("harness_det_serial.vcd");
    const std::string b = slurp("harness_det_parallel.vcd");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);  // byte-for-byte
}

TEST(Simulation, RetainedObjectsLiveForTheWholeRun) {
    auto marker = std::make_shared<int>(0);
    std::weak_ptr<int> weak = marker;
    {
        Simulation sim;
        sim.retain(marker);
        marker.reset();
        EXPECT_FALSE(weak.expired());  // kept alive by the simulation
        sim.power_on();
        sim.run_for(Time::ms(1));
    }
    EXPECT_TRUE(weak.expired());
}

}  // namespace
}  // namespace rtk::harness
