// Reduced fuzz block riding the `harness` ctest label: this is the slice
// of the fuzz campaign that runs under the ASan/UBSan and TSan CI jobs,
// where the whole 500-scenario block would be too slow. Fixed seeds,
// both policies, oracle on, serial-vs-parallel differential on.
#include <gtest/gtest.h>

#include "harness/harness.hpp"

namespace rtk::harness::fuzz {
namespace {

TEST(FuzzReduced, SanitizerBlockRunsClean) {
    FuzzOptions opts;
    opts.base_seed = 20260729;
    opts.num_seeds = 12;  // x2 policies x2 legs = 48 oracle-checked runs
    opts.both_policies = true;
    opts.minimize = false;  // sanitizer jobs only need the detection
    const FuzzReport report = run_fuzz_campaign(opts);
    EXPECT_EQ(report.scenarios, 24u);
    ASSERT_TRUE(report.ok()) << report.to_json();
}

}  // namespace
}  // namespace rtk::harness::fuzz
