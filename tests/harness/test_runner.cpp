// ScenarioRunner / BatchReport behaviour: ordering, error capture,
// aggregation and the JSON export shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "sysc/report.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::harness {
namespace {

using sysc::Time;

ScenarioSpec trivial_spec(const std::string& name) {
    ScenarioSpec s;
    s.name = name;
    s.duration = Time::ms(5);
    s.workload = [](Simulation& sim, const ScenarioSpec&) {
        sim.set_user_main([] {});
    };
    return s;
}

TEST(ScenarioRunner, EmptyBatch) {
    const BatchReport r = ScenarioRunner().run({});
    EXPECT_TRUE(r.results.empty());
    EXPECT_TRUE(r.all_passed());
    EXPECT_EQ(r.failed(), 0u);
}

TEST(ScenarioRunner, ResultsStayInSpecOrder) {
    std::vector<ScenarioSpec> specs;
    for (int i = 0; i < 12; ++i) {
        specs.push_back(trivial_spec("s" + std::to_string(i)));
    }
    const BatchReport r = ScenarioRunner(ScenarioRunner::Options{3}).run(specs);
    ASSERT_EQ(r.results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(r.results[i].name, specs[i].name);
        EXPECT_TRUE(r.results[i].passed) << r.results[i].error;
    }
}

TEST(ScenarioRunner, CheckFailureIsCapturedNotThrown) {
    ScenarioSpec bad = trivial_spec("failing");
    bad.check = [](Simulation&, const ScenarioSpec&) { return false; };
    const BatchReport r = ScenarioRunner().run({trivial_spec("good"), bad});
    EXPECT_TRUE(r.results[0].passed);
    EXPECT_FALSE(r.results[1].passed);
    EXPECT_EQ(r.results[1].error, "check predicate failed");
    EXPECT_EQ(r.passed(), 1u);
    EXPECT_EQ(r.failed(), 1u);
    EXPECT_FALSE(r.all_passed());
}

TEST(ScenarioRunner, SimErrorIsCapturedIntoTheResult) {
    ScenarioSpec bad = trivial_spec("fatal");
    bad.workload = [](Simulation&, const ScenarioSpec&) {
        sysc::report(sysc::Severity::fatal, "test", "intentional scenario failure");
    };
    const BatchReport r = ScenarioRunner().run({bad});
    ASSERT_EQ(r.results.size(), 1u);
    EXPECT_FALSE(r.results[0].passed);
    EXPECT_NE(r.results[0].error.find("intentional"), std::string::npos);
}

TEST(ScenarioRunner, EffectiveThreadsClampsToBatchSize) {
    ScenarioRunner r(ScenarioRunner::Options{8});
    EXPECT_EQ(r.effective_threads(3), 3u);
    EXPECT_EQ(r.effective_threads(100), 8u);
    EXPECT_EQ(r.effective_threads(0), 1u);
    ScenarioRunner serial(ScenarioRunner::Options{1});
    EXPECT_EQ(serial.effective_threads(100), 1u);
}

TEST(BatchReport, JsonContainsSchemaFields) {
    std::vector<ScenarioSpec> specs = {trivial_spec("alpha"), trivial_spec("beta")};
    const BatchReport r = ScenarioRunner(ScenarioRunner::Options{2}).run(specs);
    const std::string json = r.to_json();
    for (const char* key :
         {"\"batch\"", "\"scenarios\": 2", "\"threads\": 2", "\"passed\": 2",
          "\"failed\": 0", "\"wall_seconds\"", "\"scenarios_per_second\"",
          "\"results\"", "\"name\": \"alpha\"", "\"name\": \"beta\"",
          "\"fingerprint\": \"0x", "\"dispatches\"", "\"sim_time_ms\"",
          "\"total_cet_ms\"", "\"gantt_segments\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    }
    // Names with quotes/backslashes are escaped.
    ScenarioSpec odd = trivial_spec("we\"ird\\name");
    const BatchReport r2 = ScenarioRunner().run({odd});
    EXPECT_NE(r2.to_json().find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(BatchReport, WriteJsonRoundTripsToDisk) {
    const BatchReport r = ScenarioRunner().run({trivial_spec("disk")});
    const std::string path = "batch_report_test.json";
    ASSERT_TRUE(r.write_json(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), r.to_json());
}

}  // namespace
}  // namespace rtk::harness
