// ScenarioRunner / BatchReport behaviour: ordering, error capture,
// aggregation and the JSON export shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "sysc/report.hpp"
#include "tkernel/tkernel.hpp"

namespace rtk::harness {
namespace {

using sysc::Time;

ScenarioSpec trivial_spec(const std::string& name) {
    ScenarioSpec s;
    s.name = name;
    s.duration = Time::ms(5);
    s.workload = [](Simulation& sim, const ScenarioSpec&) {
        sim.set_user_main([] {});
    };
    return s;
}

TEST(ScenarioRunner, EmptyBatch) {
    const BatchReport r = ScenarioRunner().run({});
    EXPECT_TRUE(r.results.empty());
    EXPECT_TRUE(r.all_passed());
    EXPECT_EQ(r.failed(), 0u);
}

TEST(ScenarioRunner, ResultsStayInSpecOrder) {
    std::vector<ScenarioSpec> specs;
    for (int i = 0; i < 12; ++i) {
        specs.push_back(trivial_spec("s" + std::to_string(i)));
    }
    const BatchReport r = ScenarioRunner(ScenarioRunner::Options{3}).run(specs);
    ASSERT_EQ(r.results.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(r.results[i].name, specs[i].name);
        EXPECT_TRUE(r.results[i].passed) << r.results[i].error;
    }
}

TEST(ScenarioRunner, CheckFailureIsCapturedNotThrown) {
    ScenarioSpec bad = trivial_spec("failing");
    bad.check = [](Simulation&, const ScenarioSpec&) { return false; };
    const BatchReport r = ScenarioRunner().run({trivial_spec("good"), bad});
    EXPECT_TRUE(r.results[0].passed);
    EXPECT_FALSE(r.results[1].passed);
    EXPECT_EQ(r.results[1].error, "check predicate failed");
    EXPECT_EQ(r.passed(), 1u);
    EXPECT_EQ(r.failed(), 1u);
    EXPECT_FALSE(r.all_passed());
}

TEST(ScenarioRunner, SimErrorIsCapturedIntoTheResult) {
    ScenarioSpec bad = trivial_spec("fatal");
    bad.workload = [](Simulation&, const ScenarioSpec&) {
        sysc::report(sysc::Severity::fatal, "test", "intentional scenario failure");
    };
    const BatchReport r = ScenarioRunner().run({bad});
    ASSERT_EQ(r.results.size(), 1u);
    EXPECT_FALSE(r.results[0].passed);
    EXPECT_NE(r.results[0].error.find("intentional"), std::string::npos);
}

TEST(ScenarioRunner, EffectiveThreadsClampsToBatchSize) {
    ScenarioRunner r(ScenarioRunner::Options{8});
    EXPECT_EQ(r.effective_threads(3), 3u);
    EXPECT_EQ(r.effective_threads(100), 8u);
    EXPECT_EQ(r.effective_threads(0), 1u);
    ScenarioRunner serial(ScenarioRunner::Options{1});
    EXPECT_EQ(serial.effective_threads(100), 1u);
}

TEST(BatchReport, JsonContainsSchemaFields) {
    std::vector<ScenarioSpec> specs = {trivial_spec("alpha"), trivial_spec("beta")};
    const BatchReport r = ScenarioRunner(ScenarioRunner::Options{2}).run(specs);
    const std::string json = r.to_json();
    for (const char* key :
         {"\"batch\"", "\"scenarios\": 2", "\"threads\": 2", "\"passed\": 2",
          "\"failed\": 0", "\"wall_seconds\"", "\"scenarios_per_second\"",
          "\"results\"", "\"name\": \"alpha\"", "\"name\": \"beta\"",
          "\"fingerprint\": \"0x", "\"dispatches\"", "\"sim_time_ms\"",
          "\"total_cet_ms\"", "\"gantt_segments\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    }
    // Names with quotes/backslashes are escaped.
    ScenarioSpec odd = trivial_spec("we\"ird\\name");
    const BatchReport r2 = ScenarioRunner().run({odd});
    EXPECT_NE(r2.to_json().find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(BatchReport, EmptyBatchSerializesToValidJson) {
    const BatchReport r = ScenarioRunner().run({});
    const std::string json = r.to_json();
    api::Json doc;
    std::string error;
    ASSERT_TRUE(api::Json::parse(json, doc, &error)) << error;
    EXPECT_EQ(doc.at("batch").at("scenarios").as_u64(), 0u);
    EXPECT_TRUE(doc.at("results").items().empty());
}

TEST(BatchReport, ControlCharactersInErrorsAreEscaped) {
    BatchReport r;
    r.error = "line1\nline2\ttab\x01" "end";
    ScenarioResult bad;
    bad.name = "ctrl";
    bad.error = "bell\x07\x1f";
    r.results.push_back(bad);
    const std::string json = r.to_json();
    // The document must survive a strict re-parse despite the control
    // characters (the old hand-rolled writer is gone; api::Json escapes).
    api::Json doc;
    std::string error;
    ASSERT_TRUE(api::Json::parse(json, doc, &error)) << error;
    EXPECT_EQ(doc.at("batch").at("error").as_string(), r.error);
    EXPECT_EQ(doc.at("results").items().at(0).at("error").as_string(),
              bad.error);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(BatchReport, ZeroWallTimeAndNonFiniteRatesStayValidJson) {
    BatchReport r;
    ScenarioResult res;
    res.name = "nan";
    res.stats.cpu_load = std::numeric_limits<double>::quiet_NaN();
    res.host_seconds = std::numeric_limits<double>::infinity();
    r.results.push_back(res);
    r.wall_seconds = 0.0;  // scenarios_per_second degenerates to 0
    const std::string json = r.to_json();
    api::Json doc;
    std::string error;
    ASSERT_TRUE(api::Json::parse(json, doc, &error)) << error;
    EXPECT_EQ(doc.at("batch").at("scenarios_per_second").as_real(-1.0), 0.0);
    const api::Json& jr = doc.at("results").items().at(0);
    EXPECT_EQ(jr.at("cpu_load").as_string(), "nan");
    EXPECT_EQ(jr.at("host_seconds").as_string(), "inf");
}

TEST(BatchReport, HungScenariosAreReportedAsSuch) {
    ScenarioSpec s = trivial_spec("livelock");
    s.duration = Time::ms(50);
    s.delta_budget = 5;  // a handful of delta cycles, then give up
    const BatchReport r = ScenarioRunner().run({s});
    ASSERT_EQ(r.results.size(), 1u);
    EXPECT_TRUE(r.results[0].hung);
    EXPECT_FALSE(r.results[0].passed);
    EXPECT_NE(r.results[0].error.find("delta budget"), std::string::npos);
    EXPECT_NE(r.to_json().find("\"hung\": true"), std::string::npos);
}

TEST(BatchReport, WriteJsonRoundTripsToDisk) {
    const BatchReport r = ScenarioRunner().run({trivial_spec("disk")});
    const std::string path = "batch_report_test.json";
    ASSERT_TRUE(r.write_json(path));
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), r.to_json());
}

}  // namespace
}  // namespace rtk::harness
