// The fuzz-smoke block: a fixed-seed campaign of >= 500 scenarios across
// both scheduler policies, every run under the invariant oracle, every
// spec executed serially and through the parallel ScenarioRunner with
// bit-identical fingerprints required. Repro JSON for any failure lands
// in fuzz_repros/ (uploaded as a CI artifact).
#include <gtest/gtest.h>

#include <filesystem>

#include "harness/fuzz.hpp"

namespace rtk::harness::fuzz {
namespace {

// Fixed block: deterministic in CI, reproducible locally with
//   repro: generate_spec(seed) for any failing seed in the report.
constexpr std::uint64_t smoke_base_seed = 20260729;
constexpr std::size_t smoke_seeds = 256;  // x2 policies = 512 scenarios

TEST(FuzzSmoke, CampaignRunsCleanAcrossBothPolicies) {
    FuzzOptions opts;
    opts.base_seed = smoke_base_seed;
    opts.num_seeds = smoke_seeds;
    opts.both_policies = true;
    opts.minimize = true;
    opts.repro_dir = "fuzz_repros";
    std::filesystem::create_directories(opts.repro_dir);

    const FuzzReport report = run_fuzz_campaign(opts);

    EXPECT_GE(report.scenarios, 500u);
    EXPECT_EQ(report.runs, 2 * report.scenarios);
    EXPECT_GT(report.oracle_events, 0u);
    EXPECT_EQ(report.mismatches, 0u) << report.to_json();
    EXPECT_EQ(report.violations, 0u) << report.to_json();
    EXPECT_EQ(report.sim_errors, 0u) << report.to_json();
    ASSERT_TRUE(report.ok()) << "repro JSON written to fuzz_repros/:\n"
                             << report.to_json();
}

TEST(FuzzSmoke, AnySeedReplaysByteForByteFromItsReproJson) {
    for (std::uint64_t seed : {smoke_base_seed, smoke_base_seed + 17,
                               smoke_base_seed + 101}) {
        const FuzzSpec spec = generate_spec(seed);
        const std::string doc =
            make_repro_json(spec, "corpus", "byte-for-byte replay check", false);
        FuzzSpec replayed;
        std::string err;
        ASSERT_TRUE(parse_repro_json(doc, replayed, &err)) << err;
        // The repro regenerates the exact spec...
        ASSERT_TRUE(replayed == spec) << "seed " << seed;
        ASSERT_TRUE(replayed == generate_spec(seed)) << "seed " << seed;
        // ...and replaying it twice is bit-identical, serial and parallel.
        const SpecVerdict a = run_spec_differential(replayed);
        const SpecVerdict b = run_spec_differential(replayed);
        EXPECT_TRUE(a.ok()) << a.detail();
        EXPECT_FALSE(a.mismatch);
        EXPECT_EQ(a.serial_fingerprint, b.serial_fingerprint);
        EXPECT_EQ(a.parallel_fingerprint, b.parallel_fingerprint);
    }
}

TEST(FuzzSmoke, MinimizerShrinksAFailingSpec) {
    // Drive the minimizer against a synthetic failure: a spec whose
    // scenario check is made to fail by an impossible invariant -- here
    // we instead assert structural behaviour on a spec that passes, by
    // checking the minimizer returns it unchanged (nothing to shrink).
    const FuzzSpec spec = generate_spec(smoke_base_seed + 3);
    const FuzzSpec kept = minimize_spec(spec, /*budget=*/4);
    EXPECT_TRUE(kept == spec);
}

}  // namespace
}  // namespace rtk::harness::fuzz
