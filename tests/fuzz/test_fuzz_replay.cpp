// Corpus replay: every repro JSON checked in under tests/fuzz/corpus/
// replays as a deterministic regression test -- zero invariant
// violations and bit-identical serial-vs-parallel fingerprints. Corpus
// entries pin the scenarios that once exposed real kernel bugs (see the
// "origin" note inside each file); promoting a new repro is copying the
// dumped fuzz_repros/*.json file here.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/fuzz.hpp"

#ifndef RTK_FUZZ_CORPUS_DIR
#define RTK_FUZZ_CORPUS_DIR "corpus"
#endif

namespace rtk::harness::fuzz {

using api::Json;
namespace {

std::vector<std::filesystem::path> corpus_files() {
    std::vector<std::filesystem::path> files;
    const std::filesystem::path dir(RTK_FUZZ_CORPUS_DIR);
    if (std::filesystem::exists(dir)) {
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            if (entry.path().extension() == ".json") {
                files.push_back(entry.path());
            }
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, CorpusIsNotEmpty) {
    EXPECT_FALSE(corpus_files().empty())
        << "no corpus entries under " << RTK_FUZZ_CORPUS_DIR;
}

TEST(FuzzCorpus, EveryEntryReplaysClean) {
    for (const auto& path : corpus_files()) {
        SCOPED_TRACE(path.string());
        std::ifstream in(path);
        ASSERT_TRUE(in) << "unreadable corpus file";
        std::stringstream ss;
        ss << in.rdbuf();

        FuzzSpec spec;
        std::string err;
        ASSERT_TRUE(parse_repro_json(ss.str(), spec, &err)) << err;

        const SpecVerdict v = run_spec_differential(spec);
        EXPECT_FALSE(v.sim_error) << v.error;
        EXPECT_EQ(v.violation_count, 0u) << v.detail();
        EXPECT_FALSE(v.mismatch) << v.detail();

        // Replay determinism: a second run is bit-identical.
        const SpecVerdict again = run_spec_differential(spec);
        EXPECT_EQ(v.serial_fingerprint, again.serial_fingerprint);
    }
}

TEST(FuzzCorpus, UnminimizedEntriesMatchTheirSeed) {
    // An entry that declares itself unminimized must be exactly what
    // generate_spec(seed) produces -- the byte-for-byte replay property.
    for (const auto& path : corpus_files()) {
        SCOPED_TRACE(path.string());
        std::ifstream in(path);
        std::stringstream ss;
        ss << in.rdbuf();
        Json doc;
        std::string err;
        ASSERT_TRUE(Json::parse(ss.str(), doc, &err)) << err;
        if (!doc.has("minimized") || doc.at("minimized").as_bool()) {
            continue;
        }
        FuzzSpec stored;
        ASSERT_TRUE(FuzzSpec::from_json(doc.at("spec"), stored, &err)) << err;
        FuzzSpec regenerated = generate_spec(stored.seed);
        // The stored policy may be the non-default leg of the seed.
        regenerated.round_robin = stored.round_robin;
        EXPECT_TRUE(stored == regenerated);
    }
}

}  // namespace
}  // namespace rtk::harness::fuzz
