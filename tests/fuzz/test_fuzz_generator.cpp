// Generator and repro-format guarantees: deterministic expansion,
// lossless JSON round-trips, full service-surface coverage.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "harness/fuzz.hpp"

namespace rtk::harness::fuzz {

using api::Json;
namespace {

TEST(FuzzGenerator, SameSeedSameSpec) {
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull, 1ull << 52}) {
        const FuzzSpec a = generate_spec(seed);
        const FuzzSpec b = generate_spec(seed);
        EXPECT_TRUE(a == b) << "seed " << seed;
        EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
    }
}

TEST(FuzzGenerator, DistinctSeedsDiffer) {
    const FuzzSpec a = generate_spec(1);
    const FuzzSpec b = generate_spec(2);
    EXPECT_FALSE(a == b);
}

TEST(FuzzGenerator, SpecsAreBoundedByParams) {
    GenParams p;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const FuzzSpec s = generate_spec(seed, p);
        EXPECT_GE(s.tasks.size(), static_cast<std::size_t>(p.min_tasks));
        EXPECT_LE(s.tasks.size(), static_cast<std::size_t>(p.max_tasks));
        EXPECT_LE(s.sems.size(), static_cast<std::size_t>(p.max_sems));
        EXPECT_GE(s.duration_ms, static_cast<std::uint32_t>(p.min_duration_ms));
        EXPECT_LE(s.duration_ms, static_cast<std::uint32_t>(p.max_duration_ms));
        for (const TaskSpec& t : s.tasks) {
            EXPECT_GE(t.pri, 1);
            EXPECT_LE(t.pri, p.max_pri);
            EXPECT_FALSE(t.ops.empty());
        }
    }
}

TEST(FuzzGenerator, CoversTheServiceCallSurface) {
    // Across a fixed block of seeds, the generator must reach every
    // kernel object class -- this is what "exercising the full service
    // surface" means mechanically.
    std::set<std::string> seen;
    bool rr = false;
    bool pp = false;
    for (std::uint64_t seed = 1; seed <= 120; ++seed) {
        const FuzzSpec s = generate_spec(seed);
        rr = rr || s.round_robin;
        pp = pp || !s.round_robin;
        for (const TaskSpec& t : s.tasks) {
            for (const FuzzOp& op : t.ops) {
                seen.insert(to_string(op.kind));
            }
        }
        for (const CycSpec& c : s.cycs) {
            for (const FuzzOp& op : c.ops) {
                seen.insert(to_string(op.kind));
            }
        }
    }
    for (const char* required :
         {"compute", "delay", "sleep", "wakeup", "sem_wait", "sem_signal",
          "flg_wait", "flg_set", "mtx_lock", "mtx_unlock", "mbx_send",
          "mbf_send", "mpf_get", "mpl_get", "chg_pri", "rot_rdq", "sta_tsk",
          "ter_tsk", "ext_tsk", "suspend", "resume", "raise_int", "dsp_block",
          "ras_tex", "cyc_start", "alm_start", "ref_poll"}) {
        EXPECT_TRUE(seen.count(required)) << "op never generated: " << required;
    }
    EXPECT_TRUE(rr && pp) << "both scheduler policies must be generated";
}

TEST(FuzzGenerator, JsonRoundTripIsLossless) {
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        const FuzzSpec a = generate_spec(seed);
        const std::string text = a.to_json().dump();
        Json parsed;
        std::string err;
        ASSERT_TRUE(Json::parse(text, parsed, &err)) << err;
        FuzzSpec b;
        ASSERT_TRUE(FuzzSpec::from_json(parsed, b, &err)) << err;
        EXPECT_TRUE(a == b) << "seed " << seed;
    }
}

TEST(FuzzGenerator, ReproDocumentRoundTrips) {
    const FuzzSpec a = generate_spec(7);
    const std::string doc = make_repro_json(a, "invariant", "detail text", true);
    FuzzSpec b;
    std::string err;
    ASSERT_TRUE(parse_repro_json(doc, b, &err)) << err;
    EXPECT_TRUE(a == b);
    // A bare spec object (no repro envelope) parses too.
    FuzzSpec c;
    ASSERT_TRUE(parse_repro_json(a.to_json().dump(), c, &err)) << err;
    EXPECT_TRUE(a == c);
}

TEST(FuzzJson, ParserRejectsMalformedInput) {
    Json out;
    for (const char* bad :
         {"", "{", "[1,", "{\"a\" 1}", "{\"a\": 01x}", "nul", "\"unterminated",
          "{\"a\": 1} trailing", ".5", "1e", "18446744073709551616",
          "-9223372036854775809", "-18446744073709551615"}) {
        EXPECT_FALSE(Json::parse(bad, out)) << "accepted: " << bad;
    }
}

TEST(FuzzJson, RealLiteralsParseButStayOutOfIntegerReaders) {
    // Reals round-trip for the report documents (BatchReport, fault
    // coverage); spec/repro integer fields never read them because the
    // integer accessors fall back.
    Json out;
    ASSERT_TRUE(Json::parse("{\"r\": 1.5, \"e\": -2.25e2}", out));
    EXPECT_EQ(out.at("r").as_real(), 1.5);
    EXPECT_EQ(out.at("e").as_real(), -225.0);
    EXPECT_EQ(out.at("r").as_u64(7), 7u);  // integer reader: fallback
    EXPECT_EQ(out.at("r").dump(-1), "1.500000");
}

TEST(FuzzJson, NumbersKeepFullRange) {
    Json out;
    ASSERT_TRUE(Json::parse("{\"u\": 18446744073709551615, \"n\": -42,"
                            " \"min\": -9223372036854775808, \"z\": -0}",
                            out));
    EXPECT_EQ(out.at("u").as_u64(), UINT64_MAX);
    EXPECT_EQ(out.at("n").as_i64(), -42);
    EXPECT_EQ(out.at("min").as_i64(), INT64_MIN);
    EXPECT_EQ(out.at("z").as_i64(), 0);
}

}  // namespace
}  // namespace rtk::harness::fuzz
