// InvariantOracle behaviour: silent on lawful runs, loud on synthetic
// violations injected through its observer interface.
#include <gtest/gtest.h>

#include "harness/fuzz.hpp"
#include "harness/simulation.hpp"

namespace rtk::harness::fuzz {
namespace {

using sim::ThreadKind;
using sim::ThreadState;
using sysc::Time;

TEST(InvariantOracle, CleanGeneratedScenarioHasNoViolations) {
    BuiltScenario built = build_scenario(generate_spec(42));
    const ScenarioResult r = run_scenario(built.scenario);
    EXPECT_TRUE(r.passed) << r.error;
    ASSERT_TRUE(built.oracle->ran);
    EXPECT_EQ(built.oracle->violation_count, 0u);
    EXPECT_GT(built.oracle->events, 0u);
}

TEST(InvariantOracle, CleanHandWrittenWorkloadHasNoViolations) {
    rtk::Simulation sim;
    InvariantOracle oracle(sim.os());
    tkernel::TKernel& tk = sim.os();
    sim.set_user_main([&tk] {
        tkernel::T_CSEM cs;
        const tkernel::ID sem = tk.tk_cre_sem(cs);
        tkernel::T_CTSK ct;
        ct.itskpri = 5;
        ct.task = [&tk, sem](tkernel::INT, void*) {
            for (int i = 0; i < 10; ++i) {
                tk.tk_wai_sem(sem, 1, 3);
                tk.tk_dly_tsk(1);
            }
        };
        tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        tkernel::T_CCYC cc;
        cc.cycatr = tkernel::TA_STA;
        cc.cyctim = 2;
        cc.cychdr = [&tk, sem](void*) { tk.tk_sig_sem(sem, 1); };
        tk.tk_cre_cyc(cc);
    });
    sim.power_on();
    sim.run_until(Time::ms(30));
    oracle.final_check();
    EXPECT_TRUE(oracle.ok()) << oracle.summary();
    EXPECT_GT(oracle.events_seen(), 0u);
}

class OracleInjectionTest : public ::testing::Test {
protected:
    OracleInjectionTest() : oracle_(sim_.os()) {}

    sim::TThread& make_task(const std::string& name, int pri) {
        return sim_.sim().SIM_CreateThread(name, ThreadKind::task, pri, [] {});
    }

    rtk::Simulation sim_;
    InvariantOracle oracle_;
};

TEST_F(OracleInjectionTest, FlagsIllegalStateTransition) {
    sim::TThread& t = make_task("t", 5);
    oracle_.on_state_change(t, ThreadState::waiting, ThreadState::running,
                            Time::ms(1));
    EXPECT_GT(oracle_.violation_count(), 0u);
    EXPECT_NE(oracle_.summary().find("[T2]"), std::string::npos)
        << oracle_.summary();
}

TEST_F(OracleInjectionTest, FlagsInconsistentTransitionChain) {
    sim::TThread& t = make_task("t", 5);
    oracle_.on_state_change(t, ThreadState::dormant, ThreadState::ready,
                            Time::ms(1));
    EXPECT_TRUE(oracle_.ok());
    // Claimed `from` does not match the last observed state.
    oracle_.on_state_change(t, ThreadState::running, ThreadState::dormant,
                            Time::ms(2));
    EXPECT_FALSE(oracle_.ok());
}

TEST_F(OracleInjectionTest, FlagsTimeGoingBackwards) {
    sim::TThread& t = make_task("t", 5);
    oracle_.on_wakeup(t, nullptr, Time::ms(5));
    oracle_.on_wakeup(t, nullptr, Time::ms(3));
    EXPECT_GT(oracle_.violation_count(), 0u);
    EXPECT_NE(oracle_.summary().find("[T1]"), std::string::npos);
}

TEST_F(OracleInjectionTest, FlagsDispatchBypassingAHigherPriorityReadyTask) {
    // First start grabs the idle CPU (RUNNING); the higher-priority task
    // started second stays READY with a pending preemption request.
    sim::TThread& low = make_task("low", 9);
    sim::TThread& high = make_task("high", 2);
    sim_.sim().SIM_StartThread(low);
    sim_.sim().SIM_StartThread(high);
    oracle_.on_dispatch(low, Time::ms(1));
    EXPECT_FALSE(oracle_.ok());
    EXPECT_NE(oracle_.summary().find("[D1]"), std::string::npos)
        << oracle_.summary();
}

TEST_F(OracleInjectionTest, FlagsIdleWithReadyWork) {
    sim::TThread& runner = make_task("runner", 3);
    sim::TThread& waiter = make_task("waiter", 4);
    sim_.sim().SIM_StartThread(runner);  // takes the CPU
    sim_.sim().SIM_StartThread(waiter);  // stays READY
    oracle_.on_idle(Time::ms(1));
    EXPECT_FALSE(oracle_.ok());
    EXPECT_NE(oracle_.summary().find("[D2]"), std::string::npos);
}

TEST_F(OracleInjectionTest, DetachStopsObservation) {
    oracle_.detach();
    EXPECT_EQ(sim_.sim().observer_count(), 0u);
}

TEST(InvariantOracle, RoundRobinPolicySkipsPriorityDispatchLaw) {
    tkernel::TKernel::Config cfg;
    cfg.policy = tkernel::TKernel::SchedPolicy::round_robin;
    rtk::Simulation sim(cfg);
    InvariantOracle oracle(sim.os());
    sim::TThread& low =
        sim.sim().SIM_CreateThread("low", ThreadKind::task, 9, [] {});
    sim::TThread& high =
        sim.sim().SIM_CreateThread("high", ThreadKind::task, 2, [] {});
    sim.sim().SIM_StartThread(low);   // takes the CPU
    sim.sim().SIM_StartThread(high);  // READY behind it, FIFO
    // FIFO dispatch order is lawful under round robin.
    oracle.on_dispatch(low, Time::ms(1));
    EXPECT_TRUE(oracle.ok()) << oracle.summary();
}

}  // namespace
}  // namespace rtk::harness::fuzz
