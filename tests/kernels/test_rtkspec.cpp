// RTK-Spec I (round robin) and RTK-Spec II (priority preemptive) tests --
// the paper's SIM_API-coverage kernels.
#include <gtest/gtest.h>

#include "kernels/rtk_spec.hpp"

namespace rtk::kernels {
namespace {

using sysc::Time;

TEST(RtkSpec1, TimeSliceRotationSharesCpuFairly) {
    sysc::Kernel k;
    RtkSpec1 os(k, RtkSpecBase::Config{}, 5);  // 5 ms slice
    int t1 = os.create_task("a", [&] { os.run_for(50); });
    int t2 = os.create_task("b", [&] { os.run_for(50); });
    os.power_on();
    os.start_task(t1);
    os.start_task(t2);
    k.run_until(Time::ms(120));
    const auto* a = os.sim().SIM_FindByName("a");
    const auto* b = os.sim().SIM_FindByName("b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Both completed their 50 ms of work (task context; the startup
    // prologue adds a few extra service-context microseconds).
    EXPECT_EQ(a->token().cet(sim::ExecContext::task), Time::ms(50));
    EXPECT_EQ(b->token().cet(sim::ExecContext::task), Time::ms(50));
    // Fairness: both were preempted repeatedly by the slice rotation.
    EXPECT_GE(a->preemption_count(), 4u);
    EXPECT_GE(b->preemption_count(), 4u);
}

TEST(RtkSpec1, SliceLengthControlsPreemptionCount) {
    sysc::Kernel k;
    RtkSpec1 os(k, RtkSpecBase::Config{}, 10);
    int t1 = os.create_task("a", [&] { os.run_for(40); });
    int t2 = os.create_task("b", [&] { os.run_for(40); });
    os.power_on();
    os.start_task(t1);
    os.start_task(t2);
    k.run_until(Time::ms(200));
    const auto* a = os.sim().SIM_FindByName("a");
    // ~40 ms of work in 10 ms slices -> about 4 preemptions.
    EXPECT_GE(a->preemption_count(), 3u);
    EXPECT_LE(a->preemption_count(), 5u);
}

TEST(RtkSpec1, DelayWakesAfterRequestedTime) {
    sysc::Kernel k;
    RtkSpec1 os(k);
    Time woke;
    int t = os.create_task("sleeper", [&] {
        os.delay(25);
        woke = sysc::now();
    });
    os.power_on();
    os.start_task(t);
    k.run_until(Time::ms(100));
    EXPECT_GE(woke, Time::ms(25));
    EXPECT_LE(woke, Time::ms(27));
}

TEST(RtkSpec1, SleepWakeup) {
    sysc::Kernel k;
    RtkSpec1 os(k);
    std::vector<int> log;
    int t1 = os.create_task("sleeper", [&] {
        log.push_back(1);
        os.sleep();
        log.push_back(3);
    });
    int t2 = os.create_task("waker", [&] {
        log.push_back(2);
        os.delay(10);
        os.wakeup(t1);
    });
    os.power_on();
    os.start_task(t1);
    os.start_task(t2);
    k.run_until(Time::ms(50));
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(RtkSpec1, SemaphoreProducerConsumer) {
    sysc::Kernel k;
    RtkSpec1 os(k);
    int sem = os.create_sem(0);
    int consumed = 0;
    int t1 = os.create_task("consumer", [&] {
        for (int i = 0; i < 3; ++i) {
            os.sem_wait(sem);
            ++consumed;
        }
    });
    int t2 = os.create_task("producer", [&] {
        for (int i = 0; i < 3; ++i) {
            os.delay(5);
            os.sem_signal(sem);
        }
    });
    os.power_on();
    os.start_task(t1);
    os.start_task(t2);
    k.run_until(Time::ms(100));
    EXPECT_EQ(consumed, 3);
}

TEST(RtkSpec2, PriorityPreemption) {
    sysc::Kernel k;
    RtkSpec2 os(k);
    Time hi_done;
    int lo = os.create_task("lo", [&] { os.run_for(20); }, 10);
    int hi = os.create_task(
        "hi",
        [&] {
            os.delay(5);
            os.run_for(5);
            hi_done = sysc::now();
        },
        1);
    os.power_on();
    os.start_task(lo);
    os.start_task(hi);
    k.run_until(Time::ms(60));
    // hi wakes at ~5-6 ms, preempts lo, finishes by ~11 ms.
    EXPECT_LE(hi_done, Time::ms(12));
    const auto* lo_t = os.sim().SIM_FindByName("lo");
    EXPECT_GE(lo_t->preemption_count(), 1u);
    EXPECT_EQ(lo_t->token().cet(sim::ExecContext::task), Time::ms(20));  // completes
}

TEST(RtkSpec2, NoRotationWithoutPriorityDifference) {
    sysc::Kernel k;
    RtkSpec2 os(k);
    int a = os.create_task("a", [&] { os.run_for(10); }, 5);
    int b = os.create_task("b", [&] { os.run_for(10); }, 5);
    os.power_on();
    os.start_task(a);
    os.start_task(b);
    k.run_until(Time::ms(50));
    // Equal priority, no slicing in RTK-Spec II: a runs to completion first.
    EXPECT_EQ(os.sim().SIM_FindByName("a")->preemption_count(), 0u);
}

TEST(RtkSpecBoth, SameApiDifferentPolicy) {
    // The paper's point: identical kernel code, swapped scheduler policy.
    for (int which = 0; which < 2; ++which) {
        sysc::Kernel k;
        std::unique_ptr<RtkSpecBase> os;
        if (which == 0) {
            os = std::make_unique<RtkSpec1>(k);
        } else {
            os = std::make_unique<RtkSpec2>(k);
        }
        int done = 0;
        int t = os->create_task("t", [&] {
            os->run_for(5);
            ++done;
        });
        os->power_on();
        os->start_task(t);
        k.run_until(Time::ms(20));
        EXPECT_EQ(done, 1) << "policy " << which;
        EXPECT_GT(os->tick_count(), 0u);
    }
}

}  // namespace
}  // namespace rtk::kernels
