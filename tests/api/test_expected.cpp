// api::Status / rtk::Expected<T>: ER mapping, value access, fatal paths,
// and the error/wait-cause pretty-printers.
#include <gtest/gtest.h>

#include "api/error.hpp"
#include "api/expected.hpp"
#include "sysc/report.hpp"

using namespace rtk;
using namespace rtk::tkernel;

TEST(Status, DefaultIsOk) {
    const api::Status st;
    EXPECT_TRUE(st.ok());
    EXPECT_TRUE(static_cast<bool>(st));
    EXPECT_EQ(st.er(), E_OK);
    EXPECT_STREQ(st.name(), "E_OK");
}

TEST(Status, WrapsEveryErrorCode) {
    // Every code of the T-Kernel numbering must map to its mnemonic --
    // the whole point of the facade is that nothing prints as a bare int.
    const struct {
        ER er;
        const char* name;
    } cases[] = {
        {E_OK, "E_OK"},       {E_SYS, "E_SYS"},     {E_NOSPT, "E_NOSPT"},
        {E_RSATR, "E_RSATR"}, {E_PAR, "E_PAR"},     {E_ID, "E_ID"},
        {E_CTX, "E_CTX"},     {E_ILUSE, "E_ILUSE"}, {E_NOMEM, "E_NOMEM"},
        {E_LIMIT, "E_LIMIT"}, {E_OBJ, "E_OBJ"},     {E_NOEXS, "E_NOEXS"},
        {E_QOVR, "E_QOVR"},   {E_RLWAI, "E_RLWAI"}, {E_TMOUT, "E_TMOUT"},
        {E_DLT, "E_DLT"},     {E_DISWAI, "E_DISWAI"},
    };
    for (const auto& c : cases) {
        const api::Status st = api::Status::from_er(c.er);
        EXPECT_EQ(st.ok(), c.er >= 0) << c.name;
        EXPECT_STREQ(st.name(), c.name);
        EXPECT_STREQ(rtk::er_to_string(c.er), c.name);
        EXPECT_TRUE(st == c.er);
    }
}

TEST(Status, DescribeIncludesMnemonicAndNumber) {
    EXPECT_EQ(api::Status::from_er(E_TMOUT).describe(), "E_TMOUT (-50)");
    EXPECT_EQ(api::Status::from_er(E_OK).describe(), "E_OK (0)");
    EXPECT_EQ(api::er_describe(3), "3");  // positive service results stay bare
}

TEST(Status, PositiveReturnValuesAreSuccess) {
    const api::Status st = api::Status::from_er(5);  // e.g. tk_can_wup count
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st.er(), 5);
}

TEST(Status, ExpectThrowsOnFailure) {
    EXPECT_NO_THROW(api::Status().expect("fine"));
    EXPECT_THROW(api::Status::from_er(E_NOEXS).expect("doomed"),
                 sysc::SimError);
}

TEST(Expected, HoldsValueOnSuccess) {
    const Expected<int> e = 42;
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.er(), E_OK);
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(*e, 42);
    EXPECT_EQ(e.value_or(-1), 42);
    EXPECT_EQ(e.expect("answer"), 42);
}

TEST(Expected, FailureCarriesTheCode) {
    const Expected<int> e = Expected<int>::failure(E_TMOUT);
    EXPECT_FALSE(e.ok());
    EXPECT_FALSE(static_cast<bool>(e));
    EXPECT_EQ(e.er(), E_TMOUT);
    EXPECT_FALSE(e.status().ok());
    EXPECT_STREQ(e.error_name(), "E_TMOUT");
    EXPECT_EQ(e.value_or(-7), -7);
}

TEST(Expected, ValueOnFailureIsFatalNotUb) {
    const Expected<int> e = Expected<int>::failure(E_ID);
    EXPECT_THROW((void)e.value(), sysc::SimError);
    EXPECT_THROW((void)e.expect("must have"), sysc::SimError);
}

TEST(Expected, PropagatesFromFailedStatus) {
    const api::Status failed = api::Status::from_er(E_CTX);
    const Expected<int> e = failed;  // the `if (!st) return st;` shape
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.er(), E_CTX);
}

TEST(Expected, SuccessStatusWithoutValueIsFatal) {
    EXPECT_THROW((void)Expected<int>(api::Status()), sysc::SimError);
}

// ---- wait-cause pretty-printers ---------------------------------------------

TEST(WaitCause, TtwSingleBits) {
    EXPECT_EQ(api::ttw_to_string(TTW_SLP), "TTW_SLP");
    EXPECT_EQ(api::ttw_to_string(TTW_DLY), "TTW_DLY");
    EXPECT_EQ(api::ttw_to_string(TTW_SEM), "TTW_SEM");
    EXPECT_EQ(api::ttw_to_string(TTW_FLG), "TTW_FLG");
    EXPECT_EQ(api::ttw_to_string(TTW_MBX), "TTW_MBX");
    EXPECT_EQ(api::ttw_to_string(TTW_MTX), "TTW_MTX");
    EXPECT_EQ(api::ttw_to_string(TTW_SMBF), "TTW_SMBF");
    EXPECT_EQ(api::ttw_to_string(TTW_RMBF), "TTW_RMBF");
    EXPECT_EQ(api::ttw_to_string(TTW_MPF), "TTW_MPF");
    EXPECT_EQ(api::ttw_to_string(TTW_MPL), "TTW_MPL");
}

TEST(WaitCause, TtwCombinationsAndUnknownBits) {
    EXPECT_EQ(api::ttw_to_string(0), "none");
    EXPECT_EQ(api::ttw_to_string(TTW_SLP | TTW_DLY), "TTW_SLP|TTW_DLY");
    EXPECT_EQ(api::ttw_to_string(TTW_SEM | 0x80000000u), "TTW_SEM|0x80000000");
}

TEST(WaitCause, TaskStates) {
    EXPECT_STREQ(api::tts_to_string(TTS_RUN), "TTS_RUN");
    EXPECT_STREQ(api::tts_to_string(TTS_RDY), "TTS_RDY");
    EXPECT_STREQ(api::tts_to_string(TTS_WAI), "TTS_WAI");
    EXPECT_STREQ(api::tts_to_string(TTS_SUS), "TTS_SUS");
    EXPECT_STREQ(api::tts_to_string(TTS_WAS), "TTS_WAS");
    EXPECT_STREQ(api::tts_to_string(TTS_DMT), "TTS_DMT");
}

TEST(WaitCause, DescribeTaskState) {
    T_RTSK r;
    r.tskstat = TTS_WAI;
    r.tskwait = TTW_SEM;
    r.wid = 3;
    EXPECT_EQ(api::describe_task_state(r), "TTS_WAI (TTW_SEM id 3)");

    r.tskstat = TTS_RUN;
    r.tskwait = 0;
    EXPECT_EQ(api::describe_task_state(r), "TTS_RUN");

    r.tskstat = TTS_WAS;  // waiting-suspended includes TTS_WAI
    r.tskwait = TTW_DLY;
    r.wid = 0;
    EXPECT_EQ(api::describe_task_state(r), "TTS_WAS (TTW_DLY)");
}
