// The error-path matrix through the facade, parametrized per object
// kind: E_ID on null handles, facade-level E_NOEXS on stale
// generation-counted handles, E_CTX for blocking calls from handler
// context, E_PAR on bad creation packets.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "api/system.hpp"
#include "harness/simulation.hpp"

using namespace rtk;
using namespace rtk::tkernel;

namespace {

/// One row per object kind. Each callback drives the matrix through the
/// kind's typed handle; a null callback means the cell does not apply
/// (e.g. tasks have no blocking facade call).
struct KindCase {
    const char* name;
    api::Kind kind;
    /// Create with an invalid packet; returns the creation error.
    std::function<ER(api::System&)> create_bad;
    /// Create a good instance, adopt the same ID (staling the original),
    /// then run one op on the stale handle; returns its error.
    std::function<ER(api::System&)> stale_op;
    /// A blocking wait (TMO_FEVR) through the facade; run from handler
    /// context it must fail E_CTX. Returns the op's error.
    std::function<ER(api::System&)> blocking_op;
};

// Helper shape shared by the stale cells: create, re-adopt, op on stale.
template <typename CreateFn, typename AdoptFn, typename OpFn>
ER stale(api::System& sys, CreateFn&& create, AdoptFn&& adopt, OpFn&& op) {
    auto original = create(sys);
    if (!original.ok()) {
        return original.er();
    }
    auto rebound = adopt(sys, original->id());  // stales `original`
    if (!rebound.ok()) {
        return rebound.er();
    }
    rebound->release();
    const ER er = op(*original);
    original->release();  // stale anyway; no RAII effect
    return er;
}

const KindCase kCases[] = {
    {"task", api::Kind::task,
     [](api::System& s) {
         return s.create_task({.name = "bad"}).er();  // no entry and no body
     },
     [](api::System& s) {
         return stale(
             s,
             [](api::System& sys) {
                 return sys.create_task({.name = "t", .body = [] {}});
             },
             [](api::System& sys, ID id) { return sys.adopt_task(id); },
             [](api::Task& t) { return t.start().er(); });
     },
     nullptr},
    {"semaphore", api::Kind::semaphore,
     [](api::System& s) { return s.create_semaphore({.initial = -1}).er(); },
     [](api::System& s) {
         return stale(
             s, [](api::System& sys) { return sys.create_semaphore({}); },
             [](api::System& sys, ID id) { return sys.adopt_semaphore(id); },
             [](api::Semaphore& h) { return h.signal().er(); });
     },
     [](api::System& s) {
         api::Semaphore h = s.create_semaphore({}).expect("sem");
         return h.wait(1, TMO_FEVR).er();
     }},
    {"eventflag", api::Kind::eventflag,
     nullptr,  // every T_CFLG packet is structurally valid
     [](api::System& s) {
         return stale(
             s, [](api::System& sys) { return sys.create_eventflag({}); },
             [](api::System& sys, ID id) { return sys.adopt_eventflag(id); },
             [](api::EventFlag& h) { return h.set(1).er(); });
     },
     [](api::System& s) {
         api::EventFlag h = s.create_eventflag({}).expect("flg");
         return h.wait(0x1, TWF_ORW, TMO_FEVR).er();
     }},
    {"mutex", api::Kind::mutex,
     [](api::System& s) {
         return s
             .create_mutex({.protocol = api::MutexDef::Protocol::ceiling,
                            .ceiling = max_priority + 1})
             .er();
     },
     [](api::System& s) {
         return stale(
             s, [](api::System& sys) { return sys.create_mutex({}); },
             [](api::System& sys, ID id) { return sys.adopt_mutex(id); },
             [](api::Mutex& h) { return h.unlock().er(); });
     },
     [](api::System& s) {
         api::Mutex h = s.create_mutex({}).expect("mtx");
         return h.lock(TMO_FEVR).er();
     }},
    {"mailbox", api::Kind::mailbox,
     nullptr,
     [](api::System& s) {
         return stale(
             s, [](api::System& sys) { return sys.create_mailbox({}); },
             [](api::System& sys, ID id) { return sys.adopt_mailbox(id); },
             [](api::Mailbox& h) { return h.receive(TMO_POL).er(); });
     },
     [](api::System& s) {
         api::Mailbox h = s.create_mailbox({}).expect("mbx");
         return h.receive(TMO_FEVR).er();
     }},
    {"msgbuf", api::Kind::msgbuf,
     [](api::System& s) { return s.create_msgbuf({.max_message = 0}).er(); },
     [](api::System& s) {
         return stale(
             s, [](api::System& sys) { return sys.create_msgbuf({}); },
             [](api::System& sys, ID id) { return sys.adopt_msgbuf(id); },
             [](api::MsgBuf& h) {
                 char c = 0;
                 return h.send(&c, 1, TMO_POL).er();
             });
     },
     [](api::System& s) {
         api::MsgBuf h = s.create_msgbuf({}).expect("mbf");
         char buf[16];
         return h.receive(buf, TMO_FEVR).er();
     }},
    {"fixed_pool", api::Kind::fixed_pool,
     [](api::System& s) { return s.create_fixed_pool({.blocks = 0}).er(); },
     [](api::System& s) {
         return stale(
             s, [](api::System& sys) { return sys.create_fixed_pool({}); },
             [](api::System& sys, ID id) { return sys.adopt_fixed_pool(id); },
             [](api::FixedPool& h) { return h.get(TMO_POL).er(); });
     },
     [](api::System& s) {
         api::FixedPool h = s.create_fixed_pool({.blocks = 1}).expect("mpf");
         void* blk = h.get(TMO_POL).expect("drain the single block");
         const ER er = h.get(TMO_FEVR).er();
         h.put(blk).expect("return block");
         return er;
     }},
    {"var_pool", api::Kind::var_pool,
     [](api::System& s) { return s.create_var_pool({.size = -8}).er(); },
     [](api::System& s) {
         return stale(
             s, [](api::System& sys) { return sys.create_var_pool({}); },
             [](api::System& sys, ID id) { return sys.adopt_var_pool(id); },
             [](api::VarPool& h) { return h.get(16, TMO_POL).er(); });
     },
     [](api::System& s) {
         api::VarPool h = s.create_var_pool({.size = 64}).expect("mpl");
         void* held = h.get(40, TMO_POL).expect("drain the pool");
         const ER er = h.get(40, TMO_FEVR).er();  // no space left: must wait
         h.put(held).expect("return extent");
         return er;
     }},
    {"cyclic", api::Kind::cyclic,
     [](api::System& s) {
         return s.create_cyclic({.name = "c", .handler = nullptr}).er();
     },
     [](api::System& s) {
         return stale(
             s,
             [](api::System& sys) {
                 return sys.create_cyclic(
                     {.name = "c", .handler = [](void*) {}, .autostart = false});
             },
             [](api::System& sys, ID id) { return sys.adopt_cyclic(id); },
             [](api::Cyclic& h) { return h.start().er(); });
     },
     nullptr},
    {"alarm", api::Kind::alarm,
     [](api::System& s) {
         return s.create_alarm({.name = "a", .handler = nullptr}).er();
     },
     [](api::System& s) {
         return stale(
             s,
             [](api::System& sys) {
                 return sys.create_alarm({.name = "a", .handler = [](void*) {}});
             },
             [](api::System& sys, ID id) { return sys.adopt_alarm(id); },
             [](api::Alarm& h) { return h.start(5).er(); });
     },
     nullptr},
};

class ErrorMatrixTest : public ::testing::TestWithParam<KindCase> {};

}  // namespace

TEST_P(ErrorMatrixTest, BadCreatePacketIsEpar) {
    const KindCase& c = GetParam();
    if (!c.create_bad) {
        GTEST_SKIP() << c.name << " has no structurally invalid packet";
    }
    Simulation sim;
    api::System sys(sim.os());
    EXPECT_EQ(c.create_bad(sys), E_PAR);
    // Nothing leaked into the registry or the facade tables.
    EXPECT_EQ(sys.live_count(c.kind), 0u);
}

TEST_P(ErrorMatrixTest, StaleGenerationIsCaughtAtTheFacade) {
    const KindCase& c = GetParam();
    Simulation sim;
    api::System sys(sim.os());
    // The kernel object is alive the whole time; only the facade's
    // generation check can produce this E_NOEXS.
    EXPECT_EQ(c.stale_op(sys), E_NOEXS);
    EXPECT_EQ(sys.live_count(c.kind), 1u);
}

TEST_P(ErrorMatrixTest, BlockingFromHandlerContextIsEctx) {
    const KindCase& c = GetParam();
    if (!c.blocking_op) {
        GTEST_SKIP() << c.name << " has no blocking facade call";
    }
    Simulation sim;
    api::System sys(sim.os());
    ER got = E_OK;
    bool ran = false;
    sim.set_user_main([&] {
        // A cyclic handler runs in task-independent context: the wait
        // service must refuse to block it.
        api::Cyclic cyc = sys.create_cyclic({.name = "probe",
                                             .handler =
                                                 [&](void*) {
                                                     if (!ran) {
                                                         ran = true;
                                                         got = c.blocking_op(sys);
                                                     }
                                                 },
                                             .period_ms = 2})
                              .expect("probe cyclic");
        cyc.release();
    });
    sim.power_on();
    sim.run_for(sysc::Time::ms(20));
    ASSERT_TRUE(ran) << c.name;
    EXPECT_EQ(got, E_CTX) << c.name << ": " << rtk::er_to_string(got);
}

INSTANTIATE_TEST_SUITE_P(PerKind, ErrorMatrixTest, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<KindCase>& param) {
                             return std::string(param.param.name);
                         });
