// SystemBuilder / SystemSpec: declarative instantiation, name lookup,
// rollback on failure, JSON round-trip, and the harness bridge
// (scenario_from_system) with fingerprint determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/builder.hpp"
#include "harness/harness.hpp"

using namespace rtk;
using namespace rtk::tkernel;
using sysc::Time;

namespace {

/// A spec touching every object class (behaviours included where the
/// class needs one).
api::SystemSpec full_spec() {
    api::SystemBuilder b;
    b.semaphore("gate").initial(1).max(4).priority_queue();
    b.eventflag("flags").initial(0x3);
    b.mutex("lock").inherit();
    b.mailbox("box").priority_messages();
    b.msgbuf("pipe").buffer_size(128).max_message(32);
    b.fixed_pool("frames").blocks(3).block_size(24);
    b.var_pool("heap").size(512);
    b.task("worker").priority(7).stack(2048).autostart(5).entry([](INT, void*) {});
    b.task("helper").priority(9).body([] {});
    b.cyclic("pulse").period(4).phase(2).autostart(false).honor_phase().handler(
        [](void*) {});
    b.alarm("deadline").handler([](void*) {}).start_after(25);
    b.interrupt(42).priority(3).handler([](void*) {});
    return b.take_spec();
}

}  // namespace

TEST(SystemBuilder, InstantiatesTheWholeGraph) {
    Simulation sim;
    api::System sys(sim.os());
    api::SystemBuilder b(full_spec());
    api::SystemHandles h = b.instantiate(sys).expect("instantiate");

    EXPECT_EQ(sim.os().semaphores().size(), 1u);
    EXPECT_EQ(sim.os().eventflags().size(), 1u);
    EXPECT_EQ(sim.os().mutexes().size(), 1u);
    EXPECT_EQ(sim.os().mailboxes().size(), 1u);
    EXPECT_EQ(sim.os().message_buffers().size(), 1u);
    EXPECT_EQ(sim.os().fixed_pools().size(), 1u);
    EXPECT_EQ(sim.os().variable_pools().size(), 1u);
    EXPECT_EQ(sim.os().tasks().size(), 2u);
    EXPECT_EQ(sim.os().cyclics().size(), 1u);
    EXPECT_EQ(sim.os().alarms().size(), 1u);
    EXPECT_EQ(sim.os().interrupt_vectors().count(42), 1u);

    // Name lookup, typed.
    ASSERT_NE(h.find_task("worker"), nullptr);
    ASSERT_NE(h.find_semaphore("gate"), nullptr);
    EXPECT_EQ(h.find_task("missing"), nullptr);
    EXPECT_EQ(h.find_semaphore("gate")->ref().expect("gate").semcnt, 1);

    // Attributes made it through to the kernel objects.
    const Semaphore* s = sim.os().semaphores().find(h.find_semaphore("gate")->id());
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->maxsem, 4);
    EXPECT_NE(s->atr & TA_TPRI, 0u);
    const TCB* worker = sim.os().find_task(h.find_task("worker")->id());
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(worker->ipri, 7);
    EXPECT_EQ(worker->stksz, 2048u);
    // autostart(5): the worker was started with start code 5.
    EXPECT_EQ(worker->stacd, 5);
    EXPECT_EQ(h.find_task("helper")->ref().expect("helper").tskstat, TTS_DMT);
    // The alarm was armed at instantiation.
    EXPECT_EQ(h.find_alarm("deadline")->ref().expect("deadline").almstat,
              static_cast<UINT>(TALM_STA));

    h.release_all();
}

TEST(SystemBuilder, RollsBackOnFailure) {
    Simulation sim;
    api::System sys(sim.os());
    api::SystemBuilder b;
    b.semaphore("ok");
    b.task("ok_task").body([] {});
    b.msgbuf("broken").max_message(0);  // E_PAR from tk_cre_mbf
    const Expected<api::SystemHandles> h = b.instantiate(sys);
    ASSERT_FALSE(h.ok());
    EXPECT_EQ(h.er(), E_PAR);
    // The partial graph was rolled back: nothing leaked.
    EXPECT_EQ(sim.os().semaphores().size(), 0u);
    EXPECT_EQ(sim.os().tasks().size(), 0u);
    EXPECT_EQ(sim.os().message_buffers().size(), 0u);
    EXPECT_EQ(sys.live_count(api::Kind::semaphore), 0u);
    EXPECT_EQ(sys.live_count(api::Kind::task), 0u);
}

TEST(SystemBuilder, RejectsDuplicateNamesPerClass) {
    Simulation sim;
    api::System sys(sim.os());
    api::SystemBuilder b;
    b.semaphore("twin");
    b.semaphore("twin");  // would silently shadow in find_semaphore()
    const Expected<api::SystemHandles> h = b.instantiate(sys);
    ASSERT_FALSE(h.ok());
    EXPECT_EQ(h.er(), E_PAR);
    EXPECT_EQ(sim.os().semaphores().size(), 0u);
}

TEST(SystemBuilder, NodeReferencesSurviveLaterBuilderCalls) {
    api::SystemBuilder b;
    api::TaskNode& first = b.task("first").priority(3);
    for (int i = 0; i < 100; ++i) {  // force plenty of growth
        b.task("t" + std::to_string(i));
    }
    first.priority(9).body([] {});  // must still be the live node
    EXPECT_EQ(b.spec().tasks.front().def.priority, 9);
}

TEST(SystemBuilder, RollsBackInterruptVectorsOnFailure) {
    Simulation sim;
    api::System sys(sim.os());
    api::SystemBuilder b;
    b.interrupt(7).handler([](void*) {});
    b.interrupt(7).handler([](void*) {});  // same vector, no if_free(): E_OBJ
    const Expected<api::SystemHandles> h = b.instantiate(sys);
    ASSERT_FALSE(h.ok());
    EXPECT_EQ(h.er(), E_OBJ);
    // The first definition was undone too: no handler survives whose
    // closure would dangle after the rolled-back graph dies.
    EXPECT_EQ(sim.os().interrupt_vectors().count(7), 0u);
}

TEST(SystemSpec, JsonRoundTripIsLossless) {
    const api::SystemSpec spec = full_spec();
    const std::string dumped = spec.to_json().dump(2);

    api::Json parsed;
    std::string err;
    ASSERT_TRUE(api::Json::parse(dumped, parsed, &err)) << err;
    api::SystemSpec back;
    ASSERT_TRUE(api::SystemSpec::from_json(parsed, back, &err)) << err;

    // Structural identity: re-serialization is byte-identical.
    EXPECT_EQ(back.to_json().dump(2), dumped);
    EXPECT_EQ(back.object_count(), spec.object_count());
    EXPECT_EQ(back.tasks[0].def.name, "worker");
    EXPECT_EQ(back.tasks[0].def.priority, 7);
    EXPECT_TRUE(back.tasks[0].auto_start);
    EXPECT_EQ(back.tasks[0].stacd, 5);
    EXPECT_EQ(back.mutexes[0].def.protocol, api::MutexDef::Protocol::inherit);
    EXPECT_EQ(back.cyclics[0].def.phase_ms, 2u);
    EXPECT_TRUE(back.cyclics[0].def.honor_phase);
    EXPECT_EQ(back.alarms[0].start_after_ms, 25u);
    EXPECT_EQ(back.interrupts[0].intno, 42u);
}

TEST(SystemSpec, FromJsonRejectsForeignDocuments) {
    api::Json j;
    std::string err;
    ASSERT_TRUE(api::Json::parse("{\"something\": 1}", j, &err)) << err;
    api::SystemSpec out;
    EXPECT_FALSE(api::SystemSpec::from_json(j, out, &err));
    EXPECT_FALSE(err.empty());
}

TEST(ScenarioFromSystem, RunsAndIsDeterministic) {
    // A producer/consumer system as pure data + behaviours; the wire
    // hook checks the per-run handles; run the scenario twice and demand
    // bit-identical behaviour (same fingerprint).
    int wired = 0;
    const auto make = [&wired] {
        // Per-run state: the workload re-instantiates the graph for every
        // run, so the bodies reach their objects through the wire-filled
        // holder of that run.
        auto h = std::make_shared<api::SystemHandles>();
        api::SystemBuilder b;
        b.semaphore("items");
        b.task("producer").priority(10).autostart().body([h] {
            for (int i = 0; i < 5; ++i) {
                h->find_semaphore("items")->signal().expect("produce");
            }
        });
        b.task("consumer").priority(5).autostart().body([h] {
            for (int i = 0; i < 5; ++i) {
                h->find_semaphore("items")->wait().expect("consume");
            }
        });
        return harness::scenario_from_system(
            "det", b.take_spec(), {}, Time::ms(20),
            [h, &wired](Simulation&, api::SystemHandles& handles) {
                ++wired;
                // Hand this run's handles to the bodies.
                EXPECT_NE(handles.find_semaphore("items"), nullptr);
                *h = std::move(handles);
                h->release_all();
            });
    };
    const harness::ScenarioResult a = harness::run_scenario(make());
    const harness::ScenarioResult b = harness::run_scenario(make());
    EXPECT_TRUE(a.passed) << a.error;
    EXPECT_TRUE(b.passed) << b.error;
    EXPECT_EQ(wired, 2);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
}
