// Typed handles: RAII ownership, release()/destroy(), generation
// stamping, stale detection at the facade, and raw-ID adoption.
#include <gtest/gtest.h>

#include <cstdint>

#include "api/system.hpp"
#include "harness/simulation.hpp"

using namespace rtk;
using namespace rtk::tkernel;

namespace {

class HandlesTest : public ::testing::Test {
protected:
    Simulation sim;
    api::System sys{sim.os()};
};

}  // namespace

TEST_F(HandlesTest, NullHandleFailsWithEid) {
    api::Semaphore null_sem;
    EXPECT_FALSE(null_sem.valid());
    EXPECT_EQ(null_sem.id(), 0);
    EXPECT_TRUE(null_sem.signal() == E_ID);
    EXPECT_TRUE(null_sem.wait(1, TMO_POL) == E_ID);
    EXPECT_EQ(null_sem.ref().er(), E_ID);
    EXPECT_TRUE(null_sem.destroy() == E_ID);
}

TEST_F(HandlesTest, RaiiOwnsTheKernelObject) {
    EXPECT_EQ(sim.os().semaphores().size(), 0u);
    {
        Expected<api::Semaphore> sem = sys.create_semaphore({.name = "raii"});
        ASSERT_TRUE(sem.ok());
        EXPECT_TRUE(sem->valid());
        EXPECT_GT(sem->id(), 0);
        EXPECT_EQ(sim.os().semaphores().size(), 1u);
        EXPECT_EQ(sys.live_count(api::Kind::semaphore), 1u);
    }
    // Handle destruction deleted the object through the facade.
    EXPECT_EQ(sim.os().semaphores().size(), 0u);
    EXPECT_EQ(sys.live_count(api::Kind::semaphore), 0u);
}

TEST_F(HandlesTest, ReleaseHandsOwnershipToTheKernel) {
    ID raw = 0;
    {
        api::Semaphore sem = sys.create_semaphore({.name = "kept"}).expect("create");
        raw = sem.release();
        EXPECT_FALSE(sem.owns());
        EXPECT_TRUE(sem.valid());          // still usable for calls
        EXPECT_TRUE(sem.signal().ok());    // ... and they work
    }
    // Object survived the handle.
    EXPECT_EQ(sim.os().semaphores().size(), 1u);
    EXPECT_NE(sim.os().semaphores().find(raw), nullptr);
}

TEST_F(HandlesTest, DestroyInvalidatesTheHandle) {
    api::Semaphore sem = sys.create_semaphore({}).expect("create");
    const ID raw = sem.id();
    EXPECT_TRUE(sem.destroy().ok());
    EXPECT_FALSE(sem.valid());
    EXPECT_EQ(sem.id(), 0);  // nulled
    EXPECT_EQ(sim.os().semaphores().find(raw), nullptr);
    // Destroying again is E_ID (null handle), not UB.
    EXPECT_TRUE(sem.destroy() == E_ID);
}

TEST_F(HandlesTest, MoveTransfersOwnership) {
    api::Semaphore a = sys.create_semaphore({}).expect("create");
    const ID raw = a.id();
    api::Semaphore b = std::move(a);
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from is null
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(b.id(), raw);
    // Move-assign over an owned handle deletes the overwritten object.
    api::Semaphore c = sys.create_semaphore({}).expect("create");
    const ID craw = c.id();
    c = std::move(b);
    EXPECT_EQ(sim.os().semaphores().find(craw), nullptr);
    EXPECT_EQ(c.id(), raw);
}

TEST_F(HandlesTest, AdoptionReStampsTheGeneration) {
    // A raw, paper-level creation the facade has never seen:
    T_CSEM pk;
    const ID raw = sim.os().tk_cre_sem(pk);
    ASSERT_GT(raw, 0);

    api::Semaphore first = sys.adopt_semaphore(raw).expect("adopt");
    EXPECT_TRUE(first.valid());
    EXPECT_FALSE(first.owns());
    EXPECT_TRUE(first.signal().ok());

    // Adopting the same ID again retires the first binding: the facade
    // reports E_NOEXS for the stale handle even though the kernel object
    // is alive -- exactly the stale-ID-reuse protection.
    api::Semaphore second = sys.adopt_semaphore(raw).expect("re-adopt");
    EXPECT_GT(second.generation(), first.generation());
    EXPECT_FALSE(first.valid());
    EXPECT_TRUE(first.signal() == E_NOEXS);
    EXPECT_TRUE(second.signal().ok());
    EXPECT_NE(sim.os().semaphores().find(raw), nullptr);  // object untouched
}

TEST_F(HandlesTest, DeletionBehindTheFacadeSurfacesAsNoexs) {
    api::Semaphore sem = sys.create_semaphore({}).expect("create");
    // Deleted through the paper-level surface, behind the facade's back:
    ASSERT_EQ(sim.os().tk_del_sem(sem.id()), E_OK);
    // The facade table still lists it, so the call reaches the kernel
    // and comes back E_NOEXS (the freed id sits on the registry's free
    // list; nothing has reclaimed it yet).
    EXPECT_TRUE(sem.signal() == E_NOEXS);
    sem.release();  // avoid double delete on scope exit
}

// ---- dense-id recycling: stale handles stay dead ---------------------------
//
// The registry recycles deleted ids LIFO, so under churn the *same* raw
// id is handed to object after object. The facade's per-id generation is
// what keeps a handle from one incarnation off the next one's back.

TEST_F(HandlesTest, DestroyedIdIsRecycledWithAFreshGeneration) {
    api::Semaphore first = sys.create_semaphore({.name = "one"}).expect("create");
    const ID raw = first.id();
    const auto g1 = first.generation();
    EXPECT_TRUE(first.destroy().ok());

    // The dense registry reuses the freed id for the next create...
    api::Semaphore second = sys.create_semaphore({.name = "two"}).expect("create");
    EXPECT_EQ(second.id(), raw);
    // ...but the facade stamps a strictly newer generation on it.
    EXPECT_GT(second.generation(), g1);
    EXPECT_TRUE(second.signal().ok());
}

TEST_F(HandlesTest, StaleHandleCannotTouchTheIdsNewOwner) {
    api::Semaphore doomed = sys.create_semaphore({.name = "doomed"}).expect("create");
    const ID raw = doomed.id();
    // Kill the object behind the facade's back; the handle goes stale but
    // still carries (raw id, old generation).
    ASSERT_EQ(sim.os().tk_del_sem(raw), E_OK);

    // A new object takes over the recycled id through the facade.
    api::Semaphore owner = sys.create_semaphore({.name = "owner"}).expect("create");
    ASSERT_EQ(owner.id(), raw);

    // The stale handle must not operate on the id's new owner: every call
    // fails closed with E_NOEXS at the generation check.
    EXPECT_FALSE(doomed.valid());
    EXPECT_TRUE(doomed.signal() == E_NOEXS);
    EXPECT_EQ(doomed.ref().er(), E_NOEXS);
    EXPECT_TRUE(doomed.destroy() == E_NOEXS);  // RAII can't double-delete
    doomed.release();  // the object belongs to `owner` now

    EXPECT_TRUE(owner.signal().ok());
    EXPECT_EQ(owner.ref().expect("owner").semcnt, 1);
}

TEST_F(HandlesTest, ChurnOverRecycledIdsKeepsEveryGenerationDistinct) {
    // 32 create/destroy cycles all land on the same dense slot; each
    // incarnation must be distinguishable from every other one.
    ID raw = 0;
    std::uint32_t last_gen = 0;
    for (int cycle = 0; cycle < 32; ++cycle) {
        api::Semaphore sem = sys.create_semaphore({.name = "churn"}).expect("create");
        if (cycle == 0) {
            raw = sem.id();
        }
        EXPECT_EQ(sem.id(), raw) << "id not recycled at cycle " << cycle;
        EXPECT_GT(sem.generation(), last_gen);
        last_gen = sem.generation();
        EXPECT_TRUE(sem.signal().ok());
    }  // RAII destroy -> the id goes back on the free list each cycle
    EXPECT_EQ(sys.live_count(api::Kind::semaphore), 0u);
    EXPECT_EQ(sim.os().semaphores().size(), 0u);
}

TEST_F(HandlesTest, AdoptRejectsBadIds) {
    EXPECT_EQ(sys.adopt_semaphore(0).er(), E_ID);
    EXPECT_EQ(sys.adopt_semaphore(-4).er(), E_ID);
    EXPECT_EQ(sys.adopt_semaphore(12345).er(), E_NOEXS);
}

TEST_F(HandlesTest, TaskRaiiTerminatesLiveTasks) {
    {
        api::Task t = sys.create_task({.name = "spin",
                                       .body = [this] {
                                           for (;;) {
                                               sim.os().tk_dly_tsk(1);
                                           }
                                       }})
                          .expect("create task");
        EXPECT_TRUE(t.start().ok());
        sim.power_on();
        sim.run_for(sysc::Time::ms(5));
        // The task is alive (delayed); dropping the handle must
        // terminate and delete it, not leak or crash.
    }
    EXPECT_EQ(sim.os().tasks().size(), 1u);  // only the init task remains
}

TEST_F(HandlesTest, EveryKindRoundTripsThroughTheFacade) {
    api::Task t = sys.create_task({.name = "t", .body = [] {}}).expect("task");
    api::Semaphore s = sys.create_semaphore({}).expect("sem");
    api::EventFlag f = sys.create_eventflag({}).expect("flg");
    api::Mutex m = sys.create_mutex({}).expect("mtx");
    api::Mailbox x = sys.create_mailbox({}).expect("mbx");
    api::MsgBuf mb = sys.create_msgbuf({}).expect("mbf");
    api::FixedPool fp = sys.create_fixed_pool({}).expect("mpf");
    api::VarPool vp = sys.create_var_pool({}).expect("mpl");
    api::Cyclic cy =
        sys.create_cyclic({.name = "cy", .handler = [](void*) {}, .autostart = false})
            .expect("cyc");
    api::Alarm al =
        sys.create_alarm({.name = "al", .handler = [](void*) {}}).expect("alm");

    // ref() through each typed handle.
    EXPECT_EQ(t.ref().expect("t").tskstat, TTS_DMT);
    EXPECT_EQ(s.ref().expect("s").semcnt, 0);
    EXPECT_EQ(f.ref().expect("f").flgptn, 0u);
    EXPECT_EQ(m.ref().expect("m").htsk, 0);
    EXPECT_EQ(x.ref().expect("x").pk_msg, nullptr);
    EXPECT_EQ(mb.ref().expect("mb").msgsz, 0);
    EXPECT_EQ(fp.ref().expect("fp").frbcnt, 8);
    EXPECT_EQ(vp.ref().expect("vp").frsz, 4096);
    EXPECT_EQ(cy.ref().expect("cy").cycstat, TCYC_STP);
    EXPECT_EQ(al.ref().expect("al").almstat, TALM_STP);

    // Non-blocking ops host-side.
    EXPECT_TRUE(s.signal(2).ok());
    EXPECT_TRUE(s.wait(2, TMO_POL).ok());
    EXPECT_TRUE(f.set(0x5).ok());
    EXPECT_EQ(f.wait(0x1, TWF_ORW, TMO_POL).expect("flg wait"), 0x5u);
    void* blk = fp.get(TMO_POL).expect("mpf get");
    EXPECT_TRUE(fp.put(blk).ok());
    void* ext = vp.get(32, TMO_POL).expect("mpl get");
    EXPECT_TRUE(vp.put(ext).ok());
    EXPECT_TRUE(cy.start().ok());
    EXPECT_TRUE(cy.stop().ok());
    EXPECT_TRUE(al.start(10).ok());
    EXPECT_TRUE(al.stop().ok());
}
