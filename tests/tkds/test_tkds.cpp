// T-Kernel/DS tests: td_* reference functions and the Fig 8 listing.
#include <gtest/gtest.h>

#include "tkds/tkds.hpp"

namespace rtk::tkds {
namespace {

using namespace tkernel;
using sysc::Time;

class TkdsTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    TKernel tk{k};

    void boot_and_run(std::function<void()> body, Time horizon = Time::ms(200)) {
        tk.set_user_main(std::move(body));
        tk.power_on();
        k.run_until(horizon);
    }
};

TEST_F(TkdsTest, ListFunctionsEnumerateObjects) {
    boot_and_run([&] {
        T_CSEM cs;
        tk.tk_cre_sem(cs);
        tk.tk_cre_sem(cs);
        T_CFLG cf;
        tk.tk_cre_flg(cf);
        T_CMBX cb;
        tk.tk_cre_mbx(cb);
        std::vector<ID> ids;
        EXPECT_EQ(td_lst_sem(tk, ids), 2);
        EXPECT_EQ(ids, (std::vector<ID>{1, 2}));
        EXPECT_EQ(td_lst_flg(tk, ids), 1);
        EXPECT_EQ(td_lst_mbx(tk, ids), 1);
        EXPECT_EQ(td_lst_mtx(tk, ids), 0);
        EXPECT_GE(td_lst_tsk(tk, ids), 1);  // at least the init task
    });
}

TEST_F(TkdsTest, RefTskCarriesPerformanceCounters) {
    ID tid = 0;
    boot_and_run([&] {
        T_CTSK ct;
        ct.name = "worker";
        ct.itskpri = 5;
        ct.task = [&](INT, void*) {
            tk.sim().SIM_Wait(Time::ms(3), sim::ExecContext::task);
        };
        tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(20);
    });
    TD_RTSK r;
    ASSERT_EQ(td_ref_tsk(tk, tid, &r), E_OK);
    EXPECT_EQ(r.name, "worker");
    EXPECT_GE(r.cet, Time::ms(3));
    EXPECT_GT(r.cee_nj, 0.0);
    EXPECT_GE(r.dispatches, 1u);
    EXPECT_EQ(r.cycles, 1u);
    EXPECT_EQ(td_ref_tsk(tk, 999, &r), E_NOEXS);
    EXPECT_EQ(td_ref_tsk(tk, tid, nullptr), E_PAR);
}

TEST_F(TkdsTest, InfTskSplitsTimeByContext) {
    ID tid = 0;
    boot_and_run([&] {
        T_CTSK ct;
        ct.name = "worker";
        ct.itskpri = 5;
        ct.task = [&](INT, void*) {
            tk.sim().SIM_Wait(Time::ms(2), sim::ExecContext::task);
            tk.sim().SIM_Wait(Time::ms(1), sim::ExecContext::bfm_access);
        };
        tid = tk.tk_cre_tsk(ct);
        tk.tk_sta_tsk(tid, 0);
        tk.tk_dly_tsk(20);
    });
    TD_ITSK info;
    ASSERT_EQ(td_inf_tsk(tk, tid, &info), E_OK);
    EXPECT_EQ(info.utime, Time::ms(2));
    EXPECT_EQ(info.btime, Time::ms(1));
    EXPECT_GT(info.stime, Time::zero());  // startup + service prologue
}

TEST_F(TkdsTest, TaskTableListsStatesAndWaits) {
    boot_and_run([&] {
        T_CSEM cs;
        ID sem = tk.tk_cre_sem(cs);
        T_CTSK ct;
        ct.name = "blocked_guy";
        ct.itskpri = 5;
        ct.task = [&](INT, void*) { tk.tk_wai_sem(sem, 1, TMO_FEVR); };
        tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        tk.tk_dly_tsk(5);
        const std::string table = render_task_table(tk);
        EXPECT_NE(table.find("blocked_guy"), std::string::npos);
        EXPECT_NE(table.find("WAI"), std::string::npos);
        EXPECT_NE(table.find("SEM"), std::string::npos);
        tk.tk_sig_sem(sem, 1);
    });
}

TEST_F(TkdsTest, FullListingCoversEveryObjectClass) {
    boot_and_run([&] {
        T_CSEM cs;
        cs.name = "mysem";
        tk.tk_cre_sem(cs);
        T_CFLG cf;
        cf.name = "myflg";
        tk.tk_cre_flg(cf);
        T_CMBX cb;
        cb.name = "mymbx";
        tk.tk_cre_mbx(cb);
        T_CMTX cm;
        cm.name = "mymtx";
        tk.tk_cre_mtx(cm);
        T_CMBF cmb;
        cmb.name = "mymbf";
        tk.tk_cre_mbf(cmb);
        T_CMPF cpf;
        cpf.name = "mympf";
        tk.tk_cre_mpf(cpf);
        T_CMPL cpl;
        cpl.name = "mympl";
        tk.tk_cre_mpl(cpl);
        T_CCYC cc;
        cc.name = "mycyc";
        cc.cychdr = [](void*) {};
        tk.tk_cre_cyc(cc);
        T_CALM ca;
        ca.name = "myalm";
        ca.almhdr = [](void*) {};
        tk.tk_cre_alm(ca);
        T_DINT d;
        d.inthdr = [](void*) {};
        tk.tk_def_int(2, d);

        const std::string listing = render_listing(tk);
        for (const char* needle :
             {"mysem", "myflg", "mymbx", "mymtx", "mymbf", "mympf", "mympl",
              "mycyc", "myalm", "int 2", "SIM_API", "dispatches="}) {
            EXPECT_NE(listing.find(needle), std::string::npos) << needle;
        }
    });
}

TEST_F(TkdsTest, StateJournalShowsTransitions) {
    boot_and_run([&] {
        T_CTSK ct;
        ct.name = "hopper";
        ct.itskpri = 5;
        ct.task = [&](INT, void*) { tk.tk_dly_tsk(5); };
        tk.tk_sta_tsk(tk.tk_cre_tsk(ct), 0);
        tk.tk_dly_tsk(20);
        const std::string journal = render_state_journal(tk, 50);
        EXPECT_NE(journal.find("hopper"), std::string::npos);
        EXPECT_NE(journal.find("READY"), std::string::npos);
        EXPECT_NE(journal.find("RUNNING"), std::string::npos);
        EXPECT_NE(journal.find("WAITING"), std::string::npos);
    });
}

TEST_F(TkdsTest, RefSysThroughDs) {
    boot_and_run([&] {
        T_RSYS s;
        EXPECT_EQ(td_ref_sys(tk, &s), E_OK);
        EXPECT_EQ(s.runtskid, tk.tk_get_tid());
    });
}

}  // namespace
}  // namespace rtk::tkds
