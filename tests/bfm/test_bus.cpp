// Bus-functional-model bus tests: cycle budgets, memory controller,
// device mapping, access listeners.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "sysc/report.hpp"
#include "sim/sim.hpp"

namespace rtk::bfm {
namespace {

using sysc::Time;

class BusTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    Bus8051 bus{api};
};

struct ScratchDevice final : Device {
    std::string n = "scratch";
    std::uint8_t regs[16] = {};
    std::uint16_t last_off = 0;
    const std::string& name() const override { return n; }
    std::uint8_t read(std::uint16_t off) override {
        last_off = off;
        return regs[off % 16];
    }
    void write(std::uint16_t off, std::uint8_t v) override {
        last_off = off;
        regs[off % 16] = v;
    }
};

TEST_F(BusTest, PlainRamRoundTrip) {
    bus.write_xdata(0x1234, 0xAB);
    EXPECT_EQ(bus.read_xdata(0x1234), 0xAB);
    EXPECT_EQ(bus.read_xdata(0x1235), 0x00);
}

TEST_F(BusTest, SixteenBitAccessLittleEndian) {
    bus.write_xdata16(0x2000, 0xBEEF);
    EXPECT_EQ(bus.read_xdata(0x2000), 0xEF);
    EXPECT_EQ(bus.read_xdata(0x2001), 0xBE);
    EXPECT_EQ(bus.read_xdata16(0x2000), 0xBEEF);
}

TEST_F(BusTest, DeviceWindowRouting) {
    ScratchDevice dev;
    bus.map(0x8000, 0x10, dev);
    bus.write_xdata(0x8003, 0x5A);
    EXPECT_EQ(dev.regs[3], 0x5A);
    EXPECT_EQ(dev.last_off, 3);
    EXPECT_EQ(bus.read_xdata(0x8003), 0x5A);
    // Below/above the window hits RAM, not the device.
    bus.write_xdata(0x7FFF, 0x11);
    bus.write_xdata(0x8010, 0x22);
    EXPECT_EQ(dev.regs[0], 0x00);
}

TEST_F(BusTest, OverlappingMappingIsFatal) {
    ScratchDevice a, b;
    bus.map(0x8000, 0x10, a);
    EXPECT_THROW(bus.map(0x8008, 0x10, b), sysc::SimError);
}

TEST_F(BusTest, CycleBudgetsConsumeTaskTime) {
    sim::TThread& t = api.SIM_CreateThread("drv", sim::ThreadKind::task, 5, [&] {
        for (int i = 0; i < 10; ++i) {
            bus.write_xdata(0x100, 0xFF);  // 2 machine cycles each
        }
    });
    api.SIM_StartThread(t);
    k.run();
    EXPECT_EQ(t.token().cet(sim::ExecContext::bfm_access), Time::us(20));
    EXPECT_EQ(bus.cycles_consumed(), 20u);
    EXPECT_EQ(bus.access_count(), 10u);
}

TEST_F(BusTest, TestbenchAccessCostsNoSimTime) {
    bus.write_xdata(0x100, 1);  // outside any T-THREAD
    EXPECT_EQ(k.now(), Time::zero());
    EXPECT_EQ(bus.cycles_consumed(), 2u);  // still counted for Fig 4 stats
}

TEST_F(BusTest, AccessListenersFire) {
    ScratchDevice dev;
    bus.map(0x8000, 0x10, dev);
    std::vector<Bus8051::AccessEvent> events;
    bus.add_access_listener([&](const Bus8051::AccessEvent& ev) {
        events.push_back(ev);
    });
    bus.write_xdata(0x8001, 1);
    bus.read_xdata(0x0042);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_TRUE(events[0].write);
    EXPECT_TRUE(events[0].device);
    EXPECT_EQ(events[0].addr, 0x8001);
    EXPECT_FALSE(events[1].write);
    EXPECT_FALSE(events[1].device);
}

}  // namespace
}  // namespace rtk::bfm
