// Interrupt controller tests: IE/IP registers, masking with pending
// latch, priority reporting.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "sysc/report.hpp"

namespace rtk::bfm {
namespace {

class IntcTest : public ::testing::Test {
protected:
    sysc::Kernel k;
    InterruptController intc;
    std::vector<std::pair<unsigned, bool>> delivered;

    void SetUp() override {
        intc.set_sink([this](unsigned line, bool hi) {
            delivered.emplace_back(line, hi);
        });
    }
};

TEST_F(IntcTest, DisabledByDefault) {
    intc.raise(0);
    EXPECT_TRUE(delivered.empty());
    EXPECT_TRUE(intc.pending(0));
    EXPECT_EQ(intc.masked_latches(), 1u);
}

TEST_F(IntcTest, GlobalEnableGatesEverything) {
    intc.write_ie(0x1F);  // lines enabled but EA clear
    intc.raise(1);
    EXPECT_TRUE(delivered.empty());
    intc.write_ie(0x80 | 0x1F);  // EA set: pending delivered now
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 1u);
    EXPECT_FALSE(intc.pending(1));
}

TEST_F(IntcTest, PerLineMasking) {
    intc.write_ie(0x80 | 0x01);  // only line 0
    intc.raise(0);
    intc.raise(2);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].first, 0u);
    EXPECT_TRUE(intc.pending(2));
}

TEST_F(IntcTest, PriorityBitReported) {
    intc.write_ie(0x80 | 0x1F);
    intc.write_ip(1u << 3);
    intc.raise(3);
    intc.raise(2);
    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_TRUE(delivered[0].second);   // line 3 high priority
    EXPECT_FALSE(delivered[1].second);  // line 2 low priority
}

TEST_F(IntcTest, StatisticsPerLine) {
    intc.write_ie(0x80 | 0x1F);
    intc.raise(4);
    intc.raise(4);
    EXPECT_EQ(intc.raised(4), 2u);
    EXPECT_EQ(intc.delivered(4), 2u);
}

TEST_F(IntcTest, RegisterInterface) {
    intc.write(0, 0x80 | 0x03);  // IE
    intc.write(1, 0x02);         // IP
    EXPECT_EQ(intc.read(0), 0x80 | 0x03);
    EXPECT_EQ(intc.read(1), 0x02);
    intc.raise(4);  // masked -> pending readable
    EXPECT_EQ(intc.read(2), 1u << 4);
}

TEST_F(IntcTest, InvalidLineIsFatal) {
    EXPECT_THROW(intc.raise(7), sysc::SimError);
}

TEST_F(IntcTest, LineEnabledQueries) {
    EXPECT_FALSE(intc.line_enabled(0));
    intc.write_ie(0x80 | 0x01);
    EXPECT_TRUE(intc.line_enabled(0));
    EXPECT_FALSE(intc.line_enabled(1));
    EXPECT_FALSE(intc.high_priority(0));
    intc.write_ip(0x01);
    EXPECT_TRUE(intc.high_priority(0));
}

}  // namespace
}  // namespace rtk::bfm
