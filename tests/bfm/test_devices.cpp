// Peripheral device tests: LCD, keypad, seven-segment display, RTC,
// multiplexed parallel port.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "sysc/report.hpp"
#include "sim/sim.hpp"

namespace rtk::bfm {
namespace {

using sysc::Time;

class DeviceTest : public ::testing::Test {
protected:
    sysc::Kernel k;
};

TEST_F(DeviceTest, LcdStartsBlank) {
    Lcd16x2 lcd{k};
    EXPECT_EQ(lcd.row_text(0), std::string(16, ' '));
    EXPECT_EQ(lcd.row_text(1), std::string(16, ' '));
    EXPECT_FALSE(lcd.busy());
}

TEST_F(DeviceTest, LcdWritesAdvanceCursor) {
    Lcd16x2 lcd{k};
    k.spawn("drv", [&] {
        for (char c : std::string("HI")) {
            while (lcd.busy()) {
                sysc::wait(Time::us(10));
            }
            lcd.write(1, static_cast<std::uint8_t>(c));
        }
    });
    k.run_until(Time::ms(1));
    EXPECT_EQ(lcd.row_text(0).substr(0, 2), "HI");
    EXPECT_EQ(lcd.data_writes(), 2u);
}

TEST_F(DeviceTest, LcdBusyDropsHastyWrites) {
    Lcd16x2 lcd{k};
    k.spawn("drv", [&] {
        lcd.write(1, 'A');  // makes controller busy for 37 us
        lcd.write(1, 'B');  // dropped: still busy
        sysc::wait(Time::us(50));
        lcd.write(1, 'B');  // ok now
    });
    k.run_until(Time::ms(1));
    EXPECT_EQ(lcd.row_text(0).substr(0, 2), "AB");
    EXPECT_EQ(lcd.writes_while_busy(), 1u);
}

TEST_F(DeviceTest, LcdClearTakesLongAndCountsFrames) {
    Lcd16x2 lcd{k};
    k.spawn("drv", [&] {
        lcd.write(1, 'X');
        sysc::wait(Time::us(50));
        lcd.write(0, Lcd16x2::cmd_clear);
        EXPECT_TRUE(lcd.busy());
        sysc::wait(Time::us(100));
        EXPECT_TRUE(lcd.busy());  // 1.52 ms command
        sysc::wait(Time::ms(2));
        EXPECT_FALSE(lcd.busy());
    });
    k.run_until(Time::ms(5));
    EXPECT_EQ(lcd.row_text(0), std::string(16, ' '));
    EXPECT_EQ(lcd.frame_count(), 1u);
}

TEST_F(DeviceTest, LcdSetDdramAddressesSecondRow) {
    Lcd16x2 lcd{k};
    k.spawn("drv", [&] {
        lcd.write(0, Lcd16x2::cmd_set_ddram | 0x42);  // row 1, col 2
        sysc::wait(Time::us(50));
        lcd.write(1, 'Z');
    });
    k.run_until(Time::ms(1));
    EXPECT_EQ(lcd.row_text(1)[2], 'Z');
}

TEST_F(DeviceTest, LcdRowWrapAfterColumn15) {
    Lcd16x2 lcd{k};
    k.spawn("drv", [&] {
        lcd.write(0, Lcd16x2::cmd_set_ddram | 0x0F);  // last col of row 0
        sysc::wait(Time::us(50));
        lcd.write(1, 'A');
        sysc::wait(Time::us(50));
        lcd.write(1, 'B');  // wraps to row 1 col 0
    });
    k.run_until(Time::ms(1));
    EXPECT_EQ(lcd.row_text(0)[15], 'A');
    EXPECT_EQ(lcd.row_text(1)[0], 'B');
}

TEST_F(DeviceTest, KeypadMatrixScan) {
    Keypad4x4 pad;
    pad.press(6);  // row 1, col 2
    pad.write(0, 0x02);  // strobe row 1
    EXPECT_EQ(pad.read(1), 0x04);  // col 2 responds
    pad.write(0, 0x01);  // strobe row 0
    EXPECT_EQ(pad.read(1), 0x00);
    pad.release(6);
    pad.write(0, 0x02);
    EXPECT_EQ(pad.read(1), 0x00);
}

TEST_F(DeviceTest, KeypadInterruptOnPress) {
    InterruptController intc;
    unsigned delivered = 99;
    intc.set_sink([&](unsigned line, bool) { delivered = line; });
    intc.write_ie(0x80 | 0x01);  // EA + line 0
    Keypad4x4 pad(&intc);
    pad.press(3);
    EXPECT_EQ(delivered, InterruptController::line_ext0);
    EXPECT_EQ(pad.press_count(), 1u);
    // Re-pressing a held key does not re-raise.
    delivered = 99;
    pad.press(3);
    EXPECT_EQ(delivered, 99u);
}

TEST_F(DeviceTest, SsdEncodesAndDecodes) {
    for (unsigned d = 0; d < 10; ++d) {
        EXPECT_EQ(SevenSegmentDisplay::decode_segments(
                      SevenSegmentDisplay::encode_digit(d)),
                  static_cast<char>('0' + d));
    }
    EXPECT_EQ(SevenSegmentDisplay::decode_segments(0), ' ');
    EXPECT_EQ(SevenSegmentDisplay::decode_segments(0x49), '?');
}

TEST_F(DeviceTest, SsdMultiplexedDigits) {
    SevenSegmentDisplay ssd;
    // Show "0042": digit 0 (ones) = 2, digit 1 = 4, rest = 0.
    const unsigned value = 42;
    unsigned v = value;
    for (unsigned d = 0; d < 4; ++d) {
        ssd.write(0, static_cast<std::uint8_t>(d));
        ssd.write(1, SevenSegmentDisplay::encode_digit(v % 10));
        v /= 10;
    }
    EXPECT_EQ(ssd.text(), "0042");
    EXPECT_EQ(ssd.value(), 42u);
    EXPECT_EQ(ssd.refresh_count(), 4u);
}

TEST_F(DeviceTest, RtcTicksAndCounts) {
    RealTimeClock rtc(k, Time::ms(1));
    int ticks_seen = 0;
    k.spawn("watch", [&] {
        for (int i = 0; i < 5; ++i) {
            sysc::wait(rtc.tick_event());
            ++ticks_seen;
        }
    });
    k.run_until(Time::ms(10));
    EXPECT_EQ(ticks_seen, 5);
    EXPECT_EQ(rtc.tick_count(), 10u);
    // Counter readable through the device window (little endian).
    EXPECT_EQ(rtc.read(0), 10);
    rtc.write(0, 0);
    EXPECT_EQ(rtc.tick_count(), 0u);
}

TEST_F(DeviceTest, MuxedPortRoutesBySelect) {
    MuxedParallelPort pio;
    Lcd16x2 lcd{k};
    SevenSegmentDisplay ssd;
    pio.attach(1, lcd);
    pio.attach(3, ssd);
    k.spawn("drv", [&] {
        pio.select(1, 1);       // LCD data register
        pio.data_write('Q');
        sysc::wait(Time::us(50));
        pio.select(3, 0);       // SSD digit select
        pio.data_write(0);
        pio.select(3, 1);
        pio.data_write(SevenSegmentDisplay::encode_digit(7));
    });
    k.run_until(Time::ms(1));
    EXPECT_EQ(lcd.row_text(0)[0], 'Q');
    EXPECT_EQ(ssd.text()[3], '7');
    EXPECT_EQ(pio.transfer_count(), 3u);
}

TEST_F(DeviceTest, MuxedPortDoubleAttachIsFatal) {
    MuxedParallelPort pio;
    Lcd16x2 a{k};
    SevenSegmentDisplay b;
    pio.attach(1, a);
    EXPECT_THROW(pio.attach(1, b), sysc::SimError);
}

TEST_F(DeviceTest, Bfm8051HighLevelDrivers) {
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    Bfm8051 bfm(api);
    sim::TThread& t = api.SIM_CreateThread("drv", sim::ThreadKind::task, 5, [&] {
        bfm.lcd_print(0, 0, "SCORE");
        bfm.ssd_show(417);
    });
    api.SIM_StartThread(t);
    k.run_until(sysc::Time::ms(10));
    EXPECT_EQ(bfm.lcd().row_text(0).substr(0, 5), "SCORE");
    EXPECT_EQ(bfm.ssd().value(), 417u);
    // The drivers consumed BFM-access time in the task's token.
    EXPECT_GT(t.token().cet(sim::ExecContext::bfm_access), Time::zero());
}

TEST_F(DeviceTest, Bfm8051KeypadScanFindsKey) {
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    Bfm8051 bfm(api);
    bfm.keypad().press(11);
    int found = -2;
    sim::TThread& t = api.SIM_CreateThread("drv", sim::ThreadKind::task, 5, [&] {
        found = bfm.keypad_scan();
    });
    api.SIM_StartThread(t);
    k.run_until(sysc::Time::ms(5));
    EXPECT_EQ(found, 11);
}

}  // namespace
}  // namespace rtk::bfm
