// 8051 timer/counter peripheral tests.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"
#include "sysc/report.hpp"
#include "sysc/sysc.hpp"

namespace rtk::bfm {
namespace {

using sysc::Time;

class TimerTest : public ::testing::Test {
protected:
    sysc::Kernel k;
};

TEST_F(TimerTest, Mode2AutoReloadPeriod) {
    Timer8051 t{k, 0};
    t.set_mode(Timer8051::Mode::mode2_autoreload);
    t.load(256 - 100);  // overflow every 100 machine cycles = 100 us
    EXPECT_EQ(t.overflow_period(), Time::us(100));
    t.start();
    k.run_until(Time::ms(1));
    EXPECT_EQ(t.overflow_count(), 10u);
    EXPECT_TRUE(t.tf());
    t.acknowledge();
    EXPECT_FALSE(t.tf());
}

TEST_F(TimerTest, Mode1SixteenBitPeriod) {
    Timer8051 t{k, 0};
    t.set_mode(Timer8051::Mode::mode1_16bit);
    t.load(65536 - 5000);  // 5000 cycles = 5 ms
    EXPECT_EQ(t.overflow_period(), Time::ms(5));
    t.start();
    k.run_until(Time::ms(21));
    EXPECT_EQ(t.overflow_count(), 4u);
}

TEST_F(TimerTest, StopHaltsCounting) {
    Timer8051 t{k, 0};
    t.configure_period(Time::us(500));
    t.start();
    k.run_until(Time::ms(2));
    const auto frozen = t.overflow_count();
    EXPECT_EQ(frozen, 4u);
    t.stop();
    k.run_until(Time::ms(5));
    EXPECT_EQ(t.overflow_count(), frozen);
    t.start();
    k.run_until(Time::ms(6));
    EXPECT_GT(t.overflow_count(), frozen);
}

TEST_F(TimerTest, ConfigurePeriodPicksMode) {
    Timer8051 t{k, 0};
    t.configure_period(Time::us(200));  // fits 8-bit auto-reload
    EXPECT_EQ(t.mode(), Timer8051::Mode::mode2_autoreload);
    EXPECT_EQ(t.overflow_period(), Time::us(200));
    t.configure_period(Time::ms(10));  // needs 16-bit
    EXPECT_EQ(t.mode(), Timer8051::Mode::mode1_16bit);
    EXPECT_EQ(t.overflow_period(), Time::ms(10));
    EXPECT_THROW(t.configure_period(Time::ms(100)), sysc::SimError);  // > 16 bit
    EXPECT_THROW(t.configure_period(Time::ns(1)), sysc::SimError);    // < 1 cycle
}

TEST_F(TimerTest, OverflowRaisesInterruptLine) {
    InterruptController intc;
    std::vector<unsigned> lines;
    intc.set_sink([&](unsigned line, bool) { lines.push_back(line); });
    intc.write_ie(0x80 | 0x1F);
    Timer8051 t0{k, 0, &intc};
    Timer8051 t1{k, 1, &intc};
    t0.configure_period(Time::ms(1));
    t1.configure_period(Time::ms(2));
    t0.start();
    t1.start();
    k.run_until(Time::ms(2));
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[0], InterruptController::line_timer0);  // 1 ms
    // by 2 ms: timer0 again and timer1 once
    EXPECT_NE(std::find(lines.begin(), lines.end(),
                        InterruptController::line_timer1),
              lines.end());
}

TEST_F(TimerTest, OverflowEventObservable) {
    Timer8051 t{k, 0};
    t.configure_period(Time::us(250));
    t.start();
    int seen = 0;
    k.spawn("watch", [&] {
        for (int i = 0; i < 4; ++i) {
            sysc::wait(t.overflow_event());
            ++seen;
        }
    });
    k.run_until(Time::ms(2));
    EXPECT_EQ(seen, 4);
}

TEST_F(TimerTest, RegisterInterface) {
    Timer8051 t{k, 0};
    // TH:TL loads through the window; control starts in mode 2.
    t.write(0, 0x9C);  // TL
    t.write(1, 0xFF);  // TH (ignored in mode 2 period computation uses low byte)
    t.write(2, 0x01 | 0x04);  // run + mode2
    EXPECT_TRUE(t.running());
    EXPECT_EQ(t.mode(), Timer8051::Mode::mode2_autoreload);
    k.run_until(Time::ms(1));
    EXPECT_EQ(t.read(3), 1);  // TF set
    t.write(2, 0x01 | 0x04 | 0x02);  // ack TF, keep running
    EXPECT_EQ(t.read(3), 0);
    EXPECT_EQ(t.read(0), 0x9C);
}

TEST_F(TimerTest, ReconfigureWhileRunningRestartsCountdown) {
    Timer8051 t{k, 0};
    t.configure_period(Time::ms(4));
    t.start();
    k.run_until(Time::ms(2));
    t.configure_period(Time::ms(10));  // restart: old 4 ms overflow cancelled
    k.run_until(Time::ms(5));
    EXPECT_EQ(t.overflow_count(), 0u);
    k.run_until(Time::ms(13));
    EXPECT_EQ(t.overflow_count(), 1u);
}

TEST_F(TimerTest, InvalidIndexIsFatal) {
    EXPECT_THROW(Timer8051 t(k, 2), sysc::SimError);
}

TEST_F(TimerTest, DriverStyleKernelTickFromTimer) {
    // Firmware pattern: timer0 as an OS tick source via the intc.
    sim::PriorityPreemptiveScheduler sched;
    sim::SimApi api{k, sched};
    Bfm8051 board(api);
    int ticks = 0;
    board.intc().set_sink([&](unsigned line, bool) {
        if (line == InterruptController::line_timer0) {
            ++ticks;
        }
    });
    board.timer0().configure_period(Time::ms(1));
    board.timer0().start();
    k.run_until(Time::ms(10));
    EXPECT_EQ(ticks, 10);
}

}  // namespace
}  // namespace rtk::bfm
