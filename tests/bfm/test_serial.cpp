// UART (mode 1) tests: frame timing, TI/RI flags, overruns, IRQ wiring.
#include <gtest/gtest.h>

#include "bfm/bfm.hpp"

namespace rtk::bfm {
namespace {

using sysc::Time;

class SerialTest : public ::testing::Test {
protected:
    sysc::Kernel k;
};

TEST_F(SerialTest, FrameTimeFromBaud) {
    SerialIO uart{k, 9600};
    // 10 bits at 9600 baud = ~1.0417 ms.
    EXPECT_NEAR(uart.frame_time().to_us(), 1041.7, 1.0);
}

TEST_F(SerialTest, TransmitTakesOneFrame) {
    SerialIO uart{k, 9600};
    k.spawn("drv", [&] {
        EXPECT_TRUE(uart.tx('A'));
        EXPECT_FALSE(uart.tx_ready());
        EXPECT_FALSE(uart.ti());
    });
    k.run_until(Time::ms(2));
    EXPECT_TRUE(uart.tx_ready());
    EXPECT_TRUE(uart.ti());
    EXPECT_EQ(uart.transmitted(), "A");
    EXPECT_EQ(uart.tx_count(), 1u);
}

TEST_F(SerialTest, TransmitWhileBusyOverruns) {
    SerialIO uart{k, 9600};
    k.spawn("drv", [&] {
        EXPECT_TRUE(uart.tx('A'));
        EXPECT_FALSE(uart.tx('B'));  // shift register busy
    });
    k.run_until(Time::ms(3));
    EXPECT_EQ(uart.transmitted(), "A");
    EXPECT_EQ(uart.tx_overruns(), 1u);
}

TEST_F(SerialTest, BackToBackTransmits) {
    SerialIO uart{k, 9600};
    k.spawn("drv", [&] {
        for (char c : std::string("OK!")) {
            while (!uart.tx_ready()) {
                sysc::wait(Time::us(100));
            }
            uart.tx(static_cast<std::uint8_t>(c));
        }
    });
    k.run_until(Time::ms(10));
    EXPECT_EQ(uart.transmitted(), "OK!");
}

TEST_F(SerialTest, ReceiveArrivesAfterFrameTime) {
    SerialIO uart{k, 9600};
    k.spawn("feeder", [&] {
        sysc::wait(Time::ms(1));
        uart.feed_rx('x');
    });
    k.run_until(Time::ms(1) + Time::us(500));
    EXPECT_FALSE(uart.rx_ready());  // frame still in flight
    k.run_until(Time::ms(3));
    EXPECT_TRUE(uart.rx_ready());
    EXPECT_EQ(uart.rx(), 'x');
    EXPECT_FALSE(uart.rx_ready());  // RI cleared by read
}

TEST_F(SerialTest, RxOverrunWhenBufferNotDrained) {
    SerialIO uart{k, 9600};
    k.spawn("feeder", [&] {
        uart.feed_rx('1');
        uart.feed_rx('2');  // arrives while '1' still unread
    });
    k.run_until(Time::ms(5));
    EXPECT_EQ(uart.rx_count(), 1u);
    EXPECT_EQ(uart.rx_overruns(), 1u);
    EXPECT_EQ(uart.rx(), '1');
}

TEST_F(SerialTest, InterruptsRaisedOnTiAndRi) {
    InterruptController intc;
    std::vector<unsigned> lines;
    intc.set_sink([&](unsigned line, bool) { lines.push_back(line); });
    intc.write_ie(0x80 | 0x1F);
    SerialIO uart{k, 9600, &intc};
    k.spawn("drv", [&] {
        uart.tx('A');
        uart.feed_rx('B');
    });
    k.run_until(Time::ms(5));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], InterruptController::line_serial);
    EXPECT_EQ(lines[1], InterruptController::line_serial);
}

TEST_F(SerialTest, DeviceRegisterInterface) {
    SerialIO uart{k, 9600};
    k.spawn("drv", [&] {
        uart.write(0, 'Z');  // SBUF write = tx
        EXPECT_EQ(uart.read(1) & 0x04, 0x04);  // tx busy bit
    });
    k.run_until(Time::ms(2));
    EXPECT_EQ(uart.transmitted(), "Z");
    EXPECT_EQ(uart.read(1) & 0x01, 0x01);  // TI set
    uart.write(1, 0);                      // status write clears TI
    EXPECT_EQ(uart.read(1) & 0x01, 0x00);
}

TEST_F(SerialTest, HigherBaudIsFaster) {
    SerialIO slow{k, 9600};
    SerialIO fast{k, 115200};
    EXPECT_GT(slow.frame_time(), fast.frame_time());
    EXPECT_NEAR(fast.frame_time().to_us(), 86.8, 0.5);
}

}  // namespace
}  // namespace rtk::bfm
