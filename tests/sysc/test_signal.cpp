#include <gtest/gtest.h>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

class SignalTest : public ::testing::Test {
protected:
    Kernel k;
};

TEST_F(SignalTest, InitialValue) {
    Signal<int> s("s", 42);
    EXPECT_EQ(s.read(), 42);
}

TEST_F(SignalTest, WriteTakesEffectInUpdatePhase) {
    Signal<int> s("s", 0);
    int seen_during_eval = -1;
    k.spawn("writer", [&] {
        s.write(7);
        seen_during_eval = s.read();  // evaluate phase: old value visible
    });
    k.run();
    EXPECT_EQ(seen_during_eval, 0);
    EXPECT_EQ(s.read(), 7);
}

TEST_F(SignalTest, LastWriteWins) {
    Signal<int> s("s", 0);
    k.spawn("writer", [&] {
        s.write(1);
        s.write(2);
        s.write(3);
    });
    k.run();
    EXPECT_EQ(s.read(), 3);
}

TEST_F(SignalTest, ValueChangedEventFires) {
    Signal<int> s("s", 0);
    int observed = -1;
    k.spawn("watcher", [&] {
        wait(s.value_changed_event());
        observed = s.read();
    });
    k.spawn("writer", [&] {
        wait(Time::us(1));
        s.write(9);
    });
    k.run();
    EXPECT_EQ(observed, 9);
}

TEST_F(SignalTest, NoEventWhenValueUnchanged) {
    Signal<int> s("s", 5);
    bool woke = false;
    k.spawn("watcher", [&] {
        wait(s.value_changed_event());
        woke = true;
    });
    k.spawn("writer", [&] { s.write(5); });  // same value
    k.run_until(Time::ms(1));
    EXPECT_FALSE(woke);
    EXPECT_EQ(s.change_count(), 0u);
}

TEST_F(SignalTest, BoolEdges) {
    Signal<bool> s("s", false);
    int pos = 0, neg = 0;
    k.spawn("pos", [&] {
        for (;;) {
            wait(s.posedge_event());
            ++pos;
        }
    });
    k.spawn("neg", [&] {
        for (;;) {
            wait(s.negedge_event());
            ++neg;
        }
    });
    k.spawn("driver", [&] {
        for (int i = 0; i < 3; ++i) {
            wait(Time::us(1));
            s.write(true);
            wait(Time::us(1));
            s.write(false);
        }
    });
    k.run_until(Time::ms(1));
    EXPECT_EQ(pos, 3);
    EXPECT_EQ(neg, 3);
}

TEST_F(SignalTest, ChangeCountAndTimestamp) {
    Signal<int> s("s", 0);
    k.spawn("writer", [&] {
        wait(Time::ms(2));
        s.write(1);
        wait(Time::ms(2));
        s.write(2);
    });
    k.run();
    EXPECT_EQ(s.change_count(), 2u);
    EXPECT_EQ(s.last_change(), Time::ms(4));
}

TEST_F(SignalTest, ReadersSeeNewValueOneDeltalater) {
    Signal<int> s("s", 0);
    std::vector<int> seen;
    k.spawn("watcher", [&] {
        for (int i = 0; i < 2; ++i) {
            wait(s.value_changed_event());
            seen.push_back(s.read());
        }
    });
    k.spawn("writer", [&] {
        s.write(10);
        wait(Time::us(1));
        s.write(20);
    });
    k.run();
    EXPECT_EQ(seen, (std::vector<int>{10, 20}));
}

}  // namespace
}  // namespace rtk::sysc
