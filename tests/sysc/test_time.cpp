#include <gtest/gtest.h>

#include "sysc/time.hpp"

namespace rtk::sysc {
namespace {

TEST(Time, DefaultIsZero) {
    EXPECT_EQ(Time{}.picoseconds(), 0u);
    EXPECT_TRUE(Time{}.is_zero());
    EXPECT_EQ(Time::zero(), Time{});
}

TEST(Time, UnitConstructors) {
    EXPECT_EQ(Time::ps(7).picoseconds(), 7u);
    EXPECT_EQ(Time::ns(1).picoseconds(), 1'000u);
    EXPECT_EQ(Time::us(1).picoseconds(), 1'000'000u);
    EXPECT_EQ(Time::ms(1).picoseconds(), 1'000'000'000u);
    EXPECT_EQ(Time::sec(1).picoseconds(), 1'000'000'000'000u);
}

TEST(Time, Conversions) {
    EXPECT_DOUBLE_EQ(Time::us(1500).to_ms(), 1.5);
    EXPECT_DOUBLE_EQ(Time::ms(2500).to_sec(), 2.5);
    EXPECT_DOUBLE_EQ(Time::ps(1500).to_ns(), 1.5);
    EXPECT_DOUBLE_EQ(Time::ns(2500).to_us(), 2.5);
}

TEST(Time, Ordering) {
    EXPECT_LT(Time::ns(999), Time::us(1));
    EXPECT_LE(Time::us(1), Time::us(1));
    EXPECT_GT(Time::ms(1), Time::us(999));
    EXPECT_GE(Time::ms(1), Time::ms(1));
    EXPECT_NE(Time::ms(1), Time::us(1));
}

TEST(Time, Arithmetic) {
    EXPECT_EQ(Time::ms(1) + Time::us(500), Time::us(1500));
    EXPECT_EQ(Time::ms(2) - Time::ms(1), Time::ms(1));
    EXPECT_EQ(Time::us(3) * 4, Time::us(12));
    EXPECT_EQ(5 * Time::us(2), Time::us(10));
    EXPECT_EQ(Time::us(10) / 2, Time::us(5));
}

TEST(Time, SubtractionSaturates) {
    EXPECT_EQ(Time::ms(1) - Time::ms(2), Time::zero());
    Time t = Time::us(1);
    t -= Time::ms(1);
    EXPECT_TRUE(t.is_zero());
}

TEST(Time, DivisionByTimeCountsPeriods) {
    EXPECT_EQ(Time::ms(10) / Time::ms(3), 3u);
    EXPECT_EQ(Time::ms(9) / Time::ms(3), 3u);
    EXPECT_EQ(Time::us(1) / Time::ms(1), 0u);
}

TEST(Time, Modulo) {
    EXPECT_EQ(Time::ms(10) % Time::ms(3), Time::ms(1));
    EXPECT_EQ(Time::ms(9) % Time::ms(3), Time::zero());
}

TEST(Time, CompoundAssignment) {
    Time t = Time::ms(1);
    t += Time::ms(2);
    EXPECT_EQ(t, Time::ms(3));
    t -= Time::ms(1);
    EXPECT_EQ(t, Time::ms(2));
}

TEST(Time, ToStringPicksLargestExactUnit) {
    EXPECT_EQ(Time::ms(3).to_string(), "3 ms");
    EXPECT_EQ(Time::us(1500).to_string(), "1500 us");
    EXPECT_EQ(Time::sec(2).to_string(), "2 s");
    EXPECT_EQ(Time::ps(42).to_string(), "42 ps");
    EXPECT_EQ(Time::ns(7).to_string(), "7 ns");
    EXPECT_EQ(Time::zero().to_string(), "0 ps");
}

TEST(Time, MaxIsHuge) {
    EXPECT_GT(Time::max(), Time::sec(1'000'000));
}

}  // namespace
}  // namespace rtk::sysc
