#include <gtest/gtest.h>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

class EventTest : public ::testing::Test {
protected:
    Kernel k;
};

TEST_F(EventTest, ImmediateNotificationWakesWaiterSameTimestamp) {
    Event e("e");
    Time woke_at = Time::max();
    k.spawn("waiter", [&] {
        wait(e);
        woke_at = now();
    });
    k.spawn("notifier", [&] {
        wait(Time::us(5));
        e.notify();
    });
    k.run();
    EXPECT_EQ(woke_at, Time::us(5));
}

TEST_F(EventTest, TimedNotificationArrivesAtRightTime) {
    Event e("e");
    Time woke_at;
    k.spawn("waiter", [&] {
        wait(e);
        woke_at = now();
    });
    e.notify(Time::ms(3));
    k.run();
    EXPECT_EQ(woke_at, Time::ms(3));
}

TEST_F(EventTest, EarlierNotificationOverridesLater) {
    Event e("e");
    Time woke_at;
    int wakes = 0;
    k.spawn("waiter", [&] {
        wait(e);
        woke_at = now();
        ++wakes;
    });
    e.notify(Time::ms(10));
    e.notify(Time::ms(2));  // earlier wins
    k.run();
    EXPECT_EQ(woke_at, Time::ms(2));
    EXPECT_EQ(wakes, 1);
}

TEST_F(EventTest, LaterNotificationIsIgnoredWhileEarlierPends) {
    Event e("e");
    Time woke_at;
    k.spawn("waiter", [&] {
        wait(e);
        woke_at = now();
    });
    e.notify(Time::ms(2));
    e.notify(Time::ms(10));  // ignored
    k.run();
    EXPECT_EQ(woke_at, Time::ms(2));
}

TEST_F(EventTest, CancelRemovesPendingNotification) {
    Event e("e");
    bool woke = false;
    k.spawn("waiter", [&] {
        wait(e);
        woke = true;
    });
    e.notify(Time::ms(1));
    e.cancel();
    k.run_until(Time::ms(10));
    EXPECT_FALSE(woke);
}

TEST_F(EventTest, DeltaNotificationWakesWithoutTimeAdvance) {
    Event e("e");
    bool woke = false;
    std::uint64_t woke_delta = 0;
    k.spawn("waiter", [&] {
        wait(e);
        woke = true;
        woke_delta = k.delta_count();
    });
    e.notify_delta();
    k.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(k.now(), Time::zero());
}

TEST_F(EventTest, ZeroDelayNotifyIsDelta) {
    Event e("e");
    bool woke = false;
    k.spawn("waiter", [&] {
        wait(e);
        woke = true;
    });
    e.notify(Time::zero());
    k.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(k.now(), Time::zero());
}

TEST_F(EventTest, MultipleWaitersAllWake) {
    Event e("e");
    int woke = 0;
    for (int i = 0; i < 5; ++i) {
        k.spawn("w" + std::to_string(i), [&] {
            wait(e);
            ++woke;
        });
    }
    e.notify(Time::us(1));
    k.run();
    EXPECT_EQ(woke, 5);
}

TEST_F(EventTest, NotifyWithoutWaitersIsLost) {
    Event e("e");
    e.notify();  // immediate, nobody waiting: lost per SystemC semantics
    bool woke = false;
    k.spawn("late", [&] {
        wait(Time::ms(1), e);
        woke = (now() < Time::ms(1));
    });
    k.run();
    EXPECT_FALSE(woke);
}

TEST_F(EventTest, WaitAnyReturnsWinningIndex) {
    Event a("a"), b("b");
    std::size_t winner = 99;
    k.spawn("waiter", [&] { winner = wait_any({&a, &b}); });
    b.notify(Time::us(1));
    k.run();
    EXPECT_EQ(winner, 1u);
}

TEST_F(EventTest, WaitAnyDeregistersFromLosers) {
    Event a("a"), b("b");
    k.spawn("waiter", [&] { wait_any({&a, &b}); });
    a.notify(Time::us(1));
    k.run();
    EXPECT_FALSE(a.has_waiters());
    EXPECT_FALSE(b.has_waiters());
}

TEST_F(EventTest, TimedWaitTimesOut) {
    Event e("e");
    bool got_event = true;
    k.spawn("waiter", [&] { got_event = wait(Time::ms(5), e); });
    k.run();
    EXPECT_FALSE(got_event);
    EXPECT_EQ(k.now(), Time::ms(5));
}

TEST_F(EventTest, TimedWaitGetsEventBeforeTimeout) {
    Event e("e");
    bool got_event = false;
    k.spawn("waiter", [&] { got_event = wait(Time::ms(5), e); });
    e.notify(Time::ms(2));
    k.run_until(Time::ms(20));
    EXPECT_TRUE(got_event);
}

TEST_F(EventTest, PendingStateIsObservable) {
    Event e("e");
    EXPECT_EQ(e.pending(), Event::Pending::none);
    e.notify(Time::ms(1));
    EXPECT_EQ(e.pending(), Event::Pending::timed);
    EXPECT_EQ(e.pending_at(), Time::ms(1));
    e.cancel();
    EXPECT_EQ(e.pending(), Event::Pending::none);
    e.notify_delta();
    EXPECT_EQ(e.pending(), Event::Pending::delta);
}

TEST_F(EventTest, NotifyFromOutsideProcessContextWorks) {
    Event e("e");
    bool woke = false;
    k.spawn("waiter", [&] {
        wait(e);
        woke = true;
    });
    k.run_until(Time::ms(1));
    e.notify();  // from the testbench, between run calls
    k.run_until(Time::ms(2));
    EXPECT_TRUE(woke);
}

}  // namespace
}  // namespace rtk::sysc
