#include <gtest/gtest.h>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

class ClockTest : public ::testing::Test {
protected:
    Kernel k;
};

TEST_F(ClockTest, PosedgeCountMatchesPeriods) {
    Clock clk("clk", Time::us(10));
    k.run_until(Time::us(95));
    // Posedges at 0, 10, ..., 90 -> 10 edges.
    EXPECT_EQ(clk.posedge_count(), 10u);
}

TEST_F(ClockTest, EdgesObservableViaEvents) {
    Clock clk("clk", Time::us(10));
    std::vector<Time> edges;
    k.spawn("watch", [&] {
        for (int i = 0; i < 3; ++i) {
            wait(clk.posedge_event());
            edges.push_back(now());
        }
    });
    k.run_until(Time::us(100));
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0], Time::zero());
    EXPECT_EQ(edges[1], Time::us(10));
    EXPECT_EQ(edges[2], Time::us(20));
}

TEST_F(ClockTest, DutyCycle) {
    Clock clk("clk", Time::us(10), 30);  // high 3 us, low 7 us
    Time high_end, low_end;
    k.spawn("watch", [&] {
        wait(clk.signal().negedge_event());
        high_end = now();
        wait(clk.signal().posedge_event());
        low_end = now();
    });
    k.run_until(Time::us(50));
    EXPECT_EQ(high_end, Time::us(3));
    EXPECT_EQ(low_end, Time::us(10));
}

TEST_F(ClockTest, StartDelay) {
    Clock clk("clk", Time::us(10), 50, Time::us(7));
    Time first_edge;
    k.spawn("watch", [&] {
        wait(clk.posedge_event());
        first_edge = now();
    });
    k.run_until(Time::us(30));
    EXPECT_EQ(first_edge, Time::us(7));
}

TEST_F(ClockTest, ZeroPeriodIsFatal) {
    EXPECT_THROW(Clock("bad", Time::zero()), SimError);
}

TEST_F(ClockTest, BadDutyIsFatal) {
    EXPECT_THROW(Clock("bad", Time::us(1), 0), SimError);
    EXPECT_THROW(Clock("bad2", Time::us(1), 100), SimError);
}

}  // namespace
}  // namespace rtk::sysc
