#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class TraceTest : public ::testing::Test {
protected:
    std::string path() const {
        return std::string("trace_test_") +
               ::testing::UnitTest::GetInstance()->current_test_info()->name() +
               ".vcd";
    }
    void TearDown() override { std::remove(path().c_str()); }
};

TEST_F(TraceTest, WritesHeaderAndChanges) {
    Kernel k;
    Signal<bool> s("sig", false);
    {
        TraceFile tf(path());
        tf.trace(s);
        k.spawn("drv", [&] {
            wait(Time::ns(5));
            s.write(true);
            wait(Time::ns(5));
            s.write(false);
        });
        k.run();
        tf.flush();
        EXPECT_GE(tf.value_changes_written(), 3u);  // initial + 2 edges
    }
    const std::string vcd = slurp(path());
    EXPECT_NE(vcd.find("$timescale"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1"), std::string::npos);
    EXPECT_NE(vcd.find("sig"), std::string::npos);
    EXPECT_NE(vcd.find("#5"), std::string::npos);
    EXPECT_NE(vcd.find("#10"), std::string::npos);
}

TEST_F(TraceTest, MultiBitVectors) {
    Kernel k;
    Signal<std::uint8_t> s("bus", 0);
    {
        TraceFile tf(path());
        tf.trace(s);
        k.spawn("drv", [&] {
            wait(Time::ns(1));
            s.write(0xA5);
        });
        k.run();
    }
    const std::string vcd = slurp(path());
    EXPECT_NE(vcd.find("$var wire 8"), std::string::npos);
    EXPECT_NE(vcd.find("b10100101"), std::string::npos);
}

TEST_F(TraceTest, TraceValueProbesPlainVariables) {
    Kernel k;
    int counter = 0;
    {
        TraceFile tf(path());
        tf.trace_value("counter", 16,
                       [&] { return static_cast<std::uint64_t>(counter); });
        k.spawn("drv", [&] {
            for (int i = 0; i < 3; ++i) {
                wait(Time::ns(2));
                ++counter;
            }
        });
        k.run();
    }
    const std::string vcd = slurp(path());
    EXPECT_NE(vcd.find("counter"), std::string::npos);
    EXPECT_NE(vcd.find("b1 "), std::string::npos);
    EXPECT_NE(vcd.find("b11 "), std::string::npos);
}

TEST_F(TraceTest, NoDuplicateDumpsForUnchangedValues) {
    Kernel k;
    Signal<bool> s("sig", false);
    std::uint64_t changes = 0;
    {
        TraceFile tf(path());
        tf.trace(s);
        k.spawn("drv", [&] {
            for (int i = 0; i < 10; ++i) {
                wait(Time::ns(1));  // activity without signal changes
            }
        });
        k.run();
        changes = tf.value_changes_written();
    }
    EXPECT_EQ(changes, 1u);  // only the initial dump
}

TEST_F(TraceTest, RegistrationAfterStartIsFatal) {
    Kernel k;
    Signal<bool> a("a", false), b("b", false);
    TraceFile tf(path());
    tf.trace(a);
    k.spawn("drv", [&] { a.write(true); });
    k.run();
    EXPECT_THROW(tf.trace(b), SimError);
}

}  // namespace
}  // namespace rtk::sysc
