// Direct tests of the stackful coroutine (the SC_THREAD substrate).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sysc/coroutine.hpp"
#include "sysc/report.hpp"

namespace rtk::sysc {
namespace {

TEST(Coroutine, RunsBodyOnFirstResume) {
    int state = 0;
    Coroutine c([&] { state = 1; });
    EXPECT_FALSE(c.started());
    c.resume();
    EXPECT_EQ(state, 1);
    EXPECT_TRUE(c.finished());
}

TEST(Coroutine, YieldSuspendsAndResumeContinues) {
    std::vector<int> log;
    Coroutine* self = nullptr;
    Coroutine c([&] {
        log.push_back(1);
        self->yield();
        log.push_back(2);
        self->yield();
        log.push_back(3);
    });
    self = &c;
    c.resume();
    EXPECT_EQ(log, (std::vector<int>{1}));
    c.resume();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_FALSE(c.finished());
    c.resume();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(c.finished());
}

TEST(Coroutine, KillUnwindsWithRaii) {
    bool destroyed = false;
    Coroutine* self = nullptr;
    Coroutine c([&] {
        struct S {
            bool* f;
            ~S() { *f = true; }
        } s{&destroyed};
        for (;;) {
            self->yield();
        }
    });
    self = &c;
    c.resume();
    EXPECT_FALSE(destroyed);
    c.kill();
    c.resume();  // unwind
    EXPECT_TRUE(destroyed);
    EXPECT_TRUE(c.finished());
}

TEST(Coroutine, DestructorUnwindsSuspendedStack) {
    bool destroyed = false;
    {
        auto c = std::make_unique<Coroutine>([&] {
            struct S {
                bool* f;
                ~S() { *f = true; }
            } s{&destroyed};
            // Suspended forever; ~Coroutine must unwind.
            for (;;) {
                // yield via a captured pointer set below
            }
        });
        // Can't yield without self-reference; use a simpler body instead:
        c.reset();
    }
    // Rebuild with proper self-reference:
    bool destroyed2 = false;
    {
        Coroutine* self = nullptr;
        auto c = std::make_unique<Coroutine>([&] {
            struct S {
                bool* f;
                ~S() { *f = true; }
            } s{&destroyed2};
            for (;;) {
                self->yield();
            }
        });
        self = c.get();
        c->resume();
        EXPECT_FALSE(destroyed2);
    }
    EXPECT_TRUE(destroyed2);
}

TEST(Coroutine, ExceptionFromBodyRethrownAtResume) {
    Coroutine c([] { throw std::runtime_error("inner"); });
    EXPECT_THROW(c.resume(), std::runtime_error);
    EXPECT_TRUE(c.finished());
}

TEST(Coroutine, ResumeAfterFinishIsFatal) {
    Coroutine c([] {});
    c.resume();
    EXPECT_THROW(c.resume(), SimError);
}

TEST(Coroutine, KillBeforeStartSkipsBody) {
    bool ran = false;
    Coroutine c([&] { ran = true; });
    c.kill();
    c.resume();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(c.finished());
}

TEST(Coroutine, DeepStackUsage) {
    // Recursion deep enough to prove a real stack (not segmented).
    Coroutine* self = nullptr;
    long sum = 0;
    std::function<long(int)> rec = [&](int n) -> long {
        char pad[512];  // force frame growth
        pad[0] = static_cast<char>(n);
        if (n == 0) {
            self->yield();
            return pad[0];
        }
        return rec(n - 1) + 1;
    };
    Coroutine c([&] { sum = rec(200); });
    self = &c;
    c.resume();  // runs down to depth 200 and yields
    EXPECT_EQ(sum, 0);
    c.resume();
    EXPECT_EQ(sum, 200);
}

TEST(Coroutine, ManyCoroutinesInterleaved) {
    constexpr int n = 32;
    std::vector<std::unique_ptr<Coroutine>> cs;
    std::vector<Coroutine*> selves(n, nullptr);
    std::vector<int> counters(n, 0);
    for (int i = 0; i < n; ++i) {
        cs.push_back(std::make_unique<Coroutine>([&counters, &selves, i] {
            for (int lap = 0; lap < 3; ++lap) {
                ++counters[static_cast<std::size_t>(i)];
                selves[static_cast<std::size_t>(i)]->yield();
            }
        }));
        selves[static_cast<std::size_t>(i)] = cs.back().get();
    }
    for (int lap = 0; lap < 3; ++lap) {
        for (auto& c : cs) {
            c->resume();
        }
    }
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(counters[static_cast<std::size_t>(i)], 3);
    }
}

}  // namespace
}  // namespace rtk::sysc
