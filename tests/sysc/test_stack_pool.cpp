// StackPool: reuse (LIFO), exact-size segregation, cache boundedness,
// and the kernel integration (terminate/respawn churn recycles stacks
// instead of allocating).
#include <gtest/gtest.h>

#include <string>

#include "sysc/coroutine.hpp"
#include "sysc/kernel.hpp"
#include "sysc/stack_pool.hpp"

namespace rtk::sysc {
namespace {

TEST(StackPool, AcquireAllocatesReleaseRecycles) {
    StackPool pool;
    StackPool::Stack s = pool.acquire(4096);
    ASSERT_NE(s.base, nullptr);
    EXPECT_EQ(s.bytes, 4096u);
    EXPECT_EQ(pool.total_acquires(), 1u);
    EXPECT_EQ(pool.total_reuses(), 0u);

    char* base = s.base;
    pool.release(s);
    EXPECT_EQ(pool.cached(), 1u);

    StackPool::Stack again = pool.acquire(4096);
    EXPECT_EQ(again.base, base);  // same stack came back
    EXPECT_EQ(pool.total_reuses(), 1u);
    EXPECT_EQ(pool.cached(), 0u);
    pool.release(again);
}

TEST(StackPool, ReuseIsLifo) {
    StackPool pool;
    StackPool::Stack a = pool.acquire(4096);
    StackPool::Stack b = pool.acquire(4096);
    char* a_base = a.base;
    char* b_base = b.base;
    pool.release(a);
    pool.release(b);  // released last -> hottest -> reused first
    StackPool::Stack first = pool.acquire(4096);
    StackPool::Stack second = pool.acquire(4096);
    EXPECT_EQ(first.base, b_base);
    EXPECT_EQ(second.base, a_base);
    pool.release(first);
    pool.release(second);
}

TEST(StackPool, ExactGeometryOnly) {
    StackPool pool;
    StackPool::Stack small = pool.acquire(4096);
    pool.release(small);
    ASSERT_EQ(pool.cached(), 1u);

    // A different size must not be satisfied from the cached stack.
    StackPool::Stack big = pool.acquire(8192);
    EXPECT_EQ(pool.total_reuses(), 0u);
    EXPECT_EQ(pool.cached(), 1u);  // the 4 KiB stack is still idle
    EXPECT_EQ(big.bytes, 8192u);

    // Same size is.
    StackPool::Stack small2 = pool.acquire(4096);
    EXPECT_EQ(pool.total_reuses(), 1u);
    pool.release(big);
    pool.release(small2);
    EXPECT_EQ(pool.cached_bytes(), 4096u + 8192u);
}

TEST(StackPool, CacheIsBounded) {
    StackPool pool(2);
    StackPool::Stack a = pool.acquire(1024);
    StackPool::Stack b = pool.acquire(1024);
    StackPool::Stack c = pool.acquire(1024);
    pool.release(a);
    pool.release(b);
    pool.release(c);  // over the cap: freed, not cached
    EXPECT_EQ(pool.cached(), 2u);
    EXPECT_EQ(pool.max_cached(), 2u);
}

TEST(StackPool, ShrinkingTheCapFreesSurplus) {
    StackPool pool(8);
    for (int i = 0; i < 4; ++i) {
        pool.release(pool.acquire(1024));
    }
    // acquire/release pairs above reuse the same stack; force 4 distinct.
    StackPool::Stack s0 = pool.acquire(1024);
    StackPool::Stack s1 = pool.acquire(1024);
    StackPool::Stack s2 = pool.acquire(1024);
    StackPool::Stack s3 = pool.acquire(1024);
    pool.release(s0);
    pool.release(s1);
    pool.release(s2);
    pool.release(s3);
    ASSERT_EQ(pool.cached(), 4u);
    pool.set_max_cached(1);
    EXPECT_EQ(pool.cached(), 1u);
    pool.set_max_cached(0);
    EXPECT_EQ(pool.cached(), 0u);
}

TEST(StackPool, ReleaseOfEmptyStackIsNoop) {
    StackPool pool;
    pool.release(StackPool::Stack{});
    EXPECT_EQ(pool.cached(), 0u);
}

TEST(StackPool, CoroutineReturnsStackOnFinish) {
    StackPool pool;
    {
        Coroutine c([] {}, 16 * 1024, &pool);
        EXPECT_EQ(pool.total_acquires(), 0u);  // lazy: no stack before resume
        c.resume();
        EXPECT_TRUE(c.finished());
        // The stack went back to the pool the moment the body finished,
        // not at coroutine destruction.
        EXPECT_EQ(pool.cached(), 1u);
    }
    EXPECT_EQ(pool.total_acquires(), 1u);
    EXPECT_EQ(pool.total_reuses(), 0u);
}

TEST(StackPool, KilledCoroutineReturnsStackToo) {
    StackPool pool;
    {
        Coroutine* cp = nullptr;
        Coroutine c([&cp] { cp->yield(); }, 16 * 1024, &pool);
        cp = &c;
        c.resume();  // suspends at yield
        EXPECT_EQ(pool.cached(), 0u);
    }  // dtor kills + unwinds
    EXPECT_EQ(pool.cached(), 1u);
}

TEST(StackPool, KernelChurnReusesStacks) {
    Kernel k;
    const int cycles = 10;
    for (int i = 0; i < cycles; ++i) {
        k.spawn("churn" + std::to_string(i), [] {});
        k.run();
    }
    EXPECT_EQ(k.stack_pool().total_acquires(), static_cast<std::uint64_t>(cycles));
    // Every cycle after the first ran on the first cycle's recycled stack.
    EXPECT_EQ(k.stack_pool().total_reuses(), static_cast<std::uint64_t>(cycles - 1));
    EXPECT_LE(k.stack_pool().cached(), k.stack_pool().max_cached());
}

}  // namespace
}  // namespace rtk::sysc
