#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

class KernelTest : public ::testing::Test {
protected:
    Kernel k;
};

TEST_F(KernelTest, RunUntilSetsNowEvenWithoutActivity) {
    k.run_until(Time::ms(7));
    EXPECT_EQ(k.now(), Time::ms(7));
}

TEST_F(KernelTest, RunUntilProcessesActivityAtBoundary) {
    bool fired = false;
    Event e("e");
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    e.notify(Time::ms(5));
    k.run_until(Time::ms(5));
    EXPECT_TRUE(fired);
}

TEST_F(KernelTest, RunUntilDoesNotProcessBeyondBoundary) {
    bool fired = false;
    Event e("e");
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    e.notify(Time::ms(5) + Time::ps(1));
    k.run_until(Time::ms(5));
    EXPECT_FALSE(fired);
    k.run();
    EXPECT_TRUE(fired);
}

TEST_F(KernelTest, RunForIsRelative) {
    k.run_until(Time::ms(2));
    k.run_for(Time::ms(3));
    EXPECT_EQ(k.now(), Time::ms(5));
}

TEST_F(KernelTest, RunIntoThePastIsFatal) {
    k.run_until(Time::ms(10));
    EXPECT_THROW(k.run_until(Time::ms(5)), SimError);
}

TEST_F(KernelTest, StopEndsRunEarly) {
    int laps = 0;
    k.spawn("looper", [&] {
        for (;;) {
            wait(Time::ms(1));
            if (++laps == 3) {
                Kernel::current().stop();
            }
        }
    });
    k.run_until(Time::sec(1));
    EXPECT_EQ(laps, 3);
    EXPECT_EQ(k.now(), Time::ms(3));
}

TEST_F(KernelTest, IdleReportsNoActivity) {
    EXPECT_TRUE(k.idle());
    Event e("e");
    k.spawn("w", [&] { wait(e); });
    k.run_until(Time::us(1));
    EXPECT_TRUE(k.idle());  // waiting process with no pending notification
    e.notify(Time::ms(1));
    EXPECT_FALSE(k.idle());
}

TEST_F(KernelTest, NextActivityAt) {
    EXPECT_EQ(k.next_activity_at(), Time::max());
    Event e("e");
    e.notify(Time::ms(4));
    EXPECT_EQ(k.next_activity_at(), Time::ms(4));
}

TEST_F(KernelTest, DeltaCountAdvancesPerDeltaCycle) {
    Event e("e");
    k.spawn("w", [&] {
        for (int i = 0; i < 3; ++i) {
            wait(e);
        }
    });
    const auto d0 = k.delta_count();
    for (int i = 0; i < 3; ++i) {
        e.notify_delta();
        k.run();
    }
    EXPECT_GE(k.delta_count(), d0 + 3);
}

TEST_F(KernelTest, CurrentKernelIsThreadLocalStack) {
    EXPECT_EQ(&Kernel::current(), &k);
    {
        Kernel inner;
        EXPECT_EQ(&Kernel::current(), &inner);
    }
    EXPECT_EQ(&Kernel::current(), &k);
}

TEST_F(KernelTest, TimestepHooksRunAfterDeltas) {
    int hooks = 0;
    k.add_timestep_hook([&](Time) { ++hooks; });
    k.spawn("p", [] { wait(Time::ms(1)); });
    k.run();
    EXPECT_GE(hooks, 2);  // initial delta + wake at 1 ms
}

// ---- timed-queue determinism (indexed min-heap) ----------------------------

TEST_F(KernelTest, EqualTimestampNotificationsTriggerInNotifyOrder) {
    // The heap's (time, order) key must reproduce the multimap's FIFO
    // among equal timestamps: processes wake in notification order.
    std::vector<int> order;
    std::vector<std::unique_ptr<Event>> events;
    for (int i = 0; i < 8; ++i) {
        events.push_back(std::make_unique<Event>("e" + std::to_string(i)));
        Event* e = events.back().get();
        k.spawn("w" + std::to_string(i), [&order, e, i] {
            wait(*e);
            order.push_back(i);
        });
    }
    // Notify in a scrambled order; all at the same instant.
    const int scrambled[] = {5, 2, 7, 0, 3, 6, 1, 4};
    for (int i : scrambled) {
        events[static_cast<std::size_t>(i)]->notify(Time::ms(2));
    }
    k.run();
    EXPECT_EQ(order, (std::vector<int>{5, 2, 7, 0, 3, 6, 1, 4}));
}

TEST_F(KernelTest, CancelledTimedNotificationNeverFiresAndClearsActivity) {
    Event e("e");
    bool fired = false;
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    k.run_until(Time::us(1));  // let the process block on the event
    e.notify(Time::ms(2));
    e.cancel();
    EXPECT_EQ(k.next_activity_at(), Time::max());  // stale entry pruned
    EXPECT_TRUE(k.idle());
    k.run_until(Time::ms(10));
    EXPECT_FALSE(fired);
}

TEST_F(KernelTest, RenotifyAfterCancelReusesTheSlotAtTheNewTime) {
    Event e("e");
    Time fired_at;
    k.spawn("w", [&] {
        wait(e);
        fired_at = now();
    });
    e.notify(Time::ms(2));
    e.cancel();
    e.notify(Time::ms(7));  // later than the cancelled one: must win
    k.run();
    EXPECT_EQ(fired_at, Time::ms(7));
    EXPECT_EQ(k.now(), Time::ms(7));
}

TEST_F(KernelTest, ManyTimedNotificationsFireInTimestampOrder) {
    std::vector<int> fired;
    std::vector<std::unique_ptr<Event>> events;
    // Deterministically shuffled deadlines 1..32 ms.
    for (int i = 0; i < 32; ++i) {
        events.push_back(std::make_unique<Event>("e" + std::to_string(i)));
        Event* e = events.back().get();
        const int ms = 1 + (i * 11) % 32;
        k.spawn("w" + std::to_string(i), [&fired, e, ms] {
            wait(*e);
            fired.push_back(ms);
        });
        e->notify(Time::ms(static_cast<std::uint64_t>(ms)));
    }
    k.run();
    ASSERT_EQ(fired.size(), 32u);
    for (std::size_t i = 1; i < fired.size(); ++i) {
        EXPECT_LT(fired[i - 1], fired[i]);
    }
}

TEST_F(KernelTest, DestructionWithLiveProcessesIsClean) {
    // Regression: destroying a kernel with suspended processes (including
    // ones holding timed notifications) must not touch freed queues.
    auto inner = std::make_unique<Kernel>();
    auto e = std::make_unique<Event>("e");
    inner->spawn("a", [&] {
        for (;;) {
            wait(*e);
        }
    });
    inner->spawn("b", [] {
        for (;;) {
            wait(Time::ms(1));
        }
    });
    inner->run_until(Time::ms(3));
    e.reset();      // event dies first (waiter deregistered with a warning)
    inner.reset();  // then the kernel; must not crash
    SUCCEED();
}

// ---- multi-instance lifecycle (context-explicit API) ------------------------

TEST_F(KernelTest, OutOfOrderDestructionKeepsCurrentCoherent) {
    // Regression: the destructor used to restore its construction-time
    // predecessor unconditionally, so destroying kernels in non-LIFO order
    // left current() pointing at a dead kernel.
    auto k1 = std::make_unique<Kernel>();
    auto k2 = std::make_unique<Kernel>();
    auto k3 = std::make_unique<Kernel>();
    EXPECT_EQ(Kernel::current_or_null(), k3.get());
    k2.reset();  // middle of the chain
    EXPECT_EQ(Kernel::current_or_null(), k3.get());
    k3.reset();  // head: falls back past the unlinked middle
    EXPECT_EQ(Kernel::current_or_null(), k1.get());
    k1.reset();
    EXPECT_EQ(Kernel::current_or_null(), &k);  // the fixture kernel again
}

TEST_F(KernelTest, DestroyingOldestFirstKeepsNewestCurrent) {
    auto k1 = std::make_unique<Kernel>();
    auto k2 = std::make_unique<Kernel>();
    k1.reset();
    EXPECT_EQ(Kernel::current_or_null(), k2.get());
    // The survivor still works: events and processes bind to it.
    bool ran = false;
    Event e(*k2, "e");
    k2->spawn("w", [&] {
        wait(e);
        ran = true;
    });
    e.notify(Time::ms(1));
    k2->run();
    EXPECT_TRUE(ran);
}

TEST_F(KernelTest, RunBindsTheExecutingKernelAsCurrent) {
    // Two live kernels on one thread: while `older` runs, ambient-context
    // code inside its processes must resolve to it, not to the most
    // recently constructed kernel.
    Kernel newer;
    EXPECT_EQ(&Kernel::current(), &newer);
    const Kernel* seen = nullptr;
    k.spawn("probe", [&] {
        wait(Time::ms(1));
        seen = &Kernel::current();
    });
    k.run_until(Time::ms(2));
    EXPECT_EQ(seen, &k);
    EXPECT_EQ(&Kernel::current(), &newer);  // binding restored after run
}

TEST_F(KernelTest, SpawnBindsTheOwningKernel) {
    Kernel newer;
    // Spawning on `k` while `newer` is the ambient kernel: the process
    // and its internal events must belong to `k`.
    bool ran = false;
    k.spawn("w", [&] {
        wait(Time::ms(1));
        ran = true;
    });
    k.run_until(Time::ms(2));
    EXPECT_TRUE(ran);
    EXPECT_TRUE(newer.idle());
    EXPECT_EQ(newer.process_count(), 0u);
}

TEST(KernelLifecycleDeathTest, CrossThreadDestructionIsFatal) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            Kernel* stray = nullptr;
            std::thread t([&stray] { stray = new Kernel(); });
            t.join();
            delete stray;  // not on this thread's chain: must abort
        },
        "different thread");
}

}  // namespace
}  // namespace rtk::sysc
