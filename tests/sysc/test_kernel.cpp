#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

class KernelTest : public ::testing::Test {
protected:
    Kernel k;
};

TEST_F(KernelTest, RunUntilSetsNowEvenWithoutActivity) {
    k.run_until(Time::ms(7));
    EXPECT_EQ(k.now(), Time::ms(7));
}

TEST_F(KernelTest, RunUntilProcessesActivityAtBoundary) {
    bool fired = false;
    Event e("e");
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    e.notify(Time::ms(5));
    k.run_until(Time::ms(5));
    EXPECT_TRUE(fired);
}

TEST_F(KernelTest, RunUntilDoesNotProcessBeyondBoundary) {
    bool fired = false;
    Event e("e");
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    e.notify(Time::ms(5) + Time::ps(1));
    k.run_until(Time::ms(5));
    EXPECT_FALSE(fired);
    k.run();
    EXPECT_TRUE(fired);
}

TEST_F(KernelTest, RunForIsRelative) {
    k.run_until(Time::ms(2));
    k.run_for(Time::ms(3));
    EXPECT_EQ(k.now(), Time::ms(5));
}

TEST_F(KernelTest, RunIntoThePastIsFatal) {
    k.run_until(Time::ms(10));
    EXPECT_THROW(k.run_until(Time::ms(5)), SimError);
}

TEST_F(KernelTest, StopEndsRunEarly) {
    int laps = 0;
    k.spawn("looper", [&] {
        for (;;) {
            wait(Time::ms(1));
            if (++laps == 3) {
                Kernel::current().stop();
            }
        }
    });
    k.run_until(Time::sec(1));
    EXPECT_EQ(laps, 3);
    EXPECT_EQ(k.now(), Time::ms(3));
}

TEST_F(KernelTest, IdleReportsNoActivity) {
    EXPECT_TRUE(k.idle());
    Event e("e");
    k.spawn("w", [&] { wait(e); });
    k.run_until(Time::us(1));
    EXPECT_TRUE(k.idle());  // waiting process with no pending notification
    e.notify(Time::ms(1));
    EXPECT_FALSE(k.idle());
}

TEST_F(KernelTest, NextActivityAt) {
    EXPECT_EQ(k.next_activity_at(), Time::max());
    Event e("e");
    e.notify(Time::ms(4));
    EXPECT_EQ(k.next_activity_at(), Time::ms(4));
}

TEST_F(KernelTest, DeltaCountAdvancesPerDeltaCycle) {
    Event e("e");
    k.spawn("w", [&] {
        for (int i = 0; i < 3; ++i) {
            wait(e);
        }
    });
    const auto d0 = k.delta_count();
    for (int i = 0; i < 3; ++i) {
        e.notify_delta();
        k.run();
    }
    EXPECT_GE(k.delta_count(), d0 + 3);
}

TEST_F(KernelTest, CurrentKernelIsThreadLocalStack) {
    EXPECT_EQ(&Kernel::current(), &k);
    {
        Kernel inner;
        EXPECT_EQ(&Kernel::current(), &inner);
    }
    EXPECT_EQ(&Kernel::current(), &k);
}

TEST_F(KernelTest, TimestepHooksRunAfterDeltas) {
    int hooks = 0;
    k.add_timestep_hook([&](Time) { ++hooks; });
    k.spawn("p", [] { wait(Time::ms(1)); });
    k.run();
    EXPECT_GE(hooks, 2);  // initial delta + wake at 1 ms
}

// ---- timed-queue determinism (indexed min-heap) ----------------------------

TEST_F(KernelTest, EqualTimestampNotificationsTriggerInNotifyOrder) {
    // The heap's (time, order) key must reproduce the multimap's FIFO
    // among equal timestamps: processes wake in notification order.
    std::vector<int> order;
    std::vector<std::unique_ptr<Event>> events;
    for (int i = 0; i < 8; ++i) {
        events.push_back(std::make_unique<Event>("e" + std::to_string(i)));
        Event* e = events.back().get();
        k.spawn("w" + std::to_string(i), [&order, e, i] {
            wait(*e);
            order.push_back(i);
        });
    }
    // Notify in a scrambled order; all at the same instant.
    const int scrambled[] = {5, 2, 7, 0, 3, 6, 1, 4};
    for (int i : scrambled) {
        events[static_cast<std::size_t>(i)]->notify(Time::ms(2));
    }
    k.run();
    EXPECT_EQ(order, (std::vector<int>{5, 2, 7, 0, 3, 6, 1, 4}));
}

TEST_F(KernelTest, CancelledTimedNotificationNeverFiresAndClearsActivity) {
    Event e("e");
    bool fired = false;
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    k.run_until(Time::us(1));  // let the process block on the event
    e.notify(Time::ms(2));
    e.cancel();
    EXPECT_EQ(k.next_activity_at(), Time::max());  // stale entry pruned
    EXPECT_TRUE(k.idle());
    k.run_until(Time::ms(10));
    EXPECT_FALSE(fired);
}

TEST_F(KernelTest, RenotifyAfterCancelReusesTheSlotAtTheNewTime) {
    Event e("e");
    Time fired_at;
    k.spawn("w", [&] {
        wait(e);
        fired_at = now();
    });
    e.notify(Time::ms(2));
    e.cancel();
    e.notify(Time::ms(7));  // later than the cancelled one: must win
    k.run();
    EXPECT_EQ(fired_at, Time::ms(7));
    EXPECT_EQ(k.now(), Time::ms(7));
}

TEST_F(KernelTest, ManyTimedNotificationsFireInTimestampOrder) {
    std::vector<int> fired;
    std::vector<std::unique_ptr<Event>> events;
    // Deterministically shuffled deadlines 1..32 ms.
    for (int i = 0; i < 32; ++i) {
        events.push_back(std::make_unique<Event>("e" + std::to_string(i)));
        Event* e = events.back().get();
        const int ms = 1 + (i * 11) % 32;
        k.spawn("w" + std::to_string(i), [&fired, e, ms] {
            wait(*e);
            fired.push_back(ms);
        });
        e->notify(Time::ms(static_cast<std::uint64_t>(ms)));
    }
    k.run();
    ASSERT_EQ(fired.size(), 32u);
    for (std::size_t i = 1; i < fired.size(); ++i) {
        EXPECT_LT(fired[i - 1], fired[i]);
    }
}

TEST_F(KernelTest, DestructionWithLiveProcessesIsClean) {
    // Regression: destroying a kernel with suspended processes (including
    // ones holding timed notifications) must not touch freed queues.
    auto inner = std::make_unique<Kernel>();
    auto e = std::make_unique<Event>("e");
    inner->spawn("a", [&] {
        for (;;) {
            wait(*e);
        }
    });
    inner->spawn("b", [] {
        for (;;) {
            wait(Time::ms(1));
        }
    });
    inner->run_until(Time::ms(3));
    e.reset();      // event dies first (waiter deregistered with a warning)
    inner.reset();  // then the kernel; must not crash
    SUCCEED();
}

}  // namespace
}  // namespace rtk::sysc
