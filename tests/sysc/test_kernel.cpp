#include <gtest/gtest.h>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

class KernelTest : public ::testing::Test {
protected:
    Kernel k;
};

TEST_F(KernelTest, RunUntilSetsNowEvenWithoutActivity) {
    k.run_until(Time::ms(7));
    EXPECT_EQ(k.now(), Time::ms(7));
}

TEST_F(KernelTest, RunUntilProcessesActivityAtBoundary) {
    bool fired = false;
    Event e("e");
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    e.notify(Time::ms(5));
    k.run_until(Time::ms(5));
    EXPECT_TRUE(fired);
}

TEST_F(KernelTest, RunUntilDoesNotProcessBeyondBoundary) {
    bool fired = false;
    Event e("e");
    k.spawn("w", [&] {
        wait(e);
        fired = true;
    });
    e.notify(Time::ms(5) + Time::ps(1));
    k.run_until(Time::ms(5));
    EXPECT_FALSE(fired);
    k.run();
    EXPECT_TRUE(fired);
}

TEST_F(KernelTest, RunForIsRelative) {
    k.run_until(Time::ms(2));
    k.run_for(Time::ms(3));
    EXPECT_EQ(k.now(), Time::ms(5));
}

TEST_F(KernelTest, RunIntoThePastIsFatal) {
    k.run_until(Time::ms(10));
    EXPECT_THROW(k.run_until(Time::ms(5)), SimError);
}

TEST_F(KernelTest, StopEndsRunEarly) {
    int laps = 0;
    k.spawn("looper", [&] {
        for (;;) {
            wait(Time::ms(1));
            if (++laps == 3) {
                Kernel::current().stop();
            }
        }
    });
    k.run_until(Time::sec(1));
    EXPECT_EQ(laps, 3);
    EXPECT_EQ(k.now(), Time::ms(3));
}

TEST_F(KernelTest, IdleReportsNoActivity) {
    EXPECT_TRUE(k.idle());
    Event e("e");
    k.spawn("w", [&] { wait(e); });
    k.run_until(Time::us(1));
    EXPECT_TRUE(k.idle());  // waiting process with no pending notification
    e.notify(Time::ms(1));
    EXPECT_FALSE(k.idle());
}

TEST_F(KernelTest, NextActivityAt) {
    EXPECT_EQ(k.next_activity_at(), Time::max());
    Event e("e");
    e.notify(Time::ms(4));
    EXPECT_EQ(k.next_activity_at(), Time::ms(4));
}

TEST_F(KernelTest, DeltaCountAdvancesPerDeltaCycle) {
    Event e("e");
    k.spawn("w", [&] {
        for (int i = 0; i < 3; ++i) {
            wait(e);
        }
    });
    const auto d0 = k.delta_count();
    for (int i = 0; i < 3; ++i) {
        e.notify_delta();
        k.run();
    }
    EXPECT_GE(k.delta_count(), d0 + 3);
}

TEST_F(KernelTest, CurrentKernelIsThreadLocalStack) {
    EXPECT_EQ(&Kernel::current(), &k);
    {
        Kernel inner;
        EXPECT_EQ(&Kernel::current(), &inner);
    }
    EXPECT_EQ(&Kernel::current(), &k);
}

TEST_F(KernelTest, TimestepHooksRunAfterDeltas) {
    int hooks = 0;
    k.add_timestep_hook([&](Time) { ++hooks; });
    k.spawn("p", [] { wait(Time::ms(1)); });
    k.run();
    EXPECT_GE(hooks, 2);  // initial delta + wake at 1 ms
}

TEST_F(KernelTest, DestructionWithLiveProcessesIsClean) {
    // Regression: destroying a kernel with suspended processes (including
    // ones holding timed notifications) must not touch freed queues.
    auto inner = std::make_unique<Kernel>();
    auto e = std::make_unique<Event>("e");
    inner->spawn("a", [&] {
        for (;;) {
            wait(*e);
        }
    });
    inner->spawn("b", [] {
        for (;;) {
            wait(Time::ms(1));
        }
    });
    inner->run_until(Time::ms(3));
    e.reset();      // event dies first (waiter deregistered with a warning)
    inner.reset();  // then the kernel; must not crash
    SUCCEED();
}

}  // namespace
}  // namespace rtk::sysc
