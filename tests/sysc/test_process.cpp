#include <gtest/gtest.h>

#include <vector>

#include "sysc/sysc.hpp"

namespace rtk::sysc {
namespace {

class ProcessTest : public ::testing::Test {
protected:
    Kernel k;
};

TEST_F(ProcessTest, RunsAtTimeZero) {
    bool ran = false;
    k.spawn("p", [&] { ran = true; });
    k.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(k.now(), Time::zero());
}

TEST_F(ProcessTest, FifoOrderIsDeterministic) {
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        k.spawn("p" + std::to_string(i), [&order, i] { order.push_back(i); });
    }
    k.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(ProcessTest, WaitAdvancesTime) {
    Time t1, t2;
    k.spawn("p", [&] {
        wait(Time::ms(1));
        t1 = now();
        wait(Time::us(500));
        t2 = now();
    });
    k.run();
    EXPECT_EQ(t1, Time::ms(1));
    EXPECT_EQ(t2, Time::us(1500));
}

TEST_F(ProcessTest, StateTransitions) {
    Event e("e");
    Process& p = k.spawn("p", [&] { wait(e); });
    EXPECT_EQ(p.state(), Process::State::runnable);
    k.run_until(Time::us(1));
    EXPECT_EQ(p.state(), Process::State::waiting);
    e.notify();
    k.run_until(Time::us(2));
    EXPECT_EQ(p.state(), Process::State::terminated);
    EXPECT_TRUE(p.terminated());
}

TEST_F(ProcessTest, TerminatedEventFires) {
    bool observed = false;
    Process& p = k.spawn("p", [] { wait(Time::ms(1)); });
    k.spawn("watcher", [&] {
        wait(p.terminated_event());
        observed = true;
    });
    k.run();
    EXPECT_TRUE(observed);
}

TEST_F(ProcessTest, KillUnwindsRaii) {
    bool destroyed = false;
    Process& p = k.spawn("p", [&] {
        struct Sentinel {
            bool* flag;
            ~Sentinel() { *flag = true; }
        } s{&destroyed};
        for (;;) {
            wait(Time::ms(1));
        }
    });
    k.run_until(Time::ms(5));
    EXPECT_FALSE(destroyed);
    p.kill();
    EXPECT_TRUE(destroyed);
    EXPECT_TRUE(p.terminated());
}

TEST_F(ProcessTest, KillBeforeFirstRunIsClean) {
    bool ran = false;
    Process& p = k.spawn("p", [&] { ran = true; });
    p.kill();
    k.run();
    EXPECT_FALSE(ran);
    EXPECT_TRUE(p.terminated());
}

TEST_F(ProcessTest, SuicideViaKill) {
    bool after = false;
    k.spawn("p", [&] {
        current_process().kill();
        after = true;  // unreachable
    });
    k.run();
    EXPECT_FALSE(after);
}

TEST_F(ProcessTest, ExceptionPropagatesToRun) {
    k.spawn("p", [] { throw std::runtime_error("boom"); });
    EXPECT_THROW(k.run(), std::runtime_error);
}

TEST_F(ProcessTest, FindProcessByName) {
    Process& p = k.spawn("needle", [] {});
    EXPECT_EQ(k.find_process("needle"), &p);
    EXPECT_EQ(k.find_process("missing"), nullptr);
    EXPECT_EQ(k.process_count(), 1u);
}

TEST_F(ProcessTest, SpawnDuringSimulationRunsInSameTimestep) {
    Time child_ran_at = Time::max();
    k.spawn("parent", [&] {
        wait(Time::ms(2));
        Kernel::current().spawn("child", [&] { child_ran_at = now(); });
    });
    k.run();
    EXPECT_EQ(child_ran_at, Time::ms(2));
}

TEST_F(ProcessTest, WaitDeltaResumesWithoutTimeAdvance) {
    int phase = 0;
    k.spawn("p", [&] {
        phase = 1;
        wait_delta();
        phase = 2;
    });
    k.step_delta();
    EXPECT_EQ(phase, 1);
    k.run();
    EXPECT_EQ(phase, 2);
    EXPECT_EQ(k.now(), Time::zero());
}

TEST_F(ProcessTest, WaitOutsideProcessIsFatal) {
    EXPECT_THROW(wait(Time::ms(1)), SimError);
}

TEST_F(ProcessTest, NestedWaitsDeepInCallStack) {
    // The stackful-coroutine requirement: wait() from nested frames.
    std::function<void(int)> recurse = [&](int depth) {
        if (depth == 0) {
            wait(Time::us(10));
            return;
        }
        recurse(depth - 1);
    };
    Time done;
    k.spawn("deep", [&] {
        recurse(50);
        done = now();
    });
    k.run();
    EXPECT_EQ(done, Time::us(10));
}

TEST_F(ProcessTest, ManyProcessesInterleaveDeterministically) {
    std::vector<std::pair<Time, int>> log;
    for (int i = 0; i < 10; ++i) {
        k.spawn("p" + std::to_string(i), [&log, i] {
            for (int r = 0; r < 3; ++r) {
                wait(Time::us(static_cast<std::uint64_t>(i + 1)));
                log.emplace_back(now(), i);
            }
        });
    }
    k.run();
    EXPECT_EQ(log.size(), 30u);
    // Log must be sorted by time (stable interleaving).
    for (std::size_t i = 1; i < log.size(); ++i) {
        EXPECT_LE(log[i - 1].first, log[i].first);
    }
}

}  // namespace
}  // namespace rtk::sysc
