// T-Kernel/DS -- debugger support (paper §2: "acts as a debugger that
// references different resources and kernel internal states").
//
// Provides the td_* reference functions over every kernel object class,
// an object-listing formatter reproducing the Fig 8 output style, and a
// task state-transition journal view for trace tooling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tkernel/kernel.hpp"

namespace rtk::tkds {

using tkernel::ER;
using tkernel::ID;
using tkernel::INT;
using tkernel::TKernel;

// ---- extended reference packets -------------------------------------------------

/// td_ref_tsk: everything tk_ref_tsk reports plus identity and the
/// T-THREAD performance counters (CET/CEE from the token).
struct TD_RTSK {
    std::string name;
    tkernel::T_RTSK base;
    sysc::Time cet{};
    double cee_nj = 0.0;
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t cycles = 0;
};

/// td_inf_tsk: cumulative execution statistics of one task.
struct TD_ITSK {
    sysc::Time stime{};   ///< time consumed in OS services
    sysc::Time utime{};   ///< time consumed in the task body
    sysc::Time btime{};   ///< time consumed in BFM (H/W) access
    double energy_nj = 0.0;
};

// ---- list functions (return the number of ids written) ----------------------------

INT td_lst_tsk(const TKernel& k, std::vector<ID>& out);
INT td_lst_sem(const TKernel& k, std::vector<ID>& out);
INT td_lst_flg(const TKernel& k, std::vector<ID>& out);
INT td_lst_mbx(const TKernel& k, std::vector<ID>& out);
INT td_lst_mtx(const TKernel& k, std::vector<ID>& out);
INT td_lst_mbf(const TKernel& k, std::vector<ID>& out);
INT td_lst_mpf(const TKernel& k, std::vector<ID>& out);
INT td_lst_mpl(const TKernel& k, std::vector<ID>& out);
INT td_lst_cyc(const TKernel& k, std::vector<ID>& out);
INT td_lst_alm(const TKernel& k, std::vector<ID>& out);

// ---- reference functions -------------------------------------------------------------

ER td_ref_tsk(const TKernel& k, ID tskid, TD_RTSK* pk);
ER td_inf_tsk(const TKernel& k, ID tskid, TD_ITSK* pk);
/// The remaining td_ref_* coincide with the tk_ref_* packets.
inline ER td_ref_sem(const TKernel& k, ID id, tkernel::T_RSEM* pk) {
    return k.tk_ref_sem(id, pk);
}
inline ER td_ref_flg(const TKernel& k, ID id, tkernel::T_RFLG* pk) {
    return k.tk_ref_flg(id, pk);
}
inline ER td_ref_mbx(const TKernel& k, ID id, tkernel::T_RMBX* pk) {
    return k.tk_ref_mbx(id, pk);
}
inline ER td_ref_mtx(const TKernel& k, ID id, tkernel::T_RMTX* pk) {
    return k.tk_ref_mtx(id, pk);
}
inline ER td_ref_mbf(const TKernel& k, ID id, tkernel::T_RMBF* pk) {
    return k.tk_ref_mbf(id, pk);
}
inline ER td_ref_mpf(const TKernel& k, ID id, tkernel::T_RMPF* pk) {
    return k.tk_ref_mpf(id, pk);
}
inline ER td_ref_mpl(const TKernel& k, ID id, tkernel::T_RMPL* pk) {
    return k.tk_ref_mpl(id, pk);
}
inline ER td_ref_cyc(const TKernel& k, ID id, tkernel::T_RCYC* pk) {
    return k.tk_ref_cyc(id, pk);
}
inline ER td_ref_alm(const TKernel& k, ID id, tkernel::T_RALM* pk) {
    return k.tk_ref_alm(id, pk);
}
inline ER td_ref_sys(const TKernel& k, tkernel::T_RSYS* pk) {
    return k.tk_ref_sys(pk);
}

// ---- listings (Fig 8 output) -----------------------------------------------------------

/// Task table: id, name, state, priorities, wait factor, counters.
std::string render_task_table(const TKernel& k);
/// Full kernel-object dump: tasks + every sync/IPC/pool/time object.
std::string render_listing(const TKernel& k);
/// The last `n` task state transitions from the SIM_HashTB journal.
std::string render_state_journal(const TKernel& k, std::size_t n);

}  // namespace rtk::tkds
