#include "tkds/tkds.hpp"

#include <cstddef>
#include <iomanip>
#include <sstream>

namespace rtk::tkds {

using namespace tkernel;

namespace {
template <typename Registry>
INT list_ids(const Registry& reg, std::vector<ID>& out) {
    out = reg.ids();
    return static_cast<INT>(out.size());
}

const char* state_str(UINT tskstat) {
    switch (tskstat) {
        case TTS_RUN: return "RUN";
        case TTS_RDY: return "RDY";
        case TTS_WAI: return "WAI";
        case TTS_SUS: return "SUS";
        case TTS_WAS: return "WAS";
        case TTS_DMT: return "DMT";
    }
    return "?";
}
}  // namespace

INT td_lst_tsk(const TKernel& k, std::vector<ID>& out) { return list_ids(k.tasks(), out); }
INT td_lst_sem(const TKernel& k, std::vector<ID>& out) { return list_ids(k.semaphores(), out); }
INT td_lst_flg(const TKernel& k, std::vector<ID>& out) { return list_ids(k.eventflags(), out); }
INT td_lst_mbx(const TKernel& k, std::vector<ID>& out) { return list_ids(k.mailboxes(), out); }
INT td_lst_mtx(const TKernel& k, std::vector<ID>& out) { return list_ids(k.mutexes(), out); }
INT td_lst_mbf(const TKernel& k, std::vector<ID>& out) { return list_ids(k.message_buffers(), out); }
INT td_lst_mpf(const TKernel& k, std::vector<ID>& out) { return list_ids(k.fixed_pools(), out); }
INT td_lst_mpl(const TKernel& k, std::vector<ID>& out) { return list_ids(k.variable_pools(), out); }
INT td_lst_cyc(const TKernel& k, std::vector<ID>& out) { return list_ids(k.cyclics(), out); }
INT td_lst_alm(const TKernel& k, std::vector<ID>& out) { return list_ids(k.alarms(), out); }

ER td_ref_tsk(const TKernel& k, ID tskid, TD_RTSK* pk) {
    if (pk == nullptr) {
        return E_PAR;
    }
    const TCB* t = k.find_task(tskid);
    if (t == nullptr) {
        return E_NOEXS;
    }
    if (ER er = k.tk_ref_tsk(tskid, &pk->base); er != E_OK) {
        return er;
    }
    pk->name = t->name;
    pk->cet = t->thread->token().cet();
    pk->cee_nj = t->thread->token().cee_nj();
    pk->dispatches = t->thread->dispatch_count();
    pk->preemptions = t->thread->preemption_count();
    pk->cycles = t->thread->token().cycles();
    return E_OK;
}

ER td_inf_tsk(const TKernel& k, ID tskid, TD_ITSK* pk) {
    if (pk == nullptr) {
        return E_PAR;
    }
    const TCB* t = k.find_task(tskid);
    if (t == nullptr) {
        return E_NOEXS;
    }
    const sim::Token& tok = t->thread->token();
    pk->stime = tok.cet(sim::ExecContext::service_call) + tok.cet(sim::ExecContext::startup);
    pk->utime = tok.cet(sim::ExecContext::task);
    pk->btime = tok.cet(sim::ExecContext::bfm_access);
    pk->energy_nj = tok.cee_nj();
    return E_OK;
}

std::string render_task_table(const TKernel& k) {
    std::ostringstream out;
    out << "ID    Name          State  Pri(Base)  Wait  WObj  WupCnt  SusCnt  "
           "CET[ms]    CEE[uJ]\n";
    std::vector<ID> ids;
    td_lst_tsk(k, ids);
    for (ID id : ids) {
        TD_RTSK r;
        if (td_ref_tsk(k, id, &r) != E_OK) {
            continue;
        }
        const TCB* t = k.find_task(id);
        out << std::left << std::setw(6) << id << std::setw(14) << r.name
            << std::setw(7) << state_str(r.base.tskstat) << std::right << std::setw(4)
            << r.base.tskpri << "(" << r.base.tskbpri << ")" << std::setw(8)
            << to_string(t->wait_kind) << std::setw(6) << r.base.wid << std::setw(8)
            << r.base.wupcnt << std::setw(8) << r.base.suscnt << std::setw(10)
            << std::fixed << std::setprecision(3) << r.cet.to_ms() << std::setw(11)
            << std::setprecision(2) << r.cee_nj * 1e-3 << "\n";
    }
    return out.str();
}

std::string render_listing(const TKernel& k) {
    std::ostringstream out;
    out << "=== T-Kernel/DS object listing (systim=" << k.systim()
        << " ms, tick=" << k.tick_count() << ") ===\n";
    out << "--- tasks ---\n" << render_task_table(k);

    std::vector<ID> ids;
    if (td_lst_sem(k, ids) > 0) {
        out << "--- semaphores ---\n";
        for (ID id : ids) {
            T_RSEM r;
            td_ref_sem(k, id, &r);
            const auto* s = k.semaphores().find(id);
            out << "  sem " << id << " '" << s->name << "' count=" << r.semcnt
                << " wtsk=" << r.wtsk << "\n";
        }
    }
    if (td_lst_flg(k, ids) > 0) {
        out << "--- event flags ---\n";
        for (ID id : ids) {
            T_RFLG r;
            td_ref_flg(k, id, &r);
            const auto* f = k.eventflags().find(id);
            out << "  flg " << id << " '" << f->name << "' pattern=0x" << std::hex
                << r.flgptn << std::dec << " wtsk=" << r.wtsk << "\n";
        }
    }
    if (td_lst_mbx(k, ids) > 0) {
        out << "--- mailboxes ---\n";
        for (ID id : ids) {
            T_RMBX r;
            td_ref_mbx(k, id, &r);
            const auto* m = k.mailboxes().find(id);
            out << "  mbx " << id << " '" << m->name << "' queued=" << m->messages.size()
                << " wtsk=" << r.wtsk << "\n";
        }
    }
    if (td_lst_mtx(k, ids) > 0) {
        out << "--- mutexes ---\n";
        for (ID id : ids) {
            T_RMTX r;
            td_ref_mtx(k, id, &r);
            const auto* m = k.mutexes().find(id);
            out << "  mtx " << id << " '" << m->name << "' htsk=" << r.htsk
                << " wtsk=" << r.wtsk << "\n";
        }
    }
    if (td_lst_mbf(k, ids) > 0) {
        out << "--- message buffers ---\n";
        for (ID id : ids) {
            T_RMBF r;
            td_ref_mbf(k, id, &r);
            const auto* m = k.message_buffers().find(id);
            out << "  mbf " << id << " '" << m->name << "' msgs=" << m->messages.size()
                << " free=" << r.frbufsz << " stsk=" << r.wtsk << " rtsk=" << r.rtsk
                << "\n";
        }
    }
    if (td_lst_mpf(k, ids) > 0) {
        out << "--- fixed pools ---\n";
        for (ID id : ids) {
            T_RMPF r;
            td_ref_mpf(k, id, &r);
            const auto* p = k.fixed_pools().find(id);
            out << "  mpf " << id << " '" << p->name << "' free=" << r.frbcnt << "/"
                << p->blkcnt << " wtsk=" << r.wtsk << "\n";
        }
    }
    if (td_lst_mpl(k, ids) > 0) {
        out << "--- variable pools ---\n";
        for (ID id : ids) {
            T_RMPL r;
            td_ref_mpl(k, id, &r);
            const auto* p = k.variable_pools().find(id);
            out << "  mpl " << id << " '" << p->name << "' free=" << r.frsz
                << " maxblk=" << r.maxsz << " wtsk=" << r.wtsk << "\n";
        }
    }
    if (td_lst_cyc(k, ids) > 0) {
        out << "--- cyclic handlers ---\n";
        for (ID id : ids) {
            T_RCYC r;
            td_ref_cyc(k, id, &r);
            const auto* c = k.cyclics().find(id);
            out << "  cyc " << id << " '" << c->name << "' "
                << (r.cycstat == TCYC_STA ? "STA" : "STP") << " period=" << c->cyctim
                << "ms next_in=" << r.lfttim << "ms fired=" << c->activations << "\n";
        }
    }
    if (td_lst_alm(k, ids) > 0) {
        out << "--- alarm handlers ---\n";
        for (ID id : ids) {
            T_RALM r;
            td_ref_alm(k, id, &r);
            const auto* a = k.alarms().find(id);
            out << "  alm " << id << " '" << a->name << "' "
                << (r.almstat == TALM_STA ? "STA" : "STP") << " fires_in=" << r.lfttim
                << "ms fired=" << a->activations << "\n";
        }
    }
    if (!k.interrupt_vectors().empty()) {
        out << "--- interrupt vectors ---\n";
        for (const auto& [intno, vec] : k.interrupt_vectors()) {
            out << "  int " << intno << " pri=" << vec.intpri
                << (vec.enabled ? " enabled" : " disabled")
                << " delivered=" << vec.deliveries << "\n";
        }
    }
    out << "--- SIM_API ---\n"
        << "  dispatches=" << k.sim().total_dispatches()
        << " preemptions=" << k.sim().total_preemptions()
        << " interrupts=" << k.sim().total_interrupt_deliveries()
        << " nest_hwm=" << k.sim().interrupt_stack().high_water_mark()
        << " idle=" << k.sim().idle_time().to_string() << "\n";
    return out.str();
}

std::string render_state_journal(const TKernel& k, std::size_t n) {
    const auto& journal = k.sim().hash_table().journal();
    std::ostringstream out;
    out << "time          thread                 from         -> to\n";
    const std::size_t start = journal.size() > n ? journal.size() - n : 0;
    for (std::size_t i = start; i < journal.size(); ++i) {
        const auto& tr = journal[i];
        const sim::TThread* t = k.sim().hash_table().find(tr.tid);
        out << std::left << std::setw(14) << tr.at.to_string() << std::setw(22)
            << (t != nullptr ? t->name() : "<deleted>") << std::setw(13)
            << sim::to_string(tr.from) << "-> " << sim::to_string(tr.to) << "\n";
    }
    return out.str();
}

}  // namespace rtk::tkds
