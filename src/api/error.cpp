#include "api/error.hpp"

#include <cstdio>

namespace rtk::api {

using namespace rtk::tkernel;

std::string er_describe(ER er) {
    if (er > 0) {
        return std::to_string(er);
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s (%d)", rtk::er_to_string(er), er);
    return buf;
}

std::string ttw_to_string(UINT ttw) {
    static constexpr struct {
        UINT bit;
        const char* name;
    } bits[] = {
        {TTW_SLP, "TTW_SLP"},   {TTW_DLY, "TTW_DLY"},   {TTW_SEM, "TTW_SEM"},
        {TTW_FLG, "TTW_FLG"},   {TTW_MBX, "TTW_MBX"},   {TTW_MTX, "TTW_MTX"},
        {TTW_SMBF, "TTW_SMBF"}, {TTW_RMBF, "TTW_RMBF"}, {TTW_MPF, "TTW_MPF"},
        {TTW_MPL, "TTW_MPL"},
    };
    if (ttw == 0) {
        return "none";
    }
    std::string out;
    UINT rest = ttw;
    for (const auto& b : bits) {
        if ((rest & b.bit) != 0) {
            if (!out.empty()) {
                out += '|';
            }
            out += b.name;
            rest &= ~b.bit;
        }
    }
    if (rest != 0) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "0x%x", rest);
        if (!out.empty()) {
            out += '|';
        }
        out += buf;
    }
    return out;
}

const char* tts_to_string(UINT tts) {
    switch (tts) {
        case TTS_RUN: return "TTS_RUN";
        case TTS_RDY: return "TTS_RDY";
        case TTS_WAI: return "TTS_WAI";
        case TTS_SUS: return "TTS_SUS";
        case TTS_WAS: return "TTS_WAS";
        case TTS_DMT: return "TTS_DMT";
        default: return "TTS_???";
    }
}

std::string describe_task_state(const T_RTSK& ref) {
    std::string out = tts_to_string(ref.tskstat);
    if ((ref.tskstat & TTS_WAI) != 0) {
        out += " (";
        out += ttw_to_string(ref.tskwait);
        if (ref.wid != 0) {
            out += " id " + std::to_string(ref.wid);
        }
        out += ")";
    }
    return out;
}

}  // namespace rtk::api
