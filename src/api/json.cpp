#include "api/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rtk::api {

namespace {
const Json null_json{};
const std::string empty_string;
const std::vector<Json> no_items;
const std::map<std::string, Json> no_members;
}  // namespace

Json Json::boolean(bool b) {
    Json j;
    j.kind_ = Kind::boolean;
    j.bool_ = b;
    return j;
}

Json Json::number(std::uint64_t v) {
    Json j;
    j.kind_ = Kind::number;
    j.num_ = v;
    return j;
}

Json Json::number_signed(std::int64_t v) {
    Json j;
    j.kind_ = Kind::number;
    if (v < 0) {
        j.negative_ = true;
        j.num_ = static_cast<std::uint64_t>(-(v + 1)) + 1;  // avoids INT64_MIN UB
    } else {
        j.num_ = static_cast<std::uint64_t>(v);
    }
    return j;
}

Json Json::number_real(double v) {
    Json j;
    j.kind_ = Kind::real;
    j.real_ = v;
    return j;
}

Json Json::string(std::string s) {
    Json j;
    j.kind_ = Kind::string;
    j.str_ = std::move(s);
    return j;
}

Json Json::array() {
    Json j;
    j.kind_ = Kind::array;
    return j;
}

Json Json::object() {
    Json j;
    j.kind_ = Kind::object;
    return j;
}

bool Json::as_bool(bool fallback) const {
    return kind_ == Kind::boolean ? bool_ : fallback;
}

std::uint64_t Json::as_u64(std::uint64_t fallback) const {
    if (kind_ != Kind::number || negative_) {
        return fallback;
    }
    return num_;
}

std::int64_t Json::as_i64(std::int64_t fallback) const {
    if (kind_ != Kind::number) {
        return fallback;
    }
    if (negative_) {
        return -static_cast<std::int64_t>(num_ - 1) - 1;
    }
    return static_cast<std::int64_t>(num_);
}

double Json::as_real(double fallback) const {
    switch (kind_) {
        case Kind::real: return real_;
        case Kind::number:
            return negative_ ? -static_cast<double>(num_)
                             : static_cast<double>(num_);
        default: return fallback;
    }
}

const std::string& Json::as_string() const {
    return kind_ == Kind::string ? str_ : empty_string;
}

const Json& Json::at(const std::string& key) const {
    if (kind_ == Kind::object) {
        auto it = members_.find(key);
        if (it != members_.end()) {
            return it->second;
        }
    }
    return null_json;
}

bool Json::has(const std::string& key) const {
    return kind_ == Kind::object && members_.count(key) != 0;
}

const std::vector<Json>& Json::items() const {
    return kind_ == Kind::array ? items_ : no_items;
}

const std::map<std::string, Json>& Json::members() const {
    return kind_ == Kind::object ? members_ : no_members;
}

void Json::set(const std::string& key, Json v) {
    kind_ = Kind::object;
    members_[key] = std::move(v);
}

void Json::push(Json v) {
    kind_ = Kind::array;
    items_.push_back(std::move(v));
}

// ---- writer -----------------------------------------------------------------

namespace {
void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
    if (indent < 0) {
        return;
    }
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
    switch (kind_) {
        case Kind::null:
            out += "null";
            return;
        case Kind::boolean:
            out += bool_ ? "true" : "false";
            return;
        case Kind::number:
            if (negative_) {
                out += '-';
            }
            out += std::to_string(num_);
            return;
        case Kind::real:
            if (std::isfinite(real_)) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.6f", real_);
                out += buf;
            } else if (std::isnan(real_)) {
                out += "\"nan\"";
            } else {
                out += real_ > 0 ? "\"inf\"" : "\"-inf\"";
            }
            return;
        case Kind::string:
            append_escaped(out, str_);
            return;
        case Kind::array: {
            if (items_.empty()) {
                out += "[]";
                return;
            }
            out += '[';
            bool first = true;
            for (const Json& v : items_) {
                if (!first) {
                    out += ',';
                    if (indent < 0) {
                        out += ' ';
                    }
                }
                first = false;
                append_newline_indent(out, indent, depth + 1);
                v.dump_to(out, indent, depth + 1);
            }
            append_newline_indent(out, indent, depth);
            out += ']';
            return;
        }
        case Kind::object: {
            if (members_.empty()) {
                out += "{}";
                return;
            }
            out += '{';
            bool first = true;
            for (const auto& [k, v] : members_) {
                if (!first) {
                    out += ',';
                    if (indent < 0) {
                        out += ' ';
                    }
                }
                first = false;
                append_newline_indent(out, indent, depth + 1);
                append_escaped(out, k);
                out += ": ";
                v.dump_to(out, indent, depth + 1);
            }
            append_newline_indent(out, indent, depth);
            out += '}';
            return;
        }
    }
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

// ---- parser -----------------------------------------------------------------

namespace {

class Parser {
public:
    Parser(const std::string& text, std::string* error)
        : s_(text), error_(error) {}

    bool parse_document(Json& out) {
        skip_ws();
        if (!parse_value(out)) {
            return false;
        }
        skip_ws();
        if (pos_ != s_.size()) {
            return fail("trailing characters after document");
        }
        return true;
    }

private:
    bool fail(const std::string& what) {
        if (error_ != nullptr) {
            *error_ = what + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool literal(const char* word) {
        const std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0) {
            return fail(std::string("expected '") + word + "'");
        }
        pos_ += n;
        return true;
    }

    bool parse_value(Json& out) {
        if (pos_ >= s_.size()) {
            return fail("unexpected end of input");
        }
        switch (s_[pos_]) {
            case '{': return parse_object(out);
            case '[': return parse_array(out);
            case '"': {
                std::string str;
                if (!parse_string(str)) {
                    return false;
                }
                out = Json::string(std::move(str));
                return true;
            }
            case 't':
                out = Json::boolean(true);
                return literal("true");
            case 'f':
                out = Json::boolean(false);
                return literal("false");
            case 'n':
                out = Json{};
                return literal("null");
            default: return parse_number(out);
        }
    }

    bool parse_number(Json& out) {
        const std::size_t start = pos_;
        bool neg = false;
        if (s_[pos_] == '-') {
            neg = true;
            ++pos_;
        }
        if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            return fail("malformed number");
        }
        std::uint64_t mag = 0;
        while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
            const std::uint64_t digit = static_cast<std::uint64_t>(s_[pos_] - '0');
            if (mag > (UINT64_MAX - digit) / 10) {
                return fail("integer overflow");
            }
            mag = mag * 10 + digit;
            ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
            // Real literal (emitted by number_real for the bench/report
            // documents). Reparse the whole token with strtod; spec and
            // repro readers still see integers only, because as_u64 /
            // as_i64 fall back on a real value.
            while (pos_ < s_.size() &&
                   (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                    s_[pos_] == '+' || s_[pos_] == '-')) {
                ++pos_;
            }
            const std::string tok = s_.substr(start, pos_ - start);
            char* end = nullptr;
            const double v = std::strtod(tok.c_str(), &end);
            if (end == nullptr || *end != '\0') {
                return fail("malformed number");
            }
            out = Json::number_real(v);
            return true;
        }
        if (neg) {
            if (mag > (1ull << 63)) {
                return fail("integer overflow");
            }
            if (mag == 0) {
                out = Json::number(0);
            } else {
                // Magnitude-aware negation: valid down to INT64_MIN
                // (mag == 2^63) without signed overflow.
                out = Json::number_signed(-static_cast<std::int64_t>(mag - 1) - 1);
            }
        } else {
            out = Json::number(mag);
        }
        return true;
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= s_.size()) {
                    return fail("bad escape");
                }
                const char esc = s_[pos_ + 1];
                pos_ += 2;
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos_ + 4 > s_.size()) {
                            return fail("bad \\u escape");
                        }
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = s_[pos_ + static_cast<std::size_t>(i)];
                            code <<= 4;
                            if (h >= '0' && h <= '9') {
                                code |= static_cast<unsigned>(h - '0');
                            } else if (h >= 'a' && h <= 'f') {
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            } else if (h >= 'A' && h <= 'F') {
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            } else {
                                return fail("bad \\u escape");
                            }
                        }
                        pos_ += 4;
                        if (code > 0x7f) {
                            // Repro files are ASCII; keep the parser honest.
                            return fail("non-ASCII \\u escape unsupported");
                        }
                        out += static_cast<char>(code);
                        break;
                    }
                    default: return fail("unknown escape");
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool parse_array(Json& out) {
        out = Json::array();
        ++pos_;  // '['
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            Json v;
            if (!parse_value(v)) {
                return false;
            }
            out.push(std::move(v));
            skip_ws();
            if (pos_ >= s_.size()) {
                return fail("unterminated array");
            }
            if (s_[pos_] == ',') {
                ++pos_;
                skip_ws();
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parse_object(Json& out) {
        out = Json::object();
        ++pos_;  // '{'
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (pos_ >= s_.size() || s_[pos_] != '"') {
                return fail("expected object key");
            }
            std::string key;
            if (!parse_string(key)) {
                return false;
            }
            skip_ws();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                return fail("expected ':'");
            }
            ++pos_;
            skip_ws();
            Json v;
            if (!parse_value(v)) {
                return false;
            }
            out.set(key, std::move(v));
            skip_ws();
            if (pos_ >= s_.size()) {
                return fail("unterminated object");
            }
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string& s_;
    std::string* error_;
    std::size_t pos_ = 0;
};

}  // namespace

bool Json::parse(const std::string& text, Json& out, std::string* error) {
    return Parser(text, error).parse_document(out);
}

}  // namespace rtk::api
