#include "api/builder.hpp"

#include <unordered_set>
#include <utility>

namespace rtk::api {

using namespace rtk::tkernel;

// ---- SystemSpec -------------------------------------------------------------

std::size_t SystemSpec::object_count() const {
    return semaphores.size() + eventflags.size() + mutexes.size() +
           mailboxes.size() + msgbufs.size() + fixed_pools.size() +
           var_pools.size() + tasks.size() + cyclics.size() + alarms.size() +
           interrupts.size();
}

// ---- SystemHandles ----------------------------------------------------------

template <typename H>
H* SystemHandles::find_in(std::vector<H>& vec, Kind kind, const std::string& name) {
    const auto& names = names_[static_cast<std::size_t>(kind)];
    auto it = names.find(name);
    if (it == names.end() || it->second >= vec.size()) {
        return nullptr;
    }
    return &vec[it->second];
}

Task* SystemHandles::find_task(const std::string& name) {
    return find_in(tasks, Kind::task, name);
}
Semaphore* SystemHandles::find_semaphore(const std::string& name) {
    return find_in(semaphores, Kind::semaphore, name);
}
EventFlag* SystemHandles::find_eventflag(const std::string& name) {
    return find_in(eventflags, Kind::eventflag, name);
}
Mutex* SystemHandles::find_mutex(const std::string& name) {
    return find_in(mutexes, Kind::mutex, name);
}
Mailbox* SystemHandles::find_mailbox(const std::string& name) {
    return find_in(mailboxes, Kind::mailbox, name);
}
MsgBuf* SystemHandles::find_msgbuf(const std::string& name) {
    return find_in(msgbufs, Kind::msgbuf, name);
}
FixedPool* SystemHandles::find_fixed_pool(const std::string& name) {
    return find_in(fixed_pools, Kind::fixed_pool, name);
}
VarPool* SystemHandles::find_var_pool(const std::string& name) {
    return find_in(var_pools, Kind::var_pool, name);
}
Cyclic* SystemHandles::find_cyclic(const std::string& name) {
    return find_in(cyclics, Kind::cyclic, name);
}
Alarm* SystemHandles::find_alarm(const std::string& name) {
    return find_in(alarms, Kind::alarm, name);
}

void SystemHandles::release_all() {
    for (auto& h : semaphores) h.release();
    for (auto& h : eventflags) h.release();
    for (auto& h : mutexes) h.release();
    for (auto& h : mailboxes) h.release();
    for (auto& h : msgbufs) h.release();
    for (auto& h : fixed_pools) h.release();
    for (auto& h : var_pools) h.release();
    for (auto& h : tasks) h.release();
    for (auto& h : cyclics) h.release();
    for (auto& h : alarms) h.release();
}

// ---- instantiation ----------------------------------------------------------

Expected<SystemHandles> instantiate(System& sys, const SystemSpec& spec) {
    SystemHandles out;

    // One class at a time; failure returns the first error and the
    // already-created handles roll the partial graph back via RAII.
    const auto create_class = [&out](auto& dst, Kind kind, const auto& nodes,
                                     auto&& create) -> ER {
        auto& names = out.names_[static_cast<std::size_t>(kind)];
        dst.reserve(nodes.size());
        for (const auto& node : nodes) {
            // Names key the handle lookup: a duplicate would silently
            // shadow every later same-named object, so reject it.
            if (!names.emplace(node.def.name, dst.size()).second) {
                return E_PAR;
            }
            auto h = create(node);
            if (!h.ok()) {
                return h.er();
            }
            dst.push_back(std::move(h).value());
        }
        return E_OK;
    };

    ER er = create_class(out.semaphores, Kind::semaphore, spec.semaphores,
                         [&](const SemNode& n) { return sys.create_semaphore(n.def); });
    if (er == E_OK) {
        er = create_class(out.eventflags, Kind::eventflag, spec.eventflags,
                          [&](const FlgNode& n) { return sys.create_eventflag(n.def); });
    }
    if (er == E_OK) {
        er = create_class(out.mutexes, Kind::mutex, spec.mutexes,
                          [&](const MtxNode& n) { return sys.create_mutex(n.def); });
    }
    if (er == E_OK) {
        er = create_class(out.mailboxes, Kind::mailbox, spec.mailboxes,
                          [&](const MbxNode& n) { return sys.create_mailbox(n.def); });
    }
    if (er == E_OK) {
        er = create_class(out.msgbufs, Kind::msgbuf, spec.msgbufs,
                          [&](const MbfNode& n) { return sys.create_msgbuf(n.def); });
    }
    if (er == E_OK) {
        er = create_class(out.fixed_pools, Kind::fixed_pool, spec.fixed_pools,
                          [&](const MpfNode& n) { return sys.create_fixed_pool(n.def); });
    }
    if (er == E_OK) {
        er = create_class(out.var_pools, Kind::var_pool, spec.var_pools,
                          [&](const MplNode& n) { return sys.create_var_pool(n.def); });
    }
    if (er == E_OK) {
        er = create_class(out.tasks, Kind::task, spec.tasks, [&](const TaskNode& n) {
            auto t = sys.create_task(n.def);
            if (t.ok() && n.tex.texhdr) {
                if (const Status st = t.value().define_exception_handler(n.tex);
                    !st.ok()) {
                    return Expected<Task>::failure(st.er());
                }
            }
            return t;
        });
    }
    if (er == E_OK) {
        // Start autostart tasks only after the whole task set exists, so
        // early tasks can address late ones from their first instruction.
        for (std::size_t i = 0; i < spec.tasks.size() && er == E_OK; ++i) {
            if (spec.tasks[i].auto_start) {
                er = out.tasks[i].start(spec.tasks[i].stacd).er();
            }
        }
    }
    if (er == E_OK) {
        er = create_class(out.cyclics, Kind::cyclic, spec.cyclics,
                          [&](const CycNode& n) { return sys.create_cyclic(n.def); });
    }
    if (er == E_OK) {
        er = create_class(out.alarms, Kind::alarm, spec.alarms, [&](const AlmNode& n) {
            auto a = sys.create_alarm(n.def);
            if (a.ok() && n.start_after_ms > 0) {
                if (const Status st = a.value().start(n.start_after_ms); !st.ok()) {
                    return Expected<Alarm>::failure(st.er());
                }
            }
            return a;
        });
    }
    if (er == E_OK) {
        for (const IntNode& n : spec.interrupts) {
            T_DINT di;
            di.intpri = n.pri;
            di.inthdr = n.hdr;
            er = sys.os().tk_def_int(n.intno, di);
            if (er == E_OBJ && n.skip_if_claimed) {
                er = E_OK;
                continue;
            }
            if (er != E_OK) {
                break;
            }
            out.interrupts.push_back(n.intno);
        }
    }

    if (er != E_OK) {
        // Handle RAII rolls the object graph back; interrupt vectors
        // have no handle, so undo them here to honor the full-rollback
        // contract (a leftover handler would capture freed state).
        for (const UINT intno : out.interrupts) {
            (void)sys.os().tk_undef_int(intno);
        }
        out.interrupts.clear();
        return Expected<SystemHandles>::failure(er);
    }
    return out;
}

// ---- JSON round-trip (structural part only) ---------------------------------

namespace {

Json u(std::uint64_t v) { return Json::number(v); }
Json i(std::int64_t v) { return Json::number_signed(v); }
Json b(bool v) { return Json::boolean(v); }
Json s(const std::string& v) { return Json::string(v); }

}  // namespace

Json SystemSpec::to_json() const {
    Json j = Json::object();
    j.set("rtk_system_spec", u(1));

    Json jt = Json::array();
    for (const TaskNode& n : tasks) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("pri", i(n.def.priority));
        o.set("stack", u(n.def.stack_size));
        o.set("autostart", b(n.auto_start));
        o.set("stacd", i(n.stacd));
        o.set("tex", b(static_cast<bool>(n.tex.texhdr)));
        jt.push(std::move(o));
    }
    j.set("tasks", std::move(jt));

    Json js = Json::array();
    for (const SemNode& n : semaphores) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("initial", i(n.def.initial));
        o.set("max", i(n.def.max));
        o.set("tpri", b(n.def.priority_queue));
        o.set("cnt", b(n.def.count_order));
        js.push(std::move(o));
    }
    j.set("semaphores", std::move(js));

    Json jf = Json::array();
    for (const FlgNode& n : eventflags) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("initial", u(n.def.initial));
        o.set("tpri", b(n.def.priority_queue));
        o.set("wmul", b(n.def.multi_waiter));
        jf.push(std::move(o));
    }
    j.set("eventflags", std::move(jf));

    Json jm = Json::array();
    for (const MtxNode& n : mutexes) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("protocol", u(static_cast<std::uint8_t>(n.def.protocol)));
        o.set("ceiling", i(n.def.ceiling));
        jm.push(std::move(o));
    }
    j.set("mutexes", std::move(jm));

    Json jx = Json::array();
    for (const MbxNode& n : mailboxes) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("tpri", b(n.def.priority_queue));
        o.set("mpri", b(n.def.priority_messages));
        jx.push(std::move(o));
    }
    j.set("mailboxes", std::move(jx));

    Json jb = Json::array();
    for (const MbfNode& n : msgbufs) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("bufsz", i(n.def.buffer_size));
        o.set("maxmsz", i(n.def.max_message));
        o.set("tpri", b(n.def.priority_queue));
        jb.push(std::move(o));
    }
    j.set("msgbufs", std::move(jb));

    Json jp = Json::array();
    for (const MpfNode& n : fixed_pools) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("blocks", i(n.def.blocks));
        o.set("blksz", i(n.def.block_size));
        o.set("tpri", b(n.def.priority_queue));
        jp.push(std::move(o));
    }
    j.set("fixed_pools", std::move(jp));

    Json jv = Json::array();
    for (const MplNode& n : var_pools) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("size", i(n.def.size));
        o.set("tpri", b(n.def.priority_queue));
        jv.push(std::move(o));
    }
    j.set("var_pools", std::move(jv));

    Json jc = Json::array();
    for (const CycNode& n : cyclics) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("period", u(n.def.period_ms));
        o.set("phase", u(n.def.phase_ms));
        o.set("autostart", b(n.def.autostart));
        o.set("phs", b(n.def.honor_phase));
        jc.push(std::move(o));
    }
    j.set("cyclics", std::move(jc));

    Json ja = Json::array();
    for (const AlmNode& n : alarms) {
        Json o = Json::object();
        o.set("name", s(n.def.name));
        o.set("start_after", u(n.start_after_ms));
        ja.push(std::move(o));
    }
    j.set("alarms", std::move(ja));

    Json ji = Json::array();
    for (const IntNode& n : interrupts) {
        Json o = Json::object();
        o.set("intno", u(n.intno));
        o.set("pri", i(n.pri));
        o.set("if_free", b(n.skip_if_claimed));
        ji.push(std::move(o));
    }
    j.set("interrupts", std::move(ji));
    return j;
}

namespace {

bool fail(std::string* error, std::string what) {
    if (error != nullptr) {
        *error = std::move(what);
    }
    return false;
}

/// Loader-side duplicate/empty name rejection: instantiate() would fail
/// E_PAR on a duplicate anyway, but a from_json diagnostic names the
/// offender instead of surfacing as a runtime instantiation error.
template <typename Deque>
bool unique_names(const Deque& nodes, const char* cls, std::string* error) {
    std::unordered_set<std::string> seen;
    for (const auto& n : nodes) {
        if (n.def.name.empty()) {
            return fail(error, std::string("unnamed ") + cls);
        }
        if (!seen.insert(n.def.name).second) {
            return fail(error, std::string("duplicate ") + cls + " name '" +
                                   n.def.name + "'");
        }
    }
    return true;
}

}  // namespace

bool SystemSpec::from_json(const Json& j, SystemSpec& out, std::string* error) {
    if (!j.is_object() || !j.has("rtk_system_spec")) {
        return fail(error, "not a rtk_system_spec document");
    }
    out = SystemSpec{};

    for (const Json& o : j.at("tasks").items()) {
        TaskNode n;
        n.def.name = o.at("name").as_string();
        const std::int64_t pri = o.at("pri").as_i64(1);
        if (pri < min_priority || pri > max_priority) {
            return fail(error, "task '" + n.def.name + "' priority " +
                                   std::to_string(pri) + " out of range [" +
                                   std::to_string(min_priority) + ", " +
                                   std::to_string(max_priority) + "]");
        }
        n.def.priority = static_cast<PRI>(pri);
        n.def.stack_size = static_cast<std::size_t>(o.at("stack").as_u64(4096));
        n.auto_start = o.at("autostart").as_bool();
        n.stacd = static_cast<INT>(o.at("stacd").as_i64());
        if (o.at("tex").as_bool()) {
            // Structural placeholder; the real handler is code and must
            // be reattached by the caller.
            n.tex.texhdr = [](UINT) {};
        }
        out.tasks.push_back(std::move(n));
    }
    for (const Json& o : j.at("semaphores").items()) {
        SemNode n;
        n.def.name = o.at("name").as_string();
        n.def.initial = static_cast<INT>(o.at("initial").as_i64());
        n.def.max = static_cast<INT>(o.at("max").as_i64(65535));
        n.def.priority_queue = o.at("tpri").as_bool();
        n.def.count_order = o.at("cnt").as_bool();
        out.semaphores.push_back(std::move(n));
    }
    for (const Json& o : j.at("eventflags").items()) {
        FlgNode n;
        n.def.name = o.at("name").as_string();
        n.def.initial = static_cast<UINT>(o.at("initial").as_u64());
        n.def.priority_queue = o.at("tpri").as_bool();
        n.def.multi_waiter = o.at("wmul").as_bool(true);
        out.eventflags.push_back(std::move(n));
    }
    for (const Json& o : j.at("mutexes").items()) {
        MtxNode n;
        n.def.name = o.at("name").as_string();
        const std::uint64_t proto = o.at("protocol").as_u64();
        if (proto > 3) {
            return fail(error, "mutex protocol out of range");
        }
        n.def.protocol = static_cast<MutexDef::Protocol>(proto);
        const std::int64_t ceil = o.at("ceiling").as_i64(min_priority);
        if (ceil < min_priority || ceil > max_priority) {
            return fail(error, "mutex '" + n.def.name + "' ceiling " +
                                   std::to_string(ceil) + " out of range [" +
                                   std::to_string(min_priority) + ", " +
                                   std::to_string(max_priority) + "]");
        }
        n.def.ceiling = static_cast<PRI>(ceil);
        out.mutexes.push_back(std::move(n));
    }
    for (const Json& o : j.at("mailboxes").items()) {
        MbxNode n;
        n.def.name = o.at("name").as_string();
        n.def.priority_queue = o.at("tpri").as_bool();
        n.def.priority_messages = o.at("mpri").as_bool();
        out.mailboxes.push_back(std::move(n));
    }
    for (const Json& o : j.at("msgbufs").items()) {
        MbfNode n;
        n.def.name = o.at("name").as_string();
        n.def.buffer_size = static_cast<INT>(o.at("bufsz").as_i64(1024));
        n.def.max_message = static_cast<INT>(o.at("maxmsz").as_i64(128));
        n.def.priority_queue = o.at("tpri").as_bool();
        out.msgbufs.push_back(std::move(n));
    }
    for (const Json& o : j.at("fixed_pools").items()) {
        MpfNode n;
        n.def.name = o.at("name").as_string();
        n.def.blocks = static_cast<INT>(o.at("blocks").as_i64(8));
        n.def.block_size = static_cast<INT>(o.at("blksz").as_i64(64));
        n.def.priority_queue = o.at("tpri").as_bool();
        out.fixed_pools.push_back(std::move(n));
    }
    for (const Json& o : j.at("var_pools").items()) {
        MplNode n;
        n.def.name = o.at("name").as_string();
        n.def.size = static_cast<INT>(o.at("size").as_i64(4096));
        n.def.priority_queue = o.at("tpri").as_bool();
        out.var_pools.push_back(std::move(n));
    }
    for (const Json& o : j.at("cyclics").items()) {
        CycNode n;
        n.def.name = o.at("name").as_string();
        n.def.period_ms = o.at("period").as_u64(1);
        n.def.phase_ms = o.at("phase").as_u64();
        n.def.autostart = o.at("autostart").as_bool(true);
        n.def.honor_phase = o.at("phs").as_bool();
        out.cyclics.push_back(std::move(n));
    }
    for (const Json& o : j.at("alarms").items()) {
        AlmNode n;
        n.def.name = o.at("name").as_string();
        n.start_after_ms = o.at("start_after").as_u64();
        out.alarms.push_back(std::move(n));
    }
    for (const Json& o : j.at("interrupts").items()) {
        IntNode n;
        n.intno = static_cast<UINT>(o.at("intno").as_u64());
        n.pri = static_cast<PRI>(o.at("pri").as_i64(1));
        n.skip_if_claimed = o.at("if_free").as_bool();
        out.interrupts.push_back(std::move(n));
    }
    if (!unique_names(out.tasks, "task", error) ||
        !unique_names(out.semaphores, "semaphore", error) ||
        !unique_names(out.eventflags, "eventflag", error) ||
        !unique_names(out.mutexes, "mutex", error) ||
        !unique_names(out.mailboxes, "mailbox", error) ||
        !unique_names(out.msgbufs, "msgbuf", error) ||
        !unique_names(out.fixed_pools, "fixed_pool", error) ||
        !unique_names(out.var_pools, "var_pool", error) ||
        !unique_names(out.cyclics, "cyclic", error) ||
        !unique_names(out.alarms, "alarm", error)) {
        return false;
    }
    {
        std::unordered_set<std::uint64_t> vecs;
        for (const IntNode& n : out.interrupts) {
            if (!vecs.insert(n.intno).second) {
                return fail(error, "duplicate interrupt vector " +
                                       std::to_string(n.intno));
            }
        }
    }
    return true;
}

// ---- SystemBuilder ----------------------------------------------------------

TaskNode& SystemBuilder::task(std::string name) {
    TaskNode n;
    n.def.name = std::move(name);
    spec_.tasks.push_back(std::move(n));
    return spec_.tasks.back();
}
SemNode& SystemBuilder::semaphore(std::string name) {
    SemNode n;
    n.def.name = std::move(name);
    spec_.semaphores.push_back(std::move(n));
    return spec_.semaphores.back();
}
FlgNode& SystemBuilder::eventflag(std::string name) {
    FlgNode n;
    n.def.name = std::move(name);
    spec_.eventflags.push_back(std::move(n));
    return spec_.eventflags.back();
}
MtxNode& SystemBuilder::mutex(std::string name) {
    MtxNode n;
    n.def.name = std::move(name);
    spec_.mutexes.push_back(std::move(n));
    return spec_.mutexes.back();
}
MbxNode& SystemBuilder::mailbox(std::string name) {
    MbxNode n;
    n.def.name = std::move(name);
    spec_.mailboxes.push_back(std::move(n));
    return spec_.mailboxes.back();
}
MbfNode& SystemBuilder::msgbuf(std::string name) {
    MbfNode n;
    n.def.name = std::move(name);
    spec_.msgbufs.push_back(std::move(n));
    return spec_.msgbufs.back();
}
MpfNode& SystemBuilder::fixed_pool(std::string name) {
    MpfNode n;
    n.def.name = std::move(name);
    spec_.fixed_pools.push_back(std::move(n));
    return spec_.fixed_pools.back();
}
MplNode& SystemBuilder::var_pool(std::string name) {
    MplNode n;
    n.def.name = std::move(name);
    spec_.var_pools.push_back(std::move(n));
    return spec_.var_pools.back();
}
CycNode& SystemBuilder::cyclic(std::string name) {
    CycNode n;
    n.def.name = std::move(name);
    spec_.cyclics.push_back(std::move(n));
    return spec_.cyclics.back();
}
AlmNode& SystemBuilder::alarm(std::string name) {
    AlmNode n;
    n.def.name = std::move(name);
    spec_.alarms.push_back(std::move(n));
    return spec_.alarms.back();
}
IntNode& SystemBuilder::interrupt(UINT intno) {
    IntNode n;
    n.intno = intno;
    spec_.interrupts.push_back(std::move(n));
    return spec_.interrupts.back();
}

}  // namespace rtk::api
