// Error-code and wait-cause pretty-printers of the rtk::api facade.
//
// The paper-faithful surface (tk_types.hpp) reports everything as signed
// integers; diagnostics built on it tend to print those integers raw.
// This header is the one place that turns kernel codes into names:
// `rtk::er_to_string` for ER codes, plus the TTW_*/TTS_* decoders the
// harness and oracle use when describing a blocked task.
#pragma once

#include <string>

#include "tkernel/tk_types.hpp"

namespace rtk {

/// Mnemonic of a T-Kernel error code ("E_TMOUT", "E_OK", ...).
inline const char* er_to_string(tkernel::ER er) { return tkernel::er_str(er); }

}  // namespace rtk

namespace rtk::api {

/// Mnemonic plus numeric value: "E_TMOUT (-50)"; positive service-call
/// results render as the bare number.
std::string er_describe(tkernel::ER er);

/// Decode a TTW_* wait-factor mask ("TTW_SEM", "TTW_SLP|TTW_DLY",
/// "none" for 0). Unknown bits are kept as hex so nothing is silently
/// dropped.
std::string ttw_to_string(tkernel::UINT ttw);

/// Name of a TTS_* task state as reported by tk_ref_tsk ("TTS_WAS", ...).
const char* tts_to_string(tkernel::UINT tts);

/// One-line human description of a task's scheduling state:
/// "TTS_WAI (TTW_SEM id 3)" -- the harness failure-diagnostic format.
std::string describe_task_state(const tkernel::T_RTSK& ref);

}  // namespace rtk::api
