#include "api/system.hpp"

#include <utility>

namespace rtk::api {

using namespace rtk::tkernel;

// ---- creation ---------------------------------------------------------------

namespace {

ATR queue_atr(bool priority_queue) { return priority_queue ? TA_TPRI : TA_TFIFO; }

}  // namespace

Expected<Task> System::create_task(const TaskDef& def) {
    T_CTSK pk;
    pk.name = def.name;
    pk.itskpri = def.priority;
    pk.stksz = def.stack_size;
    pk.exinf = def.exinf;
    if (def.entry) {
        pk.task = def.entry;
    } else if (def.body) {
        auto body = def.body;
        pk.task = [body = std::move(body)](INT, void*) { body(); };
    } else {
        return Expected<Task>::failure(E_PAR);  // a task needs an entry
    }
    const ID id = os_->tk_cre_tsk(pk);
    if (id < 0) {
        return Expected<Task>::failure(id);
    }
    return Task(this, Kind::task, mint(Kind::task, id), /*owned=*/true);
}

Expected<Semaphore> System::create_semaphore(const SemaphoreDef& def) {
    T_CSEM pk;
    pk.name = def.name;
    pk.isemcnt = def.initial;
    pk.maxsem = def.max;
    pk.sematr = queue_atr(def.priority_queue) | (def.count_order ? TA_CNT : TA_FIRST);
    const ID id = os_->tk_cre_sem(pk);
    if (id < 0) {
        return Expected<Semaphore>::failure(id);
    }
    return Semaphore(this, Kind::semaphore, mint(Kind::semaphore, id), true);
}

Expected<EventFlag> System::create_eventflag(const EventFlagDef& def) {
    T_CFLG pk;
    pk.name = def.name;
    pk.iflgptn = def.initial;
    pk.flgatr = queue_atr(def.priority_queue) | (def.multi_waiter ? TA_WMUL : TA_WSGL);
    const ID id = os_->tk_cre_flg(pk);
    if (id < 0) {
        return Expected<EventFlag>::failure(id);
    }
    return EventFlag(this, Kind::eventflag, mint(Kind::eventflag, id), true);
}

Expected<Mutex> System::create_mutex(const MutexDef& def) {
    T_CMTX pk;
    pk.name = def.name;
    switch (def.protocol) {
        case MutexDef::Protocol::fifo: pk.mtxatr = TA_TFIFO; break;
        case MutexDef::Protocol::priority: pk.mtxatr = TA_TPRI; break;
        case MutexDef::Protocol::inherit: pk.mtxatr = TA_INHERIT; break;
        case MutexDef::Protocol::ceiling: pk.mtxatr = TA_CEILING; break;
    }
    pk.ceilpri = def.ceiling;
    const ID id = os_->tk_cre_mtx(pk);
    if (id < 0) {
        return Expected<Mutex>::failure(id);
    }
    return Mutex(this, Kind::mutex, mint(Kind::mutex, id), true);
}

Expected<Mailbox> System::create_mailbox(const MailboxDef& def) {
    T_CMBX pk;
    pk.name = def.name;
    pk.mbxatr = queue_atr(def.priority_queue) |
                (def.priority_messages ? TA_MPRI : TA_MFIFO);
    const ID id = os_->tk_cre_mbx(pk);
    if (id < 0) {
        return Expected<Mailbox>::failure(id);
    }
    return Mailbox(this, Kind::mailbox, mint(Kind::mailbox, id), true);
}

Expected<MsgBuf> System::create_msgbuf(const MsgBufDef& def) {
    T_CMBF pk;
    pk.name = def.name;
    pk.bufsz = def.buffer_size;
    pk.maxmsz = def.max_message;
    pk.mbfatr = queue_atr(def.priority_queue);
    const ID id = os_->tk_cre_mbf(pk);
    if (id < 0) {
        return Expected<MsgBuf>::failure(id);
    }
    return MsgBuf(this, Kind::msgbuf, mint(Kind::msgbuf, id), true);
}

Expected<FixedPool> System::create_fixed_pool(const FixedPoolDef& def) {
    T_CMPF pk;
    pk.name = def.name;
    pk.mpfcnt = def.blocks;
    pk.blfsz = def.block_size;
    pk.mpfatr = queue_atr(def.priority_queue);
    const ID id = os_->tk_cre_mpf(pk);
    if (id < 0) {
        return Expected<FixedPool>::failure(id);
    }
    return FixedPool(this, Kind::fixed_pool, mint(Kind::fixed_pool, id), true);
}

Expected<VarPool> System::create_var_pool(const VarPoolDef& def) {
    T_CMPL pk;
    pk.name = def.name;
    pk.mplsz = def.size;
    pk.mplatr = queue_atr(def.priority_queue);
    const ID id = os_->tk_cre_mpl(pk);
    if (id < 0) {
        return Expected<VarPool>::failure(id);
    }
    return VarPool(this, Kind::var_pool, mint(Kind::var_pool, id), true);
}

Expected<Cyclic> System::create_cyclic(const CyclicDef& def) {
    T_CCYC pk;
    pk.name = def.name;
    pk.cychdr = def.handler;
    pk.cyctim = def.period_ms;
    pk.cycphs = def.phase_ms;
    pk.cycatr = TA_HLNG | (def.autostart ? TA_STA : 0u) |
                (def.honor_phase ? TA_PHS : 0u);
    const ID id = os_->tk_cre_cyc(pk);
    if (id < 0) {
        return Expected<Cyclic>::failure(id);
    }
    return Cyclic(this, Kind::cyclic, mint(Kind::cyclic, id), true);
}

Expected<Alarm> System::create_alarm(const AlarmDef& def) {
    T_CALM pk;
    pk.name = def.name;
    pk.almhdr = def.handler;
    const ID id = os_->tk_cre_alm(pk);
    if (id < 0) {
        return Expected<Alarm>::failure(id);
    }
    return Alarm(this, Kind::alarm, mint(Kind::alarm, id), true);
}

// ---- raw-ID interop ---------------------------------------------------------

Expected<Task> System::adopt_task(ID id) {
    if (id <= 0) {
        return Expected<Task>::failure(E_ID);
    }
    if (os_->tasks().find(id) == nullptr) {
        return Expected<Task>::failure(E_NOEXS);
    }
    return Task(this, Kind::task, mint(Kind::task, id), /*owned=*/false);
}
Expected<Semaphore> System::adopt_semaphore(ID id) {
    if (id <= 0) {
        return Expected<Semaphore>::failure(E_ID);
    }
    if (os_->semaphores().find(id) == nullptr) {
        return Expected<Semaphore>::failure(E_NOEXS);
    }
    return Semaphore(this, Kind::semaphore, mint(Kind::semaphore, id), false);
}
Expected<EventFlag> System::adopt_eventflag(ID id) {
    if (id <= 0) {
        return Expected<EventFlag>::failure(E_ID);
    }
    if (os_->eventflags().find(id) == nullptr) {
        return Expected<EventFlag>::failure(E_NOEXS);
    }
    return EventFlag(this, Kind::eventflag, mint(Kind::eventflag, id), false);
}
Expected<Mutex> System::adopt_mutex(ID id) {
    if (id <= 0) {
        return Expected<Mutex>::failure(E_ID);
    }
    if (os_->mutexes().find(id) == nullptr) {
        return Expected<Mutex>::failure(E_NOEXS);
    }
    return Mutex(this, Kind::mutex, mint(Kind::mutex, id), false);
}
Expected<Mailbox> System::adopt_mailbox(ID id) {
    if (id <= 0) {
        return Expected<Mailbox>::failure(E_ID);
    }
    if (os_->mailboxes().find(id) == nullptr) {
        return Expected<Mailbox>::failure(E_NOEXS);
    }
    return Mailbox(this, Kind::mailbox, mint(Kind::mailbox, id), false);
}
Expected<MsgBuf> System::adopt_msgbuf(ID id) {
    if (id <= 0) {
        return Expected<MsgBuf>::failure(E_ID);
    }
    if (os_->message_buffers().find(id) == nullptr) {
        return Expected<MsgBuf>::failure(E_NOEXS);
    }
    return MsgBuf(this, Kind::msgbuf, mint(Kind::msgbuf, id), false);
}
Expected<FixedPool> System::adopt_fixed_pool(ID id) {
    if (id <= 0) {
        return Expected<FixedPool>::failure(E_ID);
    }
    if (os_->fixed_pools().find(id) == nullptr) {
        return Expected<FixedPool>::failure(E_NOEXS);
    }
    return FixedPool(this, Kind::fixed_pool, mint(Kind::fixed_pool, id), false);
}
Expected<VarPool> System::adopt_var_pool(ID id) {
    if (id <= 0) {
        return Expected<VarPool>::failure(E_ID);
    }
    if (os_->variable_pools().find(id) == nullptr) {
        return Expected<VarPool>::failure(E_NOEXS);
    }
    return VarPool(this, Kind::var_pool, mint(Kind::var_pool, id), false);
}
Expected<Cyclic> System::adopt_cyclic(ID id) {
    if (id <= 0) {
        return Expected<Cyclic>::failure(E_ID);
    }
    if (os_->cyclics().find(id) == nullptr) {
        return Expected<Cyclic>::failure(E_NOEXS);
    }
    return Cyclic(this, Kind::cyclic, mint(Kind::cyclic, id), false);
}
Expected<Alarm> System::adopt_alarm(ID id) {
    if (id <= 0) {
        return Expected<Alarm>::failure(E_ID);
    }
    if (os_->alarms().find(id) == nullptr) {
        return Expected<Alarm>::failure(E_NOEXS);
    }
    return Alarm(this, Kind::alarm, mint(Kind::alarm, id), false);
}

// ---- handle bookkeeping -----------------------------------------------------

RawHandle System::mint(Kind kind, ID id) {
    Table& t = table(kind);
    const auto idx = static_cast<std::size_t>(id) - 1;
    if (idx >= t.gens.size()) {
        t.gens.resize(idx + 1, 0);
    }
    if (t.gens[idx] == 0) {
        ++t.live;  // re-stamping a live id (adopt) keeps the count
    }
    const std::uint32_t gen = t.next_gen++;
    t.gens[idx] = gen;
    return RawHandle{id, gen};
}

void System::retire(Kind kind, RawHandle h) {
    Table& t = table(kind);
    if (t.gen_of(h.id) == h.gen) {
        t.gens[static_cast<std::size_t>(h.id) - 1] = 0;
        --t.live;
    }
}

bool System::alive(Kind kind, RawHandle h) const {
    if (h.id <= 0) {
        return false;
    }
    const Table& t = table(kind);
    return t.gen_of(h.id) == h.gen && h.gen != 0;
}

Status System::validate(Kind kind, RawHandle h) const {
    if (h.id <= 0) {
        return Status::from_er(E_ID);
    }
    return alive(kind, h) ? Status() : Status::from_er(E_NOEXS);
}

std::size_t System::live_count(Kind kind) const { return table(kind).live; }

Status System::destroy(Kind kind, RawHandle h) {
    if (const Status st = validate(kind, h); !st.ok()) {
        return st;
    }
    // Retire the generation first: even if the kernel delete fails (e.g.
    // the object was deleted behind the facade's back) the handle must
    // not keep addressing the ID.
    retire(kind, h);
    return delete_in_kernel(kind, h.id);
}

Status System::delete_in_kernel(Kind kind, ID id) {
    switch (kind) {
        case Kind::task: {
            // A task must be DORMANT to be deleted; terminate a live one
            // first (self-termination is E_ILUSE and simply fails).
            T_RTSK r{};
            if (os_->tk_ref_tsk(id, &r) == E_OK && (r.tskstat & TTS_DMT) == 0) {
                if (const ER er = os_->tk_ter_tsk(id); er < 0) {
                    return Status::from_er(er);
                }
            }
            return Status::from_er(os_->tk_del_tsk(id));
        }
        case Kind::semaphore: return Status::from_er(os_->tk_del_sem(id));
        case Kind::eventflag: return Status::from_er(os_->tk_del_flg(id));
        case Kind::mutex: return Status::from_er(os_->tk_del_mtx(id));
        case Kind::mailbox: return Status::from_er(os_->tk_del_mbx(id));
        case Kind::msgbuf: return Status::from_er(os_->tk_del_mbf(id));
        case Kind::fixed_pool: return Status::from_er(os_->tk_del_mpf(id));
        case Kind::var_pool: return Status::from_er(os_->tk_del_mpl(id));
        case Kind::cyclic: return Status::from_er(os_->tk_del_cyc(id));
        case Kind::alarm: return Status::from_er(os_->tk_del_alm(id));
    }
    return Status::from_er(E_PAR);
}

}  // namespace rtk::api
