// api::System -- the modern front door to one RTK-Spec TRON kernel
// instance.
//
// The paper-level tk_*/SIM_* surface underneath stays verbatim (raw IDs,
// signed ER codes); System wraps one tkernel::TKernel with the facade's
// three guarantees:
//
//   1. typed, generation-counted handles (api/handles.hpp) -- stale use
//      is detected here, before the kernel ever sees the raw ID;
//   2. [[nodiscard]] Status / Expected<T> results for every service;
//   3. creation through declarative *Def packets with safe defaults
//      (lowered onto the spec-faithful T_C* packets).
//
// System is a non-owning view: construct it over Simulation::os() (or any
// TKernel) and keep it alive as long as handles minted from it are used.
// One System per kernel instance; like the kernel itself it is not
// thread-safe across host threads.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/handles.hpp"
#include "tkernel/kernel.hpp"

namespace rtk::api {

// ---- declarative creation packets -------------------------------------------

struct TaskDef {
    std::string name = "task";
    tkernel::PRI priority = 1;
    /// Full spec-level entry (stacd, exinf) ...
    tkernel::TaskEntry entry{};
    /// ... or the common case: a plain body (used when `entry` is empty).
    std::function<void()> body{};
    std::size_t stack_size = 4096;
    void* exinf = nullptr;
};

struct SemaphoreDef {
    std::string name = "sem";
    tkernel::INT initial = 0;
    tkernel::INT max = 65535;
    bool priority_queue = false;  ///< TA_TPRI wait queue
    bool count_order = false;     ///< TA_CNT instead of TA_FIRST
};

struct EventFlagDef {
    std::string name = "flg";
    tkernel::UINT initial = 0;
    bool priority_queue = false;
    bool multi_waiter = true;  ///< TA_WMUL
};

struct MutexDef {
    enum class Protocol : std::uint8_t { fifo, priority, inherit, ceiling };
    std::string name = "mtx";
    Protocol protocol = Protocol::fifo;
    tkernel::PRI ceiling = tkernel::min_priority;
};

struct MailboxDef {
    std::string name = "mbx";
    bool priority_queue = false;
    bool priority_messages = false;  ///< TA_MPRI
};

struct MsgBufDef {
    std::string name = "mbf";
    tkernel::INT buffer_size = 1024;  ///< 0 => fully synchronous
    tkernel::INT max_message = 128;
    bool priority_queue = false;
};

struct FixedPoolDef {
    std::string name = "mpf";
    tkernel::INT blocks = 8;
    tkernel::INT block_size = 64;
    bool priority_queue = false;
};

struct VarPoolDef {
    std::string name = "mpl";
    tkernel::INT size = 4096;
    bool priority_queue = false;
};

struct CyclicDef {
    std::string name = "cyc";
    tkernel::HandlerEntry handler{};
    tkernel::RELTIM period_ms = 1;
    tkernel::RELTIM phase_ms = 0;
    bool autostart = true;    ///< TA_STA
    bool honor_phase = false; ///< TA_PHS
};

struct AlarmDef {
    std::string name = "alm";
    tkernel::HandlerEntry handler{};
};

// ---- the facade -------------------------------------------------------------

class System {
public:
    explicit System(tkernel::TKernel& os) : os_(&os) {}
    System(const System&) = delete;
    System& operator=(const System&) = delete;

    /// The wrapped kernel, for paper-level calls the facade does not cover.
    tkernel::TKernel& os() { return *os_; }
    const tkernel::TKernel& os() const { return *os_; }

    // ---- creation (E_PAR and friends surface as failed Expected) ----
    Expected<Task> create_task(const TaskDef& def);
    Expected<Semaphore> create_semaphore(const SemaphoreDef& def = {});
    Expected<EventFlag> create_eventflag(const EventFlagDef& def = {});
    Expected<Mutex> create_mutex(const MutexDef& def = {});
    Expected<Mailbox> create_mailbox(const MailboxDef& def = {});
    Expected<MsgBuf> create_msgbuf(const MsgBufDef& def = {});
    Expected<FixedPool> create_fixed_pool(const FixedPoolDef& def = {});
    Expected<VarPool> create_var_pool(const VarPoolDef& def = {});
    Expected<Cyclic> create_cyclic(const CyclicDef& def);
    Expected<Alarm> create_alarm(const AlarmDef& def);

    // ---- raw-ID interop ----
    /// Wrap an ID created through the paper-level tk_cre_* surface in a
    /// typed, non-owning handle (E_NOEXS when no such object). Adopting
    /// re-stamps the ID with a fresh generation: handles minted earlier
    /// for the same ID become stale (E_NOEXS at the facade) and lose
    /// their RAII effect -- the newest binding wins.
    Expected<Task> adopt_task(tkernel::ID id);
    Expected<Semaphore> adopt_semaphore(tkernel::ID id);
    Expected<EventFlag> adopt_eventflag(tkernel::ID id);
    Expected<Mutex> adopt_mutex(tkernel::ID id);
    Expected<Mailbox> adopt_mailbox(tkernel::ID id);
    Expected<MsgBuf> adopt_msgbuf(tkernel::ID id);
    Expected<FixedPool> adopt_fixed_pool(tkernel::ID id);
    Expected<VarPool> adopt_var_pool(tkernel::ID id);
    Expected<Cyclic> adopt_cyclic(tkernel::ID id);
    Expected<Alarm> adopt_alarm(tkernel::ID id);

    // ---- handle bookkeeping ----
    /// Facade liveness: the (id, gen) pair was minted here and not yet
    /// destroyed through the facade.
    bool alive(Kind kind, RawHandle h) const;
    /// E_ID for a null handle, E_NOEXS for a stale one, success otherwise.
    Status validate(Kind kind, RawHandle h) const;
    /// Live facade-minted objects of one class.
    std::size_t live_count(Kind kind) const;

    /// Checked delete: validates, deletes the kernel object (terminating
    /// a live task first) and retires the generation.
    Status destroy(Kind kind, RawHandle h);

private:
    friend class HandleBase;

    /// Unchecked delete path used by RAII teardown and destroy().
    Status delete_in_kernel(Kind kind, tkernel::ID id);
    RawHandle mint(Kind kind, tkernel::ID id);
    void retire(Kind kind, RawHandle h);

    /// Per-kind generation table, indexed densely by kernel ID (slot
    /// id-1, 0 = no live facade binding). The kernel's registries hand
    /// out dense recycled ids, so the vector stays as small as the
    /// class's high-water mark and validate() is a flat indexed load.
    struct Table {
        std::vector<std::uint32_t> gens;
        std::uint32_t next_gen = 1;
        std::size_t live = 0;

        std::uint32_t gen_of(tkernel::ID id) const {
            const auto idx = static_cast<std::size_t>(id) - 1;
            return (id >= 1 && idx < gens.size()) ? gens[idx] : 0;
        }
    };
    Table& table(Kind kind) { return tables_[static_cast<std::size_t>(kind)]; }
    const Table& table(Kind kind) const {
        return tables_[static_cast<std::size_t>(kind)];
    }

    tkernel::TKernel* os_;
    std::array<Table, kind_count> tables_;
};

}  // namespace rtk::api
