// Typed, generation-counted handles over the µ-ITRON object classes --
// the value types of the rtk::api facade.
//
// A handle pairs a raw kernel ID with the facade generation stamped on it
// at creation time. Every call validates the stamp against the owning
// api::System first, so a stale handle (object deleted, ID possibly
// reused) fails fast with E_NOEXS at the facade instead of operating on
// the wrong object; a default-constructed (null) handle fails with E_ID.
//
// Handles are move-only RAII owners: destroying an owned handle deletes
// the kernel object (terminating a live task first). `release()` is the
// escape hatch -- it relinquishes ownership to the kernel's registries
// (which reclaim everything at simulation teardown) while the handle
// stays usable for calls.
#pragma once

#include <cstdint>

#include "api/expected.hpp"
#include "tkernel/tk_types.hpp"

namespace rtk::tkernel {
class TKernel;
}

namespace rtk::api {

class System;

/// Object classes addressable through the facade.
enum class Kind : std::uint8_t {
    task,
    semaphore,
    eventflag,
    mutex,
    mailbox,
    msgbuf,
    fixed_pool,
    var_pool,
    cyclic,
    alarm,
};
inline constexpr std::size_t kind_count = 10;
const char* to_string(Kind k);

/// The wire format of a handle: kernel ID plus facade generation.
struct RawHandle {
    tkernel::ID id = 0;
    std::uint32_t gen = 0;
};

class HandleBase {
public:
    HandleBase() = default;
    HandleBase(HandleBase&& other) noexcept;
    HandleBase& operator=(HandleBase&& other) noexcept;
    ~HandleBase();
    HandleBase(const HandleBase&) = delete;
    HandleBase& operator=(const HandleBase&) = delete;

    /// Raw kernel ID for interop with the tk_* surface (0 when null).
    tkernel::ID id() const { return raw_.id; }
    std::uint32_t generation() const { return raw_.gen; }
    Kind kind() const { return kind_; }
    bool owns() const { return owned_; }

    /// True when the handle refers to a live facade object.
    bool valid() const;
    explicit operator bool() const { return valid(); }

    /// Relinquish RAII ownership (the object now lives until deleted
    /// explicitly or reclaimed at kernel teardown); returns the raw ID.
    /// The handle remains usable for calls.
    tkernel::ID release();

    /// Delete the kernel object now. The handle becomes null; stale
    /// copies of the same RawHandle fail E_NOEXS from here on.
    Status destroy();

protected:
    HandleBase(System* sys, Kind kind, RawHandle raw, bool owned)
        : sys_(sys), kind_(kind), raw_(raw), owned_(owned) {}

    /// Facade validation: E_ID for a null handle, E_NOEXS for a stale
    /// generation, success otherwise.
    Status pre() const;
    tkernel::TKernel& os() const;

    System* sys_ = nullptr;
    Kind kind_ = Kind::task;
    RawHandle raw_{};
    bool owned_ = false;

    friend class System;
};

// ---- object-class handles ---------------------------------------------------

class Task final : public HandleBase {
public:
    Task() = default;
    Status start(tkernel::INT stacd = 0);
    Status terminate();
    Status change_priority(tkernel::PRI pri);
    Status rotate_ready_queue() const;  ///< tk_rot_rdq at this task's priority
    Status wakeup();
    Expected<tkernel::INT> cancel_wakeups();
    Status release_wait();
    Status suspend();
    Status resume();
    Status force_resume();
    Status define_exception_handler(const tkernel::T_DTEX& pk);
    Status raise_exception(tkernel::UINT texptn);
    Expected<tkernel::T_RTSK> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class Semaphore final : public HandleBase {
public:
    Semaphore() = default;
    Status signal(tkernel::INT cnt = 1);
    Status wait(tkernel::INT cnt = 1, tkernel::TMO tmout = tkernel::TMO_FEVR);
    Expected<tkernel::T_RSEM> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class EventFlag final : public HandleBase {
public:
    EventFlag() = default;
    Status set(tkernel::UINT setptn);
    Status clear(tkernel::UINT clrptn);  ///< pattern &= clrptn
    /// Returns the release-time pattern.
    Expected<tkernel::UINT> wait(tkernel::UINT waiptn, tkernel::UINT wfmode,
                                 tkernel::TMO tmout = tkernel::TMO_FEVR);
    Expected<tkernel::T_RFLG> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class Mutex final : public HandleBase {
public:
    Mutex() = default;
    Status lock(tkernel::TMO tmout = tkernel::TMO_FEVR);
    Status unlock();
    Expected<tkernel::T_RMTX> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class Mailbox final : public HandleBase {
public:
    Mailbox() = default;
    Status send(tkernel::T_MSG* msg);
    Expected<tkernel::T_MSG*> receive(tkernel::TMO tmout = tkernel::TMO_FEVR);
    Expected<tkernel::T_RMBX> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class MsgBuf final : public HandleBase {
public:
    MsgBuf() = default;
    Status send(const void* msg, tkernel::INT msgsz,
                tkernel::TMO tmout = tkernel::TMO_FEVR);
    /// Returns the received size.
    Expected<tkernel::INT> receive(void* msg, tkernel::TMO tmout = tkernel::TMO_FEVR);
    Expected<tkernel::T_RMBF> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class FixedPool final : public HandleBase {
public:
    FixedPool() = default;
    Expected<void*> get(tkernel::TMO tmout = tkernel::TMO_FEVR);
    Status put(void* blf);
    Expected<tkernel::T_RMPF> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class VarPool final : public HandleBase {
public:
    VarPool() = default;
    Expected<void*> get(tkernel::INT blksz, tkernel::TMO tmout = tkernel::TMO_FEVR);
    Status put(void* blk);
    Expected<tkernel::T_RMPL> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class Cyclic final : public HandleBase {
public:
    Cyclic() = default;
    Status start();
    Status stop();
    Expected<tkernel::T_RCYC> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

class Alarm final : public HandleBase {
public:
    Alarm() = default;
    Status start(tkernel::RELTIM almtim);
    Status stop();
    Expected<tkernel::T_RALM> ref() const;

private:
    using HandleBase::HandleBase;
    friend class System;
};

}  // namespace rtk::api
