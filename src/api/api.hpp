// Umbrella header for rtk::api -- the modern, typed front door to the
// RTK-Spec TRON simulator (the paper-faithful tk_*/SIM_* surface lives
// underneath, untouched).
#pragma once

#include "api/builder.hpp"
#include "api/error.hpp"
#include "api/expected.hpp"
#include "api/handles.hpp"
#include "api/json.hpp"
#include "api/system.hpp"
