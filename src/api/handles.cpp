#include "api/handles.hpp"

#include <utility>

#include "api/system.hpp"

namespace rtk::api {

using namespace rtk::tkernel;

const char* to_string(Kind k) {
    switch (k) {
        case Kind::task: return "task";
        case Kind::semaphore: return "semaphore";
        case Kind::eventflag: return "eventflag";
        case Kind::mutex: return "mutex";
        case Kind::mailbox: return "mailbox";
        case Kind::msgbuf: return "msgbuf";
        case Kind::fixed_pool: return "fixed_pool";
        case Kind::var_pool: return "var_pool";
        case Kind::cyclic: return "cyclic";
        case Kind::alarm: return "alarm";
    }
    return "?";
}

// ---- HandleBase -------------------------------------------------------------

HandleBase::HandleBase(HandleBase&& other) noexcept
    : sys_(other.sys_), kind_(other.kind_), raw_(other.raw_), owned_(other.owned_) {
    other.sys_ = nullptr;
    other.raw_ = RawHandle{};
    other.owned_ = false;
}

HandleBase& HandleBase::operator=(HandleBase&& other) noexcept {
    if (this != &other) {
        if (owned_ && sys_ != nullptr) {
            (void)sys_->destroy(kind_, raw_);
        }
        sys_ = std::exchange(other.sys_, nullptr);
        kind_ = other.kind_;
        raw_ = std::exchange(other.raw_, RawHandle{});
        owned_ = std::exchange(other.owned_, false);
    }
    return *this;
}

HandleBase::~HandleBase() {
    if (owned_ && sys_ != nullptr) {
        // Best effort: a stale or already-deleted object is not an error
        // on the RAII path.
        (void)sys_->destroy(kind_, raw_);
    }
}

bool HandleBase::valid() const {
    return sys_ != nullptr && sys_->alive(kind_, raw_);
}

ID HandleBase::release() {
    owned_ = false;
    return raw_.id;
}

Status HandleBase::destroy() {
    if (sys_ == nullptr) {
        return Status::from_er(E_ID);
    }
    const Status st = sys_->destroy(kind_, raw_);
    sys_ = nullptr;
    raw_ = RawHandle{};
    owned_ = false;
    return st;
}

Status HandleBase::pre() const {
    if (sys_ == nullptr) {
        return Status::from_er(E_ID);
    }
    return sys_->validate(kind_, raw_);
}

TKernel& HandleBase::os() const { return sys_->os(); }

namespace {

/// Validate-then-call: the shape of every facade delegation.
template <typename F>
Status checked(const Status& pre, F&& call) {
    if (!pre.ok()) {
        return pre;
    }
    return Status::from_er(call());
}

template <typename T, typename F>
Expected<T> checked_ref(const Status& pre, F&& call) {
    if (!pre.ok()) {
        return pre;
    }
    T out{};
    const ER er = call(&out);
    if (er < 0) {
        return Expected<T>::failure(er);
    }
    return out;
}

}  // namespace

// ---- Task -------------------------------------------------------------------

Status Task::start(INT stacd) {
    return checked(pre(), [&] { return os().tk_sta_tsk(raw_.id, stacd); });
}
Status Task::terminate() {
    return checked(pre(), [&] { return os().tk_ter_tsk(raw_.id); });
}
Status Task::change_priority(PRI pri) {
    return checked(pre(), [&] { return os().tk_chg_pri(raw_.id, pri); });
}
Status Task::rotate_ready_queue() const {
    return checked(pre(), [&] {
        T_RTSK r{};
        if (const ER er = os().tk_ref_tsk(raw_.id, &r); er < 0) {
            return er;
        }
        return os().tk_rot_rdq(r.tskpri);
    });
}
Status Task::wakeup() {
    return checked(pre(), [&] { return os().tk_wup_tsk(raw_.id); });
}
Expected<INT> Task::cancel_wakeups() {
    if (const Status st = pre(); !st.ok()) {
        return st;
    }
    const INT n = os().tk_can_wup(raw_.id);
    if (n < 0) {
        return Expected<INT>::failure(n);
    }
    return n;
}
Status Task::release_wait() {
    return checked(pre(), [&] { return os().tk_rel_wai(raw_.id); });
}
Status Task::suspend() {
    return checked(pre(), [&] { return os().tk_sus_tsk(raw_.id); });
}
Status Task::resume() {
    return checked(pre(), [&] { return os().tk_rsm_tsk(raw_.id); });
}
Status Task::force_resume() {
    return checked(pre(), [&] { return os().tk_frsm_tsk(raw_.id); });
}
Status Task::define_exception_handler(const T_DTEX& pk) {
    return checked(pre(), [&] { return os().tk_def_tex(raw_.id, pk); });
}
Status Task::raise_exception(UINT texptn) {
    return checked(pre(), [&] { return os().tk_ras_tex(raw_.id, texptn); });
}
Expected<T_RTSK> Task::ref() const {
    return checked_ref<T_RTSK>(pre(),
                               [&](T_RTSK* r) { return os().tk_ref_tsk(raw_.id, r); });
}

// ---- Semaphore --------------------------------------------------------------

Status Semaphore::signal(INT cnt) {
    return checked(pre(), [&] { return os().tk_sig_sem(raw_.id, cnt); });
}
Status Semaphore::wait(INT cnt, TMO tmout) {
    return checked(pre(), [&] { return os().tk_wai_sem(raw_.id, cnt, tmout); });
}
Expected<T_RSEM> Semaphore::ref() const {
    return checked_ref<T_RSEM>(pre(),
                               [&](T_RSEM* r) { return os().tk_ref_sem(raw_.id, r); });
}

// ---- EventFlag --------------------------------------------------------------

Status EventFlag::set(UINT setptn) {
    return checked(pre(), [&] { return os().tk_set_flg(raw_.id, setptn); });
}
Status EventFlag::clear(UINT clrptn) {
    return checked(pre(), [&] { return os().tk_clr_flg(raw_.id, clrptn); });
}
Expected<UINT> EventFlag::wait(UINT waiptn, UINT wfmode, TMO tmout) {
    if (const Status st = pre(); !st.ok()) {
        return st;
    }
    UINT got = 0;
    const ER er = os().tk_wai_flg(raw_.id, waiptn, wfmode, &got, tmout);
    if (er < 0) {
        return Expected<UINT>::failure(er);
    }
    return got;
}
Expected<T_RFLG> EventFlag::ref() const {
    return checked_ref<T_RFLG>(pre(),
                               [&](T_RFLG* r) { return os().tk_ref_flg(raw_.id, r); });
}

// ---- Mutex ------------------------------------------------------------------

Status Mutex::lock(TMO tmout) {
    return checked(pre(), [&] { return os().tk_loc_mtx(raw_.id, tmout); });
}
Status Mutex::unlock() {
    return checked(pre(), [&] { return os().tk_unl_mtx(raw_.id); });
}
Expected<T_RMTX> Mutex::ref() const {
    return checked_ref<T_RMTX>(pre(),
                               [&](T_RMTX* r) { return os().tk_ref_mtx(raw_.id, r); });
}

// ---- Mailbox ----------------------------------------------------------------

Status Mailbox::send(T_MSG* msg) {
    return checked(pre(), [&] { return os().tk_snd_mbx(raw_.id, msg); });
}
Expected<T_MSG*> Mailbox::receive(TMO tmout) {
    if (const Status st = pre(); !st.ok()) {
        return st;
    }
    T_MSG* msg = nullptr;
    const ER er = os().tk_rcv_mbx(raw_.id, &msg, tmout);
    if (er < 0) {
        return Expected<T_MSG*>::failure(er);
    }
    return msg;
}
Expected<T_RMBX> Mailbox::ref() const {
    return checked_ref<T_RMBX>(pre(),
                               [&](T_RMBX* r) { return os().tk_ref_mbx(raw_.id, r); });
}

// ---- MsgBuf -----------------------------------------------------------------

Status MsgBuf::send(const void* msg, INT msgsz, TMO tmout) {
    return checked(pre(), [&] { return os().tk_snd_mbf(raw_.id, msg, msgsz, tmout); });
}
Expected<INT> MsgBuf::receive(void* msg, TMO tmout) {
    if (const Status st = pre(); !st.ok()) {
        return st;
    }
    const INT n = os().tk_rcv_mbf(raw_.id, msg, tmout);
    if (n < 0) {
        return Expected<INT>::failure(n);
    }
    return n;
}
Expected<T_RMBF> MsgBuf::ref() const {
    return checked_ref<T_RMBF>(pre(),
                               [&](T_RMBF* r) { return os().tk_ref_mbf(raw_.id, r); });
}

// ---- FixedPool --------------------------------------------------------------

Expected<void*> FixedPool::get(TMO tmout) {
    if (const Status st = pre(); !st.ok()) {
        return st;
    }
    void* blf = nullptr;
    const ER er = os().tk_get_mpf(raw_.id, &blf, tmout);
    if (er < 0) {
        return Expected<void*>::failure(er);
    }
    return blf;
}
Status FixedPool::put(void* blf) {
    return checked(pre(), [&] { return os().tk_rel_mpf(raw_.id, blf); });
}
Expected<T_RMPF> FixedPool::ref() const {
    return checked_ref<T_RMPF>(pre(),
                               [&](T_RMPF* r) { return os().tk_ref_mpf(raw_.id, r); });
}

// ---- VarPool ----------------------------------------------------------------

Expected<void*> VarPool::get(INT blksz, TMO tmout) {
    if (const Status st = pre(); !st.ok()) {
        return st;
    }
    void* blk = nullptr;
    const ER er = os().tk_get_mpl(raw_.id, blksz, &blk, tmout);
    if (er < 0) {
        return Expected<void*>::failure(er);
    }
    return blk;
}
Status VarPool::put(void* blk) {
    return checked(pre(), [&] { return os().tk_rel_mpl(raw_.id, blk); });
}
Expected<T_RMPL> VarPool::ref() const {
    return checked_ref<T_RMPL>(pre(),
                               [&](T_RMPL* r) { return os().tk_ref_mpl(raw_.id, r); });
}

// ---- Cyclic / Alarm ---------------------------------------------------------

Status Cyclic::start() {
    return checked(pre(), [&] { return os().tk_sta_cyc(raw_.id); });
}
Status Cyclic::stop() {
    return checked(pre(), [&] { return os().tk_stp_cyc(raw_.id); });
}
Expected<T_RCYC> Cyclic::ref() const {
    return checked_ref<T_RCYC>(pre(),
                               [&](T_RCYC* r) { return os().tk_ref_cyc(raw_.id, r); });
}

Status Alarm::start(RELTIM almtim) {
    return checked(pre(), [&] { return os().tk_sta_alm(raw_.id, almtim); });
}
Status Alarm::stop() {
    return checked(pre(), [&] { return os().tk_stp_alm(raw_.id); });
}
Expected<T_RALM> Alarm::ref() const {
    return checked_ref<T_RALM>(pre(),
                               [&](T_RALM* r) { return os().tk_ref_alm(raw_.id, r); });
}

}  // namespace rtk::api
