// api::SystemBuilder / SystemSpec -- declarative construction of a whole
// task-set + sync-object graph in one shot.
//
// SystemSpec is the shared IR of "scenario as data": the harness builds
// ScenarioSpecs from it (harness/scenario.hpp), the fuzzer lowers its
// generated FuzzSpecs onto it, and the structural part (names,
// priorities, object parameters -- everything except the C++ behaviour
// closures) round-trips through JSON (to_json/from_json).
//
// SystemBuilder is the fluent author:
//
//   api::SystemBuilder b;
//   b.semaphore("data_ready").initial(0);
//   b.task("producer").priority(10).body([...]).autostart();
//   api::System sys(simulation.os());
//   auto handles = b.instantiate(sys);          // Expected<SystemHandles>
//   handles->find_semaphore("data_ready")->signal();
//
// Instantiation order (fixed, so runs are reproducible): semaphores,
// eventflags, mutexes, mailboxes, msgbufs, fixed pools, var pools; then
// tasks (each with its exception handler); then the autostart task
// starts in declaration order; then cyclics, alarms (started immediately
// when start_after_ms is set) and interrupt vectors.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/json.hpp"
#include "api/system.hpp"

namespace rtk::api {

// ---- spec nodes (named-parameter chaining over the *Def packets) ------------

struct TaskNode {
    TaskDef def;
    bool auto_start = false;
    tkernel::INT stacd = 0;
    tkernel::T_DTEX tex;  ///< installed when tex.texhdr is set

    TaskNode& priority(tkernel::PRI p) {
        def.priority = p;
        return *this;
    }
    TaskNode& body(std::function<void()> fn) {
        def.body = std::move(fn);
        return *this;
    }
    TaskNode& entry(tkernel::TaskEntry fn) {
        def.entry = std::move(fn);
        return *this;
    }
    TaskNode& stack(std::size_t bytes) {
        def.stack_size = bytes;
        return *this;
    }
    TaskNode& exinf(void* p) {
        def.exinf = p;
        return *this;
    }
    TaskNode& autostart(tkernel::INT code = 0) {
        auto_start = true;
        stacd = code;
        return *this;
    }
    TaskNode& exception_handler(tkernel::TexEntry fn) {
        tex.texhdr = std::move(fn);
        return *this;
    }
};

struct SemNode {
    SemaphoreDef def;
    SemNode& initial(tkernel::INT n) {
        def.initial = n;
        return *this;
    }
    SemNode& max(tkernel::INT n) {
        def.max = n;
        return *this;
    }
    SemNode& priority_queue(bool on = true) {
        def.priority_queue = on;
        return *this;
    }
    SemNode& count_order(bool on = true) {
        def.count_order = on;
        return *this;
    }
};

struct FlgNode {
    EventFlagDef def;
    FlgNode& initial(tkernel::UINT ptn) {
        def.initial = ptn;
        return *this;
    }
    FlgNode& priority_queue(bool on = true) {
        def.priority_queue = on;
        return *this;
    }
    FlgNode& multi_waiter(bool on = true) {
        def.multi_waiter = on;
        return *this;
    }
};

struct MtxNode {
    MutexDef def;
    MtxNode& protocol(MutexDef::Protocol p) {
        def.protocol = p;
        return *this;
    }
    MtxNode& inherit() { return protocol(MutexDef::Protocol::inherit); }
    MtxNode& ceiling(tkernel::PRI pri) {
        def.protocol = MutexDef::Protocol::ceiling;
        def.ceiling = pri;
        return *this;
    }
    MtxNode& priority_queue() { return protocol(MutexDef::Protocol::priority); }
};

struct MbxNode {
    MailboxDef def;
    MbxNode& priority_queue(bool on = true) {
        def.priority_queue = on;
        return *this;
    }
    MbxNode& priority_messages(bool on = true) {
        def.priority_messages = on;
        return *this;
    }
};

struct MbfNode {
    MsgBufDef def;
    MbfNode& buffer_size(tkernel::INT n) {
        def.buffer_size = n;
        return *this;
    }
    MbfNode& max_message(tkernel::INT n) {
        def.max_message = n;
        return *this;
    }
    MbfNode& priority_queue(bool on = true) {
        def.priority_queue = on;
        return *this;
    }
};

struct MpfNode {
    FixedPoolDef def;
    MpfNode& blocks(tkernel::INT n) {
        def.blocks = n;
        return *this;
    }
    MpfNode& block_size(tkernel::INT n) {
        def.block_size = n;
        return *this;
    }
    MpfNode& priority_queue(bool on = true) {
        def.priority_queue = on;
        return *this;
    }
};

struct MplNode {
    VarPoolDef def;
    MplNode& size(tkernel::INT n) {
        def.size = n;
        return *this;
    }
    MplNode& priority_queue(bool on = true) {
        def.priority_queue = on;
        return *this;
    }
};

struct CycNode {
    CyclicDef def;
    CycNode& handler(tkernel::HandlerEntry fn) {
        def.handler = std::move(fn);
        return *this;
    }
    CycNode& period(tkernel::RELTIM ms) {
        def.period_ms = ms;
        return *this;
    }
    CycNode& phase(tkernel::RELTIM ms) {
        def.phase_ms = ms;
        return *this;
    }
    CycNode& autostart(bool on = true) {
        def.autostart = on;
        return *this;
    }
    CycNode& honor_phase(bool on = true) {
        def.honor_phase = on;
        return *this;
    }
};

struct AlmNode {
    AlarmDef def;
    tkernel::RELTIM start_after_ms = 0;  ///< 0: created stopped
    AlmNode& handler(tkernel::HandlerEntry fn) {
        def.handler = std::move(fn);
        return *this;
    }
    AlmNode& start_after(tkernel::RELTIM ms) {
        start_after_ms = ms;
        return *this;
    }
};

struct IntNode {
    tkernel::UINT intno = 0;
    tkernel::PRI pri = 1;
    tkernel::HandlerEntry hdr;
    bool skip_if_claimed = false;
    IntNode& priority(tkernel::PRI p) {
        pri = p;
        return *this;
    }
    IntNode& handler(tkernel::HandlerEntry fn) {
        hdr = std::move(fn);
        return *this;
    }
    /// Tolerate a vector already claimed by someone else (E_OBJ from
    /// tk_def_int): skip the definition instead of failing instantiation.
    IntNode& if_free(bool on = true) {
        skip_if_claimed = on;
        return *this;
    }
};

// ---- the IR -----------------------------------------------------------------

struct SystemSpec {
    // Deques, not vectors: the builder hands out references to these
    // nodes for named-parameter chaining, and deque growth never
    // invalidates references to existing elements -- a node reference
    // stays usable across later builder calls. Object names must be
    // unique within their class (instantiate() fails E_PAR otherwise).
    std::deque<SemNode> semaphores;
    std::deque<FlgNode> eventflags;
    std::deque<MtxNode> mutexes;
    std::deque<MbxNode> mailboxes;
    std::deque<MbfNode> msgbufs;
    std::deque<MpfNode> fixed_pools;
    std::deque<MplNode> var_pools;
    std::deque<TaskNode> tasks;
    std::deque<CycNode> cyclics;
    std::deque<AlmNode> alarms;
    std::deque<IntNode> interrupts;

    std::size_t object_count() const;

    /// Structural serialization; behaviour closures (task bodies,
    /// handlers) are code and do not round-trip -- reattach them by name
    /// after from_json.
    Json to_json() const;
    static bool from_json(const Json& j, SystemSpec& out,
                          std::string* error = nullptr);
};

// ---- instantiation result ---------------------------------------------------

/// The live object graph of one instantiated SystemSpec: per-class handle
/// vectors in declaration order plus name lookup. Movable; destroying it
/// with owned handles tears the graph down (RAII), or release_all()
/// leaves the objects to the kernel.
class SystemHandles {
public:
    std::vector<Semaphore> semaphores;
    std::vector<EventFlag> eventflags;
    std::vector<Mutex> mutexes;
    std::vector<Mailbox> mailboxes;
    std::vector<MsgBuf> msgbufs;
    std::vector<FixedPool> fixed_pools;
    std::vector<VarPool> var_pools;
    std::vector<Task> tasks;
    std::vector<Cyclic> cyclics;
    std::vector<Alarm> alarms;
    std::vector<tkernel::UINT> interrupts;  ///< defined vector numbers

    Task* find_task(const std::string& name);
    Semaphore* find_semaphore(const std::string& name);
    EventFlag* find_eventflag(const std::string& name);
    Mutex* find_mutex(const std::string& name);
    Mailbox* find_mailbox(const std::string& name);
    MsgBuf* find_msgbuf(const std::string& name);
    FixedPool* find_fixed_pool(const std::string& name);
    VarPool* find_var_pool(const std::string& name);
    Cyclic* find_cyclic(const std::string& name);
    Alarm* find_alarm(const std::string& name);

    /// Relinquish RAII ownership of every handle (kernel teardown
    /// reclaims the objects); the handles stay usable for calls.
    void release_all();

private:
    friend Expected<SystemHandles> instantiate(System& sys, const SystemSpec& spec);
    /// name -> index per kind, built at instantiation.
    std::unordered_map<std::string, std::size_t> names_[kind_count];
    template <typename H>
    H* find_in(std::vector<H>& vec, Kind kind, const std::string& name);
};

/// Create the whole graph described by `spec` on `sys` (see the header
/// comment for the fixed order). On failure the partial graph is rolled
/// back by handle RAII and the first error code is returned.
Expected<SystemHandles> instantiate(System& sys, const SystemSpec& spec);

// ---- the fluent author ------------------------------------------------------

class SystemBuilder {
public:
    SystemBuilder() = default;
    explicit SystemBuilder(SystemSpec spec) : spec_(std::move(spec)) {}

    TaskNode& task(std::string name);
    SemNode& semaphore(std::string name);
    FlgNode& eventflag(std::string name);
    MtxNode& mutex(std::string name);
    MbxNode& mailbox(std::string name);
    MbfNode& msgbuf(std::string name);
    MpfNode& fixed_pool(std::string name);
    MplNode& var_pool(std::string name);
    CycNode& cyclic(std::string name);
    AlmNode& alarm(std::string name);
    IntNode& interrupt(tkernel::UINT intno);

    const SystemSpec& spec() const { return spec_; }
    SystemSpec take_spec() { return std::move(spec_); }

    Expected<SystemHandles> instantiate(System& sys) const {
        return api::instantiate(sys, spec_);
    }

private:
    SystemSpec spec_;
};

}  // namespace rtk::api
