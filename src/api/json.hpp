// Minimal JSON document model for scenario-as-data files: api::SystemSpec
// round-trips and the fuzzer's repro documents.
//
// Those formats only need objects, arrays, strings, 64-bit integers and
// booleans, so this is a small recursive-descent parser plus a
// deterministic writer -- not a general JSON library. Kept
// dependency-free on purpose: spec and repro files must parse
// identically everywhere the simulator builds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rtk::api {

class Json {
public:
    enum class Kind { null, boolean, number, real, string, array, object };

    Json() = default;

    static Json boolean(bool b);
    static Json number(std::uint64_t v);
    static Json number_signed(std::int64_t v);
    /// Real-valued metric (reports and heat-maps emit these; the parser
    /// reads them back as Kind::real, and the integer readers as_u64 /
    /// as_i64 fall back on them, so repro/spec fields stay
    /// integer-exact). Finite values print as fixed-point %.6f; NaN and
    /// +/-inf, which bare printf would emit as invalid JSON, serialize as
    /// the strings "nan", "inf" and "-inf".
    static Json number_real(double v);
    static Json string(std::string s);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool is_object() const { return kind_ == Kind::object; }
    bool is_array() const { return kind_ == Kind::array; }

    // ---- readers (defaulted access: wrong kind returns the fallback) ----
    bool as_bool(bool fallback = false) const;
    std::uint64_t as_u64(std::uint64_t fallback = 0) const;
    std::int64_t as_i64(std::int64_t fallback = 0) const;
    double as_real(double fallback = 0.0) const;
    const std::string& as_string() const;  ///< empty string when not a string

    /// Object member lookup; returns a shared null instance when absent.
    const Json& at(const std::string& key) const;
    bool has(const std::string& key) const;
    /// Array elements (empty when not an array).
    const std::vector<Json>& items() const;
    /// Object members in key order (empty when not an object).
    const std::map<std::string, Json>& members() const;

    // ---- writers ----
    void set(const std::string& key, Json v);  ///< makes this an object
    void push(Json v);                         ///< makes this an array

    /// Serialize; objects emit members in key order so output is
    /// deterministic. `indent` < 0 gives compact one-line output.
    std::string dump(int indent = 2) const;

    /// Parse `text`; returns false (and fills `error`) on malformed input.
    static bool parse(const std::string& text, Json& out, std::string* error = nullptr);

private:
    Kind kind_ = Kind::null;
    bool bool_ = false;
    std::uint64_t num_ = 0;      ///< magnitude
    bool negative_ = false;      ///< sign of the number
    double real_ = 0.0;          ///< Kind::real payload
    std::string str_;
    std::vector<Json> items_;
    std::map<std::string, Json> members_;

    void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace rtk::api
