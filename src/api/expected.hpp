// Result types of the rtk::api facade: api::Status for calls that only
// succeed or fail, rtk::Expected<T> for calls that produce a value.
//
// Both are [[nodiscard]] wrappers over the kernel's signed ER codes, so
// an error path cannot be dropped on the floor the way a raw `ER` return
// can. Accessing the value of a failed Expected is a fatal report
// (sysc::SimError), never UB.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "api/error.hpp"
#include "sysc/report.hpp"
#include "tkernel/tk_types.hpp"

namespace rtk::api {

/// Outcome of a facade call with no payload. Wraps one ER code; >= 0 is
/// success (some services return counts), < 0 is the failure code.
class [[nodiscard]] Status {
public:
    /// Success (E_OK).
    constexpr Status() = default;
    static constexpr Status from_er(tkernel::ER er) { return Status(er); }

    constexpr bool ok() const { return er_ >= 0; }
    constexpr explicit operator bool() const { return ok(); }
    constexpr tkernel::ER er() const { return er_; }
    /// Mnemonic of the wrapped code ("E_OK", "E_TMOUT", ...).
    const char* name() const { return rtk::er_to_string(er_); }
    /// "E_TMOUT (-50)" -- for diagnostics.
    std::string describe() const { return er_describe(er_); }

    /// Assert success: fatal report (throws sysc::SimError) on failure.
    /// For call sites where an error means the scenario itself is broken.
    void expect(const char* what = "api call") const {
        if (!ok()) {
            sysc::report(sysc::Severity::fatal, "api",
                         std::string(what) + " failed: " + describe());
        }
    }

    friend constexpr bool operator==(Status a, Status b) { return a.er_ == b.er_; }
    friend constexpr bool operator==(Status s, tkernel::ER er) { return s.er_ == er; }

private:
    constexpr explicit Status(tkernel::ER er) : er_(er) {}
    tkernel::ER er_ = tkernel::E_OK;
};

}  // namespace rtk::api

namespace rtk {

/// Value-or-error result: holds a T on success, an ER code on failure.
/// Implicitly constructible from a T (success) or from a failed
/// api::Status (error propagation: `if (!st) return st;`).
template <typename T>
class [[nodiscard]] Expected {
public:
    Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
    Expected(api::Status failed)                     // NOLINT(google-explicit-constructor)
        : er_(failed.er()) {
        if (failed.ok()) {
            sysc::report(sysc::Severity::fatal, "api",
                         "Expected constructed from a success Status without a value");
        }
    }
    static Expected failure(tkernel::ER er) {
        return Expected(api::Status::from_er(er < 0 ? er : tkernel::E_SYS));
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }
    /// E_OK on success, the failure code otherwise.
    tkernel::ER er() const { return er_; }
    api::Status status() const { return api::Status::from_er(er_); }
    const char* error_name() const { return rtk::er_to_string(er_); }

    /// The value; fatal report (throws sysc::SimError) when failed.
    T& value() & {
        require();
        return *value_;
    }
    const T& value() const& {
        require();
        return *value_;
    }
    T&& value() && {
        require();
        return std::move(*value_);
    }
    T value_or(T fallback) const {
        return ok() ? *value_ : std::move(fallback);
    }
    /// Assert success: fatal report (throws sysc::SimError) on failure,
    /// the value otherwise. `what` names the call site in diagnostics.
    T expect(const char* what = "api call") const& {
        require_for(what);
        return *value_;
    }
    T expect(const char* what = "api call") && {
        require_for(what);
        return std::move(*value_);
    }

    T& operator*() & { return value(); }
    const T& operator*() const& { return value(); }
    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }

private:
    void require() const { require_for("Expected::value()"); }
    void require_for(const char* what) const {
        if (!ok()) {
            sysc::report(sysc::Severity::fatal, "api",
                         std::string(what) + " failed: " + api::er_describe(er_));
        }
    }

    std::optional<T> value_;
    tkernel::ER er_ = tkernel::E_OK;
};

}  // namespace rtk
