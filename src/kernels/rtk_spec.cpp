#include "kernels/rtk_spec.hpp"

#include <cstddef>
#include <cstdint>

#include "sysc/report.hpp"

namespace rtk::kernels {

using sim::ExecContext;
using sim::ThreadKind;

namespace {
constexpr sim::Priority tick_priority = -1'000'000;
}

RtkSpecBase::RtkSpecBase(sysc::Kernel& kernel, std::unique_ptr<sim::Scheduler> sched,
                         Config cfg)
    : kernel_(&kernel), cfg_(cfg), sched_(std::move(sched)) {
    sim::SimApi::Config sc;
    sc.quantum = cfg_.tick;
    sc.record_gantt = cfg_.record_gantt;
    api_ = std::make_unique<sim::SimApi>(kernel, *sched_, sc);
    tick_thread_ = &api_->SIM_CreateThread(
        "rtkspec.tick", ThreadKind::interrupt_handler, tick_priority, [this] {
            api_->SIM_WaitUnits(2, ExecContext::handler);
            timer_tick();
        });
}

RtkSpecBase::~RtkSpecBase() {
    if (ticker_proc_ != nullptr) {
        ticker_proc_->kill();
    }
}

int RtkSpecBase::create_task(std::string name, TaskFn fn, int priority) {
    auto task = std::make_unique<Task>();
    Task* p = task.get();
    p->tid = static_cast<int>(tasks_.size()) + 1;
    p->name = name;
    tasks_.push_back(std::move(task));
    p->thread = &api_->SIM_CreateThread(
        std::move(name), ThreadKind::task, priority, [this, p, fn = std::move(fn)] {
            api_->SIM_WaitUnits(cfg_.service_cost_units, ExecContext::startup);
            fn();
        });
    p->thread->set_user_data(p);
    return p->tid;
}

RtkSpecBase::Task* RtkSpecBase::find(int tid) {
    if (tid <= 0 || static_cast<std::size_t>(tid) > tasks_.size()) {
        sysc::report(sysc::Severity::fatal, "rtkspec", "bad task id");
    }
    return tasks_[static_cast<std::size_t>(tid) - 1].get();
}

int RtkSpecBase::current_task() const {
    sim::TThread* t = api_->running_task();
    if (t == nullptr || t->user_data() == nullptr) {
        return 0;
    }
    return static_cast<Task*>(t->user_data())->tid;
}

void RtkSpecBase::start_task(int tid) {
    api_->SIM_StartThread(*find(tid)->thread);
}

void RtkSpecBase::sleep() {
    // Blocking happens inside the atomic service section: releasing it
    // first would open a preemption point in which wakeup() could run
    // before SIM_Sleep and the wake would be lost.
    sim::SimApi::ServiceGuard svc(*api_);
    api_->SIM_WaitUnits(cfg_.service_cost_units, ExecContext::service_call);
    Task* me = static_cast<Task*>(api_->self().user_data());
    if (me->pending_wakeups > 0) {
        --me->pending_wakeups;
        return;
    }
    me->sleeping = true;
    api_->SIM_Sleep();
}

void RtkSpecBase::wakeup(int tid) {
    sim::SimApi::ServiceGuard svc(*api_);
    api_->SIM_WaitUnits(cfg_.service_cost_units, ExecContext::service_call);
    Task* t = find(tid);
    if (t->sleeping) {
        t->sleeping = false;
        api_->SIM_WakeUp(*t->thread);
    } else {
        ++t->pending_wakeups;
    }
}

void RtkSpecBase::delay(std::uint64_t ms) {
    sim::SimApi::ServiceGuard svc(*api_);
    api_->SIM_WaitUnits(cfg_.service_cost_units, ExecContext::service_call);
    Task* me = static_cast<Task*>(api_->self().user_data());
    const std::uint64_t ticks =
        (sysc::Time::ms(ms) + cfg_.tick - sysc::Time::ps(1)) / cfg_.tick;
    delay_queue_.schedule(tick_count_ + (ticks == 0 ? 1 : ticks), me->tid);
    me->sleeping = true;
    api_->SIM_Sleep();
}

void RtkSpecBase::run_for(std::uint64_t ms) {
    api_->SIM_Wait(sysc::Time::ms(ms), ExecContext::task);
}

int RtkSpecBase::create_sem(int initial) {
    sems_.push_back(Sem{initial, {}});
    return static_cast<int>(sems_.size());
}

void RtkSpecBase::sem_wait(int sid) {
    sim::SimApi::ServiceGuard svc(*api_);
    api_->SIM_WaitUnits(cfg_.service_cost_units, ExecContext::service_call);
    Sem& s = sems_.at(static_cast<std::size_t>(sid) - 1);
    Task* me = static_cast<Task*>(api_->self().user_data());
    if (s.count > 0) {
        --s.count;
        return;
    }
    s.waiters.push_back(me);
    me->sleeping = true;
    api_->SIM_Sleep();
}

void RtkSpecBase::sem_signal(int sid) {
    sim::SimApi::ServiceGuard svc(*api_);
    api_->SIM_WaitUnits(cfg_.service_cost_units, ExecContext::service_call);
    Sem& s = sems_.at(static_cast<std::size_t>(sid) - 1);
    if (!s.waiters.empty()) {
        Task* w = s.waiters.front();
        s.waiters.erase(s.waiters.begin());
        w->sleeping = false;
        api_->SIM_WakeUp(*w->thread);
        return;
    }
    ++s.count;
}

void RtkSpecBase::power_on() {
    if (powered_) {
        return;
    }
    powered_ = true;
    ticker_proc_ = &kernel_->spawn("rtkspec.ticker", [this] {
        for (;;) {
            sysc::wait(cfg_.tick);
            api_->SIM_RaiseInterrupt(*tick_thread_);
        }
    });
}

void RtkSpecBase::timer_tick() {
    ++tick_count_;
    while (!delay_queue_.empty() && delay_queue_.next_at() <= tick_count_) {
        const int tid = delay_queue_.pop();
        Task* t = find(tid);
        if (t->sleeping) {
            t->sleeping = false;
            api_->SIM_WakeUp(*t->thread);
        }
    }
    on_tick();
}

// ---- RTK-Spec I ---------------------------------------------------------------

RtkSpec1::RtkSpec1(sysc::Kernel& kernel, Config cfg, std::uint64_t slice_ticks)
    : RtkSpecBase(kernel, std::make_unique<sim::RoundRobinScheduler>(), cfg),
      slice_ticks_(slice_ticks == 0 ? 1 : slice_ticks),
      slice_left_(slice_ticks_) {}

void RtkSpec1::on_tick() {
    if (--slice_left_ != 0) {
        return;
    }
    slice_left_ = slice_ticks_;
    // End of slice: the running task goes to the back of the FIFO queue.
    sim::TThread* run = api_->running_task();
    if (run != nullptr && api_->scheduler().ready_count() > 0) {
        api_->SIM_RequestPreempt(*run);
    }
}

// ---- RTK-Spec II --------------------------------------------------------------

RtkSpec2::RtkSpec2(sysc::Kernel& kernel, Config cfg)
    : RtkSpecBase(kernel, std::make_unique<sim::PriorityPreemptiveScheduler>(), cfg) {}

}  // namespace rtk::kernels
