// RTK-Spec I and RTK-Spec II -- the two user-defined kernel
// specifications the paper used to validate SIM_API coverage (§4):
// "RTK-Spec I (round robin scheduler) and II (priority-based preemptive
// scheduler), are examples of user defined kernel specifications running
// on 8051 micro-controllers".
//
// Both kernels are deliberately small (create/start/exit, delay,
// sleep/wakeup, counting semaphores) and are built from exactly the same
// SIM_API programming constructs as RTK-Spec TRON -- demonstrating the
// paper's claim that the constructs suffice for arbitrary kernel
// specifications. RTK-Spec I adds tick-driven time-slice rotation on a
// round-robin scheduler; RTK-Spec II relies on readiness-driven
// preemption of the priority scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"

namespace rtk::kernels {

/// Common substrate of both mini kernels: task table, tick process,
/// timer queue, delay/sleep/wakeup and counting semaphores.
class RtkSpecBase {
public:
    struct Config {
        sysc::Time tick = sysc::Time::ms(1);
        std::uint64_t service_cost_units = 5;
        bool record_gantt = true;
    };

    using TaskFn = std::function<void()>;

    virtual ~RtkSpecBase();

    /// Create a task; `priority` is ignored by RTK-Spec I.
    int create_task(std::string name, TaskFn fn, int priority = 10);
    void start_task(int tid);
    void sleep();             ///< current task waits for wakeup()
    void wakeup(int tid);
    void delay(std::uint64_t ms);
    /// Busy-execute for `ms` of annotated task time (preemptible).
    void run_for(std::uint64_t ms);

    // tiny counting semaphore
    int create_sem(int initial);
    void sem_wait(int sid);
    void sem_signal(int sid);

    /// Start the kernel: spawns the tick process.
    void power_on();

    sim::SimApi& sim() { return *api_; }
    const sim::SimApi& sim() const { return *api_; }
    std::uint64_t tick_count() const { return tick_count_; }
    int current_task() const;

protected:
    RtkSpecBase(sysc::Kernel& kernel, std::unique_ptr<sim::Scheduler> sched,
                Config cfg);
    /// Per-tick policy hook (RTK-Spec I rotates the slice here).
    virtual void on_tick() {}

    struct Task {
        int tid;
        std::string name;
        sim::TThread* thread;
        bool sleeping = false;
        std::uint64_t pending_wakeups = 0;
    };

    struct Sem {
        int count = 0;
        std::vector<Task*> waiters;
    };

    Task* find(int tid);
    void timer_tick();

    sysc::Process* ticker_proc_ = nullptr;

    sysc::Kernel* kernel_;
    Config cfg_;
    std::unique_ptr<sim::Scheduler> sched_;
    std::unique_ptr<sim::SimApi> api_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::vector<Sem> sems_;
    sim::TimerQueue<std::uint64_t, int> delay_queue_;  ///< wake tick -> tid
    sim::TThread* tick_thread_ = nullptr;
    std::uint64_t tick_count_ = 0;
    bool powered_ = false;
};

/// RTK-Spec I: round-robin with a fixed time slice.
class RtkSpec1 final : public RtkSpecBase {
public:
    explicit RtkSpec1(sysc::Kernel& kernel, Config cfg = Config{},
                      std::uint64_t slice_ticks = 5);

protected:
    void on_tick() override;

private:
    std::uint64_t slice_ticks_;
    std::uint64_t slice_left_;
};

/// RTK-Spec II: priority-based preemptive (readiness-driven).
class RtkSpec2 final : public RtkSpecBase {
public:
    explicit RtkSpec2(sysc::Kernel& kernel, Config cfg = Config{});
};

}  // namespace rtk::kernels
