// Umbrella header for rtk::sim -- the paper's RTOS modeling constructs:
// the T-THREAD process model (§3) and the SIM_API library (§4).
#pragma once

#include "sim/calibrate.hpp"
#include "sim/cost.hpp"
#include "sim/gantt.hpp"
#include "sim/hashtb.hpp"
#include "sim/intstack.hpp"
#include "sim/ready_queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/sim_api.hpp"
#include "sim/stats.hpp"
#include "sim/timer_queue.hpp"
#include "sim/token.hpp"
#include "sim/tthread.hpp"
#include "sim/types.hpp"
