// SIM_API -- the simulation library the paper adds on top of SystemC
// (§4, Table 1): "we extended SystemC simulation engine with a new
// simulation library ... These APIs will be used as programming
// constructs from the different modules of an RTOS kernel simulation
// model to control the T-THREADs operation."
//
// Supported dynamics (paper §4): dispatching, delayed dispatching,
// service call atomicity, preemption at system-clock granularity,
// interrupts and nested interrupt handling. The library owns the
// T-THREAD registry (SIM_HashTB), the nested-interrupt stack (SIM_Stack),
// interacts with an *external* scheduler, and records the Gantt/energy
// statistics behind the paper's debugging widgets.
//
// Naming: the public entry points keep the paper's SIM_* names verbatim;
// this is the reproduced API surface, fidelity beats house style.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/cost.hpp"
#include "sim/gantt.hpp"
#include "sim/hashtb.hpp"
#include "sim/intstack.hpp"
#include "sim/observer.hpp"
#include "sim/scheduler.hpp"
#include "sim/tthread.hpp"
#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sysc {
class Kernel;
}

namespace rtk::sim {

/// Thrown by SIM_Exit to unwind the current entry; caught by the
/// T-THREAD body wrapper (never visible to user code).
struct ThreadCycleExit {};

class SimApi {
public:
    struct Config {
        /// Preemption granularity: "preemption - with system clock
        /// simulation granularity" (paper §4). Preemption points fall on
        /// multiples of this quantum (the kernel system tick).
        sysc::Time quantum = sysc::Time::ms(1);
        /// ETM/EEM of one dispatch (context switch); consumed by the
        /// thread receiving the CPU, attributed to the service context.
        sysc::Time dispatch_cost{};
        double dispatch_energy_nj = 0.0;
        /// "Service Call Atomicity - All system calls issued by the user
        /// are executed with continuity" (paper §4). Togglable for the
        /// ablation bench.
        bool service_call_atomicity = true;
        /// "Delayed Dispatching - A preemption that takes place within an
        /// interrupt handler ... is postponed till after the interrupt
        /// handler returns" (paper §4). Togglable for the ablation bench.
        bool delayed_dispatching = true;
        /// Allow higher-priority IRQs to nest into running handlers.
        bool nested_interrupts = true;
        /// Record Gantt segments/markers (costs host time; Table 2).
        bool record_gantt = true;
    };

    /// Context-explicit construction: every T-THREAD process, grant event
    /// and time query of this instance lives on `kernel`. Several SimApi
    /// stacks may coexist (one per sysc::Kernel), including on different
    /// host threads.
    SimApi(sysc::Kernel& kernel, Scheduler& scheduler);
    SimApi(sysc::Kernel& kernel, Scheduler& scheduler, Config config);
    ~SimApi();

    SimApi(const SimApi&) = delete;
    SimApi& operator=(const SimApi&) = delete;

    // ---- thread creation and registry (SIM_HashTB) ------------------------
    TThread& SIM_CreateThread(std::string name, ThreadKind kind, Priority prio,
                              TThread::Entry entry);
    /// Delete a DORMANT thread (error otherwise).
    void SIM_DeleteThread(TThread& t);
    TThread* SIM_Find(ThreadId id) const { return hashtb_.find(id); }
    TThread* SIM_FindByName(const std::string& name) const {
        return hashtb_.find_by_name(name);
    }

    // ---- activation / termination -----------------------------------------
    /// DORMANT -> READY; the thread's next grant fires Es (startup).
    void SIM_StartThread(TThread& t);
    /// Ends the *current* thread's firing cycle (µ-ITRON tk_ext_tsk).
    [[noreturn]] void SIM_Exit();
    /// Force any non-executing thread back to DORMANT (tk_ter_tsk): its
    /// coroutine stack unwinds (RAII) and a fresh cycle is armed.
    void SIM_Terminate(TThread& t);

    // ---- blocking / wakeup (Ew) --------------------------------------------
    /// Current thread: RUNNING -> WAITING until SIM_WakeUp (grant Ew).
    void SIM_Sleep();
    /// WAITING -> READY (or WAITING-SUSPENDED -> SUSPENDED).
    void SIM_WakeUp(TThread& t);

    // ---- forced suspension (µ-ITRON tk_sus_tsk) ----------------------------
    void SIM_Suspend(TThread& t);
    void SIM_Resume(TThread& t);

    // ---- priority ----------------------------------------------------------
    /// Change base priority (repositioning in the ready queue).
    void SIM_ChangePriority(TThread& t, Priority prio);
    /// Temporarily boost/restore current priority without touching the
    /// base (mutex priority inheritance / ceiling support).
    void SIM_SetCurrentPriority(TThread& t, Priority prio);
    void SIM_RotateReadyQueue(Priority prio);

    // ---- time/energy consumption (the T-THREAD ETM/EEM) --------------------
    /// Consume simulated execution time in context `ctx`, energy derived
    /// from the cost table rate; preemption/interruption is checked at
    /// every quantum boundary crossed (paper: SIM_Wait).
    void SIM_Wait(sysc::Time dur, ExecContext ctx);
    /// As above with an explicit EEM annotation for the whole duration.
    void SIM_Wait(sysc::Time dur, double energy_nj, ExecContext ctx);
    /// Consume `units` abstract work units via the cost table.
    void SIM_WaitUnits(std::uint64_t units, ExecContext ctx);
    /// Zero-length preemption point.
    void SIM_PreemptionPoint();

    // ---- service call atomicity --------------------------------------------
    void SIM_EnterService();
    void SIM_ExitService();
    /// Leave the atomic section without triggering preemption checks.
    /// REQUIRED when unwinding a dying/exiting thread: re-entering the
    /// wait machinery from a destructor during stack unwind would suspend
    /// a coroutine that is mid-unwind (and terminate the program on the
    /// next kill).
    void SIM_AbandonService(TThread& t);
    /// RAII guard for one atomic service call section; exception-safe:
    /// during stack unwind (thread kill / SIM_Exit) it abandons the
    /// section instead of running preemption checks.
    class ServiceGuard {
    public:
        explicit ServiceGuard(SimApi& api) : api_(api), thread_(api.self_or_null()) {
            if (thread_ != nullptr) {
                api_.SIM_EnterService();
            }
        }
        /// noexcept(false): SIM_ExitService runs the deferred preemption
        /// check, which may park this thread; a parked thread may be
        /// killed (SIM_Terminate / teardown) and the CoroutineKilled
        /// unwind must pass through this destructor.
        ~ServiceGuard() noexcept(false);
        ServiceGuard(const ServiceGuard&) = delete;
        ServiceGuard& operator=(const ServiceGuard&) = delete;

    private:
        SimApi& api_;
        TThread* thread_;
    };

    // ---- dispatching control ------------------------------------------------
    /// Disable task dispatching (µ-ITRON tk_dis_dsp); preemptions pend.
    void SIM_DisableDispatch();
    void SIM_EnableDispatch();
    bool dispatch_disabled() const { return dispatch_disabled_; }
    /// Ask the running thread to yield at its next preemption point
    /// (used by the round-robin kernels' tick handlers).
    void SIM_RequestPreempt(TThread& t);

    // ---- interrupts ----------------------------------------------------------
    /// Queue activation of an interrupt/cyclic/alarm handler thread.
    /// Deliverable immediately when the CPU is idle; otherwise delivered
    /// at the executing thread's next preemption point. Higher-priority
    /// handlers nest into running handlers (SIM_Stack).
    void SIM_RaiseInterrupt(TThread& isr);
    bool in_interrupt() const {
        return executing_ != nullptr && executing_ != running_task_;
    }

    // ---- fault-injection latches (rtk::harness::fault) ---------------------
    // Deterministic corruption of the interrupt machinery: a dropped edge
    // models a masked/glitched controller line, a duplicated one a stuck
    // pending bit. Arming only writes plain latch state, so these two
    // calls are sanctioned even from observer callbacks; the corruption
    // itself happens inside the next regular SIM_RaiseInterrupt.
    /// Swallow the next `n` raised interrupt edges (handlers never see them).
    void SIM_FaultDropInterrupts(std::uint32_t n) { fault_drop_irqs_ = n; }
    /// Deliver the next raised edge twice (second delivery follows the
    /// normal pending-activation path).
    void SIM_FaultDuplicateInterrupt() { fault_dup_irq_ = true; }
    std::uint64_t fault_interrupts_dropped() const { return fault_irqs_dropped_; }
    std::uint64_t fault_interrupts_duplicated() const {
        return fault_irqs_duplicated_;
    }

    // ---- introspection --------------------------------------------------------
    /// Thread in the µ-ITRON RUNNING state (may be interrupted beneath
    /// handlers); nullptr when the CPU idles.
    TThread* running_task() const { return running_task_; }
    /// Thread actually consuming CPU right now (task or handler).
    TThread* executing() const { return executing_; }
    /// The T-THREAD hosting the calling sysc process (fatal if none).
    TThread& self();
    TThread* self_or_null();

    /// The simulation kernel this instance is bound to.
    sysc::Kernel& kernel() { return *kernel_; }
    const sysc::Kernel& kernel() const { return *kernel_; }

    Scheduler& scheduler() { return *scheduler_; }
    const SimHashTB& hash_table() const { return hashtb_; }
    const SimStack& interrupt_stack() const { return stack_; }
    CostTable& costs() { return costs_; }
    const CostTable& costs() const { return costs_; }
    GanttRecorder& gantt() { return gantt_; }
    const GanttRecorder& gantt() const { return gantt_; }
    const Config& config() const { return config_; }

    /// Subscribe `obs` to the scheduling event stream. Any number of
    /// observers may be attached to one instance (oracle + tracer + fault
    /// injector all at once); each event is fanned out in registration
    /// order. The caller keeps `obs` alive while registered. Duplicate or
    /// null registrations are ignored. See sim/observer.hpp for the
    /// callback contract.
    void add_observer(SimObserver* obs);
    /// Unsubscribe `obs` (no-op when not registered). Safe to call from
    /// inside an observer callback: the slot is nulled immediately (the
    /// observer sees no further events, including later callbacks of the
    /// event being dispatched) and compacted after the fan-out returns.
    void remove_observer(SimObserver* obs);
    std::size_t observer_count() const;
    /// The registered observers in registration order (may hold nulls
    /// while a fan-out that removed an observer is still unwinding).
    /// Read-only introspection for tooling (e.g. trace::Recorder::find).
    const std::vector<SimObserver*>& observers() const { return observers_; }

    std::uint64_t total_dispatches() const { return total_dispatches_; }
    std::uint64_t total_preemptions() const { return total_preemptions_; }
    std::uint64_t total_interrupt_deliveries() const { return total_interrupts_; }
    sysc::Time idle_time() const;

    std::vector<TThread*> threads() const { return hashtb_.threads(); }

private:
    friend class TThread;

    // grant/yield machinery
    void grant(TThread& t, RunEvent reason);
    void dispatch();
    void yield_preempted(TThread& t);
    void check_preemption_point(TThread& t);
    bool interrupts_deliverable_to(const TThread& t) const;
    bool preemption_allowed_for(const TThread& t) const;
    void launch_isr(TThread& isr);
    void raise_interrupt_edge(TThread& isr);
    void deliver_pending_interrupts();
    void on_thread_ready(TThread& t);
    void on_thread_exited(TThread& t);
    void on_handler_exited(TThread& t);
    void consume_slice(TThread& t, ExecContext ctx, sysc::Time dur, double energy_nj);
    /// Fan one event out to every registered observer, in registration
    /// order. Re-entrancy safe: observers added during dispatch see only
    /// later events; observers removed during dispatch are skipped.
    template <typename Fn>
    void emit(Fn&& fn) {
        if (observers_.empty()) {
            return;
        }
        ++observer_dispatch_depth_;
        const std::size_t n = observers_.size();  // additions start next event
        for (std::size_t i = 0; i < n; ++i) {
            if (observers_[i] != nullptr) {
                fn(*observers_[i]);
            }
        }
        if (--observer_dispatch_depth_ == 0 && observers_need_compact_) {
            compact_observers();
        }
    }
    void compact_observers();
    void account_idle_end();
    void set_state(TThread& t, ThreadState s);
    TThread* pop_best_pending_isr();
    sysc::Time now_() const;

    sysc::Kernel* kernel_;
    Scheduler* scheduler_;
    Config config_;
    CostTable costs_;
    SimHashTB hashtb_;
    SimStack stack_;
    GanttRecorder gantt_;
    std::vector<SimObserver*> observers_;   ///< fan-out list (may hold nulls mid-dispatch)
    unsigned observer_dispatch_depth_ = 0;
    bool observers_need_compact_ = false;

    // ---- fault-injection latches (armed by rtk::harness::fault) ----
    // Arming a latch only sets plain state, so it is one of the few
    // mutations that IS safe from an observer callback; the corrupted
    // behaviour happens later, inside the normal interrupt machinery.
    std::uint32_t fault_drop_irqs_ = 0;     ///< swallow the next N raises
    bool fault_dup_irq_ = false;            ///< deliver the next raise twice
    std::uint64_t fault_irqs_dropped_ = 0;
    std::uint64_t fault_irqs_duplicated_ = 0;

    std::vector<std::unique_ptr<TThread>> owned_;
    std::unordered_map<const sysc::Process*, TThread*> by_process_;

    TThread* running_task_ = nullptr;
    TThread* executing_ = nullptr;
    std::deque<TThread*> pending_isrs_;

    bool dispatch_disabled_ = false;
    bool dispatch_pending_ = false;  ///< delayed dispatching flag

    ThreadId next_id_ = 1;
    std::vector<ThreadId> free_ids_;  ///< ids of deleted threads, reused LIFO
    std::uint64_t total_dispatches_ = 0;
    std::uint64_t total_preemptions_ = 0;
    std::uint64_t total_interrupts_ = 0;

    bool idle_ = true;
    sysc::Time idle_since_{};
    sysc::Time idle_accum_{};
};

}  // namespace rtk::sim
