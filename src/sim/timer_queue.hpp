// Binary min-heap timer queue keyed by (deadline, insertion order).
//
// Replaces the std::multimap timer queues of the kernel layers: schedule
// and pop are O(log n) on a flat vector (no per-entry node allocation),
// and the secondary insertion-order key reproduces the multimap's
// deterministic FIFO ordering among entries with equal deadlines exactly.
// Cancellation stays lazy: callers invalidate entries with their own
// sequence counters and drop stale ones at fire time, as before.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rtk::sim {

template <typename TimeT, typename PayloadT>
class TimerQueue {
public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /// Deadline of the earliest entry (valid only when !empty()).
    const TimeT& next_at() const { return heap_.front().at; }

    void schedule(TimeT at, PayloadT payload) {
        heap_.push_back(Node{std::move(at), next_order_++, std::move(payload)});
        sift_up(heap_.size() - 1);
    }

    /// Detach and return the earliest entry's payload.
    PayloadT pop() {
        Node top = std::move(heap_.front());
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        if (!heap_.empty()) {
            sift_down(0);
        }
        return std::move(top.payload);
    }

private:
    struct Node {
        TimeT at;
        std::uint64_t order;
        PayloadT payload;

        bool before(const Node& o) const {
            return at < o.at || (!(o.at < at) && order < o.order);
        }
    };

    void sift_up(std::size_t i) {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!heap_[i].before(heap_[parent])) {
                break;
            }
            std::swap(heap_[i], heap_[parent]);
            i = parent;
        }
    }

    void sift_down(std::size_t i) {
        for (;;) {
            std::size_t best = i;
            const std::size_t l = 2 * i + 1;
            const std::size_t r = 2 * i + 2;
            if (l < heap_.size() && heap_[l].before(heap_[best])) {
                best = l;
            }
            if (r < heap_.size() && heap_[r].before(heap_[best])) {
                best = r;
            }
            if (best == i) {
                return;
            }
            std::swap(heap_[i], heap_[best]);
            i = best;
        }
    }

    std::vector<Node> heap_;
    std::uint64_t next_order_ = 0;
};

}  // namespace rtk::sim
