#include "sim/scheduler.hpp"

#include <bit>
#include <string>

#include "sim/tthread.hpp"
#include "sysc/report.hpp"

namespace rtk::sim {

// ---- PriorityPreemptiveScheduler -------------------------------------------

std::size_t PriorityPreemptiveScheduler::bucket_of(Priority p) {
    if (p < 0 || p >= priority_levels) {
        sysc::report(sysc::Severity::fatal, "scheduler",
                     "task priority " + std::to_string(p) +
                         " outside the schedulable range [0, " +
                         std::to_string(priority_levels) + ")");
    }
    return static_cast<std::size_t>(p);
}

std::size_t PriorityPreemptiveScheduler::first_ready_bucket() const {
    for (std::size_t w = 0; w < words; ++w) {
        if (bitmap_[w] != 0) {
            return w * 64 + static_cast<std::size_t>(std::countr_zero(bitmap_[w]));
        }
    }
    return priority_levels;
}

void PriorityPreemptiveScheduler::make_ready(TThread& t) {
    const std::size_t b = bucket_of(t.priority());
    queues_[b].push_back(table_, t, static_cast<Priority>(b));
    bitmap_[b / 64] |= std::uint64_t{1} << (b % 64);
    ++count_;
}

void PriorityPreemptiveScheduler::remove(TThread& t) {
    const ReadyNode& n = t.ready_node();
    if (!n.linked) {
        return;  // not in the ready structure: no-op, as before
    }
    // Unlink from the bucket recorded at enqueue time -- the thread's
    // current priority may already have changed (priority_changed()
    // relies on exactly this).
    const std::size_t b = static_cast<std::size_t>(n.bucket);
    queues_[b].unlink(table_, t);
    if (queues_[b].empty()) {
        bitmap_[b / 64] &= ~(std::uint64_t{1} << (b % 64));
    }
    --count_;
}

TThread* PriorityPreemptiveScheduler::pick() {
    const std::size_t b = first_ready_bucket();
    if (b == priority_levels) {
        return nullptr;
    }
    TThread* t = queues_[b].pop_front(table_);
    if (queues_[b].empty()) {
        bitmap_[b / 64] &= ~(std::uint64_t{1} << (b % 64));
    }
    --count_;
    return t;
}

TThread* PriorityPreemptiveScheduler::peek() const {
    const std::size_t b = first_ready_bucket();
    return b == priority_levels ? nullptr : queues_[b].front(table_);
}

bool PriorityPreemptiveScheduler::should_preempt(const TThread& running) const {
    // Pure bitmap comparison: a linked thread always sits in the bucket
    // of its current priority (priority_changed() repositions on every
    // change), so the first occupied bucket IS the best ready priority --
    // no need to touch the thread behind it.
    return first_ready_bucket() < static_cast<std::size_t>(bucket_of(running.priority()));
}

void PriorityPreemptiveScheduler::priority_changed(TThread& t) {
    remove(t);
    // µ-ITRON chg_pri: the task is moved to the *end* of the ready queue
    // for its new priority.
    make_ready(t);
}

void PriorityPreemptiveScheduler::rotate(Priority prio) {
    if (prio < 0 || prio >= priority_levels) {
        return;  // nothing schedulable at that priority
    }
    queues_[static_cast<std::size_t>(prio)].rotate(table_);
}

std::vector<TThread*> PriorityPreemptiveScheduler::ready_snapshot() const {
    std::vector<TThread*> out;
    out.reserve(count_);
    for (std::size_t w = 0; w < words; ++w) {
        for (std::uint64_t bits = bitmap_[w]; bits != 0; bits &= bits - 1) {
            const std::size_t b =
                w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
            for (TThread* t = queues_[b].front(table_); t != nullptr;
                 t = ReadyList::next(table_, *t)) {
                out.push_back(t);
            }
        }
    }
    return out;
}

// ---- RoundRobinScheduler ----------------------------------------------------

void RoundRobinScheduler::make_ready(TThread& t) {
    queue_.push_back(table_, t, 0);
}

void RoundRobinScheduler::remove(TThread& t) {
    if (t.ready_node().linked) {
        queue_.unlink(table_, t);
    }
}

TThread* RoundRobinScheduler::pick() {
    return queue_.pop_front(table_);
}

TThread* RoundRobinScheduler::peek() const {
    return queue_.front(table_);
}

bool RoundRobinScheduler::should_preempt(const TThread&) const {
    return false;  // rotation is tick-driven, not readiness-driven
}

void RoundRobinScheduler::rotate(Priority) {
    // The policy has a single FIFO across all priorities, so tk_rot_rdq
    // rotates the whole queue (the RTK-Spec I slice rotation).
    queue_.rotate(table_);
}

std::vector<TThread*> RoundRobinScheduler::ready_snapshot() const {
    std::vector<TThread*> out;
    out.reserve(queue_.size());
    for (TThread* t = queue_.front(table_); t != nullptr;
         t = ReadyList::next(table_, *t)) {
        out.push_back(t);
    }
    return out;
}

}  // namespace rtk::sim
