#include "sim/scheduler.hpp"

#include <algorithm>
#include <cstddef>

#include "sim/tthread.hpp"
#include "sysc/report.hpp"

namespace rtk::sim {

// ---- PriorityPreemptiveScheduler -------------------------------------------

void PriorityPreemptiveScheduler::make_ready(TThread& t) {
    queues_[t.priority()].push_back(&t);
}

void PriorityPreemptiveScheduler::remove(TThread& t) {
    for (auto it = queues_.begin(); it != queues_.end();) {
        auto& q = it->second;
        q.erase(std::remove(q.begin(), q.end(), &t), q.end());
        it = q.empty() ? queues_.erase(it) : std::next(it);
    }
}

TThread* PriorityPreemptiveScheduler::pick() {
    if (queues_.empty()) {
        return nullptr;
    }
    auto it = queues_.begin();  // lowest key == highest priority
    TThread* t = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) {
        queues_.erase(it);
    }
    return t;
}

TThread* PriorityPreemptiveScheduler::peek() const {
    return queues_.empty() ? nullptr : queues_.begin()->second.front();
}

bool PriorityPreemptiveScheduler::should_preempt(const TThread& running) const {
    const TThread* best = peek();
    return best != nullptr && best->priority() < running.priority();
}

void PriorityPreemptiveScheduler::priority_changed(TThread& t) {
    remove(t);
    // µ-ITRON chg_pri: the task is moved to the *end* of the ready queue
    // for its new priority.
    make_ready(t);
}

void PriorityPreemptiveScheduler::rotate(Priority prio) {
    auto it = queues_.find(prio);
    if (it == queues_.end() || it->second.size() < 2) {
        return;
    }
    it->second.push_back(it->second.front());
    it->second.pop_front();
}

std::vector<TThread*> PriorityPreemptiveScheduler::ready_snapshot() const {
    std::vector<TThread*> out;
    for (const auto& [prio, q] : queues_) {
        out.insert(out.end(), q.begin(), q.end());
    }
    return out;
}

std::size_t PriorityPreemptiveScheduler::ready_count() const {
    std::size_t n = 0;
    for (const auto& [prio, q] : queues_) {
        n += q.size();
    }
    return n;
}

// ---- RoundRobinScheduler ----------------------------------------------------

void RoundRobinScheduler::make_ready(TThread& t) {
    queue_.push_back(&t);
}

void RoundRobinScheduler::remove(TThread& t) {
    queue_.erase(std::remove(queue_.begin(), queue_.end(), &t), queue_.end());
}

TThread* RoundRobinScheduler::pick() {
    if (queue_.empty()) {
        return nullptr;
    }
    TThread* t = queue_.front();
    queue_.pop_front();
    return t;
}

TThread* RoundRobinScheduler::peek() const {
    return queue_.empty() ? nullptr : queue_.front();
}

bool RoundRobinScheduler::should_preempt(const TThread&) const {
    return false;  // rotation is tick-driven, not readiness-driven
}

std::vector<TThread*> RoundRobinScheduler::ready_snapshot() const {
    return {queue_.begin(), queue_.end()};
}

std::size_t RoundRobinScheduler::ready_count() const {
    return queue_.size();
}

}  // namespace rtk::sim
