// Intrusive ready-queue machinery of the external schedulers.
//
// Real kernels keep the scheduling fast path allocation-free by threading
// the ready lists through the task control blocks themselves (eChronos,
// µC/OS-II); the same shape is used here: every TThread embeds one
// ReadyNode, and a ReadyList is a FIFO of TThreads linked through that
// node. All operations are O(1).
//
// Lifetime rules (enforced by SIM_API):
//   - A TThread is linked into at most one ReadyList at a time -- the
//     thread's state is READY exactly while it is linked.
//   - The owning Scheduler must unlink the thread before it blocks,
//     suspends or terminates; SIM_DeleteThread requires DORMANT, so a
//     TThread is never destroyed while linked.
//   - ReadyNode fields are owned by the Scheduler; no other layer may
//     touch them.
#pragma once

#include <cstddef>

#include "sim/types.hpp"

namespace rtk::sim {

class TThread;

/// Intrusive doubly-linked ready-queue hook embedded in every TThread.
struct ReadyNode {
    TThread* prev = nullptr;
    TThread* next = nullptr;
    /// Priority bucket the thread was enqueued under (the scheduler keys
    /// its removal on this, not on the thread's -- possibly already
    /// changed -- current priority). Valid only while linked.
    Priority bucket = 0;
    bool linked = false;
};

/// Intrusive FIFO of TThreads threaded through TThread::ready_node().
/// push/pop/unlink/rotate are O(1); no memory is allocated.
class ReadyList {
public:
    bool empty() const { return head_ == nullptr; }
    std::size_t size() const { return size_; }
    TThread* front() const { return head_; }

    /// Append `t` and stamp its node with `bucket`. Fatal if `t` is
    /// already linked (single-list invariant violation).
    void push_back(TThread& t, Priority bucket);

    /// Unlink `t` from this list (caller checked membership via the node).
    void unlink(TThread& t);

    /// Detach and return the head (nullptr when empty).
    TThread* pop_front();

    /// Move the head to the tail (µ-ITRON tk_rot_rdq); no-op below 2.
    void rotate();

    /// Successor of `t` in list order (iteration helper for snapshots).
    static TThread* next(const TThread& t);

private:
    TThread* head_ = nullptr;
    TThread* tail_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace rtk::sim
