// Ready-queue machinery of the external schedulers.
//
// Real kernels keep the scheduling fast path allocation-free by threading
// the ready lists through the task control blocks themselves (eChronos,
// µC/OS-II). An earlier revision did exactly that -- and profiling the
// scheduler bench showed the cost: at thousands of tasks every link/unlink
// chases prev/next pointers through TThread objects scattered across the
// heap, so each O(1) queue operation pays several cache misses. The
// linkage now lives in a scheduler-owned ReadyTable: one dense vector of
// 16-byte slots indexed by ThreadId (SIM_API recycles ids, so the table
// stays as small as the thread high-water mark and hot in L1/L2). A
// ReadyList is a FIFO of slot indices; all operations are O(1) and touch
// only the table, never the TThreads.
//
// Each TThread still embeds a small ReadyNode mirror (bucket + linked)
// so membership tests and bucket-keyed removal need no table lookup.
//
// Lifetime rules (enforced by SIM_API):
//   - A TThread is linked into at most one ReadyList at a time -- the
//     thread's state is READY exactly while it is linked.
//   - The owning Scheduler must unlink the thread before it blocks,
//     suspends or terminates; SIM_DeleteThread requires DORMANT, so a
//     TThread is never destroyed while linked.
//   - ReadyNode fields and ReadyTable slots are owned by the Scheduler;
//     no other layer may touch them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace rtk::sim {

class TThread;

/// Per-thread ready-state mirror embedded in every TThread: the priority
/// bucket the thread was enqueued under (the scheduler keys its removal
/// on this, not on the thread's -- possibly already changed -- current
/// priority) and the linked flag. Valid only while linked.
struct ReadyNode {
    Priority bucket = 0;
    bool linked = false;
};

/// Dense side table holding the FIFO linkage of every READY thread,
/// indexed by ThreadId (slot 0 unused; ids start at 1). Grows lazily to
/// the highest id seen and is bounded by SIM_API's id recycling.
class ReadyTable {
public:
    struct Slot {
        TThread* thread = nullptr;
        std::int32_t prev = -1;
        std::int32_t next = -1;
    };

    Slot& operator[](std::int32_t id) { return slots_[static_cast<std::size_t>(id)]; }
    const Slot& operator[](std::int32_t id) const {
        return slots_[static_cast<std::size_t>(id)];
    }

    /// Grow the table to cover `id` (called on enqueue).
    void ensure(ThreadId id) {
        if (static_cast<std::size_t>(id) >= slots_.size()) {
            slots_.resize(static_cast<std::size_t>(id) + 1);
        }
    }

private:
    std::vector<Slot> slots_;
};

/// FIFO of READY threads linked through ReadyTable slots.
/// push/pop/unlink/rotate are O(1); no memory is allocated (the table
/// grows only when a new highest ThreadId first becomes ready).
class ReadyList {
public:
    bool empty() const { return head_ < 0; }
    std::size_t size() const { return size_; }
    TThread* front(const ReadyTable& tab) const {
        return head_ < 0 ? nullptr : tab[head_].thread;
    }

    /// Append `t` and stamp its node with `bucket`. Fatal if `t` is
    /// already linked (single-list invariant violation).
    void push_back(ReadyTable& tab, TThread& t, Priority bucket);

    /// Unlink `t` from this list (caller checked membership via the node).
    void unlink(ReadyTable& tab, TThread& t);

    /// Detach and return the head (nullptr when empty).
    TThread* pop_front(ReadyTable& tab);

    /// Move the head to the tail (µ-ITRON tk_rot_rdq); no-op below 2.
    void rotate(ReadyTable& tab);

    /// Successor of `t` in list order (iteration helper for snapshots).
    static TThread* next(const ReadyTable& tab, const TThread& t);

private:
    std::int32_t head_ = -1;
    std::int32_t tail_ = -1;
    std::size_t size_ = 0;
};

}  // namespace rtk::sim
