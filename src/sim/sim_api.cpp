#include "sim/sim_api.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>

#include "sysc/kernel.hpp"
#include "sysc/report.hpp"

namespace rtk::sim {

using sysc::Severity;
using sysc::Time;

Time SimApi::now_() const {
    return kernel_->now();
}

SimApi::SimApi(sysc::Kernel& kernel, Scheduler& scheduler)
    : SimApi(kernel, scheduler, Config{}) {}

SimApi::SimApi(sysc::Kernel& kernel, Scheduler& scheduler, Config config)
    : kernel_(&kernel), scheduler_(&scheduler), config_(config) {
    gantt_.set_enabled(config_.record_gantt);
}

SimApi::~SimApi() {
    // Unwind all thread coroutines now, while the TThread objects (which
    // the suspended stacks reference) are still alive.
    for (auto& t : owned_) {
        if (t->proc_ != nullptr) {
            const_cast<sysc::Process*>(t->proc_)->kill();
        }
    }
}

// ---- creation / registry ----------------------------------------------------

TThread& SimApi::SIM_CreateThread(std::string name, ThreadKind kind, Priority prio,
                                  TThread::Entry entry) {
    // Reuse the id of the most recently deleted thread before extending
    // the id space: the dense tables keyed by ThreadId (SIM_HashTB, the
    // scheduler's ready table) stay bounded by the live-thread high-water
    // mark under create/delete churn.
    ThreadId id;
    if (!free_ids_.empty()) {
        id = free_ids_.back();
        free_ids_.pop_back();
    } else {
        id = next_id_++;
    }
    auto thread = std::unique_ptr<TThread>(
        new TThread(*this, id, std::move(name), kind, prio, std::move(entry)));
    TThread& ref = *thread;
    owned_.push_back(std::move(thread));
    hashtb_.insert(ref.id_, ref);
    ref.proc_ = &kernel_->spawn("tthread." + ref.name_, [&ref] { ref.run_body(); });
    by_process_[ref.proc_] = &ref;
    return ref;
}

void SimApi::SIM_DeleteThread(TThread& t) {
    if (t.state_ != ThreadState::dormant) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_DeleteThread('" + t.name_ + "'): thread is not DORMANT");
    }
    hashtb_.erase(t.id_);
    free_ids_.push_back(t.id_);
    by_process_.erase(t.proc_);
    const_cast<sysc::Process*>(t.proc_)->kill();
    owned_.erase(std::remove_if(owned_.begin(), owned_.end(),
                                [&t](const auto& p) { return p.get() == &t; }),
                 owned_.end());
}

// ---- observer registry -------------------------------------------------------

void SimApi::add_observer(SimObserver* obs) {
    if (obs == nullptr) {
        return;
    }
    if (std::find(observers_.begin(), observers_.end(), obs) != observers_.end()) {
        return;
    }
    observers_.push_back(obs);
}

void SimApi::remove_observer(SimObserver* obs) {
    if (obs == nullptr) {
        return;
    }
    auto it = std::find(observers_.begin(), observers_.end(), obs);
    if (it == observers_.end()) {
        return;
    }
    // Null the slot rather than erasing: a removal from inside an observer
    // callback must not shift the fan-out loop's indices.
    *it = nullptr;
    observers_need_compact_ = true;
    if (observer_dispatch_depth_ == 0) {
        compact_observers();
    }
}

std::size_t SimApi::observer_count() const {
    std::size_t n = 0;
    for (const SimObserver* obs : observers_) {
        if (obs != nullptr) {
            ++n;
        }
    }
    return n;
}

void SimApi::compact_observers() {
    observers_.erase(std::remove(observers_.begin(), observers_.end(), nullptr),
                     observers_.end());
    observers_need_compact_ = false;
}

// ---- state helpers -----------------------------------------------------------

void SimApi::set_state(TThread& t, ThreadState s) {
    const ThreadState from = t.state_;
    t.state_ = s;
    hashtb_.update(t.id_, s, now_());
    if (from != s) {
        emit([&](SimObserver& o) { o.on_state_change(t, from, s, now_()); });
    }
}

void SimApi::account_idle_end() {
    if (idle_) {
        idle_accum_ += now_() - idle_since_;
        idle_ = false;
    }
}

Time SimApi::idle_time() const {
    Time total = idle_accum_;
    if (idle_) {
        total += now_() - idle_since_;
    }
    return total;
}

TThread& SimApi::self() {
    TThread* t = self_or_null();
    if (t == nullptr) {
        sysc::report(Severity::fatal, "sim_api",
                     "caller is not a registered T-THREAD");
    }
    return *t;
}

TThread* SimApi::self_or_null() {
    const sysc::Process* p = kernel_->running_process();
    auto it = by_process_.find(p);
    return it == by_process_.end() ? nullptr : it->second;
}

// ---- grant / dispatch machinery ----------------------------------------------

void SimApi::grant(TThread& t, RunEvent reason) {
    account_idle_end();
    t.wake_reason_ = reason;
    t.granted_ = true;
    t.grant_ev_.notify();
}

void SimApi::dispatch() {
    if (dispatch_disabled_ || in_interrupt()) {
        dispatch_pending_ = true;
        return;
    }
    TThread* next = scheduler_->pick();
    if (next == nullptr) {
        running_task_ = nullptr;
        executing_ = nullptr;
        // The CPU idles: pending handlers blocked by the previous task's
        // service atomicity may run now.
        if (!pending_isrs_.empty()) {
            TThread* isr = pop_best_pending_isr();
            gantt_.add_marker(GanttRecorder::MarkerKind::interrupt_enter, isr->id_,
                              now_());
            launch_isr(*isr);
            return;
        }
        if (!idle_) {
            idle_ = true;
            idle_since_ = now_();
            emit([&](SimObserver& o) { o.on_idle(now_()); });
        }
        return;
    }
    running_task_ = next;
    executing_ = next;
    ++total_dispatches_;
    ++next->dispatches_;
    gantt_.add_marker(GanttRecorder::MarkerKind::dispatch, next->id_, now_());
    set_state(*next, ThreadState::running);
    emit([&](SimObserver& o) { o.on_dispatch(*next, now_()); });
    grant(*next, next->wake_reason_);
}

void SimApi::on_thread_ready(TThread& t) {
    (void)t;
    if (in_interrupt()) {
        if (config_.delayed_dispatching) {
            dispatch_pending_ = true;
        } else if (running_task_ != nullptr &&
                   scheduler_->should_preempt(*running_task_)) {
            // Ablation mode: no dedicated delayed-dispatch logic; rely on
            // the interrupted task's own next preemption point.
            running_task_->preempt_requested_ = true;
        } else if (running_task_ == nullptr) {
            dispatch_pending_ = true;  // idle CPU below the handler
        }
        return;
    }
    if (running_task_ != nullptr) {
        if (scheduler_->should_preempt(*running_task_)) {
            SIM_RequestPreempt(*running_task_);
        }
        return;
    }
    if (executing_ == nullptr) {
        dispatch();  // CPU idle: dispatch immediately
    }
}

void SimApi::SIM_RequestPreempt(TThread& t) {
    t.preempt_requested_ = true;
}

void SimApi::yield_preempted(TThread& t) {
    ++t.preemptions_;
    ++total_preemptions_;
    gantt_.add_marker(GanttRecorder::MarkerKind::preemption, t.id_, now_());
    emit([&](SimObserver& o) { o.on_preemption(t, now_()); });
    if (t.suspend_pending_) {
        t.suspend_pending_ = false;
        t.wake_reason_ = RunEvent::return_from_preemption;
        set_state(t, ThreadState::suspended);
    } else {
        t.wake_reason_ = RunEvent::return_from_preemption;
        set_state(t, ThreadState::ready);
        scheduler_->make_ready(t);
    }
    running_task_ = nullptr;
    executing_ = nullptr;
    dispatch();
    t.await_grant();
}

bool SimApi::interrupts_deliverable_to(const TThread& t) const {
    if (pending_isrs_.empty()) {
        return false;
    }
    if (config_.service_call_atomicity && t.service_depth_ > 0) {
        return false;
    }
    if (t.is_handler()) {
        return config_.nested_interrupts &&
               pending_isrs_.front()->priority() < t.priority();
    }
    return true;
}

bool SimApi::preemption_allowed_for(const TThread& t) const {
    if (t.is_handler()) {
        return false;  // handlers run to completion
    }
    if (dispatch_disabled_) {
        return false;
    }
    if (config_.service_call_atomicity && t.service_depth_ > 0) {
        return false;
    }
    if (in_interrupt()) {
        return false;  // handled by delayed dispatching at handler return
    }
    return true;
}

void SimApi::check_preemption_point(TThread& t) {
    // Interrupts outrank task preemption: deliver every pending handler
    // that may run in this frame, then consider preemption/suspension.
    while (interrupts_deliverable_to(t)) {
        t.interrupt_requested_ = false;
        TThread* isr = pop_best_pending_isr();
        ++t.times_interrupted_;
        stack_.push(t);
        gantt_.add_marker(GanttRecorder::MarkerKind::interrupt_enter, isr->id_,
                          now_());
        launch_isr(*isr);
        t.await_grant();  // returns with Ei once the handler chain is done
    }
    if ((t.preempt_requested_ || t.suspend_pending_) && preemption_allowed_for(t)) {
        t.preempt_requested_ = false;
        yield_preempted(t);
    }
}

// ---- interrupt machinery -------------------------------------------------------

TThread* SimApi::pop_best_pending_isr() {
    TThread* isr = pending_isrs_.front();
    pending_isrs_.pop_front();
    return isr;
}

void SimApi::launch_isr(TThread& isr) {
    executing_ = &isr;
    ++total_interrupts_;
    ++isr.dispatches_;
    set_state(isr, ThreadState::running);
    emit([&](SimObserver& o) { o.on_interrupt_enter(isr, now_()); });
    grant(isr, RunEvent::startup);
}

void SimApi::SIM_RaiseInterrupt(TThread& isr) {
    if (!isr.is_handler()) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_RaiseInterrupt('" + isr.name_ + "'): not a handler thread");
    }
    // Fault latches (see SIM_FaultDropInterrupts / SIM_FaultDuplicateInterrupt):
    // a dropped edge vanishes before the pending machinery ever sees it; a
    // duplicated edge is processed as two back-to-back raises, so the second
    // one latches through the normal pending-activation path.
    if (fault_drop_irqs_ > 0) {
        --fault_drop_irqs_;
        ++fault_irqs_dropped_;
        return;
    }
    if (fault_dup_irq_) {
        fault_dup_irq_ = false;
        ++fault_irqs_duplicated_;
        raise_interrupt_edge(isr);
    }
    raise_interrupt_edge(isr);
}

void SimApi::raise_interrupt_edge(TThread& isr) {
    const bool already_queued =
        std::find(pending_isrs_.begin(), pending_isrs_.end(), &isr) !=
        pending_isrs_.end();
    if (isr.state_ != ThreadState::dormant || already_queued) {
        // Activation while still active/pending: latch one, count overruns
        // beyond that (a real interrupt controller's pending bit).
        if (isr.pending_activation_) {
            ++isr.activation_overruns_;
        } else {
            isr.pending_activation_ = true;
        }
        return;
    }
    // Priority-ordered insertion (stable for equal priorities).
    auto pos = std::find_if(
        pending_isrs_.begin(), pending_isrs_.end(),
        [&isr](const TThread* q) { return isr.priority() < q->priority(); });
    pending_isrs_.insert(pos, &isr);
    deliver_pending_interrupts();
}

void SimApi::deliver_pending_interrupts() {
    if (pending_isrs_.empty()) {
        return;
    }
    if (executing_ == nullptr) {
        // Idle CPU: the handler starts at once; nothing to push (the frame
        // below the handler is "idle").
        TThread* isr = pop_best_pending_isr();
        gantt_.add_marker(GanttRecorder::MarkerKind::interrupt_enter, isr->id_,
                          now_());
        launch_isr(*isr);
        return;
    }
    // Deliverability is evaluated at the executing thread's next
    // preemption point (paper §4).
    executing_->interrupt_requested_ = true;
}

void SimApi::on_handler_exited(TThread& h) {
    set_state(h, ThreadState::dormant);
    h.token_.complete_cycle();
    gantt_.add_marker(GanttRecorder::MarkerKind::interrupt_return, h.id_, now_());
    emit([&](SimObserver& o) { o.on_interrupt_return(h, now_()); });
    executing_ = nullptr;
    if (h.pending_activation_) {
        h.pending_activation_ = false;
        auto pos = std::find_if(
            pending_isrs_.begin(), pending_isrs_.end(),
            [&h](const TThread* q) { return h.priority() < q->priority(); });
        pending_isrs_.insert(pos, &h);
    }
    // Tail-chain pending handlers allowed to run at this level.
    if (!pending_isrs_.empty()) {
        TThread* below = stack_.top();
        const bool can_chain =
            below == nullptr || !below->is_handler() ||
            (config_.nested_interrupts &&
             pending_isrs_.front()->priority() < below->priority());
        if (can_chain) {
            TThread* isr = pop_best_pending_isr();
            gantt_.add_marker(GanttRecorder::MarkerKind::interrupt_enter, isr->id_,
                              now_());
            launch_isr(*isr);
            return;
        }
    }
    if (!stack_.empty()) {
        TThread& back = stack_.pop();
        if (back.state_ == ThreadState::dormant) {
            // Interrupted frame was terminated while we ran.
            if (running_task_ == &back) {
                running_task_ = nullptr;
            }
            dispatch();
            return;
        }
        const bool outermost_return = stack_.empty() && !back.is_handler();
        if (outermost_return && dispatch_pending_ && !dispatch_disabled_) {
            dispatch_pending_ = false;
            if (scheduler_->should_preempt(back)) {
                // Delayed dispatching: the postponed preemption fires now.
                ++back.preemptions_;
                ++total_preemptions_;
                gantt_.add_marker(GanttRecorder::MarkerKind::preemption, back.id_,
                                  now_());
                emit([&](SimObserver& o) { o.on_preemption(back, now_()); });
                back.wake_reason_ = RunEvent::return_from_preemption;
                set_state(back, ThreadState::ready);
                scheduler_->make_ready(back);
                running_task_ = nullptr;
                dispatch();
                return;
            }
        }
        executing_ = &back;
        grant(back, RunEvent::return_from_interrupt);
        return;
    }
    // The handler ran over an idle CPU.
    if (dispatch_pending_ && !dispatch_disabled_) {
        dispatch_pending_ = false;
        dispatch();
        return;
    }
    if (!idle_) {
        idle_ = true;
        idle_since_ = now_();
        emit([&](SimObserver& o) { o.on_idle(now_()); });
    }
}

// ---- activation / termination ---------------------------------------------------

void SimApi::SIM_StartThread(TThread& t) {
    if (t.is_handler()) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_StartThread('" + t.name_ +
                         "'): handlers are activated via SIM_RaiseInterrupt");
    }
    if (t.state_ != ThreadState::dormant) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_StartThread('" + t.name_ + "'): thread is not DORMANT");
    }
    t.wake_reason_ = RunEvent::startup;
    set_state(t, ThreadState::ready);
    scheduler_->make_ready(t);
    on_thread_ready(t);
}

void SimApi::SIM_Exit() {
    throw ThreadCycleExit{};
}

void SimApi::on_thread_exited(TThread& t) {
    set_state(t, ThreadState::dormant);
    t.token_.complete_cycle();
    gantt_.add_marker(GanttRecorder::MarkerKind::exit, t.id_, now_());
    t.preempt_requested_ = false;
    t.suspend_pending_ = false;
    t.suspend_count_ = 0;
    t.service_depth_ = 0;
    if (running_task_ == &t) {
        running_task_ = nullptr;
    }
    executing_ = nullptr;
    dispatch();
}

void SimApi::SIM_Terminate(TThread& t) {
    if (&t == self_or_null()) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_Terminate: a thread must end itself with SIM_Exit");
    }
    if (t.is_handler() && t.state_ != ThreadState::dormant) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_Terminate('" + t.name_ + "'): handler is active");
    }
    if (t.state_ == ThreadState::dormant) {
        sysc::report(Severity::warning, "sim_api",
                     "SIM_Terminate('" + t.name_ + "'): already DORMANT");
        return;
    }
    scheduler_->remove(t);
    const bool was_executing = (executing_ == &t);
    if (running_task_ == &t) {
        running_task_ = nullptr;
    }
    if (was_executing) {
        executing_ = nullptr;
    }
    set_state(t, ThreadState::dormant);
    t.preempt_requested_ = false;
    t.interrupt_requested_ = false;
    t.suspend_pending_ = false;
    t.suspend_count_ = 0;
    t.service_depth_ = 0;
    t.granted_ = false;
    t.current_priority_ = t.base_priority_;
    // Unwind the coroutine stack (RAII) and arm a fresh firing cycle.
    by_process_.erase(t.proc_);
    const_cast<sysc::Process*>(t.proc_)->kill();
    t.proc_ = &kernel_->spawn("tthread." + t.name_, [&t] { t.run_body(); });
    by_process_[t.proc_] = &t;
    if (was_executing) {
        dispatch();
    }
}

// ---- sleep / wakeup ---------------------------------------------------------------

void SimApi::SIM_Sleep() {
    TThread& t = self();
    if (t.is_handler()) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_Sleep: handler '" + t.name_ + "' cannot block");
    }
    if (executing_ != &t) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_Sleep: '" + t.name_ + "' is not the executing thread");
    }
    gantt_.add_marker(GanttRecorder::MarkerKind::sleep, t.id_, now_());
    t.wake_reason_ = RunEvent::sleep_event;
    if (t.suspend_pending_) {
        t.suspend_pending_ = false;
        set_state(t, ThreadState::waiting_suspended);
    } else {
        set_state(t, ThreadState::waiting);
    }
    running_task_ = nullptr;
    executing_ = nullptr;
    dispatch();
    t.await_grant();
    check_preemption_point(t);
}

void SimApi::SIM_WakeUp(TThread& t) {
    gantt_.add_marker(GanttRecorder::MarkerKind::wakeup, t.id_, now_());
    emit([&](SimObserver& o) { o.on_wakeup(t, executing_, now_()); });
    // "The waiting task will be notified later, upon the arrival of its
    // event" (paper §4): expose the Ew arrival for observers/waveforms.
    t.sleep_ev_.notify();
    if (t.state_ == ThreadState::waiting) {
        t.wake_reason_ = RunEvent::sleep_event;
        set_state(t, ThreadState::ready);
        scheduler_->make_ready(t);
        on_thread_ready(t);
    } else if (t.state_ == ThreadState::waiting_suspended) {
        t.wake_reason_ = RunEvent::sleep_event;
        set_state(t, ThreadState::suspended);
    } else {
        sysc::report(Severity::warning, "sim_api",
                     "SIM_WakeUp('" + t.name_ + "'): thread is not WAITING");
    }
}

// ---- forced suspension ---------------------------------------------------------------

void SimApi::SIM_Suspend(TThread& t) {
    switch (t.state_) {
        case ThreadState::ready:
            ++t.suspend_count_;
            scheduler_->remove(t);
            set_state(t, ThreadState::suspended);
            break;
        case ThreadState::waiting:
            ++t.suspend_count_;
            set_state(t, ThreadState::waiting_suspended);
            break;
        case ThreadState::suspended:
        case ThreadState::waiting_suspended:
            ++t.suspend_count_;
            break;
        case ThreadState::running:
            if (&t == self_or_null()) {
                sysc::report(Severity::fatal, "sim_api",
                             "SIM_Suspend: a thread cannot suspend itself");
            }
            ++t.suspend_count_;
            t.suspend_pending_ = true;  // honored at the next preemption point
            break;
        case ThreadState::dormant:
        case ThreadState::non_existent:
            sysc::report(Severity::fatal, "sim_api",
                         "SIM_Suspend('" + t.name_ + "'): thread is DORMANT");
    }
}

void SimApi::SIM_Resume(TThread& t) {
    if (t.suspend_count_ == 0) {
        sysc::report(Severity::warning, "sim_api",
                     "SIM_Resume('" + t.name_ + "'): thread is not suspended");
        return;
    }
    --t.suspend_count_;
    if (t.suspend_count_ != 0) {
        return;
    }
    if (t.suspend_pending_) {
        t.suspend_pending_ = false;  // resumed before the suspension landed
        return;
    }
    if (t.state_ == ThreadState::suspended) {
        set_state(t, ThreadState::ready);
        scheduler_->make_ready(t);
        on_thread_ready(t);
    } else if (t.state_ == ThreadState::waiting_suspended) {
        set_state(t, ThreadState::waiting);
    }
}

// ---- priority ---------------------------------------------------------------------------

void SimApi::SIM_ChangePriority(TThread& t, Priority prio) {
    t.base_priority_ = prio;
    SIM_SetCurrentPriority(t, prio);
}

void SimApi::SIM_SetCurrentPriority(TThread& t, Priority prio) {
    if (t.current_priority_ == prio) {
        return;
    }
    t.current_priority_ = prio;
    if (t.state_ == ThreadState::ready) {
        scheduler_->priority_changed(t);
    }
    if (running_task_ != nullptr && scheduler_->should_preempt(*running_task_)) {
        SIM_RequestPreempt(*running_task_);
    }
}

void SimApi::SIM_RotateReadyQueue(Priority prio) {
    scheduler_->rotate(prio);
}

// ---- time/energy consumption ------------------------------------------------------------

void SimApi::consume_slice(TThread& t, ExecContext ctx, Time dur, double energy_nj) {
    const Time end = now_();
    t.token_.consume(ctx, dur, energy_nj);
    gantt_.add_slice(t.id_, t.name_, ctx, end - dur, end, energy_nj);
}

void SimApi::SIM_Wait(Time dur, ExecContext ctx) {
    const CostModel& m = costs_.at(ctx);
    const double rate_nj_per_ps =
        m.energy_per_unit_nj / static_cast<double>(m.time_per_unit.picoseconds());
    SIM_Wait(dur, rate_nj_per_ps * static_cast<double>(dur.picoseconds()), ctx);
}

void SimApi::SIM_WaitUnits(std::uint64_t units, ExecContext ctx) {
    const CostModel& m = costs_.at(ctx);
    SIM_Wait(m.time(units), m.energy_nj(units), ctx);
}

void SimApi::SIM_Wait(Time dur, double energy_nj, ExecContext ctx) {
    TThread& t = self();
    if (executing_ != &t) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_Wait: '" + t.name_ + "' does not hold the CPU");
    }
    if (dur.is_zero()) {
        check_preemption_point(t);
        return;
    }
    const Time q = config_.quantum;
    const double rate = energy_nj / static_cast<double>(dur.picoseconds());
    Time remaining = dur;
    bool continued = false;
    while (!remaining.is_zero()) {
        if (continued) {
            // Crossed a preemption point and kept the CPU: Ec transition.
            t.token_.fire(RunEvent::continue_run);
        }
        const Time start = now_();
        // Preemption points fall on the global quantum grid ("system clock
        // simulation granularity", paper §4).
        Time slice = remaining;
        if (!q.is_zero()) {
            const Time boundary = q * (start / q + 1);
            slice = std::min(remaining, boundary - start);
        }
        sysc::wait(slice);
        consume_slice(t, ctx, slice, rate * static_cast<double>(slice.picoseconds()));
        remaining -= slice;
        continued = true;
        check_preemption_point(t);
    }
}

void SimApi::SIM_PreemptionPoint() {
    check_preemption_point(self());
}

// ---- service-call atomicity ----------------------------------------------------------------

void SimApi::SIM_EnterService() {
    TThread& t = self();
    ++t.service_depth_;
    if (t.service_depth_ == 1) {
        emit([&](SimObserver& o) { o.on_service_enter(t, now_()); });
    }
}

void SimApi::SIM_ExitService() {
    TThread& t = self();
    if (t.service_depth_ == 0) {
        sysc::report(Severity::fatal, "sim_api",
                     "SIM_ExitService without matching SIM_EnterService");
    }
    --t.service_depth_;
    if (t.service_depth_ == 0) {
        // The atomic section is over before the deferred preemption check
        // runs, so observers see exit -> preemption in causal order.
        emit([&](SimObserver& o) { o.on_service_exit(t, now_()); });
        // Deferred preemptions/interrupts land at the service boundary.
        check_preemption_point(t);
    }
}

void SimApi::SIM_AbandonService(TThread& t) {
    if (t.service_depth_ > 0) {
        --t.service_depth_;
        if (t.service_depth_ == 0) {
            emit([&](SimObserver& o) { o.on_service_exit(t, now_()); });
        }
    }
}

SimApi::ServiceGuard::~ServiceGuard() noexcept(false) {
    if (thread_ == nullptr) {
        return;
    }
    if (std::uncaught_exceptions() > 0) {
        api_.SIM_AbandonService(*thread_);  // unwinding: no preemption checks
    } else {
        api_.SIM_ExitService();
    }
}

// ---- dispatch control ------------------------------------------------------------------------

void SimApi::SIM_DisableDispatch() {
    dispatch_disabled_ = true;
}

void SimApi::SIM_EnableDispatch() {
    if (!dispatch_disabled_) {
        return;
    }
    dispatch_disabled_ = false;
    if (dispatch_pending_ && !in_interrupt()) {
        dispatch_pending_ = false;
        if (running_task_ == nullptr && executing_ == nullptr) {
            dispatch();
        } else if (running_task_ != nullptr &&
                   scheduler_->should_preempt(*running_task_)) {
            SIM_RequestPreempt(*running_task_);
        }
    }
    // µ-ITRON: enabling dispatch is itself a dispatch point -- a deferred
    // preemption of the *calling* task fires immediately (subject to the
    // usual service-atomicity deferral when called from a service call).
    TThread* self = self_or_null();
    if (self != nullptr && self == executing_ &&
        (self->preempt_requested_ || self->suspend_pending_ ||
         !pending_isrs_.empty())) {
        check_preemption_point(*self);
    }
}

}  // namespace rtk::sim
