#include "sim/gantt.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>

namespace rtk::sim {

void GanttRecorder::add_slice(ThreadId tid, const std::string& name, ExecContext ctx,
                              sysc::Time start, sysc::Time end, double energy_nj) {
    if (!enabled_ || end <= start) {
        return;
    }
    if (!segments_.empty()) {
        Segment& last = segments_.back();
        if (last.tid == tid && last.ctx == ctx && last.end == start) {
            last.end = end;
            last.energy_nj += energy_nj;
            return;
        }
    }
    segments_.push_back({tid, name, ctx, start, end, energy_nj});
}

void GanttRecorder::add_marker(MarkerKind kind, ThreadId tid, sysc::Time at) {
    if (!enabled_) {
        return;
    }
    markers_.push_back({kind, tid, at});
}

std::uint64_t GanttRecorder::marker_count(MarkerKind k) const {
    std::uint64_t n = 0;
    for (const auto& m : markers_) {
        if (m.kind == k) {
            ++n;
        }
    }
    return n;
}

sysc::Time GanttRecorder::busy_time(ThreadId tid) const {
    sysc::Time total{};
    for (const auto& s : segments_) {
        if (s.tid == tid) {
            total += s.end - s.start;
        }
    }
    return total;
}

sysc::Time GanttRecorder::total_busy_time() const {
    sysc::Time total{};
    for (const auto& s : segments_) {
        total += s.end - s.start;
    }
    return total;
}

std::string GanttRecorder::render_ascii(sysc::Time from, sysc::Time to,
                                        sysc::Time resolution) const {
    if (to <= from || resolution.is_zero()) {
        return {};
    }
    const std::size_t cols =
        static_cast<std::size_t>((to - from + resolution - sysc::Time::ps(1)) / resolution);

    // Collect rows in first-seen order, keyed by thread id.
    std::map<ThreadId, std::pair<std::string, std::string>> rows;  // tid -> (name, cells)
    std::size_t name_width = 8;
    for (const auto& s : segments_) {
        if (s.end <= from || s.start >= to) {
            continue;
        }
        auto [it, fresh] = rows.try_emplace(s.tid, s.thread_name, std::string(cols, '.'));
        if (fresh) {
            name_width = std::max(name_width, s.thread_name.size());
        }
        auto& cells = it->second.second;
        const sysc::Time clipped_start = std::max(s.start, from);
        const sysc::Time clipped_end = std::min(s.end, to);
        std::size_t c0 = (clipped_start - from) / resolution;
        std::size_t c1 = (clipped_end - from + resolution - sysc::Time::ps(1)) / resolution;
        c1 = std::min(c1, cols);
        for (std::size_t c = c0; c < c1; ++c) {
            cells[c] = gantt_glyph(s.ctx);
        }
    }

    std::ostringstream out;
    out << "time: " << from.to_string() << " .. " << to.to_string()
        << "  (1 col = " << resolution.to_string() << ")\n";
    for (const auto& [tid, row] : rows) {
        out << row.first;
        out << std::string(name_width + 1 - std::min(name_width, row.first.size()), ' ');
        out << '|' << row.second << "|\n";
    }
    return out.str();
}

std::string GanttRecorder::to_csv() const {
    std::ostringstream out;
    out << "tid,name,context,start_ps,end_ps,energy_nj\n";
    for (const auto& s : segments_) {
        out << s.tid << ',' << s.thread_name << ',' << to_string(s.ctx) << ','
            << s.start.picoseconds() << ',' << s.end.picoseconds() << ','
            << s.energy_nj << '\n';
    }
    return out.str();
}

void GanttRecorder::clear() {
    segments_.clear();
    markers_.clear();
}

}  // namespace rtk::sim
