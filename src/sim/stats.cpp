#include "sim/stats.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "sim/sim_api.hpp"
#include "sysc/kernel.hpp"

namespace rtk::sim {

sysc::Time BatteryModel::projected_lifespan(double total_cee_nj,
                                            sysc::Time elapsed) const {
    if (total_cee_nj <= 0.0 || elapsed.is_zero()) {
        return sysc::Time::max();
    }
    const double avg_power_w = total_cee_nj * 1e-9 / elapsed.to_sec();
    const double lifespan_sec = capacity_j_ / avg_power_w;
    if (lifespan_sec >= 1e7) {  // cap at ~115 days to avoid overflow
        return sysc::Time::max();
    }
    return sysc::Time::ps(static_cast<std::uint64_t>(lifespan_sec * 1e12));
}

std::string BatteryModel::status_bar(double total_cee_nj, std::size_t width) const {
    const double lvl = level(total_cee_nj);
    const std::size_t filled = static_cast<std::size_t>(lvl * static_cast<double>(width));
    std::string bar = "[";
    bar += std::string(filled, '#');
    bar += std::string(width - filled, '.');
    bar += "] ";
    bar += std::to_string(static_cast<int>(lvl * 100.0));
    bar += "%";
    return bar;
}

SystemStats collect_stats(const SimApi& api) {
    SystemStats s;
    s.elapsed = api.kernel().now();
    s.idle_time = api.idle_time();
    s.dispatches = api.total_dispatches();
    s.preemptions = api.total_preemptions();
    s.interrupts = api.total_interrupt_deliveries();
    for (const TThread* t : api.hash_table().threads()) {
        DistributionRow row;
        row.tid = t->id();
        row.name = t->name();
        row.cet = t->token().cet();
        row.cee_nj = t->token().cee_nj();
        s.total_cet += row.cet;
        s.total_cee_nj += row.cee_nj;
        s.rows.push_back(std::move(row));
    }
    if (!s.elapsed.is_zero()) {
        s.cpu_load = s.total_cet.to_sec() / s.elapsed.to_sec();
    }
    for (auto& row : s.rows) {
        row.cet_share = s.total_cet.is_zero()
                            ? 0.0
                            : row.cet.to_sec() / s.total_cet.to_sec();
        row.cee_share = s.total_cee_nj <= 0.0 ? 0.0 : row.cee_nj / s.total_cee_nj;
    }
    std::sort(s.rows.begin(), s.rows.end(),
              [](const DistributionRow& a, const DistributionRow& b) {
                  return a.cee_nj > b.cee_nj;
              });
    return s;
}

std::string render_distribution(const SystemStats& stats, const BatteryModel& battery) {
    std::ostringstream out;
    out << "Consumed Time/Energy Distribution (Fig 7)\n";
    out << "  elapsed: " << stats.elapsed.to_string()
        << "  cpu load: " << std::fixed << std::setprecision(1)
        << stats.cpu_load * 100.0 << "%"
        << "  idle: " << stats.idle_time.to_string() << "\n";
    out << std::left << std::setw(14) << "  thread" << std::right << std::setw(12)
        << "CET[ms]" << std::setw(10) << "CET%" << std::setw(14) << "CEE[mJ]"
        << std::setw(10) << "CEE%" << "\n";
    for (const auto& row : stats.rows) {
        out << "  " << std::left << std::setw(12) << row.name << std::right
            << std::setw(12) << std::setprecision(3) << row.cet.to_ms()
            << std::setw(9) << std::setprecision(1) << row.cet_share * 100.0 << "%"
            << std::setw(14) << std::setprecision(4) << row.cee_nj * 1e-6
            << std::setw(9) << std::setprecision(1) << row.cee_share * 100.0 << "%\n";
    }
    out << "  total CEE: " << std::setprecision(4) << stats.total_cee_nj * 1e-6
        << " mJ   battery " << battery.status_bar(stats.total_cee_nj);
    const sysc::Time life = battery.projected_lifespan(stats.total_cee_nj, stats.elapsed);
    out << "   projected lifespan: ";
    if (life == sysc::Time::max()) {
        out << ">115 days";
    } else {
        out << std::setprecision(1) << life.to_sec() / 3600.0 << " h";
    }
    out << "\n";
    return out.str();
}

}  // namespace rtk::sim
