// ETM/EEM calibration -- the paper's stated future work (§5):
// "By cross profiling or calibration against ISS or T-Engine emulation,
// for a given supported T-Engine platform based architecture, we can
// raise the accuracy of co-simulation, and create a virtual prototype of
// the application running on the synthesis platform."
//
// The Calibrator collects (modeled, reference) measurement pairs per
// execution context -- the reference side coming from an ISS run, target
// emulation, or hardware profiling -- fits per-context scale factors by
// least squares through the origin, and rewrites a CostTable so that
// subsequent simulations track the reference timing/energy.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/cost.hpp"
#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

class Calibrator {
public:
    /// One cross-profiling observation for context `c`: the model said
    /// `modeled`, the reference platform measured `reference`.
    void add_time_sample(ExecContext c, sysc::Time modeled, sysc::Time reference);
    void add_energy_sample(ExecContext c, double modeled_nj, double reference_nj);

    /// Least-squares scale factor (reference / modeled) for context `c`;
    /// 1.0 when no samples were collected.
    double time_scale(ExecContext c) const;
    double energy_scale(ExecContext c) const;

    std::size_t time_samples(ExecContext c) const;
    std::size_t energy_samples(ExecContext c) const;

    /// Mean relative error of the *modeled* values against the reference
    /// before calibration, per context (the accuracy gap being closed).
    double time_error_before(ExecContext c) const;
    /// ... and the residual error after applying the fitted scale.
    double time_error_after(ExecContext c) const;

    /// Rewrite `table` in place: each context's time/energy per unit is
    /// multiplied by the fitted scale factor.
    void apply(CostTable& table) const;

    /// Human-readable calibration report.
    std::string report() const;

    void reset();

private:
    struct Fit {
        double sum_mm = 0.0;  ///< sum of modeled*modeled
        double sum_mr = 0.0;  ///< sum of modeled*reference
        double sum_rel_err = 0.0;
        double sum_rel_err_post_num = 0.0;  ///< recomputed on demand
        std::size_t n = 0;
        // raw samples kept for residual computation
        std::vector<std::pair<double, double>> samples;  ///< (modeled, ref)

        void add(double modeled, double reference);
        double scale() const;
        double error_before() const;
        double error_after() const;
    };

    std::array<Fit, exec_context_count> time_{};
    std::array<Fit, exec_context_count> energy_{};
};

}  // namespace rtk::sim
