#include "sim/types.hpp"

namespace rtk::sim {

const char* to_string(RunEvent e) {
    switch (e) {
        case RunEvent::startup: return "Es";
        case RunEvent::continue_run: return "Ec";
        case RunEvent::return_from_preemption: return "Ex";
        case RunEvent::return_from_interrupt: return "Ei";
        case RunEvent::sleep_event: return "Ew";
    }
    return "?";
}

const char* to_string(ExecContext c) {
    switch (c) {
        case ExecContext::startup: return "startup";
        case ExecContext::service_call: return "service";
        case ExecContext::task: return "task";
        case ExecContext::handler: return "handler";
        case ExecContext::bfm_access: return "bfm";
    }
    return "?";
}

const char* to_string(ThreadKind k) {
    switch (k) {
        case ThreadKind::task: return "task";
        case ThreadKind::cyclic_handler: return "cyclic";
        case ThreadKind::alarm_handler: return "alarm";
        case ThreadKind::interrupt_handler: return "isr";
    }
    return "?";
}

const char* to_string(ThreadState s) {
    switch (s) {
        case ThreadState::non_existent: return "NON-EXISTENT";
        case ThreadState::dormant: return "DORMANT";
        case ThreadState::ready: return "READY";
        case ThreadState::running: return "RUNNING";
        case ThreadState::waiting: return "WAITING";
        case ThreadState::suspended: return "SUSPENDED";
        case ThreadState::waiting_suspended: return "WAITING-SUSPENDED";
    }
    return "?";
}

char gantt_glyph(ExecContext c) {
    switch (c) {
        case ExecContext::startup: return 'S';
        case ExecContext::service_call: return 'o';
        case ExecContext::task: return '#';
        case ExecContext::handler: return 'H';
        case ExecContext::bfm_access: return 'B';
    }
    return '?';
}

}  // namespace rtk::sim
