// Execution Time Model (ETM) and Execution Energy Model (EEM) tables.
//
// The paper annotates firing sequences with a-priori estimated execution
// time ETM(S|T-THREAD) and energy EEM(S|T-THREAD) (§3). A CostTable maps
// abstract work units ("machine cycles" of the modeled CPU) in a given
// execution context onto simulated time and consumed energy. The paper's
// own annotations were estimated (§5); these defaults model an 8051-class
// MCU at 12 MHz / ~50 mW active power and are fully user-replaceable.
#pragma once

#include <array>
#include <cstdint>

#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

/// Cost of one work unit in a given execution context.
struct CostModel {
    sysc::Time time_per_unit = sysc::Time::us(1);  ///< 8051 @ 12 MHz machine cycle
    double energy_per_unit_nj = 50.0;              ///< 50 mW * 1 us

    sysc::Time time(std::uint64_t units) const { return time_per_unit * units; }
    double energy_nj(std::uint64_t units) const {
        return energy_per_unit_nj * static_cast<double>(units);
    }
};

/// ETM/EEM per execution context.
class CostTable {
public:
    /// Default: every context costs one 8051 machine cycle per unit; the
    /// service-call context is slightly cheaper per unit (tight kernel
    /// code), BFM access slightly more expensive (external bus cycles).
    CostTable();

    const CostModel& at(ExecContext c) const {
        return models_[static_cast<std::size_t>(c)];
    }
    CostModel& at(ExecContext c) { return models_[static_cast<std::size_t>(c)]; }

    void set(ExecContext c, CostModel m) { models_[static_cast<std::size_t>(c)] = m; }

    /// Uniform scaling of all energy figures (models DVFS-style what-ifs).
    void scale_energy(double factor);

private:
    std::array<CostModel, exec_context_count> models_{};
};

}  // namespace rtk::sim
