#include "sim/hashtb.hpp"

#include <algorithm>

#include "sim/tthread.hpp"
#include "sysc/report.hpp"

namespace rtk::sim {

SimHashTB::Record* SimHashTB::slot(ThreadId id) {
    if (id < 1 || static_cast<std::size_t>(id) > table_.size()) {
        return nullptr;
    }
    Record& r = table_[static_cast<std::size_t>(id) - 1];
    return r.thread == nullptr ? nullptr : &r;
}

const SimHashTB::Record* SimHashTB::slot(ThreadId id) const {
    return const_cast<SimHashTB*>(this)->slot(id);
}

void SimHashTB::insert(ThreadId id, TThread& thread) {
    if (slot(id) != nullptr) {
        sysc::report(sysc::Severity::fatal, "hashtb",
                     "duplicate T-THREAD id " + std::to_string(id));
    }
    if (static_cast<std::size_t>(id) > table_.size()) {
        table_.resize(static_cast<std::size_t>(id));
    }
    table_[static_cast<std::size_t>(id) - 1] =
        Record{&thread, ThreadState::dormant, {}, 0};
    ++live_;
}

void SimHashTB::erase(ThreadId id) {
    if (slot(id) != nullptr) {
        table_[static_cast<std::size_t>(id) - 1] = Record{};
        --live_;
    }
}

void SimHashTB::update(ThreadId id, ThreadState to, sysc::Time at) {
    Record* rec = slot(id);
    if (rec == nullptr) {
        sysc::report(sysc::Severity::fatal, "hashtb",
                     "state update for unknown T-THREAD id " + std::to_string(id));
    }
    Transition tr{at, id, rec->state, to};
    rec->state = to;
    rec->last_change = at;
    ++rec->change_count;
    ++total_transitions_;
    journal_.push_back(tr);
    if (journal_.size() > journal_limit_) {
        journal_.pop_front();
    }
}

TThread* SimHashTB::find(ThreadId id) const {
    const Record* rec = slot(id);
    return rec == nullptr ? nullptr : rec->thread;
}

TThread* SimHashTB::find_by_name(const std::string& name) const {
    for (const Record& rec : table_) {
        if (rec.thread != nullptr && rec.thread->name() == name) {
            return rec.thread;
        }
    }
    return nullptr;
}

const SimHashTB::Record* SimHashTB::record(ThreadId id) const {
    return slot(id);
}

std::vector<TThread*> SimHashTB::threads() const {
    std::vector<TThread*> out;
    out.reserve(live_);
    for (const Record& rec : table_) {
        if (rec.thread != nullptr) {
            out.push_back(rec.thread);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TThread* a, const TThread* b) { return a->id() < b->id(); });
    return out;
}

}  // namespace rtk::sim
