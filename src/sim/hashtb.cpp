#include "sim/hashtb.hpp"

#include <algorithm>

#include "sim/tthread.hpp"
#include "sysc/report.hpp"

namespace rtk::sim {

void SimHashTB::insert(ThreadId id, TThread& thread) {
    auto [it, inserted] = table_.emplace(id, Record{&thread, ThreadState::dormant, {}, 0});
    if (!inserted) {
        sysc::report(sysc::Severity::fatal, "hashtb",
                     "duplicate T-THREAD id " + std::to_string(id));
    }
}

void SimHashTB::erase(ThreadId id) {
    table_.erase(id);
}

void SimHashTB::update(ThreadId id, ThreadState to, sysc::Time at) {
    auto it = table_.find(id);
    if (it == table_.end()) {
        sysc::report(sysc::Severity::fatal, "hashtb",
                     "state update for unknown T-THREAD id " + std::to_string(id));
    }
    Transition tr{at, id, it->second.state, to};
    it->second.state = to;
    it->second.last_change = at;
    ++it->second.change_count;
    ++total_transitions_;
    journal_.push_back(tr);
    if (journal_.size() > journal_limit_) {
        journal_.pop_front();
    }
}

TThread* SimHashTB::find(ThreadId id) const {
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : it->second.thread;
}

TThread* SimHashTB::find_by_name(const std::string& name) const {
    for (const auto& [id, rec] : table_) {
        if (rec.thread->name() == name) {
            return rec.thread;
        }
    }
    return nullptr;
}

const SimHashTB::Record* SimHashTB::record(ThreadId id) const {
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : &it->second;
}

std::vector<TThread*> SimHashTB::threads() const {
    std::vector<TThread*> out;
    out.reserve(table_.size());
    for (const auto& [id, rec] : table_) {
        out.push_back(rec.thread);
    }
    std::sort(out.begin(), out.end(),
              [](const TThread* a, const TThread* b) { return a->id() < b->id(); });
    return out;
}

}  // namespace rtk::sim
