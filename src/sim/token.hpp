// The Petri-net token of a T-THREAD (paper §3, Fig 2).
//
// "A single token K marks the state of the T-THREAD" and "gathers
// execution time/energy statistics as it propagates" (§4). The token
// carries:
//   * the characteristic (firing) vector S-bar -- how many times each
//     transition class fired,
//   * the consumed execution time  CET(S|T-THREAD) = sum over cycles of ETM,
//   * the consumed execution energy CEE(S|T-THREAD) = sum over cycles of EEM,
// broken down by execution context for the Fig 6 / Fig 7 displays.
#pragma once

#include <array>
#include <cstdint>

#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

class Token {
public:
    /// Record the firing of a transition enabled by event `e`.
    void fire(RunEvent e) { ++firing_vector_[static_cast<std::size_t>(e)]; }

    /// Accumulate consumed execution time/energy in context `c`.
    void consume(ExecContext c, sysc::Time dt, double energy_nj) {
        cet_ += dt;
        cee_nj_ += energy_nj;
        cet_by_ctx_[static_cast<std::size_t>(c)] += dt;
        cee_by_ctx_[static_cast<std::size_t>(c)] += energy_nj;
    }

    /// A full T-THREAD execution cycle completed (entry returned).
    void complete_cycle() { ++cycles_; }

    sysc::Time cet() const { return cet_; }              ///< consumed execution time
    double cee_nj() const { return cee_nj_; }            ///< consumed energy [nJ]
    double cee_mj() const { return cee_nj_ * 1e-6; }     ///< consumed energy [mJ]
    std::uint64_t cycles() const { return cycles_; }     ///< completed cycles N

    sysc::Time cet(ExecContext c) const {
        return cet_by_ctx_[static_cast<std::size_t>(c)];
    }
    double cee_nj(ExecContext c) const {
        return cee_by_ctx_[static_cast<std::size_t>(c)];
    }

    /// Characteristic vector component: firings enabled by event `e`.
    std::uint64_t firings(RunEvent e) const {
        return firing_vector_[static_cast<std::size_t>(e)];
    }
    std::uint64_t total_firings() const {
        std::uint64_t n = 0;
        for (auto v : firing_vector_) n += v;
        return n;
    }

    void reset() { *this = Token{}; }

private:
    sysc::Time cet_{};
    double cee_nj_ = 0.0;
    std::uint64_t cycles_ = 0;
    std::array<std::uint64_t, run_event_count> firing_vector_{};
    std::array<sysc::Time, exec_context_count> cet_by_ctx_{};
    std::array<double, exec_context_count> cee_by_ctx_{};
};

}  // namespace rtk::sim
