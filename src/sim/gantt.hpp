// Execution time/energy trace recorder -- the data source behind the
// paper's Fig 6 "Execution Time/Energy Trace" widget and the SIM_API
// "debugging option for displaying time GANTT chart" (§4).
//
// Records one Segment per contiguous stretch of execution of a T-THREAD
// in one execution context, plus point markers for dispatches,
// preemptions and interrupt entry/exit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

class GanttRecorder {
public:
    struct Segment {
        ThreadId tid = invalid_thread;
        std::string thread_name;
        ExecContext ctx = ExecContext::task;
        sysc::Time start{};
        sysc::Time end{};
        double energy_nj = 0.0;
    };

    enum class MarkerKind : std::uint8_t {
        dispatch,
        preemption,
        interrupt_enter,
        interrupt_return,
        sleep,
        wakeup,
        exit,
    };

    struct Marker {
        MarkerKind kind{};
        ThreadId tid = invalid_thread;
        sysc::Time at{};
    };

    void set_enabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /// Record an execution slice; adjacent slices of the same thread and
    /// context merge into one segment.
    void add_slice(ThreadId tid, const std::string& name, ExecContext ctx,
                   sysc::Time start, sysc::Time end, double energy_nj);

    void add_marker(MarkerKind kind, ThreadId tid, sysc::Time at);

    const std::vector<Segment>& segments() const { return segments_; }
    const std::vector<Marker>& markers() const { return markers_; }

    std::uint64_t marker_count(MarkerKind k) const;

    /// Total recorded busy time (sum of segment lengths) per thread.
    sysc::Time busy_time(ThreadId tid) const;
    sysc::Time total_busy_time() const;

    /// ASCII Gantt chart between [from, to), one row per thread, one
    /// column per `resolution` of simulated time; context glyphs follow
    /// gantt_glyph() ('#': task, 'o': service call, 'H': handler,
    /// 'B': BFM access, 'S': startup), '.' is idle.
    std::string render_ascii(sysc::Time from, sysc::Time to, sysc::Time resolution) const;

    /// CSV export: tid,name,context,start_ps,end_ps,energy_nj
    std::string to_csv() const;

    void clear();

private:
    bool enabled_ = true;
    std::vector<Segment> segments_;
    std::vector<Marker> markers_;
};

}  // namespace rtk::sim
