// Per-thread and system-wide CET/CEE statistics plus the battery model of
// the paper's Fig 7 "Time/Energy distribution" widget: "a battery of
// 10-watt-hour was assumed and at run time the consumed execution time
// (CET) and energy (CEE) were accumulated and distributed over registered
// T-THREADs and the battery's status bar was updated".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

class SimApi;

/// Battery whose charge is drained by the accumulated CEE.
class BatteryModel {
public:
    explicit BatteryModel(double capacity_watt_hours = 10.0)
        : capacity_j_(capacity_watt_hours * 3600.0) {}

    double capacity_j() const { return capacity_j_; }

    double consumed_fraction(double total_cee_nj) const {
        return total_cee_nj * 1e-9 / capacity_j_;
    }

    /// Remaining charge in [0,1] given total consumed energy.
    double level(double total_cee_nj) const {
        const double f = 1.0 - consumed_fraction(total_cee_nj);
        return f < 0.0 ? 0.0 : f;
    }

    /// Projected lifespan at the observed average power draw
    /// (total_cee over elapsed simulated time).
    sysc::Time projected_lifespan(double total_cee_nj, sysc::Time elapsed) const;

    /// ASCII status bar, e.g. "[#########i........] 47%".
    std::string status_bar(double total_cee_nj, std::size_t width = 20) const;

private:
    double capacity_j_;
};

/// One row of the Fig 7 distribution table.
struct DistributionRow {
    ThreadId tid = invalid_thread;
    std::string name;
    sysc::Time cet{};
    double cee_nj = 0.0;
    double cet_share = 0.0;  ///< fraction of total busy time
    double cee_share = 0.0;  ///< fraction of total consumed energy
};

/// System-wide roll-up computed from the registered T-THREADs.
struct SystemStats {
    sysc::Time elapsed{};
    sysc::Time total_cet{};
    double total_cee_nj = 0.0;
    sysc::Time idle_time{};
    double cpu_load = 0.0;  ///< total_cet / elapsed
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t interrupts = 0;
    std::vector<DistributionRow> rows;  ///< sorted by descending CEE
};

/// Build the distribution report from a SimApi instance.
SystemStats collect_stats(const SimApi& api);

/// Render the Fig 7-style table (shares, battery bar, lifespan).
std::string render_distribution(const SystemStats& stats, const BatteryModel& battery);

}  // namespace rtk::sim
