#include "sim/calibrate.hpp"

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>

namespace rtk::sim {

void Calibrator::Fit::add(double modeled, double reference) {
    if (modeled <= 0.0 || reference <= 0.0) {
        return;  // degenerate sample carries no information
    }
    sum_mm += modeled * modeled;
    sum_mr += modeled * reference;
    sum_rel_err += std::abs(reference - modeled) / reference;
    samples.emplace_back(modeled, reference);
    ++n;
}

double Calibrator::Fit::scale() const {
    return (n == 0 || sum_mm == 0.0) ? 1.0 : sum_mr / sum_mm;
}

double Calibrator::Fit::error_before() const {
    return n == 0 ? 0.0 : sum_rel_err / static_cast<double>(n);
}

double Calibrator::Fit::error_after() const {
    if (n == 0) {
        return 0.0;
    }
    const double s = scale();
    double err = 0.0;
    for (const auto& [m, r] : samples) {
        err += std::abs(r - s * m) / r;
    }
    return err / static_cast<double>(n);
}

void Calibrator::add_time_sample(ExecContext c, sysc::Time modeled,
                                 sysc::Time reference) {
    time_[static_cast<std::size_t>(c)].add(
        static_cast<double>(modeled.picoseconds()),
        static_cast<double>(reference.picoseconds()));
}

void Calibrator::add_energy_sample(ExecContext c, double modeled_nj,
                                   double reference_nj) {
    energy_[static_cast<std::size_t>(c)].add(modeled_nj, reference_nj);
}

double Calibrator::time_scale(ExecContext c) const {
    return time_[static_cast<std::size_t>(c)].scale();
}

double Calibrator::energy_scale(ExecContext c) const {
    return energy_[static_cast<std::size_t>(c)].scale();
}

std::size_t Calibrator::time_samples(ExecContext c) const {
    return time_[static_cast<std::size_t>(c)].n;
}

std::size_t Calibrator::energy_samples(ExecContext c) const {
    return energy_[static_cast<std::size_t>(c)].n;
}

double Calibrator::time_error_before(ExecContext c) const {
    return time_[static_cast<std::size_t>(c)].error_before();
}

double Calibrator::time_error_after(ExecContext c) const {
    return time_[static_cast<std::size_t>(c)].error_after();
}

void Calibrator::apply(CostTable& table) const {
    for (std::size_t c = 0; c < exec_context_count; ++c) {
        const auto ctx = static_cast<ExecContext>(c);
        CostModel m = table.at(ctx);
        const double ts = time_scale(ctx);
        m.time_per_unit = sysc::Time::ps(static_cast<std::uint64_t>(
            static_cast<double>(m.time_per_unit.picoseconds()) * ts + 0.5));
        m.energy_per_unit_nj *= energy_scale(ctx);
        table.set(ctx, m);
    }
}

std::string Calibrator::report() const {
    std::ostringstream out;
    out << "ETM/EEM calibration report (least-squares scale per context)\n";
    for (std::size_t c = 0; c < exec_context_count; ++c) {
        const auto ctx = static_cast<ExecContext>(c);
        const auto& f = time_[c];
        if (f.n == 0 && energy_[c].n == 0) {
            continue;
        }
        out << "  " << to_string(ctx) << ": ";
        if (f.n != 0) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "time x%.3f (%zu samples, err %.1f%% -> %.1f%%)",
                          f.scale(), f.n, f.error_before() * 100.0,
                          f.error_after() * 100.0);
            out << buf;
        }
        if (energy_[c].n != 0) {
            char buf[80];
            std::snprintf(buf, sizeof(buf), "  energy x%.3f (%zu samples)",
                          energy_[c].scale(), energy_[c].n);
            out << buf;
        }
        out << "\n";
    }
    return out.str();
}

void Calibrator::reset() {
    for (auto& f : time_) {
        f = Fit{};
    }
    for (auto& f : energy_) {
        f = Fit{};
    }
}

}  // namespace rtk::sim
