// SIM_HashTB -- the thread table of the SIM_API library (paper §4):
// "keeps a record on every T-THREAD created upon startup and gets updated
// whenever a T-THREAD changes its state". Besides the live records it
// keeps a bounded journal of state transitions for the debugger widgets
// and the test suite.
//
// SimApi hands out dense, recycled ThreadIds, so the table is a flat
// vector indexed by id (slot id-1): the per-state-change update() on the
// simulation hot path is one indexed load instead of a hash lookup.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

class TThread;

class SimHashTB {
public:
    struct Record {
        TThread* thread = nullptr;
        ThreadState state = ThreadState::non_existent;
        sysc::Time last_change{};
        std::uint64_t change_count = 0;
    };

    struct Transition {
        sysc::Time at{};
        ThreadId tid = invalid_thread;
        ThreadState from = ThreadState::non_existent;
        ThreadState to = ThreadState::non_existent;
    };

    /// Register a newly created T-THREAD (state dormant).
    void insert(ThreadId id, TThread& thread);

    /// Remove a deleted T-THREAD.
    void erase(ThreadId id);

    /// Record a state change at simulation time `at`.
    void update(ThreadId id, ThreadState to, sysc::Time at);

    TThread* find(ThreadId id) const;
    TThread* find_by_name(const std::string& name) const;
    const Record* record(ThreadId id) const;

    std::size_t size() const { return live_; }
    std::vector<TThread*> threads() const;  ///< sorted by id

    /// Bounded journal of the most recent state transitions.
    const std::deque<Transition>& journal() const { return journal_; }
    void set_journal_limit(std::size_t n) { journal_limit_ = n; }
    std::uint64_t total_transitions() const { return total_transitions_; }

private:
    /// Slot id-1 (a slot with thread == nullptr is empty); grows to the
    /// highest id ever inserted, which stays small because SimApi
    /// recycles the ids of deleted threads.
    Record* slot(ThreadId id);
    const Record* slot(ThreadId id) const;

    std::vector<Record> table_;
    std::size_t live_ = 0;
    std::deque<Transition> journal_;
    std::size_t journal_limit_ = 4096;
    std::uint64_t total_transitions_ = 0;
};

}  // namespace rtk::sim
