#include "sim/ready_queue.hpp"

#include "sim/tthread.hpp"
#include "sysc/report.hpp"

namespace rtk::sim {

void ReadyList::push_back(TThread& t, Priority bucket) {
    ReadyNode& n = t.ready_node();
    if (n.linked) {
        sysc::report(sysc::Severity::fatal, "scheduler",
                     "ready-queue corruption: '" + t.name() +
                         "' enqueued while already linked");
    }
    n.prev = tail_;
    n.next = nullptr;
    n.bucket = bucket;
    n.linked = true;
    if (tail_ != nullptr) {
        tail_->ready_node().next = &t;
    } else {
        head_ = &t;
    }
    tail_ = &t;
    ++size_;
}

void ReadyList::unlink(TThread& t) {
    ReadyNode& n = t.ready_node();
    if (n.prev != nullptr) {
        n.prev->ready_node().next = n.next;
    } else {
        head_ = n.next;
    }
    if (n.next != nullptr) {
        n.next->ready_node().prev = n.prev;
    } else {
        tail_ = n.prev;
    }
    n.prev = nullptr;
    n.next = nullptr;
    n.linked = false;
    --size_;
}

TThread* ReadyList::pop_front() {
    TThread* t = head_;
    if (t != nullptr) {
        unlink(*t);
    }
    return t;
}

void ReadyList::rotate() {
    if (size_ < 2) {
        return;
    }
    TThread* t = pop_front();
    push_back(*t, t->ready_node().bucket);
}

TThread* ReadyList::next(const TThread& t) {
    return t.ready_node().next;
}

}  // namespace rtk::sim
