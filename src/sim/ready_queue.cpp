#include "sim/ready_queue.hpp"

#include "sim/tthread.hpp"
#include "sysc/report.hpp"

namespace rtk::sim {

void ReadyList::push_back(ReadyTable& tab, TThread& t, Priority bucket) {
    ReadyNode& n = t.ready_node();
    if (n.linked) {
        sysc::report(sysc::Severity::fatal, "scheduler",
                     "ready-queue corruption: '" + t.name() +
                         "' enqueued while already linked");
    }
    const auto id = static_cast<std::int32_t>(t.id());
    tab.ensure(t.id());
    ReadyTable::Slot& s = tab[id];
    s.thread = &t;
    s.prev = tail_;
    s.next = -1;
    n.bucket = bucket;
    n.linked = true;
    if (tail_ >= 0) {
        tab[tail_].next = id;
    } else {
        head_ = id;
    }
    tail_ = id;
    ++size_;
}

void ReadyList::unlink(ReadyTable& tab, TThread& t) {
    const auto id = static_cast<std::int32_t>(t.id());
    ReadyTable::Slot& s = tab[id];
    if (s.prev >= 0) {
        tab[s.prev].next = s.next;
    } else {
        head_ = s.next;
    }
    if (s.next >= 0) {
        tab[s.next].prev = s.prev;
    } else {
        tail_ = s.prev;
    }
    s.prev = -1;
    s.next = -1;
    t.ready_node().linked = false;
    --size_;
}

TThread* ReadyList::pop_front(ReadyTable& tab) {
    if (head_ < 0) {
        return nullptr;
    }
    TThread* t = tab[head_].thread;
    unlink(tab, *t);
    return t;
}

void ReadyList::rotate(ReadyTable& tab) {
    if (size_ < 2) {
        return;
    }
    TThread* t = pop_front(tab);
    push_back(tab, *t, t->ready_node().bucket);
}

TThread* ReadyList::next(const ReadyTable& tab, const TThread& t) {
    const std::int32_t nxt = tab[static_cast<std::int32_t>(t.id())].next;
    return nxt < 0 ? nullptr : tab[nxt].thread;
}

}  // namespace rtk::sim
