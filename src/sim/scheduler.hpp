// External scheduler interface of SIM_API.
//
// Paper §4: the library "interacts directly with external schedulers to
// schedule the next T-THREAD to run" -- the mechanism (granting the CPU,
// preemption points, token accounting) lives in SimApi, the policy lives
// behind this interface. The paper validated the split with three
// kernels: RTK-Spec I (round robin), RTK-Spec II and TRON (priority-based
// preemptive); both policies are provided here.
//
// Both implementations run on ReadyLists linked through a dense,
// scheduler-owned ReadyTable indexed by ThreadId (sim/ready_queue.hpp):
// make_ready / remove / pick / rotate are O(1), allocation-free and
// touch only the table (cache-resident even at thousands of tasks),
// and the priority policy finds the highest ready priority with a
// find-first-set scan over a fixed bitmap instead of walking
// per-priority containers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/ready_queue.hpp"
#include "sim/types.hpp"

namespace rtk::sim {

class TThread;

class Scheduler {
public:
    virtual ~Scheduler() = default;

    virtual std::string policy_name() const = 0;

    /// Enqueue a thread that became READY.
    virtual void make_ready(TThread& t) = 0;

    /// Remove a thread from the ready structure (blocked/suspended/deleted).
    virtual void remove(TThread& t) = 0;

    /// Dequeue the next thread to run; nullptr if none is ready.
    virtual TThread* pick() = 0;

    /// The thread pick() would return, without dequeuing it.
    virtual TThread* peek() const = 0;

    /// Should `running` be preempted given the current ready set?
    virtual bool should_preempt(const TThread& running) const = 0;

    /// A ready thread's priority changed; reposition it.
    virtual void priority_changed(TThread& t) { (void)t; }

    /// Rotate the ready queue of `prio` (µ-ITRON tk_rot_rdq).
    virtual void rotate(Priority prio) { (void)prio; }

    /// Snapshot for the debugger (T-Kernel/DS listings).
    virtual std::vector<TThread*> ready_snapshot() const = 0;

    virtual std::size_t ready_count() const = 0;
};

/// Priority-based preemptive policy (µ-ITRON / T-Kernel): per-priority
/// FIFO ready queues, smaller priority value runs first; a running thread
/// is preempted as soon as a strictly higher-priority thread is ready.
///
/// O(1) everywhere: a fixed array of intrusive FIFO queues (one per
/// priority level) plus a 256-bit occupancy bitmap; pick()/peek() locate
/// the highest occupied level with find-first-set over four 64-bit words.
class PriorityPreemptiveScheduler final : public Scheduler {
public:
    /// Task priorities must lie in [0, priority_levels); this covers the
    /// µ-ITRON/T-Kernel range 1..140 with headroom. (Handler threads use
    /// negative priorities but never enter a ready queue.)
    static constexpr Priority priority_levels = 256;

    std::string policy_name() const override { return "priority-preemptive"; }
    void make_ready(TThread& t) override;
    void remove(TThread& t) override;
    TThread* pick() override;
    TThread* peek() const override;
    bool should_preempt(const TThread& running) const override;
    void priority_changed(TThread& t) override;
    void rotate(Priority prio) override;
    std::vector<TThread*> ready_snapshot() const override;
    std::size_t ready_count() const override { return count_; }

private:
    static constexpr std::size_t words = priority_levels / 64;

    /// Validated bucket index for `p` (fatal on out-of-range priorities).
    static std::size_t bucket_of(Priority p);
    /// Index of the lowest set bit across the bitmap, or priority_levels.
    std::size_t first_ready_bucket() const;

    std::array<ReadyList, priority_levels> queues_;
    std::array<std::uint64_t, words> bitmap_{};
    ReadyTable table_;
    std::size_t count_ = 0;
};

/// Round-robin policy (RTK-Spec I): single intrusive FIFO queue, no
/// priority preemption; the kernel's tick handler rotates the slice by
/// calling SimApi::SIM_RequestPreempt on the running thread. rotate()
/// cycles the single queue regardless of the requested priority (the
/// policy has no per-priority queues).
class RoundRobinScheduler final : public Scheduler {
public:
    std::string policy_name() const override { return "round-robin"; }
    void make_ready(TThread& t) override;
    void remove(TThread& t) override;
    TThread* pick() override;
    TThread* peek() const override;
    bool should_preempt(const TThread& running) const override;
    void rotate(Priority prio) override;
    std::vector<TThread*> ready_snapshot() const override;
    std::size_t ready_count() const override { return queue_.size(); }

private:
    ReadyList queue_;
    ReadyTable table_;
};

}  // namespace rtk::sim
