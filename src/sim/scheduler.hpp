// External scheduler interface of SIM_API.
//
// Paper §4: the library "interacts directly with external schedulers to
// schedule the next T-THREAD to run" -- the mechanism (granting the CPU,
// preemption points, token accounting) lives in SimApi, the policy lives
// behind this interface. The paper validated the split with three
// kernels: RTK-Spec I (round robin), RTK-Spec II and TRON (priority-based
// preemptive); both policies are provided here.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace rtk::sim {

class TThread;

class Scheduler {
public:
    virtual ~Scheduler() = default;

    virtual std::string policy_name() const = 0;

    /// Enqueue a thread that became READY.
    virtual void make_ready(TThread& t) = 0;

    /// Remove a thread from the ready structure (blocked/suspended/deleted).
    virtual void remove(TThread& t) = 0;

    /// Dequeue the next thread to run; nullptr if none is ready.
    virtual TThread* pick() = 0;

    /// The thread pick() would return, without dequeuing it.
    virtual TThread* peek() const = 0;

    /// Should `running` be preempted given the current ready set?
    virtual bool should_preempt(const TThread& running) const = 0;

    /// A ready thread's priority changed; reposition it.
    virtual void priority_changed(TThread& t) { (void)t; }

    /// Rotate the ready queue of `prio` (µ-ITRON tk_rot_rdq).
    virtual void rotate(Priority prio) { (void)prio; }

    /// Snapshot for the debugger (T-Kernel/DS listings).
    virtual std::vector<TThread*> ready_snapshot() const = 0;

    virtual std::size_t ready_count() const = 0;
};

/// Priority-based preemptive policy (µ-ITRON / T-Kernel): per-priority
/// FIFO ready queues, smaller priority value runs first; a running thread
/// is preempted as soon as a strictly higher-priority thread is ready.
class PriorityPreemptiveScheduler final : public Scheduler {
public:
    std::string policy_name() const override { return "priority-preemptive"; }
    void make_ready(TThread& t) override;
    void remove(TThread& t) override;
    TThread* pick() override;
    TThread* peek() const override;
    bool should_preempt(const TThread& running) const override;
    void priority_changed(TThread& t) override;
    void rotate(Priority prio) override;
    std::vector<TThread*> ready_snapshot() const override;
    std::size_t ready_count() const override;

private:
    std::map<Priority, std::deque<TThread*>> queues_;
};

/// Round-robin policy (RTK-Spec I): single FIFO queue, no priority
/// preemption; the kernel's tick handler rotates the slice by calling
/// SimApi::SIM_RequestPreempt on the running thread.
class RoundRobinScheduler final : public Scheduler {
public:
    std::string policy_name() const override { return "round-robin"; }
    void make_ready(TThread& t) override;
    void remove(TThread& t) override;
    TThread* pick() override;
    TThread* peek() const override;
    bool should_preempt(const TThread& running) const override;
    std::vector<TThread*> ready_snapshot() const override;
    std::size_t ready_count() const override;

private:
    std::deque<TThread*> queue_;
};

}  // namespace rtk::sim
