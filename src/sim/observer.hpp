// Non-intrusive observation of the SIM_API event stream.
//
// A SimObserver receives every scheduling-relevant event of one SimApi
// instance as it happens -- nine event kinds: state transitions of each
// T-THREAD, task dispatches, preemptions, interrupt entry/return,
// wakeup delivery, CPU-idle transitions, and outermost service-section
// enter/exit. The stream is a superset of the Gantt marker trace and is
// what external checkers (the rtk::fuzz invariant oracle in src/harness)
// and the rtk::trace binary recorder subscribe to -- kernel laws are
// validated and traces are captured from the outside, the way
// NISTT-style non-intrusive tracing observes a real target.
//
// Registration: any number of observers may subscribe to one SimApi via
// SimApi::add_observer / remove_observer (the oracle, a tracer and a
// fault injector can all watch the same instance at once). Each event is
// fanned out in registration order; observers added during a fan-out see
// only later events, observers removed during a fan-out receive nothing
// further.
//
// Callbacks run synchronously inside the simulation kernel, between two
// deterministic simulation steps. Observers must treat the SimApi (and
// any kernel model built on it) as read-only: calling a mutating SIM_*
// or tk_* entry point from a callback is undefined behaviour. The only
// sanctioned exceptions are the explicit fault-injection hooks
// (SIM_FaultDropInterrupts / SIM_FaultDuplicateInterrupt and the
// TKernel::fault_* entry points), which merely write plain latch state
// and defer the corrupted behaviour to the regular machinery.
#pragma once

#include "sim/types.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

class TThread;

class SimObserver {
public:
    virtual ~SimObserver() = default;

    /// `t` moved between µ-ITRON states (hashtb bookkeeping updated first).
    virtual void on_state_change(const TThread& t, ThreadState from, ThreadState to,
                                 sysc::Time at) {
        (void)t; (void)from; (void)to; (void)at;
    }

    /// The scheduler granted the CPU to task `t` (already RUNNING).
    virtual void on_dispatch(const TThread& t, sysc::Time at) { (void)t; (void)at; }

    /// Task `t` lost the CPU to a higher-priority / rotated competitor.
    virtual void on_preemption(const TThread& t, sysc::Time at) { (void)t; (void)at; }

    /// Handler `isr` starts executing (possibly nested over another one).
    virtual void on_interrupt_enter(const TThread& isr, sysc::Time at) {
        (void)isr; (void)at;
    }

    /// Handler `isr` finished its activation.
    virtual void on_interrupt_return(const TThread& isr, sysc::Time at) {
        (void)isr; (void)at;
    }

    /// A wakeup (Ew) was delivered to `t`. `by` is the thread executing
    /// the delivery (the waker), or nullptr when the wakeup comes from a
    /// non-thread context (timer wheel, test harness).
    virtual void on_wakeup(const TThread& t, const TThread* by, sysc::Time at) {
        (void)t; (void)by; (void)at;
    }

    /// The CPU went idle: no task is runnable, no handler is pending.
    virtual void on_idle(sysc::Time at) { (void)at; }

    /// Thread `t` entered an outermost atomic service section
    /// (SIM_EnterService at nesting depth 0 -> 1). Nested re-entries are
    /// not reported.
    virtual void on_service_enter(const TThread& t, sysc::Time at) {
        (void)t; (void)at;
    }

    /// Thread `t` left its outermost atomic service section (depth
    /// 1 -> 0), via SIM_ExitService or SIM_AbandonService.
    virtual void on_service_exit(const TThread& t, sysc::Time at) {
        (void)t; (void)at;
    }
};

}  // namespace rtk::sim
