// Core vocabulary of the T-THREAD process model (paper §3, Fig 2).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace rtk::sim {

/// Identifier of a registered T-THREAD (paper: key into SIM_HashTB).
using ThreadId = int;
inline constexpr ThreadId invalid_thread = -1;

/// Task priority; following the µ-ITRON convention, *smaller is higher*.
using Priority = int;

/// The event classes E = {Es, Ec, Ex, Ei, Ew} of the T-THREAD Petri net
/// (paper §3). A transition fires when its enabling event occurs.
enum class RunEvent : std::uint8_t {
    startup,                 ///< Es -- startup after kernel initialization
    continue_run,            ///< Ec -- normal continued execution
    return_from_preemption,  ///< Ex -- granted the CPU back after preemption
    return_from_interrupt,   ///< Ei -- granted the CPU back after an interrupt
    sleep_event,             ///< Ew -- the awaited sleep event arrived
};
inline constexpr std::size_t run_event_count = 5;

/// Execution contexts transitions are mapped to (paper §3: "at startup, or
/// within a service call, an application task, a handler, or H/W (BFM)
/// access"). The Gantt trace of Fig 6 assigns one pattern per context.
enum class ExecContext : std::uint8_t {
    startup,       ///< kernel boot / task activation prologue
    service_call,  ///< inside an OS service call (atomic per paper)
    task,          ///< application task body (basic blocks)
    handler,       ///< cyclic / alarm / interrupt handler body
    bfm_access,    ///< bus-functional-model (H/W) access
};
inline constexpr std::size_t exec_context_count = 5;

/// What a T-THREAD models (paper §3: "an application task or a handler
/// (cyclic, alarm, or external interrupt)").
enum class ThreadKind : std::uint8_t {
    task,
    cyclic_handler,
    alarm_handler,
    interrupt_handler,
};

/// µ-ITRON v4 task states tracked in SIM_HashTB.
enum class ThreadState : std::uint8_t {
    non_existent,
    dormant,
    ready,
    running,
    waiting,
    suspended,
    waiting_suspended,
};

const char* to_string(RunEvent e);
const char* to_string(ExecContext c);
const char* to_string(ThreadKind k);
const char* to_string(ThreadState s);

/// One-letter Gantt pattern per context (Fig 6 uses distinct patterns).
char gantt_glyph(ExecContext c);

}  // namespace rtk::sim
