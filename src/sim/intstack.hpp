// SIM_Stack -- "a stack data structure to model nested interrupts"
// (paper §4). Holds the chain of execution frames suspended by interrupt
// entry: the bottom frame is the interrupted task (or nothing, when the
// CPU was idle), frames above it are interrupt handlers nested by
// higher-priority IRQs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/types.hpp"

namespace rtk::sim {

class TThread;

class SimStack {
public:
    void push(TThread& t) {
        frames_.push_back(&t);
        high_water_ = std::max(high_water_, frames_.size());
    }

    TThread& pop() {
        TThread* t = frames_.back();
        frames_.pop_back();
        return *t;
    }

    TThread* top() const { return frames_.empty() ? nullptr : frames_.back(); }
    bool empty() const { return frames_.empty(); }
    std::size_t depth() const { return frames_.size(); }

    /// Deepest nesting observed over the whole run (debug statistic).
    std::size_t high_water_mark() const { return high_water_; }

    const std::vector<TThread*>& frames() const { return frames_; }

private:
    std::vector<TThread*> frames_;
    std::size_t high_water_ = 0;
};

}  // namespace rtk::sim
