#include "sim/tthread.hpp"

#include "sim/sim_api.hpp"
#include "sysc/kernel.hpp"

namespace rtk::sim {

TThread::TThread(SimApi& api, ThreadId id, std::string name, ThreadKind kind,
                 Priority prio, Entry entry)
    : api_(api),
      id_(id),
      base_priority_(prio),
      current_priority_(prio),
      name_(std::move(name)),
      kind_(kind),
      entry_(std::move(entry)),
      grant_ev_(api.kernel(), name_ + ".grant"),
      sleep_ev_(api.kernel(), name_ + ".sleep") {}

void TThread::run_body() {
    // "A T-THREAD is a cyclic object of atomic transitions T with a single
    // token K marking the state" (paper §3): each iteration is one firing
    // cycle from the source transition (Es) to the sink.
    for (;;) {
        await_grant();
        try {
            entry_();
        } catch (const ThreadCycleExit&) {
            // SIM_Exit: normal end of this firing cycle.
        }
        if (is_handler()) {
            api_.on_handler_exited(*this);
        } else {
            api_.on_thread_exited(*this);
        }
    }
}

RunEvent TThread::await_grant() {
    // The granted_ flag closes the race between an immediate grant
    // notification and a body that has not reached its wait yet.
    while (!granted_) {
        sysc::wait(grant_ev_);
    }
    granted_ = false;
    token_.fire(wake_reason_);
    // Context-switch cost (dispatch ETM/EEM) is consumed by the thread
    // receiving the CPU, attributed to the kernel service context.
    const auto& cfg = api_.config();
    if (!cfg.dispatch_cost.is_zero()) {
        const sysc::Time start = api_.kernel().now();
        sysc::wait(cfg.dispatch_cost);
        api_.consume_slice(*this, ExecContext::service_call, cfg.dispatch_cost,
                           cfg.dispatch_energy_nj);
        (void)start;
    }
    return wake_reason_;
}

}  // namespace rtk::sim
