// T-THREAD -- the controllable process model of the paper (§3, Fig 2).
//
// "A Task Thread or shortly a T-THREAD process ... was proposed here to
// capture the real time aspects of an application task or a handler
// (cyclic, alarm, or external interrupt) in embedded S/W. A T-THREAD is
// based on SystemC SC_(C)THREAD process running under the supervision of
// a simulation API library (SIM_API) to simulate the behavior of a
// synchronized Petri-Net."
//
// A T-THREAD is a *cyclic* object: its body waits for a startup grant
// (Es), runs the user entry once (one firing cycle), reports completion
// and loops. The CPU is granted exclusively by SimApi through an event;
// the grant carries the enabling RunEvent, which fires the matching
// Petri-net transition on the thread's Token.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/ready_queue.hpp"
#include "sim/token.hpp"
#include "sim/types.hpp"
#include "sysc/event.hpp"
#include "sysc/process.hpp"
#include "sysc/time.hpp"

namespace rtk::sim {

class SimApi;

class TThread {
public:
    using Entry = std::function<void()>;

    ThreadId id() const { return id_; }
    const std::string& name() const { return name_; }
    ThreadKind kind() const { return kind_; }
    bool is_handler() const { return kind_ != ThreadKind::task; }

    /// Current (possibly inherited/ceiling-boosted) priority.
    Priority priority() const { return current_priority_; }
    /// Priority assigned at creation / last explicit change.
    Priority base_priority() const { return base_priority_; }

    ThreadState state() const { return state_; }

    /// The Petri-net token: firing vector, CET, CEE (paper Fig 2).
    const Token& token() const { return token_; }

    /// Event a sleeping T-THREAD waits for (Ew source, paper §3).
    sysc::Event& sleep_event() { return sleep_ev_; }

    // ---- per-thread statistics ----
    std::uint64_t dispatch_count() const { return dispatches_; }
    std::uint64_t preemption_count() const { return preemptions_; }
    std::uint64_t times_interrupted() const { return times_interrupted_; }
    std::uint64_t activation_overruns() const { return activation_overruns_; }
    std::uint64_t suspend_count() const { return suspend_count_; }

    /// The sysc process currently hosting this T-THREAD.
    const sysc::Process* process() const { return proc_; }

    /// Opaque slot for the kernel layer built on top (e.g. the T-Kernel
    /// TCB owning this T-THREAD). Not interpreted by SIM_API.
    void set_user_data(void* p) { user_data_ = p; }
    void* user_data() const { return user_data_; }

    /// Intrusive ready-queue hook, owned by the external Scheduler: it is
    /// linked exactly while the thread is READY (see sim/ready_queue.hpp
    /// for the lifetime rules). Other layers must not touch it.
    ReadyNode& ready_node() { return ready_node_; }
    const ReadyNode& ready_node() const { return ready_node_; }

    TThread(const TThread&) = delete;
    TThread& operator=(const TThread&) = delete;

private:
    friend class SimApi;

    TThread(SimApi& api, ThreadId id, std::string name, ThreadKind kind,
            Priority prio, Entry entry);

    void run_body();
    /// Block until SimApi grants the CPU; fires the enabling transition.
    RunEvent await_grant();

    // Hot scheduling fields first: make_ready/pick touch id_,
    // current_priority_ and ready_node_ on every ready-queue operation,
    // and keeping them in the object's first cache line halves the
    // memory traffic of a scheduling op at large thread counts
    // (BENCH_scheduler_scaling.json).
    SimApi& api_;
    ThreadId id_;
    Priority base_priority_;
    Priority current_priority_;
    ReadyNode ready_node_;
    std::string name_;
    ThreadKind kind_;
    Entry entry_;
    ThreadState state_ = ThreadState::dormant;

    sysc::Process* proc_ = nullptr;
    sysc::Event grant_ev_;
    sysc::Event sleep_ev_;
    bool granted_ = false;
    RunEvent wake_reason_ = RunEvent::startup;

    // Flags examined at preemption points (paper §4: "checking of
    // interruption or preemption will be performed within SIM_Wait").
    bool preempt_requested_ = false;
    bool interrupt_requested_ = false;
    bool suspend_pending_ = false;
    bool pending_activation_ = false;  ///< IRQ raised while handler active

    int service_depth_ = 0;      ///< nesting of atomic service calls
    std::uint64_t suspend_count_ = 0;  ///< µ-ITRON nested suspend count

    void* user_data_ = nullptr;
    Token token_;
    std::uint64_t dispatches_ = 0;
    std::uint64_t preemptions_ = 0;
    std::uint64_t times_interrupted_ = 0;
    std::uint64_t activation_overruns_ = 0;
};

}  // namespace rtk::sim
