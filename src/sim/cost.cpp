#include "sim/cost.hpp"

namespace rtk::sim {

CostTable::CostTable() {
    using sysc::Time;
    // One work unit == one 8051 machine cycle (12 clocks @ 12 MHz = 1 us).
    set(ExecContext::startup, {Time::us(1), 50.0});
    set(ExecContext::service_call, {Time::us(1), 45.0});
    set(ExecContext::task, {Time::us(1), 50.0});
    set(ExecContext::handler, {Time::us(1), 50.0});
    set(ExecContext::bfm_access, {Time::us(1), 65.0});  // external bus drive
}

void CostTable::scale_energy(double factor) {
    for (auto& m : models_) {
        m.energy_per_unit_nj *= factor;
    }
}

}  // namespace rtk::sim
