#include "trace/metrics.hpp"

#include <algorithm>
#include <bit>

namespace rtk::trace {

using api::Json;

const char* to_string(EventKind k) {
    switch (k) {
        case EventKind::state_change:     return "state_change";
        case EventKind::dispatch:         return "dispatch";
        case EventKind::preemption:       return "preemption";
        case EventKind::interrupt_enter:  return "interrupt_enter";
        case EventKind::interrupt_return: return "interrupt_return";
        case EventKind::wakeup:           return "wakeup";
        case EventKind::idle:             return "idle";
        case EventKind::service_enter:    return "service_enter";
        case EventKind::service_exit:     return "service_exit";
        case EventKind::annotation:       return "annotation";
    }
    return "unknown";
}

// ---- LatencyHistogram -------------------------------------------------------

void LatencyHistogram::add(std::uint64_t latency_ps) {
    const std::uint64_t ns = latency_ps / 1000;
    const unsigned idx =
        ns == 0 ? 0u
                : std::min<unsigned>(static_cast<unsigned>(std::bit_width(ns)),
                                     static_cast<unsigned>(buckets.size() - 1));
    ++buckets[idx];
    ++count;
    total_ps += latency_ps;
    max_ps = std::max(max_ps, latency_ps);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        buckets[i] += other.buckets[i];
    }
    count += other.count;
    total_ps += other.total_ps;
    max_ps = std::max(max_ps, other.max_ps);
}

double LatencyHistogram::mean_us() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ps) / 1e6 /
                            static_cast<double>(count);
}

Json LatencyHistogram::to_json() const {
    Json j = Json::object();
    j.set("count", Json::number(count));
    j.set("mean_us", Json::number_real(mean_us()));
    j.set("max_us", Json::number_real(static_cast<double>(max_ps) / 1e6));
    Json b = Json::array();
    // Trailing empty buckets are elided; bucket i covers [2^(i-1), 2^i) ns.
    std::size_t last = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] != 0) {
            last = i + 1;
        }
    }
    for (std::size_t i = 0; i < last; ++i) {
        b.push(Json::number(buckets[i]));
    }
    j.set("buckets_log2_ns", std::move(b));
    return j;
}

// ---- TaskMetrics ------------------------------------------------------------

Json TaskMetrics::to_json() const {
    Json j = Json::object();
    j.set("tid", Json::number_signed(tid));
    j.set("name", Json::string(name));
    j.set("kind", Json::string(sim::to_string(static_cast<sim::ThreadKind>(kind))));
    j.set("dispatches", Json::number(dispatches));
    j.set("preemptions", Json::number(preemptions));
    j.set("wakeups", Json::number(wakeups));
    j.set("service_calls", Json::number(service_calls));
    j.set("run_us", Json::number_real(static_cast<double>(running_ps()) / 1e6));
    j.set("ready_us", Json::number_real(static_cast<double>(ready_ps()) / 1e6));
    j.set("wait_us", Json::number_real(static_cast<double>(waiting_ps()) / 1e6));
    return j;
}

// ---- Metrics ----------------------------------------------------------------

void Metrics::merge_counters(const Metrics& other) {
    events += other.events;
    context_switches += other.context_switches;
    dispatches += other.dispatches;
    preemptions += other.preemptions;
    wakeups += other.wakeups;
    interrupts += other.interrupts;
    idle_transitions += other.idle_transitions;
    service_calls += other.service_calls;
    end_time_ps = std::max(end_time_ps, other.end_time_ps);
    service_latency.merge(other.service_latency);
}

Json Metrics::to_json(bool with_tasks) const {
    Json j = Json::object();
    j.set("events", Json::number(events));
    j.set("context_switches", Json::number(context_switches));
    j.set("dispatches", Json::number(dispatches));
    j.set("preemptions", Json::number(preemptions));
    j.set("wakeups", Json::number(wakeups));
    j.set("interrupts", Json::number(interrupts));
    j.set("idle_transitions", Json::number(idle_transitions));
    j.set("service_calls", Json::number(service_calls));
    j.set("end_time_us", Json::number_real(static_cast<double>(end_time_ps) / 1e6));
    j.set("service_latency", service_latency.to_json());
    if (with_tasks) {
        Json arr = Json::array();
        for (const TaskMetrics& t : tasks) {
            arr.push(t.to_json());
        }
        j.set("tasks", std::move(arr));
    }
    return j;
}

// ---- MetricsBuilder ---------------------------------------------------------

MetricsBuilder::Slot& MetricsBuilder::slot(sim::ThreadId tid) {
    const auto idx = static_cast<std::size_t>(tid < 0 ? 0 : tid);
    if (idx >= slots_.size()) {
        slots_.resize(idx + 1);
    }
    Slot& s = slots_[idx];
    if (!s.seen) {
        s.seen = true;
        s.task.tid = tid;
    }
    return s;
}

void MetricsBuilder::define(sim::ThreadId tid, const std::string& name,
                            std::uint8_t kind) {
    Slot& s = slot(tid);
    s.task.name = name;
    s.task.kind = kind;
}

void MetricsBuilder::on_event(EventKind kind, sim::ThreadId tid,
                              std::uint8_t from, std::uint8_t to,
                              std::uint64_t at_ps) {
    ++m_.events;
    switch (kind) {
        case EventKind::state_change: {
            Slot& s = slot(tid);
            // Trust the observed `from` when the slot has no history yet
            // (events before this thread's first record were dropped).
            if (s.task.dispatches == 0 && s.state_since_ps == 0 &&
                s.state == static_cast<std::uint8_t>(sim::ThreadState::dormant)) {
                s.state = from;
            }
            if (s.state < thread_state_count) {
                s.task.residency_ps[s.state] += at_ps - s.state_since_ps;
            }
            s.state = to;
            s.state_since_ps = at_ps;
            break;
        }
        case EventKind::dispatch: {
            Slot& s = slot(tid);
            ++s.task.dispatches;
            ++m_.dispatches;
            if (last_dispatched_ != tid) {
                ++m_.context_switches;
            }
            last_dispatched_ = tid;
            break;
        }
        case EventKind::preemption:
            ++slot(tid).task.preemptions;
            ++m_.preemptions;
            break;
        case EventKind::interrupt_enter:
            ++m_.interrupts;
            break;
        case EventKind::interrupt_return:
            break;
        case EventKind::wakeup:
            ++slot(tid).task.wakeups;
            ++m_.wakeups;
            break;
        case EventKind::idle:
            ++m_.idle_transitions;
            break;
        case EventKind::service_enter: {
            Slot& s = slot(tid);
            s.in_service = true;
            s.service_enter_ps = at_ps;
            break;
        }
        case EventKind::service_exit: {
            Slot& s = slot(tid);
            ++s.task.service_calls;
            ++m_.service_calls;
            if (s.in_service) {
                s.in_service = false;
                m_.service_latency.add(at_ps - s.service_enter_ps);
            }
            break;
        }
        case EventKind::annotation:
            break;
    }
}

Metrics MetricsBuilder::finish(std::uint64_t end_ps) {
    m_.end_time_ps = std::max(m_.end_time_ps, end_ps);
    m_.tasks.clear();
    for (Slot& s : slots_) {
        if (!s.seen) {
            continue;
        }
        if (s.state < thread_state_count && end_ps > s.state_since_ps) {
            s.task.residency_ps[s.state] += end_ps - s.state_since_ps;
            s.state_since_ps = end_ps;
        }
        if (s.task.name.empty()) {
            s.task.name = "t" + std::to_string(s.task.tid);
        }
        m_.tasks.push_back(s.task);
    }
    return m_;
}

}  // namespace rtk::trace
