// The .rtktrace binary format -- NISTT-style non-intrusive capture of
// the SIM_API observer stream (see sim/observer.hpp), compact enough to
// leave on across million-injection campaigns.
//
// Layout:
//
//   header   4-byte magic "RTKT", version byte, flags byte (reserved, 0)
//   body     a sequence of tagged records
//   footer   one footer record (always last; written outside the ring
//            budget so drop accounting survives overflow)
//
// Every record is [tag u8][payload]; event records carry a varint
// sim-time *delta* in picoseconds relative to the previously written
// event (monotonic by the observer contract), so steady traffic costs
// 3-5 bytes per event. Object names are interned: a define_thread record
// is written once per ThreadId before its first event, and events refer
// to threads by varint id only. Readers must tolerate events whose
// define record was dropped on overflow (fall back to a synthetic
// "t<id>" name).
//
// Record payloads (all varint unless marked u8; times in picoseconds):
//
//   define_thread    tid, kind u8, zigzag(priority), name_len, name bytes
//   event(kind)      dt, then per kind:
//     state_change     tid, from u8, to u8
//     dispatch         tid
//     preemption       tid
//     interrupt_enter  tid
//     interrupt_return tid
//     wakeup           tid, by_tid+1 (0 = no waking thread)
//     idle             (empty)
//     service_enter    tid
//     service_exit     tid
//     annotation       tid+1 (0 = global), text_len, text bytes
//   footer           events, dropped_records, dropped_bytes,
//                    end_time_ps (absolute), delta_cycles
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace rtk::trace {

inline constexpr char trace_magic[4] = {'R', 'T', 'K', 'T'};
inline constexpr std::uint8_t trace_version = 1;
inline constexpr std::size_t trace_header_size = 6;

/// The event-record kinds. The first nine mirror the SimObserver
/// callbacks one-to-one; `annotation` is recorder-side metadata (e.g.
/// the fault injector marking the injection instant).
enum class EventKind : std::uint8_t {
    state_change = 0,
    dispatch,
    preemption,
    interrupt_enter,
    interrupt_return,
    wakeup,
    idle,
    service_enter,
    service_exit,
    annotation,
};
inline constexpr std::size_t observer_event_kinds = 9;
inline constexpr std::size_t event_kind_count = 10;

const char* to_string(EventKind k);

enum class RecordTag : std::uint8_t {
    define_thread = 0x01,
    footer = 0x7e,
    event_base = 0x10,  ///< event_base + static_cast<u8>(EventKind)
};

inline std::uint8_t event_tag(EventKind k) {
    return static_cast<std::uint8_t>(RecordTag::event_base) +
           static_cast<std::uint8_t>(k);
}

// ---- varint primitives (LEB128, least-significant group first) ----

inline void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<char>(0x80u | (v & 0x7fu)));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

inline std::uint64_t zigzag(std::int64_t v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1u);
}

/// Bounded decode cursor over a byte range.
struct Cursor {
    const unsigned char* p = nullptr;
    const unsigned char* end = nullptr;

    bool done() const { return p >= end; }

    bool get_u8(std::uint8_t& v) {
        if (p >= end) {
            return false;
        }
        v = *p++;
        return true;
    }

    bool get_varint(std::uint64_t& v) {
        v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (p >= end) {
                return false;
            }
            const std::uint8_t byte = *p++;
            v |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
            if ((byte & 0x80u) == 0) {
                return true;
            }
        }
        return false;  // > 10 continuation bytes: corrupt
    }

    bool get_bytes(std::string& out, std::size_t n) {
        if (static_cast<std::size_t>(end - p) < n) {
            return false;
        }
        out.assign(reinterpret_cast<const char*>(p), n);
        p += n;
        return true;
    }
};

}  // namespace rtk::trace
