#include "trace/reader.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

namespace rtk::trace {

namespace {

bool fail(std::string* error, const std::string& what) {
    if (error != nullptr) {
        *error = what;
    }
    return false;
}

}  // namespace

const TraceThread* TraceDoc::thread(sim::ThreadId tid) const {
    for (const TraceThread& t : threads) {
        if (t.tid == tid) {
            return &t;
        }
    }
    return nullptr;
}

std::string TraceDoc::thread_name(sim::ThreadId tid) const {
    const TraceThread* t = thread(tid);
    return t != nullptr ? t->name : "t" + std::to_string(tid);
}

bool parse_trace(std::string_view bytes, TraceDoc& out, std::string* error) {
    out = TraceDoc{};
    if (bytes.size() < trace_header_size ||
        std::memcmp(bytes.data(), trace_magic, sizeof trace_magic) != 0) {
        return fail(error, "not an .rtktrace file (bad magic)");
    }
    const auto version = static_cast<std::uint8_t>(bytes[4]);
    if (version != trace_version) {
        return fail(error,
                    "unsupported trace version " + std::to_string(version));
    }
    Cursor c;
    c.p = reinterpret_cast<const unsigned char*>(bytes.data()) +
          trace_header_size;
    c.end = reinterpret_cast<const unsigned char*>(bytes.data()) + bytes.size();

    // Truncation tolerance: a capture cut off mid-record -- a process
    // killed before Recorder::write_file's atomic rename, or a copy that
    // stopped short -- still yields every complete record; the torn last
    // record is dropped and has_footer stays false. Only structural
    // corruption (bad magic, unknown version or tag, bytes after the
    // footer) is a hard error: those mean the bytes were never a valid
    // prefix of a capture.
    std::uint64_t now_ps = 0;
    while (!c.done()) {
        std::uint8_t tag = 0;
        c.get_u8(tag);
        if (tag == static_cast<std::uint8_t>(RecordTag::define_thread)) {
            TraceThread t;
            std::uint64_t tid = 0, len = 0, prio = 0;
            std::uint8_t kind = 0;
            if (!c.get_varint(tid) || !c.get_u8(kind) || !c.get_varint(prio) ||
                !c.get_varint(len) || !c.get_bytes(t.name, len)) {
                return true;  // truncated mid-define: keep what we have
            }
            t.tid = static_cast<sim::ThreadId>(tid);
            t.kind = kind;
            t.priority = static_cast<sim::Priority>(unzigzag(prio));
            out.threads.push_back(std::move(t));
        } else if (tag == static_cast<std::uint8_t>(RecordTag::footer)) {
            std::uint64_t recorded = 0, drop_recs = 0, drop_bytes = 0;
            std::uint64_t end_ps = 0, deltas = 0;
            if (!c.get_varint(recorded) || !c.get_varint(drop_recs) ||
                !c.get_varint(drop_bytes) || !c.get_varint(end_ps) ||
                !c.get_varint(deltas)) {
                return true;  // truncated mid-footer: counts unusable
            }
            out.recorded_events = recorded;
            out.dropped_records = drop_recs;
            out.dropped_bytes = drop_bytes;
            out.end_time_ps = end_ps;
            out.delta_cycles = deltas;
            out.has_footer = true;
            if (!c.done()) {
                return fail(error, "trailing bytes after footer");
            }
        } else if (tag >= static_cast<std::uint8_t>(RecordTag::event_base) &&
                   tag < static_cast<std::uint8_t>(RecordTag::event_base) +
                             event_kind_count) {
            TraceEvent ev;
            ev.kind = static_cast<EventKind>(
                tag - static_cast<std::uint8_t>(RecordTag::event_base));
            std::uint64_t dt = 0;
            if (!c.get_varint(dt)) {
                return true;  // truncated before the timestamp
            }
            now_ps += dt;
            ev.t_ps = now_ps;
            std::uint64_t v = 0;
            bool ok = true;
            switch (ev.kind) {
                case EventKind::state_change:
                    ok = c.get_varint(v) && c.get_u8(ev.from) && c.get_u8(ev.to);
                    ev.tid = static_cast<sim::ThreadId>(v);
                    break;
                case EventKind::dispatch:
                case EventKind::preemption:
                case EventKind::interrupt_enter:
                case EventKind::interrupt_return:
                case EventKind::service_enter:
                case EventKind::service_exit:
                    ok = c.get_varint(v);
                    ev.tid = static_cast<sim::ThreadId>(v);
                    break;
                case EventKind::wakeup: {
                    std::uint64_t by = 0;
                    ok = c.get_varint(v) && c.get_varint(by);
                    ev.tid = static_cast<sim::ThreadId>(v);
                    ev.by = by == 0 ? -1 : static_cast<sim::ThreadId>(by - 1);
                    break;
                }
                case EventKind::idle:
                    break;
                case EventKind::annotation: {
                    std::uint64_t len = 0;
                    ok = c.get_varint(v) && c.get_varint(len) &&
                         c.get_bytes(ev.text, len);
                    ev.tid = v == 0 ? -1 : static_cast<sim::ThreadId>(v - 1);
                    break;
                }
            }
            if (!ok) {
                return true;  // truncated mid-event: drop the torn record
            }
            out.events.push_back(std::move(ev));
        } else {
            return fail(error, "unknown record tag " + std::to_string(tag));
        }
    }
    return true;
}

bool read_trace_file(const std::string& path, TraceDoc& out,
                     std::string* error) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return fail(error, "cannot open " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_trace(buf.str(), out, error);
}

std::string dump_text(const TraceDoc& doc) {
    std::ostringstream os;
    os << "threads: " << doc.threads.size() << "\n";
    for (const TraceThread& t : doc.threads) {
        os << "  #" << t.tid << " " << t.name << " ("
           << sim::to_string(static_cast<sim::ThreadKind>(t.kind)) << ", prio "
           << t.priority << ")\n";
    }
    os << "events: " << doc.events.size() << "\n";
    for (const TraceEvent& ev : doc.events) {
        os << "  [" << static_cast<double>(ev.t_ps) / 1e6 << " us] "
           << to_string(ev.kind);
        switch (ev.kind) {
            case EventKind::state_change:
                os << " " << doc.thread_name(ev.tid) << " "
                   << sim::to_string(static_cast<sim::ThreadState>(ev.from))
                   << " -> "
                   << sim::to_string(static_cast<sim::ThreadState>(ev.to));
                break;
            case EventKind::wakeup:
                os << " " << doc.thread_name(ev.tid);
                if (ev.by >= 0) {
                    os << " by " << doc.thread_name(ev.by);
                }
                break;
            case EventKind::annotation:
                os << " \"" << ev.text << "\"";
                if (ev.tid >= 0) {
                    os << " @ " << doc.thread_name(ev.tid);
                }
                break;
            case EventKind::idle:
                break;
            default:
                os << " " << doc.thread_name(ev.tid);
                break;
        }
        os << "\n";
    }
    if (doc.has_footer) {
        os << "footer: " << doc.recorded_events << " events seen, "
           << doc.dropped_records << " records dropped (" << doc.dropped_bytes
           << " bytes), end " << static_cast<double>(doc.end_time_ps) / 1e6
           << " us, " << doc.delta_cycles << " delta cycles\n";
    } else {
        os << "footer: missing (truncated capture)\n";
    }
    return os.str();
}

Metrics accumulate(const TraceDoc& doc) {
    MetricsBuilder b;
    for (const TraceThread& t : doc.threads) {
        b.define(t.tid, t.name, t.kind);
    }
    std::uint64_t last_ps = 0;
    for (const TraceEvent& ev : doc.events) {
        b.on_event(ev.kind, ev.tid, ev.from, ev.to, ev.t_ps);
        last_ps = ev.t_ps;
    }
    return b.finish(doc.has_footer ? doc.end_time_ps : last_ps);
}

}  // namespace rtk::trace
