// Offline side of the .rtktrace format: parse a byte image (or file)
// back into a structured document, pretty-print it, and recompute the
// derived metrics -- the foundation the Perfetto exporter and the
// rtk-trace CLI build on.
//
// Parsing is tolerant by design: events referring to a thread whose
// define_thread record was dropped on overflow still parse (the name
// falls back to "t<id>"), and a missing footer (truncated file) is
// reported through TraceDoc::has_footer rather than as an error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"
#include "trace/format.hpp"
#include "trace/metrics.hpp"

namespace rtk::trace {

struct TraceThread {
    sim::ThreadId tid = 0;
    std::uint8_t kind = 0;  ///< sim::ThreadKind
    sim::Priority priority = 0;
    std::string name;
};

struct TraceEvent {
    EventKind kind = EventKind::idle;
    std::uint64_t t_ps = 0;
    sim::ThreadId tid = -1;   ///< -1: no thread (idle / global annotation)
    sim::ThreadId by = -1;    ///< wakeup: waking thread, -1 when none
    std::uint8_t from = 0;    ///< state_change: previous ThreadState
    std::uint8_t to = 0;      ///< state_change: new ThreadState
    std::string text;         ///< annotation payload
};

struct TraceDoc {
    std::vector<TraceThread> threads;  ///< in first-sighting order
    std::vector<TraceEvent> events;    ///< in stream (= time) order

    // footer
    bool has_footer = false;
    std::uint64_t recorded_events = 0;  ///< events seen by the recorder
    std::uint64_t dropped_records = 0;
    std::uint64_t dropped_bytes = 0;
    std::uint64_t end_time_ps = 0;
    std::uint64_t delta_cycles = 0;

    const TraceThread* thread(sim::ThreadId tid) const;
    /// Interned name, or the synthetic "t<id>" when the define record
    /// was lost to overflow.
    std::string thread_name(sim::ThreadId tid) const;
};

/// Parse a complete .rtktrace image. Returns false (with `*error` set)
/// only on structural corruption: bad magic, unknown version or tag,
/// truncated record payload.
bool parse_trace(std::string_view bytes, TraceDoc& out, std::string* error);
bool read_trace_file(const std::string& path, TraceDoc& out, std::string* error);

/// One line per event, human-readable (`rtk-trace dump`).
std::string dump_text(const TraceDoc& doc);

/// Recompute Metrics from a parsed document. Bit-equal to the online
/// numbers of the Recorder that produced it when nothing was dropped.
Metrics accumulate(const TraceDoc& doc);

}  // namespace rtk::trace
