// trace::Recorder -- the binary tracer. One Recorder attaches to one
// SimApi through the regular add_observer fan-out (alongside the fuzz
// oracle and the fault injector, if any) and appends every observer
// event to a bounded in-memory buffer in the .rtktrace format
// (trace/format.hpp). Nothing in the simulation core knows it exists.
//
// Overflow policy: when the buffer budget is exhausted the newest
// records are dropped (the captured prefix stays intact and parseable)
// and per-record/byte drop counters are written into the file footer,
// which lives outside the budget. Derived Metrics are maintained online
// and keep counting through overflow, so a campaign always gets its
// numbers even when the raw stream is truncated.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/observer.hpp"
#include "sim/sim_api.hpp"
#include "trace/format.hpp"
#include "trace/metrics.hpp"

namespace rtk::trace {

struct RecorderOptions {
    /// Event-buffer budget in bytes (header/footer not counted).
    std::size_t buffer_bytes = std::size_t{4} << 20;
};

class Recorder final : public sim::SimObserver {
public:
    /// Attaches to `api` immediately; the caller keeps the Recorder
    /// alive while registered (rtk::Simulation::retain is the usual
    /// owner in harness code).
    explicit Recorder(sim::SimApi& api, RecorderOptions opts = {});
    ~Recorder() override;

    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    void detach();

    /// The Recorder registered on `api`, if any -- how out-of-band
    /// writers (the fault injector marking its injection instant) reach
    /// the tracer without threading a handle through every layer.
    static Recorder* find(const sim::SimApi& api);

    /// Write a free-form annotation record (rendered as an instant event
    /// by the Perfetto exporter). `t` scopes it to a thread's track;
    /// nullptr means global scope.
    void annotate(std::string_view text, const sim::TThread* t = nullptr);

    /// Stop recording, close residency accounting at `end` and stamp the
    /// footer. Idempotent; implicit on the first serialize()/write_file()
    /// using the last event time when never called explicitly.
    void finish(sysc::Time end);

    std::uint64_t events_recorded() const { return events_recorded_; }
    std::uint64_t records_dropped() const { return records_dropped_; }
    std::uint64_t bytes_used() const { return buf_.size(); }

    /// Valid after finish(). Derived numbers are complete even when the
    /// raw stream overflowed.
    const Metrics& metrics() const { return metrics_; }

    /// Complete .rtktrace image: header + captured records + footer.
    std::string serialize() const;
    bool write_file(const std::string& path, std::string* error = nullptr) const;

    // ---- SimObserver ----
    void on_state_change(const sim::TThread& t, sim::ThreadState from,
                         sim::ThreadState to, sysc::Time at) override;
    void on_dispatch(const sim::TThread& t, sysc::Time at) override;
    void on_preemption(const sim::TThread& t, sysc::Time at) override;
    void on_interrupt_enter(const sim::TThread& isr, sysc::Time at) override;
    void on_interrupt_return(const sim::TThread& isr, sysc::Time at) override;
    void on_wakeup(const sim::TThread& t, const sim::TThread* by,
                   sysc::Time at) override;
    void on_idle(sysc::Time at) override;
    void on_service_enter(const sim::TThread& t, sysc::Time at) override;
    void on_service_exit(const sim::TThread& t, sysc::Time at) override;

private:
    /// Start an event record in scratch_: tag + time delta.
    void begin(EventKind kind, sysc::Time at);
    /// Append scratch_ to the buffer or account the drop.
    void commit(sysc::Time at);
    void ensure_defined(const sim::TThread& t);

    sim::SimApi* api_;
    std::size_t budget_;
    std::string buf_;
    std::string scratch_;
    std::vector<bool> defined_;  // per tid: define_thread already written
    std::uint64_t last_ps_ = 0;  // time of the last *written* record
    std::uint64_t events_recorded_ = 0;
    std::uint64_t events_seen_ = 0;
    std::uint64_t records_dropped_ = 0;
    std::uint64_t bytes_dropped_ = 0;
    std::uint64_t last_event_ps_ = 0;
    bool recording_ = true;
    bool finished_ = false;
    MetricsBuilder builder_;
    Metrics metrics_;
};

}  // namespace rtk::trace
