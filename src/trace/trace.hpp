// Umbrella header for rtk::trace -- the non-intrusive observability
// layer: binary .rtktrace recording of the SIM_API observer stream,
// derived per-run metrics, offline parsing and Perfetto export.
#pragma once

#include "trace/format.hpp"    // IWYU pragma: export
#include "trace/metrics.hpp"   // IWYU pragma: export
#include "trace/perfetto.hpp"  // IWYU pragma: export
#include "trace/reader.hpp"    // IWYU pragma: export
#include "trace/recorder.hpp"  // IWYU pragma: export
