// Chrome/Perfetto `trace_event` JSON export of a parsed .rtktrace
// document. The output loads in https://ui.perfetto.dev and in
// chrome://tracing:
//
//   - one track per T-THREAD (thread_name/thread_sort_index metadata;
//     sort index follows base priority so high-priority tasks sit on
//     top), with B/E duration slices for RUNNING time and nested
//     "service" slices for atomic service sections,
//   - instant events for interrupt deliveries and recorder annotations
//     (the fault injector's injection mark renders as a global instant),
//   - flow arrows from each wakeup's source thread to the woken
//     thread's next dispatch.
//
// Times are exported in microseconds (the trace_event unit) at full
// picosecond precision (%.6f).
#pragma once

#include <string>

#include "api/json.hpp"
#include "trace/reader.hpp"

namespace rtk::trace {

class PerfettoExporter {
public:
    /// The trace_event document: {"traceEvents": [...], ...}.
    api::Json export_doc(const TraceDoc& doc) const;
    /// Serialized with the given indent (<0 = compact).
    std::string export_json(const TraceDoc& doc, int indent = 1) const;
};

}  // namespace rtk::trace
