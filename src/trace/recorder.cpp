#include "trace/recorder.hpp"

#include <algorithm>

#include "sim/tthread.hpp"
#include "sysc/fsio.hpp"
#include "sysc/kernel.hpp"

namespace rtk::trace {

Recorder::Recorder(sim::SimApi& api, RecorderOptions opts)
    : api_(&api), budget_(opts.buffer_bytes) {
    buf_.reserve(std::min(budget_, std::size_t{1} << 20));
    scratch_.reserve(64);
    api_->add_observer(this);
}

Recorder::~Recorder() { detach(); }

void Recorder::detach() {
    if (api_ != nullptr) {
        api_->remove_observer(this);
        api_ = nullptr;
    }
}

Recorder* Recorder::find(const sim::SimApi& api) {
    for (sim::SimObserver* obs : api.observers()) {
        if (auto* rec = dynamic_cast<Recorder*>(obs)) {
            return rec;
        }
    }
    return nullptr;
}

void Recorder::begin(EventKind kind, sysc::Time at) {
    scratch_.clear();
    scratch_.push_back(static_cast<char>(event_tag(kind)));
    const std::uint64_t ps = at.picoseconds();
    put_varint(scratch_, ps >= last_ps_ ? ps - last_ps_ : 0);
}

void Recorder::commit(sysc::Time at) {
    ++events_seen_;
    last_event_ps_ = std::max(last_event_ps_, at.picoseconds());
    if (buf_.size() + scratch_.size() <= budget_) {
        buf_.append(scratch_);
        last_ps_ = std::max(last_ps_, at.picoseconds());
        ++events_recorded_;
    } else {
        ++records_dropped_;
        bytes_dropped_ += scratch_.size();
    }
}

void Recorder::ensure_defined(const sim::TThread& t) {
    const auto idx = static_cast<std::size_t>(t.id() < 0 ? 0 : t.id());
    if (idx >= defined_.size()) {
        defined_.resize(idx + 1, false);
    }
    if (defined_[idx]) {
        return;
    }
    builder_.define(t.id(), t.name(), static_cast<std::uint8_t>(t.kind()));
    std::string rec;
    rec.push_back(static_cast<char>(RecordTag::define_thread));
    put_varint(rec, static_cast<std::uint64_t>(t.id()));
    rec.push_back(static_cast<char>(t.kind()));
    put_varint(rec, zigzag(t.base_priority()));
    put_varint(rec, t.name().size());
    rec.append(t.name());
    if (buf_.size() + rec.size() <= budget_) {
        buf_.append(rec);
        defined_[idx] = true;  // dropped defines retry at the next event
    } else {
        ++records_dropped_;
        bytes_dropped_ += rec.size();
    }
}

void Recorder::annotate(std::string_view text, const sim::TThread* t) {
    if (!recording_) {
        return;
    }
    const sysc::Time at = api_ != nullptr ? api_->kernel().now() : sysc::Time::zero();
    if (t != nullptr) {
        ensure_defined(*t);
    }
    begin(EventKind::annotation, at);
    put_varint(scratch_,
               t != nullptr ? static_cast<std::uint64_t>(t->id()) + 1 : 0);
    put_varint(scratch_, text.size());
    scratch_.append(text);
    builder_.on_event(EventKind::annotation, t != nullptr ? t->id() : -1, 0, 0,
                      at.picoseconds());
    commit(at);
}

void Recorder::finish(sysc::Time end) {
    if (finished_) {
        return;
    }
    finished_ = true;
    recording_ = false;
    metrics_ = builder_.finish(std::max(end.picoseconds(), last_event_ps_));
}

std::string Recorder::serialize() const {
    std::string out;
    out.reserve(trace_header_size + buf_.size() + 32);
    out.append(trace_magic, sizeof trace_magic);
    out.push_back(static_cast<char>(trace_version));
    out.push_back('\0');  // flags
    out.append(buf_);
    out.push_back(static_cast<char>(RecordTag::footer));
    put_varint(out, events_seen_);
    put_varint(out, records_dropped_);
    put_varint(out, bytes_dropped_);
    put_varint(out, finished_ ? metrics_.end_time_ps : last_event_ps_);
    put_varint(out, api_ != nullptr ? api_->kernel().delta_count() : 0);
    return out;
}

bool Recorder::write_file(const std::string& path, std::string* error) const {
    // Temp-file + rename: a killed process leaves either no capture or a
    // complete one, never a torn .rtktrace (see sysc::write_file_atomic).
    return sysc::write_file_atomic(path, serialize(), error);
}

// ---- observer callbacks -----------------------------------------------------

void Recorder::on_state_change(const sim::TThread& t, sim::ThreadState from,
                               sim::ThreadState to, sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(t);
    begin(EventKind::state_change, at);
    put_varint(scratch_, static_cast<std::uint64_t>(t.id()));
    scratch_.push_back(static_cast<char>(from));
    scratch_.push_back(static_cast<char>(to));
    builder_.on_event(EventKind::state_change, t.id(),
                      static_cast<std::uint8_t>(from),
                      static_cast<std::uint8_t>(to), at.picoseconds());
    commit(at);
}

namespace {
/// All the single-`tid` event kinds share one encode path.
constexpr std::uint8_t from_unused = 0;
}  // namespace

void Recorder::on_dispatch(const sim::TThread& t, sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(t);
    begin(EventKind::dispatch, at);
    put_varint(scratch_, static_cast<std::uint64_t>(t.id()));
    builder_.on_event(EventKind::dispatch, t.id(), from_unused, from_unused,
                      at.picoseconds());
    commit(at);
}

void Recorder::on_preemption(const sim::TThread& t, sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(t);
    begin(EventKind::preemption, at);
    put_varint(scratch_, static_cast<std::uint64_t>(t.id()));
    builder_.on_event(EventKind::preemption, t.id(), from_unused, from_unused,
                      at.picoseconds());
    commit(at);
}

void Recorder::on_interrupt_enter(const sim::TThread& isr, sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(isr);
    begin(EventKind::interrupt_enter, at);
    put_varint(scratch_, static_cast<std::uint64_t>(isr.id()));
    builder_.on_event(EventKind::interrupt_enter, isr.id(), from_unused,
                      from_unused, at.picoseconds());
    commit(at);
}

void Recorder::on_interrupt_return(const sim::TThread& isr, sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(isr);
    begin(EventKind::interrupt_return, at);
    put_varint(scratch_, static_cast<std::uint64_t>(isr.id()));
    builder_.on_event(EventKind::interrupt_return, isr.id(), from_unused,
                      from_unused, at.picoseconds());
    commit(at);
}

void Recorder::on_wakeup(const sim::TThread& t, const sim::TThread* by,
                         sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(t);
    if (by != nullptr) {
        ensure_defined(*by);
    }
    begin(EventKind::wakeup, at);
    put_varint(scratch_, static_cast<std::uint64_t>(t.id()));
    put_varint(scratch_,
               by != nullptr ? static_cast<std::uint64_t>(by->id()) + 1 : 0);
    builder_.on_event(EventKind::wakeup, t.id(), from_unused, from_unused,
                      at.picoseconds());
    commit(at);
}

void Recorder::on_idle(sysc::Time at) {
    if (!recording_) {
        return;
    }
    begin(EventKind::idle, at);
    builder_.on_event(EventKind::idle, -1, from_unused, from_unused, at.picoseconds());
    commit(at);
}

void Recorder::on_service_enter(const sim::TThread& t, sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(t);
    begin(EventKind::service_enter, at);
    put_varint(scratch_, static_cast<std::uint64_t>(t.id()));
    builder_.on_event(EventKind::service_enter, t.id(), from_unused,
                      from_unused, at.picoseconds());
    commit(at);
}

void Recorder::on_service_exit(const sim::TThread& t, sysc::Time at) {
    if (!recording_) {
        return;
    }
    ensure_defined(t);
    begin(EventKind::service_exit, at);
    put_varint(scratch_, static_cast<std::uint64_t>(t.id()));
    builder_.on_event(EventKind::service_exit, t.id(), from_unused,
                      from_unused, at.picoseconds());
    commit(at);
}

}  // namespace rtk::trace
