#include "trace/perfetto.hpp"

#include <map>

#include "sim/types.hpp"

namespace rtk::trace {

using api::Json;

namespace {

constexpr int rtk_pid = 1;
/// Virtual track for CPU-idle instants (real ThreadIds start at 1).
constexpr int cpu_tid = 0;

double to_us(std::uint64_t ps) { return static_cast<double>(ps) / 1e6; }

Json event_base(const char* phase, int tid, std::uint64_t t_ps) {
    Json e = Json::object();
    e.set("ph", Json::string(phase));
    e.set("pid", Json::number_signed(rtk_pid));
    e.set("tid", Json::number_signed(tid));
    e.set("ts", Json::number_real(to_us(t_ps)));
    return e;
}

Json metadata(const char* what, int tid, Json args) {
    Json e = Json::object();
    e.set("ph", Json::string("M"));
    e.set("pid", Json::number_signed(rtk_pid));
    e.set("tid", Json::number_signed(tid));
    e.set("name", Json::string(what));
    e.set("args", std::move(args));
    return e;
}

/// Per-thread slice-stack discipline. A service section can outlive one
/// RUNNING interval (the thread may block inside the atomic section and
/// resume later), but trace_event B/E events pair strictly LIFO per
/// track -- so the exporter closes an open "service" slice whenever the
/// thread leaves RUNNING and reopens it on the next dispatch, keeping
/// every emitted slice truthful about when the section was actually on
/// the CPU.
struct TrackState {
    bool running = false;
    bool in_service = false;
    long pending_flow = -1;  ///< flow id waiting for the next dispatch
};

}  // namespace

Json PerfettoExporter::export_doc(const TraceDoc& doc) const {
    Json events = Json::array();

    {
        Json args = Json::object();
        args.set("name", Json::string("rtk-sim"));
        events.push(metadata("process_name", cpu_tid, std::move(args)));
    }
    bool has_idle = false;
    for (const TraceEvent& ev : doc.events) {
        has_idle = has_idle || ev.kind == EventKind::idle;
    }
    if (has_idle) {
        Json args = Json::object();
        args.set("name", Json::string("(cpu)"));
        events.push(metadata("thread_name", cpu_tid, std::move(args)));
    }
    for (const TraceThread& t : doc.threads) {
        Json name_args = Json::object();
        name_args.set("name", Json::string(t.name));
        events.push(metadata("thread_name", t.tid, std::move(name_args)));
        Json sort_args = Json::object();
        sort_args.set("sort_index", Json::number_signed(t.priority));
        events.push(metadata("thread_sort_index", t.tid, std::move(sort_args)));
    }

    std::map<int, TrackState> tracks;
    long next_flow = 0;
    const auto running_state =
        static_cast<std::uint8_t>(sim::ThreadState::running);

    for (const TraceEvent& ev : doc.events) {
        switch (ev.kind) {
            case EventKind::state_change: {
                TrackState& ts = tracks[ev.tid];
                if (ev.to == running_state && !ts.running) {
                    ts.running = true;
                    Json b = event_base("B", ev.tid, ev.t_ps);
                    b.set("name", Json::string("running"));
                    events.push(std::move(b));
                    if (ts.in_service) {
                        Json sb = event_base("B", ev.tid, ev.t_ps);
                        sb.set("name", Json::string("service"));
                        events.push(std::move(sb));
                    }
                } else if (ev.from == running_state &&
                           ev.to != running_state && ts.running) {
                    ts.running = false;
                    if (ts.in_service) {
                        events.push(event_base("E", ev.tid, ev.t_ps));
                    }
                    events.push(event_base("E", ev.tid, ev.t_ps));
                }
                break;
            }
            case EventKind::dispatch: {
                TrackState& ts = tracks[ev.tid];
                if (ts.pending_flow >= 0) {
                    Json f = event_base("f", ev.tid, ev.t_ps);
                    f.set("cat", Json::string("wakeup"));
                    f.set("name", Json::string("wake"));
                    f.set("id", Json::number_signed(ts.pending_flow));
                    f.set("bp", Json::string("e"));
                    events.push(std::move(f));
                    ts.pending_flow = -1;
                }
                break;
            }
            case EventKind::preemption: {
                Json i = event_base("i", ev.tid, ev.t_ps);
                i.set("name", Json::string("preempted"));
                i.set("s", Json::string("t"));
                events.push(std::move(i));
                break;
            }
            case EventKind::interrupt_enter: {
                Json i = event_base("i", ev.tid, ev.t_ps);
                i.set("name",
                      Json::string("irq:" + doc.thread_name(ev.tid)));
                i.set("s", Json::string("t"));
                events.push(std::move(i));
                break;
            }
            case EventKind::interrupt_return:
                break;
            case EventKind::wakeup: {
                if (ev.by >= 0) {
                    const long id = next_flow++;
                    Json s = event_base("s", ev.by, ev.t_ps);
                    s.set("cat", Json::string("wakeup"));
                    s.set("name", Json::string("wake"));
                    s.set("id", Json::number_signed(id));
                    events.push(std::move(s));
                    tracks[ev.tid].pending_flow = id;
                }
                break;
            }
            case EventKind::idle: {
                Json i = event_base("i", cpu_tid, ev.t_ps);
                i.set("name", Json::string("idle"));
                i.set("s", Json::string("t"));
                events.push(std::move(i));
                break;
            }
            case EventKind::service_enter: {
                TrackState& ts = tracks[ev.tid];
                ts.in_service = true;
                if (ts.running) {
                    Json b = event_base("B", ev.tid, ev.t_ps);
                    b.set("name", Json::string("service"));
                    events.push(std::move(b));
                }
                break;
            }
            case EventKind::service_exit: {
                TrackState& ts = tracks[ev.tid];
                if (ts.in_service && ts.running) {
                    events.push(event_base("E", ev.tid, ev.t_ps));
                }
                ts.in_service = false;
                break;
            }
            case EventKind::annotation: {
                Json i = event_base("i", ev.tid >= 0 ? ev.tid : cpu_tid,
                                    ev.t_ps);
                i.set("name", Json::string(ev.text));
                i.set("s", Json::string(ev.tid >= 0 ? "t" : "g"));
                events.push(std::move(i));
                break;
            }
        }
    }

    // Close slices still open at end-of-trace so every B has its E.
    const std::uint64_t end_ps =
        doc.has_footer ? doc.end_time_ps
                       : (doc.events.empty() ? 0 : doc.events.back().t_ps);
    for (const auto& [tid, ts] : tracks) {
        if (ts.running) {
            if (ts.in_service) {
                events.push(event_base("E", tid, end_ps));
            }
            events.push(event_base("E", tid, end_ps));
        }
    }

    Json root = Json::object();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", Json::string("ms"));
    Json other = Json::object();
    other.set("format", Json::string("rtktrace"));
    other.set("dropped_records", Json::number(doc.dropped_records));
    other.set("delta_cycles", Json::number(doc.delta_cycles));
    root.set("otherData", std::move(other));
    return root;
}

std::string PerfettoExporter::export_json(const TraceDoc& doc,
                                          int indent) const {
    return export_doc(doc).dump(indent) + "\n";
}

}  // namespace rtk::trace
