// Derived per-run trace metrics: the aggregate numbers a campaign keeps
// even when the raw event stream is dropped or overflows. Maintained
// online by trace::Recorder (one branchy update per event, no
// allocation on the hot path once a task is known) and recomputable
// offline from a parsed TraceDoc, so the two paths cross-check each
// other in tests.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "api/json.hpp"
#include "sim/types.hpp"
#include "trace/format.hpp"

namespace rtk::trace {

inline constexpr std::size_t thread_state_count = 7;
inline constexpr std::size_t thread_kind_count = 4;

/// Log2-bucketed latency histogram: bucket i counts samples whose
/// latency in nanoseconds has bit-width i (bucket 0 is < 1 ns).
struct LatencyHistogram {
    std::array<std::uint64_t, 32> buckets{};
    std::uint64_t count = 0;
    std::uint64_t total_ps = 0;
    std::uint64_t max_ps = 0;

    void add(std::uint64_t latency_ps);
    void merge(const LatencyHistogram& other);
    double mean_us() const;
    api::Json to_json() const;
};

/// Per-task residency and event counters.
struct TaskMetrics {
    sim::ThreadId tid = 0;
    std::string name;
    std::uint8_t kind = 0;  ///< sim::ThreadKind
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t service_calls = 0;
    /// Time spent in each sim::ThreadState, indexed by the enum value.
    std::array<std::uint64_t, thread_state_count> residency_ps{};

    std::uint64_t running_ps() const {
        return residency_ps[static_cast<std::size_t>(sim::ThreadState::running)];
    }
    std::uint64_t ready_ps() const {
        return residency_ps[static_cast<std::size_t>(sim::ThreadState::ready)];
    }
    std::uint64_t waiting_ps() const {
        return residency_ps[static_cast<std::size_t>(sim::ThreadState::waiting)] +
               residency_ps[static_cast<std::size_t>(
                   sim::ThreadState::waiting_suspended)];
    }

    api::Json to_json() const;
};

/// One run's derived metrics.
struct Metrics {
    std::uint64_t events = 0;            ///< observer events seen (incl. dropped)
    std::uint64_t context_switches = 0;  ///< dispatches of a different thread
    std::uint64_t dispatches = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t idle_transitions = 0;
    std::uint64_t service_calls = 0;
    std::uint64_t end_time_ps = 0;
    LatencyHistogram service_latency;
    std::vector<TaskMetrics> tasks;  ///< ordered by tid

    /// Scalar + histogram aggregation across runs (per-task vectors are
    /// run-specific and deliberately not merged).
    void merge_counters(const Metrics& other);

    /// `with_tasks=false` drops the per-task array (batch aggregates).
    api::Json to_json(bool with_tasks = true) const;
};

/// Shared event-to-metrics state machine: the Recorder feeds it live,
/// `accumulate` (reader.hpp) feeds it from a parsed document.
class MetricsBuilder {
public:
    void define(sim::ThreadId tid, const std::string& name, std::uint8_t kind);
    void on_event(EventKind kind, sim::ThreadId tid, std::uint8_t from,
                  std::uint8_t to, std::uint64_t at_ps);
    /// Close open residency intervals at `end_ps` and return the result.
    Metrics finish(std::uint64_t end_ps);

private:
    struct Slot {
        TaskMetrics task;
        std::uint8_t state = static_cast<std::uint8_t>(sim::ThreadState::dormant);
        std::uint64_t state_since_ps = 0;
        std::uint64_t service_enter_ps = 0;
        bool in_service = false;
        bool seen = false;
    };

    Slot& slot(sim::ThreadId tid);

    std::vector<Slot> slots_;  // indexed by tid (ids are small and dense)
    sim::ThreadId last_dispatched_ = -1;
    Metrics m_;
};

}  // namespace rtk::trace
