// System management service calls.
#include "tkernel/kernel.hpp"

namespace rtk::tkernel {

ER TKernel::tk_ref_ver(T_RVER* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    *pk = T_RVER{};
    return E_OK;
}

ER TKernel::tk_ref_sys(T_RSYS* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    if (in_handler_context()) {
        pk->sysstat = TSS_INDP;
    } else if (api_->dispatch_disabled()) {
        pk->sysstat = TSS_DDSP;
    } else {
        pk->sysstat = TSS_TSK;
    }
    sim::TThread* run = api_->running_task();
    pk->runtskid = 0;
    if (run != nullptr && run->user_data() != nullptr) {
        pk->runtskid = static_cast<TCB*>(run->user_data())->id;
    }
    pk->schedtskid = pk->runtskid;
    return E_OK;
}

ER TKernel::tk_dis_dsp() {
    ServiceSection svc(*this);
    if (in_handler_context()) {
        return E_CTX;
    }
    api_->SIM_DisableDispatch();
    return E_OK;
}

ER TKernel::tk_ena_dsp() {
    ServiceSection svc(*this);
    if (in_handler_context()) {
        return E_CTX;
    }
    api_->SIM_EnableDispatch();
    return E_OK;
}

}  // namespace rtk::tkernel
