// T-Kernel / µ-ITRON v4 data types, error codes, attributes and the
// creation/reference packet structures of every kernel object class.
//
// The names follow the T-Kernel Standard Handbook / µ-ITRON 4.0
// specification verbatim (tk_*, T_CTSK, E_OK, TA_TPRI, ...): this is the
// API surface the paper's RTK-Spec TRON models, so spec fidelity beats
// house naming style.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rtk::tkernel {

// ---- base types -------------------------------------------------------------
using ER = int;             ///< error code
using ID = int;             ///< object id (> 0 when valid)
using PRI = int;            ///< priority, smaller = higher (1..140)
using TMO = std::int64_t;   ///< timeout [ms]; TMO_POL / TMO_FEVR special
using RELTIM = std::uint64_t;  ///< relative time [ms]
using SYSTIM = std::uint64_t;  ///< system time [ms]
using ATR = std::uint32_t;  ///< object attribute bits
using UINT = std::uint32_t;
using INT = int;

inline constexpr TMO TMO_POL = 0;    ///< polling (fail immediately)
inline constexpr TMO TMO_FEVR = -1;  ///< wait forever

inline constexpr ID TSK_SELF = 0;

// ---- error codes (T-Kernel numbering) -----------------------------------------
inline constexpr ER E_OK = 0;
inline constexpr ER E_SYS = -5;      ///< system error
inline constexpr ER E_NOSPT = -9;    ///< unsupported function
inline constexpr ER E_RSATR = -11;   ///< reserved attribute
inline constexpr ER E_PAR = -17;     ///< parameter error
inline constexpr ER E_ID = -18;      ///< invalid id number
inline constexpr ER E_CTX = -25;     ///< context error (e.g. blocking in handler)
inline constexpr ER E_ILUSE = -28;   ///< illegal service call use
inline constexpr ER E_NOMEM = -33;   ///< insufficient memory
inline constexpr ER E_LIMIT = -34;   ///< exceeded system limit
inline constexpr ER E_OBJ = -41;     ///< object state error
inline constexpr ER E_NOEXS = -42;   ///< object does not exist
inline constexpr ER E_QOVR = -43;    ///< queueing overflow
inline constexpr ER E_RLWAI = -49;   ///< wait released forcibly (tk_rel_wai)
inline constexpr ER E_TMOUT = -50;   ///< timeout
inline constexpr ER E_DLT = -51;     ///< waited object deleted
inline constexpr ER E_DISWAI = -52;  ///< wait disabled

/// Human-readable error mnemonic ("E_TMOUT" etc.).
const char* er_str(ER er);

// ---- object attributes ----------------------------------------------------------
inline constexpr ATR TA_TFIFO = 0x00000000;  ///< wait queue in FIFO order
inline constexpr ATR TA_TPRI = 0x00000001;   ///< wait queue in priority order
inline constexpr ATR TA_MFIFO = 0x00000000;  ///< mailbox messages in FIFO order
inline constexpr ATR TA_MPRI = 0x00000002;   ///< mailbox messages in priority order
inline constexpr ATR TA_FIRST = 0x00000000;  ///< semaphore: wake queue head first
inline constexpr ATR TA_CNT = 0x00000002;    ///< semaphore: wake any satisfiable waiter
inline constexpr ATR TA_WSGL = 0x00000000;   ///< event flag: single waiter only
inline constexpr ATR TA_WMUL = 0x00000008;   ///< event flag: multiple waiters
inline constexpr ATR TA_INHERIT = 0x00000002;  ///< mutex: priority inheritance
inline constexpr ATR TA_CEILING = 0x00000003;  ///< mutex: priority ceiling
inline constexpr ATR TA_HLNG = 0x00000000;   ///< handler written in HLL (always, here)
inline constexpr ATR TA_RNG0 = 0x00000000;   ///< protection ring (modeled as no-op)
inline constexpr ATR TA_USERBUF = 0x00000020;///< memory pool: caller-supplied buffer
inline constexpr ATR TA_STA = 0x00000002;    ///< cyclic handler: start immediately
inline constexpr ATR TA_PHS = 0x00000004;    ///< cyclic handler: honor initial phase

// ---- event flag wait modes ---------------------------------------------------------
inline constexpr UINT TWF_ANDW = 0x00000000;   ///< all bits of waiptn required
inline constexpr UINT TWF_ORW = 0x00000001;    ///< any bit of waiptn suffices
inline constexpr UINT TWF_CLR = 0x00000010;    ///< clear whole pattern on release
inline constexpr UINT TWF_BITCLR = 0x00000020; ///< clear only the matched bits

// ---- task states as reported by tk_ref_tsk (T-Kernel encoding) -----------------------
inline constexpr UINT TTS_RUN = 0x0001;
inline constexpr UINT TTS_RDY = 0x0002;
inline constexpr UINT TTS_WAI = 0x0004;
inline constexpr UINT TTS_SUS = 0x0008;
inline constexpr UINT TTS_WAS = 0x000c;
inline constexpr UINT TTS_DMT = 0x0010;

// ---- wait factors for tk_ref_tsk / td_ref_tsk -----------------------------------------
inline constexpr UINT TTW_SLP = 0x00000001;
inline constexpr UINT TTW_DLY = 0x00000002;
inline constexpr UINT TTW_SEM = 0x00000004;
inline constexpr UINT TTW_FLG = 0x00000008;
inline constexpr UINT TTW_MBX = 0x00000040;
inline constexpr UINT TTW_MTX = 0x00000080;
inline constexpr UINT TTW_SMBF = 0x00000100;
inline constexpr UINT TTW_RMBF = 0x00000200;
inline constexpr UINT TTW_MPF = 0x00002000;
inline constexpr UINT TTW_MPL = 0x00004000;

/// Limits of this kernel build (tk_ref_ver reports them).
inline constexpr PRI min_priority = 1;    ///< highest urgency
inline constexpr PRI max_priority = 140;  ///< lowest urgency
inline constexpr int max_objects_per_class = 1024;
inline constexpr UINT wakeup_count_limit = 65535;

// ---- creation packets ------------------------------------------------------------------

/// Task entry receives the start code passed to tk_sta_tsk and exinf.
using TaskEntry = std::function<void(INT stacd, void* exinf)>;
/// Time-event / interrupt handler entry receives exinf.
using HandlerEntry = std::function<void(void* exinf)>;
/// Task exception handler: receives the raised pattern, runs in the
/// target task's context.
using TexEntry = std::function<void(UINT texptn)>;

struct T_CTSK {
    void* exinf = nullptr;
    ATR tskatr = TA_HLNG;
    TaskEntry task;
    PRI itskpri = 1;
    std::size_t stksz = 4096;  ///< modeled stack budget (host stacks differ)
    std::string name = "task";
};

struct T_CSEM {
    void* exinf = nullptr;
    ATR sematr = TA_TFIFO | TA_FIRST;
    INT isemcnt = 0;
    INT maxsem = 65535;
    std::string name = "sem";
};

struct T_CFLG {
    void* exinf = nullptr;
    ATR flgatr = TA_TFIFO | TA_WMUL;
    UINT iflgptn = 0;
    std::string name = "flg";
};

/// Mailbox message header (µ-ITRON T_MSG); the payload follows in the
/// user's derived struct. With TA_MPRI, use T_MSG_PRI.
struct T_MSG {
    T_MSG* next = nullptr;  ///< kernel link (owned by the mailbox while queued)
};
struct T_MSG_PRI : T_MSG {
    PRI msgpri = 1;
};

struct T_CMBX {
    void* exinf = nullptr;
    ATR mbxatr = TA_TFIFO | TA_MFIFO;
    std::string name = "mbx";
};

struct T_CMTX {
    void* exinf = nullptr;
    ATR mtxatr = TA_TFIFO;  ///< or TA_TPRI / TA_INHERIT / TA_CEILING
    PRI ceilpri = min_priority;
    std::string name = "mtx";
};

struct T_CMBF {
    void* exinf = nullptr;
    ATR mbfatr = TA_TFIFO;
    INT bufsz = 1024;   ///< 0 => fully synchronous message buffer
    INT maxmsz = 128;
    std::string name = "mbf";
};

struct T_CMPF {
    void* exinf = nullptr;
    ATR mpfatr = TA_TFIFO;
    INT mpfcnt = 8;   ///< number of blocks
    INT blfsz = 64;   ///< block size in bytes
    std::string name = "mpf";
};

struct T_CMPL {
    void* exinf = nullptr;
    ATR mplatr = TA_TFIFO;
    INT mplsz = 4096;  ///< pool size in bytes
    std::string name = "mpl";
};

struct T_CCYC {
    void* exinf = nullptr;
    ATR cycatr = TA_HLNG;
    HandlerEntry cychdr;
    RELTIM cyctim = 1;  ///< cycle period [ms]
    RELTIM cycphs = 0;  ///< initial phase [ms]
    std::string name = "cyc";
};

struct T_CALM {
    void* exinf = nullptr;
    ATR almatr = TA_HLNG;
    HandlerEntry almhdr;
    std::string name = "alm";
};

struct T_DINT {
    ATR intatr = TA_HLNG;
    HandlerEntry inthdr;
    PRI intpri = 1;  ///< interrupt priority (independent of task priorities)
};

// ---- reference packets --------------------------------------------------------------------

struct T_RTSK {
    void* exinf = nullptr;
    PRI tskpri = 0;      ///< current priority
    PRI tskbpri = 0;     ///< base priority
    UINT tskstat = 0;    ///< TTS_*
    UINT tskwait = 0;    ///< TTW_* (valid when TTS_WAI)
    ID wid = 0;          ///< waited object id
    INT wupcnt = 0;
    INT suscnt = 0;
};

struct T_RSEM {
    void* exinf = nullptr;
    ID wtsk = 0;  ///< id of first waiting task (0 if none)
    INT semcnt = 0;
};

struct T_RFLG {
    void* exinf = nullptr;
    ID wtsk = 0;
    UINT flgptn = 0;
};

struct T_RMBX {
    void* exinf = nullptr;
    ID wtsk = 0;
    T_MSG* pk_msg = nullptr;  ///< next message to be received
};

struct T_RMTX {
    void* exinf = nullptr;
    ID htsk = 0;  ///< holding task
    ID wtsk = 0;
};

struct T_RMBF {
    void* exinf = nullptr;
    ID wtsk = 0;   ///< first task waiting to send
    ID rtsk = 0;   ///< first task waiting to receive
    INT msgsz = 0; ///< size of next message
    INT frbufsz = 0;
};

struct T_RMPF {
    void* exinf = nullptr;
    ID wtsk = 0;
    INT frbcnt = 0;
};

struct T_RMPL {
    void* exinf = nullptr;
    ID wtsk = 0;
    INT frsz = 0;    ///< total free
    INT maxsz = 0;   ///< largest contiguous free block
};

struct T_RCYC {
    void* exinf = nullptr;
    RELTIM lfttim = 0;  ///< time until next activation
    UINT cycstat = 0;   ///< TCYC_STA / TCYC_STP
};
inline constexpr UINT TCYC_STP = 0;
inline constexpr UINT TCYC_STA = 1;

struct T_RALM {
    void* exinf = nullptr;
    RELTIM lfttim = 0;
    UINT almstat = 0;  ///< TALM_STA / TALM_STP
};
inline constexpr UINT TALM_STP = 0;
inline constexpr UINT TALM_STA = 1;

struct T_RVER {
    std::string maker = "rtk-spec-tron (DATE'05 reproduction)";
    std::string prid = "RTK-Spec TRON";
    std::string spver = "uITRON 4.0 / T-Kernel 1.0 (behavioural model)";
    int prver_major = 1;
    int prver_minor = 0;
};

struct T_DTEX {
    ATR texatr = TA_HLNG;
    TexEntry texhdr;
};

struct T_RTEX {
    UINT pendtex = 0;  ///< pending exception pattern
    UINT texmsk = 0;   ///< 1 when exception handling is enabled
};

struct T_RSYS {
    INT sysstat = 0;  ///< TSS_*
    ID runtskid = 0;
    ID schedtskid = 0;
};
inline constexpr INT TSS_TSK = 0;   ///< normal task context
inline constexpr INT TSS_DDSP = 1;  ///< dispatch disabled
inline constexpr INT TSS_INDP = 4;  ///< handler (task-independent) context

}  // namespace rtk::tkernel
