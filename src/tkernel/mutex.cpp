// Mutex service calls (tk_cre_mtx ... tk_ref_mtx) with the three µ-ITRON
// protocols: plain (TA_TFIFO/TA_TPRI), priority inheritance (TA_INHERIT,
// transitive) and priority ceiling (TA_CEILING).
#include "tkernel/kernel.hpp"

#include <algorithm>

namespace rtk::tkernel {

namespace {
ATR protocol(const Mutex& m) {
    return m.atr & 0x3;
}
}  // namespace

ID TKernel::tk_cre_mtx(const T_CMTX& pk) {
    ServiceSection svc(*this);
    const ATR proto = pk.mtxatr & 0x3;
    if (proto == TA_CEILING &&
        (pk.ceilpri < min_priority || pk.ceilpri > max_priority)) {
        return E_PAR;
    }
    auto m = std::make_unique<Mutex>();
    m->name = pk.name;
    m->exinf = pk.exinf;
    m->atr = pk.mtxatr;
    m->ceilpri = pk.ceilpri;
    // Inheritance/ceiling mutexes queue waiters in priority order.
    m->queue.set_priority_ordered(proto != TA_TFIFO);
    return mtxs_.add(std::move(m));
}

ER TKernel::tk_del_mtx(ID mtxid) {
    ServiceSection svc(*this);
    Mutex* m = mtxs_.find(mtxid);
    if (m == nullptr) {
        return mtxid <= 0 ? E_ID : E_NOEXS;
    }
    if (m->owner != nullptr) {
        auto& held = m->owner->held_mutexes;
        held.erase(std::remove(held.begin(), held.end(), mtxid), held.end());
        recompute_priority(*m->owner);
    }
    flush_waiters(m->queue);
    mtxs_.erase(mtxid);
    return E_OK;
}

PRI TKernel::highest_waiter_priority(const Mutex& m) const {
    // TA_TPRI queues keep the highest-priority waiter at the head; for
    // TA_TFIFO (no inheritance/ceiling protocol) the walk is unordered.
    PRI best = max_priority + 1;
    for (const TCB* w = m.queue.front(); w != nullptr; w = m.queue.next_of(*w)) {
        best = std::min(best, w->thread->priority());
    }
    return best;
}

void TKernel::recompute_priority(TCB& tcb) {
    // Effective priority = base, boosted by every held ceiling mutex and by
    // the highest-priority waiter of every held inheritance mutex. A
    // waiting task is repositioned in its (possibly TA_TPRI) wait queue,
    // and a deflation propagates down the inheritance chain the same way
    // apply_inheritance propagates boosts: the recomputed task may itself
    // be the highest waiter that was boosting the owner of the mutex it
    // blocks on.
    TCB* cur = &tcb;
    for (int depth = 0; depth < max_objects_per_class && cur != nullptr; ++depth) {
        PRI eff = cur->thread->base_priority();
        for (ID mid : cur->held_mutexes) {
            const Mutex* m = mtxs_.find(mid);
            if (m == nullptr) {
                continue;
            }
            if (protocol(*m) == TA_CEILING) {
                eff = std::min(eff, m->ceilpri);
            } else if (protocol(*m) == TA_INHERIT) {
                eff = std::min(eff, highest_waiter_priority(*m));
            }
        }
        const bool changed = eff != cur->thread->priority();
        api_->SIM_SetCurrentPriority(*cur->thread, eff);
        if (cur->queue == nullptr) {
            return;
        }
        cur->queue->reposition(*cur);
        if (cur->wait_kind != WaitKind::mutex) {
            if (changed) {
                // Reordering a resource queue may expose a servable head.
                reevaluate_waiters(cur->wait_kind, cur->wait_obj);
            }
            return;
        }
        if (!changed) {
            return;
        }
        const Mutex* waited = mtxs_.find(cur->wait_obj);
        cur = waited != nullptr ? waited->owner : nullptr;
    }
}

void TKernel::apply_inheritance(Mutex& m) {
    // Transitive priority inheritance: boost the owner; if the owner is
    // itself blocked on another inheritance mutex, continue up the chain.
    Mutex* cur = &m;
    for (int depth = 0; depth < max_objects_per_class && cur != nullptr; ++depth) {
        if (protocol(*cur) != TA_INHERIT || cur->owner == nullptr) {
            return;
        }
        TCB* owner = cur->owner;
        const PRI boost = highest_waiter_priority(*cur);
        if (boost >= owner->thread->priority()) {
            return;  // already at least as urgent
        }
        api_->SIM_SetCurrentPriority(*owner->thread, boost);
        if (owner->queue != nullptr) {
            owner->queue->reposition(*owner);
            if (owner->wait_kind != WaitKind::mutex) {
                // The boosted owner may now head a resource queue whose
                // head is servable (TA_TPRI semaphore/pool/msgbuf).
                reevaluate_waiters(owner->wait_kind, owner->wait_obj);
            }
        }
        cur = (owner->wait_kind == WaitKind::mutex) ? mtxs_.find(owner->wait_obj)
                                                    : nullptr;
    }
}

ER TKernel::tk_loc_mtx(ID mtxid, TMO tmout) {
    ServiceSection svc(*this);
    Mutex* m = mtxs_.find(mtxid);
    if (m == nullptr) {
        return mtxid <= 0 ? E_ID : E_NOEXS;
    }
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;  // mutexes are task-only objects
    }
    if (m->owner == me) {
        return E_ILUSE;  // not recursive
    }
    if (protocol(*m) == TA_CEILING &&
        me->thread->base_priority() < m->ceilpri) {
        return E_ILUSE;  // base priority exceeds the ceiling
    }
    if (m->owner == nullptr) {
        m->owner = me;
        me->held_mutexes.push_back(mtxid);
        if (protocol(*m) == TA_CEILING) {
            recompute_priority(*me);
        }
        return E_OK;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    // Enqueue first so the inheritance pass sees the new waiter, then
    // block. (block_current would enqueue again, so inline its tail.)
    me->wait_kind = WaitKind::mutex;
    me->wait_obj = mtxid;
    me->wait_result = E_OK;
    me->timeout_result = E_TMOUT;
    m->queue.enqueue(*me);
    apply_inheritance(*m);
    if (tmout != TMO_FEVR) {
        arm_task_timeout(*me, tmout);
    }
    // Block inside the atomic section (see block_current for the rationale).
    api_->SIM_Sleep();
    cancel_task_timeout(*me);
    me->wait_kind = WaitKind::none;
    me->wait_obj = 0;
    return me->wait_result;
}

void TKernel::transfer_mutex(Mutex& m) {
    TCB* next = m.queue.pop_front();
    if (next == nullptr) {
        m.owner = nullptr;
        return;
    }
    m.owner = next;
    next->held_mutexes.push_back(m.id);
    release_wait(*next, E_OK);
    if (protocol(m) == TA_CEILING || protocol(m) == TA_INHERIT) {
        recompute_priority(*next);
    }
}

void TKernel::unlock_mutex_internal(Mutex& m, TCB& owner) {
    auto& held = owner.held_mutexes;
    held.erase(std::remove(held.begin(), held.end(), m.id), held.end());
    recompute_priority(owner);
    transfer_mutex(m);
}

ER TKernel::tk_unl_mtx(ID mtxid) {
    ServiceSection svc(*this);
    Mutex* m = mtxs_.find(mtxid);
    if (m == nullptr) {
        return mtxid <= 0 ? E_ID : E_NOEXS;
    }
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    if (m->owner != me) {
        return E_ILUSE;
    }
    unlock_mutex_internal(*m, *me);
    return E_OK;
}

ER TKernel::tk_ref_mtx(ID mtxid, T_RMTX* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    Mutex* m = mtxs_.find(mtxid);
    if (m == nullptr) {
        return mtxid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = m->exinf;
    pk->htsk = m->owner == nullptr ? 0 : m->owner->id;
    pk->wtsk = m->queue.empty() ? 0 : m->queue.front()->id;
    return E_OK;
}

}  // namespace rtk::tkernel
