// Kernel object classes of the T-Kernel/OS model and the id-indexed
// registry that owns them. One Registry per object class gives each class
// its own µ-ITRON id space starting at 1.
//
// The registry is a dense table: object id N lives in slot N-1 of a flat
// vector, so every lookup on the service-call hot path is one bounds
// check and one indexed load instead of a hash + chain walk. Ids of
// deleted objects are recycled LIFO -- the id space stays dense no matter
// how many create/delete cycles a scenario runs, and the table never
// grows past the high-water mark of simultaneously live objects.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tkernel/tk_types.hpp"
#include "tkernel/wait_queue.hpp"

namespace rtk::sim {
class TThread;
}

namespace rtk::tkernel {

template <typename T>
class Registry {
public:
    /// Returns the new object's id, or E_LIMIT when the class is full.
    /// Ids of deleted objects are reused (most recently freed first)
    /// before the id space is extended.
    ID add(std::unique_ptr<T> obj) {
        if (live_ >= static_cast<std::size_t>(max_objects_per_class)) {
            return E_LIMIT;
        }
        ID id;
        if (!free_.empty()) {
            id = free_.back();
            free_.pop_back();
        } else {
            id = static_cast<ID>(slots_.size()) + 1;
            slots_.emplace_back();
        }
        obj->id = id;
        slots_[static_cast<std::size_t>(id) - 1] = std::move(obj);
        ++live_;
        return id;
    }

    T* find(ID id) const {
        if (id < 1 || static_cast<std::size_t>(id) > slots_.size()) {
            return nullptr;
        }
        return slots_[static_cast<std::size_t>(id) - 1].get();
    }

    bool erase(ID id) {
        if (find(id) == nullptr) {
            return false;
        }
        slots_[static_cast<std::size_t>(id) - 1].reset();
        free_.push_back(id);
        --live_;
        return true;
    }

    std::size_t size() const { return live_; }

    std::vector<ID> ids() const {  // ascending
        std::vector<ID> out;
        out.reserve(live_);
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i] != nullptr) {
                out.push_back(static_cast<ID>(i) + 1);
            }
        }
        return out;
    }

private:
    std::vector<std::unique_ptr<T>> slots_;  ///< slot i holds id i+1
    std::vector<ID> free_;                   ///< recycled ids, LIFO
    std::size_t live_ = 0;
};

// ---- synchronisation / communication objects -----------------------------------

struct Semaphore {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    INT count = 0;
    INT maxsem = 0;
    WaitQueue queue;
};

struct EventFlag {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    UINT pattern = 0;
    WaitQueue queue;
};

struct Mailbox {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    std::deque<T_MSG*> messages;
    WaitQueue queue;
};

struct Mutex {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    PRI ceilpri = min_priority;
    struct TCB* owner = nullptr;
    WaitQueue queue;
};

struct MessageBuffer {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    INT bufsz = 0;
    INT maxmsz = 0;
    std::deque<std::vector<std::uint8_t>> messages;  ///< copied-in payloads
    INT used = 0;                                    ///< bytes used incl. headers
    WaitQueue send_queue;
    WaitQueue recv_queue;

    /// Per-message accounting overhead (size header), as a real ring
    /// buffer implementation would consume.
    static constexpr INT header_bytes = static_cast<INT>(sizeof(INT));
    INT free_bytes() const { return bufsz - used; }
    bool fits(INT msgsz) const { return free_bytes() >= msgsz + header_bytes; }
};

struct FixedPool {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    INT blkcnt = 0;
    INT blksz = 0;
    std::vector<std::uint8_t> arena;
    std::vector<void*> free_list;
    WaitQueue queue;
};

struct VariablePool {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    INT poolsz = 0;
    std::vector<std::uint8_t> arena;
    /// Sorted free extents (offset -> length), coalesced on free.
    std::map<INT, INT> free_map;
    std::unordered_map<void*, std::pair<INT, INT>> allocated;  ///< ptr -> (off, len)
    WaitQueue queue;

    INT total_free() const {
        INT n = 0;
        for (const auto& [off, len] : free_map) n += len;
        return n;
    }
    INT largest_free() const {
        INT n = 0;
        for (const auto& [off, len] : free_map) n = std::max(n, len);
        return n;
    }
};

// ---- time-event handlers ----------------------------------------------------------

struct CyclicHandler {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    HandlerEntry handler;
    RELTIM cyctim = 1;
    RELTIM cycphs = 0;
    bool active = false;
    SYSTIM next_fire = 0;  ///< absolute system time [ms] of next activation
    std::uint64_t fire_seq = 0;
    std::uint64_t activations = 0;
    sim::TThread* thread = nullptr;
};

struct AlarmHandler {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    HandlerEntry handler;
    bool active = false;
    SYSTIM fire_at = 0;
    std::uint64_t fire_seq = 0;
    std::uint64_t activations = 0;
    sim::TThread* thread = nullptr;
};

struct InterruptVector {
    UINT intno = 0;
    ATR atr = 0;
    PRI intpri = 1;
    HandlerEntry handler;
    bool enabled = true;
    std::uint64_t deliveries = 0;
    sim::TThread* thread = nullptr;
};

}  // namespace rtk::tkernel
