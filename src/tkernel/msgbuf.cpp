// Message buffer service calls (tk_cre_mbf ... tk_ref_mbf). Messages are
// copied by value through a bounded byte buffer; senders block when the
// buffer is full, receivers when it is empty; a zero-sized buffer gives
// fully synchronous rendezvous.
#include "tkernel/kernel.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rtk::tkernel {

ID TKernel::tk_cre_mbf(const T_CMBF& pk) {
    ServiceSection svc(*this);
    if (pk.bufsz < 0 || pk.maxmsz <= 0) {
        return E_PAR;
    }
    auto m = std::make_unique<MessageBuffer>();
    m->name = pk.name;
    m->exinf = pk.exinf;
    m->atr = pk.mbfatr;
    m->bufsz = pk.bufsz;
    m->maxmsz = pk.maxmsz;
    m->send_queue.set_priority_ordered((pk.mbfatr & TA_TPRI) != 0);
    // Receive queues are always FIFO in µ-ITRON message buffers.
    return mbfs_.add(std::move(m));
}

ER TKernel::tk_del_mbf(ID mbfid) {
    ServiceSection svc(*this);
    MessageBuffer* m = mbfs_.find(mbfid);
    if (m == nullptr) {
        return mbfid <= 0 ? E_ID : E_NOEXS;
    }
    flush_waiters(m->send_queue);
    flush_waiters(m->recv_queue);
    mbfs_.erase(mbfid);
    return E_OK;
}

void TKernel::mbf_pump(MessageBuffer& m) {
    bool progress = true;
    while (progress) {
        progress = false;
        // 1. Buffered messages to waiting receivers, in order.
        while (!m.recv_queue.empty() && !m.messages.empty()) {
            TCB* r = m.recv_queue.pop_front();
            auto msg = std::move(m.messages.front());
            m.messages.pop_front();
            m.used -= static_cast<INT>(msg.size()) + MessageBuffer::header_bytes;
            std::memcpy(r->rcv_buf, msg.data(), msg.size());
            r->rcv_size = static_cast<INT>(msg.size());
            release_wait(*r, E_OK);
            progress = true;
        }
        // 2. Direct rendezvous: empty buffer, sender and receiver waiting
        //    (the only path for bufsz == 0).
        while (m.messages.empty() && !m.recv_queue.empty() && !m.send_queue.empty()) {
            TCB* s = m.send_queue.pop_front();
            TCB* r = m.recv_queue.pop_front();
            std::memcpy(r->rcv_buf, s->snd_buf, static_cast<std::size_t>(s->snd_size));
            r->rcv_size = s->snd_size;
            release_wait(*r, E_OK);
            release_wait(*s, E_OK);
            progress = true;
        }
        // 3. Blocked senders into freed buffer space, strictly in order.
        while (!m.send_queue.empty() && m.fits(m.send_queue.front()->snd_size)) {
            TCB* s = m.send_queue.pop_front();
            const auto* bytes = static_cast<const std::uint8_t*>(s->snd_buf);
            m.messages.emplace_back(bytes, bytes + s->snd_size);
            m.used += s->snd_size + MessageBuffer::header_bytes;
            release_wait(*s, E_OK);
            progress = true;
        }
    }
}

ER TKernel::tk_snd_mbf(ID mbfid, const void* msg, INT msgsz, TMO tmout) {
    ServiceSection svc(*this);
    MessageBuffer* m = mbfs_.find(mbfid);
    if (m == nullptr) {
        return mbfid <= 0 ? E_ID : E_NOEXS;
    }
    if (msg == nullptr || msgsz <= 0 || msgsz > m->maxmsz) {
        return E_PAR;
    }
    TCB* me = current_tcb();
    // Queued senders keep message order -- except a TA_TPRI newcomer
    // that would head the send queue anyway sends first.
    const bool may_send = m->send_queue.empty() ||
                          (me != nullptr && m->send_queue.would_lead(*me));
    // Direct handoff when a receiver is already waiting.
    if (may_send && m->messages.empty() && !m->recv_queue.empty()) {
        TCB* r = m->recv_queue.pop_front();
        std::memcpy(r->rcv_buf, msg, static_cast<std::size_t>(msgsz));
        r->rcv_size = msgsz;
        release_wait(*r, E_OK);
        return E_OK;
    }
    if (may_send && m->fits(msgsz)) {
        const auto* bytes = static_cast<const std::uint8_t*>(msg);
        m->messages.emplace_back(bytes, bytes + msgsz);
        m->used += msgsz + MessageBuffer::header_bytes;
        return E_OK;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    if (me == nullptr) {
        return E_CTX;
    }
    me->snd_buf = msg;
    me->snd_size = msgsz;
    return block_current(*me, WaitKind::msgbuf_snd, mbfid, &m->send_queue, tmout,
                         E_TMOUT, svc);
}

INT TKernel::tk_rcv_mbf(ID mbfid, void* msg, TMO tmout) {
    ServiceSection svc(*this);
    MessageBuffer* m = mbfs_.find(mbfid);
    if (m == nullptr) {
        return mbfid <= 0 ? E_ID : E_NOEXS;
    }
    if (msg == nullptr) {
        return E_PAR;
    }
    if (!m->messages.empty()) {
        auto payload = std::move(m->messages.front());
        m->messages.pop_front();
        m->used -= static_cast<INT>(payload.size()) + MessageBuffer::header_bytes;
        std::memcpy(msg, payload.data(), payload.size());
        mbf_pump(*m);  // freed space may admit blocked senders
        return static_cast<INT>(payload.size());
    }
    if (!m->send_queue.empty()) {
        // Zero-capacity rendezvous (or full-of-waiters corner): take the
        // first queued sender's message directly.
        TCB* s = m->send_queue.pop_front();
        std::memcpy(msg, s->snd_buf, static_cast<std::size_t>(s->snd_size));
        const INT got = s->snd_size;
        release_wait(*s, E_OK);
        mbf_pump(*m);
        return got;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    me->rcv_buf = msg;
    me->rcv_size = 0;
    const ER er = block_current(*me, WaitKind::msgbuf_rcv, mbfid, &m->recv_queue,
                                tmout, E_TMOUT, svc);
    return er == E_OK ? me->rcv_size : er;
}

ER TKernel::tk_ref_mbf(ID mbfid, T_RMBF* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    MessageBuffer* m = mbfs_.find(mbfid);
    if (m == nullptr) {
        return mbfid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = m->exinf;
    pk->wtsk = m->send_queue.empty() ? 0 : m->send_queue.front()->id;
    pk->rtsk = m->recv_queue.empty() ? 0 : m->recv_queue.front()->id;
    pk->msgsz = m->messages.empty() ? 0 : static_cast<INT>(m->messages.front().size());
    pk->frbufsz = m->free_bytes();
    return E_OK;
}

}  // namespace rtk::tkernel
