// RTK-Spec TRON -- the T-Kernel/OS simulation model (paper §2, Fig 1/3).
//
// "The T-Kernel/OS is a real time OS that inherits ITRON technology ...
// It employs a priority-based preemptive scheduling policy and supports
// several synchronization and communication mechanisms, including event
// flags, semaphores, mutexes, message buffers, and mailboxes. It provides
// a group of APIs for managing tasks, dynamic memory allocation (fixed
// and variable size pools), managing time (system time, cyclic, and alarm
// handling), interrupt handling, and system management."
//
// The kernel is built entirely from SIM_API programming constructs: every
// task and handler is a T-THREAD; service calls are atomic sections that
// consume service-context ETM/EEM; wait services block through SIM_Sleep
// and are released with Ew grants; the central module (Fig 3) consists of
// the Boot, Thread Dispatch (system tick -> timer handler) and Interrupt
// Dispatch processes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim.hpp"
#include "sysc/sysc.hpp"
#include "tkernel/objects.hpp"
#include "tkernel/tcb.hpp"
#include "tkernel/tk_types.hpp"

namespace rtk::tkernel {

class TKernel {
public:
    /// Scheduling policy of the kernel's external scheduler (paper §4:
    /// SIM_API "interacts directly with external schedulers"). The
    /// T-Kernel default is priority-based preemptive; round robin gives
    /// the RTK-Spec I style policy for differential testing.
    enum class SchedPolicy : std::uint8_t {
        priority_preemptive,
        round_robin,
    };

    struct Config {
        /// System tick driving the Thread Dispatch module; also the
        /// preemption quantum of SIM_API (paper: default resolution 1 ms).
        sysc::Time tick = sysc::Time::ms(1);
        /// ETM of the fixed per-service-call overhead, in cost-table work
        /// units (8051 machine cycles by default).
        std::uint64_t service_cost_units = 10;
        /// ETM of one timer-handler activation per tick.
        std::uint64_t timer_handler_cost_units = 20;
        /// ETM of one dispatch (context switch).
        sysc::Time dispatch_cost = sysc::Time::us(8);
        double dispatch_energy_nj = 400.0;
        /// Priority of the initial task that runs the user main.
        PRI init_task_priority = 1;
        /// SIM_API semantic toggles (ablation benches flip these).
        bool service_call_atomicity = true;
        bool delayed_dispatching = true;
        bool nested_interrupts = true;
        bool record_gantt = true;
        /// External scheduler policy driving task dispatch.
        SchedPolicy policy = SchedPolicy::priority_preemptive;
    };

    /// Context-explicit construction: builds the kernel model on
    /// `sysc_kernel`. Several TKernel stacks may coexist, one per
    /// sysc::Kernel, including on different host threads (see
    /// rtk::Simulation in src/harness).
    explicit TKernel(sysc::Kernel& sysc_kernel);
    TKernel(sysc::Kernel& sysc_kernel, Config cfg);
    ~TKernel();

    TKernel(const TKernel&) = delete;
    TKernel& operator=(const TKernel&) = delete;

    // ---- boot (paper Fig 3: Boot module) -----------------------------------
    /// The user main entry: runs inside the initial task after kernel
    /// startup; creates & starts tasks, handlers and resources.
    void set_user_main(std::function<void()> usermain);
    /// Release the H/W reset: schedules the boot sequence at current time.
    void power_on();
    /// Wire boot to an external reset signal (BFM integration).
    void attach_reset(sysc::Event& reset_release);
    /// Drive the system tick from an external source (the BFM's real-time
    /// clock, paper §5.1) instead of the internal timer. Call before
    /// power_on(); the RTC period must equal config().tick.
    void attach_tick_source(sysc::Event& tick);
    bool booted() const { return booted_; }

    // ========================================================================
    // Task management
    // ========================================================================
    ID tk_cre_tsk(const T_CTSK& pk);
    ER tk_del_tsk(ID tskid);
    ER tk_sta_tsk(ID tskid, INT stacd);
    /// Exit the invoking task (normal end of its cycle).
    [[noreturn]] void tk_ext_tsk();
    /// Exit and delete the invoking task.
    [[noreturn]] void tk_exd_tsk();
    ER tk_ter_tsk(ID tskid);
    ER tk_chg_pri(ID tskid, PRI tskpri);  ///< TSK_SELF allowed
    ER tk_rot_rdq(PRI tskpri);
    ID tk_get_tid() const;  ///< 0 in task-independent context
    ER tk_rel_wai(ID tskid);
    ER tk_slp_tsk(TMO tmout);
    ER tk_wup_tsk(ID tskid);
    INT tk_can_wup(ID tskid);  ///< >=0: cancelled count; <0: error
    ER tk_sus_tsk(ID tskid);
    ER tk_rsm_tsk(ID tskid);
    ER tk_frsm_tsk(ID tskid);
    ER tk_dly_tsk(RELTIM dlytim);
    ER tk_ref_tsk(ID tskid, T_RTSK* pk) const;

    // ---- task exception handling ----
    /// Define (or, with an empty handler, undefine) the exception handler
    /// of `tskid`. Defining enables exception handling.
    ER tk_def_tex(ID tskid, const T_DTEX& pk);
    /// Raise exception pattern bits on `tskid`. A waiting target is
    /// released with E_DISWAI; the handler runs in the target's context
    /// at its next task-level execution point (service-call boundary).
    ER tk_ras_tex(ID tskid, UINT rasptn);
    ER tk_ena_tex();  ///< invoking task only
    ER tk_dis_tex();  ///< invoking task only
    ER tk_ref_tex(ID tskid, T_RTEX* pk) const;

    // ========================================================================
    // Synchronisation & communication
    // ========================================================================
    // -- semaphore --
    ID tk_cre_sem(const T_CSEM& pk);
    ER tk_del_sem(ID semid);
    ER tk_sig_sem(ID semid, INT cnt);
    ER tk_wai_sem(ID semid, INT cnt, TMO tmout);
    ER tk_ref_sem(ID semid, T_RSEM* pk) const;

    // -- event flag --
    ID tk_cre_flg(const T_CFLG& pk);
    ER tk_del_flg(ID flgid);
    ER tk_set_flg(ID flgid, UINT setptn);
    ER tk_clr_flg(ID flgid, UINT clrptn);  ///< pattern &= clrptn
    ER tk_wai_flg(ID flgid, UINT waiptn, UINT wfmode, UINT* p_flgptn, TMO tmout);
    ER tk_ref_flg(ID flgid, T_RFLG* pk) const;

    // -- mailbox --
    ID tk_cre_mbx(const T_CMBX& pk);
    ER tk_del_mbx(ID mbxid);
    ER tk_snd_mbx(ID mbxid, T_MSG* pk_msg);
    ER tk_rcv_mbx(ID mbxid, T_MSG** ppk_msg, TMO tmout);
    ER tk_ref_mbx(ID mbxid, T_RMBX* pk) const;

    // -- mutex --
    ID tk_cre_mtx(const T_CMTX& pk);
    ER tk_del_mtx(ID mtxid);
    ER tk_loc_mtx(ID mtxid, TMO tmout);
    ER tk_unl_mtx(ID mtxid);
    ER tk_ref_mtx(ID mtxid, T_RMTX* pk) const;

    // -- message buffer --
    ID tk_cre_mbf(const T_CMBF& pk);
    ER tk_del_mbf(ID mbfid);
    ER tk_snd_mbf(ID mbfid, const void* msg, INT msgsz, TMO tmout);
    /// Returns received size (>=0) or error (<0).
    INT tk_rcv_mbf(ID mbfid, void* msg, TMO tmout);
    ER tk_ref_mbf(ID mbfid, T_RMBF* pk) const;

    // ========================================================================
    // Memory pools
    // ========================================================================
    ID tk_cre_mpf(const T_CMPF& pk);
    ER tk_del_mpf(ID mpfid);
    ER tk_get_mpf(ID mpfid, void** p_blf, TMO tmout);
    ER tk_rel_mpf(ID mpfid, void* blf);
    ER tk_ref_mpf(ID mpfid, T_RMPF* pk) const;

    ID tk_cre_mpl(const T_CMPL& pk);
    ER tk_del_mpl(ID mplid);
    ER tk_get_mpl(ID mplid, INT blksz, void** p_blk, TMO tmout);
    ER tk_rel_mpl(ID mplid, void* blk);
    ER tk_ref_mpl(ID mplid, T_RMPL* pk) const;

    // ========================================================================
    // Time management
    // ========================================================================
    ER tk_set_tim(SYSTIM tim);
    ER tk_get_tim(SYSTIM* tim) const;
    ER tk_get_otm(SYSTIM* tim) const;  ///< operating time since boot

    ID tk_cre_cyc(const T_CCYC& pk);
    ER tk_del_cyc(ID cycid);
    ER tk_sta_cyc(ID cycid);
    ER tk_stp_cyc(ID cycid);
    ER tk_ref_cyc(ID cycid, T_RCYC* pk) const;

    ID tk_cre_alm(const T_CALM& pk);
    ER tk_del_alm(ID almid);
    ER tk_sta_alm(ID almid, RELTIM almtim);
    ER tk_stp_alm(ID almid);
    ER tk_ref_alm(ID almid, T_RALM* pk) const;

    // ========================================================================
    // Interrupt management (paper Fig 3: Interrupt Dispatch module)
    // ========================================================================
    /// Define the handler for external interrupt `intno`.
    ER tk_def_int(UINT intno, const T_DINT& pk);
    ER tk_undef_int(UINT intno);
    /// Deliver external interrupt `intno` (called by the BFM interrupt
    /// controller or test drivers).
    ER trigger_interrupt(UINT intno);
    ER enable_int(UINT intno);
    ER disable_int(UINT intno);
    /// Wire an external IRQ event source to vector `intno`: the Interrupt
    /// Dispatch module (Fig 3) identifies and responds to it.
    void attach_interrupt_line(sysc::Event& irq, UINT intno);

    // ========================================================================
    // System management
    // ========================================================================
    ER tk_ref_ver(T_RVER* pk) const;
    ER tk_ref_sys(T_RSYS* pk) const;
    ER tk_dis_dsp();
    ER tk_ena_dsp();

    // ---- introspection for T-Kernel/DS, tests and benches -------------------
    /// The simulation kernel this model is built on.
    sysc::Kernel& kernel() { return *sysc_; }
    const sysc::Kernel& kernel() const { return *sysc_; }
    sim::SimApi& sim() { return *api_; }
    const sim::SimApi& sim() const { return *api_; }
    const Config& config() const { return cfg_; }
    SYSTIM systim() const { return systim_; }
    std::uint64_t tick_count() const { return tick_count_; }

    const Registry<TCB>& tasks() const { return tasks_; }
    const Registry<Semaphore>& semaphores() const { return sems_; }
    const Registry<EventFlag>& eventflags() const { return flgs_; }
    const Registry<Mailbox>& mailboxes() const { return mbxs_; }
    const Registry<Mutex>& mutexes() const { return mtxs_; }
    const Registry<MessageBuffer>& message_buffers() const { return mbfs_; }
    const Registry<FixedPool>& fixed_pools() const { return mpfs_; }
    const Registry<VariablePool>& variable_pools() const { return mpls_; }
    const Registry<CyclicHandler>& cyclics() const { return cycs_; }
    const Registry<AlarmHandler>& alarms() const { return alms_; }
    const std::map<UINT, InterruptVector>& interrupt_vectors() const { return ints_; }

    /// TCB of the invoking task; nullptr in task-independent context.
    TCB* current_tcb() const;
    TCB* find_task(ID tskid) const { return tasks_.find(tskid); }

    // ========================================================================
    // Sanctioned fault-injection hooks (rtk::harness::fault)
    // ========================================================================
    // The observer contract (sim/observer.hpp) forbids calling service
    // entry points from callbacks, so the fault injector gets these
    // explicit mutation hooks instead: each one flips plain bookkeeping
    // state and returns without scheduling, blocking or dispatching --
    // the corrupted value takes effect when the regular machinery next
    // reads it. Only fields whose corruption cannot index out of bounds
    // are exposed (no priorities, no pointers, no buffer sizes).

    /// Plain TCB bookkeeping fields safe to corrupt in place.
    enum class FaultTaskField : std::uint8_t {
        wakeup_count,    ///< queued tk_wup_tsk requests
        texptn_pending,  ///< raised-but-undelivered exception bits
        wai_ptn,         ///< eventflag: awaited pattern
        ret_ptn,         ///< eventflag: pattern at release
        req_count,       ///< semaphore: requested count
        stacd,           ///< start code passed by tk_sta_tsk
    };
    /// Plain kernel-object fields safe to corrupt in place.
    enum class FaultObjectField : std::uint8_t {
        sem_count,    ///< Semaphore::count
        sem_max,      ///< Semaphore::maxsem
        flg_pattern,  ///< EventFlag::pattern
    };

    /// Flip bit `bit` (masked to the field width) of `field` in task
    /// `tskid`. Returns false when the task does not exist.
    bool fault_flip_task_field(ID tskid, FaultTaskField field, unsigned bit);
    /// Flip bit `bit` of `field` in object `objid` of the matching class.
    /// Returns false when the object does not exist.
    bool fault_flip_object_field(FaultObjectField field, ID objid, unsigned bit);
    /// Skew the earliest timer-queue entry (timeout / cyclic / alarm
    /// firing) by `delta_ms`; an entry skewed into the past fires on the
    /// next tick. Returns false when the queue is empty.
    bool fault_skew_next_timer(std::int32_t delta_ms);

private:
    friend class ServiceSection;

    // ---- service-call plumbing ----
    /// Enter/exit one atomic service call: consumes the service ETM.
    class ServiceSection {
    public:
        ServiceSection(TKernel& k, std::uint64_t extra_units = 0);
        /// Exception-safe: abandons the section (depth decrement only)
        /// when destroyed during stack unwind -- running preemption
        /// checks while a thread is being killed or exiting would
        /// re-suspend a coroutine that is mid-unwind.
        ///
        /// noexcept(false): the end-of-section preemption check may park
        /// the task (deferred preemption lands at the service boundary),
        /// and a parked task may be killed by tk_ter_tsk -- the resulting
        /// CoroutineKilled must unwind through this destructor.
        ~ServiceSection() noexcept(false);
        /// Leave the atomic section early (before blocking).
        void end();
        ServiceSection(const ServiceSection&) = delete;
        ServiceSection& operator=(const ServiceSection&) = delete;

    private:
        TKernel& k_;
        sim::TThread* thread_ = nullptr;
        bool active_ = false;
    };

    bool in_task_context() const;
    bool in_handler_context() const;

    /// Block the current task on `queue` (nullptr for sleep/delay).
    /// Returns the wait result set by the releasing party.
    ER block_current(TCB& me, WaitKind kind, ID obj, WaitQueue* queue, TMO tmout,
                     ER timeout_result, ServiceSection& svc);
    /// Release `tcb` from its wait with result `er`.
    void release_wait(TCB& tcb, ER er);
    /// Release every waiter of a deleted object with E_DLT.
    void flush_waiters(WaitQueue& queue);
    /// Re-run the wake-up pass of the object a waiter was involuntarily
    /// removed from (timeout, tk_rel_wai, tk_ter_tsk, task exception) or
    /// repositioned in (tk_chg_pri): the removal/reorder may expose a
    /// now-satisfiable head waiter that no future signal would serve.
    void reevaluate_waiters(WaitKind kind, ID obj);

    // ---- timer machinery (Thread Dispatch / timer handler, Fig 3) ----
    struct TimerEntry {
        std::uint64_t seq;
        std::function<void()> fire;
    };
    void arm_task_timeout(TCB& tcb, TMO tmout);
    void cancel_task_timeout(TCB& tcb);
    void schedule_at(SYSTIM when_ms, std::uint64_t seq, std::function<void()> fire);
    void timer_handler();  ///< runs in the tick handler T-THREAD
    /// (Re)schedule the next activation of cyclic handler `cycid` for
    /// activation epoch `seq`.
    void rearm_cyclic(ID cycid, std::uint64_t seq);
    SYSTIM otm_ms() const;
    /// Operating-time instant `ms` milliseconds from now, in the timer
    /// queue's monotonic domain.
    SYSTIM deadline_otm(RELTIM ms) const;

    // ---- mutex helpers ----
    void apply_inheritance(Mutex& m);
    void unlock_mutex_internal(Mutex& m, TCB& owner);

    // ---- task helpers ----
    void task_cleanup(TCB& tcb);  ///< mutex release etc. on exit/termination
    /// Run the pending exception handler of the invoking task, if any
    /// (called at service-call boundaries -- the delivery points).
    void deliver_tex(TCB& me);
    void recompute_priority(TCB& tcb);
    PRI highest_waiter_priority(const Mutex& m) const;
    void transfer_mutex(Mutex& m);
    TCB* tcb_of(ID tskid) const;  ///< resolves TSK_SELF
    ER check_task_id(ID tskid, TCB*& out) const;

    // ---- sync-object wake passes ----
    void mbf_pump(MessageBuffer& m);
    /// Wake satisfiable semaphore waiters per TA_FIRST/TA_CNT.
    void sem_wake_pass(Semaphore& s);
    /// Hand free blocks/extents to pool waiters strictly in queue order.
    void mpf_serve(FixedPool& p);
    void mpl_serve(VariablePool& p);

    sysc::Kernel* sysc_;
    Config cfg_;

    Registry<TCB> tasks_;
    Registry<Semaphore> sems_;
    Registry<EventFlag> flgs_;
    Registry<Mailbox> mbxs_;
    Registry<Mutex> mtxs_;
    Registry<MessageBuffer> mbfs_;
    Registry<FixedPool> mpfs_;
    Registry<VariablePool> mpls_;
    Registry<CyclicHandler> cycs_;
    Registry<AlarmHandler> alms_;
    std::map<UINT, InterruptVector> ints_;

    // Timer queue keyed by absolute system time [ms]: a binary min-heap
    // whose (time, insertion order) key preserves FIFO firing among
    // entries due on the same tick; stale entries are dropped at fire
    // time by the per-object sequence counters captured in `fire`.
    sim::TimerQueue<SYSTIM, TimerEntry> timer_queue_;

    SYSTIM systim_ = 0;               ///< settable system time [ms]
    std::int64_t systim_base_ = 0;    ///< systim = base + operating time
    std::uint64_t tick_count_ = 0;
    std::vector<ID> exd_pending_;     ///< tasks awaiting deferred deletion

    std::function<void()> usermain_;
    sysc::Event* tick_source_ = nullptr;
    sim::TThread* tick_thread_ = nullptr;
    std::vector<sysc::Process*> central_procs_;  ///< Boot/Dispatch/wires
    ID init_task_id_ = 0;
    bool booted_ = false;
    bool boot_scheduled_ = false;

    // Declared last so member destruction unwinds SIM_API (and with it
    // every task coroutine) FIRST: the ExitCleanup guards on those stacks
    // run task_cleanup, which touches the TCBs and the mutex registry
    // above. sched_ precedes api_ because the unwinding tasks still call
    // into the scheduler. Do not reorder.
    std::unique_ptr<sim::Scheduler> sched_;
    std::unique_ptr<sim::SimApi> api_;
};

}  // namespace rtk::tkernel
