// Task exception handling (tk_def_tex / tk_ras_tex / tk_ena_tex /
// tk_dis_tex / tk_ref_tex).
//
// Model: raised pattern bits latch in the target's TCB; a waiting target
// is released from its wait with E_DISWAI. The handler executes in the
// target task's own context at its next task-level execution point --
// here, the next service-call boundary (every tk_* call the task makes,
// and the return from every wait, is such a point). Exception handling is
// disabled while the handler runs and re-enabled afterwards, per the
// µ-ITRON/T-Kernel rules; a handler-less or disabled task accumulates
// pending bits until handling is possible.
#include "tkernel/kernel.hpp"

namespace rtk::tkernel {

ER TKernel::tk_def_tex(ID tskid, const T_DTEX& pk) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    t->texhdr = pk.texhdr;
    t->texptn_pending = 0;
    t->tex_enabled = static_cast<bool>(pk.texhdr);
    return E_OK;
}

ER TKernel::tk_ras_tex(ID tskid, UINT rasptn) {
    ServiceSection svc(*this);
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    if (rasptn == 0) {
        return E_PAR;
    }
    if (!t->texhdr) {
        return E_OBJ;  // no handler defined
    }
    if (t->thread->state() == sim::ThreadState::dormant) {
        return E_OBJ;
    }
    t->texptn_pending |= rasptn;
    // A waiting target is released so the exception can be handled
    // promptly (its wait service returns E_DISWAI).
    if (t->wait_kind != WaitKind::none) {
        const WaitKind kind = t->wait_kind;
        const ID obj = t->wait_obj;
        Mutex* mtx = (kind == WaitKind::mutex) ? mtxs_.find(obj) : nullptr;
        release_wait(*t, E_DISWAI);
        if (mtx != nullptr && mtx->owner != nullptr) {
            recompute_priority(*mtx->owner);
        }
        reevaluate_waiters(kind, obj);
    }
    // Self-raise delivers at this very service boundary.
    if (t == current_tcb()) {
        deliver_tex(*t);
    }
    return E_OK;
}

ER TKernel::tk_ena_tex() {
    ServiceSection svc(*this);
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    if (!me->texhdr) {
        return E_OBJ;
    }
    me->tex_enabled = true;
    deliver_tex(*me);  // pending bits fire immediately
    return E_OK;
}

ER TKernel::tk_dis_tex() {
    ServiceSection svc(*this);
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    if (!me->texhdr) {
        return E_OBJ;
    }
    me->tex_enabled = false;
    return E_OK;
}

ER TKernel::tk_ref_tex(ID tskid, T_RTEX* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    TCB* t = nullptr;
    if (ER er = check_task_id(tskid, t); er != E_OK) {
        return er;
    }
    pk->pendtex = t->texptn_pending;
    pk->texmsk = t->tex_enabled ? 1 : 0;
    return E_OK;
}

void TKernel::deliver_tex(TCB& me) {
    if (me.in_tex || !me.tex_enabled || me.texptn_pending == 0 || !me.texhdr) {
        return;
    }
    // The handler consumes the whole pending pattern atomically and runs
    // with exception handling disabled (no nesting).
    const UINT ptn = me.texptn_pending;
    me.texptn_pending = 0;
    me.in_tex = true;
    ++me.tex_delivered;
    api_->SIM_WaitUnits(cfg_.service_cost_units, sim::ExecContext::service_call);
    me.texhdr(ptn);
    me.in_tex = false;
}

}  // namespace rtk::tkernel
