// Event flag service calls (tk_cre_flg ... tk_ref_flg).
#include "tkernel/kernel.hpp"

namespace rtk::tkernel {

namespace {
/// µ-ITRON release condition for one waiter against `pattern`.
bool flag_satisfied(UINT pattern, UINT waiptn, UINT wfmode) {
    if ((wfmode & TWF_ORW) != 0) {
        return (pattern & waiptn) != 0;
    }
    return (pattern & waiptn) == waiptn;  // TWF_ANDW
}
}  // namespace

ID TKernel::tk_cre_flg(const T_CFLG& pk) {
    ServiceSection svc(*this);
    auto f = std::make_unique<EventFlag>();
    f->name = pk.name;
    f->exinf = pk.exinf;
    f->atr = pk.flgatr;
    f->pattern = pk.iflgptn;
    f->queue.set_priority_ordered((pk.flgatr & TA_TPRI) != 0);
    return flgs_.add(std::move(f));
}

ER TKernel::tk_del_flg(ID flgid) {
    ServiceSection svc(*this);
    EventFlag* f = flgs_.find(flgid);
    if (f == nullptr) {
        return flgid <= 0 ? E_ID : E_NOEXS;
    }
    flush_waiters(f->queue);
    flgs_.erase(flgid);
    return E_OK;
}

ER TKernel::tk_set_flg(ID flgid, UINT setptn) {
    ServiceSection svc(*this);
    EventFlag* f = flgs_.find(flgid);
    if (f == nullptr) {
        return flgid <= 0 ? E_ID : E_NOEXS;
    }
    f->pattern |= setptn;
    // Scan waiters in queue order; each released waiter may clear bits,
    // which can starve the next (µ-ITRON-conformant behaviour). A single
    // forward pass matches the historical rescan-from-head: the pattern
    // only loses bits after a release, so an already-passed waiter that
    // was unsatisfied cannot become satisfied within this call.
    TCB* w = f->queue.front();
    while (w != nullptr) {
        TCB* nxt = f->queue.next_of(*w);
        if (flag_satisfied(f->pattern, w->wai_ptn, w->wfmode)) {
            w->ret_ptn = f->pattern;
            if ((w->wfmode & TWF_CLR) != 0) {
                f->pattern = 0;
            } else if ((w->wfmode & TWF_BITCLR) != 0) {
                f->pattern &= ~w->wai_ptn;
            }
            release_wait(*w, E_OK);
        }
        w = nxt;
    }
    return E_OK;
}

ER TKernel::tk_clr_flg(ID flgid, UINT clrptn) {
    ServiceSection svc(*this);
    EventFlag* f = flgs_.find(flgid);
    if (f == nullptr) {
        return flgid <= 0 ? E_ID : E_NOEXS;
    }
    f->pattern &= clrptn;
    return E_OK;
}

ER TKernel::tk_wai_flg(ID flgid, UINT waiptn, UINT wfmode, UINT* p_flgptn, TMO tmout) {
    ServiceSection svc(*this);
    EventFlag* f = flgs_.find(flgid);
    if (f == nullptr) {
        return flgid <= 0 ? E_ID : E_NOEXS;
    }
    if (waiptn == 0 || p_flgptn == nullptr) {
        return E_PAR;
    }
    if ((f->atr & TA_WMUL) == 0 && !f->queue.empty()) {
        return E_OBJ;  // TA_WSGL: only one waiter allowed
    }
    if (flag_satisfied(f->pattern, waiptn, wfmode)) {
        *p_flgptn = f->pattern;
        if ((wfmode & TWF_CLR) != 0) {
            f->pattern = 0;
        } else if ((wfmode & TWF_BITCLR) != 0) {
            f->pattern &= ~waiptn;
        }
        return E_OK;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    me->wai_ptn = waiptn;
    me->wfmode = wfmode;
    const ER er =
        block_current(*me, WaitKind::eventflag, flgid, &f->queue, tmout, E_TMOUT, svc);
    if (er == E_OK) {
        *p_flgptn = me->ret_ptn;
    }
    return er;
}

ER TKernel::tk_ref_flg(ID flgid, T_RFLG* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    EventFlag* f = flgs_.find(flgid);
    if (f == nullptr) {
        return flgid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = f->exinf;
    pk->flgptn = f->pattern;
    pk->wtsk = f->queue.empty() ? 0 : f->queue.front()->id;
    return E_OK;
}

}  // namespace rtk::tkernel
