// Task wait queue with µ-ITRON ordering semantics: TA_TFIFO appends,
// TA_TPRI keeps tasks sorted by current priority (FIFO among equals).
//
// The queue is intrusive: it is threaded through TCB::wq_prev/wq_next,
// with TCB::queue doubling as the O(1) membership marker. remove() and
// contains() are O(1); a TA_TPRI insert walks from the tail past the
// lower-priority waiters only. Lifetime rules: a task is linked into at
// most one wait queue at a time (enforced by the kernel's blocking
// paths), the link fields are owned by that queue while tcb.queue is
// non-null, and a TCB must be removed before it is destroyed (task
// deletion requires DORMANT, which implies not waiting).
#pragma once

#include <cstddef>
#include <vector>

#include "tkernel/tk_types.hpp"

namespace rtk::tkernel {

struct TCB;

class WaitQueue {
public:
    explicit WaitQueue(bool priority_ordered = false)
        : priority_ordered_(priority_ordered) {}

    void set_priority_ordered(bool on) { priority_ordered_ = on; }
    bool priority_ordered() const { return priority_ordered_; }

    /// Enqueue per ordering policy; records the queue in tcb.queue.
    void enqueue(TCB& tcb);

    /// Remove (no-op if absent); clears tcb.queue.
    void remove(TCB& tcb);

    /// Re-sort one task after a priority change (TA_TPRI queues).
    void reposition(TCB& tcb);

    TCB* front() const { return head_; }
    TCB* pop_front();

    /// Would `tcb` land at the head if enqueued right now? True for an
    /// empty queue; for a TA_TPRI queue also when tcb is strictly more
    /// urgent than the current head (FIFO among equals queues behind).
    /// The kernel's resource fast paths use this: head precedence
    /// belongs to whoever *would* head the queue, not just to incumbents.
    bool would_lead(const TCB& tcb) const;

    bool empty() const { return head_ == nullptr; }
    std::size_t size() const { return size_; }
    bool contains(const TCB& tcb) const;

    /// Successor of a queued task in queue order (iteration helper;
    /// capture it before releasing `tcb` when walking and waking).
    TCB* next_of(const TCB& tcb) const;

    std::vector<TCB*> snapshot() const;

private:
    /// Insert before `pos` (nullptr == append at the tail).
    void insert_before(TCB& tcb, TCB* pos);
    /// Priority-ordered insert: FIFO among equal priorities.
    void insert_sorted(TCB& tcb);
    void unlink(TCB& tcb);

    bool priority_ordered_;
    TCB* head_ = nullptr;
    TCB* tail_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace rtk::tkernel
