// Task wait queue with µ-ITRON ordering semantics: TA_TFIFO appends,
// TA_TPRI keeps tasks sorted by current priority (FIFO among equals).
#pragma once

#include <list>
#include <vector>

#include "tkernel/tk_types.hpp"

namespace rtk::tkernel {

struct TCB;

class WaitQueue {
public:
    explicit WaitQueue(bool priority_ordered = false)
        : priority_ordered_(priority_ordered) {}

    void set_priority_ordered(bool on) { priority_ordered_ = on; }
    bool priority_ordered() const { return priority_ordered_; }

    /// Enqueue per ordering policy; records the queue in tcb.queue.
    void enqueue(TCB& tcb);

    /// Remove (no-op if absent); clears tcb.queue.
    void remove(TCB& tcb);

    /// Re-sort one task after a priority change (TA_TPRI queues).
    void reposition(TCB& tcb);

    TCB* front() const { return tasks_.empty() ? nullptr : tasks_.front(); }
    TCB* pop_front();

    bool empty() const { return tasks_.empty(); }
    std::size_t size() const { return tasks_.size(); }
    bool contains(const TCB& tcb) const;

    std::vector<TCB*> snapshot() const { return {tasks_.begin(), tasks_.end()}; }

private:
    bool priority_ordered_;
    std::list<TCB*> tasks_;
};

}  // namespace rtk::tkernel
