// Umbrella header for rtk::tkernel -- the RTK-Spec TRON kernel model.
#pragma once

#include "tkernel/kernel.hpp"
#include "tkernel/objects.hpp"
#include "tkernel/tcb.hpp"
#include "tkernel/tk_types.hpp"
#include "tkernel/wait_queue.hpp"
