// Core of the T-Kernel/OS model: construction, the central module of
// Fig 3 (Boot / Thread Dispatch / Interrupt Dispatch), service-call
// plumbing, blocking/release helpers and the timer machinery.
#include "tkernel/kernel.hpp"

#include <cstdint>
#include <exception>

#include "sysc/report.hpp"

namespace rtk::tkernel {

using sim::ExecContext;
using sim::ThreadKind;
using sysc::Time;

namespace {
/// T-THREAD priority bands: handlers outrank every task; the tick handler
/// outranks everything (it models the timer interrupt).
constexpr sim::Priority tick_thread_priority = -1'000'000;
constexpr sim::Priority external_int_priority_base = -1'000;
constexpr sim::Priority time_event_priority = -100;
}  // namespace

TKernel::TKernel(sysc::Kernel& sysc_kernel) : TKernel(sysc_kernel, Config{}) {}

TKernel::TKernel(sysc::Kernel& sysc_kernel, Config cfg)
    : sysc_(&sysc_kernel), cfg_(cfg) {
    sim::SimApi::Config sc;
    sc.quantum = cfg_.tick;
    sc.dispatch_cost = cfg_.dispatch_cost;
    sc.dispatch_energy_nj = cfg_.dispatch_energy_nj;
    sc.service_call_atomicity = cfg_.service_call_atomicity;
    sc.delayed_dispatching = cfg_.delayed_dispatching;
    sc.nested_interrupts = cfg_.nested_interrupts;
    sc.record_gantt = cfg_.record_gantt;
    if (cfg_.policy == SchedPolicy::round_robin) {
        sched_ = std::make_unique<sim::RoundRobinScheduler>();
    } else {
        sched_ = std::make_unique<sim::PriorityPreemptiveScheduler>();
    }
    api_ = std::make_unique<sim::SimApi>(*sysc_, *sched_, sc);

    // The tick handler T-THREAD: "Thread Dispatch activates the timer
    // handler inside the T-Kernel/OS" (paper Fig 3).
    tick_thread_ = &api_->SIM_CreateThread(
        "tkernel.tick", ThreadKind::interrupt_handler, tick_thread_priority, [this] {
            api_->SIM_WaitUnits(cfg_.timer_handler_cost_units, ExecContext::handler);
            timer_handler();
        });
}

TKernel::~TKernel() {
    // Kill the central-module processes first: they reference this object
    // and possibly external tick/IRQ events that may die before the
    // simulation kernel does.
    for (sysc::Process* p : central_procs_) {
        p->kill();
    }
}

// ---- boot -------------------------------------------------------------------

void TKernel::set_user_main(std::function<void()> usermain) {
    usermain_ = std::move(usermain);
}

void TKernel::power_on() {
    if (boot_scheduled_) {
        sysc::report(sysc::Severity::warning, "tkernel", "power_on() called twice");
        return;
    }
    boot_scheduled_ = true;
    auto& k = *sysc_;
    // Boot module: "responsible for kernel startup sequence upon receiving
    // H/W reset, i.e. initializing the kernel internal state and starting
    // the initialization task, that will consequently call the user main
    // entry to create & start tasks, handlers and allocate application
    // resources" (paper Fig 3).
    central_procs_.push_back(&k.spawn("tkernel.boot", [this] {
        booted_ = true;
        T_CTSK ct;
        ct.name = "init";
        ct.itskpri = cfg_.init_task_priority;
        ct.task = [this](INT, void*) {
            if (usermain_) {
                usermain_();
            }
        };
        init_task_id_ = tk_cre_tsk(ct);
        tk_sta_tsk(init_task_id_, 0);
    }));
    // Thread Dispatch module: sensitive to the system tick -- either the
    // internal timer or the BFM real-time clock (paper §5.1).
    central_procs_.push_back(&k.spawn("tkernel.thread_dispatch", [this] {
        for (;;) {
            if (tick_source_ != nullptr) {
                sysc::wait(*tick_source_);
            } else {
                sysc::wait(cfg_.tick);
            }
            api_->SIM_RaiseInterrupt(*tick_thread_);
        }
    }));
}

void TKernel::attach_tick_source(sysc::Event& tick) {
    tick_source_ = &tick;
}

void TKernel::attach_reset(sysc::Event& reset_release) {
    central_procs_.push_back(
        &sysc_->spawn("tkernel.reset_wire", [this, &reset_release] {
            sysc::wait(reset_release);
            power_on();
        }));
}

void TKernel::attach_interrupt_line(sysc::Event& irq, UINT intno) {
    // Interrupt Dispatch module: "identifies and responds to external
    // interrupts by calling a simulation API to notify their dedicated
    // interrupt service routines" (paper Fig 3).
    central_procs_.push_back(&sysc_->spawn(
        "tkernel.int_dispatch." + std::to_string(intno), [this, &irq, intno] {
            for (;;) {
                sysc::wait(irq);
                trigger_interrupt(intno);
            }
        }));
}

// ---- service-call plumbing ------------------------------------------------------

TKernel::ServiceSection::ServiceSection(TKernel& k, std::uint64_t extra_units)
    : k_(k), thread_(k.api_->self_or_null()) {
    if (thread_ != nullptr) {
        k_.api_->SIM_EnterService();
        active_ = true;
        k_.api_->SIM_WaitUnits(k_.cfg_.service_cost_units + extra_units,
                               ExecContext::service_call);
        // Service-call boundaries are the task-exception delivery points.
        if (!thread_->is_handler()) {
            if (auto* me = static_cast<TCB*>(thread_->user_data())) {
                k_.deliver_tex(*me);
            }
        }
    }
}

TKernel::ServiceSection::~ServiceSection() noexcept(false) {
    if (!active_) {
        return;
    }
    if (std::uncaught_exceptions() > 0) {
        active_ = false;
        k_.api_->SIM_AbandonService(*thread_);
    } else {
        end();
    }
}

void TKernel::ServiceSection::end() {
    if (active_) {
        active_ = false;
        k_.api_->SIM_ExitService();
    }
}

bool TKernel::in_task_context() const {
    sim::TThread* t = api_->self_or_null();
    return t != nullptr && !t->is_handler();
}

bool TKernel::in_handler_context() const {
    sim::TThread* t = api_->self_or_null();
    return t != nullptr && t->is_handler();
}

TCB* TKernel::current_tcb() const {
    sim::TThread* t = api_->self_or_null();
    if (t == nullptr || t->is_handler()) {
        return nullptr;
    }
    return static_cast<TCB*>(t->user_data());
}

TCB* TKernel::tcb_of(ID tskid) const {
    if (tskid == TSK_SELF) {
        return current_tcb();
    }
    return tasks_.find(tskid);
}

ER TKernel::check_task_id(ID tskid, TCB*& out) const {
    if (tskid < 0) {
        return E_ID;
    }
    out = tcb_of(tskid);
    if (out == nullptr) {
        return tskid == TSK_SELF ? E_CTX : E_NOEXS;
    }
    return E_OK;
}

// ---- blocking / release ----------------------------------------------------------

ER TKernel::block_current(TCB& me, WaitKind kind, ID obj, WaitQueue* queue,
                          TMO tmout, ER timeout_result, ServiceSection& svc) {
    me.wait_kind = kind;
    me.wait_obj = obj;
    me.wait_result = E_OK;
    me.timeout_result = timeout_result;
    if (queue != nullptr) {
        queue->enqueue(me);
    }
    if (tmout != TMO_FEVR) {
        arm_task_timeout(me, tmout);
    }
    // Block while still inside the atomic service section: leaving it
    // first would open a preemption point between enqueue and sleep in
    // which a releaser could run and the wakeup would be lost. A sleeping
    // task has no preemption points, so holding the section is harmless;
    // the guard is released by the caller's epilogue after the wake.
    (void)svc;
    api_->SIM_Sleep();
    cancel_task_timeout(me);
    me.wait_kind = WaitKind::none;
    me.wait_obj = 0;
    return me.wait_result;
}

void TKernel::release_wait(TCB& tcb, ER er) {
    cancel_task_timeout(tcb);
    if (tcb.queue != nullptr) {
        tcb.queue->remove(tcb);
    }
    // Clear the wait factor NOW: the released task may not run for a
    // while, and a second releaser (tk_rel_wai, another signal) must see
    // it as no-longer-waiting.
    tcb.wait_kind = WaitKind::none;
    tcb.wait_obj = 0;
    tcb.wait_result = er;
    api_->SIM_WakeUp(*tcb.thread);
}

void TKernel::flush_waiters(WaitQueue& queue) {
    while (TCB* w = queue.front()) {
        release_wait(*w, E_DLT);
    }
}

void TKernel::reevaluate_waiters(WaitKind kind, ID obj) {
    // An involuntary removal (timeout, tk_rel_wai, tk_ter_tsk, task
    // exception) or a tk_chg_pri reposition may have changed the head of
    // a wait queue whose release condition depends on queue order: the
    // new head can be satisfiable right now, and no future signal would
    // notice (signals only run their pass when resources arrive).
    switch (kind) {
        case WaitKind::semaphore:
            if (Semaphore* s = sems_.find(obj)) {
                sem_wake_pass(*s);
            }
            break;
        case WaitKind::msgbuf_snd:
        case WaitKind::msgbuf_rcv:
            if (MessageBuffer* m = mbfs_.find(obj)) {
                mbf_pump(*m);
            }
            break;
        case WaitKind::mempool_fixed:
            if (FixedPool* p = mpfs_.find(obj)) {
                mpf_serve(*p);
            }
            break;
        case WaitKind::mempool_var:
            if (VariablePool* p = mpls_.find(obj)) {
                mpl_serve(*p);
            }
            break;
        default:
            // Eventflags evaluate each waiter independently of queue
            // order; mailbox receivers only wait while no message is
            // queued; mutex hand-off happens at unlock only.
            break;
    }
}

// ---- timer machinery ---------------------------------------------------------------

SYSTIM TKernel::otm_ms() const {
    return (cfg_.tick * tick_count_).picoseconds() / 1'000'000'000ull;
}

SYSTIM TKernel::deadline_otm(RELTIM ms) const {
    // A relative timeout expires at the first tick at least `ms` later.
    return otm_ms() + (ms == 0 ? 1 : ms);
}

void TKernel::schedule_at(SYSTIM when_ms, std::uint64_t seq, std::function<void()> fire) {
    timer_queue_.schedule(when_ms, TimerEntry{seq, std::move(fire)});
}

void TKernel::arm_task_timeout(TCB& tcb, TMO tmout) {
    if (tmout <= 0) {
        return;  // TMO_FEVR handled by caller; TMO_POL never blocks
    }
    const std::uint64_t seq = ++tcb.timer_seq;
    const ID tid = tcb.id;
    schedule_at(deadline_otm(static_cast<RELTIM>(tmout)), seq, [this, tid, seq] {
        TCB* t = tasks_.find(tid);
        if (t == nullptr || t->timer_seq != seq || t->wait_kind == WaitKind::none) {
            return;  // stale entry
        }
        // A timed-out mutex waiter may deflate the owner's inherited
        // priority; remember the wait factor before clearing it.
        const WaitKind kind = t->wait_kind;
        const ID obj = t->wait_obj;
        Mutex* mtx = (kind == WaitKind::mutex) ? mtxs_.find(obj) : nullptr;
        release_wait(*t, t->timeout_result);
        if (mtx != nullptr && mtx->owner != nullptr) {
            recompute_priority(*mtx->owner);
        }
        reevaluate_waiters(kind, obj);
    });
}

void TKernel::cancel_task_timeout(TCB& tcb) {
    ++tcb.timer_seq;  // lazily invalidates any queued entry
}

void TKernel::timer_handler() {
    // Paper Fig 3: "The timer handler updates the system clock, checks for
    // cyclic, alarm events, or task resuming events in the timer queue, it
    // then calls simulation library APIs to start running a task/handler
    // or preempt the running task if a task of higher priority is ready."
    ++tick_count_;
    systim_ = static_cast<SYSTIM>(systim_base_ + static_cast<std::int64_t>(otm_ms()));
    const SYSTIM now = otm_ms();
    while (!timer_queue_.empty() && timer_queue_.next_at() <= now) {
        TimerEntry entry = timer_queue_.pop();
        entry.fire();
    }
    // Round robin: one system tick is one slice; the running task yields
    // to the FIFO's head whenever a competitor is ready (RTK-Spec I).
    if (cfg_.policy == SchedPolicy::round_robin) {
        sim::TThread* run = api_->running_task();
        if (run != nullptr && api_->scheduler().ready_count() > 0) {
            api_->SIM_RequestPreempt(*run);
        }
    }
    // Deferred deletion of tasks that called tk_exd_tsk.
    if (!exd_pending_.empty()) {
        auto pending = std::move(exd_pending_);
        exd_pending_.clear();
        for (ID tid : pending) {
            TCB* t = tasks_.find(tid);
            if (t != nullptr && t->thread->state() == sim::ThreadState::dormant) {
                api_->SIM_DeleteThread(*t->thread);
                tasks_.erase(tid);
            }
        }
    }
}

// ---- sanctioned fault-injection hooks ----------------------------------------

namespace {
// Bit flips stay inside the field's width; signed fields flip through
// their unsigned image so no flip is UB, only nonsense the kernel's own
// range checks then have to survive.
std::uint32_t flip_u32(std::uint32_t v, unsigned bit) {
    return v ^ (1u << (bit % 32));
}
INT flip_int(INT v, unsigned bit) {
    return static_cast<INT>(flip_u32(static_cast<std::uint32_t>(v), bit));
}
}  // namespace

bool TKernel::fault_flip_task_field(ID tskid, FaultTaskField field, unsigned bit) {
    TCB* t = tasks_.find(tskid);
    if (t == nullptr) {
        return false;
    }
    switch (field) {
        case FaultTaskField::wakeup_count:
            t->wakeup_count ^= 1ull << (bit % 64);
            return true;
        case FaultTaskField::texptn_pending:
            t->texptn_pending = flip_u32(t->texptn_pending, bit);
            return true;
        case FaultTaskField::wai_ptn:
            t->wai_ptn = flip_u32(t->wai_ptn, bit);
            return true;
        case FaultTaskField::ret_ptn:
            t->ret_ptn = flip_u32(t->ret_ptn, bit);
            return true;
        case FaultTaskField::req_count:
            t->req_count = flip_int(t->req_count, bit);
            return true;
        case FaultTaskField::stacd:
            t->stacd = flip_int(t->stacd, bit);
            return true;
    }
    return false;
}

bool TKernel::fault_flip_object_field(FaultObjectField field, ID objid,
                                      unsigned bit) {
    switch (field) {
        case FaultObjectField::sem_count: {
            Semaphore* s = sems_.find(objid);
            if (s == nullptr) {
                return false;
            }
            s->count = flip_int(s->count, bit);
            return true;
        }
        case FaultObjectField::sem_max: {
            Semaphore* s = sems_.find(objid);
            if (s == nullptr) {
                return false;
            }
            s->maxsem = flip_int(s->maxsem, bit);
            return true;
        }
        case FaultObjectField::flg_pattern: {
            EventFlag* f = flgs_.find(objid);
            if (f == nullptr) {
                return false;
            }
            f->pattern = flip_u32(f->pattern, bit);
            return true;
        }
    }
    return false;
}

bool TKernel::fault_skew_next_timer(std::int32_t delta_ms) {
    if (timer_queue_.empty()) {
        return false;
    }
    const SYSTIM at = timer_queue_.next_at();
    TimerEntry entry = timer_queue_.pop();
    const std::int64_t skewed =
        static_cast<std::int64_t>(at) + static_cast<std::int64_t>(delta_ms);
    timer_queue_.schedule(skewed < 0 ? 0 : static_cast<SYSTIM>(skewed),
                          std::move(entry));
    return true;
}

}  // namespace rtk::tkernel
