#include "tkernel/wait_queue.hpp"

#include "sysc/report.hpp"
#include "tkernel/tcb.hpp"

namespace rtk::tkernel {

namespace {
PRI pri_of(const TCB& t) {
    return t.thread->priority();
}
}  // namespace

void WaitQueue::insert_before(TCB& tcb, TCB* pos) {
    if (pos == nullptr) {  // append
        tcb.wq_prev = tail_;
        tcb.wq_next = nullptr;
        if (tail_ != nullptr) {
            tail_->wq_next = &tcb;
        } else {
            head_ = &tcb;
        }
        tail_ = &tcb;
    } else {
        tcb.wq_prev = pos->wq_prev;
        tcb.wq_next = pos;
        if (pos->wq_prev != nullptr) {
            pos->wq_prev->wq_next = &tcb;
        } else {
            head_ = &tcb;
        }
        pos->wq_prev = &tcb;
    }
    ++size_;
}

void WaitQueue::insert_sorted(TCB& tcb) {
    // Walk back from the tail past strictly lower-priority waiters: the
    // insert lands after the last waiter with priority <= ours, i.e.
    // priority order with FIFO among equals. Cost is bounded by the
    // number of lower-priority waiters, not the queue length.
    TCB* pos = tail_;
    while (pos != nullptr && pri_of(*pos) > pri_of(tcb)) {
        pos = pos->wq_prev;
    }
    insert_before(tcb, pos == nullptr ? head_ : pos->wq_next);
}

void WaitQueue::unlink(TCB& tcb) {
    if (tcb.wq_prev != nullptr) {
        tcb.wq_prev->wq_next = tcb.wq_next;
    } else {
        head_ = tcb.wq_next;
    }
    if (tcb.wq_next != nullptr) {
        tcb.wq_next->wq_prev = tcb.wq_prev;
    } else {
        tail_ = tcb.wq_prev;
    }
    tcb.wq_prev = nullptr;
    tcb.wq_next = nullptr;
    --size_;
}

void WaitQueue::enqueue(TCB& tcb) {
    if (tcb.queue != nullptr) {
        sysc::report(sysc::Severity::fatal, "wait_queue",
                     "wait-queue corruption: task '" + tcb.name +
                         "' enqueued while already waiting on a queue");
    }
    if (priority_ordered_) {
        insert_sorted(tcb);
    } else {
        insert_before(tcb, nullptr);
    }
    tcb.queue = this;
}

void WaitQueue::remove(TCB& tcb) {
    if (tcb.queue != this) {
        return;
    }
    unlink(tcb);
    tcb.queue = nullptr;
}

void WaitQueue::reposition(TCB& tcb) {
    if (!priority_ordered_ || tcb.queue != this) {
        return;
    }
    unlink(tcb);
    insert_sorted(tcb);
}

TCB* WaitQueue::pop_front() {
    TCB* t = head_;
    if (t != nullptr) {
        unlink(*t);
        t->queue = nullptr;
    }
    return t;
}

bool WaitQueue::contains(const TCB& tcb) const {
    return tcb.queue == this;
}

bool WaitQueue::would_lead(const TCB& tcb) const {
    if (head_ == nullptr) {
        return true;
    }
    return priority_ordered_ && pri_of(tcb) < pri_of(*head_);
}

TCB* WaitQueue::next_of(const TCB& tcb) const {
    return tcb.queue == this ? tcb.wq_next : nullptr;
}

std::vector<TCB*> WaitQueue::snapshot() const {
    std::vector<TCB*> out;
    out.reserve(size_);
    for (TCB* t = head_; t != nullptr; t = t->wq_next) {
        out.push_back(t);
    }
    return out;
}

}  // namespace rtk::tkernel
