#include "tkernel/wait_queue.hpp"

#include <algorithm>

#include "tkernel/tcb.hpp"

namespace rtk::tkernel {

namespace {
PRI pri_of(const TCB& t) {
    return t.thread->priority();
}
}  // namespace

void WaitQueue::enqueue(TCB& tcb) {
    if (priority_ordered_) {
        auto it = std::find_if(tasks_.begin(), tasks_.end(), [&tcb](const TCB* q) {
            return pri_of(tcb) < pri_of(*q);
        });
        tasks_.insert(it, &tcb);
    } else {
        tasks_.push_back(&tcb);
    }
    tcb.queue = this;
}

void WaitQueue::remove(TCB& tcb) {
    tasks_.remove(&tcb);
    if (tcb.queue == this) {
        tcb.queue = nullptr;
    }
}

void WaitQueue::reposition(TCB& tcb) {
    if (!priority_ordered_ || !contains(tcb)) {
        return;
    }
    tasks_.remove(&tcb);
    auto it = std::find_if(tasks_.begin(), tasks_.end(), [&tcb](const TCB* q) {
        return pri_of(tcb) < pri_of(*q);
    });
    tasks_.insert(it, &tcb);
}

TCB* WaitQueue::pop_front() {
    if (tasks_.empty()) {
        return nullptr;
    }
    TCB* t = tasks_.front();
    tasks_.pop_front();
    t->queue = nullptr;
    return t;
}

bool WaitQueue::contains(const TCB& tcb) const {
    return std::find(tasks_.begin(), tasks_.end(), &tcb) != tasks_.end();
}

}  // namespace rtk::tkernel
