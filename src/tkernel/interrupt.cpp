// Interrupt management: external interrupt vectors, their handler
// T-THREADs, and delivery from the Interrupt Dispatch module (Fig 3).
#include "tkernel/kernel.hpp"

#include <cstdint>

namespace rtk::tkernel {

using sim::ExecContext;
using sim::ThreadKind;

namespace {
constexpr sim::Priority external_int_priority_base = -1'000;
constexpr std::uint64_t isr_entry_cost_units = 2;
}  // namespace

ER TKernel::tk_def_int(UINT intno, const T_DINT& pk) {
    ServiceSection svc(*this);
    if (!pk.inthdr) {
        return E_PAR;
    }
    if (ints_.count(intno) != 0) {
        return E_OBJ;  // tk_undef_int first
    }
    InterruptVector vec;
    vec.intno = intno;
    vec.atr = pk.intatr;
    vec.intpri = pk.intpri;
    vec.handler = pk.inthdr;
    auto [it, ok] = ints_.emplace(intno, std::move(vec));
    InterruptVector* p = &it->second;
    p->thread = &api_->SIM_CreateThread(
        "isr" + std::to_string(intno), ThreadKind::interrupt_handler,
        external_int_priority_base + pk.intpri, [this, p] {
            api_->SIM_WaitUnits(isr_entry_cost_units, ExecContext::handler);
            p->handler(reinterpret_cast<void*>(static_cast<std::uintptr_t>(p->intno)));
        });
    return E_OK;
}

ER TKernel::tk_undef_int(UINT intno) {
    ServiceSection svc(*this);
    auto it = ints_.find(intno);
    if (it == ints_.end()) {
        return E_NOEXS;
    }
    if (it->second.thread->state() != sim::ThreadState::dormant) {
        return E_OBJ;  // handler currently active
    }
    api_->SIM_DeleteThread(*it->second.thread);
    ints_.erase(it);
    return E_OK;
}

ER TKernel::trigger_interrupt(UINT intno) {
    auto it = ints_.find(intno);
    if (it == ints_.end()) {
        return E_NOEXS;
    }
    if (!it->second.enabled) {
        return E_OK;  // masked: the edge is lost (modeled controller behaviour)
    }
    ++it->second.deliveries;
    api_->SIM_RaiseInterrupt(*it->second.thread);
    return E_OK;
}

ER TKernel::enable_int(UINT intno) {
    auto it = ints_.find(intno);
    if (it == ints_.end()) {
        return E_NOEXS;
    }
    it->second.enabled = true;
    return E_OK;
}

ER TKernel::disable_int(UINT intno) {
    auto it = ints_.find(intno);
    if (it == ints_.end()) {
        return E_NOEXS;
    }
    it->second.enabled = false;
    return E_OK;
}

}  // namespace rtk::tkernel
