#include "tkernel/tk_types.hpp"

namespace rtk::tkernel {

const char* er_str(ER er) {
    switch (er) {
        case E_OK: return "E_OK";
        case E_SYS: return "E_SYS";
        case E_NOSPT: return "E_NOSPT";
        case E_RSATR: return "E_RSATR";
        case E_PAR: return "E_PAR";
        case E_ID: return "E_ID";
        case E_CTX: return "E_CTX";
        case E_ILUSE: return "E_ILUSE";
        case E_NOMEM: return "E_NOMEM";
        case E_LIMIT: return "E_LIMIT";
        case E_OBJ: return "E_OBJ";
        case E_NOEXS: return "E_NOEXS";
        case E_QOVR: return "E_QOVR";
        case E_RLWAI: return "E_RLWAI";
        case E_TMOUT: return "E_TMOUT";
        case E_DLT: return "E_DLT";
        case E_DISWAI: return "E_DISWAI";
        default: return er >= 0 ? "E_OK+" : "E_???";
    }
}

}  // namespace rtk::tkernel
