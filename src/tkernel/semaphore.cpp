// Semaphore service calls (tk_cre_sem ... tk_ref_sem).
#include "tkernel/kernel.hpp"

namespace rtk::tkernel {

ID TKernel::tk_cre_sem(const T_CSEM& pk) {
    ServiceSection svc(*this);
    if (pk.isemcnt < 0 || pk.maxsem <= 0 || pk.isemcnt > pk.maxsem) {
        return E_PAR;
    }
    auto s = std::make_unique<Semaphore>();
    s->name = pk.name;
    s->exinf = pk.exinf;
    s->atr = pk.sematr;
    s->count = pk.isemcnt;
    s->maxsem = pk.maxsem;
    s->queue.set_priority_ordered((pk.sematr & TA_TPRI) != 0);
    return sems_.add(std::move(s));
}

ER TKernel::tk_del_sem(ID semid) {
    ServiceSection svc(*this);
    Semaphore* s = sems_.find(semid);
    if (s == nullptr) {
        return semid <= 0 ? E_ID : E_NOEXS;
    }
    flush_waiters(s->queue);
    sems_.erase(semid);
    return E_OK;
}

void TKernel::sem_wake_pass(Semaphore& s) {
    // Wake waiters whose request is now satisfiable. TA_FIRST serves the
    // queue head strictly in order; TA_CNT may satisfy a later (smaller)
    // request when the head does not fit.
    if ((s.atr & TA_CNT) != 0) {
        // Single forward pass. Equivalent to rescanning from the head
        // after every release: the count only shrinks, so a waiter that
        // did not fit when passed cannot fit later in the same pass.
        TCB* w = s.queue.front();
        while (w != nullptr && s.count > 0) {
            TCB* nxt = s.queue.next_of(*w);
            if (w->req_count <= s.count) {
                s.count -= w->req_count;
                release_wait(*w, E_OK);
            }
            w = nxt;
        }
    } else {
        while (TCB* w = s.queue.front()) {
            if (w->req_count > s.count) {
                break;
            }
            s.count -= w->req_count;
            release_wait(*w, E_OK);
        }
    }
}

ER TKernel::tk_sig_sem(ID semid, INT cnt) {
    ServiceSection svc(*this);
    Semaphore* s = sems_.find(semid);
    if (s == nullptr) {
        return semid <= 0 ? E_ID : E_NOEXS;
    }
    if (cnt <= 0) {
        return E_PAR;
    }
    if (s->count > s->maxsem - cnt) {
        return E_QOVR;
    }
    s->count += cnt;
    sem_wake_pass(*s);
    return E_OK;
}

ER TKernel::tk_wai_sem(ID semid, INT cnt, TMO tmout) {
    ServiceSection svc(*this);
    Semaphore* s = sems_.find(semid);
    if (s == nullptr) {
        return semid <= 0 ? E_ID : E_NOEXS;
    }
    if (cnt <= 0 || cnt > s->maxsem) {
        return E_PAR;
    }
    TCB* me = current_tcb();
    // TA_FIRST: the queue head has precedence over a newcomer -- but on a
    // TA_TPRI queue a more urgent newcomer *becomes* the head, so it is
    // served when the count suffices. TA_CNT: resources go to whoever
    // they can satisfy, so a fitting request never queues.
    const bool may_take =
        (s->atr & TA_CNT) != 0 || s->queue.empty() ||
        (me != nullptr && s->queue.would_lead(*me));
    if (may_take && s->count >= cnt) {
        s->count -= cnt;
        return E_OK;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    if (me == nullptr) {
        return E_CTX;  // handlers must not block
    }
    me->req_count = cnt;
    return block_current(*me, WaitKind::semaphore, semid, &s->queue, tmout,
                         E_TMOUT, svc);
}

ER TKernel::tk_ref_sem(ID semid, T_RSEM* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    Semaphore* s = sems_.find(semid);
    if (s == nullptr) {
        return semid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = s->exinf;
    pk->semcnt = s->count;
    pk->wtsk = s->queue.empty() ? 0 : s->queue.front()->id;
    return E_OK;
}

}  // namespace rtk::tkernel
