// Mailbox service calls (tk_cre_mbx ... tk_ref_mbx). Messages are passed
// by reference (T_MSG*), with optional priority ordering (TA_MPRI).
#include "tkernel/kernel.hpp"

namespace rtk::tkernel {

ID TKernel::tk_cre_mbx(const T_CMBX& pk) {
    ServiceSection svc(*this);
    auto m = std::make_unique<Mailbox>();
    m->name = pk.name;
    m->exinf = pk.exinf;
    m->atr = pk.mbxatr;
    m->queue.set_priority_ordered((pk.mbxatr & TA_TPRI) != 0);
    return mbxs_.add(std::move(m));
}

ER TKernel::tk_del_mbx(ID mbxid) {
    ServiceSection svc(*this);
    Mailbox* m = mbxs_.find(mbxid);
    if (m == nullptr) {
        return mbxid <= 0 ? E_ID : E_NOEXS;
    }
    flush_waiters(m->queue);
    mbxs_.erase(mbxid);
    return E_OK;
}

ER TKernel::tk_snd_mbx(ID mbxid, T_MSG* pk_msg) {
    ServiceSection svc(*this);
    Mailbox* m = mbxs_.find(mbxid);
    if (m == nullptr) {
        return mbxid <= 0 ? E_ID : E_NOEXS;
    }
    if (pk_msg == nullptr) {
        return E_PAR;
    }
    // Direct handoff to the first waiting receiver.
    if (TCB* w = m->queue.front()) {
        w->msg = pk_msg;
        release_wait(*w, E_OK);
        return E_OK;
    }
    if ((m->atr & TA_MPRI) != 0) {
        const PRI pri = static_cast<const T_MSG_PRI*>(pk_msg)->msgpri;
        auto it = m->messages.begin();
        for (; it != m->messages.end(); ++it) {
            if (pri < static_cast<const T_MSG_PRI*>(*it)->msgpri) {
                break;
            }
        }
        m->messages.insert(it, pk_msg);
    } else {
        m->messages.push_back(pk_msg);
    }
    return E_OK;
}

ER TKernel::tk_rcv_mbx(ID mbxid, T_MSG** ppk_msg, TMO tmout) {
    ServiceSection svc(*this);
    Mailbox* m = mbxs_.find(mbxid);
    if (m == nullptr) {
        return mbxid <= 0 ? E_ID : E_NOEXS;
    }
    if (ppk_msg == nullptr) {
        return E_PAR;
    }
    if (!m->messages.empty()) {
        *ppk_msg = m->messages.front();
        m->messages.pop_front();
        return E_OK;
    }
    if (tmout == TMO_POL) {
        return E_TMOUT;
    }
    TCB* me = current_tcb();
    if (me == nullptr) {
        return E_CTX;
    }
    me->msg = nullptr;
    const ER er =
        block_current(*me, WaitKind::mailbox, mbxid, &m->queue, tmout, E_TMOUT, svc);
    if (er == E_OK) {
        *ppk_msg = static_cast<T_MSG*>(me->msg);
    }
    return er;
}

ER TKernel::tk_ref_mbx(ID mbxid, T_RMBX* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    Mailbox* m = mbxs_.find(mbxid);
    if (m == nullptr) {
        return mbxid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = m->exinf;
    pk->pk_msg = m->messages.empty() ? nullptr : m->messages.front();
    pk->wtsk = m->queue.empty() ? 0 : m->queue.front()->id;
    return E_OK;
}

}  // namespace rtk::tkernel
