// Task Control Block of the T-Kernel/OS simulation model.
//
// The TCB carries the µ-ITRON-level bookkeeping (wait factor, wakeup
// queueing, timeout generation, held mutexes); the execution mechanism
// lives in the wrapped sim::TThread.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/tthread.hpp"
#include "tkernel/tk_types.hpp"

namespace rtk::tkernel {

class WaitQueue;

/// What a task is blocked on (maps to the TTW_* wait factors).
enum class WaitKind : std::uint8_t {
    none,
    sleep,      ///< tk_slp_tsk
    delay,      ///< tk_dly_tsk
    semaphore,  ///< tk_wai_sem
    eventflag,  ///< tk_wai_flg
    mailbox,    ///< tk_rcv_mbx
    mutex,      ///< tk_loc_mtx
    msgbuf_snd, ///< tk_snd_mbf (buffer full)
    msgbuf_rcv, ///< tk_rcv_mbf (buffer empty)
    mempool_fixed,  ///< tk_get_mpf
    mempool_var,    ///< tk_get_mpl
};

UINT wait_kind_to_ttw(WaitKind k);
const char* to_string(WaitKind k);

struct TCB {
    ID id = 0;
    std::string name;
    void* exinf = nullptr;
    ATR atr = 0;
    PRI ipri = 1;       ///< initial priority (tk_sta_tsk resets to this)
    INT stacd = 0;      ///< start code passed by tk_sta_tsk
    std::size_t stksz = 0;
    TaskEntry entry;
    sim::TThread* thread = nullptr;

    // ---- wait bookkeeping ----
    WaitKind wait_kind = WaitKind::none;
    ID wait_obj = 0;
    ER wait_result = E_OK;    ///< filled by the releasing party
    ER timeout_result = E_TMOUT;  ///< what a timeout stores in wait_result
    std::uint64_t timer_seq = 0;  ///< invalidates stale timeout entries
    WaitQueue* queue = nullptr;   ///< wait queue currently enqueued in
    // Intrusive wait-queue links, owned by *queue while it is non-null
    // (a task waits on at most one queue). See wait_queue.hpp for the
    // lifetime rules; no code outside WaitQueue may touch these.
    TCB* wq_prev = nullptr;
    TCB* wq_next = nullptr;

    std::uint64_t wakeup_count = 0;  ///< queued tk_wup_tsk requests

    // ---- per-wait payload (valid per wait_kind) ----
    INT req_count = 0;        ///< semaphore: requested count
    UINT wai_ptn = 0;         ///< eventflag: awaited pattern
    UINT wfmode = 0;          ///< eventflag: wait mode
    UINT ret_ptn = 0;         ///< eventflag: pattern at release
    T_MSG* msg = nullptr;     ///< mailbox: received message
    const void* snd_buf = nullptr;  ///< msgbuf send payload
    INT snd_size = 0;
    void* rcv_buf = nullptr;  ///< msgbuf receive destination
    INT rcv_size = 0;         ///< msgbuf: received size (result)
    void* blk = nullptr;      ///< memory pool: acquired block
    INT req_size = 0;         ///< variable pool: requested bytes

    std::vector<ID> held_mutexes;  ///< for priority recomputation & cleanup

    // ---- task exception handling (tk_def_tex family) ----
    TexEntry texhdr;            ///< handler, empty when undefined
    UINT texptn_pending = 0;    ///< raised-but-undelivered pattern bits
    bool tex_enabled = false;   ///< tk_ena_tex / tk_dis_tex
    bool in_tex = false;        ///< handler currently executing (no nesting)
    std::uint64_t tex_delivered = 0;

    bool exists = true;
};

}  // namespace rtk::tkernel
