// Time management: system time, cyclic handlers and alarm handlers.
// Handlers execute as T-THREADs of kind cyclic/alarm, activated through
// the SIM_API interrupt path from the timer handler, so they enjoy the
// paper's delayed-dispatching semantics automatically.
#include "tkernel/kernel.hpp"

#include <cstdint>

namespace rtk::tkernel {

using sim::ExecContext;
using sim::ThreadKind;

namespace {
constexpr sim::Priority time_event_priority = -100;
constexpr std::uint64_t handler_entry_cost_units = 2;
}  // namespace

// ---- system time ------------------------------------------------------------

ER TKernel::tk_set_tim(SYSTIM tim) {
    ServiceSection svc(*this);
    systim_base_ = static_cast<std::int64_t>(tim) - static_cast<std::int64_t>(otm_ms());
    systim_ = tim;
    return E_OK;
}

ER TKernel::tk_get_tim(SYSTIM* tim) const {
    if (tim == nullptr) {
        return E_PAR;
    }
    *tim = static_cast<SYSTIM>(systim_base_ + static_cast<std::int64_t>(otm_ms()));
    return E_OK;
}

ER TKernel::tk_get_otm(SYSTIM* tim) const {
    if (tim == nullptr) {
        return E_PAR;
    }
    *tim = otm_ms();
    return E_OK;
}

// ---- cyclic handlers -----------------------------------------------------------

void TKernel::rearm_cyclic(ID cycid, std::uint64_t seq) {
    CyclicHandler* c = cycs_.find(cycid);
    if (c == nullptr || !c->active || c->fire_seq != seq) {
        return;
    }
    schedule_at(c->next_fire, seq, [this, cycid, seq] {
        CyclicHandler* c2 = cycs_.find(cycid);
        if (c2 == nullptr || !c2->active || c2->fire_seq != seq) {
            return;  // stopped/restarted since scheduling
        }
        ++c2->activations;
        api_->SIM_RaiseInterrupt(*c2->thread);
        c2->next_fire += c2->cyctim;
        rearm_cyclic(cycid, seq);
    });
}

ID TKernel::tk_cre_cyc(const T_CCYC& pk) {
    ServiceSection svc(*this);
    if (!pk.cychdr || pk.cyctim == 0) {
        return E_PAR;
    }
    auto c = std::make_unique<CyclicHandler>();
    c->name = pk.name;
    c->exinf = pk.exinf;
    c->atr = pk.cycatr;
    c->handler = pk.cychdr;
    c->cyctim = pk.cyctim;
    c->cycphs = pk.cycphs;
    CyclicHandler* p = c.get();
    const ID id = cycs_.add(std::move(c));
    if (id < 0) {
        return id;
    }
    p->thread = &api_->SIM_CreateThread(
        pk.name, ThreadKind::cyclic_handler, time_event_priority, [this, p] {
            api_->SIM_WaitUnits(handler_entry_cost_units, ExecContext::handler);
            p->handler(p->exinf);
        });
    if ((pk.cycatr & TA_STA) != 0) {
        p->active = true;
        const RELTIM first =
            ((pk.cycatr & TA_PHS) != 0 && pk.cycphs != 0) ? pk.cycphs : pk.cyctim;
        p->next_fire = deadline_otm(first);
        rearm_cyclic(id, ++p->fire_seq);
    }
    return id;
}

ER TKernel::tk_del_cyc(ID cycid) {
    ServiceSection svc(*this);
    CyclicHandler* c = cycs_.find(cycid);
    if (c == nullptr) {
        return cycid <= 0 ? E_ID : E_NOEXS;
    }
    c->active = false;
    ++c->fire_seq;
    api_->SIM_DeleteThread(*c->thread);
    cycs_.erase(cycid);
    return E_OK;
}

ER TKernel::tk_sta_cyc(ID cycid) {
    ServiceSection svc(*this);
    CyclicHandler* c = cycs_.find(cycid);
    if (c == nullptr) {
        return cycid <= 0 ? E_ID : E_NOEXS;
    }
    c->active = true;
    if ((c->atr & TA_PHS) != 0 && c->next_fire > otm_ms()) {
        // TA_PHS: restarting keeps the original phase-aligned schedule.
    } else {
        c->next_fire = deadline_otm(c->cyctim);
    }
    rearm_cyclic(c->id, ++c->fire_seq);
    return E_OK;
}

ER TKernel::tk_stp_cyc(ID cycid) {
    ServiceSection svc(*this);
    CyclicHandler* c = cycs_.find(cycid);
    if (c == nullptr) {
        return cycid <= 0 ? E_ID : E_NOEXS;
    }
    c->active = false;
    ++c->fire_seq;
    return E_OK;
}

ER TKernel::tk_ref_cyc(ID cycid, T_RCYC* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    CyclicHandler* c = cycs_.find(cycid);
    if (c == nullptr) {
        return cycid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = c->exinf;
    pk->cycstat = c->active ? TCYC_STA : TCYC_STP;
    pk->lfttim = (c->active && c->next_fire > otm_ms()) ? c->next_fire - otm_ms() : 0;
    return E_OK;
}

// ---- alarm handlers ---------------------------------------------------------------

ID TKernel::tk_cre_alm(const T_CALM& pk) {
    ServiceSection svc(*this);
    if (!pk.almhdr) {
        return E_PAR;
    }
    auto a = std::make_unique<AlarmHandler>();
    a->name = pk.name;
    a->exinf = pk.exinf;
    a->atr = pk.almatr;
    a->handler = pk.almhdr;
    AlarmHandler* p = a.get();
    const ID id = alms_.add(std::move(a));
    if (id < 0) {
        return id;
    }
    p->thread = &api_->SIM_CreateThread(
        pk.name, ThreadKind::alarm_handler, time_event_priority, [this, p] {
            api_->SIM_WaitUnits(handler_entry_cost_units, ExecContext::handler);
            p->handler(p->exinf);
        });
    return id;
}

ER TKernel::tk_del_alm(ID almid) {
    ServiceSection svc(*this);
    AlarmHandler* a = alms_.find(almid);
    if (a == nullptr) {
        return almid <= 0 ? E_ID : E_NOEXS;
    }
    a->active = false;
    ++a->fire_seq;
    api_->SIM_DeleteThread(*a->thread);
    alms_.erase(almid);
    return E_OK;
}

ER TKernel::tk_sta_alm(ID almid, RELTIM almtim) {
    ServiceSection svc(*this);
    AlarmHandler* a = alms_.find(almid);
    if (a == nullptr) {
        return almid <= 0 ? E_ID : E_NOEXS;
    }
    a->active = true;
    a->fire_at = deadline_otm(almtim);
    const std::uint64_t seq = ++a->fire_seq;
    const ID id = a->id;
    schedule_at(a->fire_at, seq, [this, id, seq] {
        AlarmHandler* a2 = alms_.find(id);
        if (a2 == nullptr || !a2->active || a2->fire_seq != seq) {
            return;
        }
        a2->active = false;
        ++a2->activations;
        api_->SIM_RaiseInterrupt(*a2->thread);
    });
    return E_OK;
}

ER TKernel::tk_stp_alm(ID almid) {
    ServiceSection svc(*this);
    AlarmHandler* a = alms_.find(almid);
    if (a == nullptr) {
        return almid <= 0 ? E_ID : E_NOEXS;
    }
    a->active = false;
    ++a->fire_seq;
    return E_OK;
}

ER TKernel::tk_ref_alm(ID almid, T_RALM* pk) const {
    if (pk == nullptr) {
        return E_PAR;
    }
    AlarmHandler* a = alms_.find(almid);
    if (a == nullptr) {
        return almid <= 0 ? E_ID : E_NOEXS;
    }
    pk->exinf = a->exinf;
    pk->almstat = a->active ? TALM_STA : TALM_STP;
    pk->lfttim = (a->active && a->fire_at > otm_ms()) ? a->fire_at - otm_ms() : 0;
    return E_OK;
}

}  // namespace rtk::tkernel
